(* Experiment harness: one sub-command per table/figure of the paper's
   evaluation (see DESIGN.md's per-experiment index).  Each experiment
   prints the series the corresponding plot draws — solve time and objective
   per method over logarithmically growing instances.

     dune exec bench/main.exe                 # all experiments, default scale
     dune exec bench/main.exe -- setting1 --scale 2.0
     dune exec bench/main.exe -- certificates

   Sizes are laptop-scale versions of the paper's sweeps (DESIGN.md §1,
   substitution 4); --scale grows or shrinks them. *)

open Cmdliner
open Relalg
open Resilience

let set = Problem.Set
let bag = Problem.Bag

(* ---- small measurement toolkit ------------------------------------------- *)

let time f =
  let t0 = Lp.Clock.now () in
  let r = f () in
  (r, Lp.Clock.elapsed t0)

let fmt_time t = if t < 0.0005 then "<1ms" else Printf.sprintf "%.3fs" t

let fmt_opt = function Some v -> string_of_int v | None -> "-"

let header title cols =
  Printf.printf "\n== %s ==\n%!" title;
  print_endline (String.concat "\t" cols)

let row cells =
  print_endline (String.concat "\t" cells);
  flush stdout

let no_stats nodes =
  {
    Solve.nodes;
    root_lp = nan;
    root_integral = false;
    certified = false;
    solve_time = nan;
    prep_time = nan;
    pivots = 0;
    refactors = 0;
  }

let res_outcome = function
  | Solve.Solved a -> (Some a.Solve.res_value, a.Solve.res_stats)
  | Solve.Budget_exhausted v -> (v, no_stats (-1))
  | Solve.Query_false | Solve.No_contingency -> (None, no_stats 0)

let rsp_outcome = function
  | Solve.Solved a -> Some a.Solve.rsp_value
  | Solve.Budget_exhausted v -> v
  | Solve.Query_false | Solve.No_contingency -> None

(* ---- Table 1 -------------------------------------------------------------- *)

let run_table1 () =
  header "Table 1: complexity of RES and RSP for SJ-free CQs"
    [ "query"; "definition"; "RES/set"; "RES/bag"; "RSP/set"; "RSP/bag" ];
  let show c =
    match c with Analysis.Ptime -> "PTIME" | Analysis.Npc -> "NPC" | Analysis.Unknown -> "open"
  in
  let rsp_summary sem q =
    (* the dichotomy is per responsibility atom; summarise the range *)
    let cs =
      List.init (Array.length q.Cq.atoms) (fun i -> Analysis.rsp_complexity sem q ~t_atom:i)
      |> List.sort_uniq compare
    in
    match cs with
    | [ c ] -> show c
    | cs -> String.concat "/" (List.map show cs) ^ " (by atom)"
  in
  List.iter
    (fun (name, q) ->
      if Cq.self_join_free q then
        row
          [
            name;
            Cq.to_string q;
            show (Analysis.res_complexity set q);
            show (Analysis.res_complexity bag q);
            rsp_summary set q;
            rsp_summary bag q;
          ]
      else
        row
          [
            name;
            Cq.to_string q;
            show (Analysis.res_complexity set q) ^ " (self-join)";
            show (Analysis.res_complexity bag q) ^ " (self-join)";
            "-";
            "-";
          ])
    (Queries.all_named ())

(* ---- Setting 1 (Fig. 5): hard 3-star, RES under set semantics -------------- *)

let run_setting1 scale =
  let q = Queries.q3_star () in
  header "Setting 1 (Fig. 5): RES of the hard 3-star query, set semantics"
    [
      "witnesses"; "ILP"; "t_ILP"; "ILP(5s)"; "LP"; "t_LP"; "LP-UB"; "Flow-CT"; "t_CT"; "Flow-CW";
      "t_CW"; "UB/opt"; "CT/opt"; "CW/opt";
    ];
  let rng = Random.State.make [| 101 |] in
  let base = int_of_float (600.0 *. scale) in
  let specs =
    [
      { Datagen.Random_inst.rel = "R"; arity = 1; count = base / 8 };
      { rel = "S"; arity = 1; count = base / 8 };
      { rel = "T"; arity = 1; count = base / 8 };
      { rel = "W"; arity = 3; count = base };
    ]
  in
  let pool = Datagen.Random_inst.pool rng ~domain:(max 3 (base / 6)) specs in
  List.iter
    (fun frac ->
      let db = Datagen.Random_inst.prefix_db pool ~frac in
      let witnesses = Eval.count q db in
      if witnesses > 0 then begin
        let ilp, t_ilp = time (fun () -> Solve.resilience ~time_limit:30.0 set q db) in
        let ilp_v, _ = res_outcome ilp in
        let budget, _ = time (fun () -> Solve.resilience ~time_limit:5.0 set q db) in
        let budget_v, _ = res_outcome budget in
        let lp, t_lp = time (fun () -> Solve.resilience_lp set q db) in
        let lp_ub, _ = time (fun () -> Approx.lp_rounding_res set q db) in
        let ct, t_ct = time (fun () -> Approx.flow_ct_res set q db) in
        let cw, t_cw = time (fun () -> Approx.flow_cw_res set q db) in
        let av = function Some { Approx.value; _ } -> Some value | None -> None in
        (* the paper's bottom plots: approximation quality relative to the
           optimum *)
        let ratio approx =
          match (approx, ilp_v) with
          | Some a, Some opt when opt > 0 -> Printf.sprintf "%.2f" (float_of_int a /. float_of_int opt)
          | _ -> "-"
        in
        row
          [
            string_of_int witnesses;
            fmt_opt ilp_v;
            fmt_time t_ilp;
            fmt_opt budget_v;
            (match lp with Some v -> Printf.sprintf "%.2f" v | None -> "-");
            fmt_time t_lp;
            fmt_opt (av lp_ub);
            fmt_opt (av ct);
            fmt_time t_ct;
            fmt_opt (av cw);
            fmt_time t_cw;
            ratio (av lp_ub);
            ratio (av ct);
            ratio (av cw);
          ]
      end)
    (Datagen.Random_inst.log_fractions 7)

(* ---- Setting 2 (Fig. 6): TPC-H-shaped data -------------------------------- *)

let run_setting2 scale =
  let rng = Random.State.make [| 202 |] in
  let sfs = Datagen.Tpch.scale_factors ~from_sf:0.01 ~to_sf:(0.12 *. scale) 6 in
  header "Setting 2a (Fig. 6a): RSP on the 5-chain over TPC-H-shaped data (PTIME query)"
    [ "witnesses"; "ILP"; "t_ILP"; "MILP"; "t_MILP"; "LP"; "t_LP"; "Flow"; "t_Flow" ];
  let q5 = Queries.q_tpch_5chain () in
  List.iter
    (fun sf ->
      let db = Datagen.Tpch.generate rng ~scale:sf in
      match Datagen.Tpch.responsibility_target db with
      | None -> ()
      | Some t ->
        let witnesses = Eval.count q5 db in
        if witnesses > 0 then begin
          let ilp, t_ilp = time (fun () -> Solve.responsibility ~time_limit:30.0 set q5 db t) in
          let milp, t_milp =
            time (fun () ->
                Solve.responsibility ~relaxation:Encode.Milp ~time_limit:30.0 set q5 db t)
          in
          let lp, t_lp = time (fun () -> Solve.responsibility_lp set q5 db t) in
          let flow, t_flow = time (fun () -> Solve.responsibility_flow set q5 db t) in
          let flow_v =
            match flow with Some (Solve.Solved a) -> Some a.Solve.rsp_value | _ -> None
          in
          row
            [
              string_of_int witnesses;
              fmt_opt (rsp_outcome ilp);
              fmt_time t_ilp;
              fmt_opt (rsp_outcome milp);
              fmt_time t_milp;
              (match lp with Some v -> Printf.sprintf "%.2f" v | None -> "-");
              fmt_time t_lp;
              fmt_opt flow_v;
              fmt_time t_flow;
            ]
        end)
    sfs;
  header
    "Setting 2b (Fig. 6b): RES on the 5-cycle over TPC-H-shaped data (NPC query, easy data via FDs)"
    [ "witnesses"; "ILP"; "t_ILP"; "nodes"; "root_integral"; "LP"; "t_LP"; "fd_rewrite" ];
  let qc = Queries.q_tpch_5cycle () in
  List.iter
    (fun sf ->
      let db = Datagen.Tpch.generate rng ~scale:sf in
      let witnesses = Eval.count qc db in
      if witnesses > 0 then begin
        let ilp, t_ilp = time (fun () -> Solve.resilience ~time_limit:30.0 set qc db) in
        let ilp_v, stats = res_outcome ilp in
        let lp, t_lp = time (fun () -> Solve.resilience_lp set qc db) in
        (* Theorem J.2: the induced rewrite under the data's FDs predicts the
           observed PTIME behaviour. *)
        let rewrite_verdict =
          match Analysis.res_complexity set (Instance.induced_rewrite qc (Instance.var_fds qc db)) with
          | Analysis.Ptime -> "PTIME"
          | Analysis.Npc -> "NPC"
          | Analysis.Unknown -> "open"
        in
        row
          [
            string_of_int witnesses;
            fmt_opt ilp_v;
            fmt_time t_ilp;
            string_of_int stats.Solve.nodes;
            string_of_bool stats.Solve.root_integral;
            (match lp with Some v -> Printf.sprintf "%.2f" v | None -> "-");
            fmt_time t_lp;
            rewrite_verdict;
          ]
      end)
    (Datagen.Tpch.scale_factors ~from_sf:0.05 ~to_sf:(1.0 *. scale) 6)

(* ---- Setting 3 (Fig. 7): self-joins under bag semantics -------------------- *)

let run_setting3 scale =
  let rng = Random.State.make [| 303 |] in
  let run name q specs domain =
    header
      (Printf.sprintf "Setting 3 (Fig. 7): %s under bag semantics" name)
      [ "witnesses"; "ILP"; "t_ILP"; "ILP(5s)"; "LP"; "t_LP"; "LP-UB"; "nodes"; "root_integral" ];
    let pool = Datagen.Random_inst.pool rng ~domain ~max_bag:4 specs in
    List.iter
      (fun frac ->
        let db = Datagen.Random_inst.prefix_db pool ~frac in
        let witnesses = Eval.count q db in
        if witnesses > 0 then begin
          let ilp, t_ilp = time (fun () -> Solve.resilience ~time_limit:30.0 bag q db) in
          let ilp_v, stats = res_outcome ilp in
          let budget, _ = time (fun () -> Solve.resilience ~time_limit:5.0 bag q db) in
          let budget_v, _ = res_outcome budget in
          let lp, t_lp = time (fun () -> Solve.resilience_lp bag q db) in
          let lp_ub, _ = time (fun () -> Approx.lp_rounding_res bag q db) in
          let av = function Some { Approx.value; _ } -> Some value | None -> None in
          row
            [
              string_of_int witnesses;
              fmt_opt ilp_v;
              fmt_time t_ilp;
              fmt_opt budget_v;
              (match lp with Some v -> Printf.sprintf "%.2f" v | None -> "-");
              fmt_time t_lp;
              fmt_opt (av lp_ub);
              string_of_int stats.Solve.nodes;
              string_of_bool stats.Solve.root_integral;
            ]
        end)
      (Datagen.Random_inst.log_fractions 6)
  in
  let base = int_of_float (500.0 *. scale) in
  run "SJ-conf (easy): R(x,y), R(x,z), A(x), C(z)" (Queries.q_conf_sj ())
    [
      { Datagen.Random_inst.rel = "R"; arity = 2; count = base };
      { rel = "A"; arity = 1; count = base / 6 };
      { rel = "C"; arity = 1; count = base / 6 };
    ]
    (max 4 (base / 12));
  (* the hard chain's witness count grows quadratically in |R|; a smaller
     base keeps the top point around ~2.5k witnesses, where the blow-up is
     already unmistakable *)
  run "SJ-chain (hard): R(x,y), R(y,z)" (Queries.q2_chain_sj ())
    [ { Datagen.Random_inst.rel = "R"; arity = 2; count = (6 * base) / 10 } ]
    (max 4 (base / 16))

(* ---- Setting 4 (Fig. 13): Q triangle-unary, set vs bag --------------------- *)

let run_setting4 scale =
  let q = Queries.q_triangle_a () in
  let rng = Random.State.make [| 404 |] in
  let base = int_of_float (400.0 *. scale) in
  let specs =
    [
      { Datagen.Random_inst.rel = "A"; arity = 1; count = base / 6 };
      { rel = "R"; arity = 2; count = base };
      { rel = "S"; arity = 2; count = base };
      { rel = "T"; arity = 2; count = base };
    ]
  in
  List.iter
    (fun (sem, max_bag, label) ->
      header
        (Printf.sprintf "Setting 4 (Fig. 13): RES of QtriangleA under %s semantics" label)
        [ "witnesses"; "ILP"; "t_ILP"; "LP"; "t_LP"; "LP=ILP"; "Flow-CW"; "nodes" ];
      let pool = Datagen.Random_inst.pool rng ~domain:(max 4 (base / 10)) ~max_bag specs in
      List.iter
        (fun frac ->
          let db = Datagen.Random_inst.prefix_db pool ~frac in
          let witnesses = Eval.count q db in
          if witnesses > 0 then begin
            let ilp, t_ilp = time (fun () -> Solve.resilience ~time_limit:30.0 sem q db) in
            let ilp_v, stats = res_outcome ilp in
            let lp, t_lp = time (fun () -> Solve.resilience_lp sem q db) in
            let cw, _ = time (fun () -> Approx.flow_cw_res sem q db) in
            let equal =
              match (ilp_v, lp) with
              | Some iv, Some lv -> string_of_bool (Float.abs (float_of_int iv -. lv) < 1e-6)
              | _ -> "-"
            in
            row
              [
                string_of_int witnesses;
                fmt_opt ilp_v;
                fmt_time t_ilp;
                (match lp with Some v -> Printf.sprintf "%.2f" v | None -> "-");
                fmt_time t_lp;
                equal;
                fmt_opt (match cw with Some { Approx.value; _ } -> Some value | None -> None);
                string_of_int stats.Solve.nodes;
              ]
          end)
        (Datagen.Random_inst.log_fractions 5))
    [ (set, 1, "set"); (bag, 10, "bag") ]

(* ---- Setting 5 (Fig. 14): z6 — random data vs adversarial composition ------- *)

let run_setting5 scale =
  let q = Queries.q_z6 () in
  header "Setting 5 (Fig. 14): RES of the newly-hard z6 query, random data"
    [ "witnesses"; "ILP"; "t_ILP"; "LP"; "LP=ILP"; "nodes" ];
  let rng = Random.State.make [| 505 |] in
  let base = int_of_float (400.0 *. scale) in
  let specs =
    [
      { Datagen.Random_inst.rel = "A"; arity = 1; count = base / 4 };
      { rel = "R"; arity = 2; count = base };
      { rel = "C"; arity = 1; count = base / 4 };
    ]
  in
  let pool = Datagen.Random_inst.pool rng ~domain:(max 4 (base / 10)) specs in
  List.iter
    (fun frac ->
      let db = Datagen.Random_inst.prefix_db pool ~frac in
      let witnesses = Eval.count q db in
      if witnesses > 0 then begin
        let ilp, t_ilp = time (fun () -> Solve.resilience ~time_limit:30.0 set q db) in
        let ilp_v, stats = res_outcome ilp in
        let lp, _ = time (fun () -> Solve.resilience_lp set q db) in
        let equal =
          match (ilp_v, lp) with
          | Some iv, Some lv -> string_of_bool (Float.abs (float_of_int iv -. lv) < 1e-6)
          | _ -> "-"
        in
        row
          [
            string_of_int witnesses;
            fmt_opt ilp_v;
            fmt_time t_ilp;
            (match lp with Some v -> Printf.sprintf "%.2f" v | None -> "-");
            equal;
            string_of_int stats.Solve.nodes;
          ]
      end)
    (Datagen.Random_inst.log_fractions 5);
  header "Setting 5 (Fig. 14): adversarial IJP-composed instances (LP < ILP)"
    [ "graph"; "witnesses"; "ILP"; "LP"; "LP=ILP" ];
  match Ijp.Search.find (Queries.q2_chain_sj ()) with
  | None -> print_endline "(no certificate found - unexpected)"
  | Some (jp, _) ->
    List.iter
      (fun (name, edges) ->
        let db = Ijp.Compose.vertex_cover_instance jp ~edges in
        let witnesses = Eval.count (Queries.q2_chain_sj ()) db in
        let ilp, _ = time (fun () -> Solve.resilience set (Queries.q2_chain_sj ()) db) in
        let ilp_v, _ = res_outcome ilp in
        let lp = Solve.resilience_lp set (Queries.q2_chain_sj ()) db in
        row
          [
            name;
            string_of_int witnesses;
            fmt_opt ilp_v;
            (match lp with Some v -> Printf.sprintf "%.2f" v | None -> "-");
            (match (ilp_v, lp) with
            | Some iv, Some lv -> string_of_bool (Float.abs (float_of_int iv -. lv) < 1e-6)
            | _ -> "-");
          ])
      [
        ("C3", Ijp.Compose.odd_cycle 1);
        ("C5", Ijp.Compose.odd_cycle 2);
        ("C7", Ijp.Compose.odd_cycle 3);
      ]

(* ---- Certificates (Figs. 3, 10, 15) ----------------------------------------- *)

let run_certificates () =
  header "Hardness certificates by automatic search (Figs. 3/10/15, Section 7.2)"
    [ "query"; "found"; "witnesses"; "resilience c"; "candidates"; "time" ];
  (* chain^b / chain^abc use the paper's tuple-level exogeneity device
     (Definition 3.3): their small gadgets mark the unary relations'
     tuples exogenous, exactly like A in Fig. 1a. *)
  List.iter
    (fun (name, q, config) ->
      match Ijp.Search.find ?config q with
      | Some (jp, stats) ->
        let c =
          match Ijp.Join_path.check_ijp set jp with Ok c -> string_of_int c | Error _ -> "?"
        in
        row
          [
            name;
            "yes";
            string_of_int (Eval.count q jp.Ijp.Join_path.db);
            c;
            string_of_int stats.Ijp.Search.candidates;
            fmt_time stats.Ijp.Search.elapsed;
          ];
        Format.printf "%a@." Ijp.Join_path.pp jp
      | None -> row [ name; "no"; "-"; "-"; "-"; "-" ])
    [
      ("Q2chainSJ (Fig. 15)", Queries.q2_chain_sj (), None);
      ( "q_chain^b (Fig. 10)",
        Queries.q_chain_b_sj (),
        Some { Ijp.Search.default_config with exo_rels = [ "B" ] } );
      ( "q_chain^abc (Fig. 10)",
        Queries.q_chain_abc_sj (),
        Some { Ijp.Search.default_config with exo_rels = [ "A"; "B"; "C" ] } );
    ]

(* ---- Ablations --------------------------------------------------------------- *)

let run_ablations scale =
  let rng = Random.State.make [| 606 |] in
  let base = int_of_float (200.0 *. scale) in
  header "Ablation A: unified ILP vs dedicated hitting-set branch-and-bound (triangle, set)"
    [ "witnesses"; "ILP"; "t_ILP"; "HittingSet"; "t_HS" ];
  let q = Queries.q_triangle () in
  let specs =
    [
      { Datagen.Random_inst.rel = "R"; arity = 2; count = base };
      { rel = "S"; arity = 2; count = base };
      { rel = "T"; arity = 2; count = base };
    ]
  in
  let pool = Datagen.Random_inst.pool rng ~domain:(max 3 (base / 12)) specs in
  List.iter
    (fun frac ->
      let db = Datagen.Random_inst.prefix_db pool ~frac in
      let witnesses = Eval.count q db in
      if witnesses > 0 then begin
        let ilp, t_ilp = time (fun () -> Solve.resilience ~time_limit:30.0 set q db) in
        let ilp_v, _ = res_outcome ilp in
        (* the dedicated solver explodes without the LP bound; cap its work
           so the ablation terminates (it may then report an incumbent) *)
        let hs, t_hs = time (fun () -> Hitting_set.resilience ~node_limit:3_000_000 set q db) in
        row
          [
            string_of_int witnesses;
            fmt_opt ilp_v;
            fmt_time t_ilp;
            fmt_opt (Option.map fst hs);
            fmt_time t_hs;
          ]
      end)
    (Datagen.Random_inst.log_fractions 4);
  header "Ablation B: primal vs dual simplex on the covering LP (2-chain, set)"
    [ "rows"; "dual_t"; "primal_t"; "agree" ];
  let q2 = Queries.q2_chain () in
  let specs2 = Datagen.Random_inst.specs_of_query q2 ~count:(2 * base) in
  let pool2 = Datagen.Random_inst.pool rng ~domain:(max 4 (base / 2)) specs2 in
  List.iter
    (fun frac ->
      let db = Datagen.Random_inst.prefix_db pool2 ~frac in
      match Encode.res Encode.Lp set q2 db with
      | Encode.Encoded enc ->
        let solve m meth =
          match Lp.Solvers.Float_simplex.solve ~method_:meth m with
          | Lp.Solvers.Float_simplex.Optimal { objective; _ } -> Some objective
          | _ -> None
        in
        let d, t_d = time (fun () -> solve enc.Encode.model `Dual) in
        let p, t_p = time (fun () -> solve enc.Encode.model `Primal) in
        let agree =
          match (d, p) with
          | Some a, Some b -> string_of_bool (Float.abs (a -. b) < 1e-5)
          | _ -> "-"
        in
        row
          [
            string_of_int (Lp.Model.num_constrs enc.Encode.model);
            fmt_time t_d;
            fmt_time t_p;
            agree;
          ]
      | _ -> ())
    (Datagen.Random_inst.log_fractions 4);
  header "Ablation C: float vs exact-rational pipeline (small triangle instances)"
    [ "witnesses"; "float_t"; "exact_t"; "same_value" ];
  let pool3 =
    Datagen.Random_inst.pool rng ~domain:3
      [
        { Datagen.Random_inst.rel = "R"; arity = 2; count = 7 };
        { rel = "S"; arity = 2; count = 7 };
        { rel = "T"; arity = 2; count = 7 };
      ]
  in
  List.iter
    (fun frac ->
      let db = Datagen.Random_inst.prefix_db pool3 ~frac in
      let witnesses = Eval.count q db in
      if witnesses > 0 then begin
        let f, t_f = time (fun () -> Solve.resilience set q db) in
        let e, t_e = time (fun () -> Solve.resilience ~exact:true set q db) in
        let fv, _ = res_outcome f and ev, _ = res_outcome e in
        row [ string_of_int witnesses; fmt_time t_f; fmt_time t_e; string_of_bool (fv = ev) ]
      end)
    [ 0.5; 1.0 ]

(* ---- Bechamel micro-benchmarks ------------------------------------------------ *)

let run_micro () =
  print_endline "\n== Micro-benchmarks (Bechamel) ==";
  let open Bechamel in
  let rng = Random.State.make [| 707 |] in
  let q = Queries.q2_chain () in
  let db =
    Datagen.Random_inst.db rng ~domain:30 (Datagen.Random_inst.specs_of_query q ~count:150)
  in
  let enc =
    match Encode.res Encode.Lp set q db with
    | Encode.Encoded e -> e
    | _ -> failwith "encode failed"
  in
  let frozen = Lp.Frozen.of_model enc.Encode.model in
  let presolved =
    match Lp.Presolve.presolve frozen with
    | Lp.Presolve.Reduced (m, _) -> m
    | _ -> failwith "presolve failed"
  in
  let tests =
    Test.make_grouped ~name:"resilience"
      [
        Test.make ~name:"witnesses" (Staged.stage (fun () -> ignore (Eval.witnesses q db)));
        Test.make ~name:"encode-ilp"
          (Staged.stage (fun () -> ignore (Encode.res Encode.Ilp set q db)));
        Test.make ~name:"presolve"
          (Staged.stage (fun () -> ignore (Lp.Presolve.presolve frozen)));
        Test.make ~name:"lp-dual"
          (* the production path: the dual simplex sees the presolved model *)
          (Staged.stage (fun () -> ignore (Lp.Solvers.Float_simplex.solve_frozen presolved)));
        Test.make ~name:"lp-dual-raw"
          (Staged.stage (fun () -> ignore (Lp.Solvers.Float_simplex.solve enc.Encode.model)));
        Test.make ~name:"flow-baseline"
          (Staged.stage (fun () -> ignore (Solve.resilience_flow set q db)));
      ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-40s %12.0f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-40s (no estimate)\n" name)
    results

(* ---- Ranking batch: warm session vs cold per-tuple solves ----------------------- *)

(* What Solve.responsibility_ranking did before the session layer: a fresh
   witness enumeration, encoding, lint-able model, presolve and
   branch-and-bound per tuple. *)
let cold_ranking sem q db =
  Database.tuples db
  |> List.filter_map (fun info ->
         let tid = info.Database.id in
         if Problem.tuple_exo q db tid then None
         else
           match Solve.responsibility sem q db tid with
           | Solve.Solved a -> Some (tid, a.Solve.rsp_value)
           | Solve.Query_false | Solve.No_contingency | Solve.Budget_exhausted _ -> None)
  |> List.stable_sort (fun (_, a) (_, b) -> compare a b)

(* Basis-kernel figures for one sequential ranking, from the Obs counter
   snapshots around it: LU fill (high-water marks over the run), the eta
   peak, refactorisation count, and the fraction of FTRAN result entries
   that were nonzero (the quantity sparse pricing is supposed to shrink).
   Counters only move while the sink is installed, so this is emitted on
   --trace runs only. *)
let basis_json snap0 snap1 =
  let get snap name = Option.value ~default:0 (List.assoc_opt name snap) in
  let delta name = get snap1 name - get snap0 name in
  let ftran_len = delta "simplex.ftran_len" in
  let ftran_frac =
    if ftran_len > 0 then float_of_int (delta "simplex.ftran_nnz") /. float_of_int ftran_len
    else 1.0
  in
  Printf.sprintf
    "{\"lu_factor_nnz\":%d,\"lu_fill_pct\":%d,\"eta_peak\":%d,\"refactors\":%d,\"ftran_nnz_frac\":%.4f}"
    (get snap1 "simplex.lu_factor_nnz")
    (get snap1 "simplex.lu_fill_pct")
    (get snap1 "simplex.eta_peak")
    (delta "simplex.refactors") ftran_frac

let run_ranking ?(jobs = 1) ?(dense = false) ?(basis = `Auto) ?(force_shared = false)
    ?(metrics = false) ?trace scale json =
  if trace <> None then Obs.Sink.install ();
  (* [--metrics] arms the metrics plane for the whole run (no span
     buffering): the CI overhead gate diffs session_s with and without it. *)
  if metrics then Obs.Sink.arm_metrics ();
  let rng = Random.State.make [| 808 |] in
  let q = Queries.q2_chain () in
  let regime = if dense then "dense joins" else "sparse joins" in
  let mk_session db =
    if force_shared then Session.create ~basis ~dense_rows_threshold:max_int set q db
    else Session.create ~basis set q db
  in
  if not json then
    header
      (Printf.sprintf
         "Ranking batch: one warm session vs cold per-tuple solves (2-chain, set, %s, jobs=%d)"
         regime jobs)
      [ "tuples"; "witnesses"; "rows"; "ranked"; "strategy"; "t_cold"; "t_session"; "t_par";
        "speedup"; "par_speedup"; "identical" ];
  let entries = ref [] in
  List.iter
    (fun count ->
      let count = int_of_float (float_of_int count *. scale) in
      (* Sparse joins (domain ~ 2x the relation size): most tuples sit in
         few witnesses, so the cold path's per-tuple witness enumeration,
         encoding and presolve dominate — exactly the cost the session
         amortises.  Dense instances (--dense: domain ~ count/8) instead
         multiply the witness count, blowing up the shared super-model's
         row count until each warm pivot costs more than a cold per-tuple
         solve — the crossover behind Session's dense-regime fallback; see
         DESIGN.md for the trade-off. *)
      let domain = if dense then max 2 (count / 8) else max 4 (2 * count) in
      let specs = Datagen.Random_inst.specs_of_query q ~count in
      let db = Datagen.Random_inst.db rng ~domain specs in
      let witnesses = Eval.count q db in
      if witnesses > 0 then begin
        (* Row count of the raw shared super-model — the axis the dense
           crossover and the strategy threshold are phrased in. *)
        let rows =
          match Encode.shared_of_witnesses Encode.Ilp set q db (Eval.witnesses q db) with
          | Encode.Shared s -> Lp.Frozen.num_rows (Lp.Frozen.of_model s.Encode.smodel)
          | Encode.Shared_trivial | Encode.Shared_impossible -> 0
        in
        let cold, t_cold = time (fun () -> cold_ranking set q db) in
        let session = mk_session db in
        let strategy =
          match Session.batch_strategy session with
          | `Shared_delta -> "shared"
          | `Cold_per_tuple -> "cold"
        in
        let snap0 = Obs.Counter.snapshot () in
        let ranked, t_session = time (fun () -> Session.ranking session) in
        let snap1 = Obs.Counter.snapshot () in
        let par, t_par =
          if jobs > 1 then begin
            let par_session = mk_session db in
            let par, t = time (fun () -> Session.ranking_par ~jobs par_session) in
            (Some par, t)
          end
          else (None, t_session)
        in
        let identical =
          List.map (fun (t, k, _) -> (t, k)) ranked = cold
          && match par with None -> true | Some par -> par = ranked
        in
        let speedup = if t_session > 0.0 then t_cold /. t_session else nan in
        let par_speedup = if t_par > 0.0 then t_session /. t_par else nan in
        let tuples = List.length (Database.tuples db) in
        (* Per-phase breakdown of the sequential session, from its own
           accumulator — where a ranking's time actually goes. *)
        let prof = Session.profile session in
        (* Basis-kernel stats ride along on traced runs (the counters are
           live exactly then); untraced JSON keeps the schema of old runs. *)
        let basis =
          if trace <> None then Printf.sprintf ",\"basis\":%s" (basis_json snap0 snap1) else ""
        in
        entries :=
          Printf.sprintf
            "{\"tuples\":%d,\"witnesses\":%d,\"rows\":%d,\"ranked\":%d,\"strategy\":\"%s\",\"jobs\":%d,\"cold_s\":%.6f,\"session_s\":%.6f,\"par_s\":%.6f,\"speedup\":%.2f,\"par_speedup\":%.2f,\"identical\":%b,\"phases\":{\"witnesses_s\":%.6f,\"encode_s\":%.6f,\"lint_s\":%.6f,\"prep_s\":%.6f,\"solve_s\":%.6f,\"questions\":%d}%s}"
            tuples witnesses rows (List.length ranked) strategy jobs t_cold t_session t_par
            speedup par_speedup identical prof.Session.witnesses_s prof.Session.encode_s
            prof.Session.lint_s prof.Session.prep_s prof.Session.solve_s prof.Session.questions
            basis
          :: !entries;
        if not json then
          row
            [
              string_of_int tuples;
              string_of_int witnesses;
              string_of_int rows;
              string_of_int (List.length ranked);
              strategy;
              fmt_time t_cold;
              fmt_time t_session;
              fmt_time t_par;
              Printf.sprintf "%.1fx" speedup;
              Printf.sprintf "%.1fx" par_speedup;
              string_of_bool identical;
            ]
      end)
    [ 100; 200; 400 ];
  if json then Printf.printf "[%s]\n" (String.concat "," (List.rev !entries));
  if metrics then Obs.Sink.disarm_metrics ();
  match trace with
  | None -> ()
  | Some path ->
    let spans = Obs.Trace.drain () in
    Obs.Sink.uninstall ();
    Obs.Export.chrome_to_file path spans;
    if not json then Printf.printf "trace written to %s\n" path

(* ---- serve: steady-state cached latency vs cold one-shot ----------------------- *)

(* Histogram-backed percentile reducer: samples feed a raw (ungated)
   Obs.Histogram and quantiles come back within its bounded relative error
   (~3.1%) — the same math the serve metrics plane reports, so bench
   figures and production metrics agree on convention.  It also makes tail
   quantiles (p999) meaningful without storing every sample. *)
let hist_of samples =
  let h = Obs.Histogram.create () in
  List.iter (Obs.Histogram.observe h) samples;
  h

let percentile p h = Obs.Histogram.percentile h p

(* The serve fast path in one number: a cached incremental session answers a
   repeated resilience question without re-running the witness join, the
   encode, or the presolve — only the warm solve.  The cold baseline is what
   a one-shot CLI invocation pays per question (everything from the join
   down, process startup excluded).  Mutate rows measure the delta path: one
   fresh-tuple insert (delta-join + program append) followed by a warm
   re-solve. *)
let run_serve ?(jobs = 1) scale json =
  let rng = Random.State.make [| 909 |] in
  let q = Queries.q2_chain () in
  if not json then
    header
      (Printf.sprintf
         "Serve: steady-state cached latency vs cold one-shot (2-chain, set, jobs=%d)" jobs)
      [ "tuples"; "witnesses"; "cold_p50"; "cold_p99"; "serve_p50"; "serve_p99"; "serve_p999";
        "mutate_p50"; "rank_ms"; "speedup_p50" ];
  let entries = ref [] in
  List.iter
    (fun count ->
      let count = max 8 (int_of_float (float_of_int count *. scale)) in
      let specs = Datagen.Random_inst.specs_of_query q ~count in
      let db = Datagen.Random_inst.db rng ~domain:(max 4 count) specs in
      let witnesses = Eval.count q db in
      if witnesses > 0 then begin
        let qtext = Cq.to_string q in
        (* Cold baseline: the full per-question pipeline. *)
        let cold =
          List.init 12 (fun _ ->
              let _, t = time (fun () -> Solve.resilience set q db) in
              t *. 1000.0)
        in
        (* Serve path: load once, then repeated cached asks over loopback. *)
        let engine = Serve.Engine.create () in
        let data =
          String.concat "\n"
            (List.map (fun info -> Database_io.print_tuple db info.Database.id)
               (Database.tuples db))
        in
        let request j = Serve.Engine.handle_line engine (Serve.Json.to_string j) in
        let ask =
          Serve.Json.Obj [ ("op", Serve.Json.Str "resilience"); ("query", Serve.Json.Str qtext) ]
        in
        ignore
          (request
             (Serve.Json.Obj [ ("op", Serve.Json.Str "load"); ("data", Serve.Json.Str data) ]));
        ignore (request ask) (* warm the session: join + encode + first solve *);
        let serve =
          List.init 40 (fun _ ->
              let _, t = time (fun () -> ignore (request ask)) in
              t *. 1000.0)
        in
        (* Delta path: fresh-tuple insert, then the warm re-solve. *)
        let mutate =
          List.init 10 (fun i ->
              let tuple = Printf.sprintf "R(%d, %d)" (100000 + i) (200000 + i) in
              ignore
                (request
                   (Serve.Json.Obj
                      [ ("op", Serve.Json.Str "insert"); ("tuple", Serve.Json.Str tuple) ]));
              let _, t = time (fun () -> ignore (request ask)) in
              t *. 1000.0)
        in
        (* One pool-fanned ranking request, exercising the jobs parameter. *)
        let _, rank_t =
          time (fun () ->
              ignore
                (request
                   (Serve.Json.Obj
                      [
                        ("op", Serve.Json.Str "rank");
                        ("query", Serve.Json.Str qtext);
                        ("jobs", Serve.Json.Int jobs);
                      ])))
        in
        let cold_h = hist_of cold and serve_h = hist_of serve and mutate_h = hist_of mutate in
        let cold_p50 = percentile 50.0 cold_h and cold_p99 = percentile 99.0 cold_h in
        let serve_p50 = percentile 50.0 serve_h and serve_p99 = percentile 99.0 serve_h in
        let serve_p999 = percentile 99.9 serve_h in
        let mutate_p50 = percentile 50.0 mutate_h in
        let speedup = if serve_p50 > 0.0 then cold_p50 /. serve_p50 else nan in
        let tuples = List.length (Database.tuples db) in
        entries :=
          Printf.sprintf
            "{\"tuples\":%d,\"witnesses\":%d,\"jobs\":%d,\"cold_p50_ms\":%.4f,\"cold_p99_ms\":%.4f,\"serve_p50_ms\":%.4f,\"serve_p99_ms\":%.4f,\"serve_p999_ms\":%.4f,\"mutate_p50_ms\":%.4f,\"rank_ms\":%.4f,\"speedup_p50\":%.1f}"
            tuples witnesses jobs cold_p50 cold_p99 serve_p50 serve_p99 serve_p999 mutate_p50
            (rank_t *. 1000.0) speedup
          :: !entries;
        if not json then
          row
            [
              string_of_int tuples;
              string_of_int witnesses;
              Printf.sprintf "%.3fms" cold_p50;
              Printf.sprintf "%.3fms" cold_p99;
              Printf.sprintf "%.3fms" serve_p50;
              Printf.sprintf "%.3fms" serve_p99;
              Printf.sprintf "%.3fms" serve_p999;
              Printf.sprintf "%.3fms" mutate_p50;
              Printf.sprintf "%.3fms" (rank_t *. 1000.0);
              Printf.sprintf "%.1fx" speedup;
            ]
      end)
    [ 100; 200; 400 ];
  if json then Printf.printf "[%s]\n" (String.concat "," (List.rev !entries))

(* ---- enumerate: warm no-good cut chain vs cold re-solves ------------------------ *)

(* The enumeration engine in two numbers: cut throughput (no-good cuts
   appended and re-solved per second on the warm session) and the warm
   re-solve's pivot bill relative to the cold reference, which re-solves the
   whole ILP from scratch after every cut.  The 2-chain over a dense join
   domain keeps the cut re-solves off the certificate fast path, so both
   paths genuinely pivot (certificate-settled solves report zero pivots and
   say nothing), while branch-and-bound stays shallow enough that the root
   re-solve — the part the warm basis pays for — dominates the pivot bill.
   The CI gate asserts the aggregate warm/cold pivots-per-cut ratio stays
   small — the proof the appended cut is absorbed basis-intact rather than
   paid for with a cold solve. *)
let run_enumerate ?(jobs = 1) scale json =
  let rng = Random.State.make [| 1010 |] in
  let q = Queries.q2_chain () in
  if not json then
    header
      (Printf.sprintf
         "Enumerate: warm no-good cut chain vs cold re-solves (2-chain, set, jobs=%d)" jobs)
      [ "tuples"; "witnesses"; "opt"; "sets"; "exhausted"; "cuts"; "cuts_per_s";
        "warm_piv/cut"; "cold_piv/cut"; "ratio"; "identical" ];
  let entries = ref [] in
  let warm_pivots = ref 0 and cold_pivots = ref 0 in
  let warm_cuts = ref 0 and cold_cuts = ref 0 in
  let all_identical = ref true in
  List.iter
    (fun (count, domain) ->
      let count = max 8 (int_of_float (float_of_int count *. scale)) in
      let domain = max 4 (int_of_float (float_of_int domain *. scale)) in
      let specs = Datagen.Random_inst.specs_of_query q ~count in
      let db = Datagen.Random_inst.db rng ~domain specs in
      let witnesses = Eval.count q db in
      if witnesses > 0 then begin
        let session = Session.create set q db in
        let warm, t_warm = time (fun () -> Session.enumerate_resilience ~jobs session) in
        let cold, t_cold = time (fun () -> Enumerate.resilience_cold set q db) in
        match (warm, cold) with
        | Session.Solved wf, Enumerate.Family cf ->
          let ws = wf.Enumerate.fstats and cs = cf.Enumerate.fstats in
          let identical = wf.Enumerate.opt = cf.Enumerate.opt && wf.Enumerate.sets = cf.Enumerate.sets in
          if not identical then all_identical := false;
          warm_pivots := !warm_pivots + ws.Enumerate.cut_pivots;
          cold_pivots := !cold_pivots + cs.Enumerate.cut_pivots;
          warm_cuts := !warm_cuts + ws.Enumerate.cuts;
          cold_cuts := !cold_cuts + cs.Enumerate.cuts;
          let per_cut pivots cuts =
            if cuts > 0 then float_of_int pivots /. float_of_int cuts else 0.0
          in
          let warm_per_cut = per_cut ws.Enumerate.cut_pivots ws.Enumerate.cuts in
          let cold_per_cut = per_cut cs.Enumerate.cut_pivots cs.Enumerate.cuts in
          let ratio = if cold_per_cut > 0.0 then warm_per_cut /. cold_per_cut else nan in
          let cuts_per_s =
            if t_warm > 0.0 then float_of_int ws.Enumerate.cuts /. t_warm else nan
          in
          let tuples = List.length (Database.tuples db) in
          entries :=
            Printf.sprintf
              "{\"tuples\":%d,\"witnesses\":%d,\"jobs\":%d,\"opt\":%d,\"sets\":%d,\"exhausted\":%b,\"cuts\":%d,\"warm_s\":%.6f,\"cold_s\":%.6f,\"cuts_per_s\":%.1f,\"warm_cut_pivots\":%d,\"cold_cut_pivots\":%d,\"warm_pivots_per_cut\":%.2f,\"cold_pivots_per_cut\":%.2f,\"identical\":%b}"
              tuples witnesses jobs wf.Enumerate.opt
              (List.length wf.Enumerate.sets)
              wf.Enumerate.exhausted ws.Enumerate.cuts t_warm t_cold cuts_per_s
              ws.Enumerate.cut_pivots cs.Enumerate.cut_pivots warm_per_cut cold_per_cut
              identical
            :: !entries;
          if not json then
            row
              [
                string_of_int tuples;
                string_of_int witnesses;
                string_of_int wf.Enumerate.opt;
                string_of_int (List.length wf.Enumerate.sets);
                string_of_bool wf.Enumerate.exhausted;
                string_of_int ws.Enumerate.cuts;
                Printf.sprintf "%.1f" cuts_per_s;
                Printf.sprintf "%.2f" warm_per_cut;
                Printf.sprintf "%.2f" cold_per_cut;
                (if Float.is_nan ratio then "-" else Printf.sprintf "%.3f" ratio);
                string_of_bool identical;
              ]
        | _ -> ()
      end)
    [ (200, 20); (320, 26); (480, 32) ];
  let warm_per_cut =
    if !warm_cuts > 0 then float_of_int !warm_pivots /. float_of_int !warm_cuts else 0.0
  in
  let cold_per_cut =
    if !cold_cuts > 0 then float_of_int !cold_pivots /. float_of_int !cold_cuts else 0.0
  in
  let ratio = if cold_per_cut > 0.0 then warm_per_cut /. cold_per_cut else nan in
  if json then
    Printf.printf
      "{\"rows\":[%s],\"aggregate\":{\"warm_cut_pivots\":%d,\"cold_cut_pivots\":%d,\"warm_pivots_per_cut\":%.3f,\"cold_pivots_per_cut\":%.3f,\"warm_vs_cold_ratio\":%.4f,\"identical\":%b}}\n"
      (String.concat "," (List.rev !entries))
      !warm_pivots !cold_pivots warm_per_cut cold_per_cut ratio !all_identical
  else
    Printf.printf "aggregate: warm %.2f pivots/cut vs cold %.2f pivots/cut (ratio %.3f), identical %b\n"
      warm_per_cut cold_per_cut ratio !all_identical

(* ---- certificate coverage ------------------------------------------------------ *)

(* Which query classes get which Lp.Struct certificate, and does the
   certificate-aware dispatch actually skip branch-and-bound?  One random
   instance per named query; the EXPERIMENTS.md coverage table is this
   command at the default scale. *)
let run_certify scale =
  header "Certificate coverage: Lp.Struct verdicts per query class (set semantics)"
    [ "query"; "RES/set"; "verdict"; "witness"; "structural"; "certified"; "nodes" ];
  let show = function
    | Analysis.Ptime -> "PTIME"
    | Analysis.Npc -> "NPC"
    | Analysis.Unknown -> "open"
  in
  let rng = Random.State.make [| 808 |] in
  List.iter
    (fun (name, q) ->
      let count = max 6 (int_of_float (40.0 *. scale)) in
      let specs = Datagen.Random_inst.specs_of_query q ~count in
      let db = Datagen.Random_inst.db rng ~domain:10 specs in
      let complexity = show (Analysis.res_complexity set q) in
      match Encode.res Encode.Ilp set q db with
      | Encode.Trivial _ | Encode.Impossible ->
        row [ name; complexity; "-"; "-"; "-"; "-"; "-" ]
      | Encode.Encoded enc ->
        let fz = Lp.Frozen.of_model enc.Encode.model in
        let cert = Lp.Struct.analyze ~probe_root:true fz in
        let witness =
          match cert.Lp.Struct.verdict with
          | Lp.Struct.Integral w -> Lp.Struct.witness_name w
          | Lp.Struct.Fractional _ | Lp.Struct.Unknown -> "-"
        in
        let certified, nodes =
          match Solve.resilience set q db with
          | Solve.Solved a ->
            (string_of_bool a.Solve.res_stats.Solve.certified,
             string_of_int a.Solve.res_stats.Solve.nodes)
          | Solve.Query_false | Solve.No_contingency | Solve.Budget_exhausted _ -> ("-", "-")
        in
        row
          [
            name; complexity;
            Lp.Struct.verdict_name cert;
            witness;
            string_of_bool (Lp.Struct.structural cert);
            certified; nodes;
          ])
    (Queries.all_named ())

(* ---- command wiring ------------------------------------------------------------ *)

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc:"Instance size multiplier")

let simple name doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const (fun () ->
          f ();
          0)
      $ const ())

let scaled name doc f =
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const (fun scale ->
          f scale;
          0)
      $ scale_arg)

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit one machine-readable JSON array instead of a table")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Also time Session.ranking_par over N domains (0 = all recommended domains) and \
           report its speedup over the sequential session")

let dense_arg =
  Arg.(
    value
    & flag
    & info [ "dense" ]
        ~doc:
          "Shrink the join domain so witnesses multiply — the regime where the shared \
           super-model loses to cold per-tuple solves (crossover measurement)")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record solver telemetry for the whole run and write a Chrome trace-event JSON \
           (load in Perfetto; one track per domain)")

let basis_arg =
  Arg.(
    value
    & opt (enum [ ("auto", `Auto); ("dense", `Dense); ("sparse", `Sparse) ]) `Auto
    & info [ "basis" ] ~docv:"KERNEL"
        ~doc:
          "Basis kernel for every session the benchmark opens: auto (= sparse LU), sparse, or \
           dense (the reference inverse, for before/after comparisons)")

let force_shared_arg =
  Arg.(
    value
    & flag
    & info [ "force-shared" ]
        ~doc:
          "Disable the dense-regime fallback (dense_rows_threshold = max_int) so the shared \
           super-model path runs at any row count — how the crossover itself is measured")

let metrics_arg =
  Arg.(
    value
    & flag
    & info [ "metrics" ]
        ~doc:
          "Arm the metrics plane (histograms, gauges, counters; no span buffering) for the \
           whole run — the CI overhead gate compares session times with and without this \
           flag")

let ranking_cmd =
  Cmd.v (Cmd.info "ranking" ~doc:"responsibility ranking: warm session vs cold per-tuple solves")
    Term.(
      const (fun scale json jobs dense basis force_shared metrics trace ->
          let jobs = if jobs = 0 then Lp.Pool.default_jobs () else jobs in
          run_ranking ~jobs ~dense ~basis ~force_shared ~metrics ?trace scale json;
          0)
      $ scale_arg $ json_arg $ jobs_arg $ dense_arg $ basis_arg $ force_shared_arg
      $ metrics_arg $ trace_arg)

let run_all scale =
  run_table1 ();
  run_setting1 scale;
  run_setting2 scale;
  run_setting3 scale;
  run_setting4 scale;
  run_setting5 scale;
  run_certificates ();
  run_certify scale;
  run_ablations scale;
  run_ranking scale false;
  run_micro ()

let () =
  let doc = "experiment harness reproducing the paper's tables and figures" in
  let info = Cmd.info "bench" ~doc in
  let default =
    Term.(
      const (fun scale ->
          run_all scale;
          0)
      $ scale_arg)
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            simple "table1" "Table 1: dichotomy overview" run_table1;
            scaled "setting1" "Fig. 5: hard 3-star query" run_setting1;
            scaled "setting2" "Fig. 6: TPC-H-shaped data" run_setting2;
            scaled "setting3" "Fig. 7: self-joins under bags" run_setting3;
            scaled "setting4" "Fig. 13: set vs bag on QtriangleA" run_setting4;
            scaled "setting5" "Fig. 14: z6 and adversarial instances" run_setting5;
            simple "certificates" "Figs. 3/10/15: automatic IJP certificates" run_certificates;
            scaled "certify" "Lp.Struct certificate coverage per query class" run_certify;
            scaled "ablations" "design-choice ablations" run_ablations;
            ranking_cmd;
            Cmd.v
              (Cmd.info "serve"
                 ~doc:"serve: steady-state cached latency vs cold one-shot solves")
              Term.(
                const (fun scale json jobs ->
                    let jobs = if jobs = 0 then Lp.Pool.default_jobs () else jobs in
                    run_serve ~jobs scale json;
                    0)
                $ scale_arg $ json_arg $ jobs_arg);
            Cmd.v
              (Cmd.info "enumerate"
                 ~doc:
                   "enumerate: warm no-good cut throughput and pivots-per-cut vs the cold \
                    re-solve reference")
              Term.(
                const (fun scale json jobs ->
                    let jobs = if jobs = 0 then Lp.Pool.default_jobs () else jobs in
                    run_enumerate ~jobs scale json;
                    0)
                $ scale_arg $ json_arg $ jobs_arg);
            simple "micro" "Bechamel micro-benchmarks" run_micro;
          ]))
