(* Direct units for the frozen CSR/CSC program form and its Delta bound
   overlays — the immutable substrate every solver stage consumes. *)

open Lp
module FB = Lp.Solvers.Float_bb
module FS = Lp.Solvers.Float_simplex
module ES = Lp.Solvers.Exact_simplex
module EB = Lp.Solvers.Exact_bb

let expect_invalid name f =
  Alcotest.(check bool) name true
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

(* A small mixed fixture touching every corner: a binary integer, bounded
   and unbounded continuous columns, a zero upper bound, all three row
   senses. *)
let mixed_model () =
  let m = Model.create () in
  let x = Model.add_var ~name:"x" ~integer:true ~upper:1 ~obj:2 m in
  let y = Model.add_var ~name:"y" ~upper:3 ~obj:1 m in
  let z = Model.add_var ~name:"z" ~upper:0 ~obj:5 m in
  let w = Model.add_var ~name:"w" m in
  Model.add_constr m [ (x, 1); (y, 2) ] Model.Geq 1;
  Model.add_constr m [ (y, 1); (z, 1); (w, 3) ] Model.Leq 4;
  Model.add_constr m [ (w, 1); (x, 1) ] Model.Eq 1;
  (m, (x, y, z, w))

let row_entries fz =
  List.concat
    (List.init (Frozen.num_rows fz) (fun i ->
         List.map (fun (v, c) -> (i, v, c)) (Frozen.row_expr fz i)))

let col_entries fz =
  let acc = ref [] in
  for v = 0 to Frozen.num_vars fz - 1 do
    Frozen.iter_col fz v (fun i c -> acc := (i, v, c) :: !acc)
  done;
  List.rev !acc

(* Structural equality of two frozen programs, field by field. *)
let programs_equal a b =
  Frozen.num_vars a = Frozen.num_vars b
  && Frozen.num_rows a = Frozen.num_rows b
  && Frozen.nnz a = Frozen.nnz b
  && List.for_all
       (fun v ->
         Frozen.objective a v = Frozen.objective b v
         && Frozen.upper a v = Frozen.upper b v
         && Frozen.is_integer a v = Frozen.is_integer b v
         && Frozen.var_name a v = Frozen.var_name b v)
       (List.init (Frozen.num_vars a) Fun.id)
  && List.for_all
       (fun i ->
         Frozen.row_sense a i = Frozen.row_sense b i
         && Frozen.row_rhs a i = Frozen.row_rhs b i
         && Frozen.row_expr a i = Frozen.row_expr b i)
       (List.init (Frozen.num_rows a) Fun.id)

(* --- CSR / CSC ------------------------------------------------------------- *)

let test_csr_csc_agree () =
  let m, _ = mixed_model () in
  let fz = Frozen.of_model m in
  Alcotest.(check int) "nnz = row entries" (List.length (row_entries fz)) (Frozen.nnz fz);
  Alcotest.(check (list (triple int int int))) "CSR entries = CSC entries"
    (List.sort compare (row_entries fz))
    (List.sort compare (col_entries fz));
  let row_sizes = List.init (Frozen.num_rows fz) (Frozen.row_size fz) in
  let col_sizes = List.init (Frozen.num_vars fz) (Frozen.col_size fz) in
  Alcotest.(check int) "row sizes sum to nnz" (Frozen.nnz fz)
    (List.fold_left ( + ) 0 row_sizes);
  Alcotest.(check int) "col sizes sum to nnz" (Frozen.nnz fz)
    (List.fold_left ( + ) 0 col_sizes)

let test_per_variable_data () =
  let m, (x, y, z, w) = mixed_model () in
  let fz = Frozen.of_model m in
  Alcotest.(check int) "obj x" 2 (Frozen.objective fz x);
  Alcotest.(check (option int)) "upper y" (Some 3) (Frozen.upper fz y);
  Alcotest.(check (option int)) "upper z is zero, not absent" (Some 0) (Frozen.upper fz z);
  Alcotest.(check (option int)) "w unbounded" None (Frozen.upper fz w);
  Alcotest.(check bool) "x integer" true (Frozen.is_integer fz x);
  Alcotest.(check bool) "y continuous" false (Frozen.is_integer fz y);
  Alcotest.(check (list int)) "integer vars" [ x ] (Frozen.integer_vars fz);
  Alcotest.(check string) "name" "z" (Frozen.var_name fz z)

let test_row_normal_form () =
  let m, (x, _, _, w) = mixed_model () in
  let fz = Frozen.of_model m in
  (* The Eq row was added as [(w, 1); (x, 1)]; rows are stored sorted by
     variable. *)
  Alcotest.(check (list (pair int int))) "sorted by variable" [ (x, 1); (w, 1) ]
    (Frozen.row_expr fz 2);
  Alcotest.(check bool) "sense preserved" true (Frozen.row_sense fz 2 = Model.Eq);
  Alcotest.(check int) "rhs preserved" 1 (Frozen.row_rhs fz 2)

(* --- Round-trips ------------------------------------------------------------ *)

let test_thaw_refreeze () =
  let m, _ = mixed_model () in
  let fz = Frozen.of_model m in
  Alcotest.(check bool) "of_model . to_model = id" true
    (programs_equal fz (Frozen.of_model (Frozen.to_model fz)))

let test_make_matches_of_model () =
  let m, _ = mixed_model () in
  let fz = Frozen.of_model m in
  let n = Frozen.num_vars fz in
  let made =
    Frozen.make
      ~names:(Array.init n (Frozen.var_name fz))
      ~integer:(Array.init n (Frozen.is_integer fz))
      ~upper:(Array.init n (Frozen.upper fz))
      ~obj:(Array.init n (Frozen.objective fz))
      ~rows:
        (Array.init (Frozen.num_rows fz) (fun i ->
             (Frozen.row_sense fz i, Frozen.row_rhs fz i, Frozen.row_expr fz i)))
  in
  Alcotest.(check bool) "make from accessors = of_model" true (programs_equal fz made)

let test_make_validates () =
  expect_invalid "unsorted row rejected" (fun () ->
      Frozen.make ~names:[| "a"; "b" |] ~integer:[| false; false |]
        ~upper:[| Some 1; Some 1 |] ~obj:[| 1; 1 |]
        ~rows:[| (Model.Geq, 1, [ (1, 1); (0, 1) ]) |]);
  expect_invalid "zero coefficient rejected" (fun () ->
      Frozen.make ~names:[| "a" |] ~integer:[| false |] ~upper:[| Some 1 |] ~obj:[| 1 |]
        ~rows:[| (Model.Geq, 0, [ (0, 0) ]) |]);
  expect_invalid "array length mismatch rejected" (fun () ->
      Frozen.make ~names:[| "a" |] ~integer:[| false; false |] ~upper:[| Some 1; Some 1 |]
        ~obj:[| 1; 1 |] ~rows:[||])

let prop_thaw_refreeze_random =
  Harness.seeded_prop ~count:200 "thaw/refreeze round-trips random covers" (fun rng ->
      let nvars = 2 + Random.State.int rng 8 in
      let nrows = 1 + Random.State.int rng 8 in
      let fz, _ = Harness.random_covering_frozen rng ~nvars ~nrows in
      programs_equal fz (Frozen.of_model (Frozen.to_model fz)))

let prop_csr_csc_random =
  Harness.seeded_prop ~count:200 "CSR = CSC on random covers" (fun rng ->
      let nvars = 2 + Random.State.int rng 8 in
      let nrows = 1 + Random.State.int rng 8 in
      let fz, _ = Harness.random_covering_frozen rng ~nvars ~nrows in
      List.sort compare (row_entries fz) = List.sort compare (col_entries fz))

(* --- Delta overlays ---------------------------------------------------------- *)

let test_delta_persistence () =
  Alcotest.(check bool) "empty is empty" true (Frozen.Delta.is_empty Frozen.Delta.empty);
  let d1 = Frozen.Delta.fix_zero 0 Frozen.Delta.empty in
  let d2 = Frozen.Delta.force_one 1 d1 in
  Alcotest.(check bool) "non-empty" false (Frozen.Delta.is_empty d1);
  (* persistence: extending d1 must not mutate it *)
  Alcotest.(check (option int)) "parent unaffected by child" None (Frozen.Delta.find d1 1);
  Alcotest.(check (option int)) "child sees both" (Some 0) (Frozen.Delta.find d2 0);
  Alcotest.(check (list (pair int int))) "bindings ascending by variable" [ (0, 0); (1, 1) ]
    (Frozen.Delta.bindings d2);
  let d3 = Frozen.Delta.fix 0 1 d2 in
  Alcotest.(check (option int)) "re-fix replaces the override" (Some 1)
    (Frozen.Delta.find d3 0);
  Alcotest.(check (list (pair int int))) "one binding per variable" [ (0, 1); (1, 1) ]
    (List.sort compare (Frozen.Delta.bindings d3));
  let d4 = Frozen.Delta.release 1 d3 in
  Alcotest.(check (option int)) "release restores base bounds" None (Frozen.Delta.find d4 1);
  expect_invalid "negative constant rejected" (fun () ->
      Frozen.Delta.fix 0 (-1) Frozen.Delta.empty)

let test_delta_overlay_feasibility () =
  let m = Model.create () in
  let x = Model.add_var ~upper:1 ~obj:1 m in
  let y = Model.add_var ~upper:1 ~obj:1 m in
  Model.add_constr m [ (x, 1); (y, 1) ] Model.Geq 1;
  let fz = Frozen.of_model m in
  Alcotest.(check bool) "base point feasible" true (Frozen.check_feasible fz [| 1.0; 0.0 |]);
  let dx0 = Frozen.Delta.fix_zero x Frozen.Delta.empty in
  Alcotest.(check bool) "fix_zero violated by x=1" false
    (Frozen.check_feasible ~delta:dx0 fz [| 1.0; 0.0 |]);
  Alcotest.(check bool) "fix_zero satisfied by x=0" true
    (Frozen.check_feasible ~delta:dx0 fz [| 0.0; 1.0 |]);
  let dy1 = Frozen.Delta.force_one y Frozen.Delta.empty in
  Alcotest.(check bool) "force_one pins the value" false
    (Frozen.check_feasible ~delta:dy1 fz [| 1.0; 0.0 |]);
  Alcotest.(check bool) "released override restores base" true
    (Frozen.check_feasible ~delta:(Frozen.Delta.release x dx0) fz [| 1.0; 0.0 |])

(* Delta extension drives branch-and-bound: any solution returned under a
   delta satisfies every binding and the base program. *)
let prop_bb_respects_delta =
  Harness.seeded_prop ~count:200 "B&B solutions respect delta overlays" (fun rng ->
      let nvars = 3 + Random.State.int rng 6 in
      let nrows = 2 + Random.State.int rng 6 in
      let fz, vars = Harness.random_covering_frozen ~integer:true rng ~nvars ~nrows in
      let delta =
        Array.fold_left
          (fun d v ->
            match Random.State.int rng 4 with
            | 0 -> Frozen.Delta.fix_zero v d
            | 1 -> Frozen.Delta.force_one v d
            | _ -> d)
          Frozen.Delta.empty vars
      in
      let r = FB.solve_frozen ~delta fz in
      match r.FB.solution with
      | None -> r.FB.status = FB.Infeasible
      | Some x ->
        Frozen.check_feasible ~delta fz x
        && List.for_all
             (fun (v, k) -> Float.abs (x.(v) -. float_of_int k) < 1e-6)
             (Frozen.Delta.bindings delta))

(* --- Row/column appends ------------------------------------------------------ *)

(* A covering base plus one appended column and one appended row, written
   out by hand — [Frozen.extend] must produce exactly the program that
   [Frozen.make] builds from the combined data. *)
let test_extend_equals_rebuild () =
  let m = Model.create () in
  let x = Model.add_var ~name:"x" ~integer:true ~upper:1 ~obj:2 m in
  let y = Model.add_var ~name:"y" ~integer:true ~upper:1 ~obj:3 m in
  Model.add_constr m [ (x, 1); (y, 1) ] Model.Geq 1;
  let fz = Frozen.of_model m in
  let d =
    Frozen.Delta.empty
    |> Frozen.Delta.append_col ~integer:true ~upper:1 ~name:"a" ~obj:1
    |> Frozen.Delta.append_row Model.Geq 1 [ (y, 1); (2, 1) ]
  in
  Alcotest.(check int) "one appended col" 1 (Frozen.Delta.num_appended_cols d);
  Alcotest.(check int) "one appended row" 1 (Frozen.Delta.num_appended_rows d);
  let ext = Frozen.extend fz d in
  let want =
    Frozen.make
      ~names:[| "x"; "y"; "a" |]
      ~integer:[| true; true; true |]
      ~upper:[| Some 1; Some 1; Some 1 |]
      ~obj:[| 2; 3; 1 |]
      ~rows:[| (Model.Geq, 1, [ (0, 1); (1, 1) ]); (Model.Geq, 1, [ (1, 1); (2, 1) ]) |]
  in
  Alcotest.(check bool) "extend = rebuild" true (programs_equal ext want);
  (* CSR/CSC stay in lockstep on the extended program *)
  Alcotest.(check (list (triple int int int))) "extended CSR = CSC"
    (List.sort compare (row_entries ext))
    (List.sort compare (col_entries ext));
  (* no appends: extend is the identity *)
  Alcotest.(check bool) "no-append extend is the same program" true
    (fz == Frozen.extend fz (Frozen.Delta.fix_zero x Frozen.Delta.empty))

let test_append_validation () =
  expect_invalid "negative upper rejected" (fun () ->
      Frozen.Delta.append_col ~upper:(-1) ~name:"bad" ~obj:0 Frozen.Delta.empty);
  expect_invalid "zero coefficient rejected" (fun () ->
      Frozen.Delta.append_row Model.Geq 1 [ (0, 0) ] Frozen.Delta.empty);
  expect_invalid "negative var rejected" (fun () ->
      Frozen.Delta.append_row Model.Geq 1 [ (-1, 1) ] Frozen.Delta.empty);
  (* a row referencing a variable past base + appends fails at extend *)
  let m = Model.create () in
  ignore (Model.add_var ~upper:1 ~obj:1 m);
  let fz = Frozen.of_model m in
  expect_invalid "out-of-range row var rejected at extend" (fun () ->
      Frozen.extend fz (Frozen.Delta.append_row Model.Geq 1 [ (5, 1) ] Frozen.Delta.empty))

let test_append_chain_sharing () =
  let d1 = Frozen.Delta.append_col ~name:"a" ~obj:1 Frozen.Delta.empty in
  let d2 = Frozen.Delta.append_row Model.Geq 1 [ (0, 1) ] d1 in
  Alcotest.(check bool) "has_appends" true (Frozen.Delta.has_appends d2);
  Alcotest.(check bool) "chain extends its prefix" true (Frozen.Delta.extends ~prefix:d1 d2);
  Alcotest.(check bool) "prefix does not extend the chain" false
    (Frozen.Delta.extends ~prefix:d2 d1);
  Alcotest.(check bool) "same_appends ignores bindings" true
    (Frozen.Delta.same_appends d2 (Frozen.Delta.fix_zero 0 d2));
  let cleared = Frozen.Delta.clear_appends d2 in
  Alcotest.(check bool) "clear_appends drops the chain" false
    (Frozen.Delta.has_appends cleared);
  (* bindings survive the clearing *)
  Alcotest.(check (option int)) "bindings kept" (Some 0)
    (Frozen.Delta.find (Frozen.Delta.clear_appends (Frozen.Delta.fix_zero 0 d2)) 0)

let test_append_check_feasible () =
  let m = Model.create () in
  let x = Model.add_var ~upper:1 ~obj:1 m in
  let y = Model.add_var ~upper:1 ~obj:1 m in
  Model.add_constr m [ (x, 1); (y, 1) ] Model.Geq 1;
  let fz = Frozen.of_model m in
  let d =
    Frozen.Delta.empty
    |> Frozen.Delta.append_col ~upper:1 ~name:"a" ~obj:1
    |> Frozen.Delta.append_row Model.Geq 1 [ (y, 1); (2, 1) ]
  in
  (* x is indexed by extended variable: base point alone no longer typechecks
     the appended row *)
  Alcotest.(check bool) "appended row violated" false
    (Frozen.check_feasible ~delta:d fz [| 1.0; 0.0; 0.0 |]);
  Alcotest.(check bool) "appended col can cover the appended row" true
    (Frozen.check_feasible ~delta:d fz [| 1.0; 0.0; 1.0 |]);
  Alcotest.(check bool) "base solution with y covers both" true
    (Frozen.check_feasible ~delta:d fz [| 0.0; 1.0; 0.0 |])

(* A random monotone append chain over any covering base.  Built strictly
   left to right so every draw order is deterministic per seed. *)
let random_append_chain rng fz nsteps =
  let total = ref (Frozen.num_vars fz) in
  let d = ref Frozen.Delta.empty in
  let acc = ref [] in
  for i = 0 to nsteps - 1 do
    if Random.State.bool rng then begin
      d :=
        Frozen.Delta.append_col
          ~integer:(Random.State.bool rng)
          ~upper:1
          ~name:(Printf.sprintf "a%d" i)
          ~obj:(Random.State.int rng 4)
          !d;
      incr total
    end;
    if Random.State.int rng 4 > 0 then begin
      let width = 1 + Random.State.int rng 2 in
      let picked = ref [] in
      for _ = 1 to width do
        picked := Random.State.int rng !total :: !picked
      done;
      let picked = List.sort_uniq compare !picked in
      d := Frozen.Delta.append_row Model.Geq 1 (List.map (fun v -> (v, 1)) picked) !d
    end;
    acc := !d :: !acc
  done;
  List.rev !acc

(* Warm absorb = cold re-freeze, at float and at exact rationals: a session
   fed the growing chain must report the same LP optimum as a fresh session
   on the materialised [Frozen.extend] program, and the same holds for the
   integer optimum through branch-and-bound. *)
let prop_append_warm_equals_refreeze =
  Harness.seeded_prop ~count:150 "warm append absorb = cold re-freeze (float + exact)"
    (fun rng ->
      let nvars = 2 + Random.State.int rng 5 in
      let nrows = 1 + Random.State.int rng 5 in
      let fz, _ = Harness.random_covering_frozen ~integer:true rng ~nvars ~nrows in
      (not (FS.frozen_dual_applicable fz))
      ||
      let chain = random_append_chain rng fz (1 + Random.State.int rng 4) in
      let warm_f = FS.create_session fz in
      let warm_e = ES.create_session fz in
      List.for_all
        (fun delta ->
          let ext = Frozen.extend fz delta in
          let flat = Frozen.Delta.clear_appends delta in
          let float_ok =
            match (FS.session_solve warm_f delta, FS.session_solve (FS.create_session ext) flat) with
            | FS.Optimal { objective = wo; solution = ws }, FS.Optimal { objective = co; _ } ->
              Float.abs (wo -. co) < 1e-7 && Frozen.check_feasible ~delta fz ws
            | FS.Infeasible, FS.Infeasible | FS.Unbounded, FS.Unbounded -> true
            | _ -> false
          in
          let exact_ok =
            match (ES.session_solve warm_e delta, ES.session_solve (ES.create_session ext) flat) with
            | ES.Optimal { objective = wo; _ }, ES.Optimal { objective = co; _ } ->
              Numeric.Rat.equal wo co
            | ES.Infeasible, ES.Infeasible | ES.Unbounded, ES.Unbounded -> true
            | _ -> false
          in
          let bb_ok =
            let w = FB.solve_frozen ~delta fz in
            let c = EB.solve_frozen ~delta fz in
            match (w.FB.status, w.FB.objective, c.EB.status, c.EB.objective) with
            | FB.Optimal, Some fo, EB.Optimal, Some eo ->
              Float.abs (fo -. Numeric.Rat.to_float eo) < 1e-6
            | FB.Infeasible, _, EB.Infeasible, _ -> true
            | _ -> false
          in
          float_ok && exact_ok && bb_ok)
        chain)

let () =
  Alcotest.run "frozen"
    [
      ( "structure",
        [
          Alcotest.test_case "CSR and CSC agree" `Quick test_csr_csc_agree;
          Alcotest.test_case "per-variable data" `Quick test_per_variable_data;
          Alcotest.test_case "row normal form" `Quick test_row_normal_form;
          Harness.qtest prop_csr_csc_random;
        ] );
      ( "round-trip",
        [
          Alcotest.test_case "thaw/refreeze" `Quick test_thaw_refreeze;
          Alcotest.test_case "make from accessors" `Quick test_make_matches_of_model;
          Alcotest.test_case "make validates input" `Quick test_make_validates;
          Harness.qtest prop_thaw_refreeze_random;
        ] );
      ( "delta",
        [
          Alcotest.test_case "persistent overlays" `Quick test_delta_persistence;
          Alcotest.test_case "overlay feasibility" `Quick test_delta_overlay_feasibility;
          Harness.qtest prop_bb_respects_delta;
        ] );
      ( "appends",
        [
          Alcotest.test_case "extend = rebuild" `Quick test_extend_equals_rebuild;
          Alcotest.test_case "append validation" `Quick test_append_validation;
          Alcotest.test_case "chain sharing" `Quick test_append_chain_sharing;
          Alcotest.test_case "check_feasible over appends" `Quick test_append_check_feasible;
          Harness.qtest prop_append_warm_equals_refreeze;
        ] );
    ]
