(* Direct units for the frozen CSR/CSC program form and its Delta bound
   overlays — the immutable substrate every solver stage consumes. *)

open Lp
module FB = Lp.Solvers.Float_bb

let expect_invalid name f =
  Alcotest.(check bool) name true
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

(* A small mixed fixture touching every corner: a binary integer, bounded
   and unbounded continuous columns, a zero upper bound, all three row
   senses. *)
let mixed_model () =
  let m = Model.create () in
  let x = Model.add_var ~name:"x" ~integer:true ~upper:1 ~obj:2 m in
  let y = Model.add_var ~name:"y" ~upper:3 ~obj:1 m in
  let z = Model.add_var ~name:"z" ~upper:0 ~obj:5 m in
  let w = Model.add_var ~name:"w" m in
  Model.add_constr m [ (x, 1); (y, 2) ] Model.Geq 1;
  Model.add_constr m [ (y, 1); (z, 1); (w, 3) ] Model.Leq 4;
  Model.add_constr m [ (w, 1); (x, 1) ] Model.Eq 1;
  (m, (x, y, z, w))

let row_entries fz =
  List.concat
    (List.init (Frozen.num_rows fz) (fun i ->
         List.map (fun (v, c) -> (i, v, c)) (Frozen.row_expr fz i)))

let col_entries fz =
  let acc = ref [] in
  for v = 0 to Frozen.num_vars fz - 1 do
    Frozen.iter_col fz v (fun i c -> acc := (i, v, c) :: !acc)
  done;
  List.rev !acc

(* Structural equality of two frozen programs, field by field. *)
let programs_equal a b =
  Frozen.num_vars a = Frozen.num_vars b
  && Frozen.num_rows a = Frozen.num_rows b
  && Frozen.nnz a = Frozen.nnz b
  && List.for_all
       (fun v ->
         Frozen.objective a v = Frozen.objective b v
         && Frozen.upper a v = Frozen.upper b v
         && Frozen.is_integer a v = Frozen.is_integer b v
         && Frozen.var_name a v = Frozen.var_name b v)
       (List.init (Frozen.num_vars a) Fun.id)
  && List.for_all
       (fun i ->
         Frozen.row_sense a i = Frozen.row_sense b i
         && Frozen.row_rhs a i = Frozen.row_rhs b i
         && Frozen.row_expr a i = Frozen.row_expr b i)
       (List.init (Frozen.num_rows a) Fun.id)

(* --- CSR / CSC ------------------------------------------------------------- *)

let test_csr_csc_agree () =
  let m, _ = mixed_model () in
  let fz = Frozen.of_model m in
  Alcotest.(check int) "nnz = row entries" (List.length (row_entries fz)) (Frozen.nnz fz);
  Alcotest.(check (list (triple int int int))) "CSR entries = CSC entries"
    (List.sort compare (row_entries fz))
    (List.sort compare (col_entries fz));
  let row_sizes = List.init (Frozen.num_rows fz) (Frozen.row_size fz) in
  let col_sizes = List.init (Frozen.num_vars fz) (Frozen.col_size fz) in
  Alcotest.(check int) "row sizes sum to nnz" (Frozen.nnz fz)
    (List.fold_left ( + ) 0 row_sizes);
  Alcotest.(check int) "col sizes sum to nnz" (Frozen.nnz fz)
    (List.fold_left ( + ) 0 col_sizes)

let test_per_variable_data () =
  let m, (x, y, z, w) = mixed_model () in
  let fz = Frozen.of_model m in
  Alcotest.(check int) "obj x" 2 (Frozen.objective fz x);
  Alcotest.(check (option int)) "upper y" (Some 3) (Frozen.upper fz y);
  Alcotest.(check (option int)) "upper z is zero, not absent" (Some 0) (Frozen.upper fz z);
  Alcotest.(check (option int)) "w unbounded" None (Frozen.upper fz w);
  Alcotest.(check bool) "x integer" true (Frozen.is_integer fz x);
  Alcotest.(check bool) "y continuous" false (Frozen.is_integer fz y);
  Alcotest.(check (list int)) "integer vars" [ x ] (Frozen.integer_vars fz);
  Alcotest.(check string) "name" "z" (Frozen.var_name fz z)

let test_row_normal_form () =
  let m, (x, _, _, w) = mixed_model () in
  let fz = Frozen.of_model m in
  (* The Eq row was added as [(w, 1); (x, 1)]; rows are stored sorted by
     variable. *)
  Alcotest.(check (list (pair int int))) "sorted by variable" [ (x, 1); (w, 1) ]
    (Frozen.row_expr fz 2);
  Alcotest.(check bool) "sense preserved" true (Frozen.row_sense fz 2 = Model.Eq);
  Alcotest.(check int) "rhs preserved" 1 (Frozen.row_rhs fz 2)

(* --- Round-trips ------------------------------------------------------------ *)

let test_thaw_refreeze () =
  let m, _ = mixed_model () in
  let fz = Frozen.of_model m in
  Alcotest.(check bool) "of_model . to_model = id" true
    (programs_equal fz (Frozen.of_model (Frozen.to_model fz)))

let test_make_matches_of_model () =
  let m, _ = mixed_model () in
  let fz = Frozen.of_model m in
  let n = Frozen.num_vars fz in
  let made =
    Frozen.make
      ~names:(Array.init n (Frozen.var_name fz))
      ~integer:(Array.init n (Frozen.is_integer fz))
      ~upper:(Array.init n (Frozen.upper fz))
      ~obj:(Array.init n (Frozen.objective fz))
      ~rows:
        (Array.init (Frozen.num_rows fz) (fun i ->
             (Frozen.row_sense fz i, Frozen.row_rhs fz i, Frozen.row_expr fz i)))
  in
  Alcotest.(check bool) "make from accessors = of_model" true (programs_equal fz made)

let test_make_validates () =
  expect_invalid "unsorted row rejected" (fun () ->
      Frozen.make ~names:[| "a"; "b" |] ~integer:[| false; false |]
        ~upper:[| Some 1; Some 1 |] ~obj:[| 1; 1 |]
        ~rows:[| (Model.Geq, 1, [ (1, 1); (0, 1) ]) |]);
  expect_invalid "zero coefficient rejected" (fun () ->
      Frozen.make ~names:[| "a" |] ~integer:[| false |] ~upper:[| Some 1 |] ~obj:[| 1 |]
        ~rows:[| (Model.Geq, 0, [ (0, 0) ]) |]);
  expect_invalid "array length mismatch rejected" (fun () ->
      Frozen.make ~names:[| "a" |] ~integer:[| false; false |] ~upper:[| Some 1; Some 1 |]
        ~obj:[| 1; 1 |] ~rows:[||])

let prop_thaw_refreeze_random =
  Harness.seeded_prop ~count:200 "thaw/refreeze round-trips random covers" (fun rng ->
      let nvars = 2 + Random.State.int rng 8 in
      let nrows = 1 + Random.State.int rng 8 in
      let fz, _ = Harness.random_covering_frozen rng ~nvars ~nrows in
      programs_equal fz (Frozen.of_model (Frozen.to_model fz)))

let prop_csr_csc_random =
  Harness.seeded_prop ~count:200 "CSR = CSC on random covers" (fun rng ->
      let nvars = 2 + Random.State.int rng 8 in
      let nrows = 1 + Random.State.int rng 8 in
      let fz, _ = Harness.random_covering_frozen rng ~nvars ~nrows in
      List.sort compare (row_entries fz) = List.sort compare (col_entries fz))

(* --- Delta overlays ---------------------------------------------------------- *)

let test_delta_persistence () =
  Alcotest.(check bool) "empty is empty" true (Frozen.Delta.is_empty Frozen.Delta.empty);
  let d1 = Frozen.Delta.fix_zero 0 Frozen.Delta.empty in
  let d2 = Frozen.Delta.force_one 1 d1 in
  Alcotest.(check bool) "non-empty" false (Frozen.Delta.is_empty d1);
  (* persistence: extending d1 must not mutate it *)
  Alcotest.(check (option int)) "parent unaffected by child" None (Frozen.Delta.find d1 1);
  Alcotest.(check (option int)) "child sees both" (Some 0) (Frozen.Delta.find d2 0);
  Alcotest.(check (list (pair int int))) "bindings ascending by variable" [ (0, 0); (1, 1) ]
    (Frozen.Delta.bindings d2);
  let d3 = Frozen.Delta.fix 0 1 d2 in
  Alcotest.(check (option int)) "re-fix replaces the override" (Some 1)
    (Frozen.Delta.find d3 0);
  Alcotest.(check (list (pair int int))) "one binding per variable" [ (0, 1); (1, 1) ]
    (List.sort compare (Frozen.Delta.bindings d3));
  let d4 = Frozen.Delta.release 1 d3 in
  Alcotest.(check (option int)) "release restores base bounds" None (Frozen.Delta.find d4 1);
  expect_invalid "negative constant rejected" (fun () ->
      Frozen.Delta.fix 0 (-1) Frozen.Delta.empty)

let test_delta_overlay_feasibility () =
  let m = Model.create () in
  let x = Model.add_var ~upper:1 ~obj:1 m in
  let y = Model.add_var ~upper:1 ~obj:1 m in
  Model.add_constr m [ (x, 1); (y, 1) ] Model.Geq 1;
  let fz = Frozen.of_model m in
  Alcotest.(check bool) "base point feasible" true (Frozen.check_feasible fz [| 1.0; 0.0 |]);
  let dx0 = Frozen.Delta.fix_zero x Frozen.Delta.empty in
  Alcotest.(check bool) "fix_zero violated by x=1" false
    (Frozen.check_feasible ~delta:dx0 fz [| 1.0; 0.0 |]);
  Alcotest.(check bool) "fix_zero satisfied by x=0" true
    (Frozen.check_feasible ~delta:dx0 fz [| 0.0; 1.0 |]);
  let dy1 = Frozen.Delta.force_one y Frozen.Delta.empty in
  Alcotest.(check bool) "force_one pins the value" false
    (Frozen.check_feasible ~delta:dy1 fz [| 1.0; 0.0 |]);
  Alcotest.(check bool) "released override restores base" true
    (Frozen.check_feasible ~delta:(Frozen.Delta.release x dx0) fz [| 1.0; 0.0 |])

(* Delta extension drives branch-and-bound: any solution returned under a
   delta satisfies every binding and the base program. *)
let prop_bb_respects_delta =
  Harness.seeded_prop ~count:200 "B&B solutions respect delta overlays" (fun rng ->
      let nvars = 3 + Random.State.int rng 6 in
      let nrows = 2 + Random.State.int rng 6 in
      let fz, vars = Harness.random_covering_frozen ~integer:true rng ~nvars ~nrows in
      let delta =
        Array.fold_left
          (fun d v ->
            match Random.State.int rng 4 with
            | 0 -> Frozen.Delta.fix_zero v d
            | 1 -> Frozen.Delta.force_one v d
            | _ -> d)
          Frozen.Delta.empty vars
      in
      let r = FB.solve_frozen ~delta fz in
      match r.FB.solution with
      | None -> r.FB.status = FB.Infeasible
      | Some x ->
        Frozen.check_feasible ~delta fz x
        && List.for_all
             (fun (v, k) -> Float.abs (x.(v) -. float_of_int k) < 1e-6)
             (Frozen.Delta.bindings delta))

let () =
  Alcotest.run "frozen"
    [
      ( "structure",
        [
          Alcotest.test_case "CSR and CSC agree" `Quick test_csr_csc_agree;
          Alcotest.test_case "per-variable data" `Quick test_per_variable_data;
          Alcotest.test_case "row normal form" `Quick test_row_normal_form;
          Harness.qtest prop_csr_csc_random;
        ] );
      ( "round-trip",
        [
          Alcotest.test_case "thaw/refreeze" `Quick test_thaw_refreeze;
          Alcotest.test_case "make from accessors" `Quick test_make_matches_of_model;
          Alcotest.test_case "make validates input" `Quick test_make_validates;
          Harness.qtest prop_thaw_refreeze_random;
        ] );
      ( "delta",
        [
          Alcotest.test_case "persistent overlays" `Quick test_delta_persistence;
          Alcotest.test_case "overlay feasibility" `Quick test_delta_overlay_feasibility;
          Harness.qtest prop_bb_respects_delta;
        ] );
    ]
