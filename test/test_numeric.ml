(* Tests for the bignum / rational substrate. *)

open Numeric

let bi = Bigint.of_int

let check_bigint_int msg expected actual =
  Alcotest.(check (option int)) msg expected (Bigint.to_int_opt actual)

(* --- Bigint units -------------------------------------------------------- *)

let test_of_int_roundtrip () =
  List.iter
    (fun n ->
      check_bigint_int (string_of_int n) (Some n) (bi n);
      Alcotest.(check string) ("to_string " ^ string_of_int n) (string_of_int n)
        (Bigint.to_string (bi n)))
    [ 0; 1; -1; 42; -42; 32767; 32768; -32768; 1_000_000_007; max_int; min_int; min_int + 1 ]

let test_add_sub () =
  check_bigint_int "1+1" (Some 2) (Bigint.add Bigint.one Bigint.one);
  check_bigint_int "5-7" (Some (-2)) (Bigint.sub (bi 5) (bi 7));
  check_bigint_int "x + (-x)" (Some 0) (Bigint.add (bi 123456789) (bi (-123456789)));
  check_bigint_int "carry" (Some 65536) (Bigint.add (bi 32768) (bi 32768))

let test_mul () =
  check_bigint_int "6*7" (Some 42) (Bigint.mul (bi 6) (bi 7));
  check_bigint_int "neg" (Some (-42)) (Bigint.mul (bi (-6)) (bi 7));
  check_bigint_int "zero" (Some 0) (Bigint.mul (bi 0) (bi 999999));
  let big = Bigint.pow (bi 10) 30 in
  Alcotest.(check string) "10^30" "1000000000000000000000000000000" (Bigint.to_string big)

let test_divmod () =
  let q, r = Bigint.divmod (bi 17) (bi 5) in
  check_bigint_int "17/5" (Some 3) q;
  check_bigint_int "17 mod 5" (Some 2) r;
  let q, r = Bigint.divmod (bi (-17)) (bi 5) in
  check_bigint_int "-17/5 truncates" (Some (-3)) q;
  check_bigint_int "-17 mod 5" (Some (-2)) r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bigint.divmod Bigint.one Bigint.zero))

let test_big_division () =
  (* (x*y + r) / y = x with multi-digit operands *)
  let x = Bigint.of_string "123456789012345678901234567890" in
  let y = Bigint.of_string "98765432109876543210" in
  let q, r = Bigint.divmod (Bigint.add (Bigint.mul x y) (bi 77)) y in
  Alcotest.(check bool) "quotient" true (Bigint.equal q x);
  check_bigint_int "remainder" (Some 77) r

let test_of_string () =
  Alcotest.(check bool) "roundtrip" true
    (Bigint.equal
       (Bigint.of_string "-123456789012345678901234567890")
       (Bigint.neg (Bigint.of_string "123456789012345678901234567890")));
  Alcotest.(check bool) "plus sign" true (Bigint.equal (Bigint.of_string "+42") (bi 42));
  List.iter
    (fun s ->
      Alcotest.check_raises ("bad " ^ s) (Invalid_argument "Bigint.of_string: bad digit")
        (fun () -> ignore (Bigint.of_string s)))
    [ "12a3"; "1 2" ]

let test_gcd_pow () =
  check_bigint_int "gcd" (Some 6) (Bigint.gcd (bi 12) (bi 18));
  check_bigint_int "gcd neg" (Some 6) (Bigint.gcd (bi (-12)) (bi 18));
  check_bigint_int "gcd zero" (Some 5) (Bigint.gcd (bi 0) (bi 5));
  check_bigint_int "pow" (Some 1024) (Bigint.pow (bi 2) 10);
  check_bigint_int "pow 0" (Some 1) (Bigint.pow (bi 7) 0)

let test_compare () =
  Alcotest.(check int) "lt" (-1) (Bigint.compare (bi (-5)) (bi 3));
  Alcotest.(check int) "eq" 0 (Bigint.compare (bi 7) (bi 7));
  Alcotest.(check int) "gt magnitude" 1 (Bigint.compare (bi 100000) (bi 99999));
  Alcotest.(check int) "neg order" 1 (Bigint.compare (bi (-1)) (bi (-2)))

let test_to_float () =
  Alcotest.(check (float 1e-6)) "small" 42.0 (Bigint.to_float (bi 42));
  Alcotest.(check (float 1e20)) "large" 1e30 (Bigint.to_float (Bigint.pow (bi 10) 30))

(* --- Bigint properties --------------------------------------------------- *)

let arb_small = QCheck.int_range (-1_000_000_000) 1_000_000_000

let prop_arith_matches_int =
  QCheck.Test.make ~name:"bigint arithmetic matches int" ~count:2000
    (QCheck.pair arb_small arb_small)
    (fun (a, b) ->
      Bigint.to_int_opt (Bigint.add (bi a) (bi b)) = Some (a + b)
      && Bigint.to_int_opt (Bigint.sub (bi a) (bi b)) = Some (a - b)
      && Bigint.to_int_opt (Bigint.mul (bi a) (bi b)) = Some (a * b)
      && (b = 0
         || Bigint.to_int_opt (Bigint.div (bi a) (bi b)) = Some (a / b)
            && Bigint.to_int_opt (Bigint.rem (bi a) (bi b)) = Some (a mod b)))

let arb_digits = QCheck.string_gen_of_size (QCheck.Gen.int_range 1 60) (QCheck.Gen.char_range '0' '9')

let prop_divmod_identity =
  QCheck.Test.make ~name:"a = q*b + r, |r| < |b|" ~count:500
    (QCheck.pair arb_digits arb_digits)
    (fun (sa, sb) ->
      let a = Bigint.of_string ("1" ^ sa) in
      let b = Bigint.of_string ("1" ^ sb) in
      let q, r = Bigint.divmod a b in
      Bigint.equal a (Bigint.add (Bigint.mul q b) r)
      && Bigint.compare (Bigint.abs r) (Bigint.abs b) < 0)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"of_string . to_string = id" ~count:500 arb_digits (fun s ->
      let x = Bigint.of_string ("9" ^ s) in
      Bigint.equal (Bigint.of_string (Bigint.to_string x)) x)

(* --- Rat ------------------------------------------------------------------ *)

let rat = Alcotest.testable (Fmt.of_to_string Rat.to_string) Rat.equal

let test_rat_canonical () =
  Alcotest.check rat "reduction" (Rat.of_ints 1 2) (Rat.of_ints 17 34);
  Alcotest.check rat "sign normalisation" (Rat.of_ints (-1) 2) (Rat.of_ints 1 (-2));
  Alcotest.check rat "zero" Rat.zero (Rat.of_ints 0 99);
  Alcotest.check_raises "zero denominator" Division_by_zero (fun () -> ignore (Rat.of_ints 1 0))

let test_rat_arith () =
  Alcotest.check rat "1/2 + 1/3" (Rat.of_ints 5 6) (Rat.add (Rat.of_ints 1 2) (Rat.of_ints 1 3));
  Alcotest.check rat "mul" (Rat.of_ints 1 3) (Rat.mul (Rat.of_ints 2 3) (Rat.of_ints 1 2));
  Alcotest.check rat "div" (Rat.of_ints 4 3) (Rat.div (Rat.of_ints 2 3) (Rat.of_ints 1 2));
  Alcotest.check rat "inv" (Rat.of_ints (-3) 2) (Rat.inv (Rat.of_ints (-2) 3))

let test_rat_floor_ceil () =
  let check_fc v fl ce =
    Alcotest.(check (option int)) "floor" (Some fl) (Bigint.to_int_opt (Rat.floor v));
    Alcotest.(check (option int)) "ceil" (Some ce) (Bigint.to_int_opt (Rat.ceil v))
  in
  check_fc (Rat.of_ints 7 2) 3 4;
  check_fc (Rat.of_ints (-7) 2) (-4) (-3);
  check_fc (Rat.of_int 5) 5 5

let test_rat_compare () =
  Alcotest.(check int) "1/3 < 1/2" (-1) (Rat.compare (Rat.of_ints 1 3) (Rat.of_ints 1 2));
  Alcotest.(check bool) "is_integer" true (Rat.is_integer (Rat.of_ints 6 3));
  Alcotest.(check bool) "not integer" false (Rat.is_integer (Rat.of_ints 5 3))

let arb_rat =
  QCheck.map
    (fun (n, d) -> Rat.of_ints n (if d = 0 then 1 else d))
    (QCheck.pair (QCheck.int_range (-10000) 10000) (QCheck.int_range (-100) 100))

let prop_rat_field =
  QCheck.Test.make ~name:"rat field axioms" ~count:1000 (QCheck.triple arb_rat arb_rat arb_rat)
    (fun (a, b, c) ->
      Rat.equal (Rat.add a b) (Rat.add b a)
      && Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c))
      && Rat.equal (Rat.sub (Rat.add a b) b) a
      && (Rat.is_zero c || Rat.equal (Rat.div (Rat.mul a c) c) a))

let prop_rat_floor =
  QCheck.Test.make ~name:"floor <= x < floor + 1" ~count:1000 arb_rat (fun x ->
      let fl = Rat.of_bigint (Rat.floor x) in
      Rat.compare fl x <= 0 && Rat.compare x (Rat.add fl Rat.one) < 0)

(* --- Field instances ------------------------------------------------------ *)

let test_field_kernels () =
  let y = [| 1.0; 2.0; 3.0 |] in
  Field.Float_field.axpy 2.0 [| 1.0; 1.0; 1.0 |] y;
  Alcotest.(check (array (float 1e-9))) "float axpy" [| 3.0; 4.0; 5.0 |] y;
  Field.Float_field.div_inplace y 2.0;
  Alcotest.(check (array (float 1e-9))) "float div" [| 1.5; 2.0; 2.5 |] y;
  Alcotest.(check (float 1e-9)) "float dot" 10.5 (Field.Float_field.dot y [| 2.0; 0.0; 3.0 |]);
  let ry = [| Rat.of_int 1; Rat.of_int 2 |] in
  Field.Rat_field.axpy (Rat.of_ints 1 2) [| Rat.of_int 2; Rat.of_int 4 |] ry;
  Alcotest.check rat "rat axpy" (Rat.of_int 2) ry.(0);
  Alcotest.check rat "rat axpy 2" (Rat.of_int 4) ry.(1)

let test_field_rounding () =
  Alcotest.(check bool) "float integral" true (Field.Float_field.is_integral 3.0000001);
  Alcotest.(check bool) "float fractional" false (Field.Float_field.is_integral 3.4);
  Alcotest.(check int) "rat round half up" 3 (Field.Rat_field.round (Rat.of_ints 5 2));
  Alcotest.(check int) "rat round down" 2 (Field.Rat_field.round (Rat.of_ints 9 4))

let () =
  let q = Harness.qtest in
  Alcotest.run "numeric"
    [
      ( "bigint",
        [
          Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
          Alcotest.test_case "add/sub" `Quick test_add_sub;
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "divmod" `Quick test_divmod;
          Alcotest.test_case "big division" `Quick test_big_division;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "gcd/pow" `Quick test_gcd_pow;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "to_float" `Quick test_to_float;
          q prop_arith_matches_int;
          q prop_divmod_identity;
          q prop_string_roundtrip;
        ] );
      ( "rat",
        [
          Alcotest.test_case "canonical form" `Quick test_rat_canonical;
          Alcotest.test_case "arithmetic" `Quick test_rat_arith;
          Alcotest.test_case "floor/ceil" `Quick test_rat_floor_ceil;
          Alcotest.test_case "compare" `Quick test_rat_compare;
          q prop_rat_field;
          q prop_rat_floor;
        ] );
      ( "field",
        [
          Alcotest.test_case "bulk kernels" `Quick test_field_kernels;
          Alcotest.test_case "rounding" `Quick test_field_rounding;
        ] );
    ]
