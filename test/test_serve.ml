(* In-process loopback suite for the serve layer: protocol parsing, the
   session cache, deadlines, mutations and graceful shutdown — everything
   [bin/resil serve] does minus the socket plumbing, so `dune runtest`
   needs no network. *)

module J = Serve.Json
module E = Serve.Engine

let feed engine line = J.of_string (E.handle_line engine line)

let ok_of j =
  match Option.bind (J.member "ok" j) J.to_bool_opt with
  | Some b -> b
  | None -> Alcotest.fail "response without \"ok\""

let id_of j = Option.value (J.member "id" j) ~default:J.Null

let result_of j =
  match J.member "result" j with
  | Some r -> r
  | None -> Alcotest.fail "ok response without \"result\""

let err_code j =
  match Option.bind (Option.bind (J.member "error" j) (J.member "code")) J.to_string_opt with
  | Some c -> c
  | None -> Alcotest.fail "error response without \"error\".\"code\""

let int_field name j =
  match Option.bind (J.member name j) J.to_int_opt with
  | Some n -> n
  | None -> Alcotest.fail (Printf.sprintf "missing int field %S" name)

let check_err name code j =
  Alcotest.(check bool) (name ^ ": ok=false") false (ok_of j);
  Alcotest.(check string) (name ^ ": code") code (err_code j)

(* The running example: a 2-chain with RES* = 2. *)
let data = "R(1, 2)\nR(1, 3)\nS(2, 3)\nS(3, 4)\n"
let query = "Q :- R(x, y), S(y, z)"

let load_req = J.to_string (J.Obj [ ("op", J.Str "load"); ("data", J.Str data) ])

let ask_req ?(fields = []) op =
  J.to_string (J.Obj ([ ("op", J.Str op); ("query", J.Str query) ] @ fields))

let loaded () =
  let e = E.create () in
  Alcotest.(check int) "loaded 4 tuples" 4 (int_field "tuples" (result_of (feed e load_req)));
  e

(* --- protocol parsing ------------------------------------------------------- *)

let test_ping_and_ids () =
  let e = E.create () in
  let r = feed e {|{"id":7,"op":"ping"}|} in
  Alcotest.(check bool) "ok" true (ok_of r);
  Alcotest.(check bool) "id echoed" true (id_of r = J.Int 7);
  let r = feed e {|{"id":"abc","op":"ping"}|} in
  Alcotest.(check bool) "string id echoed" true (id_of r = J.Str "abc");
  let r = feed e {|{"op":"ping"}|} in
  Alcotest.(check bool) "missing id is null" true (id_of r = J.Null)

let test_malformed () =
  let e = E.create () in
  check_err "truncated json" "malformed" (feed e {|{"op": "ping"|});
  check_err "not json at all" "malformed" (feed e "hello there");
  check_err "trailing garbage" "malformed" (feed e {|{"op":"ping"} extra|});
  (* id recovery: a parseable object with a bad body keeps its id *)
  let r = feed e {|{"id":3,"op":"load"}|} in
  check_err "missing field" "bad_request" r;
  Alcotest.(check bool) "id recovered from invalid request" true (id_of r = J.Int 3)

let test_oversized () =
  let e = E.create ~max_line:64 () in
  let big = Printf.sprintf {|{"op":"ping","pad":%S}|} (String.make 100 'x') in
  check_err "oversized line" "too_large" (feed e big);
  (* under the cap still works *)
  Alcotest.(check bool) "small line fine" true (ok_of (feed e {|{"op":"ping"}|}))

let test_unknown_and_bad () =
  let e = E.create () in
  check_err "unknown op" "unknown_op" (feed e {|{"op":"frobnicate"}|});
  check_err "missing op" "bad_request" (feed e {|{"x":1}|});
  check_err "non-object" "bad_request" (feed e "[1,2]");
  check_err "non-string data" "bad_request" (feed e {|{"op":"load","data":5}|});
  check_err "non-bool bag" "bad_request"
    (feed e (ask_req ~fields:[ ("bag", J.Int 1) ] "resilience"));
  check_err "negative jobs" "bad_request"
    (feed e (ask_req ~fields:[ ("jobs", J.Int (-2)) ] "rank"));
  check_err "nested batch" "bad_request"
    (feed e
       {|{"op":"batch","requests":[{"op":"batch","requests":[]}]}|});
  let e = loaded () in
  check_err "unparseable query" "bad_query" (feed e {|{"op":"resilience","query":"Q :- "}|})

(* --- the cache -------------------------------------------------------------- *)

let res_value j =
  let r = result_of j in
  Alcotest.(check string) "status solved" "solved"
    (Option.get (Option.bind (J.member "status" r) J.to_string_opt));
  int_field "value" r

let stats_of e =
  let j = feed e {|{"op":"stats"}|} in
  result_of j

let test_cache_hit () =
  let e = loaded () in
  Alcotest.(check int) "cold answer" 2 (res_value (feed e (ask_req "resilience")));
  Alcotest.(check int) "warm answer" 2 (res_value (feed e (ask_req "resilience")));
  let s = stats_of e in
  Alcotest.(check int) "one session" 1 (int_field "sessions" s);
  Alcotest.(check int) "one miss" 1 (int_field "misses" s);
  Alcotest.(check int) "one hit" 1 (int_field "hits" s)

let test_cache_evict () =
  let e = E.create ~max_sessions:1 () in
  ignore (feed e load_req);
  ignore (feed e (ask_req "resilience"));
  let other = J.to_string (J.Obj [ ("op", J.Str "resilience"); ("query", J.Str "Q :- R(x, y)") ]) in
  Alcotest.(check bool) "second query answers" true (ok_of (feed e other));
  let s = stats_of e in
  Alcotest.(check int) "capped at one session" 1 (int_field "sessions" s);
  Alcotest.(check int) "one eviction" 1 (int_field "evictions" s)

let test_cache_invalidation () =
  let e = loaded () in
  ignore (feed e (ask_req "resilience"));
  (* reloading moves the base under the cached instance *)
  Alcotest.(check int) "reload" 4 (int_field "tuples" (result_of (feed e load_req)));
  Alcotest.(check int) "answer after reload" 2 (res_value (feed e (ask_req "resilience")));
  let s = stats_of e in
  Alcotest.(check int) "reload invalidated the session" 1 (int_field "invalidations" s);
  Alcotest.(check int) "two misses, no stale hit" 2 (int_field "misses" s)

(* --- deadlines -------------------------------------------------------------- *)

let test_deadline_expiry () =
  let e = loaded () in
  let r = feed e (ask_req ~fields:[ ("deadline_ms", J.Int 0) ] "resilience") in
  check_err "zero deadline" "timeout" r;
  (* structured timeout: the incumbent field is present (null here) *)
  (match Option.bind (J.member "error" r) (J.member "data") with
  | Some d -> Alcotest.(check bool) "incumbent present" true (J.member "incumbent" d <> None)
  | None -> Alcotest.fail "timeout without data");
  (* a generous deadline answers normally *)
  Alcotest.(check int) "generous deadline" 2
    (res_value (feed e (ask_req ~fields:[ ("deadline_ms", J.Int 60_000) ] "resilience")))

(* --- mutations through live sessions ---------------------------------------- *)

let test_insert_delete () =
  let e = loaded () in
  Alcotest.(check int) "before" 2 (res_value (feed e (ask_req "resilience")));
  let r = feed e {|{"op":"insert","tuple":"R(9, 2)"}|} in
  Alcotest.(check bool) "insert ok" true (ok_of r);
  let tid = int_field "tuple_id" (result_of r) in
  Alcotest.(check bool) "fresh id" true (tid >= 4);
  Alcotest.(check int) "after insert" 2 (res_value (feed e (ask_req "resilience")));
  let r = feed e {|{"op":"delete","tuple":"R(9, 2)"}|} in
  Alcotest.(check int) "deleted the same tuple" tid (int_field "tuple_id" (result_of r));
  check_err "delete twice" "not_found" (feed e {|{"op":"delete","tuple":"R(9, 2)"}|});
  Alcotest.(check int) "after delete" 2 (res_value (feed e (ask_req "resilience")));
  (* the cached session survived all three mutations: one miss total *)
  Alcotest.(check int) "one miss across mutations" 1 (int_field "misses" (stats_of e))

let test_responsibility_and_rank () =
  let e = loaded () in
  let r = feed e (ask_req ~fields:[ ("tuple", J.Str "S(2, 3)") ] "responsibility") in
  Alcotest.(check bool) "responsibility ok" true (ok_of r);
  Alcotest.(check int) "RSP* of S(2,3)" 1 (int_field "value" (result_of r));
  check_err "responsibility of a ghost" "not_found"
    (feed e (ask_req ~fields:[ ("tuple", J.Str "S(9, 9)") ] "responsibility"));
  let r = feed e (ask_req "rank") in
  match Option.bind (J.member "ranking" (result_of r)) J.to_list_opt with
  | Some rows -> Alcotest.(check bool) "ranking non-empty" true (rows <> [])
  | None -> Alcotest.fail "rank without ranking array"

(* --- the metrics plane -------------------------------------------------------- *)

let test_metrics_op () =
  let e = loaded () in
  ignore (feed e (ask_req "resilience"));
  let r = feed e {|{"op":"metrics"}|} in
  Alcotest.(check bool) "metrics ok" true (ok_of r);
  let res = result_of r in
  Alcotest.(check bool) "counters object" true (J.member "counters" res <> None);
  Alcotest.(check bool) "gauges object" true (J.member "gauges" res <> None);
  let hists =
    match J.member "histograms" res with
    | Some h -> h
    | None -> Alcotest.fail "metrics without histograms"
  in
  (* Per-op series are pre-registered, so both the touched and the
     untouched series are present — the exposition's shape never depends
     on traffic. *)
  let series key =
    match J.member key hists with
    | Some s -> s
    | None -> Alcotest.fail (Printf.sprintf "missing histogram series %S" key)
  in
  let req_res = series "serve.request.seconds{op=resilience}" in
  Alcotest.(check bool) "resilience requests counted" true (int_field "count" req_res >= 1);
  List.iter
    (fun q ->
      Alcotest.(check bool) (q ^ " present") true (J.member q req_res <> None))
    [ "p50"; "p90"; "p99"; "p999" ];
  Alcotest.(check bool) "untouched op series still exposed" true
    (J.member "serve.request.seconds{op=enumerate}" hists <> None);
  ignore (series "serve.solve.seconds{op=resilience}");
  ignore (series "serve.queue.seconds");
  (match J.member "gauges" res with
  | Some g -> Alcotest.(check bool) "cache gauge" true (J.member "serve.cache.sessions" g <> None)
  | None -> ());
  (* Prometheus text rides in a "text" member. *)
  let r = feed e {|{"op":"metrics","format":"prometheus"}|} in
  Alcotest.(check bool) "prometheus ok" true (ok_of r);
  (match Option.bind (J.member "text" (result_of r)) J.to_string_opt with
  | Some text ->
    let contains needle =
      let n = String.length needle and m = String.length text in
      let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "TYPE header" true
      (contains "# TYPE serve_request_seconds histogram");
    Alcotest.(check bool) "le buckets" true (contains "serve_request_seconds_bucket");
    Alcotest.(check bool) "cache gauge exported" true (contains "serve_cache_sessions")
  | None -> Alcotest.fail "prometheus without text");
  check_err "unknown format" "bad_request" (feed e {|{"op":"metrics","format":"xml"}|})

let test_timeout_carries_flight_recorder () =
  let e = loaded () in
  ignore (feed e (ask_req "resilience"));
  let r = feed e (ask_req ~fields:[ ("deadline_ms", J.Int 0) ] "resilience") in
  check_err "forced timeout" "timeout" r;
  match Option.bind (J.member "error" r) (J.member "data") with
  | None -> Alcotest.fail "timeout without data"
  | Some d -> (
    Alcotest.(check bool) "incumbent still present" true (J.member "incumbent" d <> None);
    match Option.bind (J.member "flight_recorder" d) J.to_list_opt with
    | None -> Alcotest.fail "timeout without flight_recorder events"
    | Some evs ->
      Alcotest.(check bool) "has events" true (evs <> []);
      let last = List.nth evs (List.length evs - 1) in
      (match Option.bind (J.member "op" last) J.to_string_opt with
      | Some op -> Alcotest.(check string) "last event is this ask" "resilience" op
      | None -> Alcotest.fail "event without op");
      (match Option.bind (J.member "outcome" last) J.to_string_opt with
      | Some o -> Alcotest.(check string) "outcome timeout" "timeout" o
      | None -> Alcotest.fail "event without outcome");
      (* numeric fields render as JSON numbers (so digit normalization
         keeps serve goldens deterministic), never digit-bearing strings *)
      List.iter
        (fun key ->
          match J.member key last with
          | Some (J.Str _) -> Alcotest.fail (Printf.sprintf "%S is a string" key)
          | Some _ -> ()
          | None -> Alcotest.fail (Printf.sprintf "event without %S" key))
        [ "t"; "dom"; "fingerprint"; "solve_ms"; "pivots"; "nodes" ])

(* --- graceful shutdown ------------------------------------------------------- *)

let test_shutdown_drains_batch () =
  let e = loaded () in
  let sub op = J.Obj [ ("op", J.Str op); ("query", J.Str query) ] in
  let batch =
    J.to_string
      (J.Obj
         [
           ("id", J.Int 1);
           ("op", J.Str "batch");
           ( "requests",
             J.List [ sub "resilience"; J.Obj [ ("op", J.Str "shutdown") ]; sub "resilience" ] );
         ])
  in
  let r = feed e batch in
  Alcotest.(check bool) "batch ok" true (ok_of r);
  (match Option.bind (J.member "responses" (result_of r)) J.to_list_opt with
  | Some replies ->
    Alcotest.(check int) "all three served" 3 (List.length replies);
    (* the ask AFTER the shutdown sub-request was drained, not refused *)
    List.iter (fun reply -> Alcotest.(check bool) "sub ok" true (ok_of reply)) replies
  | None -> Alcotest.fail "batch without responses");
  Alcotest.(check bool) "engine stopping" true (E.stopping e);
  (* new work is refused once draining... *)
  check_err "post-shutdown request" "shutting_down" (feed e (ask_req "resilience"));
  (* ...but shutdown itself stays answerable (idempotent stop) *)
  Alcotest.(check bool) "shutdown idempotent" true (ok_of (feed e {|{"op":"shutdown"}|}))

let test_engine_never_raises () =
  let e = loaded () in
  (* wrong arity for an existing relation: Database.add raises inside the
     engine; the catch-all must turn it into an error response *)
  let r = feed e {|{"op":"insert","tuple":"R(1)"}|} in
  Alcotest.(check bool) "arity error is a response" false (ok_of r);
  Alcotest.(check string) "as bad_request" "bad_request" (err_code r)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "ping and id echo" `Quick test_ping_and_ids;
          Alcotest.test_case "malformed lines" `Quick test_malformed;
          Alcotest.test_case "oversized payload" `Quick test_oversized;
          Alcotest.test_case "unknown and bad requests" `Quick test_unknown_and_bad;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit on repeat ask" `Quick test_cache_hit;
          Alcotest.test_case "LRU eviction" `Quick test_cache_evict;
          Alcotest.test_case "fingerprint invalidation" `Quick test_cache_invalidation;
        ] );
      ( "deadlines", [ Alcotest.test_case "expiry is structured" `Quick test_deadline_expiry ] );
      ( "metrics",
        [
          Alcotest.test_case "metrics op, json and prometheus" `Quick test_metrics_op;
          Alcotest.test_case "timeout carries flight recorder" `Quick
            test_timeout_carries_flight_recorder;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "insert/delete through live sessions" `Quick test_insert_delete;
          Alcotest.test_case "responsibility and rank" `Quick test_responsibility_and_rank;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "batch drains past shutdown" `Quick test_shutdown_drains_batch;
          Alcotest.test_case "engine never raises" `Quick test_engine_never_raises;
        ] );
    ]
