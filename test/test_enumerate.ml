(* Enumeration engine: the streamed family of minimum contingency sets must
   be a canonical, pairwise-distinct list of verified optima; complete
   against the brute-force family on small instances; bit-identical across
   jobs counts, warm vs cold re-encode, and float vs exact arithmetic; and
   the derived surfaces (take, diverse, criticality) must respect the
   family they were computed from. *)

open Relalg
open Resilience

let set_weight sem db s =
  List.fold_left (fun acc tid -> acc + Problem.weight sem (Database.tuple db tid)) 0 s

let rec pairwise_distinct = function
  | [] -> true
  | s :: rest -> (not (List.mem s rest)) && pairwise_distinct rest

(* Collapse an outcome to its comparable payload: stats carry wall-clock
   time and may legitimately differ between two equal enumerations. *)
let key = function
  | Session.Solved f -> `Solved (f.Enumerate.opt, f.Enumerate.sets, f.Enumerate.exhausted)
  | Session.Query_false -> `Query_false
  | Session.No_contingency -> `No_contingency
  | Session.Budget_exhausted _ -> `Budget

let cold_key = function
  | Enumerate.Family f -> `Solved (f.Enumerate.opt, f.Enumerate.sets, f.Enumerate.exhausted)
  | Enumerate.Query_false -> `Query_false
  | Enumerate.No_contingency -> `No_contingency
  | Enumerate.Budget -> `Budget

let first_endo q db =
  match Problem.endogenous_tuples q db with [] -> None | tid :: _ -> Some tid

(* 1. Every emitted set is a real contingency attaining the optimum, the
   family is canonical, duplicate-free, and flagged exhausted. *)
let prop_family_valid =
  Harness.seeded_prop ~count:150 "every enumerated set verifies at the optimal weight"
    (fun rng ->
      let sem, q, db = Harness.random_case rng in
      match Solve.enumerate_resilience sem q db with
      | Session.Solved f ->
        f.Enumerate.exhausted
        && pairwise_distinct f.Enumerate.sets
        && Enumerate.canonical f.Enumerate.sets = f.Enumerate.sets
        && f.Enumerate.sets <> []
        && List.for_all
             (fun s ->
               Solve.verify_contingency sem q db s
               && set_weight sem db s = f.Enumerate.opt)
             f.Enumerate.sets
      | _ -> true)

(* 2. On instances small enough to brute-force, the family is exactly the
   exhaustive reference — no missing optimum, no extra set. *)
let prop_exhaustive =
  Harness.seeded_prop ~count:120 "family matches the brute-force reference on small instances"
    (fun rng ->
      let sem, q, db = Harness.random_case rng in
      if List.length (Problem.endogenous_tuples q db) > 12 then true
      else
        match (Solve.enumerate_resilience sem q db, Bruteforce.resilience_family sem q db) with
        | Session.Solved f, Some (w, sets) ->
          f.Enumerate.opt = w && f.Enumerate.sets = sets && f.Enumerate.exhausted
        | (Session.Query_false | Session.No_contingency), None -> true
        | _ -> false)

(* 3. Responsibility families: every set verifies via the counterfactual
   check, and on small instances the family is the brute-force one. *)
let prop_responsibility =
  Harness.seeded_prop ~count:120 "responsibility family verifies and matches brute force"
    (fun rng ->
      let sem, q, db = Harness.random_case rng in
      match first_endo q db with
      | None -> true
      | Some tid -> (
        let brute =
          if List.length (Problem.endogenous_tuples q db) > 12 then `Skip
          else `Ref (Bruteforce.responsibility_family sem q db tid)
        in
        match Solve.enumerate_responsibility sem q db tid with
        | Session.Solved f ->
          f.Enumerate.exhausted
          && pairwise_distinct f.Enumerate.sets
          && List.for_all
               (fun s ->
                 Solve.verify_responsibility_set q db tid s
                 && set_weight sem db s = f.Enumerate.opt)
               f.Enumerate.sets
          && (match brute with
             | `Skip -> true
             | `Ref (Some (w, sets)) -> f.Enumerate.opt = w && f.Enumerate.sets = sets
             | `Ref None -> false)
        | Session.Query_false | Session.No_contingency -> (
          match brute with `Skip -> true | `Ref r -> r = None)
        | Session.Budget_exhausted _ -> false))

(* 4. [take n] is presentation-level truncation: an exact prefix of the full
   order, and [diverse] is a permutation keeping the canonical head. *)
let prop_take_diverse =
  Harness.seeded_prop ~count:120 "take is a prefix; diverse is a head-preserving permutation"
    (fun rng ->
      let sem, q, db = Harness.random_case rng in
      match Solve.enumerate_resilience sem q db with
      | Session.Solved f ->
        let sets = f.Enumerate.sets in
        let len = List.length sets in
        let n = Random.State.int rng (len + 2) in
        Enumerate.take n sets = List.filteri (fun i _ -> i < n) sets
        && Enumerate.take (-1) sets = sets
        &&
        let d = Enumerate.diverse sets in
        List.length d = len
        && List.sort compare d = List.sort compare sets
        && List.hd d = List.hd sets
      | _ -> true)

(* 5. Criticality: counts bounded by the family size, floats agreeing with
   the exact rational, and the counts summing to the total set mass. *)
let prop_criticality =
  Harness.seeded_prop ~count:120 "criticality fractions are consistent with the family"
    (fun rng ->
      let sem, q, db = Harness.random_case rng in
      match Solve.enumerate_resilience sem q db with
      | Session.Solved f ->
        let total = List.length f.Enumerate.sets in
        let crits = Enumerate.criticality f in
        List.for_all
          (fun c ->
            c.Enumerate.crit_total = total
            && c.Enumerate.crit_count > 0
            && c.Enumerate.crit_count <= total
            && c.Enumerate.crit_count
               = List.length (List.filter (List.mem c.Enumerate.crit_tuple) f.Enumerate.sets)
            && Numeric.Rat.equal c.Enumerate.crit_exact
                 (Numeric.Rat.of_ints c.Enumerate.crit_count total)
            && abs_float
                 (c.Enumerate.crit_float
                 -. (float_of_int c.Enumerate.crit_count /. float_of_int total))
               < 1e-12
            && c.Enumerate.crit_float > 0.
            && c.Enumerate.crit_float <= 1.)
          crits
        && List.fold_left (fun a c -> a + c.Enumerate.crit_count) 0 crits
           = List.fold_left (fun a s -> a + List.length s) 0 f.Enumerate.sets
      | _ -> true)

(* 6. The parallel seed-split merge is deterministic: jobs 1, 2 and 4 give
   bit-identical families. *)
let prop_jobs_identical =
  Harness.seeded_prop ~count:100 "families are bit-identical at jobs 1, 2 and 4"
    (fun rng ->
      let sem, q, db = Harness.random_case rng in
      let j1 = key (Solve.enumerate_resilience ~jobs:1 sem q db) in
      let j2 = key (Solve.enumerate_resilience ~jobs:2 sem q db) in
      let j4 = key (Solve.enumerate_resilience ~jobs:4 sem q db) in
      j1 = j2 && j1 = j4)

(* 7. The warm session chain, the cold fresh-solve reference, and the exact
   rational engine all stream the same family. *)
let prop_warm_cold_exact =
  Harness.seeded_prop ~count:100 "warm, cold and exact enumerations agree"
    (fun rng ->
      let sem, q, db = Harness.random_case rng in
      let warm = key (Solve.enumerate_resilience sem q db) in
      let cold = cold_key (Enumerate.resilience_cold sem q db) in
      let exact = key (Solve.enumerate_resilience ~exact:true sem q db) in
      warm = cold && warm = exact)

let () =
  Alcotest.run "enumerate"
    [ ("properties",
       Harness.qtests
         [
           prop_family_valid;
           prop_exhaustive;
           prop_responsibility;
           prop_take_diverse;
           prop_criticality;
           prop_jobs_identical;
           prop_warm_cold_exact;
         ]);
    ]
