(* Tests for the data generators: monotone random instances, the
   TPC-H-shaped generator's key/FK structure, and the Appendix B workloads. *)

open Relalg

let test_specs_of_query () =
  let q = Cq_parser.parse "R(x,y), S(y), R(y,z)" in
  let specs = Datagen.Random_inst.specs_of_query q ~count:10 in
  Alcotest.(check int) "one spec per relation" 2 (List.length specs);
  let r = List.find (fun s -> s.Datagen.Random_inst.rel = "R") specs in
  Alcotest.(check int) "arity" 2 r.Datagen.Random_inst.arity

let test_monotone_prefixes () =
  let rng = Harness.rng_of 1 in
  let specs = [ { Datagen.Random_inst.rel = "R"; arity = 2; count = 50 } ] in
  let pool = Datagen.Random_inst.pool rng ~domain:40 specs in
  let small = Datagen.Random_inst.prefix_db pool ~frac:0.3 in
  let large = Datagen.Random_inst.prefix_db pool ~frac:1.0 in
  Alcotest.(check bool) "smaller" true (Database.num_tuples small < Database.num_tuples large);
  (* every tuple of the prefix appears in the larger instance *)
  List.iter
    (fun info ->
      Alcotest.(check bool) "monotone" true
        (Database.find large info.Database.rel info.Database.args <> None))
    (Database.tuples small)

let test_no_duplicates_and_bag_bounds () =
  let rng = Harness.rng_of 2 in
  let specs = [ { Datagen.Random_inst.rel = "R"; arity = 2; count = 60 } ] in
  let db = Datagen.Random_inst.db rng ~domain:30 ~max_bag:4 specs in
  List.iter
    (fun info ->
      Alcotest.(check bool) "mult in range" true
        (info.Database.mult >= 1 && info.Database.mult <= 4))
    (Database.tuples db);
  Alcotest.(check int) "distinct count" 60 (Database.num_tuples db)

let test_small_domain_saturates () =
  let rng = Harness.rng_of 3 in
  let specs = [ { Datagen.Random_inst.rel = "R"; arity = 1; count = 100 } ] in
  let db = Datagen.Random_inst.db rng ~domain:5 specs in
  Alcotest.(check int) "at most domain tuples" 5 (Database.num_tuples db)

let test_log_fractions () =
  let fs = Datagen.Random_inst.log_fractions 10 in
  Alcotest.(check int) "count" 10 (List.length fs);
  Alcotest.(check (float 1e-9)) "ends at 1" 1.0 (List.nth fs 9);
  let sorted = List.sort compare fs in
  Alcotest.(check bool) "increasing" true (sorted = fs)

(* --- TPC-H ------------------------------------------------------------------ *)

let test_tpch_structure () =
  let rng = Harness.rng_of 4 in
  let db = Datagen.Tpch.generate rng ~scale:0.1 in
  let count rel = List.length (Database.tuples_of db rel) in
  Alcotest.(check int) "customers" 15 (count "Customer");
  Alcotest.(check int) "suppliers" 2 (count "Supplier");
  Alcotest.(check bool) "lineitems largest" true (count "Lineitem" >= count "Orders");
  (* key structure: orderkey is a key of Orders (orderkey -> custkey FD) *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun info ->
      let ok = info.Database.args.(1) in
      Alcotest.(check bool) "orderkey unique" false (Hashtbl.mem seen ok);
      Hashtbl.add seen ok ())
    (Database.tuples_of db "Orders");
  (* referential integrity: every Lineitem orderkey exists in Orders *)
  let orders = Hashtbl.create 64 in
  List.iter
    (fun info -> Hashtbl.replace orders info.Database.args.(1) ())
    (Database.tuples_of db "Orders");
  List.iter
    (fun info ->
      Alcotest.(check bool) "lineitem FK" true (Hashtbl.mem orders info.Database.args.(0)))
    (Database.tuples_of db "Lineitem")

let test_tpch_queries_run () =
  let rng = Harness.rng_of 5 in
  let db = Datagen.Tpch.generate rng ~scale:0.05 in
  let q5 = Resilience.Queries.q_tpch_5chain () in
  Alcotest.(check bool) "5-chain has witnesses" true (Eval.holds q5 db);
  match Datagen.Tpch.responsibility_target db with
  | Some t -> Alcotest.(check bool) "target live" true (Database.mem db t)
  | None -> Alcotest.fail "no responsibility target"

let test_tpch_scale_factors () =
  let sfs = Datagen.Tpch.scale_factors 18 in
  Alcotest.(check int) "18 databases" 18 (List.length sfs);
  Alcotest.(check (float 1e-9)) "starts at 0.01" 0.01 (List.hd sfs);
  Alcotest.(check (float 1e-9)) "ends at 1.0" 1.0 (List.nth sfs 17)

(* --- Workloads ------------------------------------------------------------------ *)

let test_movies_dataset () =
  let m = Datagen.Workloads.movies () in
  Alcotest.(check int) "13 tuples" 13 (Database.num_tuples m.Datagen.Workloads.movie_db);
  Alcotest.(check int) "3 Oscar-triangle witnesses" 3
    (Eval.count m.Datagen.Workloads.oscar_triangle m.Datagen.Workloads.movie_db);
  Alcotest.(check int) "4 plain-triangle witnesses (Bonham Carter too)" 4
    (Eval.count m.Datagen.Workloads.plain_triangle m.Datagen.Workloads.movie_db)

let test_migration_dataset () =
  let mig = Datagen.Workloads.migration () in
  (* Qs true via Alice's email requests and several DB accesses (Fig. 9):
     AccessLog rows on server S with a matching request type. *)
  Alcotest.(check int) "witnesses" 5
    (Eval.count mig.Datagen.Workloads.usage_query mig.Datagen.Workloads.server_db)

let () =
  Alcotest.run "datagen"
    [
      ( "random",
        [
          Alcotest.test_case "specs of query" `Quick test_specs_of_query;
          Alcotest.test_case "monotone prefixes" `Quick test_monotone_prefixes;
          Alcotest.test_case "distinct tuples, bag bounds" `Quick test_no_duplicates_and_bag_bounds;
          Alcotest.test_case "domain saturation" `Quick test_small_domain_saturates;
          Alcotest.test_case "log fractions" `Quick test_log_fractions;
        ] );
      ( "tpch",
        [
          Alcotest.test_case "cardinalities and keys" `Quick test_tpch_structure;
          Alcotest.test_case "queries run" `Quick test_tpch_queries_run;
          Alcotest.test_case "scale factors" `Quick test_tpch_scale_factors;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "movies" `Quick test_movies_dataset;
          Alcotest.test_case "migration" `Quick test_migration_dataset;
        ] );
    ]
