(* Linter fixtures: every diagnostic code, seeded deliberately. *)

open Relalg
open Resilience

(* The linter consumes the frozen compiled form; freeze inline. *)
let lint m = Lp.Lint.lint (Lp.Frozen.of_model m)

let has code diags = List.exists (fun d -> d.Lp.Lint.code = code) diags

let codes diags = List.map (fun d -> d.Lp.Lint.code) diags

let check_has diags code = Alcotest.(check bool) code true (has code diags)

let check_not diags code = Alcotest.(check bool) ("no " ^ code) false (has code diags)

(* --- Model linter --------------------------------------------------------- *)

let test_m101_infeasible_rows () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var ~integer:true ~upper:1 ~obj:1 m in
  let y = Lp.Model.add_var ~integer:true ~upper:1 ~obj:1 m in
  Lp.Model.add_constr m [ (x, 1); (y, 1) ] Lp.Model.Geq 3;
  Lp.Model.add_constr m [] Lp.Model.Geq 1;
  let diags = lint m in
  Alcotest.(check int) "two M101" 2
    (List.length (List.filter (fun d -> d.Lp.Lint.code = "M101") diags));
  Alcotest.(check bool) "M101 is an error" true
    (List.for_all
       (fun d -> d.Lp.Lint.severity = Lp.Lint.Error)
       (List.filter (fun d -> d.Lp.Lint.code = "M101") diags));
  (* Errors sort first. *)
  match lint m with
  | d :: _ -> Alcotest.(check string) "errors first" "M101" d.Lp.Lint.code
  | [] -> Alcotest.fail "expected diagnostics"

let test_m102_unbounded_integer () =
  (* add_var refuses this shape, so seed it the way only Presolve may:
     declare the bound, then relax it. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var ~integer:true ~upper:1 ~obj:1 m in
  let y = Lp.Model.add_var ~integer:true ~upper:1 ~obj:1 m in
  Lp.Model.add_constr m [ (x, 1); (y, 1) ] Lp.Model.Geq 1;
  Lp.Model.relax_upper m x;
  check_has (lint m) "M102"

let test_m103_nonbinary_integer () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var ~integer:true ~upper:2 ~obj:1 m in
  Lp.Model.add_constr m [ (x, 1) ] Lp.Model.Leq 2;
  check_has (lint m) "M103"

let test_m104_conflicting_rows () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var ~upper:5 ~obj:1 m in
  let y = Lp.Model.add_var ~upper:5 ~obj:1 m in
  Lp.Model.add_constr m [ (x, 1); (y, 1) ] Lp.Model.Eq 1;
  Lp.Model.add_constr m [ (x, 1); (y, 1) ] Lp.Model.Eq 2;
  check_has (lint m) "M104"

let test_m201_m202_m203 () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var ~integer:true ~upper:1 ~obj:1 m in
  let y = Lp.Model.add_var ~integer:true ~upper:1 ~obj:1 m in
  let z = Lp.Model.add_var ~integer:true ~upper:1 ~obj:1 m in
  Lp.Model.add_constr m [ (x, 1); (y, 1) ] Lp.Model.Geq 1;
  Lp.Model.add_constr m [ (x, 1); (y, 1) ] Lp.Model.Geq 1 (* duplicate *);
  Lp.Model.add_constr m [ (x, 1); (y, 1) ] Lp.Model.Geq 0 (* parallel (and trivial) *);
  Lp.Model.add_constr m [ (x, 1); (y, 1); (z, 1) ] Lp.Model.Geq 1 (* dominated *);
  let diags = lint m in
  check_has diags "M201";
  check_has diags "M202";
  check_has diags "M203";
  check_has diags "M204"

let test_m205_m206_columns () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var ~upper:1 ~obj:1 m in
  let _empty = Lp.Model.add_var ~upper:1 ~obj:1 m in
  let _idle = Lp.Model.add_var ~upper:1 m in
  Lp.Model.add_constr m [ (x, 1) ] Lp.Model.Geq 1;
  let diags = lint m in
  check_has diags "M205";
  check_has diags "M206"

let test_m301_m302_notes () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var ~upper:1 m in
  let y = Lp.Model.add_var ~upper:1 m in
  Lp.Model.add_constr m [ (x, 1); (y, 2_000_000) ] Lp.Model.Leq 10;
  let diags = lint m in
  check_has diags "M301";
  check_has diags "M302"

let test_clean_covering_model () =
  (* The raw ILP[RES*] of a healthy instance has nothing to complain about. *)
  let db = Database.create () in
  ignore (Database.add db "R" [| 1; 2 |]);
  ignore (Database.add db "S" [| 2; 3 |]);
  let q = Queries.q2_chain () in
  match Encode.res Encode.Ilp Problem.Set q db with
  | Encode.Encoded enc ->
    let diags = lint enc.Encode.model in
    Alcotest.(check (list string)) "no warnings or errors" []
      (codes (List.filter (fun d -> d.Lp.Lint.severity <> Lp.Lint.Note) diags));
    let st = Lp.Lint.stats (Lp.Frozen.of_model enc.Encode.model) in
    Alcotest.(check bool) "unit covering" true st.Lp.Lint.unit_covering
  | _ -> Alcotest.fail "expected encoding"

(* --- Query linter --------------------------------------------------------- *)

let parse = Harness.parse_into

let test_q101_all_exogenous () =
  let db = Database.create () in
  let diags = Query_lint.lint_query Problem.Set (parse db "R!(x,y), S!(y)") in
  check_has diags "Q101";
  Alcotest.(check bool) "is an error" true
    (List.exists
       (fun d -> d.Lp.Lint.code = "Q101" && d.Lp.Lint.severity = Lp.Lint.Error)
       diags)

let test_q201_duplicate_atom () =
  let db = Database.create () in
  let diags = Query_lint.lint_query Problem.Set (parse db "R(x,y), R(x,y), S(y)") in
  check_has diags "Q201";
  check_has diags "Q203" (* a duplicate atom also makes the query non-minimal *)

let test_q202_disconnected () =
  let db = Database.create () in
  let diags = Query_lint.lint_query Problem.Set (parse db "R(x,y), S(z,w)") in
  check_has diags "Q202";
  check_not (Query_lint.lint_query Problem.Set (parse db "R(x,y), S(y,z)")) "Q202"

let test_q203_non_minimal () =
  (* R(x,y), R(x,z) retracts to R(x,y) — non-minimal without duplicates. *)
  let db = Database.create () in
  let diags = Query_lint.lint_query Problem.Set (parse db "R(x,y), R(x,z)") in
  check_has diags "Q203";
  check_not diags "Q201"

let test_q204_constant_only () =
  let db = Database.create () in
  check_has (Query_lint.lint_query Problem.Set (parse db "R(x,y), T(5)")) "Q204"

let test_q301_wildcards () =
  let db = Database.create () in
  let diags = Query_lint.lint_query Problem.Set (parse db "R(x,y), S(y,z)") in
  check_has diags "Q301";
  (* x and z occur once; y twice *)
  check_not (Query_lint.lint_query Problem.Set (parse db "R(x,x), S(x,x)")) "Q301"

let test_q302_q303_dichotomy () =
  let db = Database.create () in
  check_has (Query_lint.lint_query Problem.Set (parse db "R(x,y), S(y,z)")) "Q302";
  check_has
    (Query_lint.lint_query Problem.Set (parse db "R(x,y), S(y,z), T(z,x)"))
    "Q303";
  check_has (Query_lint.lint_query Problem.Set (parse db "R(x,y), R(y,x), S(y)")) "Q304"

(* --- Instance linter ------------------------------------------------------ *)

let test_i101_all_exo_witness () =
  let db = Database.create () in
  ignore (Database.add ~exo:true db "R" [| 1; 1 |]);
  let q = parse db "R(x,y)" in
  let diags = Query_lint.lint_instance Problem.Set q db in
  check_has diags "I101"

let test_i201_empty_relation () =
  let db = Database.create () in
  ignore (Database.add db "R" [| 1; 2 |]);
  let q = parse db "R(x,y), S(y)" in
  let diags = Query_lint.lint_instance Problem.Set q db in
  check_has diags "I201";
  check_has diags "I203"

let test_i202_unsatisfiable_constant () =
  let db = Database.create () in
  ignore (Database.add db "R" [| 2; 2 |]);
  let q = Cq.make ~name:"Q" [ Cq.atom "R" [ Cq.Var "x"; Cq.Const 1 ] ] in
  let diags = Query_lint.lint_instance Problem.Set q db in
  check_has diags "I202";
  check_has diags "I203"

let test_i301_summary () =
  let db = Database.create () in
  ignore (Database.add db "R" [| 1; 2 |]);
  ignore (Database.add db "S" [| 2; 3 |]);
  let q = parse db "R(x,y), S(y,z)" in
  let diags = Query_lint.lint_instance Problem.Set q db in
  check_has diags "I301";
  check_not diags "I101";
  check_not diags "I203"

let () =
  let open Alcotest in
  run "lint"
    [
      ( "model",
        [
          test_case "M101 infeasible rows" `Quick test_m101_infeasible_rows;
          test_case "M102 unbounded integer" `Quick test_m102_unbounded_integer;
          test_case "M103 non-binary integer" `Quick test_m103_nonbinary_integer;
          test_case "M104 conflicting rows" `Quick test_m104_conflicting_rows;
          test_case "M201/M202/M203/M204 rows" `Quick test_m201_m202_m203;
          test_case "M205/M206 columns" `Quick test_m205_m206_columns;
          test_case "M301/M302 notes" `Quick test_m301_m302_notes;
          test_case "clean covering model" `Quick test_clean_covering_model;
        ] );
      ( "query",
        [
          test_case "Q101 all exogenous" `Quick test_q101_all_exogenous;
          test_case "Q201 duplicate atom" `Quick test_q201_duplicate_atom;
          test_case "Q202 disconnected" `Quick test_q202_disconnected;
          test_case "Q203 non-minimal" `Quick test_q203_non_minimal;
          test_case "Q204 constant-only atom" `Quick test_q204_constant_only;
          test_case "Q301 wildcards" `Quick test_q301_wildcards;
          test_case "Q302/Q303/Q304 dichotomy" `Quick test_q302_q303_dichotomy;
        ] );
      ( "instance",
        [
          test_case "I101 all-exogenous witness" `Quick test_i101_all_exo_witness;
          test_case "I201 empty relation" `Quick test_i201_empty_relation;
          test_case "I202 unsatisfiable constant" `Quick test_i202_unsatisfiable_constant;
          test_case "I301 summary" `Quick test_i301_summary;
        ] );
    ]
