(* Lp.Pool: the domain pool must be deterministic (results indexed by task
   id, never by arrival order), propagate worker exceptions to the
   submitter, degrade to plain sequential execution at jobs = 1, and shut
   down gracefully with work still queued. *)

let expected tasks = Array.init tasks (fun i -> (i * i) + 1)

(* --- Determinism under adversarial chunking -------------------------------- *)

let test_chunk_determinism () =
  (* Chunk sizes around and past the pathological points: singleton chunks
     (maximal scheduling freedom), chunks that don't divide the task count,
     and one chunk bigger than the whole batch. *)
  Lp.Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun chunk ->
          List.iter
            (fun tasks ->
              Alcotest.(check (array int))
                (Printf.sprintf "chunk=%d tasks=%d" chunk tasks)
                (expected tasks)
                (Lp.Pool.run ~chunk pool ~tasks (fun i -> (i * i) + 1)))
            [ 0; 1; 7; 101 ])
        [ 1; 2; 3; 7; 1000 ])

let test_uneven_task_durations () =
  (* Tasks with wildly uneven durations land in the right slots anyway. *)
  Lp.Pool.with_pool ~jobs:4 (fun pool ->
      let results =
        Lp.Pool.run ~chunk:1 pool ~tasks:40 (fun i ->
            if i mod 7 = 0 then Unix.sleepf 0.002;
            i * 3)
      in
      Alcotest.(check (array int)) "slots match task ids" (Array.init 40 (fun i -> i * 3)) results)

(* --- Exception propagation ------------------------------------------------- *)

exception Boom of int

let test_exception_propagation () =
  Lp.Pool.with_pool ~jobs:4 (fun pool ->
      (match Lp.Pool.run ~chunk:1 pool ~tasks:100 (fun i -> if i = 57 then raise (Boom i) else i) with
      | _ -> Alcotest.fail "expected Boom to propagate"
      | exception Boom 57 -> ());
      (* The pool survives a failed batch: the next run works. *)
      Alcotest.(check (array int)) "pool usable after failure" (expected 20)
        (Lp.Pool.run pool ~tasks:20 (fun i -> (i * i) + 1)))

let test_exception_jobs1 () =
  Lp.Pool.with_pool ~jobs:1 (fun pool ->
      match Lp.Pool.run pool ~tasks:10 (fun i -> if i = 3 then raise (Boom i) else i) with
      | _ -> Alcotest.fail "expected Boom on the sequential path"
      | exception Boom 3 -> ())

(* --- jobs = 1 is direct execution ------------------------------------------ *)

let test_jobs1_direct () =
  Lp.Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "one participant" 1 (Lp.Pool.jobs pool);
      (* Tasks run in index order in the submitting domain: observable via a
         side-effect log, which a parallel path could not guarantee. *)
      let log = ref [] in
      let self = Domain.self () in
      let results =
        Lp.Pool.run pool ~tasks:25 (fun i ->
            log := i :: !log;
            Alcotest.(check bool) "runs in the submitter domain" true (Domain.self () = self);
            (i * i) + 1)
      in
      Alcotest.(check (array int)) "results" (expected 25) results;
      Alcotest.(check (list int)) "index order" (List.init 25 (fun i -> 24 - i)) !log)

let test_run_init_once_per_domain () =
  let inits = Atomic.make 0 in
  let init () =
    Atomic.incr inits;
    Atomic.get inits
  in
  Lp.Pool.with_pool ~jobs:4 (fun pool ->
      let r = Lp.Pool.run_init ~chunk:1 pool ~init ~tasks:200 (fun _st i -> i) in
      Alcotest.(check (array int)) "results" (Array.init 200 Fun.id) r;
      let n = Atomic.get inits in
      Alcotest.(check bool)
        (Printf.sprintf "inits (%d) bounded by domains" n)
        true
        (n >= 1 && n <= 4));
  (* jobs = 1: exactly one init. *)
  Atomic.set inits 0;
  Lp.Pool.with_pool ~jobs:1 (fun pool ->
      ignore (Lp.Pool.run_init pool ~init ~tasks:50 (fun _st i -> i));
      Alcotest.(check int) "single init" 1 (Atomic.get inits))

(* --- Shutdown --------------------------------------------------------------- *)

let test_shutdown_drains_queued_tasks () =
  (* Shutdown while a batch still has queued chunks: the batch must complete
     (participate ignores the stop flag), and every slot must be filled.
     The batch is submitted from a helper domain so the main domain can call
     shutdown mid-flight. *)
  let pool = Lp.Pool.create ~jobs:4 () in
  let started = Atomic.make false in
  let submitter =
    Domain.spawn (fun () ->
        Lp.Pool.run ~chunk:1 pool ~tasks:64 (fun i ->
            Atomic.set started true;
            Unix.sleepf 0.001;
            i + 1))
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  Lp.Pool.shutdown pool;
  let results = Domain.join submitter in
  Alcotest.(check (array int)) "all queued tasks ran" (Array.init 64 (fun i -> i + 1)) results;
  (match Lp.Pool.run pool ~tasks:1 Fun.id with
  | _ -> Alcotest.fail "run after shutdown must raise"
  | exception Invalid_argument _ -> ());
  (* Idempotent. *)
  Lp.Pool.shutdown pool

let test_shutdown_idle () =
  let pool = Lp.Pool.create ~jobs:3 () in
  Alcotest.(check (array int)) "batch" (expected 10) (Lp.Pool.run pool ~tasks:10 (fun i -> (i * i) + 1));
  Lp.Pool.shutdown pool;
  Lp.Pool.shutdown pool

let test_request_shutdown () =
  (* The signal-handler path: request_shutdown is a lock-free flag that must
     not tear down anything by itself — a batch in flight still completes —
     and the later shutdown from normal context is idempotent. *)
  let pool = Lp.Pool.create ~jobs:4 () in
  Alcotest.(check bool) "not requested initially" false (Lp.Pool.shutdown_requested pool);
  Lp.Pool.request_shutdown pool;
  Lp.Pool.request_shutdown pool;
  Alcotest.(check bool) "requested" true (Lp.Pool.shutdown_requested pool);
  Alcotest.(check (array int)) "batch still runs after request" (expected 30)
    (Lp.Pool.run ~chunk:1 pool ~tasks:30 (fun i -> (i * i) + 1));
  Lp.Pool.shutdown pool;
  Alcotest.(check bool) "still requested after shutdown" true (Lp.Pool.shutdown_requested pool);
  Lp.Pool.shutdown pool

let test_concurrent_shutdown () =
  (* Several domains racing shutdown with queued work: exactly one joins each
     worker, nobody deadlocks, every slot of the in-flight batch is filled. *)
  let pool = Lp.Pool.create ~jobs:4 () in
  let started = Atomic.make false in
  let submitter =
    Domain.spawn (fun () ->
        Lp.Pool.run ~chunk:1 pool ~tasks:48 (fun i ->
            Atomic.set started true;
            Unix.sleepf 0.001;
            i * 2))
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  let closers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            Lp.Pool.request_shutdown pool;
            Lp.Pool.shutdown pool))
  in
  let results = Domain.join submitter in
  List.iter Domain.join closers;
  Alcotest.(check (array int)) "in-flight batch completed" (Array.init 48 (fun i -> i * 2)) results

(* --- Stress ------------------------------------------------------------------ *)

let test_stress () =
  (* 10k trivial tasks across every pool width 2..8: scheduling overhead and
     slot bookkeeping must stay correct when chunks are tiny relative to the
     batch and domains outnumber cores. *)
  let tasks = 10_000 in
  let want = Array.init tasks (fun i -> i lxor 0x2a) in
  for jobs = 2 to 8 do
    Lp.Pool.with_pool ~jobs (fun pool ->
        Alcotest.(check (array int))
          (Printf.sprintf "jobs=%d" jobs)
          want
          (Lp.Pool.run pool ~tasks (fun i -> i lxor 0x2a)))
  done

let test_defaults () =
  Alcotest.(check bool) "default_jobs >= 1" true (Lp.Pool.default_jobs () >= 1);
  Lp.Pool.with_pool (fun pool ->
      Alcotest.(check int) "jobs 0 resolves to default" (Lp.Pool.default_jobs ())
        (Lp.Pool.jobs pool));
  match Lp.Pool.create ~jobs:(-1) () with
  | _ -> Alcotest.fail "negative jobs must raise"
  | exception Invalid_argument _ -> ()

let () =
  let open Alcotest in
  run "pool"
    [
      ( "determinism",
        [
          test_case "adversarial chunk sizes" `Quick test_chunk_determinism;
          test_case "uneven task durations" `Quick test_uneven_task_durations;
        ] );
      ( "exceptions",
        [
          test_case "worker exception reaches submitter" `Quick test_exception_propagation;
          test_case "sequential path propagates too" `Quick test_exception_jobs1;
        ] );
      ( "jobs-1",
        [
          test_case "direct in-order execution" `Quick test_jobs1_direct;
          test_case "init once per domain" `Quick test_run_init_once_per_domain;
        ] );
      ( "shutdown",
        [
          test_case "graceful with tasks queued" `Quick test_shutdown_drains_queued_tasks;
          test_case "idle shutdown is idempotent" `Quick test_shutdown_idle;
          test_case "request_shutdown is signal-safe flag" `Quick test_request_shutdown;
          test_case "concurrent shutdown races" `Quick test_concurrent_shutdown;
        ] );
      ( "stress",
        [
          test_case "10k tasks, 2..8 domains" `Quick test_stress;
          test_case "defaults" `Quick test_defaults;
        ] );
    ]
