(* Direct units for the basis-factorisation kernels: the sparse LU kernel
   exercised against the dense reference inverse through full
   factor/update/solve cycles, singular-basis recovery, eta-window
   refactorisation pressure, and the exact-rational instantiation. *)

module F = Numeric.Field.Float_field
module D = Lp.Basis.Dense (F)
module S = Lp.Basis.Sparse_lu (F)
module FS = Lp.Solvers.Float_simplex
module ES = Lp.Solvers.Exact_simplex

let eps = 1e-6

let check_vec name a b =
  Alcotest.(check int) (name ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i ai ->
      if Float.abs (ai -. b.(i)) > eps then
        Alcotest.failf "%s[%d]: dense %.9g <> sparse %.9g" name i ai b.(i))
    a

(* A random sparse column universe of 2n columns over n rows: column j
   carries a unit diagonal at [j mod n] plus a few off-diagonal entries, so
   a permutation basis is almost surely invertible while staying sparse.
   Duplicate rows are dropped (kernels may treat them additively or not —
   the contract only covers well-formed columns). *)
let random_cols rng n =
  Array.init (2 * n) (fun j ->
      let seen = Hashtbl.create 4 in
      Hashtbl.replace seen (j mod n) ();
      let extras =
        List.filter_map
          (fun _ ->
            let i = Random.State.int rng n in
            if Hashtbl.mem seen i then None
            else begin
              Hashtbl.replace seen i ();
              Some (i, float_of_int (1 + Random.State.int rng 8) /. 4.)
            end)
          (List.init (Random.State.int rng 3) Fun.id)
      in
      (j mod n, 1.0) :: extras)

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

(* The workhorse: both kernels over the same random column universe, a
   random permutation basis, then a long interleaved stream of
   FTRAN/BTRAN/unit-BTRAN probes, basis updates and (kernel-paced)
   refactorisations.  Every probe must agree to tolerance; a genuinely
   singular random draw is skipped (both kernels raising is itself checked
   by the dedicated singularity test). *)
let prop_dense_vs_sparse_cycle =
  Harness.seeded_prop ~count:150 "sparse LU = dense inverse through factor/update/solve cycles"
    (fun rng ->
      let n = 3 + Random.State.int rng 14 in
      let cols = random_cols rng n in
      let col j = cols.(j) in
      let d = D.create ~nrows:n ~col in
      let s = S.create ~nrows:n ~col in
      let basis = Array.init n Fun.id in
      shuffle rng basis;
      let in_basis = Array.make (2 * n) false in
      Array.iter (fun j -> in_basis.(j) <- true) basis;
      try
        D.refactor d basis;
        S.refactor s basis;
        for _ = 1 to 30 do
          (* Probe round: one sparse FTRAN, one dense BTRAN, one unit row. *)
          let a =
            List.sort_uniq compare
              (List.init
                 (1 + Random.State.int rng 3)
                 (fun _ -> (Random.State.int rng n, float_of_int (1 + Random.State.int rng 5))))
          in
          check_vec "ftran" (D.ftran d a) (S.ftran s a);
          let c = Array.init n (fun _ -> float_of_int (Random.State.int rng 7) /. 2.) in
          check_vec "btran" (D.btran d c) (S.btran s c);
          let r = Random.State.int rng n in
          check_vec "btran_unit" (D.btran_unit d r) (S.btran_unit s r);
          (* Update round: bring in a column not in the basis when a sound
             pivot exists, keeping both kernels and the basis array in sync. *)
          let candidates =
            List.filter (fun j -> not in_basis.(j)) (List.init (2 * n) Fun.id)
          in
          (match candidates with
          | [] -> ()
          | _ ->
            let j = List.nth candidates (Random.State.int rng (List.length candidates)) in
            let wd = D.ftran d (col j) in
            let r = ref 0 in
            Array.iteri (fun i x -> if Float.abs x > Float.abs wd.(!r) then r := i) wd;
            if Float.abs wd.(!r) > 0.2 then begin
              let ws = S.ftran s (col j) in
              check_vec "entering ftran" wd ws;
              D.update d ~r:!r ~wcol:wd;
              S.update s ~r:!r ~wcol:ws;
              in_basis.(basis.(!r)) <- false;
              in_basis.(j) <- true;
              basis.(!r) <- j
            end);
          if S.should_refactor s then S.refactor s basis;
          if D.should_refactor d then D.refactor d basis
        done;
        true
      with Lp.Basis.Singular -> true)

(* Exact-rational instantiation: both kernels at Rat_field must agree with
   the float instantiation to tolerance on the covering programs the
   encoders emit (the frozen session path, the one production exercises). *)
let prop_exact_matches_float =
  Harness.seeded_prop ~count:80 "exact-rational kernels = float kernels on covering programs"
    (fun rng ->
      let nvars = 4 + Random.State.int rng 8 in
      let nrows = 4 + Random.State.int rng 10 in
      let fz, _ = Harness.random_covering_frozen rng ~nvars ~nrows in
      let agree kernel =
        match (FS.solve_frozen ~kernel fz, ES.solve_frozen ~kernel fz) with
        | FS.Optimal { objective = a; _ }, ES.Optimal { objective = b; _ } ->
          Float.abs (a -. Numeric.Rat.to_float b) <= 1e-6
        | FS.Infeasible, ES.Infeasible | FS.Unbounded, ES.Unbounded -> true
        | _ -> false
      in
      agree `Sparse && agree `Dense)

(* Slack-style unit column universe shared by the direct unit tests:
   ids 0..n-1 are structural columns, ids n..2n-1 the unit (slack) columns. *)
let unit_universe n structural =
  fun j -> if j < n then structural.(j) else [ (j - n, 1.0) ]

let all_slack n = Array.init n (fun i -> n + i)

let test_singular_recovery () =
  let n = 5 in
  (* Columns 0 and 1 are identical: any basis holding both is singular. *)
  let structural =
    [| [ (0, 1.0); (2, 1.0) ]; [ (0, 1.0); (2, 1.0) ]; [ (2, 1.0) ]; [ (3, 1.0) ]; [ (4, 2.0) ] |]
  in
  let col = unit_universe n structural in
  let check_kernel (type k) (module K : Lp.Basis.S with type elt = float and type t = k) (k : k)
      name =
    Alcotest.check_raises (name ^ " rejects a singular basis") Lp.Basis.Singular (fun () ->
        K.refactor k [| 0; 1; 2; 3; 4 |]);
    (* Recovery contract: after Singular the caller installs a known good
       basis and refactors again — the all-slack basis must always work. *)
    K.refactor k (all_slack n);
    let w = K.ftran k [ (2, 3.0) ] in
    Alcotest.(check (float 1e-9)) (name ^ " solves after recovery") 3.0 w.(2);
    Alcotest.(check int) (name ^ " eta file cleared") 0 (K.etas k)
  in
  check_kernel (module D) (D.create ~nrows:n ~col) "dense";
  check_kernel (module S) (S.create ~nrows:n ~col) "sparse"

let test_eta_window_overflow () =
  let n = 4 in
  let structural = [| [ (0, 2.0) ]; [ (1, 1.0) ]; [ (2, 1.0) ]; [ (3, 1.0) ] |] in
  let col = unit_universe n structural in
  let s = S.create ~nrows:n ~col in
  let basis = all_slack n in
  S.refactor s basis;
  (* Swap position 0 between the slack and the structural column until the
     kernel demands a refactorisation; the eta cap bounds the window. *)
  let forced = ref false in
  let iters = ref 0 in
  while (not !forced) && !iters < 200 do
    incr iters;
    let j = if basis.(0) = n then 0 else n in
    let w = S.ftran s (col j) in
    S.update s ~r:0 ~wcol:w;
    basis.(0) <- j;
    Alcotest.(check int) "etas counts updates" (!iters) (S.etas s);
    if S.should_refactor s then forced := true
  done;
  Alcotest.(check bool) "eta window overflow forces a refactor" true !forced;
  Alcotest.(check bool) "well before the safety iteration cap" true (!iters <= 64);
  (* The overloaded eta file must still answer correctly... *)
  let w = S.ftran s (col basis.(0)) in
  Alcotest.(check (float 1e-9)) "ftran through a full eta file" 1.0 w.(0);
  (* ...and refactoring drains it. *)
  S.refactor s basis;
  Alcotest.(check int) "refactor clears the eta file" 0 (S.etas s);
  Alcotest.(check bool) "no refactor pressure after refactor" false (S.should_refactor s);
  let st = S.stats s in
  Alcotest.(check int) "no eta entries after refactor" 0 st.Lp.Basis.eta_nnz

let test_stats_shape () =
  let n = 3 in
  let structural = [| [ (0, 1.0); (1, 0.5) ]; [ (1, 1.0) ]; [ (2, 1.0); (0, 0.25) ] |] in
  let col = unit_universe n structural in
  let s = S.create ~nrows:n ~col in
  S.refactor s [| 0; 1; 2 |];
  let st = S.stats s in
  Alcotest.(check int) "basis nnz" 5 st.Lp.Basis.basis_nnz;
  Alcotest.(check bool) "factor holds at least the basis nonzeros" true
    (st.Lp.Basis.factor_nnz >= n);
  Alcotest.(check int) "fresh factor has no etas" 0 st.Lp.Basis.etas

let () =
  Alcotest.run "basis"
    [
      ( "differential",
        [
          Harness.qtest prop_dense_vs_sparse_cycle;
          Harness.qtest prop_exact_matches_float;
        ] );
      ( "direct",
        [
          Alcotest.test_case "singular refactor recovery" `Quick test_singular_recovery;
          Alcotest.test_case "eta-window overflow" `Quick test_eta_window_overflow;
          Alcotest.test_case "stats shape" `Quick test_stats_shape;
        ] );
    ]
