(* Tests for the relational substrate: symbols, databases, the CQ AST and
   parser, witness evaluation, and the Chandra–Merlin machinery. *)

open Relalg

(* --- Symbol --------------------------------------------------------------- *)

let test_symbol () =
  let t = Symbol.create () in
  let a = Symbol.intern t "alice" in
  let b = Symbol.intern t "bob" in
  Alcotest.(check int) "stable" a (Symbol.intern t "alice");
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check string) "name" "alice" (Symbol.name t a);
  Alcotest.(check string) "fallback" "99" (Symbol.name t 99);
  Alcotest.(check bool) "mem" true (Symbol.mem t "bob");
  Alcotest.(check int) "size" 2 (Symbol.size t)

(* --- Database ------------------------------------------------------------- *)

let test_database_basics () =
  let db = Database.create () in
  let r1 = Database.add db "R" [| 1; 2 |] in
  let r2 = Database.add db "R" [| 1; 2 |] in
  Alcotest.(check int) "dedup id" r1 r2;
  Alcotest.(check int) "mult accumulated" 2 (Database.tuple db r1).Database.mult;
  Alcotest.(check int) "one distinct tuple" 1 (Database.num_tuples db);
  Alcotest.(check int) "total multiplicity" 2 (Database.total_multiplicity db);
  let s = Database.add ~mult:3 ~exo:true db "S" [| 5 |] in
  Alcotest.(check bool) "exo flag" true (Database.tuple db s).Database.exo;
  Alcotest.(check (list string)) "rel names" [ "R"; "S" ] (Database.rel_names db);
  Database.remove db r1;
  Alcotest.(check bool) "removed" false (Database.mem db r1);
  Alcotest.(check int) "one left" 1 (Database.num_tuples db);
  Alcotest.check_raises "arity clash" (Invalid_argument "Database.add: relation S has arity 1")
    (fun () -> ignore (Database.add db "S" [| 1; 2 |]))

let test_database_copy_restrict () =
  let db = Database.create () in
  let a = Database.add db "R" [| 1 |] in
  let b = Database.add db "R" [| 2 |] in
  let copy = Database.copy db in
  Database.remove copy a;
  Alcotest.(check bool) "original untouched" true (Database.mem db a);
  let only_b = Database.restrict db (fun info -> info.Database.id = b) in
  Alcotest.(check int) "restricted size" 1 (Database.num_tuples only_b);
  Alcotest.(check bool) "ids preserved" true (Database.mem only_b b)

let test_database_max_const () =
  let db = Database.create () in
  ignore (Database.add db "R" [| 3; 42 |]);
  Alcotest.(check int) "max const" 42 (Database.max_const db);
  Alcotest.(check int) "empty" 0 (Database.max_const (Database.create ()))

(* --- Parser ---------------------------------------------------------------- *)

let test_parser_basics () =
  let q = Cq_parser.parse "Q2 :- R(x,y), S(y,z)" in
  Alcotest.(check string) "name" "Q2" q.Cq.name;
  Alcotest.(check int) "atoms" 2 (Array.length q.Cq.atoms);
  Alcotest.(check (list string)) "vars" [ "x"; "y"; "z" ] (Cq.vars q);
  Alcotest.(check bool) "sj-free" true (Cq.self_join_free q);
  let q2 = Cq_parser.parse "R(x,y), R(y,z)" in
  Alcotest.(check bool) "self-join" false (Cq.self_join_free q2)

let test_parser_constants_exo () =
  let syms = Symbol.create () in
  let q = Cq_parser.parse ~symbols:syms "A!(x), R(x, 7), S(x, 'srv')" in
  Alcotest.(check bool) "exo atom" true q.Cq.atoms.(0).Cq.exo;
  Alcotest.(check bool) "endo atom" false q.Cq.atoms.(1).Cq.exo;
  (match q.Cq.atoms.(1).Cq.terms.(1) with
  | Cq.Const 7 -> ()
  | _ -> Alcotest.fail "int constant");
  (match q.Cq.atoms.(2).Cq.terms.(1) with
  | Cq.Const c -> Alcotest.(check string) "interned" "srv" (Symbol.name syms c)
  | _ -> Alcotest.fail "string constant")

let test_parser_errors () =
  let bad s =
    match Cq_parser.parse s with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ s)
  in
  List.iter bad [ ""; "R(x"; "r(x)"; "R()"; "R(x,)"; "R(x) S(y)"; "R(X)" ]

let test_parser_roundtrip () =
  let q = Cq_parser.parse "Q :- A!(x), R(x,y)" in
  let s = Cq.to_string q in
  let q' = Cq_parser.parse s in
  Alcotest.(check bool) "roundtrip" true (Cq.equal q q')

(* --- CQ structure ----------------------------------------------------------- *)

let test_cq_structure () =
  let q = Cq_parser.parse "R(x,y), S(y,z), T(z,x)" in
  Alcotest.(check bool) "connected" true (Cq.connected q);
  Alcotest.(check int) "components" 1 (List.length (Cq.components q));
  let disc = Cq_parser.parse "R(x,y), S(u,v)" in
  Alcotest.(check bool) "disconnected" false (Cq.connected disc);
  Alcotest.(check int) "two components" 2 (List.length (Cq.components disc));
  Alcotest.(check (list int)) "atoms sharing y" [ 0; 1 ] (Cq.atoms_sharing q "y");
  (* triangle: R and S connect directly via y, which avoids var(T)={z,x} *)
  Alcotest.(check bool) "path avoiding T" true
    (Cq.atoms_connected_avoiding q 0 1 ~avoid:[ "z"; "x" ]);
  (* but R and T cannot avoid var(S)={y,z}: they share only x... which is fine *)
  Alcotest.(check bool) "path avoiding S" true
    (Cq.atoms_connected_avoiding q 0 2 ~avoid:[ "y"; "z" ]);
  let star = Cq_parser.parse "R(x), S(y), W(x,y)" in
  (* R to S must go through W, but every connection uses x or y *)
  Alcotest.(check bool) "no path avoiding W" false
    (Cq.atoms_connected_avoiding star 0 1 ~avoid:[ "x"; "y" ])

let test_var_reachability () =
  let q = Cq_parser.parse "R(x,y), S(y,z), T(z,u)" in
  (* y reaches T only through z; blocking z cuts it *)
  Alcotest.(check bool) "y reaches T" true (Cq.var_reaches_atom_avoiding q "y" 2 ~blocked:[]);
  Alcotest.(check bool) "blocked" false (Cq.var_reaches_atom_avoiding q "y" 2 ~blocked:[ "z" ])

let test_rename_set_exo () =
  let q = Cq_parser.parse "R(x,y), S(y,z)" in
  let q' = Cq.rename_rel q "R" "R2" in
  Alcotest.(check (list string)) "renamed" [ "R2"; "S" ] (Cq.rel_names q');
  let q'' = Cq.set_exo q 1 true in
  Alcotest.(check bool) "exo set" true q''.Cq.atoms.(1).Cq.exo;
  Alcotest.(check bool) "original untouched" false q.Cq.atoms.(1).Cq.exo

(* --- Evaluation --------------------------------------------------------------- *)

let test_eval_chain () =
  let db = Database.create () in
  ignore (Database.add db "R" [| 1; 2 |]);
  ignore (Database.add db "S" [| 2; 3 |]);
  ignore (Database.add db "S" [| 2; 4 |]);
  let q = Cq_parser.parse "R(x,y), S(y,z)" in
  let ws = Eval.witnesses q db in
  Alcotest.(check int) "two witnesses" 2 (List.length ws);
  Alcotest.(check bool) "holds" true (Eval.holds q db);
  Alcotest.(check int) "unique tuple sets" 2 (List.length (Eval.unique_tuple_sets ws));
  let vals = List.map (fun w -> List.assoc "z" w.Eval.valuation) ws |> List.sort compare in
  Alcotest.(check (list int)) "z values" [ 3; 4 ] vals

let test_eval_self_join () =
  (* Example 1 of the paper: R(x,y), R(y,z) over {(1,1),(2,3),(3,4)} *)
  let db = Database.create () in
  let r11 = Database.add db "R" [| 1; 1 |] in
  ignore (Database.add db "R" [| 2; 3 |]);
  ignore (Database.add db "R" [| 3; 4 |]);
  let q = Cq_parser.parse "R(x,y), R(y,z)" in
  let ws = Eval.witnesses q db in
  Alcotest.(check int) "two witnesses" 2 (List.length ws);
  (* the (1,1,1) witness uses a single tuple *)
  let sizes = List.map (fun w -> List.length (Eval.tuple_set w)) ws |> List.sort compare in
  Alcotest.(check (list int)) "tuple set sizes" [ 1; 2 ] sizes;
  Alcotest.(check int) "r11 in one witness" 1 (List.length (Eval.witnesses_with ws r11))

let test_eval_repeated_var () =
  let db = Database.create () in
  ignore (Database.add db "R" [| 1; 1 |]);
  ignore (Database.add db "R" [| 1; 2 |]);
  let q = Cq_parser.parse "R(x,x)" in
  Alcotest.(check int) "diagonal only" 1 (Eval.count q db)

let test_eval_constants () =
  let db = Database.create () in
  ignore (Database.add_named db "AccessLog" [| "1"; "IMAP"; "S" |]);
  ignore (Database.add_named db "AccessLog" [| "1"; "IMAP"; "X" |]);
  let q = Cq_parser.parse_with db "AccessLog(x, y, 'S')" in
  Alcotest.(check int) "selection" 1 (Eval.count q db)

let test_eval_empty () =
  let db = Database.create () in
  ignore (Database.add db "R" [| 1; 2 |]);
  let q = Cq_parser.parse "R(x,y), S(y,z)" in
  Alcotest.(check bool) "no S tuples" false (Eval.holds q db);
  Alcotest.(check int) "no witnesses" 0 (Eval.count q db)

let test_eval_cartesian () =
  let db = Database.create () in
  for i = 1 to 3 do
    ignore (Database.add db "R" [| i |])
  done;
  for i = 1 to 4 do
    ignore (Database.add db "S" [| i |])
  done;
  let q = Cq_parser.parse "R(x), S(y)" in
  Alcotest.(check int) "cross product" 12 (Eval.count q db)

(* Oracle: naive evaluation by enumerating all tuple combinations. *)
let naive_count q db =
  let atoms = Array.to_list q.Cq.atoms in
  let rec go binding = function
    | [] -> 1
    | (a : Cq.atom) :: rest ->
      List.fold_left
        (fun acc info ->
          let binding' = ref (Some binding) in
          Array.iteri
            (fun i term ->
              match !binding' with
              | None -> ()
              | Some b -> (
                let v = info.Database.args.(i) in
                match term with
                | Cq.Const c -> if c <> v then binding' := None
                | Cq.Var x -> (
                  match List.assoc_opt x b with
                  | Some v' -> if v <> v' then binding' := None
                  | None -> binding' := Some ((x, v) :: b))))
            a.Cq.terms;
          match !binding' with Some b -> acc + go b rest | None -> acc)
        0
        (Database.tuples_of db a.Cq.rel)
  in
  go [] atoms

let arb_instance =
  let gen =
    QCheck.Gen.(
      let* nr = int_range 1 8 in
      let* ns = int_range 1 8 in
      let* rs = list_repeat nr (pair (int_range 0 3) (int_range 0 3)) in
      let* ss = list_repeat ns (pair (int_range 0 3) (int_range 0 3)) in
      return (rs, ss))
  in
  QCheck.make gen

let prop_eval_matches_naive =
  QCheck.Test.make ~name:"indexed join = naive join" ~count:300 arb_instance (fun (rs, ss) ->
      let db = Database.create () in
      List.iter (fun (a, b) -> ignore (Database.add db "R" [| a; b |])) rs;
      List.iter (fun (a, b) -> ignore (Database.add db "S" [| a; b |])) ss;
      List.for_all
        (fun qs ->
          let q = Cq_parser.parse qs in
          Eval.count q db = naive_count q db)
        [ "R(x,y), S(y,z)"; "R(x,y), S(x,z)"; "R(x,y), R(y,z)"; "R(x,x)"; "R(x,y), S(y,x)" ])

(* --- Homomorphism / minimization -------------------------------------------- *)

let test_hom_exists () =
  let chain2 = Cq_parser.parse "R(x,y), R(y,z)" in
  let chain3 = Cq_parser.parse "R(x,y), R(y,z), R(z,u)" in
  Alcotest.(check bool) "2-chain -> 3-chain" true (Homomorphism.exists chain2 chain3);
  (* the directed 3-chain does NOT fold into the 2-chain *)
  Alcotest.(check bool) "3-chain -> 2-chain: no" false (Homomorphism.exists chain3 chain2);
  let fork = Cq_parser.parse "R(x,y), R(z,y)" in
  let edge = Cq_parser.parse "R(x,y)" in
  Alcotest.(check bool) "fork folds onto one edge" true (Homomorphism.exists fork edge);
  let tri = Cq_parser.parse "R(x,y), R(y,z), R(z,x)" in
  Alcotest.(check bool) "chain -> triangle" true (Homomorphism.exists chain2 tri);
  Alcotest.(check bool) "triangle -> chain: no" false (Homomorphism.exists tri chain2)

let test_minimize () =
  let q = Cq_parser.parse "R(x,y), R(y,z), R(x,u)" in
  let qmin = Homomorphism.minimize q in
  Alcotest.(check int) "folded to 2 atoms" 2 (Array.length qmin.Cq.atoms);
  Alcotest.(check bool) "minimal now" true (Homomorphism.is_minimal qmin);
  let tri = Cq_parser.parse "R(x,y), S(y,z), T(z,x)" in
  Alcotest.(check bool) "triangle is minimal" true (Homomorphism.is_minimal tri);
  Alcotest.(check bool) "query equivalent" true
    (Homomorphism.exists q qmin && Homomorphism.exists qmin q)

let test_canonical_db () =
  let q = Cq_parser.parse "A!(x), R(x,y), S(y,z)" in
  let db, mapping = Homomorphism.canonical_db q in
  Alcotest.(check int) "one tuple per atom" 3 (Database.num_tuples db);
  Alcotest.(check int) "three constants" 3 (List.length mapping);
  Alcotest.(check bool) "query holds on canonical db" true (Eval.holds q db);
  let a = List.hd (Database.tuples_of db "A") in
  Alcotest.(check bool) "exo carried over" true a.Database.exo

(* --- Database_io ------------------------------------------------------------- *)

let test_database_io () =
  let text = "# comment\nR(1, 2)\nS('alice', 7) x3\nA(1) !\n\n" in
  let db = Database_io.parse_string text in
  Alcotest.(check int) "three tuples" 3 (Database.num_tuples db);
  let s = List.hd (Database.tuples_of db "S") in
  Alcotest.(check int) "mult" 3 s.Database.mult;
  let a = List.hd (Database.tuples_of db "A") in
  Alcotest.(check bool) "exo" true a.Database.exo;
  (* print/parse roundtrip *)
  let printed = Database_io.print_tuple db s.Database.id in
  let db2 = Database.create ~symbols:(Database.symbols db) () in
  ignore (Database_io.parse_line db2 printed);
  let s2 = List.hd (Database.tuples_of db2 "S") in
  Alcotest.(check bool) "roundtrip args" true (s2.Database.args = s.Database.args);
  Alcotest.(check int) "roundtrip mult" 3 s2.Database.mult

(* --- Provenance -------------------------------------------------------------- *)

let test_provenance_dnf () =
  let db = Database.create () in
  ignore (Database.add db "R" [| 1; 2 |]);
  ignore (Database.add db "S" [| 2; 3 |]);
  ignore (Database.add db "S" [| 2; 4 |]);
  let q = Cq_parser.parse "R(x,y), S(y,z)" in
  let dnf = Provenance.why q db in
  Alcotest.(check int) "two clauses" 2 (List.length dnf);
  List.iter (fun c -> Alcotest.(check int) "binary clauses" 2 (List.length c)) dnf

let test_provenance_factorize_star () =
  (* r * (s1 + s2): a read-once star *)
  let db = Database.create () in
  let r = Database.add db "R" [| 1; 2 |] in
  ignore (Database.add db "S" [| 2; 3 |]);
  ignore (Database.add db "S" [| 2; 4 |]);
  let q = Cq_parser.parse "R(x,y), S(y,z)" in
  match Provenance.read_once q db with
  | Some e ->
    Alcotest.(check int) "each tuple once" 3 (List.length (Provenance.tuples_of e));
    (* shape: And [r; Or [s; s]] after simplification *)
    (match e with
    | Provenance.And [ Provenance.Tuple t; Provenance.Or [ _; _ ] ] ->
      Alcotest.(check int) "factored tuple is r" r t
    | _ -> Alcotest.fail "unexpected factorization shape")
  | None -> Alcotest.fail "star must be read-once"

let test_provenance_grid_not_read_once () =
  (* the 2x2 grid (a+b)(c+d) expanded is read-once via the cross product,
     but the chain grid r11-s17 / r11-s18 / r21-s17 is NOT *)
  let db = Database.create () in
  ignore (Database.add db "R" [| 1; 1 |]);
  ignore (Database.add db "R" [| 2; 1 |]);
  ignore (Database.add db "S" [| 1; 7 |]);
  ignore (Database.add db "S" [| 1; 8 |]);
  let q = Cq_parser.parse "R(x,y), S(y,z)" in
  (* witnesses = full 2x2 grid: (a+b)(c+d) — read-once by AND-split! *)
  (match Provenance.read_once q db with
  | Some e -> Alcotest.(check int) "cross product factorizes" 4 (List.length (Provenance.tuples_of e))
  | None -> Alcotest.fail "2x2 grid is a cross product, hence read-once");
  (* remove one S tuple's pairing by splitting the join value: now a true P4 *)
  let db2 = Database.create () in
  ignore (Database.add db2 "R" [| 1; 1 |]);
  ignore (Database.add db2 "R" [| 2; 1 |]);
  ignore (Database.add db2 "R" [| 2; 2 |]);
  ignore (Database.add db2 "S" [| 1; 7 |]);
  ignore (Database.add db2 "S" [| 2; 8 |]);
  (* witnesses: {r11,s17} {r21,s17} {r22,s28} — path sharing, still
     read-once: s17*(r11+r21) + r22*s28 ... build a genuine non-read-once:
     P4 = x1y1, y1x2, x2y2 chain of co-occurrence *)
  let db3 = Database.create () in
  ignore (Database.add db3 "R" [| 1; 1 |]);
  ignore (Database.add db3 "R" [| 1; 2 |]);
  ignore (Database.add db3 "S" [| 1; 7 |]);
  ignore (Database.add db3 "S" [| 2; 7 |]);
  ignore (Database.add db3 "S" [| 2; 8 |]);
  (* witnesses: r11s17; r12s27; r12s28 — clauses r11*s17 + r12*s27 + r12*s28
     = r11*s17 + r12*(s27+s28): read-once again!  The smallest non-read-once
     needs the grid minus a corner: *)
  let db4 = Database.create () in
  ignore (Database.add db4 "R" [| 1; 1 |]);
  ignore (Database.add db4 "R" [| 2; 1 |]);
  ignore (Database.add db4 "R" [| 2; 2 |]);
  ignore (Database.add db4 "S" [| 1; 7 |]);
  ignore (Database.add db4 "S" [| 2; 7 |]);
  (* y=1: r11,r21 x s17; y=2: r22 x s27... different S tuples: witnesses
     {r11,s17},{r21,s17},{r22,s27} — still read-once.  Use self-join chain
     R(1,1),R(1,2),R(2,2): witnesses r11*r11? ... *)
  ignore db2;
  ignore db4;
  (* A guaranteed non-read-once DNF, fed to factorize directly:
     ab + bc + cd (the P4 itself). *)
  Alcotest.(check bool) "P4 DNF is not read-once" true
    (Provenance.factorize [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ] = None)

let test_provenance_cross_product () =
  match Provenance.factorize [ [ 1; 3 ]; [ 1; 4 ]; [ 2; 3 ]; [ 2; 4 ] ] with
  | Some e ->
    (match e with
    | Provenance.And [ Provenance.Or [ _; _ ]; Provenance.Or [ _; _ ] ] -> ()
    | _ -> Alcotest.fail "expected (1+2)(3+4)")
  | None -> Alcotest.fail "cross product must factorize"

let arb_dnf =
  let gen =
    QCheck.Gen.(
      let* nclauses = int_range 1 6 in
      list_repeat nclauses (list_size (int_range 1 4) (int_range 0 6)))
  in
  QCheck.make gen

let prop_factorization_equivalent =
  QCheck.Test.make ~name:"factorization is logically equivalent to the DNF" ~count:500 arb_dnf
    (fun clauses ->
      let clauses = List.map (List.sort_uniq compare) clauses |> List.sort_uniq compare in
      (* make irredundant *)
      let clauses =
        List.filter
          (fun c ->
            not
              (List.exists (fun c' -> c' <> c && List.for_all (fun t -> List.mem t c) c') clauses))
          clauses
      in
      match Provenance.factorize clauses with
      | None -> true
      | Some e ->
        (* each tuple at most once *)
        let occurrences =
          let rec count acc = function
            | Provenance.Tuple _ -> acc + 1
            | Provenance.And es | Provenance.Or es -> List.fold_left count acc es
          in
          count 0 e
        in
        occurrences = List.length (Provenance.tuples_of e)
        &&
        (* equivalence over all assignments of the mentioned tuples *)
        let vars = List.concat clauses |> List.sort_uniq compare in
        let n = List.length vars in
        let ok = ref true in
        for mask = 0 to (1 lsl n) - 1 do
          let assignment t =
            let rec idx i = function
              | [] -> false
              | v :: rest -> if v = t then mask land (1 lsl i) <> 0 else idx (i + 1) rest
            in
            idx 0 vars
          in
          if Provenance.eval e assignment <> Provenance.eval_dnf clauses assignment then
            ok := false
        done;
        !ok)

let prop_factorize_implies_integral_lp =
  (* Theorem J.1: read-once instances have integral LP relaxations.  (The
     P4 pattern test in Resilience.Instance is a *sufficient* condition for
     balancedness only: a 2x2 cross-product grid factorizes although it
     contains the pattern, so we test against the LP directly.) *)
  Harness.seeded_prop ~count:200 "read-once factorization => LP[RES*] integral" (fun rng ->
      let db = Database.create () in
      for _ = 1 to 5 do
        ignore (Database.add db "R" [| Random.State.int rng 3; Random.State.int rng 3 |])
      done;
      for _ = 1 to 5 do
        ignore (Database.add db "S" [| Random.State.int rng 3; Random.State.int rng 3 |])
      done;
      let q = Cq_parser.parse "R(x,y), S(y,z)" in
      match Provenance.read_once q db with
      | None -> true
      | Some _ -> (
        match
          ( Resilience.Solve.resilience Resilience.Problem.Set q db,
            Resilience.Solve.resilience_lp Resilience.Problem.Set q db )
        with
        | Resilience.Solve.Solved a, Some lp ->
          Float.abs (float_of_int a.Resilience.Solve.res_value -. lp) < 1e-6
        | Resilience.Solve.Query_false, None -> true
        | _ -> false))

let () =
  let q = Harness.qtest in
  Alcotest.run "relalg"
    [
      ("symbol", [ Alcotest.test_case "interning" `Quick test_symbol ]);
      ( "database",
        [
          Alcotest.test_case "basics" `Quick test_database_basics;
          Alcotest.test_case "copy/restrict" `Quick test_database_copy_restrict;
          Alcotest.test_case "max_const" `Quick test_database_max_const;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basics" `Quick test_parser_basics;
          Alcotest.test_case "constants and exogenous" `Quick test_parser_constants_exo;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "roundtrip" `Quick test_parser_roundtrip;
        ] );
      ( "cq",
        [
          Alcotest.test_case "structure" `Quick test_cq_structure;
          Alcotest.test_case "variable reachability" `Quick test_var_reachability;
          Alcotest.test_case "rename / set_exo" `Quick test_rename_set_exo;
        ] );
      ( "eval",
        [
          Alcotest.test_case "chain" `Quick test_eval_chain;
          Alcotest.test_case "self-join" `Quick test_eval_self_join;
          Alcotest.test_case "repeated variable" `Quick test_eval_repeated_var;
          Alcotest.test_case "constants" `Quick test_eval_constants;
          Alcotest.test_case "empty relation" `Quick test_eval_empty;
          Alcotest.test_case "cartesian" `Quick test_eval_cartesian;
          q prop_eval_matches_naive;
        ] );
      ( "homomorphism",
        [
          Alcotest.test_case "existence" `Quick test_hom_exists;
          Alcotest.test_case "minimization" `Quick test_minimize;
          Alcotest.test_case "canonical database" `Quick test_canonical_db;
        ] );
      ("io", [ Alcotest.test_case "text format" `Quick test_database_io ]);
      ( "provenance",
        [
          Alcotest.test_case "why DNF" `Quick test_provenance_dnf;
          Alcotest.test_case "star factorizes" `Quick test_provenance_factorize_star;
          Alcotest.test_case "P4 does not factorize" `Quick test_provenance_grid_not_read_once;
          Alcotest.test_case "cross product factorizes" `Quick test_provenance_cross_product;
          q prop_factorization_equivalent;
          q prop_factorize_implies_integral_lp;
        ] );
    ]
