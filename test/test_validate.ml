(* Cross-layer consistency: the query dichotomy verdict versus the
   matrix-structure certificate (Resilience.Validate), and the Q304 -> Q305
   instance-level downgrade. *)

open Relalg
open Resilience

let set = Problem.Set

let has_code code ds = List.exists (fun d -> d.Lp.Lint.code = code) ds

(* q2_chain on a small instance: PTIME side of the dichotomy, and the
   incidence matrix is structurally TU — the validator must confirm. *)
let test_ptime_confirmed () =
  let db = Database.create () in
  List.iter (fun a -> ignore (Database.add db "R" a)) [ [| 1; 1 |]; [| 2; 3 |] ];
  List.iter (fun a -> ignore (Database.add db "S" a)) [ [| 1; 2 |]; [| 3; 4 |] ];
  let q = Queries.q2_chain () in
  let r = Validate.validate set q db in
  Alcotest.(check bool) "ptime" true (r.Validate.complexity = Analysis.Ptime);
  (match r.Validate.cert with
  | Some c ->
    Alcotest.(check bool) "integral" true (Lp.Struct.is_integral c);
    Alcotest.(check bool) "structural" true (Lp.Struct.structural c)
  | None -> Alcotest.fail "expected a certificate");
  Alcotest.(check bool) "V301 emitted" true (has_code "V301" r.Validate.diags);
  Alcotest.(check bool) "no V101" false (has_code "V101" r.Validate.diags)

(* The NP-complete triangle query: whatever the certificate says, the
   validator must not claim a PTIME confirmation. *)
let test_npc_no_confirmation () =
  let db = Database.create () in
  List.iter (fun a -> ignore (Database.add db "R" a)) [ [| 1; 2 |]; [| 2; 1 |] ];
  List.iter (fun a -> ignore (Database.add db "S" a)) [ [| 2; 1 |]; [| 1; 2 |] ];
  List.iter (fun a -> ignore (Database.add db "T" a)) [ [| 1; 1 |]; [| 2; 2 |] ];
  let q = Queries.q_triangle () in
  let r = Validate.validate set q db in
  Alcotest.(check bool) "npc" true (r.Validate.complexity = Analysis.Npc);
  Alcotest.(check bool) "no V301" false (has_code "V301" r.Validate.diags);
  Alcotest.(check bool) "no V101" false (has_code "V101" r.Validate.diags)

(* Query false on the instance: no program, no certificate, no diagnostics. *)
let test_trivial_instance () =
  let db = Database.create () in
  ignore (Database.add db "R" [| 1; 1 |]);
  (* S empty: the chain is false. *)
  let q = Queries.q2_chain () in
  let r = Validate.validate set q db in
  Alcotest.(check bool) "no cert" true (r.Validate.cert = None);
  Alcotest.(check (list string)) "no diags" []
    (List.map (fun d -> d.Lp.Lint.code) r.Validate.diags)

(* Q304 downgrades to Q305 exactly when an integral certificate is in hand. *)
let test_q304_downgrade () =
  let q304 =
    { Lp.Lint.code = "Q304"; severity = Lp.Lint.Note; message = "complexity unknown" }
  in
  let db = Database.create () in
  List.iter (fun a -> ignore (Database.add db "R" a)) [ [| 1; 1 |]; [| 2; 3 |] ];
  List.iter (fun a -> ignore (Database.add db "S" a)) [ [| 1; 2 |]; [| 3; 4 |] ];
  let r = Validate.validate set (Queries.q2_chain ()) db in
  let refined = Validate.refine_query_diags r.Validate.cert [ q304 ] in
  Alcotest.(check bool) "Q304 rewritten" true (has_code "Q305" refined);
  Alcotest.(check bool) "Q304 gone" false (has_code "Q304" refined);
  let kept = Validate.refine_query_diags None [ q304 ] in
  Alcotest.(check bool) "no cert: Q304 kept" true (has_code "Q304" kept)

(* Merged multi-layer reports sort by (severity, code, message). *)
let test_diag_order () =
  let d code severity = { Lp.Lint.code; severity; message = "m" } in
  let merged =
    Lp.Lint.sort_diags
      [ d "V301" Lp.Lint.Note; d "M203" Lp.Lint.Warning; d "I101" Lp.Lint.Error;
        d "Q302" Lp.Lint.Note; d "V201" Lp.Lint.Warning ]
  in
  Alcotest.(check (list string)) "order" [ "I101"; "M203"; "V201"; "Q302"; "V301" ]
    (List.map (fun x -> x.Lp.Lint.code) merged)

let () =
  Alcotest.run "validate"
    [
      ( "cross-layer",
        [
          Alcotest.test_case "PTIME verdict confirmed (V301)" `Quick test_ptime_confirmed;
          Alcotest.test_case "NPC: no confirmation, no contradiction" `Quick
            test_npc_no_confirmation;
          Alcotest.test_case "trivial instance: empty report" `Quick test_trivial_instance;
        ] );
      ( "refinement",
        [
          Alcotest.test_case "Q304 -> Q305 with a certificate" `Quick test_q304_downgrade;
          Alcotest.test_case "shared diagnostic order" `Quick test_diag_order;
        ] );
    ]
