(* Tests for Independent Join Paths: the semantic checks of Definitions
   7.1/7.3 (including every negative direction), the automatic certificate
   search, and the vertex-cover composition of Theorem 7.4. *)

open Relalg
open Resilience

let set = Problem.Set

(* Fig. 1a: the IJP for the triangle-unary query. *)
let fig1a () =
  let q = Queries.q_triangle_a () in
  let db = Database.create () in
  ignore (Database.add ~exo:true db "A" [| 1 |]);
  ignore (Database.add ~exo:true db "A" [| 4 |]);
  let r12 = Database.add db "R" [| 1; 2 |] in
  ignore (Database.add db "R" [| 4; 2 |]);
  let r45 = Database.add db "R" [| 4; 5 |] in
  ignore (Database.add db "S" [| 2; 3 |]);
  ignore (Database.add db "S" [| 5; 3 |]);
  ignore (Database.add db "T" [| 3; 1 |]);
  ignore (Database.add db "T" [| 3; 4 |]);
  { Ijp.Join_path.q; db; start = [ r12 ]; terminal = [ r45 ] }

let test_fig1a_is_ijp () =
  let jp = fig1a () in
  match Ijp.Join_path.check_ijp set jp with
  | Ok c -> Alcotest.(check int) "resilience 2" 2 c
  | Error e -> Alcotest.fail e

let test_fig1a_witnesses () =
  let jp = fig1a () in
  Alcotest.(check int) "three witnesses" 3 (Eval.count jp.Ijp.Join_path.q jp.Ijp.Join_path.db);
  Alcotest.(check bool) "reduced" true
    (Ijp.Join_path.reduced jp.Ijp.Join_path.q jp.Ijp.Join_path.db);
  Alcotest.(check bool) "connected" true
    (Ijp.Join_path.witnesses_connected jp.Ijp.Join_path.q jp.Ijp.Join_path.db)

let test_endpoint_isomorphism () =
  let jp = fig1a () in
  match Ijp.Join_path.endpoint_isomorphism jp with
  | Some f ->
    Alcotest.(check (option int)) "1 -> 4" (Some 4) (List.assoc_opt 1 f);
    Alcotest.(check (option int)) "2 -> 5" (Some 5) (List.assoc_opt 2 f)
  | None -> Alcotest.fail "endpoints should be isomorphic"

(* Negative directions: each IJP condition can fail. *)

let test_reject_endogenous_endpoint_neighbor () =
  (* Making A endogenous: A(1) sits inside the start endpoint's constants. *)
  let jp = fig1a () in
  let db = Database.copy jp.Ijp.Join_path.db in
  List.iter (fun info -> Database.set_exo db info.Database.id false) (Database.tuples_of db "A");
  match Ijp.Join_path.check_ijp set { jp with Ijp.Join_path.db } with
  | Error msg -> Alcotest.(check bool) "3ii cited" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "should be rejected"

let test_reject_not_reduced () =
  let jp = fig1a () in
  let db = Database.copy jp.Ijp.Join_path.db in
  ignore (Database.add db "S" [| 77; 78 |]);
  (* joins nothing *)
  match Ijp.Join_path.check_ijp set { jp with Ijp.Join_path.db } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unreduced database accepted"

let test_reject_identical_endpoints () =
  let jp = fig1a () in
  match
    Ijp.Join_path.check_ijp set { jp with Ijp.Join_path.terminal = jp.Ijp.Join_path.start }
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "identical endpoints accepted"

let test_reject_disconnected () =
  (* Two far-apart witnesses: connected fails. *)
  let q = Queries.q2_chain () in
  let db = Database.create () in
  let r1 = Database.add db "R" [| 1; 2 |] in
  ignore (Database.add db "S" [| 2; 3 |]);
  let r2 = Database.add db "R" [| 11; 12 |] in
  ignore (Database.add db "S" [| 12; 13 |]);
  match Ijp.Join_path.check_ijp set { Ijp.Join_path.q; db; start = [ r1 ]; terminal = [ r2 ] } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "disconnected witnesses accepted"

let test_reject_no_or_property () =
  (* A 2-chain instance shaped like a path: valid JP conditions but removing
     an endpoint does not always drop resilience. *)
  let q = Queries.q2_chain () in
  let db = Database.create () in
  let r12 = Database.add db "R" [| 1; 2 |] in
  ignore (Database.add db "S" [| 2; 3 |]);
  ignore (Database.add db "R" [| 5; 2 |]);
  let r56 = Database.add db "R" [| 5; 6 |] in
  ignore (Database.add db "S" [| 6; 7 |]);
  match Ijp.Join_path.check_ijp set { Ijp.Join_path.q; db; start = [ r12 ]; terminal = [ r56 ] } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "OR property should fail for a linear query gadget"

(* --- Search -------------------------------------------------------------------- *)

let test_search_sj_chain () =
  match Ijp.Search.find (Queries.q2_chain_sj ()) with
  | Some (jp, stats) ->
    Alcotest.(check bool) "fast" true (stats.Ijp.Search.elapsed < 30.0);
    (match Ijp.Join_path.check_ijp set jp with
    | Ok c -> Alcotest.(check bool) "resilience >= 1" true (c >= 1)
    | Error e -> Alcotest.fail e);
    (* certificate is small, like the paper's (Appendix M found 3 witnesses) *)
    Alcotest.(check bool) "small certificate" true
      (Eval.count jp.Ijp.Join_path.q jp.Ijp.Join_path.db <= 6);
    (* Conjecture 7.7: certificates exist within domain 7 * |var(Q)| *)
    let domain = Database.max_const jp.Ijp.Join_path.db in
    Alcotest.(check bool) "Conjecture 7.7 domain bound" true
      (domain <= 7 * List.length (Cq.vars jp.Ijp.Join_path.q))
  | None -> Alcotest.fail "certificate must exist for the hard SJ chain"

let test_search_chain_b () =
  (* q^b_chain :- R(x,y), B(y), R(y,z) — hard (Appendix G, Fig. 10).  The
     small certificate uses exogenous B tuples, the paper's tuple-level
     exogeneity device (Definition 3.3, Section 7). *)
  let q = Queries.q_chain_b_sj () in
  let config = { Ijp.Search.default_config with exo_rels = [ "B" ]; time_limit = 60.0 } in
  match Ijp.Search.find ~config q with
  | Some (jp, _) -> (
    match Ijp.Join_path.check_ijp set jp with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e)
  | None -> Alcotest.fail "certificate must exist for q^b_chain"

let test_search_none_for_easy () =
  (* The 2-chain is PTIME: no certificate should exist at small domain
     (Conjecture 7.6 direction: absence proves nothing but must hold here). *)
  let config =
    { Ijp.Search.default_config with domain = 4; max_generators = 3; time_limit = 60.0 }
  in
  match Ijp.Search.find ~config (Queries.q2_chain ()) with
  | None -> ()
  | Some (jp, _) ->
    Alcotest.failf "unexpected certificate for a PTIME query: %s"
      (Format.asprintf "%a" Ijp.Join_path.pp jp)

let test_endpoint_candidates () =
  let q = Queries.q2_chain_sj () in
  let cands = Ijp.Search.endpoint_candidates q in
  (* singleton R endpoints must be among the candidates, shaped (1,2)/(3,4) *)
  Alcotest.(check bool) "singleton R pair present" true
    (List.mem ([ ("R", [| 1; 2 |]) ], [ ("R", [| 3; 4 |]) ]) cands);
  (* exogenous atoms contribute no endpoint tuples *)
  let qe = Cq_parser.parse "A!(x), R(x,y)" in
  List.iter
    (fun (s, t) ->
      List.iter (fun (rel, _) -> Alcotest.(check bool) "no exo endpoint" true (rel <> "A")) s;
      List.iter (fun (rel, _) -> Alcotest.(check bool) "no exo endpoint" true (rel <> "A")) t)
    (Ijp.Search.endpoint_candidates qe);
  (* multi-tuple endpoints exist for q_chain^b (the B tuple must tag along) *)
  let qb = Queries.q_chain_b_sj () in
  Alcotest.(check bool) "two-tuple endpoints offered" true
    (List.exists (fun (s, _) -> List.length s = 2) (Ijp.Search.endpoint_candidates qb))

(* --- Composition ----------------------------------------------------------------- *)

let test_vertex_cover_reduction () =
  let q = Queries.q2_chain_sj () in
  match Ijp.Search.find q with
  | None -> Alcotest.fail "certificate must exist"
  | Some (jp, _) ->
    (* cycles C3, C5, and a path P3 (VC: 2, 3, 1) *)
    let cases =
      [
        (Ijp.Compose.odd_cycle 1, 2);
        (Ijp.Compose.odd_cycle 2, 3);
        ([ (0, 1); (1, 2) ], 1);
      ]
    in
    List.iter
      (fun (edges, vc) ->
        let db = Ijp.Compose.vertex_cover_instance jp ~edges in
        let expected = Ijp.Compose.expected_resilience jp ~edges ~vertex_cover:vc in
        match Solve.resilience set q db with
        | Solve.Solved a -> Alcotest.(check int) "RES = VC + m(c-1)" expected a.Solve.res_value
        | _ -> Alcotest.fail "solve failed")
      cases

let prop_vertex_cover_random_graphs =
  (* Theorem 7.4 on random graphs: RES of the composed instance equals
     VC(G) + |E|(c-1), with VC computed exhaustively. *)
  Harness.seeded_prop ~count:40 "RES(composition) = VC + |E|(c-1) on random graphs" (fun rng ->
      match Ijp.Search.find (Queries.q2_chain_sj ()) with
      | None -> false
      | Some (jp, _) ->
        let n = 3 + Random.State.int rng 3 in
        let edges =
          List.init n (fun u -> List.init n (fun v -> (u, v)))
          |> List.concat
          |> List.filter (fun (u, v) -> u < v && Random.State.int rng 3 = 0)
        in
        if edges = [] then true
        else begin
          let vc =
            (* exhaustive minimum vertex cover *)
            let best = ref max_int in
            for mask = 0 to (1 lsl n) - 1 do
              let covers =
                List.for_all
                  (fun (u, v) -> mask land (1 lsl u) <> 0 || mask land (1 lsl v) <> 0)
                  edges
              in
              if covers then begin
                let size = ref 0 in
                for i = 0 to n - 1 do
                  if mask land (1 lsl i) <> 0 then incr size
                done;
                if !size < !best then best := !size
              end
            done;
            !best
          in
          let db = Ijp.Compose.vertex_cover_instance jp ~edges in
          let expected = Ijp.Compose.expected_resilience jp ~edges ~vertex_cover:vc in
          match Solve.resilience set (Queries.q2_chain_sj ()) db with
          | Solve.Solved a -> a.Solve.res_value = expected
          | _ -> false
        end)

let test_triangle_composition_counts () =
  let jp = fig1a () in
  match Ijp.Join_path.triangle_nonleaking jp with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_instantiate_respects_flags () =
  let jp = fig1a () in
  let target = Database.create () in
  let counter = ref 100 in
  let fresh () =
    incr counter;
    !counter
  in
  let id_map consts = List.map (fun c -> (c, c)) consts in
  Ijp.Join_path.instantiate jp ~smap:(id_map [ 1; 2 ]) ~tmap:(id_map [ 4; 5 ]) ~fresh target;
  Alcotest.(check int) "copy size" 9 (Database.num_tuples target);
  let exo_count =
    List.length (List.filter (fun info -> info.Database.exo) (Database.tuples target))
  in
  Alcotest.(check int) "exogenous flags copied" 2 exo_count

let () =
  Alcotest.run "ijp"
    [
      ( "join_path",
        [
          Alcotest.test_case "Fig 1a is an IJP" `Quick test_fig1a_is_ijp;
          Alcotest.test_case "Fig 1a witnesses" `Quick test_fig1a_witnesses;
          Alcotest.test_case "endpoint isomorphism" `Quick test_endpoint_isomorphism;
          Alcotest.test_case "reject crowded endpoints" `Quick
            test_reject_endogenous_endpoint_neighbor;
          Alcotest.test_case "reject unreduced" `Quick test_reject_not_reduced;
          Alcotest.test_case "reject identical endpoints" `Quick test_reject_identical_endpoints;
          Alcotest.test_case "reject disconnected" `Quick test_reject_disconnected;
          Alcotest.test_case "reject missing OR property" `Quick test_reject_no_or_property;
        ] );
      ( "search",
        [
          Alcotest.test_case "finds SJ-chain certificate" `Quick test_search_sj_chain;
          Alcotest.test_case "finds q^b_chain certificate" `Slow test_search_chain_b;
          Alcotest.test_case "nothing for the easy 2-chain" `Slow test_search_none_for_easy;
          Alcotest.test_case "endpoint candidates" `Quick test_endpoint_candidates;
        ] );
      ( "compose",
        [
          Alcotest.test_case "vertex-cover reduction values" `Quick test_vertex_cover_reduction;
          Harness.qtest prop_vertex_cover_random_graphs;
          Alcotest.test_case "triangle composition non-leaking" `Quick
            test_triangle_composition_counts;
          Alcotest.test_case "instantiate copies flags" `Quick test_instantiate_respects_flags;
        ] );
    ]
