(* Obs: the observability subsystem must be invisible when disabled (no
   recording, no behaviour change), exact when enabled (counter totals under
   multi-domain stress, well-nested spans per track), and schema-stable
   (static counter key set, fixed-format export). *)

let c_a = Obs.Counter.create "test.alpha"
let c_b = Obs.Counter.create "test.beta"
let c_max = Obs.Counter.create "test.peak"

(* Every test leaves the sink uninstalled so order doesn't matter. *)
let with_sink f =
  Obs.Sink.install ();
  Fun.protect ~finally:Obs.Sink.uninstall f

(* --- Clock ------------------------------------------------------------------ *)

let test_clock_monotonic () =
  let prev = ref (Obs.Clock.now ()) in
  for _ = 1 to 10_000 do
    let t = Obs.Clock.now () in
    Alcotest.(check bool) "now never decreases" true (t >= !prev);
    prev := t
  done;
  Alcotest.(check bool) "elapsed clamps at 0" true (Obs.Clock.elapsed (Obs.Clock.now () +. 60.) = 0.)

let test_clock_cross_domain () =
  (* The high-water mark is global: a timestamp taken on one domain bounds
     reads on another from below. *)
  let t0 = Obs.Clock.now () in
  let t1 = Domain.join (Domain.spawn (fun () -> Obs.Clock.now ())) in
  Alcotest.(check bool) "cross-domain monotone" true (t1 >= t0)

(* --- Disabled sink: zero observable effect ----------------------------------- *)

let test_disabled_drops_everything () =
  Obs.Sink.uninstall ();
  Alcotest.(check bool) "inactive" false (Obs.Sink.active ());
  let before = Obs.Counter.value c_a in
  Obs.Counter.incr c_a;
  Obs.Counter.add c_a 100;
  Obs.Counter.record_max c_a 1_000_000;
  Alcotest.(check int) "counter bumps dropped" before (Obs.Counter.value c_a);
  Alcotest.(check bool) "begin_ is nan" true (Float.is_nan (Obs.Trace.begin_ ()));
  Obs.Trace.end_ (Obs.Trace.begin_ ()) "test.noop";
  Obs.Trace.instant "test.noop";
  Alcotest.(check int) "with_span still runs the body" 42
    (Obs.Trace.with_span "test.noop" (fun () -> 42));
  Alcotest.(check (list string)) "nothing buffered" []
    (List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.drain ()))

let test_disabled_same_answers () =
  (* A traced run and an untraced run of the same solve return identical
     results — instrumentation must never leak into answers. *)
  let solve () =
    let q = Relalg.Cq_parser.parse "Q :- R(x, y), S(y)" in
    let db = Relalg.Database.create () in
    List.iter
      (fun (r, args) -> ignore (Relalg.Database.add db r args))
      [
        ("R", [| 1; 2 |]); ("R", [| 2; 2 |]); ("R", [| 3; 4 |]);
        ("S", [| 2 |]); ("S", [| 4 |]);
      ];
    let session = Resilience.Session.create Resilience.Problem.Set q db in
    Resilience.Session.ranking_par ~jobs:2 session
  in
  let plain = solve () in
  let traced = with_sink solve in
  ignore (Obs.Trace.drain ());
  Alcotest.(check bool) "ranked something" true (plain <> []);
  Alcotest.(check bool) "identical rankings" true (plain = traced)

(* --- Counters ----------------------------------------------------------------- *)

let test_counter_idempotent_create () =
  let again = Obs.Counter.create "test.alpha" in
  with_sink (fun () ->
      Obs.Counter.incr c_a;
      Alcotest.(check int) "same cell" (Obs.Counter.value c_a) (Obs.Counter.value again))

let test_counter_snapshot_static () =
  (* The key set is a property of which modules are linked, not of whether
     anything ran: install resets values but never removes keys. *)
  let keys () = List.map fst (Obs.Counter.snapshot ()) in
  let k0 = keys () in
  Alcotest.(check bool) "registered" true (List.mem "test.alpha" k0);
  Alcotest.(check bool) "sorted" true (List.sort compare k0 = k0);
  with_sink (fun () -> Obs.Counter.incr c_b);
  Alcotest.(check (list string)) "key set unchanged by a run" k0 (keys ())

let test_counter_atomic_under_stress () =
  (* 10k increments race from 2..8 domains; the total must be exact, and a
     concurrent record_max must converge to the true maximum. *)
  for jobs = 2 to 8 do
    with_sink (fun () ->
        let tasks = 10_000 in
        Lp.Pool.with_pool ~jobs (fun pool ->
            ignore
              (Lp.Pool.run ~chunk:7 pool ~tasks (fun i ->
                   Obs.Counter.incr c_a;
                   Obs.Counter.add c_b 3;
                   Obs.Counter.record_max c_max (i + 1))));
        Alcotest.(check int)
          (Printf.sprintf "incr total, jobs=%d" jobs)
          tasks (Obs.Counter.value c_a);
        Alcotest.(check int)
          (Printf.sprintf "add total, jobs=%d" jobs)
          (3 * tasks) (Obs.Counter.value c_b);
        Alcotest.(check int)
          (Printf.sprintf "max, jobs=%d" jobs)
          tasks (Obs.Counter.value c_max));
    ignore (Obs.Trace.drain ())
  done

(* --- Spans --------------------------------------------------------------------- *)

let test_span_records_on_exception () =
  with_sink (fun () ->
      (match Obs.Trace.with_span "test.raises" (fun () -> failwith "boom") with
      | () -> Alcotest.fail "exception swallowed"
      | exception Failure _ -> ());
      let names = List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.drain ()) in
      Alcotest.(check bool) "span recorded anyway" true (List.mem "test.raises" names))

let check_well_formed spans =
  List.iter
    (fun (s : Obs.Trace.span) ->
      Alcotest.(check bool) (s.Obs.Trace.name ^ " has t1 >= t0") true (s.Obs.Trace.t1 >= s.Obs.Trace.t0))
    spans;
  (* drain sorts by start time *)
  let starts = List.map (fun s -> s.Obs.Trace.t0) spans in
  Alcotest.(check bool) "sorted by t0" true (List.sort compare starts = starts)

let test_span_nesting_under_pool () =
  (* Each pool width: chunk spans nest inside the batch span on every track,
     and per-domain buffers survive the workers' death (with_pool joins
     them before we drain). *)
  List.iter
    (fun jobs ->
      with_sink (fun () ->
          Lp.Pool.with_pool ~jobs (fun pool ->
              ignore
                (Lp.Pool.run ~chunk:11 pool ~tasks:500 (fun i ->
                     Obs.Trace.with_span "test.task" (fun () -> i * 2))));
          let spans = Obs.Trace.drain () in
          check_well_formed spans;
          let named n = List.filter (fun s -> s.Obs.Trace.name = n) spans in
          let batch =
            match named "pool.batch" with
            | [ b ] -> b
            | bs -> Alcotest.failf "expected 1 pool.batch, got %d" (List.length bs)
          in
          let chunks = named "pool.chunk" in
          Alcotest.(check bool) "at least one chunk" true (chunks <> []);
          List.iter
            (fun (c : Obs.Trace.span) ->
              Alcotest.(check bool)
                (Printf.sprintf "chunk within batch (jobs=%d)" jobs)
                true
                (c.Obs.Trace.t0 >= batch.Obs.Trace.t0 && c.Obs.Trace.t1 <= batch.Obs.Trace.t1))
            chunks;
          Alcotest.(check int)
            (Printf.sprintf "every task spanned (jobs=%d)" jobs)
            500 (List.length (named "test.task"));
          (* chunk spans carry their task count *)
          let counted =
            List.fold_left
              (fun acc (c : Obs.Trace.span) ->
                match List.assoc_opt "tasks" c.Obs.Trace.args with
                | Some n -> acc + int_of_string n
                | None -> acc)
              0 chunks
          in
          Alcotest.(check int) "chunk args sum to the batch" 500 counted))
    [ 1; 2; 4; 8 ]

(* --- Export -------------------------------------------------------------------- *)

let test_chrome_export () =
  let spans =
    with_sink (fun () ->
        Obs.Trace.with_span "test.outer" (fun () ->
            Obs.Trace.with_span
              ~args:(fun () -> [ ("k", "v\"quoted\"") ])
              "test.inner"
              (fun () -> ()));
        Obs.Trace.drain ())
  in
  let path = Filename.temp_file "obs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Export.chrome_to_file path spans;
      let ic = open_in path in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      Alcotest.(check bool) "traceEvents doc" true
        (String.length body > 0 && String.sub body 0 15 = {|{"traceEvents":|});
      let has needle =
        let n = String.length needle and m = String.length body in
        let rec go i = i + n <= m && (String.sub body i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "complete events" true (has {|"ph":"X"|});
      Alcotest.(check bool) "both spans" true (has "test.outer" && has "test.inner");
      Alcotest.(check bool) "escaped args" true (has {|\"quoted\"|});
      Alcotest.(check bool) "thread metadata" true (has {|"thread_name"|}))

let test_stats_json () =
  let spans =
    with_sink (fun () ->
        Obs.Counter.incr c_a;
        Obs.Trace.with_span "test.outer" (fun () -> ());
        Obs.Trace.drain ())
  in
  let s = Obs.Export.stats_json spans in
  let has needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counters object" true (has {|"counters": {|});
  Alcotest.(check bool) "our counter at 1" true (has {|"test.alpha": 1|});
  Alcotest.(check bool) "span aggregate" true (has {|"test.outer": {"count": 1, "total_s":|});
  Alcotest.(check bool) "wall clock" true (has {|"wall_s":|});
  (* fixed-width floats only: %g would break digit-normalized goldens *)
  Alcotest.(check bool) "no scientific notation" true (not (has "e-") && not (has "e+"))

(* --- Counter registry is live (regression) ------------------------------------ *)

let test_counter_snapshot_live () =
  (* A counter registered after a snapshot was taken must appear in every
     later snapshot — the registry is live, not frozen at first export.
     (Regression: an earlier doc claimed the key set was static per build,
     which a dynamically created counter silently violated.) *)
  let k0 = List.map fst (Obs.Counter.snapshot ()) in
  Alcotest.(check bool) "not yet present" false (List.mem "test.late_registered" k0);
  let late = Obs.Counter.create "test.late_registered" in
  with_sink (fun () -> Obs.Counter.incr late);
  ignore (Obs.Trace.drain ());
  let snap = Obs.Counter.snapshot () in
  Alcotest.(check bool) "late counter visible" true (List.mem_assoc "test.late_registered" snap);
  Alcotest.(check bool) "still sorted" true
    (let keys = List.map fst snap in
     List.sort compare keys = keys)

(* --- Histograms ---------------------------------------------------------------- *)

(* The no-interpolation sorted-array oracle Histogram.percentile is
   specified against. *)
let oracle_percentile p samples =
  let a = Array.of_list samples in
  Array.sort compare a;
  let n = Array.length a in
  let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1 in
  a.(max 0 (min (n - 1) rank))

let adversarial_distributions =
  [
    ("uniform", List.init 1000 (fun i -> float_of_int (i + 1) /. 100.));
    (* ~13 decades, 1e-6 up to ~7e6 — inside the summable range *)
    ("exponential", List.init 1000 (fun i -> 1e-6 *. (1.03 ** float_of_int i)));
    ("bimodal", List.init 1000 (fun i -> if i mod 2 = 0 then 0.001 else 1000.));
    ("heavy-tail", List.init 1000 (fun i -> 1. /. (1. -. (float_of_int i /. 1001.))));
    ("constant", List.init 1000 (fun _ -> 3.141592));
    ("outliers", (1e9 :: 1e-9 :: List.init 998 (fun i -> float_of_int (i + 1))));
  ]

let test_histogram_bre_vs_oracle () =
  List.iter
    (fun (name, samples) ->
      let h = Obs.Histogram.create () in
      List.iter (Obs.Histogram.observe h) samples;
      Alcotest.(check int) (name ^ ": count") (List.length samples) (Obs.Histogram.count h);
      let true_sum = List.fold_left ( +. ) 0. samples in
      Alcotest.(check bool)
        (name ^ ": sum within fixed-point granularity")
        true
        (Float.abs (Obs.Histogram.sum h -. true_sum)
        <= (1e-6 *. float_of_int (List.length samples)) +. (1e-9 *. Float.abs true_sum));
      List.iter
        (fun p ->
          let got = Obs.Histogram.percentile h p in
          let want = oracle_percentile p samples in
          let err = Float.abs (got -. want) /. want in
          Alcotest.(check bool)
            (Printf.sprintf "%s p%g: |%g - %g| / %g within bound" name p got want want)
            true
            (err <= Obs.Histogram.rel_error +. 1e-12))
        [ 0.1; 1.; 10.; 25.; 50.; 75.; 90.; 99.; 99.9; 100. ])
    adversarial_distributions

let test_histogram_empty_and_clamp () =
  let h = Obs.Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Obs.Histogram.count h);
  Alcotest.(check bool) "empty percentile is NaN" true
    (Float.is_nan (Obs.Histogram.percentile h 50.));
  (* Non-positive, NaN and out-of-range values clamp instead of crashing. *)
  List.iter (Obs.Histogram.observe h) [ 0.; -5.; Float.nan; 1e300; infinity; 1e-300 ];
  Alcotest.(check int) "clamped values all recorded" 6 (Obs.Histogram.count h);
  let s = Obs.Histogram.snapshot h in
  Alcotest.(check int) "snapshot total agrees" 6 s.Obs.Histogram.total

let test_histogram_merge_bit_identical () =
  (* The same multiset of samples must yield a bit-identical snapshot no
     matter which domains recorded them: all state is integers, so the
     shard merge is commutative/associative addition. *)
  let samples =
    Array.init 5000 (fun i -> 1e-4 *. float_of_int (((i * 7919) mod 100_000) + 1))
  in
  let snap_at jobs =
    let h = Obs.Histogram.create () in
    Lp.Pool.with_pool ~jobs (fun pool ->
        ignore
          (Lp.Pool.run ~chunk:13 pool ~tasks:(Array.length samples) (fun i ->
               Obs.Histogram.observe h samples.(i))));
    Obs.Histogram.snapshot h
  in
  let s1 = snap_at 1 in
  Alcotest.(check int) "all samples recorded" (Array.length samples) s1.Obs.Histogram.total;
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d snapshot bit-identical to jobs=1" jobs)
        true
        (snap_at jobs = s1))
    [ 2; 4 ];
  (* Explicit merge agrees with recording everything into one histogram. *)
  let ha = Obs.Histogram.create () and hb = Obs.Histogram.create () in
  Array.iteri
    (fun i v -> Obs.Histogram.observe (if i mod 2 = 0 then ha else hb) v)
    samples;
  Alcotest.(check bool) "merge of halves = whole" true
    (Obs.Histogram.merge (Obs.Histogram.snapshot ha) (Obs.Histogram.snapshot hb) = s1)

(* --- Metrics registry and exposition ------------------------------------------- *)

let m_c = Obs.Metrics.counter ~help:"test metric counter" "test.metrics.count"
let m_g = Obs.Metrics.gauge ~help:"test metric gauge" "test.metrics.gauge"
let m_h = Obs.Metrics.histogram ~help:"test latency" ~labels:[ ("op", "x") ] "test.metrics.lat"

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_metrics_gated_off () =
  Obs.Sink.uninstall ();
  Obs.Sink.disarm_metrics ();
  Obs.Metrics.incr m_c;
  Obs.Metrics.add m_c 10;
  Obs.Metrics.set m_g 5.;
  Obs.Metrics.observe m_h 1.;
  let series = Obs.Metrics.snapshot () in
  let find name =
    List.find (fun s -> s.Obs.Metrics.sname = name) series
  in
  (match (find "test.metrics.count").Obs.Metrics.svalue with
  | Obs.Metrics.Vcounter v -> Alcotest.(check int) "counter dropped" 0 v
  | _ -> Alcotest.fail "wrong kind");
  match (find "test.metrics.lat").Obs.Metrics.svalue with
  | Obs.Metrics.Vhist h -> Alcotest.(check int) "histogram dropped" 0 h.Obs.Histogram.total
  | _ -> Alcotest.fail "wrong kind"

let test_metrics_idempotent_and_kinds () =
  let again = Obs.Metrics.counter "test.metrics.count" in
  Obs.Sink.arm_metrics ();
  Fun.protect ~finally:Obs.Sink.disarm_metrics @@ fun () ->
  Obs.Metrics.incr m_c;
  Obs.Metrics.incr again;
  (match
     (List.find
        (fun s -> s.Obs.Metrics.sname = "test.metrics.count")
        (Obs.Metrics.snapshot ()))
       .Obs.Metrics.svalue
   with
  | Obs.Metrics.Vcounter v -> Alcotest.(check int) "same cell" 2 v
  | _ -> Alcotest.fail "wrong kind");
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Obs.Metrics: \"test.metrics.count\" re-registered with a different kind")
    (fun () -> ignore (Obs.Metrics.gauge "test.metrics.count"))

let test_metrics_exposition () =
  (* install resets every instrument, then arm the metrics plane alone. *)
  Obs.Sink.install ();
  Obs.Sink.uninstall ();
  ignore (Obs.Trace.drain ());
  Obs.Sink.arm_metrics ();
  Fun.protect ~finally:Obs.Sink.disarm_metrics @@ fun () ->
  Obs.Metrics.add m_c 3;
  Obs.Metrics.set m_g 2.5;
  List.iter (Obs.Metrics.observe m_h) [ 0.0005; 0.05; 0.05; 5. ];
  let prom = Obs.Metrics.prometheus () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "prometheus has %S" needle) true
        (contains prom needle))
    [
      "# HELP test_metrics_count test metric counter";
      "# TYPE test_metrics_count counter";
      "test_metrics_count 3";
      "# TYPE test_metrics_gauge gauge";
      "test_metrics_gauge 2.500000";
      "# TYPE test_metrics_lat histogram";
      "test_metrics_lat_bucket{op=\"x\",le=\"0.001\"} 1";
      "test_metrics_lat_bucket{op=\"x\",le=\"0.1\"} 3";
      "test_metrics_lat_bucket{op=\"x\",le=\"+Inf\"} 4";
      "test_metrics_lat_count{op=\"x\"} 4";
    ];
  let js = Obs.Metrics.json () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "json has %S" needle) true (contains js needle))
    [
      "\"counters\":{"; "\"test.metrics.count\":3"; "\"test.metrics.gauge\":2.500000";
      "\"test.metrics.lat{op=x}\":{\"count\":4"; "\"p50\":"; "\"p999\":";
    ];
  (* Quantiles of an empty histogram read 0.0, never NaN, so the JSON
     stays parseable and digit-normalizable. *)
  Alcotest.(check bool) "no NaN in json" true (not (contains js "nan"))

(* --- Flight recorder ------------------------------------------------------------ *)

let test_recorder_ring () =
  Obs.Recorder.clear ();
  Obs.Recorder.disarm ();
  Obs.Recorder.note ~fields:[ ("k", "1") ] "dropped";
  Alcotest.(check int) "disarmed notes nothing" 0 (List.length (Obs.Recorder.dump ()));
  Obs.Recorder.arm ();
  Fun.protect ~finally:Obs.Recorder.disarm @@ fun () ->
  for i = 1 to 100 do
    Obs.Recorder.note ~fields:[ ("i", string_of_int i) ] "op"
  done;
  let evs = Obs.Recorder.dump () in
  Alcotest.(check int) "ring keeps the last 64" 64 (List.length evs);
  let is = List.map (fun e -> int_of_string (List.assoc "i" e.Obs.Recorder.ev_fields)) evs in
  Alcotest.(check (list int)) "oldest-first, newest retained" (List.init 64 (fun k -> 37 + k)) is;
  let js = Obs.Recorder.dump_json () in
  Alcotest.(check bool) "json envelope" true (contains js "\"flight_recorder\":[");
  Obs.Recorder.clear ();
  Alcotest.(check int) "clear empties" 0 (List.length (Obs.Recorder.dump ()))

(* --- Runlog --------------------------------------------------------------------- *)

let test_runlog_records () =
  let path = Filename.temp_file "runlog" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.Runlog.record (fun () -> Alcotest.fail "thunk must not run while disabled");
  Obs.Runlog.enable path;
  Alcotest.(check bool) "enabled" true (Obs.Runlog.enabled ());
  Obs.Runlog.record (fun () ->
      [
        ("op", Obs.Runlog.S "test");
        ("rows", Obs.Runlog.I 7);
        ("wall_s", Obs.Runlog.F 0.25);
        ("certified", Obs.Runlog.B true);
        ("bad", Obs.Runlog.F Float.nan);
      ]);
  Obs.Runlog.disable ();
  Alcotest.(check bool) "disabled again" false (Obs.Runlog.enabled ());
  let ic = open_in path in
  let header = input_line ic in
  let line = input_line ic in
  close_in ic;
  Alcotest.(check string) "versioned header"
    (Printf.sprintf {|{"runlog":"resil-solve","version":%d}|} Obs.Runlog.schema_version)
    header;
  Alcotest.(check string) "record line"
    {|{"op":"test","rows":7,"wall_s":0.250000,"certified":true,"bad":null}|} line

let test_runlog_from_solve () =
  (* End to end: a solve through Resilience.Solve with the runlog enabled
     appends one schema-versioned record carrying features and outcome. *)
  let path = Filename.temp_file "runlog" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let q = Relalg.Cq_parser.parse "Q :- R(x, y), S(y)" in
  let db = Relalg.Database.create () in
  List.iter
    (fun (r, args) -> ignore (Relalg.Database.add db r args))
    [ ("R", [| 1; 2 |]); ("R", [| 2; 2 |]); ("S", [| 2 |]) ];
  Obs.Runlog.enable path;
  (match Resilience.Solve.resilience Resilience.Problem.Set q db with
  | Resilience.Solve.Solved _ -> ()
  | _ -> Alcotest.fail "expected a solved instance");
  Obs.Runlog.disable ();
  let ic = open_in path in
  let header = input_line ic in
  let record = input_line ic in
  close_in ic;
  Alcotest.(check bool) "header line" true (contains header "\"runlog\":\"resil-solve\"");
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "record has %S" needle) true
        (contains record needle))
    [
      "\"op\":\"resilience\""; "\"status\":\"optimal\""; "\"path\":"; "\"rows\":";
      "\"cols\":"; "\"nnz\":"; "\"certified\":"; "\"wall_s\":";
    ]

let () =
  let open Alcotest in
  run "obs"
    [
      ( "clock",
        [
          test_case "monotonic" `Quick test_clock_monotonic;
          test_case "cross-domain" `Quick test_clock_cross_domain;
        ] );
      ( "disabled",
        [
          test_case "drops everything" `Quick test_disabled_drops_everything;
          test_case "identical solver answers" `Quick test_disabled_same_answers;
        ] );
      ( "counters",
        [
          test_case "idempotent create" `Quick test_counter_idempotent_create;
          test_case "static key set" `Quick test_counter_snapshot_static;
          test_case "late registration appears in snapshots" `Quick test_counter_snapshot_live;
          test_case "atomic under 10k-task stress, 2..8 domains" `Quick
            test_counter_atomic_under_stress;
        ] );
      ( "histograms",
        [
          test_case "bounded relative error vs sorted oracle" `Quick test_histogram_bre_vs_oracle;
          test_case "empty and clamped inputs" `Quick test_histogram_empty_and_clamp;
          test_case "bit-identical shard merge, jobs 1/2/4" `Quick
            test_histogram_merge_bit_identical;
        ] );
      ( "metrics",
        [
          test_case "gated off while unarmed" `Quick test_metrics_gated_off;
          test_case "idempotent registration, kind mismatch" `Quick
            test_metrics_idempotent_and_kinds;
          test_case "prometheus and json exposition" `Quick test_metrics_exposition;
        ] );
      ( "recorder",
        [ test_case "ring wrap, arming, dump" `Quick test_recorder_ring ] );
      ( "runlog",
        [
          test_case "header and field rendering" `Quick test_runlog_records;
          test_case "one record per solve" `Quick test_runlog_from_solve;
        ] );
      ( "spans",
        [
          test_case "recorded on exception" `Quick test_span_records_on_exception;
          test_case "nesting under the pool, jobs 1/2/4/8" `Quick test_span_nesting_under_pool;
        ] );
      ( "export",
        [
          test_case "chrome trace document" `Quick test_chrome_export;
          test_case "flat stats json" `Quick test_stats_json;
        ] );
    ]
