(* Obs: the observability subsystem must be invisible when disabled (no
   recording, no behaviour change), exact when enabled (counter totals under
   multi-domain stress, well-nested spans per track), and schema-stable
   (static counter key set, fixed-format export). *)

let c_a = Obs.Counter.create "test.alpha"
let c_b = Obs.Counter.create "test.beta"
let c_max = Obs.Counter.create "test.peak"

(* Every test leaves the sink uninstalled so order doesn't matter. *)
let with_sink f =
  Obs.Sink.install ();
  Fun.protect ~finally:Obs.Sink.uninstall f

(* --- Clock ------------------------------------------------------------------ *)

let test_clock_monotonic () =
  let prev = ref (Obs.Clock.now ()) in
  for _ = 1 to 10_000 do
    let t = Obs.Clock.now () in
    Alcotest.(check bool) "now never decreases" true (t >= !prev);
    prev := t
  done;
  Alcotest.(check bool) "elapsed clamps at 0" true (Obs.Clock.elapsed (Obs.Clock.now () +. 60.) = 0.)

let test_clock_cross_domain () =
  (* The high-water mark is global: a timestamp taken on one domain bounds
     reads on another from below. *)
  let t0 = Obs.Clock.now () in
  let t1 = Domain.join (Domain.spawn (fun () -> Obs.Clock.now ())) in
  Alcotest.(check bool) "cross-domain monotone" true (t1 >= t0)

(* --- Disabled sink: zero observable effect ----------------------------------- *)

let test_disabled_drops_everything () =
  Obs.Sink.uninstall ();
  Alcotest.(check bool) "inactive" false (Obs.Sink.active ());
  let before = Obs.Counter.value c_a in
  Obs.Counter.incr c_a;
  Obs.Counter.add c_a 100;
  Obs.Counter.record_max c_a 1_000_000;
  Alcotest.(check int) "counter bumps dropped" before (Obs.Counter.value c_a);
  Alcotest.(check bool) "begin_ is nan" true (Float.is_nan (Obs.Trace.begin_ ()));
  Obs.Trace.end_ (Obs.Trace.begin_ ()) "test.noop";
  Obs.Trace.instant "test.noop";
  Alcotest.(check int) "with_span still runs the body" 42
    (Obs.Trace.with_span "test.noop" (fun () -> 42));
  Alcotest.(check (list string)) "nothing buffered" []
    (List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.drain ()))

let test_disabled_same_answers () =
  (* A traced run and an untraced run of the same solve return identical
     results — instrumentation must never leak into answers. *)
  let solve () =
    let q = Relalg.Cq_parser.parse "Q :- R(x, y), S(y)" in
    let db = Relalg.Database.create () in
    List.iter
      (fun (r, args) -> ignore (Relalg.Database.add db r args))
      [
        ("R", [| 1; 2 |]); ("R", [| 2; 2 |]); ("R", [| 3; 4 |]);
        ("S", [| 2 |]); ("S", [| 4 |]);
      ];
    let session = Resilience.Session.create Resilience.Problem.Set q db in
    Resilience.Session.ranking_par ~jobs:2 session
  in
  let plain = solve () in
  let traced = with_sink solve in
  ignore (Obs.Trace.drain ());
  Alcotest.(check bool) "ranked something" true (plain <> []);
  Alcotest.(check bool) "identical rankings" true (plain = traced)

(* --- Counters ----------------------------------------------------------------- *)

let test_counter_idempotent_create () =
  let again = Obs.Counter.create "test.alpha" in
  with_sink (fun () ->
      Obs.Counter.incr c_a;
      Alcotest.(check int) "same cell" (Obs.Counter.value c_a) (Obs.Counter.value again))

let test_counter_snapshot_static () =
  (* The key set is a property of which modules are linked, not of whether
     anything ran: install resets values but never removes keys. *)
  let keys () = List.map fst (Obs.Counter.snapshot ()) in
  let k0 = keys () in
  Alcotest.(check bool) "registered" true (List.mem "test.alpha" k0);
  Alcotest.(check bool) "sorted" true (List.sort compare k0 = k0);
  with_sink (fun () -> Obs.Counter.incr c_b);
  Alcotest.(check (list string)) "key set unchanged by a run" k0 (keys ())

let test_counter_atomic_under_stress () =
  (* 10k increments race from 2..8 domains; the total must be exact, and a
     concurrent record_max must converge to the true maximum. *)
  for jobs = 2 to 8 do
    with_sink (fun () ->
        let tasks = 10_000 in
        Lp.Pool.with_pool ~jobs (fun pool ->
            ignore
              (Lp.Pool.run ~chunk:7 pool ~tasks (fun i ->
                   Obs.Counter.incr c_a;
                   Obs.Counter.add c_b 3;
                   Obs.Counter.record_max c_max (i + 1))));
        Alcotest.(check int)
          (Printf.sprintf "incr total, jobs=%d" jobs)
          tasks (Obs.Counter.value c_a);
        Alcotest.(check int)
          (Printf.sprintf "add total, jobs=%d" jobs)
          (3 * tasks) (Obs.Counter.value c_b);
        Alcotest.(check int)
          (Printf.sprintf "max, jobs=%d" jobs)
          tasks (Obs.Counter.value c_max));
    ignore (Obs.Trace.drain ())
  done

(* --- Spans --------------------------------------------------------------------- *)

let test_span_records_on_exception () =
  with_sink (fun () ->
      (match Obs.Trace.with_span "test.raises" (fun () -> failwith "boom") with
      | () -> Alcotest.fail "exception swallowed"
      | exception Failure _ -> ());
      let names = List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.drain ()) in
      Alcotest.(check bool) "span recorded anyway" true (List.mem "test.raises" names))

let check_well_formed spans =
  List.iter
    (fun (s : Obs.Trace.span) ->
      Alcotest.(check bool) (s.Obs.Trace.name ^ " has t1 >= t0") true (s.Obs.Trace.t1 >= s.Obs.Trace.t0))
    spans;
  (* drain sorts by start time *)
  let starts = List.map (fun s -> s.Obs.Trace.t0) spans in
  Alcotest.(check bool) "sorted by t0" true (List.sort compare starts = starts)

let test_span_nesting_under_pool () =
  (* Each pool width: chunk spans nest inside the batch span on every track,
     and per-domain buffers survive the workers' death (with_pool joins
     them before we drain). *)
  List.iter
    (fun jobs ->
      with_sink (fun () ->
          Lp.Pool.with_pool ~jobs (fun pool ->
              ignore
                (Lp.Pool.run ~chunk:11 pool ~tasks:500 (fun i ->
                     Obs.Trace.with_span "test.task" (fun () -> i * 2))));
          let spans = Obs.Trace.drain () in
          check_well_formed spans;
          let named n = List.filter (fun s -> s.Obs.Trace.name = n) spans in
          let batch =
            match named "pool.batch" with
            | [ b ] -> b
            | bs -> Alcotest.failf "expected 1 pool.batch, got %d" (List.length bs)
          in
          let chunks = named "pool.chunk" in
          Alcotest.(check bool) "at least one chunk" true (chunks <> []);
          List.iter
            (fun (c : Obs.Trace.span) ->
              Alcotest.(check bool)
                (Printf.sprintf "chunk within batch (jobs=%d)" jobs)
                true
                (c.Obs.Trace.t0 >= batch.Obs.Trace.t0 && c.Obs.Trace.t1 <= batch.Obs.Trace.t1))
            chunks;
          Alcotest.(check int)
            (Printf.sprintf "every task spanned (jobs=%d)" jobs)
            500 (List.length (named "test.task"));
          (* chunk spans carry their task count *)
          let counted =
            List.fold_left
              (fun acc (c : Obs.Trace.span) ->
                match List.assoc_opt "tasks" c.Obs.Trace.args with
                | Some n -> acc + int_of_string n
                | None -> acc)
              0 chunks
          in
          Alcotest.(check int) "chunk args sum to the batch" 500 counted))
    [ 1; 2; 4; 8 ]

(* --- Export -------------------------------------------------------------------- *)

let test_chrome_export () =
  let spans =
    with_sink (fun () ->
        Obs.Trace.with_span "test.outer" (fun () ->
            Obs.Trace.with_span
              ~args:(fun () -> [ ("k", "v\"quoted\"") ])
              "test.inner"
              (fun () -> ()));
        Obs.Trace.drain ())
  in
  let path = Filename.temp_file "obs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Export.chrome_to_file path spans;
      let ic = open_in path in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      Alcotest.(check bool) "traceEvents doc" true
        (String.length body > 0 && String.sub body 0 15 = {|{"traceEvents":|});
      let has needle =
        let n = String.length needle and m = String.length body in
        let rec go i = i + n <= m && (String.sub body i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "complete events" true (has {|"ph":"X"|});
      Alcotest.(check bool) "both spans" true (has "test.outer" && has "test.inner");
      Alcotest.(check bool) "escaped args" true (has {|\"quoted\"|});
      Alcotest.(check bool) "thread metadata" true (has {|"thread_name"|}))

let test_stats_json () =
  let spans =
    with_sink (fun () ->
        Obs.Counter.incr c_a;
        Obs.Trace.with_span "test.outer" (fun () -> ());
        Obs.Trace.drain ())
  in
  let s = Obs.Export.stats_json spans in
  let has needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counters object" true (has {|"counters": {|});
  Alcotest.(check bool) "our counter at 1" true (has {|"test.alpha": 1|});
  Alcotest.(check bool) "span aggregate" true (has {|"test.outer": {"count": 1, "total_s":|});
  Alcotest.(check bool) "wall clock" true (has {|"wall_s":|});
  (* fixed-width floats only: %g would break digit-normalized goldens *)
  Alcotest.(check bool) "no scientific notation" true (not (has "e-") && not (has "e+"))

let () =
  let open Alcotest in
  run "obs"
    [
      ( "clock",
        [
          test_case "monotonic" `Quick test_clock_monotonic;
          test_case "cross-domain" `Quick test_clock_cross_domain;
        ] );
      ( "disabled",
        [
          test_case "drops everything" `Quick test_disabled_drops_everything;
          test_case "identical solver answers" `Quick test_disabled_same_answers;
        ] );
      ( "counters",
        [
          test_case "idempotent create" `Quick test_counter_idempotent_create;
          test_case "static key set" `Quick test_counter_snapshot_static;
          test_case "atomic under 10k-task stress, 2..8 domains" `Quick
            test_counter_atomic_under_stress;
        ] );
      ( "spans",
        [
          test_case "recorded on exception" `Quick test_span_records_on_exception;
          test_case "nesting under the pool, jobs 1/2/4/8" `Quick test_span_nesting_under_pool;
        ] );
      ( "export",
        [
          test_case "chrome trace document" `Quick test_chrome_export;
          test_case "flat stats json" `Quick test_stats_json;
        ] );
    ]
