(* Lp.Struct: the matrix-structure analyzer and its certificates.

   Three layers:
   - handcrafted matrices with known classification (network / bipartite /
     interval incidence are TU; the odd-cycle incidence is the canonical
     non-TU matrix), pinning which recognizer fires;
   - certificate semantics: verify accepts every emitted certificate,
     rejects targeted mutations, and structural certificates transfer
     across deltas;
   - soundness properties over random programs and the fuzz generator's
     LP profiles: whenever Integral is emitted, branch-and-bound confirms
     LP = ILP at the root. *)

module M = Lp.Model
module S = Lp.Struct
module FB = Lp.Solvers.Float_bb

let frozen_of rows ~nvars ~integer =
  let m = M.create () in
  let vars = Array.init nvars (fun _ -> M.add_var ~integer ~upper:1 ~obj:1 m) in
  List.iter (fun (expr, sense, rhs) ->
      M.add_constr m (List.map (fun (v, c) -> (vars.(v), c)) expr) sense rhs)
    rows;
  Lp.Frozen.of_model m

let witness_of t =
  match t.S.verdict with
  | S.Integral w -> w
  | S.Fractional _ -> Alcotest.fail "expected an integral verdict, got fractional"
  | S.Unknown -> Alcotest.fail "expected an integral verdict, got unknown"

let check_verifies fz t = Alcotest.(check bool) "verify accepts" true (S.verify fz t)

(* --- Known-TU matrices --------------------------------------------------------- *)

(* Digraph incidence (a network matrix): one +1 and one -1 per column.
   Heller-Tompkins holds with every row in one part. *)
let test_network_incidence () =
  let edges = [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 2) ] in
  let rows =
    List.init 4 (fun v ->
        ( List.concat (List.mapi
              (fun e (tail, head) ->
                if head = v then [ (e, 1) ] else if tail = v then [ (e, -1) ] else [])
              edges),
          M.Eq, 0 ))
  in
  let fz = frozen_of rows ~nvars:(List.length edges) ~integer:true in
  let t = S.analyze fz in
  (match witness_of t with
  | S.Row_partition _ -> ()
  | w -> Alcotest.fail ("expected row-partition, got " ^ S.witness_name w));
  Alcotest.(check bool) "structural" true (S.structural t);
  check_verifies fz t

(* Bipartite vertex-edge incidence (K_{2,3}): two +1s per column, one per
   side.  The Heller-Tompkins bipartition is the two vertex classes. *)
let test_bipartite_incidence () =
  let lefts = [ 0; 1 ] and rights = [ 2; 3; 4 ] in
  let edges = List.concat_map (fun u -> List.map (fun v -> (u, v)) rights) lefts in
  let row v =
    ( List.concat (List.mapi (fun e (u, w) -> if u = v || w = v then [ (e, 1) ] else []) edges),
      M.Geq, 1 )
  in
  let fz = frozen_of (List.map row (lefts @ rights)) ~nvars:(List.length edges) ~integer:true in
  let t = S.analyze fz in
  (match witness_of t with
  | S.Row_partition part ->
      (* Same-sign two-entry columns straddle the parts, so the partition is
         exactly the bipartition (up to global flip). *)
      List.iter (fun u -> Alcotest.(check bool) "left side uniform" part.(0) part.(u)) lefts;
      List.iter (fun v -> Alcotest.(check bool) "right side uniform" part.(2) part.(v)) rights;
      Alcotest.(check bool) "sides differ" true (part.(0) <> part.(2))
  | w -> Alcotest.fail ("expected row-partition, got " ^ S.witness_name w));
  check_verifies fz t

(* An interval matrix whose identity row order already works is recognised
   by the consecutive-ones pass once both Heller-Tompkins orientations are
   defeated (a 3-entry column and a 3-entry row). *)
let test_interval_identity () =
  let rows =
    [
      (* columns: A={0,1,2} B={1,2,3} C={0,1} D={2,3} — contiguous as given *)
      ([ (0, 1); (2, 1) ], M.Geq, 1);
      ([ (0, 1); (1, 1); (2, 1) ], M.Geq, 1);
      ([ (0, 1); (1, 1); (3, 1) ], M.Geq, 1);
      ([ (1, 1); (3, 1) ], M.Geq, 1);
    ]
  in
  let fz = frozen_of rows ~nvars:4 ~integer:true in
  let t = S.analyze fz in
  (match witness_of t with
  | S.Consecutive_rows _ -> ()
  | w -> Alcotest.fail ("expected consecutive-rows, got " ^ S.witness_name w));
  check_verifies fz t

(* A scrambled staircase: contiguous only under a non-identity row order,
   exercising the block-refinement search.  Supports (by row label):
   S1 = all, S2 = {1,3}, S3 = {0,2}, S4 = {0,1} — contiguous under
   [2;0;1;3]. *)
let test_interval_scrambled () =
  let cols = [ [ 0; 1; 2; 3 ]; [ 1; 3 ]; [ 0; 2 ]; [ 0; 1 ] ] in
  let rows =
    List.init 4 (fun r ->
        ( List.concat (List.mapi (fun c s -> if List.mem r s then [ (c, 1) ] else []) cols),
          M.Geq, 1 ))
  in
  let fz = frozen_of rows ~nvars:(List.length cols) ~integer:true in
  let t = S.analyze fz in
  (match witness_of t with
  | S.Consecutive_rows order -> (
      (* the emitted order really does make every support contiguous *)
      let pos = Array.make 4 0 in
      Array.iteri (fun p r -> pos.(r) <- p) order;
      List.iter
        (fun s ->
          let ps = List.sort compare (List.map (fun r -> pos.(r)) s) in
          Alcotest.(check int) "contiguous support" (List.length s)
            (List.nth ps (List.length ps - 1) - List.hd ps + 1))
        cols)
  | w -> Alcotest.fail ("expected consecutive-rows, got " ^ S.witness_name w));
  check_verifies fz t

(* A network matrix with mixed signs (tree-path incidence: columns are ±
   characteristic vectors of intervals): the signs defeat both
   consecutive-ones passes, a 3-entry column and a 4-entry row defeat both
   Heller-Tompkins orientations — only the exact Ghouila-Houri fallback is
   left, and it must succeed because the matrix is TU. *)
let gh_network_rows =
  [
    ([ (0, 1); (1, 1); (3, -1) ], M.Geq, 1);
    ([ (0, 1); (1, 1); (2, 1); (3, -1) ], M.Geq, 1);
    ([ (0, 1); (2, 1) ], M.Geq, 1);
  ]

let test_ghouila_houri_rescue () =
  let fz = frozen_of gh_network_rows ~nvars:4 ~integer:true in
  let t = S.analyze fz in
  (match witness_of t with
  | S.Ghouila_houri _ -> ()
  | w -> Alcotest.fail ("expected ghouila-houri, got " ^ S.witness_name w));
  check_verifies fz t

(* --- Known-non-TU and vertex certificates -------------------------------------- *)

(* C5 vertex-edge incidence: the canonical non-TU matrix (odd cycle,
   determinant ±2).  No structural witness exists; the root-LP probe finds
   the all-halves vertex of the covering program (LP 2.5 vs ILP 3). *)
let c5_frozen () =
  let edges = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let row v =
    ( List.concat (List.mapi (fun e (a, b) -> if a = v || b = v then [ (e, 1) ] else []) edges),
      M.Geq, 1 )
  in
  frozen_of (List.map row (List.init 5 Fun.id)) ~nvars:5 ~integer:true

let test_odd_cycle_fractional () =
  let fz = c5_frozen () in
  let plain = S.analyze fz in
  Alcotest.(check string) "no structural certificate" "unknown" (S.verdict_name plain);
  let t = S.analyze ~probe_root:true fz in
  (match t.S.verdict with
  | S.Fractional x ->
      Alcotest.(check (float 1e-6)) "all-halves vertex" 0.5 x.(0);
      Alcotest.(check (float 1e-6)) "root LP optimum" 2.5 (Option.get t.S.features.S.root_lp)
  | _ -> Alcotest.fail "expected a fractional certificate");
  check_verifies fz t;
  (* branch-and-bound agrees: root not integral, ILP strictly above LP *)
  let r = FB.solve_frozen fz in
  Alcotest.(check bool) "root not integral" false r.FB.root_integral;
  Alcotest.(check (float 1e-6)) "ILP optimum 3" 3.0 (Option.get r.FB.objective)

(* Non-unit coefficients defeat every structural recognizer (a lone ±2
   entry already has a 1x1 submatrix of determinant 2); the probe settles
   it per-objective. *)
let test_root_vertex_on_non_unit () =
  let integral = frozen_of [ ([ (0, 2) ], M.Geq, 2) ] ~nvars:1 ~integer:true in
  let t = S.analyze ~probe_root:true integral in
  (match witness_of t with
  | S.Root_vertex _ -> Alcotest.(check bool) "not structural" false (S.structural t)
  | w -> Alcotest.fail ("expected root-vertex, got " ^ S.witness_name w));
  check_verifies integral t;
  let fractional = frozen_of [ ([ (0, 2) ], M.Geq, 1) ] ~nvars:1 ~integer:true in
  let t = S.analyze ~probe_root:true fractional in
  Alcotest.(check string) "half is fractional" "fractional" (S.verdict_name t);
  check_verifies fractional t

(* --- Certificate semantics ------------------------------------------------------ *)

(* verify is adversarial: targeted corruptions of genuine witnesses are
   rejected. *)
let test_verify_rejects_mutations () =
  (* row partition: flip one endpoint of a constrained (two-entry) column *)
  let fz = c5_frozen () in
  ignore fz;
  let bip =
    frozen_of
      [ ([ (0, 1) ], M.Geq, 1); ([ (0, 1); (1, 1) ], M.Geq, 1); ([ (1, 1) ], M.Geq, 1) ]
      ~nvars:2 ~integer:true
  in
  (* column 0 spans rows 0,1; column 1 spans rows 1,2 — flipping row 1 breaks both *)
  let t = S.analyze bip in
  (match witness_of t with
  | S.Row_partition part ->
      let bad = Array.copy part in
      bad.(1) <- not bad.(1);
      Alcotest.(check bool) "flipped partition rejected" false
        (S.verify bip { t with S.verdict = S.Integral (S.Row_partition bad) })
  | w -> Alcotest.fail ("expected row-partition, got " ^ S.witness_name w));
  (* consecutive-rows: a row order splitting a support is rejected *)
  let iv =
    frozen_of
      [
        ([ (0, 1); (2, 1) ], M.Geq, 1);
        ([ (0, 1); (1, 1); (2, 1) ], M.Geq, 1);
        ([ (0, 1); (1, 1); (3, 1) ], M.Geq, 1);
        ([ (1, 1); (3, 1) ], M.Geq, 1);
      ]
      ~nvars:4 ~integer:true
  in
  let t = S.analyze iv in
  (match witness_of t with
  | S.Consecutive_rows order ->
      Alcotest.(check int) "full permutation" 4 (Array.length order);
      (* column A's support {0,1,2} is split by moving row 1 to the end *)
      let bad = Array.of_list (List.filter (fun r -> r <> 1) (Array.to_list order) @ [ 1 ]) in
      Alcotest.(check bool) "split support rejected" false
        (S.verify iv { t with S.verdict = S.Integral (S.Consecutive_rows bad) });
      (* a non-permutation is rejected outright *)
      let dup = Array.copy order in
      dup.(0) <- dup.(1);
      Alcotest.(check bool) "non-permutation rejected" false
        (S.verify iv { t with S.verdict = S.Integral (S.Consecutive_rows dup) })
  | w -> Alcotest.fail ("expected consecutive-rows, got " ^ S.witness_name w));
  (* ghouila-houri: a signing outside its row subset is rejected *)
  let gh = frozen_of gh_network_rows ~nvars:4 ~integer:true in
  let t = S.analyze gh in
  (match witness_of t with
  | S.Ghouila_houri signings ->
      let bad = Array.copy signings in
      bad.(0) <- 1 lsl 3;
      (* mask {row0} signed on row3 *)
      Alcotest.(check bool) "foreign signing rejected" false
        (S.verify gh { t with S.verdict = S.Integral (S.Ghouila_houri bad) })
  | w -> Alcotest.fail ("expected ghouila-houri, got " ^ S.witness_name w));
  (* vertex certificates: rounding a fractional vertex always invalidates it
     (it turns integral or infeasible), and a fractional coordinate
     invalidates a root-vertex certificate *)
  let c5 = c5_frozen () in
  let t = S.analyze ~probe_root:true c5 in
  (match t.S.verdict with
  | S.Fractional x ->
      let rounded = Array.map Float.round x in
      Alcotest.(check bool) "rounded vertex rejected" false
        (S.verify c5 { t with S.verdict = S.Fractional rounded })
  | _ -> Alcotest.fail "expected fractional");
  let unit = frozen_of [ ([ (0, 2) ], M.Geq, 2) ] ~nvars:1 ~integer:true in
  let t = S.analyze ~probe_root:true unit in
  match t.S.verdict with
  | S.Integral (S.Root_vertex x) ->
      let bad = Array.copy x in
      bad.(0) <- 0.5;
      Alcotest.(check bool) "fractional root-vertex rejected" false
        (S.verify unit { t with S.verdict = S.Integral (S.Root_vertex bad) })
  | _ -> Alcotest.fail "expected root-vertex"

(* Structural certificates survive delta bound fixes; root-vertex ones are
   delta-specific by construction (verify is told the delta). *)
let test_delta_transfer () =
  let lefts = [ 0; 1 ] and rights = [ 2; 3; 4 ] in
  let edges = List.concat_map (fun u -> List.map (fun v -> (u, v)) rights) lefts in
  let row v =
    ( List.concat (List.mapi (fun e (u, w) -> if u = v || w = v then [ (e, 1) ] else []) edges),
      M.Geq, 1 )
  in
  let fz = frozen_of (List.map row (lefts @ rights)) ~nvars:(List.length edges) ~integer:true in
  let base = S.analyze fz in
  Alcotest.(check bool) "base certified structurally" true (S.structural base);
  let delta = Lp.Frozen.Delta.(empty |> force_one 0 |> fix_zero 3) in
  (* the base certificate still verifies under the delta... *)
  Alcotest.(check bool) "base witness transfers" true (S.verify ~delta fz base);
  (* ...and re-analysis under the delta certifies on its own *)
  let under = S.analyze ~delta fz in
  Alcotest.(check bool) "delta view certified" true (S.structural under)

(* An all-fixed delta leaves an empty view: trivially integral (the residual
   polytope is a point or empty — a feasibility question, not a structure
   question). *)
let test_empty_view () =
  let fz =
    frozen_of [ ([ (0, 1); (1, 1) ], M.Geq, 1) ] ~nvars:2 ~integer:true
  in
  let delta = Lp.Frozen.Delta.(empty |> fix_zero 0 |> fix_zero 1) in
  let t = S.analyze ~delta fz in
  Alcotest.(check bool) "empty view is integral" true (S.is_integral t);
  Alcotest.(check bool) "and verifies" true (S.verify ~delta fz t);
  Alcotest.(check int) "no rows" 0 t.S.features.S.rows

(* --- Soundness properties -------------------------------------------------------- *)

(* On random covering programs: every emitted certificate verifies, and
   Integral really means the ILP optimum is the root-LP optimum (zero
   branching). *)
let prop_random_covering_sound =
  Harness.seeded_prop ~count:60 "struct: certificates sound on random covering programs"
    (fun rng ->
      let nvars = 2 + Random.State.int rng 6 in
      let nrows = 1 + Random.State.int rng 8 in
      let fz, _ = Harness.random_covering_frozen ~integer:true rng ~nvars ~nrows in
      let t = S.analyze ~probe_root:true fz in
      if not (S.verify fz t) then false
      else
        match t.S.verdict with
        | S.Integral _ ->
            let r = FB.solve_frozen fz in
            r.FB.root_integral && r.FB.nodes = 1
        | S.Fractional _ ->
            let r = FB.solve_frozen fz in
            not r.FB.root_integral
        | S.Unknown -> true)

(* The same, through the fuzz generator's LP profiles (the corpus shapes),
   deltas included: structural certificates verify under every delta of the
   case. *)
let prop_gen_lp_cases_sound =
  Harness.seeded_prop ~count:40 "struct: certificates sound on fuzz-generator LP cases"
    (fun rng ->
      let case = Check.Gen.of_seed (Random.State.int rng 1_000_000) in
      match case.Check.Gen.shape with
      | Check.Gen.Db _ -> true
      | Check.Gen.Lp { Check.Gen.frozen; deltas } ->
          let t = S.analyze ~probe_root:true frozen in
          S.verify frozen t
          && (not (S.structural t)
             || List.for_all (fun delta -> S.verify ~delta frozen t) deltas)
          &&
          match t.S.verdict with
          | S.Integral _ ->
              let r = FB.solve_frozen frozen in
              (match r.FB.status with
              | FB.Optimal -> r.FB.root_integral
              | _ -> true (* vertex certificates imply feasibility; limits don't apply here *))
          | S.Fractional _ | S.Unknown -> true)

let () =
  Alcotest.run "struct"
    [
      ( "known-tu",
        [
          Alcotest.test_case "network incidence: row partition" `Quick test_network_incidence;
          Alcotest.test_case "bipartite incidence: the two sides" `Quick test_bipartite_incidence;
          Alcotest.test_case "interval matrix, identity order" `Quick test_interval_identity;
          Alcotest.test_case "interval matrix, scrambled rows" `Quick test_interval_scrambled;
          Alcotest.test_case "ghouila-houri rescues greedy C1P" `Quick test_ghouila_houri_rescue;
        ] );
      ( "known-hard",
        [
          Alcotest.test_case "odd cycle: fractional vertex" `Quick test_odd_cycle_fractional;
          Alcotest.test_case "non-unit entries: root-vertex only" `Quick test_root_vertex_on_non_unit;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "verify rejects mutated witnesses" `Quick test_verify_rejects_mutations;
          Alcotest.test_case "structural witnesses transfer across deltas" `Quick test_delta_transfer;
          Alcotest.test_case "all-fixed delta: empty view integral" `Quick test_empty_view;
        ] );
      ( "properties",
        Harness.qtests [ prop_random_covering_sound; prop_gen_lp_cases_sound ] );
    ]
