(* Tests for the core contribution: the unified ILP/LP/MILP encodings, the
   solver facade, the dichotomy analysis of Table 1, and the approximation
   algorithms.  The paper's worked examples (Examples 1–4, 10–13) are all
   reproduced here. *)

open Relalg
open Resilience

let set = Problem.Set
let bag = Problem.Bag

let res_value = function
  | Solve.Solved a -> Some a.Solve.res_value
  | Solve.Query_false -> None
  | Solve.No_contingency -> Some (-1)
  | Solve.Budget_exhausted _ -> Some (-2)

let rsp_value = function
  | Solve.Solved a -> Some a.Solve.rsp_value
  | Solve.Query_false | Solve.No_contingency -> None
  | Solve.Budget_exhausted _ -> Some (-2)

(* --- The paper's worked examples ------------------------------------------- *)

let example1_db () =
  let db = Database.create () in
  List.iter (fun a -> ignore (Database.add db "R" a)) [ [| 1; 1 |]; [| 2; 3 |]; [| 3; 4 |] ];
  db

let test_example_1 () =
  (* ILP[RES*] on the self-join 2-chain: optimum 2 via {r11, r23}. *)
  let db = example1_db () in
  let q = Queries.q2_chain_sj () in
  match Solve.resilience set q db with
  | Solve.Solved a ->
    Alcotest.(check int) "RES = 2" 2 a.Solve.res_value;
    Alcotest.(check bool) "contingency valid" true
      (Solve.verify_contingency set q db a.Solve.contingency)
  | _ -> Alcotest.fail "expected solved"

let test_example_2 () =
  (* Bag semantics with r23 doubled: {r11, r34} now optimal, still 2. *)
  let db = Database.create () in
  let r11 = Database.add db "R" [| 1; 1 |] in
  let r23 = Database.add ~mult:2 db "R" [| 2; 3 |] in
  let r34 = Database.add db "R" [| 3; 4 |] in
  let q = Queries.q2_chain_sj () in
  match Solve.resilience bag q db with
  | Solve.Solved a ->
    Alcotest.(check int) "RES = 2" 2 a.Solve.res_value;
    Alcotest.(check (list int)) "avoids the doubled tuple" [ r11; r34 ]
      (List.sort compare a.Solve.contingency);
    ignore r23
  | _ -> Alcotest.fail "expected solved"

let example3_db () =
  let db = Database.create () in
  ignore (Database.add db "R" [| 1; 1 |]);
  let s11 = Database.add db "S" [| 1; 1 |] in
  ignore (Database.add db "S" [| 1; 2 |]);
  ignore (Database.add db "S" [| 1; 3 |]);
  (db, s11)

let test_example_3 () =
  (* RSP of s11 under the 2-chain: 2 (delete s12, s13; r11 is forbidden). *)
  let db, s11 = example3_db () in
  let q = Queries.q2_chain () in
  match Solve.responsibility set q db s11 with
  | Solve.Solved a ->
    Alcotest.(check int) "RSP = 2" 2 a.Solve.rsp_value;
    Alcotest.(check bool) "valid responsibility set" true
      (Solve.verify_responsibility_set q db s11 a.Solve.responsibility_set)
  | _ -> Alcotest.fail "expected solved"

let test_example_4 () =
  (* MILP[RSP*] equals the ILP here (Theorem 8.11: the 2-chain is linear). *)
  let db, s11 = example3_db () in
  let q = Queries.q2_chain () in
  Alcotest.(check (option int)) "MILP = 2" (Some 2)
    (rsp_value (Solve.responsibility ~relaxation:Encode.Milp set q db s11));
  (* LP[RSP*] is a lower bound but not exact in general. *)
  match Solve.responsibility_lp set q db s11 with
  | Some v -> Alcotest.(check bool) "LP lower bound" true (v <= 2.0 +. 1e-6)
  | None -> Alcotest.fail "LP should solve"

let test_footnote_5 () =
  (* Witnesses {{r11}, {r11, r12}}: r12 cannot be made counterfactual. *)
  let db = Database.create () in
  ignore (Database.add db "R" [| 1; 1 |]);
  let r12 = Database.add db "R" [| 1; 2 |] in
  let q = Cq_parser.parse "R(x,x)" in
  match Solve.responsibility set q db r12 with
  | Solve.No_contingency -> ()
  | _ -> Alcotest.fail "expected No_contingency"

let test_query_false () =
  let db = Database.create () in
  ignore (Database.add db "R" [| 1; 2 |]);
  let q = Queries.q2_chain () in
  match Solve.resilience set q db with
  | Solve.Query_false -> ()
  | _ -> Alcotest.fail "expected Query_false"

let test_exogenous_blocks () =
  let db = Database.create () in
  ignore (Database.add ~exo:true db "R" [| 1; 2 |]);
  ignore (Database.add ~exo:true db "S" [| 2; 3 |]);
  let q = Queries.q2_chain () in
  match Solve.resilience set q db with
  | Solve.No_contingency -> ()
  | _ -> Alcotest.fail "expected No_contingency"

let test_exogenous_atom () =
  (* A! atom: its tuples never enter contingency sets. *)
  let db = Database.create () in
  ignore (Database.add db "A" [| 1 |]);
  ignore (Database.add db "R" [| 1; 2 |]);
  let q = Cq_parser.parse "A!(x), R(x,y)" in
  match Solve.resilience set q db with
  | Solve.Solved a ->
    Alcotest.(check int) "RES 1" 1 a.Solve.res_value;
    let rel = (Database.tuple db (List.hd a.Solve.contingency)).Database.rel in
    Alcotest.(check string) "deleted from R" "R" rel
  | _ -> Alcotest.fail "expected solved"

(* --- Appendix B examples ------------------------------------------------------- *)

let test_movies () =
  let m = Datagen.Workloads.movies () in
  (match Solve.resilience set m.Datagen.Workloads.oscar_triangle m.Datagen.Workloads.movie_db with
  | Solve.Solved a -> Alcotest.(check int) "Oscar triangle RES" 1 a.Solve.res_value
  | _ -> Alcotest.fail "movies resilience");
  (* Example 11: the Oscar tuple is counterfactual (responsibility set empty). *)
  match
    Solve.responsibility set m.Datagen.Workloads.oscar_triangle m.Datagen.Workloads.movie_db
      m.Datagen.Workloads.mcdormand_oscar
  with
  | Solve.Solved a -> Alcotest.(check int) "Oscar RSP" 0 a.Solve.rsp_value
  | _ -> Alcotest.fail "movies responsibility"

let test_migration () =
  let mig = Datagen.Workloads.migration () in
  let db = mig.Datagen.Workloads.server_db in
  let q = mig.Datagen.Workloads.usage_query in
  (match Solve.resilience set q db with
  | Solve.Solved a ->
    Alcotest.(check int) "RES 2" 2 a.Solve.res_value;
    let rels =
      List.map (fun tid -> (Database.tuple db tid).Database.rel) a.Solve.contingency
      |> List.sort compare
    in
    (* Example 12: transfer Alice (Users) + migrate the DB requests. *)
    Alcotest.(check (list string)) "explanation" [ "Requests"; "Users" ] rels
  | _ -> Alcotest.fail "migration resilience");
  (* Example 13: u1 and r3 both have contingency sets of size 1. *)
  List.iter
    (fun tid ->
      match Solve.responsibility set q db tid with
      | Solve.Solved a -> Alcotest.(check int) "RSP 1" 1 a.Solve.rsp_value
      | _ -> Alcotest.fail "migration responsibility")
    [ mig.Datagen.Workloads.alice; mig.Datagen.Workloads.db_requests ]

(* --- Analysis: Table 1 --------------------------------------------------------- *)

let check_res_complexity name q expected_set expected_bag =
  Alcotest.(check bool)
    (name ^ " RES set")
    true
    (Analysis.res_complexity set q = expected_set);
  Alcotest.(check bool)
    (name ^ " RES bag")
    true
    (Analysis.res_complexity bag q = expected_bag)

let test_table1_res () =
  let p = Analysis.Ptime and n = Analysis.Npc in
  check_res_complexity "Q2chain" (Queries.q2_chain ()) p p;
  check_res_complexity "Q3chain" (Queries.q3_chain ()) p p;
  check_res_complexity "Q2star" (Queries.q2_star ()) p p;
  check_res_complexity "Q3star" (Queries.q3_star ()) n n;
  check_res_complexity "Qtriangle" (Queries.q_triangle ()) n n;
  check_res_complexity "QtriangleA" (Queries.q_triangle_a ()) p n;
  check_res_complexity "QtriangleAB" (Queries.q_triangle_ab ()) p n;
  check_res_complexity "Qconfluence" (Queries.q_confluence ()) p p;
  (* self-joins proven hard by certificates *)
  Alcotest.(check bool) "SJ chain hard" true
    (Analysis.res_complexity set (Queries.q2_chain_sj ()) = n);
  Alcotest.(check bool) "z6 hard" true (Analysis.res_complexity set (Queries.q_z6 ()) = n)

let test_table1_rsp () =
  let p = Analysis.Ptime and n = Analysis.Npc in
  let rsp sem q i = Analysis.rsp_complexity sem q ~t_atom:i in
  (* linear queries: everything PTIME *)
  let q2 = Queries.q2_chain () in
  Alcotest.(check bool) "chain R set" true (rsp set q2 0 = p);
  Alcotest.(check bool) "chain R bag" true (rsp bag q2 0 = p);
  (* Q triangle-unary: only tuples of the dominating A atom are PTIME (set) *)
  let qa = Queries.q_triangle_a () in
  Alcotest.(check bool) "A tuples easy" true (rsp set qa 0 = p);
  Alcotest.(check bool) "R tuples hard" true (rsp set qa 1 = n);
  Alcotest.(check bool) "S tuples hard" true (rsp set qa 2 = n);
  Alcotest.(check bool) "bag all hard" true (rsp bag qa 0 = n);
  (* Q triangle-binary: fully deactivated, all PTIME under set *)
  let qab = Queries.q_triangle_ab () in
  for i = 0 to 4 do
    Alcotest.(check bool) "AB set easy" true (rsp set qab i = p);
    Alcotest.(check bool) "AB bag hard" true (rsp bag qab i = n)
  done;
  (* active triad: everything hard *)
  let q3s = Queries.q3_star () in
  Alcotest.(check bool) "3star hard" true (rsp set q3s 0 = n)

let test_triad_structure () =
  let triads q = Analysis.triads q in
  Alcotest.(check int) "chain has no triad" 0 (List.length (triads (Queries.q3_chain ())));
  (match triads (Queries.q_triangle ()) with
  | [ { Analysis.status = Analysis.Active; _ } ] -> ()
  | _ -> Alcotest.fail "triangle: one active triad");
  (match triads (Queries.q_triangle_a ()) with
  | [ { Analysis.status = Analysis.Deactivated; _ } ] -> ()
  | _ -> Alcotest.fail "triangle-A: one deactivated triad");
  (match triads (Queries.q_triangle_ab ()) with
  | [ { Analysis.status = Analysis.Fully_deactivated; _ } ] -> ()
  | _ -> Alcotest.fail "triangle-AB: one fully deactivated triad");
  match triads (Queries.q3_star ()) with
  | [ { Analysis.status = Analysis.Active; _ } ] -> ()
  | _ -> Alcotest.fail "3-star: one active triad"

let test_domination () =
  let qa = Queries.q_triangle_a () in
  (* A(x) dominates R(x,y) and T(z,x) *)
  Alcotest.(check bool) "A dominates R" true (Analysis.dominates qa 0 1);
  Alcotest.(check bool) "A dominates T" true (Analysis.dominates qa 0 3);
  Alcotest.(check bool) "A does not dominate S" false (Analysis.dominates qa 0 2);
  Alcotest.(check bool) "R does not dominate A" false (Analysis.dominates qa 1 0);
  Alcotest.(check (list int)) "dominated atoms" [ 1; 3 ] (Analysis.dominated_atoms qa)

let test_full_domination () =
  let qab = Queries.q_triangle_ab () in
  (* T(z,x) is fully dominated by A(x) and B(z) *)
  Alcotest.(check bool) "T fully dominated" true (Analysis.fully_dominated qab 3);
  Alcotest.(check bool) "S not fully dominated" false (Analysis.fully_dominated qab 2);
  let qa = Queries.q_triangle_a () in
  Alcotest.(check bool) "R dominated but not fully" false (Analysis.fully_dominated qa 1)

let test_solitary () =
  (* In Q2star R(x), S(y), W(x,y): within W neither variable is solitary; in
     R the variable x reaches W directly, so it is not solitary either. *)
  let q = Queries.q2_star () in
  Alcotest.(check bool) "x in R not solitary" false (Analysis.solitary q "x" 0);
  Alcotest.(check bool) "x in W not solitary" false (Analysis.solitary q "x" 2);
  (* Solitary example: W(x,y), R(x) — y cannot leave W without crossing x. *)
  let q2 = Cq_parser.parse "W(x,y), R(x)" in
  Alcotest.(check bool) "y solitary in W" true (Analysis.solitary q2 "y" 0)

let test_linearity_agrees_with_triads () =
  (* The structural interval-order notion and triad-freeness coincide on all
     named queries. *)
  List.iter
    (fun (name, q) ->
      Alcotest.(check bool) name (Analysis.is_linear q) (Netflow.Linearize.is_linear q))
    (List.filter (fun (_, q) -> Cq.self_join_free q) (Queries.all_named ()))

(* --- Unified solvers: differential properties ------------------------------------ *)

let random_db = Harness.random_db

let prop_ilp_matches_bruteforce sem name qstr rels =
  QCheck.Test.make ~name ~count:120 (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let q = Cq_parser.parse qstr in
      let db = random_db rng rels 4 3 ~max_bag:2 in
      res_value (Solve.resilience sem q db) = Bruteforce.resilience sem q db
      |> fun ok ->
      ok
      && Option.map fst (Hitting_set.resilience sem q db) = Bruteforce.resilience sem q db)

let prop_lp_equals_ilp_easy =
  (* Theorems 8.6/8.7: LP[RES*] = RES* on PTIME queries, checked on random
     instances of the linear 2-chain (set+bag) and the linearizable
     triangle-unary (set). *)
  QCheck.Test.make ~name:"LP[RES*] = ILP[RES*] on easy queries" ~count:100
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let check sem qstr rels =
        let q = Cq_parser.parse qstr in
        let db = random_db rng rels 5 3 ~max_bag:2 in
        match (Solve.resilience sem q db, Solve.resilience_lp sem q db) with
        | Solve.Solved a, Some lp -> Float.abs (float_of_int a.Solve.res_value -. lp) < 1e-6
        | Solve.Query_false, None -> true
        | _ -> false
      in
      check set "R(x,y), S(y,z)" [ ("R", 2); ("S", 2) ]
      && check bag "R(x,y), S(y,z)" [ ("R", 2); ("S", 2) ]
      && check set "A(x), R(x,y), S(y,z), T(z,x)" [ ("A", 1); ("R", 2); ("S", 2); ("T", 2) ])

let prop_milp_equals_ilp_easy_rsp =
  (* Theorem 8.11 on the linear 2-chain. *)
  QCheck.Test.make ~name:"MILP[RSP*] = ILP[RSP*] on the 2-chain" ~count:80
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let q = Queries.q2_chain () in
      let db = random_db rng [ ("R", 2); ("S", 2) ] 4 3 ~max_bag:1 in
      List.for_all
        (fun info ->
          let t = info.Database.id in
          rsp_value (Solve.responsibility ~relaxation:Encode.Milp set q db t)
          = Bruteforce.responsibility set q db t)
        (Database.tuples db))

let prop_rsp_ilp_matches_bruteforce =
  QCheck.Test.make ~name:"ILP[RSP*] = brute force (triangle, set+bag)" ~count:60
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let q = Queries.q_triangle () in
      let db = random_db rng [ ("R", 2); ("S", 2); ("T", 2) ] 3 3 ~max_bag:2 in
      List.for_all
        (fun sem ->
          List.for_all
            (fun info ->
              let t = info.Database.id in
              rsp_value (Solve.responsibility sem q db t) = Bruteforce.responsibility sem q db t)
            (Database.tuples db))
        [ set; bag ])

let prop_set_duplication_invariant =
  (* Under set semantics, multiplicities are irrelevant (Lemma 4.1 corollary). *)
  QCheck.Test.make ~name:"set semantics ignores multiplicities" ~count:80
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let q = Queries.q2_chain () in
      let db = random_db rng [ ("R", 2); ("S", 2) ] 5 3 ~max_bag:1 in
      let db2 = Database.copy db in
      List.iter
        (fun info -> Database.set_mult db2 info.Database.id (1 + Random.State.int rng 3))
        (Database.tuples db2);
      res_value (Solve.resilience set q db) = res_value (Solve.resilience set q db2))

let prop_res_monotone =
  (* Removing a tuple never increases resilience. *)
  QCheck.Test.make ~name:"resilience is monotone under deletion" ~count:80
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let q = Queries.q_triangle () in
      let db = random_db rng [ ("R", 2); ("S", 2); ("T", 2) ] 4 3 ~max_bag:1 in
      match Bruteforce.resilience set q db with
      | None -> true
      | Some v -> (
        let tuples = Database.tuples db in
        let victim = List.nth tuples (Random.State.int rng (List.length tuples)) in
        let db' = Database.restrict db (fun info -> info.Database.id <> victim.Database.id) in
        match Bruteforce.resilience set q db' with Some v' -> v' <= v | None -> true))

(* --- Approximations ---------------------------------------------------------------- *)

let prop_lp_rounding_m_factor =
  (* Theorem 9.1: valid contingency, within m * OPT. *)
  QCheck.Test.make ~name:"LP rounding: valid and within m*OPT" ~count:80
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let q = Queries.q_triangle () in
      let m = Array.length q.Cq.atoms in
      let db = random_db rng [ ("R", 2); ("S", 2); ("T", 2) ] 4 3 ~max_bag:2 in
      List.for_all
        (fun sem ->
          match Bruteforce.resilience sem q db with
          | None -> true
          | Some exact -> (
            match Approx.lp_rounding_res sem q db with
            | Some { Approx.value; tuples } ->
              value >= exact && value <= m * exact
              && Solve.verify_contingency sem q db tuples
            | None -> false))
        [ set; bag ])

let prop_lp_rounding_rsp =
  QCheck.Test.make ~name:"LP rounding for RSP: valid upper bound" ~count:60
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let q = Queries.q2_chain () in
      let db = random_db rng [ ("R", 2); ("S", 2) ] 4 3 ~max_bag:1 in
      List.for_all
        (fun info ->
          let t = info.Database.id in
          match Bruteforce.responsibility set q db t with
          | None -> true
          | Some exact -> (
            match Approx.lp_rounding_rsp set q db t with
            | Some { Approx.value; tuples } ->
              value >= exact && Solve.verify_responsibility_set q db t tuples
            | None -> false))
        (Database.tuples db))

let prop_flow_approx_rsp_upper_bound =
  QCheck.Test.make ~name:"Flow-CT/CW RSP upper bounds on the triangle" ~count:40
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let q = Queries.q_triangle () in
      let db = random_db rng [ ("R", 2); ("S", 2); ("T", 2) ] 3 3 ~max_bag:1 in
      List.for_all
        (fun info ->
          let t = info.Database.id in
          match Bruteforce.responsibility set q db t with
          | None -> true
          | Some exact ->
            let ok = function
              | Some { Approx.value; _ } -> value >= exact
              | None -> true (* flow approximations may fail to preserve t *)
            in
            ok (Approx.flow_ct_rsp set q db t) && ok (Approx.flow_cw_rsp set q db t))
        (Database.tuples db))

(* --- LP integrality observations (Result 2 / Setting 5) ---------------------------- *)

let test_root_integral_on_easy () =
  let rng = Random.State.make [| 11 |] in
  let q = Queries.q2_chain () in
  let db = random_db rng [ ("R", 2); ("S", 2) ] 20 6 ~max_bag:1 in
  match Solve.resilience set q db with
  | Solve.Solved a ->
    Alcotest.(check bool) "root integral" true a.Solve.res_stats.Solve.root_integral;
    (* the integral root is now accepted as a certificate: the solve never
       enters branch-and-bound at all *)
    Alcotest.(check bool) "certified" true a.Solve.res_stats.Solve.certified;
    Alcotest.(check int) "no branching" 0 a.Solve.res_stats.Solve.nodes
  | _ -> Alcotest.fail "expected solved"

let test_fractional_on_composed_hard_instance () =
  (* The vertex-cover composition of the SJ-chain certificate over an odd
     cycle has LP < ILP (Setting 5's adversarial instance). *)
  let q = Queries.q2_chain_sj () in
  match Ijp.Search.find q with
  | None -> Alcotest.fail "certificate should exist"
  | Some (jp, _) ->
    let edges = Ijp.Compose.odd_cycle 1 in
    let db = Ijp.Compose.vertex_cover_instance jp ~edges in
    let lp = Option.get (Solve.resilience_lp set q db) in
    (match Solve.resilience set q db with
    | Solve.Solved a ->
      Alcotest.(check int) "RES = VC + m(c-1)" (Ijp.Compose.expected_resilience jp ~edges ~vertex_cover:2)
        a.Solve.res_value;
      Alcotest.(check bool) "LP strictly below ILP" true
        (lp < float_of_int a.Solve.res_value -. 0.25)
    | _ -> Alcotest.fail "expected solved")

(* Program shapes, straight from Sections 4 and 5. *)

let test_encode_res_shape () =
  (* Example 1's program: 3 variables, 2 constraints (witness (1,1,1) uses a
     single tuple). *)
  let db = example1_db () in
  match Encode.res Encode.Ilp set (Queries.q2_chain_sj ()) db with
  | Encode.Encoded enc ->
    Alcotest.(check int) "3 tuple variables" 3 (Lp.Model.num_vars enc.Encode.model);
    Alcotest.(check int) "2 covering rows" 2 (Lp.Model.num_constrs enc.Encode.model);
    Alcotest.(check int) "no witness vars" 0 (List.length enc.Encode.witness_vars);
    (* all weights 1 under set semantics *)
    List.iter
      (fun (v, _) -> Alcotest.(check int) "unit weight" 1 (Lp.Model.objective enc.Encode.model v))
      enc.Encode.tuple_of_var
  | _ -> Alcotest.fail "encode failed"

let test_encode_res_bag_objective () =
  (* Example 2: only the objective changes under bags. *)
  let db = Database.create () in
  ignore (Database.add db "R" [| 1; 1 |]);
  let r23 = Database.add ~mult:2 db "R" [| 2; 3 |] in
  ignore (Database.add db "R" [| 3; 4 |]);
  match
    ( Encode.res Encode.Ilp set (Queries.q2_chain_sj ()) db,
      Encode.res Encode.Ilp bag (Queries.q2_chain_sj ()) db )
  with
  | Encode.Encoded s_enc, Encode.Encoded b_enc ->
    Alcotest.(check int) "same rows" (Lp.Model.num_constrs s_enc.Encode.model)
      (Lp.Model.num_constrs b_enc.Encode.model);
    let weight enc tid =
      let v = Hashtbl.find enc.Encode.var_of_tuple tid in
      Lp.Model.objective enc.Encode.model v
    in
    Alcotest.(check int) "set weight" 1 (weight s_enc r23);
    Alcotest.(check int) "bag weight = multiplicity" 2 (weight b_enc r23)
  | _ -> Alcotest.fail "encode failed"

let test_encode_rsp_shape () =
  (* Example 3's program: vars X[r11], X[s12], X[s13] + one witness
     indicator; 2 covering + 1 tracking + 1 counterfactual constraints. *)
  let db, s11 = example3_db () in
  match Encode.rsp Encode.Ilp set (Queries.q2_chain ()) db s11 with
  | Encode.Encoded enc ->
    Alcotest.(check int) "3 tuple vars + 1 witness var" 4 (Lp.Model.num_vars enc.Encode.model);
    Alcotest.(check int) "one witness indicator" 1 (List.length enc.Encode.witness_vars);
    Alcotest.(check int) "4 constraints" 4 (Lp.Model.num_constrs enc.Encode.model);
    (* the responsibility tuple itself gets no variable *)
    Alcotest.(check bool) "t untracked" false (Hashtbl.mem enc.Encode.var_of_tuple s11)
  | _ -> Alcotest.fail "encode failed"

let test_encode_relaxations () =
  let db, s11 = example3_db () in
  let integer_count relax =
    match Encode.rsp relax set (Queries.q2_chain ()) db s11 with
    | Encode.Encoded enc -> List.length (Lp.Model.integer_vars enc.Encode.model)
    | _ -> -1
  in
  Alcotest.(check int) "ILP: all 4 integral" 4 (integer_count Encode.Ilp);
  Alcotest.(check int) "MILP: only the witness indicator" 1 (integer_count Encode.Milp);
  Alcotest.(check int) "LP: none" 0 (integer_count Encode.Lp)

let test_responsibility_ranking () =
  let m = Datagen.Workloads.movies () in
  let ranked =
    Solve.responsibility_ranking set m.Datagen.Workloads.oscar_triangle
      m.Datagen.Workloads.movie_db
  in
  (* two counterfactual causes (k=0) lead; six partial causes (k=2) follow *)
  Alcotest.(check int) "eight causes" 8 (List.length ranked);
  (match ranked with
  | (_, k0, rho0) :: _ ->
    Alcotest.(check int) "top is counterfactual" 0 k0;
    Alcotest.(check (float 1e-9)) "responsibility 1" 1.0 rho0
  | [] -> Alcotest.fail "empty ranking");
  let sorted = List.map (fun (_, k, _) -> k) ranked in
  Alcotest.(check (list int)) "ascending contingency sizes" (List.sort compare sorted) sorted

let prop_res_to_rsp_reduction =
  (* Theorem 8.15: adding one fresh disjoint witness w_r and asking for the
     responsibility of one of its tuples yields exactly RES of the original
     instance, under both semantics. *)
  QCheck.Test.make ~name:"Theorem 8.15: RSP(D + fresh witness, t) = RES(D)" ~count:60
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let q = Queries.q2_chain () in
      let db = random_db rng [ ("R", 2); ("S", 2) ] 4 3 ~max_bag:2 in
      List.for_all
        (fun sem ->
          match Bruteforce.resilience sem q db with
          | None -> true
          | Some res -> (
            let db' = Database.copy db in
            let t = Database.add db' "R" [| 90; 91 |] in
            ignore (Database.add db' "S" [| 91; 92 |]);
            match Solve.responsibility sem q db' t with
            | Solve.Solved a -> a.Solve.rsp_value = res
            | _ -> false))
        [ set; bag ])

let prop_lp_equals_ilp_more_easy_queries =
  (* Theorems 8.6/8.7 on the remaining PTIME queries of Table 1. *)
  QCheck.Test.make ~name:"LP[RES*] = ILP[RES*] on 3-chain / 2-star / QtriangleAB" ~count:60
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let check sem qstr rels =
        let q = Cq_parser.parse qstr in
        let db = random_db rng rels 4 3 ~max_bag:2 in
        match (Solve.resilience sem q db, Solve.resilience_lp sem q db) with
        | Solve.Solved a, Some lp -> Float.abs (float_of_int a.Solve.res_value -. lp) < 1e-6
        | Solve.Query_false, None -> true
        | _ -> false
      in
      check set "R(x,y), S(y,z), T(z,u)" [ ("R", 2); ("S", 2); ("T", 2) ]
      && check bag "R(x,y), S(y,z), T(z,u)" [ ("R", 2); ("S", 2); ("T", 2) ]
      && check set "R(x), S(y), W(x,y)" [ ("R", 1); ("S", 1); ("W", 2) ]
      && check bag "R(x), S(y), W(x,y)" [ ("R", 1); ("S", 1); ("W", 2) ]
      && check set "A(x), R(x,y), S(y,z), T(z,x), B(z)"
           [ ("A", 1); ("R", 2); ("S", 2); ("T", 2); ("B", 1) ])

let test_lp_format_export () =
  let db = example1_db () in
  match Encode.res Encode.Ilp set (Queries.q2_chain_sj ()) db with
  | Encode.Encoded enc ->
    let text = Lp.Model.to_lp_format enc.Encode.model in
    let contains needle =
      let nl = String.length needle and hl = String.length text in
      let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
      go 0
    in
    List.iter
      (fun part -> Alcotest.(check bool) part true (contains part))
      [ "Minimize"; "Subject To"; "Bounds"; "Generals"; "End"; ">= 1" ]
  | _ -> Alcotest.fail "encode failed"

(* --- Deletion propagation ------------------------------------------------------ *)

let dp_view () =
  (* V(y) :- R(x,y), S(y,z) over a small instance with overlap *)
  let db = Database.create () in
  ignore (Database.add db "R" [| 1; 2 |]);
  ignore (Database.add db "R" [| 1; 3 |]);
  ignore (Database.add db "S" [| 2; 5 |]);
  ignore (Database.add db "S" [| 2; 6 |]);
  ignore (Database.add db "S" [| 3; 5 |]);
  (Cq_parser.parse "R(x,y), S(y,z)", db)

let test_dp_output_rows () =
  let q, db = dp_view () in
  let rows =
    Deletion_propagation.output_rows q ~head:[ "y" ] db |> List.map (fun r -> r.(0))
  in
  Alcotest.(check (list int)) "view rows" [ 2; 3 ] (List.sort compare rows);
  Alcotest.check_raises "unknown head var"
    (Invalid_argument "Deletion_propagation: head variable w not in query") (fun () ->
      ignore (Deletion_propagation.output_rows q ~head:[ "w" ] db))

let test_dp_specialize () =
  let q, db = dp_view () in
  let qb = Deletion_propagation.specialize q ~head:[ "y" ] ~output:[| 2 |] in
  (* the specialisation is Boolean and true exactly because row 2 exists *)
  Alcotest.(check bool) "true at present row" true (Eval.holds qb db);
  let qb9 = Deletion_propagation.specialize q ~head:[ "y" ] ~output:[| 9 |] in
  Alcotest.(check bool) "false at absent row" false (Eval.holds qb9 db)

let test_dp_source_side_effects () =
  let q, db = dp_view () in
  match Deletion_propagation.source_side_effects set q ~head:[ "y" ] db ~output:[| 2 |] with
  | Solve.Solved a ->
    Alcotest.(check int) "one deletion suffices" 1
      (List.length a.Deletion_propagation.deleted_inputs);
    (* the target row is really gone *)
    let db' =
      Database.restrict db (fun info ->
          not (List.mem info.Database.id a.Deletion_propagation.deleted_inputs))
    in
    let rows = Deletion_propagation.output_rows q ~head:[ "y" ] db' in
    Alcotest.(check bool) "row 2 removed" false (List.exists (fun r -> r.(0) = 2) rows)
  | _ -> Alcotest.fail "expected solved"

(* Oracle: the minimum number of *other* view rows lost over every input
   deletion that removes the target row. *)
let dp_view_oracle q head db output =
  let tuples = List.map (fun info -> info.Database.id) (Database.tuples db) in
  let n = List.length tuples in
  let arr = Array.of_list tuples in
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let gamma = List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list arr) in
    let db' = Database.restrict db (fun info -> not (List.mem info.Database.id gamma)) in
    let rows = Deletion_propagation.output_rows q ~head db' in
    if not (List.exists (fun r -> r = output) rows) then begin
      let before = Deletion_propagation.output_rows q ~head db in
      let lost =
        List.length (List.filter (fun r -> r <> output && not (List.mem r rows)) before)
      in
      match !best with Some b when b <= lost -> () | _ -> best := Some lost
    end
  done;
  !best

let prop_dp_view_side_effects_optimal =
  QCheck.Test.make ~name:"view-side-effect ILP matches exhaustive oracle" ~count:60
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let q = Queries.q2_chain () in
      let db = random_db rng [ ("R", 2); ("S", 2) ] 4 3 ~max_bag:1 in
      let rows = Deletion_propagation.output_rows q ~head:[ "y" ] db in
      match rows with
      | [] -> true
      | output :: _ -> (
        match Deletion_propagation.view_side_effects set q ~head:[ "y" ] db ~output with
        | Solve.Solved a ->
          dp_view_oracle q [ "y" ] db output
          = Some (List.length a.Deletion_propagation.lost_outputs)
        | _ -> false))

let prop_dp_source_matches_specialized_resilience =
  QCheck.Test.make ~name:"source-side effects = resilience of the specialisation" ~count:60
    (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let q = Queries.q2_chain () in
      let db = random_db rng [ ("R", 2); ("S", 2) ] 4 3 ~max_bag:2 in
      match Deletion_propagation.output_rows q ~head:[ "y" ] db with
      | [] -> true
      | output :: _ -> (
        let qb = Deletion_propagation.specialize q ~head:[ "y" ] ~output in
        match
          ( Deletion_propagation.source_side_effects bag q ~head:[ "y" ] db ~output,
            Bruteforce.resilience bag qb db )
        with
        | Solve.Solved a, Some expect ->
          let weight =
            List.fold_left
              (fun acc tid -> acc + (Database.tuple db tid).Database.mult)
              0 a.Deletion_propagation.deleted_inputs
          in
          weight = expect
        | Solve.Query_false, None -> true
        | _ -> false))

(* --- Instance-based tractability (Appendix J) -------------------------------- *)

let test_read_once_detection () =
  (* a hierarchical instance: witnesses pairwise disjoint except through a
     shared root — no P4 *)
  let db = Database.create () in
  ignore (Database.add db "R" [| 1; 1 |]);
  ignore (Database.add db "S" [| 1; 1 |]);
  ignore (Database.add db "S" [| 1; 2 |]);
  let q = Queries.q2_chain () in
  Alcotest.(check bool) "star around r11 is read-once" true
    (Instance.read_once (Eval.witnesses q db));
  (* a genuine P4: w1={r1,s1} w2={r1,s2}... need shares both directions:
     r(1,_) joins s(_,1),s(_,2); r(2,_) joins s(_,2) only *)
  let db2 = Database.create () in
  ignore (Database.add db2 "R" [| 1; 1 |]);
  ignore (Database.add db2 "R" [| 2; 2 |]);
  ignore (Database.add db2 "S" [| 1; 5 |]);
  ignore (Database.add db2 "S" [| 2; 5 |]);
  (* cross-join via shared z? use Q2chain R(x,y),S(y,z): witnesses
     (1,1,5) via r11,s15; (2,2,5) via r22,s25 — disjoint, still read-once *)
  Alcotest.(check bool) "disjoint witnesses read-once" true
    (Instance.read_once (Eval.witnesses q db2));
  (* chain sharing: w1={r11,s13} w2={r21,s13}? need P4:
     r11-s1a, r11-s1b, r21-s1b ... *)
  let db3 = Database.create () in
  ignore (Database.add db3 "R" [| 1; 1 |]);
  ignore (Database.add db3 "R" [| 2; 1 |]);
  ignore (Database.add db3 "S" [| 1; 7 |]);
  ignore (Database.add db3 "S" [| 1; 8 |]);
  (* witnesses: {r11,s17} {r11,s18} {r21,s17} {r21,s18}: w={r11,s17} and
     {r11,s18} share r11 (not s17); {r11,s17} and {r21,s17} share s17 — P4 *)
  Alcotest.(check bool) "grid instance is not read-once" false
    (Instance.read_once (Eval.witnesses q db3))

let prop_read_once_implies_integral_lp =
  QCheck.Test.make ~name:"read-once instance => LP integral (even on the hard triangle)"
    ~count:150 (QCheck.int_range 0 1_000_000) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let q = Queries.q_triangle () in
      let db = random_db rng [ ("R", 2); ("S", 2); ("T", 2) ] 4 3 ~max_bag:1 in
      let witnesses = Eval.witnesses q db in
      (not (Instance.read_once witnesses))
      || witnesses = []
      ||
      match (Solve.resilience set q db, Solve.resilience_lp set q db) with
      | Solve.Solved a, Some lp -> Float.abs (float_of_int a.Solve.res_value -. lp) < 1e-6
      | _ -> false)

let test_fd_detection () =
  let rng = Random.State.make [| 9 |] in
  let db = Datagen.Tpch.generate rng ~scale:0.05 in
  let fds = Instance.functional_dependencies db in
  (* Orders: orderkey (col 1) determines custkey (col 0) *)
  Alcotest.(check bool) "orderkey -> custkey" true
    (List.exists
       (fun fd -> fd.Instance.rel = "Orders" && fd.Instance.determinant = 1 && fd.Instance.determined = 0)
       fds);
  Alcotest.(check bool) "custkey does not determine orderkey" false
    (List.exists
       (fun fd -> fd.Instance.rel = "Orders" && fd.Instance.determinant = 0 && fd.Instance.determined = 1)
       fds);
  let ks = Instance.keys db in
  Alcotest.(check bool) "orderkey is a key of Orders" true (List.mem ("Orders", 1) ks);
  Alcotest.(check bool) "psid is a key of Partsupp" true (List.mem ("Partsupp", 0) ks)

let test_induced_rewrite () =
  let rng = Random.State.make [| 12 |] in
  let db = Datagen.Tpch.generate rng ~scale:0.05 in
  let q = Queries.q_tpch_5cycle () in
  let fds = Instance.var_fds q db in
  Alcotest.(check bool) "orderkey FD lifted" true (List.mem ("ok", "ck") fds);
  let q' = Instance.induced_rewrite q fds in
  (* Theorem J.2: the rewritten query explains the PTIME behaviour of the
     NPC 5-cycle on FK-structured data *)
  Alcotest.(check bool) "original is NPC" true (Analysis.res_complexity set q = Analysis.Npc);
  Alcotest.(check bool) "rewrite is PTIME" true (Analysis.res_complexity set q' = Analysis.Ptime);
  (* no dependencies => identity *)
  Alcotest.(check bool) "no FDs no change" true
    (Cq.equal (Instance.induced_rewrite q []) (Cq.make ~name:(q.Cq.name ^ "_fd") (Array.to_list q.Cq.atoms)))

let test_explain_mentions_structure () =
  let rng = Random.State.make [| 10 |] in
  let db = Datagen.Tpch.generate rng ~scale:0.03 in
  let q = Queries.q_tpch_5cycle () in
  let text = Instance.explain set q db in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions FDs" true (contains "functional dependencies" text);
  Alcotest.(check bool) "mentions the dichotomy verdict" true (contains "NP-complete" text)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "resilience"
    [
      ( "paper_examples",
        [
          Alcotest.test_case "Example 1 (RES ILP)" `Quick test_example_1;
          Alcotest.test_case "Example 2 (bag objective)" `Quick test_example_2;
          Alcotest.test_case "Example 3 (RSP ILP)" `Quick test_example_3;
          Alcotest.test_case "Example 4 (MILP exact, LP bound)" `Quick test_example_4;
          Alcotest.test_case "footnote 5 (non-counterfactual)" `Quick test_footnote_5;
          Alcotest.test_case "query false" `Quick test_query_false;
          Alcotest.test_case "exogenous blocks" `Quick test_exogenous_blocks;
          Alcotest.test_case "exogenous atom" `Quick test_exogenous_atom;
          Alcotest.test_case "movies (Examples 10/11)" `Quick test_movies;
          Alcotest.test_case "migration (Examples 12/13)" `Quick test_migration;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "Table 1: RES dichotomies" `Quick test_table1_res;
          Alcotest.test_case "Table 1: RSP dichotomies" `Quick test_table1_rsp;
          Alcotest.test_case "triad classification" `Quick test_triad_structure;
          Alcotest.test_case "domination" `Quick test_domination;
          Alcotest.test_case "full domination" `Quick test_full_domination;
          Alcotest.test_case "solitary variables" `Quick test_solitary;
          Alcotest.test_case "linearity = triad-freeness" `Quick test_linearity_agrees_with_triads;
        ] );
      ( "solvers",
        [
          q
            (prop_ilp_matches_bruteforce set "ILP = brute force (triangle, set)"
               "R(x,y), S(y,z), T(z,x)"
               [ ("R", 2); ("S", 2); ("T", 2) ]);
          q
            (prop_ilp_matches_bruteforce bag "ILP = brute force (triangle, bag)"
               "R(x,y), S(y,z), T(z,x)"
               [ ("R", 2); ("S", 2); ("T", 2) ]);
          q
            (prop_ilp_matches_bruteforce set "ILP = brute force (SJ chain, set)" "R(x,y), R(y,z)"
               [ ("R", 2) ]);
          q
            (prop_ilp_matches_bruteforce bag "ILP = brute force (z6, bag)"
               "A(x), R(x,y), R(y,y), R(y,z), C(z)"
               [ ("A", 1); ("R", 2); ("C", 1) ]);
          q prop_lp_equals_ilp_easy;
          q prop_milp_equals_ilp_easy_rsp;
          q prop_rsp_ilp_matches_bruteforce;
          q prop_set_duplication_invariant;
          q prop_res_monotone;
        ] );
      ( "approximations",
        [
          q prop_lp_rounding_m_factor;
          q prop_lp_rounding_rsp;
          q prop_flow_approx_rsp_upper_bound;
        ] );
      ( "integrality",
        [
          Alcotest.test_case "easy query: integral root" `Quick test_root_integral_on_easy;
          Alcotest.test_case "hard composed instance: fractional LP" `Quick
            test_fractional_on_composed_hard_instance;
        ] );
      ( "encoding_shapes",
        [
          Alcotest.test_case "RES program shape (Example 1)" `Quick test_encode_res_shape;
          Alcotest.test_case "bag objective (Example 2)" `Quick test_encode_res_bag_objective;
          Alcotest.test_case "RSP program shape (Example 3)" `Quick test_encode_rsp_shape;
          Alcotest.test_case "relaxation integrality flags" `Quick test_encode_relaxations;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "responsibility ranking" `Quick test_responsibility_ranking;
          q prop_res_to_rsp_reduction;
          q prop_lp_equals_ilp_more_easy_queries;
          Alcotest.test_case "LP file format export" `Quick test_lp_format_export;
        ] );
      ( "deletion_propagation",
        [
          Alcotest.test_case "output rows" `Quick test_dp_output_rows;
          Alcotest.test_case "specialisation" `Quick test_dp_specialize;
          Alcotest.test_case "source side effects" `Quick test_dp_source_side_effects;
          q prop_dp_view_side_effects_optimal;
          q prop_dp_source_matches_specialized_resilience;
        ] );
      ( "instance_tractability",
        [
          Alcotest.test_case "read-once detection" `Quick test_read_once_detection;
          q prop_read_once_implies_integral_lp;
          Alcotest.test_case "FD detection on TPC-H data" `Quick test_fd_detection;
          Alcotest.test_case "induced rewrite (Theorem J.2)" `Quick test_induced_rewrite;
          Alcotest.test_case "explain" `Quick test_explain_mentions_structure;
        ] );
    ]
