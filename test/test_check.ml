(* The fuzzing library itself: seed-deterministic generation, the
   delta-debugging shrinker, the corpus file format, and replay of the
   committed counterexample corpus. *)

open Check

(* Two cases are the same iff they print the same — the corpus format
   covers every observable field of a case. *)
let fingerprint case = Corpus.to_string { Corpus.oracle = "fp"; message = "fp"; case }

(* --- Generator determinism --------------------------------------------------- *)

let test_stream_deterministic () =
  let a = Gen.stream ~seed:42 25 in
  let b = Gen.stream ~seed:42 25 in
  List.iter2
    (fun x y ->
      Alcotest.(check int) "case seed" x.Gen.seed y.Gen.seed;
      Alcotest.(check string) "profile" x.Gen.profile y.Gen.profile;
      Alcotest.(check string) "case body" (fingerprint x) (fingerprint y))
    a b;
  let c = Gen.stream ~seed:43 25 in
  Alcotest.(check bool) "different run seed, different stream" true
    (List.map (fun x -> x.Gen.seed) a <> List.map (fun x -> x.Gen.seed) c)

let test_of_seed_reproducible () =
  (* A case regenerates from its own seed alone, independent of the stream
     it was drawn from. *)
  List.iter
    (fun case ->
      let again = Gen.of_seed case.Gen.seed in
      Alcotest.(check string) "profile" case.Gen.profile again.Gen.profile;
      Alcotest.(check string) "body" (fingerprint case) (fingerprint again))
    (Gen.stream ~seed:7 25)

let test_profiles_all_reachable () =
  let seen = List.map (fun c -> c.Gen.profile) (Gen.stream ~seed:1 400) in
  List.iter
    (fun p -> Alcotest.(check bool) ("profile " ^ p ^ " generated") true (List.mem p seen))
    Gen.profiles

(* --- Corpus round-trip -------------------------------------------------------- *)

let test_corpus_roundtrip () =
  List.iter
    (fun case ->
      let e = { Corpus.oracle = "unit"; message = "round trip"; case } in
      let s = Corpus.to_string e in
      let e' = Corpus.of_string s in
      Alcotest.(check string) "oracle" e.Corpus.oracle e'.Corpus.oracle;
      Alcotest.(check string) "message" e.Corpus.message e'.Corpus.message;
      Alcotest.(check int) "seed" case.Gen.seed e'.Corpus.case.Gen.seed;
      Alcotest.(check string) "reprint is identical" s (Corpus.to_string e'))
    (Gen.stream ~seed:11 25)

(* --- Shrinker ----------------------------------------------------------------- *)

(* A synthetic bug with a known minimal repro: "two or more R tuples is a
   discrepancy".  Whatever failing case the stream offers, the shrinker
   must bring it down to exactly two R tuples and nothing else, with
   multiplicities 1 and exogenous flags cleared. *)
let r_count db =
  List.length
    (List.filter (fun info -> info.Relalg.Database.rel = "R") (Relalg.Database.tuples db))

let synthetic =
  {
    Oracle.name = "synthetic";
    descr = "fails when the database has two or more R tuples";
    applies = (fun case -> match case.Gen.shape with Gen.Db _ -> true | Gen.Lp _ -> false);
    check =
      (fun case ->
        match case.Gen.shape with
        | Gen.Db { Gen.db; _ } when r_count db >= 2 -> Oracle.Fail "too many R tuples"
        | _ -> Oracle.Pass);
  }

let test_shrinker_minimizes () =
  let case =
    List.find
      (fun c ->
        match c.Gen.shape with
        | Gen.Db { Gen.db; _ } -> r_count db >= 2
        | Gen.Lp _ -> false)
      (Gen.stream ~seed:5 50)
  in
  let shrunk, msg = Shrink.shrink synthetic case in
  Alcotest.(check string) "still failing after shrinking" "too many R tuples" msg;
  match shrunk.Gen.shape with
  | Gen.Db { Gen.db; _ } ->
    Alcotest.(check int) "minimal: exactly two R tuples" 2 (r_count db);
    Alcotest.(check int) "no other tuples survive" 2
      (List.length (Relalg.Database.tuples db));
    List.iter
      (fun info ->
        Alcotest.(check int) "multiplicity shrunk to 1" 1 info.Relalg.Database.mult;
        Alcotest.(check bool) "exogenous flag cleared" false info.Relalg.Database.exo)
      (Relalg.Database.tuples db)
  | Gen.Lp _ -> Alcotest.fail "expected a db case"

let test_shrinker_passing_case_unchanged () =
  let case = List.hd (Gen.stream ~seed:3 1) in
  let never_fails =
    { synthetic with Oracle.name = "pass"; check = (fun _ -> Oracle.Pass) }
  in
  let back, msg = Shrink.shrink never_fails case in
  Alcotest.(check string) "no message" "" msg;
  Alcotest.(check string) "case untouched" (fingerprint case) (fingerprint back)

(* --- Oracle selection ---------------------------------------------------------- *)

let test_oracle_select () =
  (match Oracle.select [ "sandwich"; "warm_vs_cold" ] with
  | Ok os ->
    Alcotest.(check (list string)) "resolved in order" [ "sandwich"; "warm_vs_cold" ]
      (List.map (fun o -> o.Oracle.name) os)
  | Error e -> Alcotest.fail e);
  match Oracle.select [ "sandwich"; "nonsense" ] with
  | Ok _ -> Alcotest.fail "unknown oracle accepted"
  | Error e -> Alcotest.(check string) "names the unknown oracle" "nonsense" e

(* --- Fuzz loop ----------------------------------------------------------------- *)

let test_fuzz_clean_and_deterministic () =
  let r = Fuzz.run ~instances:15 ~seed:42 () in
  Alcotest.(check int) "instances" 15 r.Fuzz.instances;
  Alcotest.(check (list string)) "no discrepancies" []
    (List.map (fun d -> d.Fuzz.message) r.Fuzz.discrepancies);
  let r' = Fuzz.run ~instances:15 ~seed:42 () in
  Alcotest.(check int) "identical check count on replay" r.Fuzz.checks r'.Fuzz.checks

(* --- Committed corpus replays clean --------------------------------------------- *)

(* ../examples/fuzz-corpus is a dune dep of this test, so every committed
   counterexample is re-checked by `dune runtest` (which runs in test/);
   fall back to the repo-root layout for a bare `dune exec`. *)
let corpus_dir =
  let local = Filename.concat "examples" "fuzz-corpus" in
  if Sys.file_exists local then local else Filename.concat ".." local

let test_corpus_replays_clean () =
  let results = Fuzz.replay_corpus ~dir:corpus_dir in
  Alcotest.(check bool) "corpus is not empty" true (results <> []);
  List.iter
    (fun r ->
      match r.Fuzz.verdict with
      | Oracle.Pass -> ()
      | Oracle.Fail m -> Alcotest.fail (Printf.sprintf "%s: %s" r.Fuzz.path m))
    results

let () =
  Alcotest.run "check"
    [
      ( "gen",
        [
          Alcotest.test_case "stream is seed-deterministic" `Quick test_stream_deterministic;
          Alcotest.test_case "of_seed reproduces cases" `Quick test_of_seed_reproducible;
          Alcotest.test_case "every profile is reachable" `Quick test_profiles_all_reachable;
        ] );
      ("corpus", [ Alcotest.test_case "to_string/of_string round-trip" `Quick test_corpus_roundtrip ]);
      ( "shrink",
        [
          Alcotest.test_case "minimizes to the known repro" `Quick test_shrinker_minimizes;
          Alcotest.test_case "passing cases unchanged" `Quick test_shrinker_passing_case_unchanged;
        ] );
      ("oracle", [ Alcotest.test_case "select resolves and rejects" `Quick test_oracle_select ]);
      ( "fuzz",
        [
          Alcotest.test_case "clean deterministic run" `Slow test_fuzz_clean_and_deterministic;
          Alcotest.test_case "committed corpus replays clean" `Quick test_corpus_replays_clean;
        ] );
    ]
