(* Session layer: the batched, warm-started solve path must agree with the
   one-shot solvers — per tuple, on random instances, under float and exact
   arithmetic — and the warm dual-simplex session must agree with a cold
   solve for every delta kind. *)

open Relalg
open Resilience

(* Random instances and the per-tuple reference ranking come from the shared
   Harness module. *)

let ranking_agrees ~exact rng =
  let sem, q, db = Harness.random_case rng in
  let session = Session.create ~exact sem q db in
  let got = List.map (fun (tid, k, _) -> (tid, k)) (Session.ranking session) in
  got = Harness.reference_ranking ~exact sem q db

let resilience_agrees ~exact rng =
  let sem, q, db = Harness.random_case rng in
  let session = Session.create ~exact sem q db in
  match (Session.resilience session, Solve.resilience ~exact sem q db) with
  | Session.Solved a, Solve.Solved b ->
    a.Session.res_value = b.Solve.res_value
    && Solve.verify_contingency sem q db a.Session.contingency
  | Session.Query_false, Solve.Query_false -> true
  | Session.No_contingency, Solve.No_contingency -> true
  | _ -> false

(* Responsibility sets read back from the shared program must be valid
   contingencies for their tuple, not just have the right size. *)
let responsibility_sets_valid rng =
  let sem, q, db = Harness.random_case rng in
  let session = Session.create sem q db in
  List.for_all
    (fun info ->
      let tid = info.Database.id in
      match Session.responsibility session tid with
      | Session.Solved a -> Solve.verify_responsibility_set q db tid a.Session.responsibility_set
      | Session.Query_false | Session.No_contingency | Session.Budget_exhausted _ -> true)
    (Database.tuples db)

let qcheck_cases =
  [
    (* 140 float + 70 exact = 210 random instances ranked differentially. *)
    Harness.seeded_prop ~count:140 "Session.ranking = per-tuple Solve.responsibility (float)"
      (ranking_agrees ~exact:false);
    Harness.seeded_prop ~count:70 "Session.ranking = per-tuple Solve.responsibility (exact)"
      (ranking_agrees ~exact:true);
    Harness.seeded_prop ~count:120 "Session.resilience = Solve.resilience (float)"
      (resilience_agrees ~exact:false);
    Harness.seeded_prop ~count:60 "Session.resilience = Solve.resilience (exact)"
      (resilience_agrees ~exact:true);
    Harness.seeded_prop ~count:80 "Session responsibility sets are valid contingencies"
      responsibility_sets_valid;
  ]

(* --- Parallel vs sequential ------------------------------------------------ *)

(* ranking_par must be bit-identical to ranking — same tuples, same k, same
   rho floats — for every job count, on both strategies.  The instance is
   solved sequentially once and in parallel at jobs ∈ {1, 2, 4}. *)
let ranking_par_agrees ~exact rng =
  let sem, q, db = Harness.random_case rng in
  let session = Session.create ~exact sem q db in
  let sequential = Session.ranking session in
  List.for_all
    (fun jobs -> Session.ranking_par ~jobs (Session.create ~exact sem q db) = sequential)
    [ 1; 2; 4 ]

(* Same, with the strategy forced cold, so the parallel cold path (fresh
   per-tuple encodes from many domains) is exercised on sparse instances
   too. *)
let ranking_par_cold_agrees rng =
  let sem, q, db = Harness.random_case rng in
  let session = Session.create ~dense_rows_threshold:0 sem q db in
  let sequential = Session.ranking session in
  (* A query-false / no-contingency instance never reaches the strategy
     decision; otherwise threshold 0 must force the cold path. *)
  (sequential = [] || Session.batch_strategy session = `Cold_per_tuple)
  && List.for_all
       (fun jobs ->
         Session.ranking_par ~jobs (Session.create ~dense_rows_threshold:0 sem q db)
         = sequential)
       [ 2; 4 ]

let par_qcheck_cases =
  [
    (* 140 float + 70 exact = 210 random instances, each ranked at three job
       counts against the sequential ranking. *)
    Harness.seeded_prop ~count:140 "Session.ranking_par = Session.ranking (float, jobs 1/2/4)"
      (ranking_par_agrees ~exact:false);
    Harness.seeded_prop ~count:70 "Session.ranking_par = Session.ranking (exact, jobs 1/2/4)"
      (ranking_par_agrees ~exact:true);
    Harness.seeded_prop ~count:60 "Session.ranking_par = Session.ranking (forced cold path)"
      ranking_par_cold_agrees;
  ]

(* Parallel branch-and-bound: random frozen covering programs (from the
   shared Harness generator), optimum value and status must match the
   sequential session solve for every pool size and frontier depth. *)
let bb_configs = [ (1, 3); (2, 0); (2, 2); (4, 3) ]

let bb_par_agrees ~exact rng =
  let nvars = 4 + Random.State.int rng 6 in
  let nrows = 3 + Random.State.int rng 6 in
  let fz, _ = Harness.random_covering_frozen rng ~nvars ~nrows in
  if exact then begin
    let open Lp.Solvers.Exact_bb in
    let seq = solve_session (create_session fz) in
    List.for_all
      (fun (jobs, par_depth) ->
        Lp.Pool.with_pool ~jobs (fun pool ->
            let par = solve_session_par ~par_depth ~pool (create_session fz) in
            par.status = seq.status && par.objective = seq.objective))
      bb_configs
  end
  else begin
    let open Lp.Solvers.Float_bb in
    let seq = solve_session (create_session fz) in
    List.for_all
      (fun (jobs, par_depth) ->
        Lp.Pool.with_pool ~jobs (fun pool ->
            let par = solve_session_par ~par_depth ~pool (create_session fz) in
            par.status = seq.status && par.objective = seq.objective))
      bb_configs
  end

let bb_par_qcheck =
  [
    Harness.seeded_prop ~count:120 "parallel B&B optimum = sequential (float)"
      (bb_par_agrees ~exact:false);
    Harness.seeded_prop ~count:60 "parallel B&B optimum = sequential (exact)"
      (bb_par_agrees ~exact:true);
  ]

(* --- Dense-regime fallback -------------------------------------------------- *)

(* The strategy decision is pinned on two fixtures: a sparse chain instance
   stays on the shared delta path, a dense one (small join domain, witnesses
   multiplied until the shared program tops the row threshold) falls back to
   cold per-tuple solves. *)
let test_strategy_sparse () =
  let rng = Harness.rng_of 42 in
  let q = Queries.q2_chain () in
  let specs = Datagen.Random_inst.specs_of_query q ~count:40 in
  let db = Datagen.Random_inst.db rng ~domain:80 specs in
  let session = Session.create Problem.Set q db in
  Alcotest.(check bool) "sparse instance stays on the shared path" true
    (Session.batch_strategy session = `Shared_delta)

let dense_db () =
  (* R and S over a 2-value join domain: 60x60 tuples give ~1800 witnesses —
     past the old dense-inverse crossover (1700 rows), well below the
     re-measured sparse-LU threshold (10^4 rows). *)
  let db = Database.create () in
  for i = 0 to 59 do
    ignore (Database.add db "R" [| i; i mod 2 |]);
    ignore (Database.add db "S" [| i mod 2; i |])
  done;
  db

let test_strategy_dense () =
  let q = Queries.q2_chain () in
  let db = dense_db () in
  let session = Session.create Problem.Set q db in
  Alcotest.(check bool) "dense instance stays shared under the raised threshold" true
    (Session.batch_strategy session = `Shared_delta);
  Alcotest.(check bool) "a low threshold still falls back to cold per-tuple" true
    (Session.batch_strategy (Session.create ~dense_rows_threshold:1700 Problem.Set q db)
    = `Cold_per_tuple);
  (* The threshold override flips the decision both ways. *)
  Alcotest.(check bool) "max_int threshold forces shared" true
    (Session.batch_strategy (Session.create ~dense_rows_threshold:max_int Problem.Set q db)
    = `Shared_delta);
  let rng = Harness.rng_of 42 in
  let sparse =
    Datagen.Random_inst.db rng ~domain:80 (Datagen.Random_inst.specs_of_query q ~count:40)
  in
  Alcotest.(check bool) "zero threshold forces cold" true
    (Session.batch_strategy (Session.create ~dense_rows_threshold:0 Problem.Set q sparse)
    = `Cold_per_tuple)

let test_strategies_agree () =
  (* Both regimes rank a mid-size instance identically. *)
  let rng = Harness.rng_of 7 in
  let q = Queries.q2_chain () in
  let specs = Datagen.Random_inst.specs_of_query q ~count:12 in
  let db = Datagen.Random_inst.db rng ~domain:3 specs in
  let shared = Session.create ~dense_rows_threshold:max_int Problem.Set q db in
  let cold = Session.create ~dense_rows_threshold:0 Problem.Set q db in
  Alcotest.(check bool) "fixture exercises both strategies" true
    (Session.batch_strategy shared = `Shared_delta
    && Session.batch_strategy cold = `Cold_per_tuple);
  let to_list s = List.map (fun (t, k, _) -> (t, k)) (Session.ranking s) in
  Alcotest.(check (list (pair int int))) "identical rankings" (to_list shared) (to_list cold)

(* --- Warm vs cold dual simplex, per delta kind ----------------------------- *)

(* A small covering program with distinct costs so optima are unambiguous:
   min x0 + 2 x1 + 3 x2 + 4 x3
   s.t. x0 + x1 >= 1;  x1 + x2 >= 1;  x2 + x3 >= 1;  x0..x3 in [0,1]. *)
let chain_frozen () =
  let m = Lp.Model.create () in
  let v = Array.init 4 (fun i -> Lp.Model.add_var ~upper:1 ~obj:(i + 1) m) in
  Lp.Model.add_constr m [ (v.(0), 1); (v.(1), 1) ] Lp.Model.Geq 1;
  Lp.Model.add_constr m [ (v.(1), 1); (v.(2), 1) ] Lp.Model.Geq 1;
  Lp.Model.add_constr m [ (v.(2), 1); (v.(3), 1) ] Lp.Model.Geq 1;
  (Lp.Frozen.of_model m, v)

let check_outcome name cold warm =
  let open Lp.Solvers.Float_simplex in
  match (cold, warm) with
  | Optimal a, Optimal b ->
    Alcotest.(check (float 1e-9)) (name ^ ": objective") a.objective b.objective;
    Array.iteri
      (fun i x -> Alcotest.(check (float 1e-9)) (Printf.sprintf "%s: x%d" name i) x b.solution.(i))
      a.solution
  | Infeasible, Infeasible | Unbounded, Unbounded -> ()
  | _ -> Alcotest.fail (name ^ ": cold and warm outcome kinds differ")

let test_warm_vs_cold_deltas () =
  let fz, v = chain_frozen () in
  Alcotest.(check bool) "dual applicable" true (Lp.Solvers.Float_simplex.frozen_dual_applicable fz);
  let warm = Lp.Solvers.Float_simplex.create_session fz in
  let open Lp.Frozen.Delta in
  (* One warm session solves the whole sequence; the cold side gets a fresh
     session per delta.  Each step exercises a delta kind against a basis
     left warm by a *different* previous delta. *)
  let steps =
    [
      ("empty", empty);
      ("fix_zero", fix_zero v.(1) empty);
      ("force_one", force_one v.(0) empty);
      ("fix_zero+force_one", fix_zero v.(2) (force_one v.(3) empty));
      ("release", release v.(1) (fix_zero v.(1) empty));
      ("all fixed", fix_zero v.(0) (force_one v.(1) (force_one v.(2) (fix_zero v.(3) empty))));
      ("infeasible pair", fix_zero v.(0) (fix_zero v.(1) empty));
      ("back to empty", empty);
    ]
  in
  List.iter
    (fun (name, delta) ->
      let cold =
        Lp.Solvers.Float_simplex.session_solve (Lp.Solvers.Float_simplex.create_session fz) delta
      in
      check_outcome name cold (Lp.Solvers.Float_simplex.session_solve warm delta))
    steps

(* Random frozen covering programs and random delta sequences: one warm
   session must match a cold session at every step. *)
let warm_equals_cold rng =
  let nvars = 3 + Random.State.int rng 5 in
  let nrows = 2 + Random.State.int rng 5 in
  let fz, vars = Harness.random_covering_frozen rng ~nvars ~nrows in
  let warm = Lp.Solvers.Float_simplex.create_session fz in
  let ok = ref true in
  for _ = 1 to 8 do
    let delta =
      List.fold_left
        (fun d v ->
          match Random.State.int rng 3 with
          | 0 -> Lp.Frozen.Delta.fix_zero v d
          | 1 -> Lp.Frozen.Delta.force_one v d
          | _ -> d)
        Lp.Frozen.Delta.empty (Array.to_list vars)
    in
    let cold =
      Lp.Solvers.Float_simplex.session_solve (Lp.Solvers.Float_simplex.create_session fz) delta
    in
    let open Lp.Solvers.Float_simplex in
    (match (cold, session_solve warm delta) with
    | Optimal a, Optimal b -> if Float.abs (a.objective -. b.objective) > 1e-7 then ok := false
    | Infeasible, Infeasible -> ()
    | Unbounded, Unbounded -> ()
    | _ -> ok := false)
  done;
  !ok

let warm_qcheck =
  Harness.seeded_prop ~count:300 "warm session = cold session on random delta sequences"
    warm_equals_cold

(* --- Edge cases ------------------------------------------------------------ *)

let test_exogenous_skipped () =
  (* An exogenous tuple never appears in the ranking, even when it sits in
     every witness. *)
  let db = Database.create () in
  let r = Database.add db "R" [| 1; 2 |] in
  ignore (Database.add db "S" [| 2; 3 |]);
  Database.set_exo db r true;
  let q = Queries.q2_chain () in
  let session = Session.create Problem.Set q db in
  let ranked = Session.ranking session in
  Alcotest.(check bool) "exogenous tuple absent" true
    (List.for_all (fun (tid, _, _) -> tid <> r) ranked);
  Alcotest.(check int) "only the endogenous tuple ranks" 1 (List.length ranked)

let test_query_false_session () =
  let db = Database.create () in
  ignore (Database.add db "R" [| 1; 2 |]);
  let q = Queries.q2_chain () in
  let session = Session.create Problem.Set q db in
  (match Session.resilience session with
  | Session.Query_false -> ()
  | _ -> Alcotest.fail "expected Query_false");
  Alcotest.(check int) "empty ranking" 0 (List.length (Session.ranking session));
  Alcotest.(check int) "no diagnostics" 0 (List.length (Session.diagnostics session))

let test_fully_exogenous_witness () =
  (* A witness of only exogenous tuples blocks everything. *)
  let db = Database.create () in
  let r = Database.add db "R" [| 1; 2 |] in
  let s = Database.add db "S" [| 2; 3 |] in
  ignore (Database.add db "R" [| 4; 5 |]);
  ignore (Database.add db "S" [| 5; 6 |]);
  Database.set_exo db r true;
  Database.set_exo db s true;
  let q = Queries.q2_chain () in
  let session = Session.create Problem.Set q db in
  (match Session.resilience session with
  | Session.No_contingency -> ()
  | _ -> Alcotest.fail "expected No_contingency");
  Alcotest.(check int) "empty ranking" 0 (List.length (Session.ranking session))

let () =
  let open Alcotest in
  run "session"
    [
      ( "warm-starts",
        [
          test_case "warm vs cold, per delta kind" `Quick test_warm_vs_cold_deltas;
          Harness.qtest warm_qcheck;
        ] );
      ( "edge-cases",
        [
          test_case "exogenous tuples skipped" `Quick test_exogenous_skipped;
          test_case "query false" `Quick test_query_false_session;
          test_case "fully exogenous witness" `Quick test_fully_exogenous_witness;
        ] );
      ( "dense-fallback",
        [
          test_case "sparse fixture stays shared" `Quick test_strategy_sparse;
          test_case "dense fixture goes cold" `Quick test_strategy_dense;
          test_case "both strategies rank identically" `Quick test_strategies_agree;
        ] );
      ("differential", Harness.qtests qcheck_cases);
      ("parallel", Harness.qtests (par_qcheck_cases @ bb_par_qcheck));
    ]
