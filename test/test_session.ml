(* Session layer: the batched, warm-started solve path must agree with the
   one-shot solvers — per tuple, on random instances, under float and exact
   arithmetic — and the warm dual-simplex session must agree with a cold
   solve for every delta kind. *)

open Relalg
open Resilience

(* --- Random instances ----------------------------------------------------- *)

let query_pool () =
  [
    Queries.q2_chain ();
    Queries.q3_chain ();
    Queries.q2_star ();
    Queries.q_triangle ();
    Queries.q2_chain_sj ();
    Queries.q_confluence ();
  ]

let random_case rng =
  let pool = query_pool () in
  let q = List.nth pool (Random.State.int rng (List.length pool)) in
  let count = 3 + Random.State.int rng 8 in
  let specs = Datagen.Random_inst.specs_of_query q ~count in
  let domain = 2 + Random.State.int rng 3 in
  let db = Datagen.Random_inst.db rng ~domain ~max_bag:2 specs in
  List.iter
    (fun info ->
      if Random.State.int rng 5 = 0 then Database.set_exo db info.Database.id true)
    (Database.tuples db);
  let sem = if Random.State.bool rng then Problem.Set else Problem.Bag in
  (sem, q, db)

(* The reference ranking: a fresh encode + presolve + branch-and-bound per
   tuple, exactly what Solve.responsibility_ranking did before the session
   layer existed. *)
let reference_ranking ~exact sem q db =
  Database.tuples db
  |> List.filter_map (fun info ->
         let tid = info.Database.id in
         if Problem.tuple_exo q db tid then None
         else
           match Solve.responsibility ~exact sem q db tid with
           | Solve.Solved a -> Some (tid, a.Solve.rsp_value)
           | Solve.Query_false | Solve.No_contingency | Solve.Budget_exhausted _ -> None)
  |> List.stable_sort (fun (_, a) (_, b) -> compare a b)

let ranking_agrees ~exact seed =
  let rng = Random.State.make [| seed |] in
  let sem, q, db = random_case rng in
  let session = Session.create ~exact sem q db in
  let got = List.map (fun (tid, k, _) -> (tid, k)) (Session.ranking session) in
  got = reference_ranking ~exact sem q db

let resilience_agrees ~exact seed =
  let rng = Random.State.make [| seed |] in
  let sem, q, db = random_case rng in
  let session = Session.create ~exact sem q db in
  match (Session.resilience session, Solve.resilience ~exact sem q db) with
  | Session.Solved a, Solve.Solved b ->
    a.Session.res_value = b.Solve.res_value
    && Solve.verify_contingency sem q db a.Session.contingency
  | Session.Query_false, Solve.Query_false -> true
  | Session.No_contingency, Solve.No_contingency -> true
  | _ -> false

(* Responsibility sets read back from the shared program must be valid
   contingencies for their tuple, not just have the right size. *)
let responsibility_sets_valid seed =
  let rng = Random.State.make [| seed |] in
  let sem, q, db = random_case rng in
  let session = Session.create sem q db in
  List.for_all
    (fun info ->
      let tid = info.Database.id in
      match Session.responsibility session tid with
      | Session.Solved a -> Solve.verify_responsibility_set q db tid a.Session.responsibility_set
      | Session.Query_false | Session.No_contingency | Session.Budget_exhausted _ -> true)
    (Database.tuples db)

let qcheck_cases =
  [
    (* 140 float + 70 exact = 210 random instances ranked differentially. *)
    QCheck.Test.make ~name:"Session.ranking = per-tuple Solve.responsibility (float)"
      ~count:140 (QCheck.int_range 0 1_000_000) (ranking_agrees ~exact:false);
    QCheck.Test.make ~name:"Session.ranking = per-tuple Solve.responsibility (exact)"
      ~count:70 (QCheck.int_range 0 1_000_000) (ranking_agrees ~exact:true);
    QCheck.Test.make ~name:"Session.resilience = Solve.resilience (float)" ~count:120
      (QCheck.int_range 0 1_000_000) (resilience_agrees ~exact:false);
    QCheck.Test.make ~name:"Session.resilience = Solve.resilience (exact)" ~count:60
      (QCheck.int_range 0 1_000_000) (resilience_agrees ~exact:true);
    QCheck.Test.make ~name:"Session responsibility sets are valid contingencies" ~count:80
      (QCheck.int_range 0 1_000_000) responsibility_sets_valid;
  ]

(* --- Warm vs cold dual simplex, per delta kind ----------------------------- *)

(* A small covering program with distinct costs so optima are unambiguous:
   min x0 + 2 x1 + 3 x2 + 4 x3
   s.t. x0 + x1 >= 1;  x1 + x2 >= 1;  x2 + x3 >= 1;  x0..x3 in [0,1]. *)
let chain_frozen () =
  let m = Lp.Model.create () in
  let v = Array.init 4 (fun i -> Lp.Model.add_var ~upper:1 ~obj:(i + 1) m) in
  Lp.Model.add_constr m [ (v.(0), 1); (v.(1), 1) ] Lp.Model.Geq 1;
  Lp.Model.add_constr m [ (v.(1), 1); (v.(2), 1) ] Lp.Model.Geq 1;
  Lp.Model.add_constr m [ (v.(2), 1); (v.(3), 1) ] Lp.Model.Geq 1;
  (Lp.Frozen.of_model m, v)

let check_outcome name cold warm =
  let open Lp.Solvers.Float_simplex in
  match (cold, warm) with
  | Optimal a, Optimal b ->
    Alcotest.(check (float 1e-9)) (name ^ ": objective") a.objective b.objective;
    Array.iteri
      (fun i x -> Alcotest.(check (float 1e-9)) (Printf.sprintf "%s: x%d" name i) x b.solution.(i))
      a.solution
  | Infeasible, Infeasible | Unbounded, Unbounded -> ()
  | _ -> Alcotest.fail (name ^ ": cold and warm outcome kinds differ")

let test_warm_vs_cold_deltas () =
  let fz, v = chain_frozen () in
  Alcotest.(check bool) "dual applicable" true (Lp.Solvers.Float_simplex.frozen_dual_applicable fz);
  let warm = Lp.Solvers.Float_simplex.create_session fz in
  let open Lp.Frozen.Delta in
  (* One warm session solves the whole sequence; the cold side gets a fresh
     session per delta.  Each step exercises a delta kind against a basis
     left warm by a *different* previous delta. *)
  let steps =
    [
      ("empty", empty);
      ("fix_zero", fix_zero v.(1) empty);
      ("force_one", force_one v.(0) empty);
      ("fix_zero+force_one", fix_zero v.(2) (force_one v.(3) empty));
      ("release", release v.(1) (fix_zero v.(1) empty));
      ("all fixed", fix_zero v.(0) (force_one v.(1) (force_one v.(2) (fix_zero v.(3) empty))));
      ("infeasible pair", fix_zero v.(0) (fix_zero v.(1) empty));
      ("back to empty", empty);
    ]
  in
  List.iter
    (fun (name, delta) ->
      let cold =
        Lp.Solvers.Float_simplex.session_solve (Lp.Solvers.Float_simplex.create_session fz) delta
      in
      check_outcome name cold (Lp.Solvers.Float_simplex.session_solve warm delta))
    steps

(* Random frozen covering programs and random delta sequences: one warm
   session must match a cold session at every step. *)
let warm_equals_cold seed =
  let rng = Random.State.make [| seed |] in
  let m = Lp.Model.create () in
  let nvars = 3 + Random.State.int rng 5 in
  let vars =
    Array.init nvars (fun _ ->
        Lp.Model.add_var ~upper:1 ~obj:(1 + Random.State.int rng 5) m)
  in
  let nrows = 2 + Random.State.int rng 5 in
  for _ = 1 to nrows do
    let width = 1 + Random.State.int rng 3 in
    let picked = List.init width (fun _ -> vars.(Random.State.int rng nvars)) in
    let picked = List.sort_uniq compare picked in
    Lp.Model.add_constr m (List.map (fun v -> (v, 1)) picked) Lp.Model.Geq 1
  done;
  let fz = Lp.Model.create () |> fun _ -> Lp.Frozen.of_model m in
  let warm = Lp.Solvers.Float_simplex.create_session fz in
  let ok = ref true in
  for _ = 1 to 8 do
    let delta =
      List.fold_left
        (fun d v ->
          match Random.State.int rng 3 with
          | 0 -> Lp.Frozen.Delta.fix_zero v d
          | 1 -> Lp.Frozen.Delta.force_one v d
          | _ -> d)
        Lp.Frozen.Delta.empty (Array.to_list vars)
    in
    let cold =
      Lp.Solvers.Float_simplex.session_solve (Lp.Solvers.Float_simplex.create_session fz) delta
    in
    let open Lp.Solvers.Float_simplex in
    (match (cold, session_solve warm delta) with
    | Optimal a, Optimal b -> if Float.abs (a.objective -. b.objective) > 1e-7 then ok := false
    | Infeasible, Infeasible -> ()
    | Unbounded, Unbounded -> ()
    | _ -> ok := false)
  done;
  !ok

let warm_qcheck =
  QCheck.Test.make ~name:"warm session = cold session on random delta sequences" ~count:300
    (QCheck.int_range 0 1_000_000) warm_equals_cold

(* --- Edge cases ------------------------------------------------------------ *)

let test_exogenous_skipped () =
  (* An exogenous tuple never appears in the ranking, even when it sits in
     every witness. *)
  let db = Database.create () in
  let r = Database.add db "R" [| 1; 2 |] in
  ignore (Database.add db "S" [| 2; 3 |]);
  Database.set_exo db r true;
  let q = Queries.q2_chain () in
  let session = Session.create Problem.Set q db in
  let ranked = Session.ranking session in
  Alcotest.(check bool) "exogenous tuple absent" true
    (List.for_all (fun (tid, _, _) -> tid <> r) ranked);
  Alcotest.(check int) "only the endogenous tuple ranks" 1 (List.length ranked)

let test_query_false_session () =
  let db = Database.create () in
  ignore (Database.add db "R" [| 1; 2 |]);
  let q = Queries.q2_chain () in
  let session = Session.create Problem.Set q db in
  (match Session.resilience session with
  | Session.Query_false -> ()
  | _ -> Alcotest.fail "expected Query_false");
  Alcotest.(check int) "empty ranking" 0 (List.length (Session.ranking session));
  Alcotest.(check int) "no diagnostics" 0 (List.length (Session.diagnostics session))

let test_fully_exogenous_witness () =
  (* A witness of only exogenous tuples blocks everything. *)
  let db = Database.create () in
  let r = Database.add db "R" [| 1; 2 |] in
  let s = Database.add db "S" [| 2; 3 |] in
  ignore (Database.add db "R" [| 4; 5 |]);
  ignore (Database.add db "S" [| 5; 6 |]);
  Database.set_exo db r true;
  Database.set_exo db s true;
  let q = Queries.q2_chain () in
  let session = Session.create Problem.Set q db in
  (match Session.resilience session with
  | Session.No_contingency -> ()
  | _ -> Alcotest.fail "expected No_contingency");
  Alcotest.(check int) "empty ranking" 0 (List.length (Session.ranking session))

let () =
  let open Alcotest in
  run "session"
    [
      ( "warm-starts",
        [
          test_case "warm vs cold, per delta kind" `Quick test_warm_vs_cold_deltas;
          QCheck_alcotest.to_alcotest warm_qcheck;
        ] );
      ( "edge-cases",
        [
          test_case "exogenous tuples skipped" `Quick test_exogenous_skipped;
          test_case "query false" `Quick test_query_false_session;
          test_case "fully exogenous witness" `Quick test_fully_exogenous_witness;
        ] );
      ("differential", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
