(* Tests for the LP/ILP solver stack: model building, primal and dual
   simplex (differential against each other and against the exact rational
   instantiation), and branch-and-bound. *)

module M = Lp.Model
module FS = Lp.Solvers.Float_simplex
module ES = Lp.Solvers.Exact_simplex
module FB = Lp.Solvers.Float_bb
module EB = Lp.Solvers.Exact_bb

let objective_of = function FS.Optimal { objective; _ } -> Some objective | _ -> None

let solution_of = function FS.Optimal { solution; _ } -> Some solution | _ -> None

(* --- Model --------------------------------------------------------------- *)

let test_model_building () =
  let m = M.create () in
  let x = M.add_var ~name:"x" ~obj:3 m in
  let y = M.add_var ~integer:true ~upper:1 m in
  M.add_constr m [ (x, 1); (y, 2); (x, 1) ] M.Geq 2;
  Alcotest.(check int) "vars" 2 (M.num_vars m);
  Alcotest.(check int) "constrs" 1 (M.num_constrs m);
  Alcotest.(check int) "objective" 3 (M.objective m x);
  Alcotest.(check bool) "integer flag" true (M.is_integer m y);
  Alcotest.(check (option int)) "upper" (Some 1) (M.upper m y);
  Alcotest.(check string) "default name" "x1" (M.var_name m y);
  (* duplicate coefficients are merged *)
  let c = (M.constraints m).(0) in
  Alcotest.(check (list (pair int int))) "merged expr" [ (x, 2); (y, 2) ] c.M.expr;
  Alcotest.check_raises "unknown var" (Invalid_argument "Model.add_constr: unknown variable")
    (fun () -> M.add_constr m [ (99, 1) ] M.Leq 0)

let test_check_feasible () =
  let m = M.create () in
  let x = M.add_var ~upper:2 m in
  M.add_constr m [ (x, 1) ] M.Geq 1;
  Alcotest.(check bool) "feasible" true (M.check_feasible m [| 1.5 |]);
  Alcotest.(check bool) "below" false (M.check_feasible m [| 0.5 |]);
  Alcotest.(check bool) "above upper" false (M.check_feasible m [| 2.5 |])

(* --- Simplex on known programs ------------------------------------------- *)

let mk_lp () =
  (* min 2x + 3y  s.t.  x+y >= 4, x-y <= 2, 3x+y >= 6  ->  obj 9 at (3,1) *)
  let m = M.create () in
  let x = M.add_var ~obj:2 m in
  let y = M.add_var ~obj:3 m in
  M.add_constr m [ (x, 1); (y, 1) ] M.Geq 4;
  M.add_constr m [ (x, 1); (y, -1) ] M.Leq 2;
  M.add_constr m [ (x, 3); (y, 1) ] M.Geq 6;
  (m, x, y)

let test_simplex_known () =
  let m, x, y = mk_lp () in
  List.iter
    (fun meth ->
      match FS.solve ~method_:meth m with
      | FS.Optimal { objective; solution } ->
        Alcotest.(check (float 1e-6)) "objective" 9.0 objective;
        Alcotest.(check (float 1e-6)) "x" 3.0 solution.(x);
        Alcotest.(check (float 1e-6)) "y" 1.0 solution.(y)
      | FS.Infeasible | FS.Unbounded -> Alcotest.fail "expected optimal")
    [ `Primal; `Dual; `Auto ]

let test_simplex_exact_known () =
  let m, _, _ = mk_lp () in
  match ES.solve m with
  | ES.Optimal { objective; _ } ->
    Alcotest.(check bool) "exact 9" true (Numeric.Rat.equal objective (Numeric.Rat.of_int 9))
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_infeasible () =
  let m = M.create () in
  let x = M.add_var ~upper:1 m in
  M.add_constr m [ (x, 1) ] M.Geq 2;
  (match FS.solve ~method_:`Primal m with
  | FS.Infeasible -> ()
  | _ -> Alcotest.fail "primal should be infeasible");
  match FS.solve ~method_:`Auto m with
  | FS.Infeasible -> ()
  | _ -> Alcotest.fail "dual should be infeasible"

let test_simplex_unbounded () =
  (* min -x (negative cost forces the primal path), x unconstrained above *)
  let m = M.create () in
  let x = M.add_var ~obj:(-1) m in
  M.add_constr m [ (x, 1) ] M.Geq 0;
  match FS.solve m with
  | FS.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_simplex_degenerate_equalities () =
  (* equality rows force the primal path *)
  let m = M.create () in
  let x = M.add_var ~obj:1 m in
  let y = M.add_var ~obj:1 m in
  M.add_constr m [ (x, 1); (y, 1) ] M.Eq 3;
  M.add_constr m [ (x, 1); (y, -1) ] M.Eq 1;
  match FS.solve m with
  | FS.Optimal { objective; solution } ->
    Alcotest.(check (float 1e-6)) "objective" 3.0 objective;
    Alcotest.(check (float 1e-6)) "x" 2.0 solution.(x);
    Alcotest.(check (float 1e-6)) "y" 1.0 solution.(y)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_fixed () =
  let m, x, y = mk_lp () in
  (match FS.solve ~fixed:[ (x, 4) ] m with
  | FS.Optimal { objective; solution } ->
    Alcotest.(check (float 1e-6)) "x pinned" 4.0 solution.(x);
    (* with x=4: y >= 0, y >= 2 from x - y <= 2, obj = 8 + 3*2 = 14 *)
    Alcotest.(check (float 1e-6)) "y" 2.0 solution.(y);
    Alcotest.(check (float 1e-6)) "objective" 14.0 objective
  | _ -> Alcotest.fail "expected optimal");
  match FS.solve ~fixed:[ (x, -1) ] m with
  | FS.Infeasible -> ()
  | _ -> Alcotest.fail "negative fix must be infeasible"

let test_fractional_covering () =
  (* the triangle vertex-cover LP has optimum 1.5 *)
  let m = M.create () in
  let v = Array.init 3 (fun _ -> M.add_var ~obj:1 m) in
  M.add_constr m [ (v.(0), 1); (v.(1), 1) ] M.Geq 1;
  M.add_constr m [ (v.(1), 1); (v.(2), 1) ] M.Geq 1;
  M.add_constr m [ (v.(0), 1); (v.(2), 1) ] M.Geq 1;
  match FS.solve m with
  | FS.Optimal { objective; _ } -> Alcotest.(check (float 1e-6)) "LP" 1.5 objective
  | _ -> Alcotest.fail "expected optimal"

(* --- Differential property: primal = dual = exact ------------------------- *)

let arb_model =
  let gen =
    QCheck.Gen.(
      let* nv = int_range 2 7 in
      let* nc = int_range 1 7 in
      let* objs = list_repeat nv (int_range 0 5) in
      let* uppers = list_repeat nv (opt (int_range 1 3)) in
      let* rows =
        list_repeat nc
          (let* coeffs = list_repeat nv (int_range (-1) 3) in
           let* geq = bool in
           let* rhs = int_range 0 6 in
           return (coeffs, geq, rhs))
      in
      return (objs, uppers, rows))
  in
  QCheck.make gen

let build_model (objs, uppers, rows) =
  let m = M.create () in
  let vars =
    List.map2 (fun obj upper -> M.add_var ?upper ~obj m) objs uppers
  in
  List.iter
    (fun (coeffs, geq, rhs) ->
      let expr =
        List.map2 (fun v c -> (v, max 0 c)) vars coeffs |> List.filter (fun (_, c) -> c <> 0)
      in
      if expr <> [] then M.add_constr m expr (if geq then M.Geq else M.Leq) rhs)
    rows;
  m

let prop_primal_dual_exact_agree =
  QCheck.Test.make ~name:"primal = dual = exact on random nonneg models" ~count:400 arb_model
    (fun spec ->
      let m = build_model spec in
      let a = objective_of (FS.solve ~method_:`Primal m) in
      let b = objective_of (FS.solve ~method_:`Auto m) in
      let c =
        match ES.solve m with
        | ES.Optimal { objective; _ } -> Some (Numeric.Rat.to_float objective)
        | _ -> None
      in
      let close x y =
        match (x, y) with
        | Some a, Some b -> Float.abs (a -. b) < 1e-5
        | None, None -> true
        | _ -> false
      in
      close a b && close a c)

let prop_solution_feasible =
  QCheck.Test.make ~name:"returned solutions satisfy the model" ~count:400 arb_model (fun spec ->
      let m = build_model spec in
      match solution_of (FS.solve m) with
      | Some x -> M.check_feasible m x
      | None -> true)

(* --- Branch and bound ------------------------------------------------------ *)

let triangle_vc () =
  let m = M.create () in
  let v = Array.init 3 (fun _ -> M.add_var ~integer:true ~upper:1 ~obj:1 m) in
  M.add_constr m [ (v.(0), 1); (v.(1), 1) ] M.Geq 1;
  M.add_constr m [ (v.(1), 1); (v.(2), 1) ] M.Geq 1;
  M.add_constr m [ (v.(0), 1); (v.(2), 1) ] M.Geq 1;
  m

let test_bb_triangle () =
  let r = FB.solve (triangle_vc ()) in
  Alcotest.(check bool) "optimal" true (r.FB.status = FB.Optimal);
  Alcotest.(check (float 1e-6)) "objective 2" 2.0 (Option.get r.FB.objective);
  Alcotest.(check (float 1e-6)) "fractional root" 1.5 (Option.get r.FB.root_objective);
  Alcotest.(check bool) "root not integral" false r.FB.root_integral;
  Alcotest.(check bool) "needed branching" true (r.FB.nodes > 1)

let test_bb_integral_root () =
  (* a bipartite-cover-ish model whose LP optimum is already integral *)
  let m = M.create () in
  let x = M.add_var ~integer:true ~upper:1 ~obj:1 m in
  let y = M.add_var ~integer:true ~upper:1 ~obj:2 m in
  M.add_constr m [ (x, 1); (y, 1) ] M.Geq 1;
  let r = FB.solve m in
  Alcotest.(check (float 1e-6)) "objective 1" 1.0 (Option.get r.FB.objective);
  Alcotest.(check bool) "root integral" true r.FB.root_integral;
  Alcotest.(check int) "single node" 1 r.FB.nodes

let test_bb_infeasible () =
  let m = M.create () in
  let x = M.add_var ~integer:true ~upper:1 m in
  M.add_constr m [ (x, 1) ] M.Geq 2;
  let r = FB.solve m in
  Alcotest.(check bool) "infeasible" true (r.FB.status = FB.Infeasible)

let test_bb_node_limit () =
  let r = FB.solve ~node_limit:1 (triangle_vc ()) in
  Alcotest.(check bool) "limit status" true
    (match r.FB.status with FB.Feasible | FB.Limit_no_solution -> true | _ -> false)

let test_bb_rejects_general_integers () =
  let m = M.create () in
  let x = M.add_var ~integer:true ~upper:5 ~obj:1 m in
  M.add_constr m [ (x, 1) ] M.Geq 1;
  Alcotest.check_raises "non-binary" (Invalid_argument "Branch_bound.solve: integer variables must be binary")
    (fun () -> ignore (FB.solve m))

let test_bb_exact_matches_float () =
  let m = triangle_vc () in
  let rf = FB.solve m in
  let re = EB.solve m in
  Alcotest.(check (float 1e-9)) "same optimum" (Option.get rf.FB.objective)
    (Numeric.Rat.to_float (Option.get re.EB.objective))

(* Random set-cover ILPs (the shared Harness covering generator):
   branch-and-bound equals exhaustive search over all 0/1 points. *)
let prop_bb_matches_bruteforce =
  Harness.seeded_prop ~count:200 "B&B = exhaustive on random covers" (fun rng ->
      let nvars = 2 + Random.State.int rng 7 in
      let nrows = 1 + Random.State.int rng 6 in
      let m, vars = Harness.random_covering_model ~integer:true rng ~nvars ~nrows in
      let best = ref max_int in
      for mask = 0 to (1 lsl nvars) - 1 do
        let x = Array.init nvars (fun i -> if mask land (1 lsl i) <> 0 then 1.0 else 0.0) in
        if M.check_feasible m x then begin
          let w =
            Array.fold_left
              (fun acc v -> if mask land (1 lsl v) <> 0 then acc + M.objective m v else acc)
              0 vars
          in
          if w < !best then best := w
        end
      done;
      let r = FB.solve m in
      match r.FB.objective with
      | Some obj -> int_of_float (Float.round obj) = !best
      | None -> false)

let () =
  let q = Harness.qtest in
  Alcotest.run "lp"
    [
      ( "model",
        [
          Alcotest.test_case "building" `Quick test_model_building;
          Alcotest.test_case "check_feasible" `Quick test_check_feasible;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "known LP, all methods" `Quick test_simplex_known;
          Alcotest.test_case "exact instance" `Quick test_simplex_exact_known;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "equalities (primal path)" `Quick test_simplex_degenerate_equalities;
          Alcotest.test_case "fixed variables" `Quick test_simplex_fixed;
          Alcotest.test_case "fractional covering" `Quick test_fractional_covering;
          q prop_primal_dual_exact_agree;
          q prop_solution_feasible;
        ] );
      ( "branch_bound",
        [
          Alcotest.test_case "triangle vertex cover" `Quick test_bb_triangle;
          Alcotest.test_case "integral root stops at node 1" `Quick test_bb_integral_root;
          Alcotest.test_case "infeasible" `Quick test_bb_infeasible;
          Alcotest.test_case "node limit" `Quick test_bb_node_limit;
          Alcotest.test_case "rejects general integers" `Quick test_bb_rejects_general_integers;
          Alcotest.test_case "exact = float" `Quick test_bb_exact_matches_float;
          q prop_bb_matches_bruteforce;
        ] );
    ]
