(* Tests for max-flow/min-cut and the flow encodings of resilience. *)

open Relalg

(* --- Maxflow ---------------------------------------------------------------- *)

let test_maxflow_basic () =
  let g = Netflow.Maxflow.create () in
  let s = Netflow.Maxflow.add_node g in
  let t = Netflow.Maxflow.add_node g in
  let a = Netflow.Maxflow.add_node g in
  let b = Netflow.Maxflow.add_node g in
  ignore (Netflow.Maxflow.add_edge g ~src:s ~dst:a ~cap:3);
  ignore (Netflow.Maxflow.add_edge g ~src:s ~dst:b ~cap:2);
  ignore (Netflow.Maxflow.add_edge g ~src:a ~dst:t ~cap:2);
  ignore (Netflow.Maxflow.add_edge g ~src:b ~dst:t ~cap:3);
  ignore (Netflow.Maxflow.add_edge g ~src:a ~dst:b ~cap:5);
  Alcotest.(check int) "max flow" 5 (Netflow.Maxflow.max_flow g ~source:s ~sink:t)

let test_maxflow_disconnected () =
  let g = Netflow.Maxflow.create () in
  let s = Netflow.Maxflow.add_node g in
  let t = Netflow.Maxflow.add_node g in
  Alcotest.(check int) "no path" 0 (Netflow.Maxflow.max_flow g ~source:s ~sink:t)

let test_min_cut () =
  let g = Netflow.Maxflow.create () in
  let s = Netflow.Maxflow.add_node g in
  let t = Netflow.Maxflow.add_node g in
  let mid = Netflow.Maxflow.add_node g in
  let e1 = Netflow.Maxflow.add_edge g ~src:s ~dst:mid ~cap:10 in
  let e2 = Netflow.Maxflow.add_edge g ~src:mid ~dst:t ~cap:3 in
  let v, cut = Netflow.Maxflow.min_cut g ~source:s ~sink:t in
  Alcotest.(check int) "cut value" 3 v;
  Alcotest.(check (list int)) "bottleneck edge" [ e2 ] cut;
  ignore e1

let test_set_cap_reset () =
  let g = Netflow.Maxflow.create () in
  let s = Netflow.Maxflow.add_node g in
  let t = Netflow.Maxflow.add_node g in
  let e = Netflow.Maxflow.add_edge g ~src:s ~dst:t ~cap:5 in
  Alcotest.(check int) "first" 5 (Netflow.Maxflow.max_flow g ~source:s ~sink:t);
  Netflow.Maxflow.set_cap g e 2;
  Alcotest.(check int) "after set_cap" 2 (Netflow.Maxflow.max_flow g ~source:s ~sink:t);
  Alcotest.(check int) "cap read" 2 (Netflow.Maxflow.cap g e)

let test_infinite_cap () =
  let g = Netflow.Maxflow.create () in
  let s = Netflow.Maxflow.add_node g in
  let t = Netflow.Maxflow.add_node g in
  ignore (Netflow.Maxflow.add_edge g ~src:s ~dst:t ~cap:Netflow.Maxflow.infinity);
  Alcotest.(check bool) "infinite flow" true
    (Netflow.Maxflow.is_infinite (Netflow.Maxflow.max_flow g ~source:s ~sink:t))

(* Property: on random DAG-ish graphs, the reported cut is valid (removing it
   disconnects s from t) and its capacity equals the flow value. *)
let arb_graph =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 8 in
      let* m = int_range 1 16 in
      let* edges = list_repeat m (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 1 5)) in
      return (n, edges))
  in
  QCheck.make gen

let prop_mincut_valid =
  QCheck.Test.make ~name:"min cut disconnects and matches flow value" ~count:300 arb_graph
    (fun (n, edges) ->
      let g = Netflow.Maxflow.create () in
      let nodes = Array.init n (fun _ -> Netflow.Maxflow.add_node g) in
      let eids =
        List.filter_map
          (fun (u, v, c) ->
            if u = v then None
            else Some ((u, v, c), Netflow.Maxflow.add_edge g ~src:nodes.(u) ~dst:nodes.(v) ~cap:c))
          edges
      in
      let v, cut = Netflow.Maxflow.min_cut g ~source:nodes.(0) ~sink:nodes.(n - 1) in
      let cut_cap =
        List.fold_left (fun acc ((_, _, c), id) -> if List.mem id cut then acc + c else acc) 0 eids
      in
      (* reachability without cut edges *)
      let adj = Array.make n [] in
      List.iter
        (fun ((u, w, _), id) -> if not (List.mem id cut) then adj.(u) <- w :: adj.(u))
        eids;
      let seen = Array.make n false in
      let rec dfs u =
        if not seen.(u) then begin
          seen.(u) <- true;
          List.iter dfs adj.(u)
        end
      in
      dfs 0;
      cut_cap = v && ((v = 0 && cut = []) || not seen.(n - 1)))

(* --- Linearize ---------------------------------------------------------------- *)

let parse = Harness.parse

let test_linear_queries () =
  List.iter
    (fun (s, expect) ->
      Alcotest.(check bool) s expect (Netflow.Linearize.is_linear (parse s)))
    [
      ("R(x,y), S(y,z)", true);
      ("R(x,y), S(y,z), T(z,u)", true);
      ("R(x), S(y), W(x,y)", true);
      ("R(x), S(y), T(z), W(x,y,z)", false);
      ("R(x,y), S(y,z), T(z,x)", false);
      ("A(x), R(x,y), S(y,z), T(z,x)", false);
    ]

let test_exact_orders_respect_exo () =
  (* Q triangle-unary is not linear, but with the dominated R exogenous an
     exact ordering exists (see Flow_res docs). *)
  let q = parse "A(x), R(x,y), S(y,z), T(z,x)" in
  Alcotest.(check bool) "no exact order all-endogenous" true
    (Netflow.Linearize.exact_orders q = []);
  let q' = Cq.set_exo q 1 true in
  Alcotest.(check bool) "exact order with R exogenous" true
    (Netflow.Linearize.exact_orders q' <> [])

let test_all_orders_count () =
  let q = parse "R(x,y), S(y,z), T(z,u)" in
  (* 3! / 2 = 3 orderings up to reversal *)
  Alcotest.(check int) "m!/2" 3 (List.length (Netflow.Linearize.all_orders q))

let test_spanning_vs_adjacent () =
  let q = parse "R(x,y), S(y,z), T(z,x)" in
  let order = [| 0; 1; 2 |] in
  Alcotest.(check (list string)) "spanning cut 0" [ "x"; "y" ]
    (Netflow.Linearize.spanning_vars q order 0);
  Alcotest.(check (list string)) "adjacent cut 0" [ "y" ]
    (Netflow.Linearize.adjacent_vars q order 0)

(* --- Flow encodings: differential against brute force -------------------------- *)

(* Schema-shaped random instances come from the shared Harness generator;
   multiplicities stay in 1..2 so bag semantics is exercised lightly. *)
let random_db rng rels nmax dom = Harness.random_db rng rels nmax dom ~max_bag:2

let flow_resilience sem q db =
  match Resilience.Solve.resilience_flow sem q db with
  | Some (Resilience.Solve.Solved a) -> Some a.Resilience.Solve.res_value
  | Some Resilience.Solve.Query_false -> None
  | _ -> Some (-1)

let prop_flow_exact_linear sem name =
  Harness.seeded_prop ~max_seed:100_000 ~count:150 name (fun rng ->
      let q = parse "R(x,y), S(y,z)" in
      let db = random_db rng [ ("R", 2); ("S", 2) ] 6 4 in
      flow_resilience sem q db = Resilience.Bruteforce.resilience sem q db)

let prop_flow_exact_linearizable =
  (* triangle-unary under set semantics: flow after domination-linearization *)
  Harness.seeded_prop ~max_seed:100_000 ~count:100
    "flow = brute force on linearizable QtriangleA (set)" (fun rng ->
      let q = parse "A(x), R(x,y), S(y,z), T(z,x)" in
      let db = random_db rng [ ("A", 1); ("R", 2); ("S", 2); ("T", 2) ] 4 3 in
      flow_resilience Resilience.Problem.Set q db
      = Resilience.Bruteforce.resilience Resilience.Problem.Set q db)

let prop_flow_ct_cw_upper_bound =
  Harness.seeded_prop ~max_seed:100_000 ~count:80
    "Flow-CT and Flow-CW upper-bound RES on the hard triangle" (fun rng ->
      let q = parse "R(x,y), S(y,z), T(z,x)" in
      let db = random_db rng [ ("R", 2); ("S", 2); ("T", 2) ] 4 3 in
      match Resilience.Bruteforce.resilience Resilience.Problem.Set q db with
      | None -> true
      | Some exact ->
        let check = function
          | Some { Resilience.Approx.value; tuples } ->
            value >= exact
            && Resilience.Solve.verify_contingency Resilience.Problem.Set q db tuples
          | None -> false
        in
        check (Resilience.Approx.flow_ct_res Resilience.Problem.Set q db)
        && check (Resilience.Approx.flow_cw_res Resilience.Problem.Set q db))

let prop_flow_rsp_exact =
  Harness.seeded_prop ~max_seed:100_000 ~count:100 "flow RSP = brute force on the 2-chain"
    (fun rng ->
      let q = parse "R(x,y), S(y,z)" in
      let db = random_db rng [ ("R", 2); ("S", 2) ] 5 3 in
      List.for_all
        (fun info ->
          let t = info.Database.id in
          let flow =
            match Resilience.Solve.responsibility_flow Resilience.Problem.Set q db t with
            | Some (Resilience.Solve.Solved a) -> Some a.Resilience.Solve.rsp_value
            | _ -> None
          in
          flow = Resilience.Bruteforce.responsibility Resilience.Problem.Set q db t)
        (Database.tuples db))

let prop_flow_rsp_exact_bag =
  Harness.seeded_prop ~max_seed:100_000 ~count:80 "flow RSP = brute force on the 2-chain (bag)"
    (fun rng ->
      let q = parse "R(x,y), S(y,z)" in
      let db = random_db rng [ ("R", 2); ("S", 2) ] 4 3 in
      List.for_all
        (fun info ->
          let t = info.Database.id in
          let flow =
            match Resilience.Solve.responsibility_flow Resilience.Problem.Bag q db t with
            | Some (Resilience.Solve.Solved a) -> Some a.Resilience.Solve.rsp_value
            | _ -> None
          in
          flow = Resilience.Bruteforce.responsibility Resilience.Problem.Bag q db t)
        (Database.tuples db))

let test_flow_exogenous_infinite () =
  (* all witnesses blocked by exogenous tuples: resilience undefined *)
  let db = Database.create () in
  ignore (Database.add ~exo:true db "R" [| 1; 2 |]);
  ignore (Database.add ~exo:true db "S" [| 2; 3 |]);
  let q = parse "R(x,y), S(y,z)" in
  match Resilience.Solve.resilience_flow Resilience.Problem.Set q db with
  | Some Resilience.Solve.No_contingency -> ()
  | _ -> Alcotest.fail "expected No_contingency"

let () =
  let q = Harness.qtest in
  Alcotest.run "netflow"
    [
      ( "maxflow",
        [
          Alcotest.test_case "basic" `Quick test_maxflow_basic;
          Alcotest.test_case "disconnected" `Quick test_maxflow_disconnected;
          Alcotest.test_case "min cut edges" `Quick test_min_cut;
          Alcotest.test_case "set_cap reset" `Quick test_set_cap_reset;
          Alcotest.test_case "infinite capacity" `Quick test_infinite_cap;
          q prop_mincut_valid;
        ] );
      ( "linearize",
        [
          Alcotest.test_case "linear queries" `Quick test_linear_queries;
          Alcotest.test_case "exogenous-aware exact orders" `Quick test_exact_orders_respect_exo;
          Alcotest.test_case "orders count" `Quick test_all_orders_count;
          Alcotest.test_case "spanning vs adjacent" `Quick test_spanning_vs_adjacent;
        ] );
      ( "flow_res",
        [
          q (prop_flow_exact_linear Resilience.Problem.Set "flow = brute force 2-chain (set)");
          q (prop_flow_exact_linear Resilience.Problem.Bag "flow = brute force 2-chain (bag)");
          q prop_flow_exact_linearizable;
          q prop_flow_ct_cw_upper_bound;
          q prop_flow_rsp_exact;
          q prop_flow_rsp_exact_bag;
          Alcotest.test_case "exogenous blocks cut" `Quick test_flow_exogenous_infinite;
        ] );
    ]
