(* Shared random-instance scaffolding for the test suites.

   Lives unlisted in the (tests ...) stanza, so every test executable links
   it; keep it dependency-light (Relalg + Resilience + Datagen only). *)

open Relalg
open Resilience

let query_pool () =
  [
    Queries.q2_chain ();
    Queries.q3_chain ();
    Queries.q2_star ();
    Queries.q_triangle ();
    Queries.q2_chain_sj ();
    Queries.q_confluence ();
  ]

(* A small random query-shaped instance with some exogenous tuples and a
   random semantics — the workhorse of the differential suites. *)
let random_case rng =
  let pool = query_pool () in
  let q = List.nth pool (Random.State.int rng (List.length pool)) in
  let count = 3 + Random.State.int rng 8 in
  let specs = Datagen.Random_inst.specs_of_query q ~count in
  let domain = 2 + Random.State.int rng 3 in
  let db = Datagen.Random_inst.db rng ~domain ~max_bag:2 specs in
  List.iter
    (fun info ->
      if Random.State.int rng 5 = 0 then Database.set_exo db info.Database.id true)
    (Database.tuples db);
  let sem = if Random.State.bool rng then Problem.Set else Problem.Bag in
  (sem, q, db)

(* A schema-shaped random instance (no query): [rels] is a (name, arity)
   list, each relation gets 1..nmax tuples over a [dom]-value domain with
   multiplicities up to [max_bag]. *)
let random_db rng rels nmax dom ~max_bag =
  let db = Database.create () in
  List.iter
    (fun (rel, arity) ->
      for _ = 1 to 1 + Random.State.int rng nmax do
        ignore
          (Database.add
             ~mult:(1 + Random.State.int rng max_bag)
             db rel
             (Array.init arity (fun _ -> Random.State.int rng dom)))
      done)
    rels;
  db

(* The reference ranking: a fresh encode + presolve + branch-and-bound per
   tuple, exactly what Solve.responsibility_ranking did before the session
   layer existed. *)
let reference_ranking ~exact sem q db =
  Database.tuples db
  |> List.filter_map (fun info ->
         let tid = info.Database.id in
         if Problem.tuple_exo q db tid then None
         else
           match Solve.responsibility ~exact sem q db tid with
           | Solve.Solved a -> Some (tid, a.Solve.rsp_value)
           | Solve.Query_false | Solve.No_contingency | Solve.Budget_exhausted _ -> None)
  |> List.stable_sort (fun (_, a) (_, b) -> compare a b)
