(* Shared scaffolding for the test suites.

   Lives unlisted in the (tests ...) stanza, so every test executable links
   it.  Three layers:
   - seeded-property plumbing (every random test draws a seed through QCheck
     and replays deterministically from it),
   - random query instances (the workhorse of the differential suites),
   - random covering programs (the shape every encoder emits, shared by the
     LP and session suites). *)

open Relalg
open Resilience

(* --- Seeded properties ----------------------------------------------------- *)

(* Deterministic RNG from a fixed seed — the one way test code makes random
   draws, so every failure replays from the printed counterexample seed. *)
let rng_of seed = Random.State.make [| seed |]

(* The one property shape the suites use: QCheck draws a seed, the body gets
   the RNG for it. *)
let seeded_prop ?(max_seed = 1_000_000) ~count name body =
  QCheck.Test.make ~name ~count (QCheck.int_range 0 max_seed) (fun seed -> body (rng_of seed))

let qtest = QCheck_alcotest.to_alcotest

let qtests = List.map QCheck_alcotest.to_alcotest

(* --- Parsing shortcuts ----------------------------------------------------- *)

let parse = Cq_parser.parse

let parse_into db s = Cq_parser.parse_with db s

let query_pool () =
  [
    Queries.q2_chain ();
    Queries.q3_chain ();
    Queries.q2_star ();
    Queries.q_triangle ();
    Queries.q2_chain_sj ();
    Queries.q_confluence ();
  ]

(* A small random query-shaped instance with some exogenous tuples and a
   random semantics — the workhorse of the differential suites. *)
let random_case rng =
  let pool = query_pool () in
  let q = List.nth pool (Random.State.int rng (List.length pool)) in
  let count = 3 + Random.State.int rng 8 in
  let specs = Datagen.Random_inst.specs_of_query q ~count in
  let domain = 2 + Random.State.int rng 3 in
  let db = Datagen.Random_inst.db rng ~domain ~max_bag:2 specs in
  List.iter
    (fun info ->
      if Random.State.int rng 5 = 0 then Database.set_exo db info.Database.id true)
    (Database.tuples db);
  let sem = if Random.State.bool rng then Problem.Set else Problem.Bag in
  (sem, q, db)

(* A schema-shaped random instance (no query): [rels] is a (name, arity)
   list, each relation gets 1..nmax tuples over a [dom]-value domain with
   multiplicities up to [max_bag]. *)
let random_db rng rels nmax dom ~max_bag =
  let db = Database.create () in
  List.iter
    (fun (rel, arity) ->
      for _ = 1 to 1 + Random.State.int rng nmax do
        ignore
          (Database.add
             ~mult:(1 + Random.State.int rng max_bag)
             db rel
             (Array.init arity (fun _ -> Random.State.int rng dom)))
      done)
    rels;
  db

(* --- Random covering programs ----------------------------------------------- *)

(* The covering-family shape every encoder emits: cheap bounded variables,
   unit coefficients, >= 1 rows.  Returns the model together with its
   variables so callers can build deltas or read weights back. *)
let random_covering_model ?(integer = false) rng ~nvars ~nrows =
  let m = Lp.Model.create () in
  let vars =
    Array.init nvars (fun _ ->
        Lp.Model.add_var ~integer ~upper:1 ~obj:(1 + Random.State.int rng 5) m)
  in
  for _ = 1 to nrows do
    let width = 1 + Random.State.int rng 3 in
    let picked = List.init width (fun _ -> vars.(Random.State.int rng nvars)) in
    let picked = List.sort_uniq compare picked in
    Lp.Model.add_constr m (List.map (fun v -> (v, 1)) picked) Lp.Model.Geq 1
  done;
  (m, vars)

let random_covering_frozen ?integer rng ~nvars ~nrows =
  let m, vars = random_covering_model ?integer rng ~nvars ~nrows in
  (Lp.Frozen.of_model m, vars)

(* The reference ranking: a fresh encode + presolve + branch-and-bound per
   tuple, exactly what Solve.responsibility_ranking did before the session
   layer existed. *)
let reference_ranking ~exact sem q db =
  Database.tuples db
  |> List.filter_map (fun info ->
         let tid = info.Database.id in
         if Problem.tuple_exo q db tid then None
         else
           match Solve.responsibility ~exact sem q db tid with
           | Solve.Solved a -> Some (tid, a.Solve.rsp_value)
           | Solve.Query_false | Solve.No_contingency | Solve.Budget_exhausted _ -> None)
  |> List.stable_sort (fun (_, a) (_, b) -> compare a b)
