(* Presolve soundness: the reductions must never change the optimum, and
   lifted solutions must be feasible in the original model — checked
   differentially on random datagen instances under both the float and the
   exact-rational branch-and-bound, plus hand-built edge cases. *)

open Resilience

(* Presolve consumes the frozen compiled form; freeze inline. *)
let presolve ?strip_bounds m = Lp.Presolve.presolve ?strip_bounds (Lp.Frozen.of_model m)

(* Random instances come from the shared Harness module — small query-shaped
   instances with some exogenous tuples; exogenous filtering is what
   produces the duplicate/dominated rows presolve feeds on. *)
let random_case = Harness.random_case

(* Presolve the raw ILP[RES*] encoding and solve both versions with the float
   branch-and-bound: optima must agree (mod the offset) and the lifted point
   must satisfy the raw model. *)
let float_roundtrip seed =
  let rng = Random.State.make [| seed |] in
  let sem, q, db = random_case rng in
  match Encode.res Encode.Ilp sem q db with
  | Encode.Trivial _ | Encode.Impossible -> true
  | Encode.Encoded enc -> (
    let m = enc.Encode.model in
    match presolve m with
    | Lp.Presolve.Unbounded -> false (* covering programs are never unbounded *)
    | Lp.Presolve.Infeasible -> (
      match (Lp.Solvers.Float_bb.solve m).Lp.Solvers.Float_bb.status with
      | Lp.Solvers.Float_bb.Infeasible -> true
      | _ -> false)
    | Lp.Presolve.Reduced (reduced, vm) -> (
      let a = Lp.Solvers.Float_bb.solve m in
      let b = Lp.Solvers.Float_bb.solve_frozen reduced in
      match
        ( a.Lp.Solvers.Float_bb.status,
          a.Lp.Solvers.Float_bb.objective,
          b.Lp.Solvers.Float_bb.status,
          b.Lp.Solvers.Float_bb.objective,
          b.Lp.Solvers.Float_bb.solution )
      with
      | Lp.Solvers.Float_bb.Optimal, Some o1, Lp.Solvers.Float_bb.Optimal, Some o2, Some s2
        ->
        let lifted = Lp.Presolve.lift vm ~of_int:float_of_int s2 in
        let offset = float_of_int (Lp.Presolve.obj_offset vm) in
        Float.abs (o1 -. (o2 +. offset)) < 1e-6 && Lp.Model.check_feasible m lifted
      | _ -> false))

let exact_roundtrip seed =
  let rng = Random.State.make [| seed |] in
  let sem, q, db = random_case rng in
  match Encode.res Encode.Ilp sem q db with
  | Encode.Trivial _ | Encode.Impossible -> true
  | Encode.Encoded enc -> (
    let m = enc.Encode.model in
    match presolve m with
    | Lp.Presolve.Unbounded -> false
    | Lp.Presolve.Infeasible -> (
      match (Lp.Solvers.Exact_bb.solve m).Lp.Solvers.Exact_bb.status with
      | Lp.Solvers.Exact_bb.Infeasible -> true
      | _ -> false)
    | Lp.Presolve.Reduced (reduced, vm) -> (
      let a = Lp.Solvers.Exact_bb.solve m in
      let b = Lp.Solvers.Exact_bb.solve_frozen reduced in
      match
        ( a.Lp.Solvers.Exact_bb.status,
          a.Lp.Solvers.Exact_bb.objective,
          b.Lp.Solvers.Exact_bb.status,
          b.Lp.Solvers.Exact_bb.objective )
      with
      | Lp.Solvers.Exact_bb.Optimal, Some o1, Lp.Solvers.Exact_bb.Optimal, Some o2 ->
        Numeric.Rat.equal o1
          (Numeric.Rat.add o2 (Numeric.Rat.of_int (Lp.Presolve.obj_offset vm)))
      | _ -> false))

(* End-to-end: Solve.resilience with presolve on vs off (float and exact),
   plus contingency validity of the presolved answer. *)
let end_to_end ~exact seed =
  let rng = Random.State.make [| seed |] in
  let sem, q, db = random_case rng in
  let on = Solve.resilience ~exact ~presolve:true sem q db in
  let off = Solve.resilience ~exact ~presolve:false sem q db in
  match (on, off) with
  | Solve.Solved a, Solve.Solved b ->
    a.Solve.res_value = b.Solve.res_value
    && Solve.verify_contingency sem q db a.Solve.contingency
  | Solve.Query_false, Solve.Query_false -> true
  | Solve.No_contingency, Solve.No_contingency -> true
  | _ -> false

let lp_roundtrip seed =
  let rng = Random.State.make [| seed |] in
  let sem, q, db = random_case rng in
  match
    ( Solve.resilience_lp ~presolve:true sem q db,
      Solve.resilience_lp ~presolve:false sem q db )
  with
  | Some a, Some b -> Float.abs (a -. b) < 1e-6
  | None, None -> true
  | _ -> false

let qcheck_cases =
  [
    QCheck.Test.make ~name:"float B&B: presolved optimum = raw, lift feasible" ~count:120
      (QCheck.int_range 0 1_000_000) float_roundtrip;
    QCheck.Test.make ~name:"exact B&B: presolved optimum = raw" ~count:100
      (QCheck.int_range 0 1_000_000) exact_roundtrip;
    QCheck.Test.make ~name:"Solve.resilience: presolve on = off (float)" ~count:120
      (QCheck.int_range 0 1_000_000)
      (end_to_end ~exact:false);
    QCheck.Test.make ~name:"Solve.resilience: presolve on = off (exact)" ~count:60
      (QCheck.int_range 0 1_000_000)
      (end_to_end ~exact:true);
    QCheck.Test.make ~name:"LP[RES*]: presolve on = off" ~count:120
      (QCheck.int_range 0 1_000_000) lp_roundtrip;
  ]

(* --- Hand-built edge cases ------------------------------------------------ *)

let reduced_exn = function
  | Lp.Presolve.Reduced (m, vm) -> (m, vm)
  | Lp.Presolve.Infeasible -> Alcotest.fail "unexpected Infeasible"
  | Lp.Presolve.Unbounded -> Alcotest.fail "unexpected Unbounded"

let test_empty_row_infeasible () =
  let m = Lp.Model.create () in
  ignore (Lp.Model.add_var ~obj:1 m);
  Lp.Model.add_constr m [] Lp.Model.Geq 1;
  match presolve m with
  | Lp.Presolve.Infeasible -> ()
  | _ -> Alcotest.fail "0 >= 1 must presolve to Infeasible"

let test_singleton_fixes () =
  (* x >= 1 with x <= 1 pins x = 1; its cost lands in the offset. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var ~integer:true ~upper:1 ~obj:3 m in
  let y = Lp.Model.add_var ~integer:true ~upper:1 ~obj:1 m in
  Lp.Model.add_constr m [ (x, 1) ] Lp.Model.Geq 1;
  Lp.Model.add_constr m [ (x, 1); (y, 1) ] Lp.Model.Geq 1;
  let reduced, vm = reduced_exn (presolve m) in
  Alcotest.(check int) "offset carries the fixed cost" 3 (Lp.Presolve.obj_offset vm);
  Alcotest.(check int) "everything solved away" 0 (Lp.Frozen.num_rows reduced);
  let lifted = Lp.Presolve.lift vm ~of_int:float_of_int (Array.make (Lp.Frozen.num_vars reduced) 0.) in
  Alcotest.(check bool) "lifted point feasible" true (Lp.Model.check_feasible m lifted)

let test_activity_infeasible () =
  (* x + y >= 3 with both bounded by 1 cannot hold. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var ~integer:true ~upper:1 ~obj:1 m in
  let y = Lp.Model.add_var ~integer:true ~upper:1 ~obj:1 m in
  Lp.Model.add_constr m [ (x, 1); (y, 1) ] Lp.Model.Geq 3;
  match presolve m with
  | Lp.Presolve.Infeasible -> ()
  | _ -> Alcotest.fail "activity bound must prove infeasibility"

let test_dominated_and_duplicate_rows () =
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var ~integer:true ~upper:1 ~obj:1 m in
  let y = Lp.Model.add_var ~integer:true ~upper:1 ~obj:1 m in
  let z = Lp.Model.add_var ~integer:true ~upper:1 ~obj:1 m in
  Lp.Model.add_constr m [ (x, 1); (y, 1); (z, 1) ] Lp.Model.Geq 1;
  Lp.Model.add_constr m [ (x, 1); (y, 1) ] Lp.Model.Geq 1;
  Lp.Model.add_constr m [ (x, 1); (y, 1) ] Lp.Model.Geq 1;
  let reduced, vm = reduced_exn (presolve m) in
  let s = Lp.Presolve.summary vm in
  Alcotest.(check int) "one row survives" 1 (Lp.Frozen.num_rows reduced);
  Alcotest.(check bool) "rows were removed" true (s.Lp.Presolve.rows_removed >= 2)

let test_strip_bounds_restores_row_structure () =
  (* A pure covering model: every binary bound is provably redundant, so the
     reduced model should carry no finite bounds at all (the dual simplex
     then pays one row per witness, as before the Model.add_var change). *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var ~integer:true ~upper:1 ~obj:1 m in
  let y = Lp.Model.add_var ~integer:true ~upper:1 ~obj:2 m in
  Lp.Model.add_constr m [ (x, 1); (y, 1) ] Lp.Model.Geq 1;
  let reduced, vm = reduced_exn (presolve m) in
  let unbounded v = Lp.Frozen.upper reduced v = None in
  Alcotest.(check bool) "all bounds stripped" true
    (List.for_all unbounded (List.init (Lp.Frozen.num_vars reduced) Fun.id));
  Alcotest.(check int) "stripped count" 2 (Lp.Presolve.summary vm).Lp.Presolve.bounds_stripped;
  (match presolve ~strip_bounds:false m with
  | Lp.Presolve.Reduced (keep, _) ->
    Alcotest.(check bool) "opt-out keeps bounds" true
      (List.exists
         (fun v -> Lp.Frozen.upper keep v <> None)
         (List.init (Lp.Frozen.num_vars keep) Fun.id))
  | _ -> Alcotest.fail "expected Reduced")

let test_zero_cost_bound_not_stripped () =
  (* With zero objective weight the truncation argument fails (the solver may
     legitimately return x = u, and with the bound gone x > u): the bound
     must survive. *)
  let m = Lp.Model.create () in
  let x = Lp.Model.add_var ~upper:1 ~obj:0 m in
  let y = Lp.Model.add_var ~upper:1 ~obj:1 m in
  Lp.Model.add_constr m [ (x, 1); (y, 1) ] Lp.Model.Geq 1;
  let reduced, _ = reduced_exn (presolve m) in
  Alcotest.(check bool) "zero-cost bound kept" true
    (List.exists
       (fun v -> Lp.Frozen.upper reduced v <> None)
       (List.init (Lp.Frozen.num_vars reduced) Fun.id))

let test_add_var_guards () =
  let m = Lp.Model.create () in
  Alcotest.check_raises "integer needs an upper bound"
    (Invalid_argument "Model.add_var: integer variable requires an upper bound") (fun () ->
      ignore (Lp.Model.add_var ~integer:true m));
  Alcotest.check_raises "negative upper rejected"
    (Invalid_argument "Model.add_var: negative upper bound") (fun () ->
      ignore (Lp.Model.add_var ~upper:(-1) m))

let () =
  let open Alcotest in
  run "presolve"
    [
      ( "edge-cases",
        [
          test_case "empty infeasible row" `Quick test_empty_row_infeasible;
          test_case "singleton fixes variable" `Quick test_singleton_fixes;
          test_case "activity infeasibility" `Quick test_activity_infeasible;
          test_case "duplicate/dominated rows" `Quick test_dominated_and_duplicate_rows;
          test_case "bound stripping" `Quick test_strip_bounds_restores_row_structure;
          test_case "zero-cost bound kept" `Quick test_zero_cost_bound_not_stripped;
          test_case "add_var guards" `Quick test_add_var_guards;
        ] );
      ("soundness", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
