(* resil — command-line front end: classify queries, compute resilience and
   responsibility over text-format instances, and hunt for IJP hardness
   certificates.

     resil classify "A(x), R(x,y), S(y,z), T(z,x)"
     resil resilience --data db.txt --bag "R(x,y), S(y,z)"
     resil responsibility --data db.txt --tuple "S(1,1)" "R(x,y), S(y,z)"
     resil certificate --domain 5 "R(x,y), R(y,z)"
*)

open Cmdliner
open Relalg
open Resilience

let semantics_of_bag bag = if bag then Problem.Bag else Problem.Set

let load_db data =
  match data with
  | Some path -> Database_io.load path
  | None -> Database.create ()

let parse_query db s =
  try Ok (Cq_parser.parse_with db s) with Invalid_argument msg -> Error msg

let pp_tuples db tids =
  List.iter (fun tid -> Printf.printf "  %s\n" (Database_io.print_tuple db tid)) tids

(* ----- lint helpers ------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let diag_json (d : Lp.Lint.diag) =
  Printf.sprintf {|{"code":"%s","severity":"%s","message":"%s"}|} d.Lp.Lint.code
    (Lp.Lint.severity_name d.Lp.Lint.severity)
    (json_escape d.Lp.Lint.message)

let diags_json ds = "[" ^ String.concat "," (List.map diag_json ds) ^ "]"

let stats_json (s : Lp.Lint.stats) =
  Printf.sprintf
    {|{"vars":%d,"constraints":%d,"nonzeros":%d,"integer":%d,"bounded":%d,"min_abs_coeff":%d,"max_abs_coeff":%d,"unit_covering":%b}|}
    s.Lp.Lint.nvars s.Lp.Lint.nconstrs s.Lp.Lint.nnz s.Lp.Lint.integer_count
    s.Lp.Lint.bounded_count s.Lp.Lint.min_abs_coeff s.Lp.Lint.max_abs_coeff
    s.Lp.Lint.unit_covering

let presolve_json (s : Lp.Presolve.summary) =
  Printf.sprintf {|{"rows_removed":%d,"vars_fixed":%d,"bounds_stripped":%d,"passes":%d}|}
    s.Lp.Presolve.rows_removed s.Lp.Presolve.vars_fixed s.Lp.Presolve.bounds_stripped
    s.Lp.Presolve.passes

let features_json (f : Lp.Struct.features) =
  Printf.sprintf
    {|{"rows":%d,"cols":%d,"nnz":%d,"unit_coeffs":%b,"zero_one":%b,"neg_entries":%d,"max_col_nnz":%d,"max_row_nnz":%d,"avg_col_nnz":%g,"geq_rows":%d,"leq_rows":%d,"eq_rows":%d,"root_lp":%s,"root_fractional":%s}|}
    f.Lp.Struct.rows f.Lp.Struct.cols f.Lp.Struct.nnz f.Lp.Struct.unit_coeffs
    f.Lp.Struct.zero_one f.Lp.Struct.neg_entries f.Lp.Struct.max_col_nnz
    f.Lp.Struct.max_row_nnz f.Lp.Struct.avg_col_nnz f.Lp.Struct.geq_rows
    f.Lp.Struct.leq_rows f.Lp.Struct.eq_rows
    (match f.Lp.Struct.root_lp with Some v -> Printf.sprintf "%g" v | None -> "null")
    (match f.Lp.Struct.root_fractional with Some n -> string_of_int n | None -> "null")

let cert_json (c : Lp.Struct.t) =
  Printf.sprintf {|{"verdict":"%s","witness":%s,"structural":%b,"features":%s}|}
    (Lp.Struct.verdict_name c)
    (match c.Lp.Struct.verdict with
    | Lp.Struct.Integral w -> "\"" ^ json_escape (Lp.Struct.witness_name w) ^ "\""
    | Lp.Struct.Fractional _ | Lp.Struct.Unknown -> "null")
    (Lp.Struct.structural c)
    (features_json c.Lp.Struct.features)

let pp_diags header ds =
  Printf.printf "%s:\n" header;
  if ds = [] then print_endline "  (none)"
  else List.iter (fun d -> Format.printf "  %a@." Lp.Lint.pp_diag d) ds

(* Exit-code contract shared by [lint] and [analyze]: 0 = clean (notes, and
   warnings without --strict, are tolerated), 1 = at least one error, or any
   warning under --strict, 2 = usage error (unparsable query). *)
let diag_exit ~strict ds =
  if Lp.Lint.errors ds <> [] then 1
  else if strict && List.exists (fun d -> d.Lp.Lint.severity = Lp.Lint.Warning) ds then 1
  else 0

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ] ~doc:"Exit 1 on warnings too, not only on errors")

(* The [--lint] pre-pass of the solving subcommands: diagnostics go to stderr
   so stdout stays the solver's. *)
let lint_to_stderr sem q db =
  List.iter
    (fun d -> Format.eprintf "%a@." Lp.Lint.pp_diag d)
    (Query_lint.lint_query sem q @ Query_lint.lint_instance sem q db)

let lint_arg =
  Arg.(
    value & flag
    & info [ "lint" ] ~doc:"Print query/instance diagnostics (to stderr) before solving")

(* ----- telemetry ---------------------------------------------------------- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record solver telemetry and write a Chrome trace-event JSON to FILE (load in \
           Perfetto; one track per domain)")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print flat telemetry JSON (counters and per-span totals) to stdout after the \
           command's own output")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Arm the metrics plane for the command and print the Prometheus text exposition \
           (latency histograms over a fixed bucket ladder, gauges, counters) to stdout \
           after the command's own output")

let runlog_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "runlog" ] ~docv:"FILE"
        ~doc:
          "Append one JSON line per ILP solve to FILE: the structural feature vector, the \
           dispatch path taken (certified/relax/bb), and the observed cost — the training \
           corpus for the adaptive portfolio")

(* With [--trace]/[--stats] the whole command body runs under an installed
   sink and one top-level span, so the exported trace covers the command's
   wall time.  [--metrics] arms the metrics plane (without span buffering)
   and prints the Prometheus exposition at the end; [--runlog FILE] opens
   the solve run-log for the command's duration.  With none of the flags
   this is just [f ()] and every instrumented site in the solve stack stays
   a single atomic load. *)
let with_telemetry ?(metrics = false) ?(runlog = None) ~trace ~stats name f =
  if trace = None && (not stats) && (not metrics) && runlog = None then f ()
  else begin
    let sink = trace <> None || stats in
    if sink then Obs.Sink.install ();
    if metrics then Obs.Sink.arm_metrics ();
    (match runlog with Some path -> Obs.Runlog.enable path | None -> ());
    let code = if sink then Obs.Trace.with_span name f else f () in
    (match runlog with Some _ -> Obs.Runlog.disable () | None -> ());
    if sink then begin
      let spans = Obs.Trace.drain () in
      Obs.Sink.uninstall ();
      (match trace with Some path -> Obs.Export.chrome_to_file path spans | None -> ());
      if stats then print_endline (Obs.Export.stats_json spans)
    end;
    if metrics then begin
      print_string (Obs.Metrics.prometheus ());
      Obs.Sink.disarm_metrics ()
    end;
    code
  end

(* ----- classify --------------------------------------------------------- *)

let classify_cmd =
  let run query =
    let db = Database.create () in
    match parse_query db query with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok q ->
      List.iter
        (fun sem -> print_endline (Analysis.describe sem q))
        [ Problem.Set; Problem.Bag ];
      if Cq.self_join_free q then begin
        Array.iteri
          (fun i (a : Cq.atom) ->
            List.iter
              (fun sem ->
                let c = Analysis.rsp_complexity sem q ~t_atom:i in
                Printf.printf "RSP for tuples of %s under %s semantics: %s\n" a.Cq.rel
                  (match sem with Problem.Set -> "set" | Problem.Bag -> "bag")
                  (match c with
                  | Analysis.Ptime -> "PTIME"
                  | Analysis.Npc -> "NP-complete"
                  | Analysis.Unknown -> "open"))
              [ Problem.Set; Problem.Bag ])
          q.Cq.atoms
      end;
      0
  in
  let query = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify a conjunctive query's RES/RSP complexity (Table 1)")
    Term.(const run $ query)

(* ----- resilience ------------------------------------------------------- *)

let data_arg =
  Arg.(value & opt (some file) None & info [ "data"; "d" ] ~docv:"FILE" ~doc:"Instance file")

let bag_arg = Arg.(value & flag & info [ "bag" ] ~doc:"Bag semantics (multiplicities count)")

let exact_arg = Arg.(value & flag & info [ "exact" ] ~doc:"Exact rational arithmetic (slow)")

(* ----- lint -------------------------------------------------------------- *)

let lint_cmd =
  let run data bag strict json trace stats metrics query =
    with_telemetry ~metrics ~trace ~stats "resil.lint" @@ fun () ->
    let db = load_db data in
    match parse_query db query with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok q ->
      let sem = semantics_of_bag bag in
      let query_diags = Query_lint.lint_query sem q in
      let have_db = data <> None in
      let instance_diags = if have_db then Query_lint.lint_instance sem q db else [] in
      (* Model-level view: build ILP[RES*] and lint/presolve it without
         solving. *)
      let model_part =
        if not have_db then None
        else
          match Encode.res Encode.Ilp sem q db with
          | Encode.Trivial _ | Encode.Impossible -> None
          | Encode.Encoded enc ->
            let m = Lp.Frozen.of_model enc.Encode.model in
            let summary =
              match Lp.Presolve.presolve m with
              | Lp.Presolve.Reduced (_, vm) -> Some (Lp.Presolve.summary vm)
              | Lp.Presolve.Infeasible | Lp.Presolve.Unbounded -> None
            in
            Some (Lp.Lint.lint m, Lp.Lint.stats m, summary)
      in
      if json then
        print_endline
          (Printf.sprintf
             {|{"query":"%s","semantics":"%s","diagnostics":{"query":%s,"instance":%s,"model":%s},"model_stats":%s,"presolve":%s}|}
             (json_escape (Cq.to_string q))
             (if bag then "bag" else "set")
             (diags_json query_diags) (diags_json instance_diags)
             (match model_part with Some (md, _, _) -> diags_json md | None -> "[]")
             (match model_part with Some (_, st, _) -> stats_json st | None -> "null")
             (match model_part with
             | Some (_, _, Some ps) -> presolve_json ps
             | Some (_, _, None) | None -> "null"))
      else begin
        Printf.printf "query: %s\n" (Cq.to_string q);
        pp_diags "query diagnostics" query_diags;
        if have_db then begin
          pp_diags "instance diagnostics" instance_diags;
          match model_part with
          | None -> print_endline "ILP[RES*] model: none (query trivial or no contingency)"
          | Some (model_diags, st, summary) ->
            Printf.printf "ILP[RES*] model: %d vars (%d integer), %d rows, %d nonzeros%s\n"
              st.Lp.Lint.nvars st.Lp.Lint.integer_count st.Lp.Lint.nconstrs st.Lp.Lint.nnz
              (if st.Lp.Lint.unit_covering then ", unit covering" else "");
            pp_diags "model diagnostics" model_diags;
            (match summary with
            | Some s ->
              Printf.printf
                "presolve: %d rows removed, %d vars fixed, %d bounds stripped, %d passes\n"
                s.Lp.Presolve.rows_removed s.Lp.Presolve.vars_fixed
                s.Lp.Presolve.bounds_stripped s.Lp.Presolve.passes
            | None -> print_endline "presolve: model decided without solving")
        end
      end;
      let all =
        query_diags @ instance_diags
        @ match model_part with Some (md, _, _) -> md | None -> []
      in
      diag_exit ~strict all
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output") in
  let query = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Lint a query (and, with $(b,--data), an instance): structural defects, dichotomy \
          advisories, ILP model diagnostics and the presolve summary. Exit codes: 0 clean, \
          1 any error (or any warning with $(b,--strict)), 2 unparsable query.")
    Term.(
      const run $ data_arg $ bag_arg $ strict_arg $ json $ trace_arg $ stats_arg
      $ metrics_arg $ query)

(* ----- analyze ------------------------------------------------------------ *)

let complexity_name = function
  | Analysis.Ptime -> "ptime"
  | Analysis.Npc -> "np-complete"
  | Analysis.Unknown -> "unknown"

let analyze_cmd =
  let run data bag strict json trace stats metrics query =
    with_telemetry ~metrics ~trace ~stats "resil.analyze" @@ fun () ->
    let db = load_db data in
    match parse_query db query with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok q ->
      let sem = semantics_of_bag bag in
      let have_db = data <> None in
      (* Cross-layer pass: dichotomy verdict vs matrix certificate. *)
      let vreport = if have_db then Some (Validate.validate sem q db) else None in
      let cert = Option.bind vreport (fun r -> r.Validate.cert) in
      let complexity =
        match vreport with
        | Some r -> r.Validate.complexity
        | None -> Analysis.res_complexity sem q
      in
      let query_diags = Validate.refine_query_diags cert (Query_lint.lint_query sem q) in
      let instance_diags = if have_db then Query_lint.lint_instance sem q db else [] in
      let model_part =
        if not have_db then None
        else
          match Encode.res Encode.Ilp sem q db with
          | Encode.Trivial _ | Encode.Impossible -> None
          | Encode.Encoded enc ->
            let m = Lp.Frozen.of_model enc.Encode.model in
            Some (Lp.Lint.lint m, Lp.Lint.stats m)
      in
      let model_diags = match model_part with Some (md, _) -> md | None -> [] in
      let vdiags = match vreport with Some r -> r.Validate.diags | None -> [] in
      (* One merged report in the shared (severity, code, message) order. *)
      let all = Lp.Lint.sort_diags (query_diags @ instance_diags @ model_diags @ vdiags) in
      if json then
        print_endline
          (Printf.sprintf
             {|{"query":"%s","semantics":"%s","complexity":"%s","dichotomy":"%s","certificate":%s,"model_stats":%s,"diagnostics":%s}|}
             (json_escape (Cq.to_string q))
             (if bag then "bag" else "set")
             (complexity_name complexity)
             (json_escape (Analysis.describe sem q))
             (match cert with Some c -> cert_json c | None -> "null")
             (match model_part with Some (_, st) -> stats_json st | None -> "null")
             (diags_json all))
      else begin
        Printf.printf "query: %s\n" (Cq.to_string q);
        Printf.printf "dichotomy: %s\n" (Analysis.describe sem q);
        (match cert with
        | Some c -> Printf.printf "matrix: %s\n" (Lp.Struct.describe c)
        | None ->
          if have_db then
            print_endline "matrix: none (query trivial on the instance, or no contingency)"
          else print_endline "matrix: none (no --data instance given)");
        (match model_part with
        | Some (_, st) ->
          Printf.printf "model: %d vars (%d integer), %d rows, %d nonzeros%s\n"
            st.Lp.Lint.nvars st.Lp.Lint.integer_count st.Lp.Lint.nconstrs st.Lp.Lint.nnz
            (if st.Lp.Lint.unit_covering then ", unit covering" else "")
        | None -> ());
        pp_diags "diagnostics" all
      end;
      diag_exit ~strict all
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output") in
  let query = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Unified static report: query/instance/model diagnostics, the dichotomy verdict, \
          the matrix-structure integrality certificate, and their cross-layer consistency \
          (V-codes). Exit codes as for $(b,lint): 0 clean, 1 any error (or any warning \
          with $(b,--strict)), 2 unparsable query.")
    Term.(
      const run $ data_arg $ bag_arg $ strict_arg $ json $ trace_arg $ stats_arg
      $ metrics_arg $ query)

(* ----- solution enumeration (shared by resilience/responsibility) -------- *)

let all_arg =
  Arg.(
    value & flag
    & info [ "all-solutions" ]
        ~doc:
          "Enumerate $(i,every) minimum contingency set (warm no-good cut chain) and the \
           per-tuple criticality table, instead of one optimal set")

let nsets_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "n" ] ~docv:"N"
        ~doc:
          "Report only the first N sets (implies $(b,--all-solutions)). Truncation is \
           presentation-level: the family is still enumerated and counted in full, so the \
           output is a prefix of the unlimited one.")

let diverse_arg =
  Arg.(
    value & flag
    & info [ "diverse" ]
        ~doc:
          "Reorder the family by greedy max-min symmetric difference before truncating, so \
           a $(b,-n) prefix spreads over the family instead of clustering")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Domains to spread the solves over (0 = all recommended domains). The output is \
           identical for every N.")

let crit_row_json db (c : Enumerate.criticality) =
  Printf.sprintf {|{"tuple":"%s","count":%d,"total":%d,"criticality":%g,"exact":"%s"}|}
    (json_escape (Database_io.print_tuple db c.Enumerate.crit_tuple))
    c.Enumerate.crit_count c.Enumerate.crit_total c.Enumerate.crit_float
    (Numeric.Rat.to_string c.Enumerate.crit_exact)

let enum_stats_json (s : Enumerate.stats) =
  Printf.sprintf
    {|{"cuts":%d,"solves":%d,"nodes":%d,"first_pivots":%d,"cut_pivots":%d,"refactors":%d,"solve_ms":%g}|}
    s.Enumerate.cuts s.Enumerate.solves s.Enumerate.nodes s.Enumerate.first_pivots
    s.Enumerate.cut_pivots s.Enumerate.refactors
    (s.Enumerate.time *. 1000.)

(* The sets actually shown: optionally diversity-reordered, then the [-n]
   prefix.  The count always reports the full family. *)
let family_shown ~nsets ~diverse (fam : Enumerate.family) =
  let sets = if diverse then Enumerate.diverse fam.Enumerate.sets else fam.Enumerate.sets in
  match nsets with Some n -> Enumerate.take n sets | None -> sets

let print_family_json db ~nsets ~diverse (fam : Enumerate.family) =
  let set_json s =
    "["
    ^ String.concat ","
        (List.map
           (fun tid -> "\"" ^ json_escape (Database_io.print_tuple db tid) ^ "\"")
           s)
    ^ "]"
  in
  print_endline
    (Printf.sprintf
       {|{"status":"solved","value":%d,"count":%d,"exhausted":%b,"sets":[%s],"criticality":[%s],"stats":%s}|}
       fam.Enumerate.opt
       (List.length fam.Enumerate.sets)
       fam.Enumerate.exhausted
       (String.concat "," (List.map set_json (family_shown ~nsets ~diverse fam)))
       (String.concat "," (List.map (crit_row_json db) (Enumerate.criticality fam)))
       (enum_stats_json fam.Enumerate.fstats))

let print_family_text db ~nsets ~diverse label (fam : Enumerate.family) =
  let total = List.length fam.Enumerate.sets in
  Printf.printf "%s = %d  (%d minimum contingency set%s%s; %d cuts, %d solves)\n" label
    fam.Enumerate.opt total
    (if total = 1 then "" else "s")
    (if fam.Enumerate.exhausted then "" else ", family may be incomplete")
    fam.Enumerate.fstats.Enumerate.cuts fam.Enumerate.fstats.Enumerate.solves;
  let shown = family_shown ~nsets ~diverse fam in
  List.iteri
    (fun i s ->
      Printf.printf "set %d:\n" (i + 1);
      if s = [] then print_endline "  (empty set)" else pp_tuples db s)
    shown;
  if List.length shown < total then
    Printf.printf "  ... %d more set%s not shown\n"
      (total - List.length shown)
      (if total - List.length shown = 1 then "" else "s");
  (match Enumerate.criticality fam with
  | [] -> ()
  | crits ->
    Printf.printf "%-44s %9s %14s\n" "tuple" "in-sets" "criticality";
    List.iter
      (fun (c : Enumerate.criticality) ->
        Printf.printf "%-44s %4d/%-4d %14g  (= %s)\n"
          (Database_io.print_tuple db c.Enumerate.crit_tuple)
          c.Enumerate.crit_count c.Enumerate.crit_total c.Enumerate.crit_float
          (Numeric.Rat.to_string c.Enumerate.crit_exact))
      crits)

let resilience_cmd =
  let run data bag exact lp lint all nsets diverse json jobs trace stats metrics runlog query =
    with_telemetry ~metrics ~runlog ~trace ~stats "resil.resilience" @@ fun () ->
    let db = load_db data in
    match parse_query db query with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok q ->
      let sem = semantics_of_bag bag in
      if lint then lint_to_stderr sem q db;
      if all || nsets <> None then begin
        match Solve.enumerate_resilience ~exact ~jobs sem q db with
        | Solve.Solved fam ->
          if json then print_family_json db ~nsets ~diverse fam
          else print_family_text db ~nsets ~diverse "RES*" fam;
          0
        | Solve.Query_false ->
          if json then print_endline {|{"status":"query_false","value":0}|}
          else print_endline "query is false on this instance (resilience 0)";
          0
        | Solve.No_contingency ->
          if json then print_endline {|{"status":"no_contingency"}|}
          else print_endline "no contingency set exists (exogenous tuples block every option)";
          1
        | Solve.Budget_exhausted _ ->
          if json then print_endline {|{"status":"budget_exhausted"}|}
          else print_endline "budget exhausted";
          1
      end
      else if lp then begin
        match Solve.resilience_lp ~exact sem q db with
        | Some v ->
          Printf.printf "LP[RES*] = %g\n" v;
          0
        | None ->
          print_endline "LP[RES*]: no program (query false or no contingency)";
          1
      end
      else begin
        match Solve.resilience ~exact sem q db with
        | Solve.Solved a ->
          Printf.printf "RES* = %d  (root LP %g, %s, %d nodes%s)\n" a.Solve.res_value
            a.Solve.res_stats.Solve.root_lp
            (if a.Solve.res_stats.Solve.root_integral then "integral" else "fractional")
            a.Solve.res_stats.Solve.nodes
            (if a.Solve.res_stats.Solve.certified then ", certified" else "");
          print_endline "contingency set:";
          pp_tuples db a.Solve.contingency;
          0
        | Solve.Query_false ->
          print_endline "query is false on this instance (resilience 0)";
          0
        | Solve.No_contingency ->
          print_endline "no contingency set exists (exogenous tuples block every option)";
          1
        | Solve.Budget_exhausted _ ->
          print_endline "budget exhausted";
          1
      end
  in
  let lp = Arg.(value & flag & info [ "lp" ] ~doc:"Solve the LP relaxation only") in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Machine-readable JSON output (with $(b,--all-solutions))")
  in
  let query = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v
    (Cmd.info "resilience" ~doc:"Minimum tuple deletions falsifying the query (ILP[RES*])")
    Term.(
      const run $ data_arg $ bag_arg $ exact_arg $ lp $ lint_arg $ all_arg $ nsets_arg
      $ diverse_arg $ json $ jobs_arg $ trace_arg $ stats_arg $ metrics_arg $ runlog_arg
      $ query)

(* ----- responsibility --------------------------------------------------- *)

let responsibility_cmd =
  let run data bag exact lint all nsets diverse json jobs trace stats metrics runlog tuple query =
    with_telemetry ~metrics ~runlog ~trace ~stats "resil.responsibility" @@ fun () ->
    let db = load_db data in
    match parse_query db query with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok q -> (
      let tid =
        match Database_io.parse_line db tuple with
        | Some tid ->
          (* parse_line inserted a copy; undo the multiplicity bump if it
             already existed, or remove it if it did not. *)
          let info = Database.tuple db tid in
          if info.Database.mult > 1 then Database.set_mult db tid (info.Database.mult - 1)
          else Database.remove db tid;
          Database.find db info.Database.rel info.Database.args
        | None -> None
      in
      match tid with
      | None ->
        prerr_endline "responsibility tuple not found in the instance";
        1
      | Some tid when all || nsets <> None -> (
        let sem = semantics_of_bag bag in
        if lint then lint_to_stderr sem q db;
        match Solve.enumerate_responsibility ~exact ~jobs sem q db tid with
        | Solve.Solved fam ->
          if json then print_family_json db ~nsets ~diverse fam
          else print_family_text db ~nsets ~diverse "RSP*" fam;
          0
        | Solve.Query_false ->
          if json then print_endline {|{"status":"query_false"}|}
          else print_endline "query is false on this instance";
          1
        | Solve.No_contingency ->
          if json then print_endline {|{"status":"no_contingency"}|}
          else print_endline "tuple cannot be made counterfactual";
          1
        | Solve.Budget_exhausted _ ->
          if json then print_endline {|{"status":"budget_exhausted"}|}
          else print_endline "budget exhausted";
          1)
      | Some tid -> (
        let sem = semantics_of_bag bag in
        if lint then lint_to_stderr sem q db;
        match Solve.responsibility ~exact sem q db tid with
        | Solve.Solved a ->
          Printf.printf "RSP* = %d  (responsibility %g)\n" a.Solve.rsp_value
            (1.0 /. (1.0 +. float_of_int a.Solve.rsp_value));
          print_endline "contingency set:";
          pp_tuples db a.Solve.responsibility_set;
          0
        | Solve.Query_false ->
          print_endline "query is false on this instance";
          1
        | Solve.No_contingency ->
          print_endline "tuple cannot be made counterfactual";
          1
        | Solve.Budget_exhausted _ ->
          print_endline "budget exhausted";
          1))
  in
  let tuple =
    Arg.(
      required
      & opt (some string) None
      & info [ "tuple"; "t" ] ~docv:"TUPLE" ~doc:"Responsibility tuple, e.g. \"S(1,1)\"")
  in
  let query = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Machine-readable JSON output (with $(b,--all-solutions))")
  in
  Cmd.v
    (Cmd.info "responsibility"
       ~doc:"Minimum contingency set making a tuple counterfactual (ILP[RSP*])")
    Term.(
      const run $ data_arg $ bag_arg $ exact_arg $ lint_arg $ all_arg $ nsets_arg
      $ diverse_arg $ json $ jobs_arg $ trace_arg $ stats_arg $ metrics_arg $ runlog_arg
      $ tuple $ query)

(* ----- rank -------------------------------------------------------------- *)

let rank_cmd =
  let run data bag exact lint all json jobs basis trace stats metrics runlog query =
    with_telemetry ~metrics ~runlog ~trace ~stats "resil.rank" @@ fun () ->
    let db = load_db data in
    match parse_query db query with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok q ->
      let sem = semantics_of_bag bag in
      if lint then lint_to_stderr sem q db;
      (* One session: witnesses, encoding and presolve are paid once, and
         every tuple's ILP[RSP*] is a warm-started delta-solve — spread
         over [jobs] domains when asked (output is identical). *)
      let session = Session.create ~exact ~basis sem q db in
      (* Always the pool path — at [jobs = 1] it degenerates to the
         sequential loop but emits the same telemetry shape, so --stats
         output is schema-identical for every N. *)
      let ranked = Session.ranking_par ~jobs session in
      (* [--all-solutions]: also enumerate the resilience family on the same
         session and grade each ranked tuple by criticality — the fraction
         of minimum contingency sets it appears in. *)
      let crit_of =
        if not all then fun _ -> None
        else begin
          let tbl = Hashtbl.create 16 in
          (match Session.enumerate_resilience ~jobs session with
          | Session.Solved fam ->
            List.iter
              (fun (c : Enumerate.criticality) ->
                Hashtbl.replace tbl c.Enumerate.crit_tuple c.Enumerate.crit_float)
              (Enumerate.criticality fam)
          | Session.Query_false | Session.No_contingency | Session.Budget_exhausted _ ->
            ());
          fun tid -> Some (Option.value (Hashtbl.find_opt tbl tid) ~default:0.)
        end
      in
      if json then begin
        let row (tid, k, rho) =
          match crit_of tid with
          | Some c ->
            Printf.sprintf {|{"tuple":"%s","k":%d,"responsibility":%g,"criticality":%g}|}
              (json_escape (Database_io.print_tuple db tid))
              k rho c
          | None ->
            Printf.sprintf {|{"tuple":"%s","k":%d,"responsibility":%g}|}
              (json_escape (Database_io.print_tuple db tid))
              k rho
        in
        print_endline ("[" ^ String.concat "," (List.map row ranked) ^ "]");
        0
      end
      else begin
        match ranked with
        | [] ->
          print_endline "no rankable tuples (query false, or no endogenous witness tuple)";
          1
        | ranked ->
          if all then begin
            Printf.printf "%-44s %5s %14s %14s\n" "tuple" "k" "responsibility" "criticality";
            List.iter
              (fun (tid, k, rho) ->
                Printf.printf "%-44s %5d %14g %14g\n" (Database_io.print_tuple db tid) k rho
                  (Option.value (crit_of tid) ~default:0.))
              ranked
          end
          else begin
            Printf.printf "%-44s %5s %14s\n" "tuple" "k" "responsibility";
            List.iter
              (fun (tid, k, rho) ->
                Printf.printf "%-44s %5d %14g\n" (Database_io.print_tuple db tid) k rho)
              ranked
          end;
          0
      end
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output") in
  let jobs =
    Arg.(
      value
      & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Domains to spread the per-tuple solves over (0 = all recommended domains). The \
             ranking is identical for every N.")
  in
  let basis =
    let choice =
      Arg.enum [ ("auto", `Auto); ("sparse", `Sparse); ("dense", `Dense) ]
    in
    Arg.(
      value
      & opt choice `Auto
      & info [ "basis" ] ~docv:"KERNEL"
          ~doc:
            "Simplex basis kernel: $(b,sparse) LU (the default behind $(b,auto)) or the \
             $(b,dense) reference inverse. The ranking is identical for either.")
  in
  let query = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v
    (Cmd.info "rank"
       ~doc:
         "Rank every endogenous tuple by responsibility for the query answer (minimal \
          contingency size k, responsibility 1/(1+k), best first), batched through one \
          warm-started solve session. With $(b,--all-solutions), also enumerate the \
          resilience family and add each tuple's criticality (fraction of minimum \
          contingency sets containing it).")
    Term.(
      const run $ data_arg $ bag_arg $ exact_arg $ lint_arg $ all_arg $ json $ jobs $ basis
      $ trace_arg $ stats_arg $ metrics_arg $ runlog_arg $ query)

(* ----- explain ----------------------------------------------------------- *)

let explain_cmd =
  let run data bag query =
    let db = load_db data in
    match parse_query db query with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok q ->
      let sem = semantics_of_bag bag in
      print_string (Instance.explain sem q db);
      (match Relalg.Provenance.read_once q db with
      | Some e ->
        Format.printf "instance: read-once provenance factorization:@.  %a@."
          (Relalg.Provenance.pp ~db) e
      | None -> ());
      0
  in
  let query = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain an instance: dichotomy verdict plus data-level structure (read-once \
          provenance, functional dependencies, induced rewrites) that predicts easy solving")
    Term.(const run $ data_arg $ bag_arg $ query)

(* ----- certificate ------------------------------------------------------ *)

let certificate_cmd =
  let run domain generators query =
    let db = Database.create () in
    match parse_query db query with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok q -> (
      let config = { Ijp.Search.default_config with domain; max_generators = generators } in
      match Ijp.Search.find ~config q with
      | Some (jp, stats) ->
        Printf.printf "NP-completeness certificate found in %.2fs (%d candidates):\n\n"
          stats.Ijp.Search.elapsed stats.Ijp.Search.candidates;
        Format.printf "%a@." Ijp.Join_path.pp jp;
        0
      | None ->
        Printf.printf
          "no IJP certificate with domain %d and <= %d generator witnesses (proves nothing)\n"
          domain generators;
        1)
  in
  let domain =
    Arg.(value & opt int 5 & info [ "domain" ] ~docv:"D" ~doc:"Constants range over 1..D")
  in
  let generators =
    Arg.(value & opt int 4 & info [ "generators" ] ~docv:"K" ~doc:"Max generator witnesses")
  in
  let query = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v
    (Cmd.info "certificate"
       ~doc:"Search for an Independent Join Path proving RES(Q) NP-complete (Section 7)")
    Term.(const run $ domain $ generators $ query)

(* ----- fuzz -------------------------------------------------------------- *)

let fuzz_disc_json (d : Check.Fuzz.discrepancy) =
  Printf.sprintf {|{"oracle":"%s","profile":"%s","case_seed":%d,"message":"%s","saved":%s}|}
    (json_escape d.Check.Fuzz.oracle)
    (json_escape d.Check.Fuzz.case.Check.Gen.profile)
    d.Check.Fuzz.case.Check.Gen.seed
    (json_escape d.Check.Fuzz.message)
    (match d.Check.Fuzz.saved with
    | Some p -> "\"" ^ json_escape p ^ "\""
    | None -> "null")

let fuzz_cmd =
  let run seconds instances seed oracle_names json corpus no_shrink replay trace stats metrics =
    with_telemetry ~metrics ~trace ~stats "resil.fuzz" @@ fun () ->
    if List.exists (fun n -> n = "help" || n = "list") oracle_names then begin
      List.iter
        (fun (o : Check.Oracle.t) ->
          Printf.printf "%-20s %s\n" o.Check.Oracle.name o.Check.Oracle.descr)
        Check.Oracle.all;
      0
    end
    else if replay then begin
      let dir = Option.value corpus ~default:"examples/fuzz-corpus" in
      let results = Check.Fuzz.replay_corpus ~dir in
      let failing =
        List.filter
          (fun r ->
            match r.Check.Fuzz.verdict with Check.Oracle.Fail _ -> true | Check.Oracle.Pass -> false)
          results
      in
      if json then begin
        let row (r : Check.Fuzz.replay_result) =
          Printf.sprintf {|{"file":"%s","oracle":"%s","status":"%s","message":%s}|}
            (json_escape r.Check.Fuzz.path)
            (json_escape r.Check.Fuzz.entry.Check.Corpus.oracle)
            (match r.Check.Fuzz.verdict with Check.Oracle.Pass -> "pass" | Check.Oracle.Fail _ -> "fail")
            (match r.Check.Fuzz.verdict with
            | Check.Oracle.Pass -> "null"
            | Check.Oracle.Fail m -> "\"" ^ json_escape m ^ "\"")
        in
        print_endline
          (Printf.sprintf {|{"corpus":"%s","files":%d,"failing":%d,"results":[%s]}|}
             (json_escape dir) (List.length results) (List.length failing)
             (String.concat "," (List.map row results)))
      end
      else begin
        List.iter
          (fun (r : Check.Fuzz.replay_result) ->
            match r.Check.Fuzz.verdict with
            | Check.Oracle.Pass -> Printf.printf "ok   %s\n" r.Check.Fuzz.path
            | Check.Oracle.Fail m -> Printf.printf "FAIL %s\n     %s\n" r.Check.Fuzz.path m)
          results;
        Printf.printf "%d corpus file(s), %d failing\n" (List.length results) (List.length failing)
      end;
      if failing = [] then 0 else 1
    end
    else begin
      match Check.Oracle.select oracle_names with
      | Error name ->
        Printf.eprintf "unknown oracle %S (try --oracle help)\n" name;
        2
      | Ok selected ->
        let oracles = if selected = [] then Check.Oracle.all else selected in
        let report =
          Check.Fuzz.run ?seconds ?instances ~oracles ?corpus_dir:corpus
            ~shrink:(not no_shrink) ~seed ()
        in
        let ndisc = List.length report.Check.Fuzz.discrepancies in
        if json then
          print_endline
            (Printf.sprintf
               {|{"seed":%d,"instances":%d,"checks":%d,"discrepancies":%d,"elapsed":%.3f,"failures":[%s]}|}
               seed report.Check.Fuzz.instances report.Check.Fuzz.checks ndisc
               report.Check.Fuzz.elapsed
               (String.concat "," (List.map fuzz_disc_json report.Check.Fuzz.discrepancies)))
        else begin
          List.iter
            (fun (d : Check.Fuzz.discrepancy) ->
              Printf.printf "DISCREPANCY [%s] %s\n" d.Check.Fuzz.oracle d.Check.Fuzz.message;
              (match d.Check.Fuzz.saved with
              | Some p -> Printf.printf "  saved: %s\n" p
              | None -> ());
              print_string
                (Check.Corpus.to_string
                   {
                     Check.Corpus.oracle = d.Check.Fuzz.oracle;
                     message = d.Check.Fuzz.message;
                     case = d.Check.Fuzz.case;
                   }))
            report.Check.Fuzz.discrepancies;
          Printf.printf "fuzz: seed %d, %d instance(s), %d check(s), %d discrepancy(ies), %.1fs\n"
            seed report.Check.Fuzz.instances report.Check.Fuzz.checks ndisc
            report.Check.Fuzz.elapsed
        end;
        if ndisc = 0 then 0 else 1
    end
  in
  let seconds =
    Arg.(
      value
      & opt (some float) None
      & info [ "seconds" ] ~docv:"S" ~doc:"Stop after S seconds of wall clock")
  in
  let instances =
    Arg.(
      value
      & opt (some int) None
      & info [ "instances"; "n" ] ~docv:"N"
          ~doc:"Stop after N generated cases (default 100 when no budget is given)")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Run seed. The case stream is a pure function of the seed: rerunning with the \
                same seed replays the identical stream.")
  in
  let oracle_names =
    Arg.(
      value & opt_all string []
      & info [ "oracle" ] ~docv:"NAME"
          ~doc:"Restrict to the named oracle (repeatable; default all). $(b,--oracle help) \
                lists the matrix.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output") in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Persist shrunk counterexamples under DIR (and the default directory for \
                $(b,--replay): examples/fuzz-corpus)")
  in
  let no_shrink =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report raw counterexamples, unshrunk")
  in
  let replay =
    Arg.(
      value & flag
      & info [ "replay" ] ~doc:"Re-check every stored counterexample instead of fuzzing")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate adversarial random cases and cross-check every \
          solver path against independent oracles (float vs exact, warm vs cold, presolve \
          on/off, ILP vs brute force, parallel vs sequential, LP/flow/ILP sandwich). \
          Discrepancies are shrunk to minimal repros. Exits 1 if any discrepancy is found.")
    Term.(
      const run $ seconds $ instances $ seed $ oracle_names $ json $ corpus $ no_shrink $ replay
      $ trace_arg $ stats_arg $ metrics_arg)

(* ----- serve -------------------------------------------------------------- *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
  in
  go 0

(* One connected client: its fd plus the bytes of an incomplete line. *)
type serve_client = { cfd : Unix.file_descr; cbuf : Buffer.t }

(* Atomic-rename write of the Prometheus exposition, so a scraper never
   reads a torn file. *)
let write_metrics_file path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Obs.Metrics.prometheus ());
  close_out oc;
  Sys.rename tmp path

(* Answer every complete line buffered for the client; keep the partial
   tail.  Also used after shutdown to drain requests that were already on
   the wire.  [received_at] is the transport's read stamp: all lines of
   this buffer arrived in the read that triggered us, so the gap to each
   dispatch is genuine queueing (earlier requests of the same burst). *)
let serve_process engine c =
  let received_at = Obs.Clock.now () in
  let data = Buffer.contents c.cbuf in
  Buffer.clear c.cbuf;
  let rec go start =
    if start <= String.length data then
      match String.index_from_opt data start '\n' with
      | Some i ->
        let stop = if i > start && data.[i - 1] = '\r' then i - 1 else i in
        let line = String.sub data start (stop - start) in
        write_all c.cfd (Serve.Engine.handle_line ~received_at engine line ^ "\n");
        go (i + 1)
      | None -> Buffer.add_substring c.cbuf data start (String.length data - start)
  in
  go 0

(* [tick] runs once per loop iteration (each accepted line on stdio, each
   select wakeup on sockets): the periodic metrics-file writer. *)
let serve_stdio engine ~tick =
  (try
     while not (Serve.Engine.stopping engine) do
       let line = input_line stdin in
       let received_at = Obs.Clock.now () in
       print_string (Serve.Engine.handle_line ~received_at engine line);
       print_newline ();
       flush stdout;
       tick ()
     done
   with End_of_file -> ());
  0

let serve_socket engine ~tick listen_fd cleanup =
  let clients = ref [] in
  let close_client c =
    (try Unix.close c.cfd with Unix.Unix_error _ -> ());
    clients := List.filter (fun c' -> c' != c) !clients
  in
  (* The handler body is one atomic store — async-signal-safe; the loop
     notices on its next select tick (<= 0.2s) and drains. *)
  List.iter
    (fun s ->
      Sys.set_signal s (Sys.Signal_handle (fun _ -> Serve.Engine.request_stop engine)))
    [ Sys.sigint; Sys.sigterm ];
  let scratch = Bytes.create 4096 in
  while not (Serve.Engine.stopping engine) do
    tick ();
    let fds = listen_fd :: List.map (fun c -> c.cfd) !clients in
    match Unix.select fds [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
      List.iter
        (fun fd ->
          if fd = listen_fd then begin
            match Unix.accept fd with
            | cfd, _ -> clients := { cfd; cbuf = Buffer.create 256 } :: !clients
            | exception Unix.Unix_error _ -> ()
          end
          else
            match List.find_opt (fun c -> c.cfd = fd) !clients with
            | None -> ()
            | Some c -> (
              match Unix.read fd scratch 0 (Bytes.length scratch) with
              | 0 -> close_client c
              | n ->
                Buffer.add_subbytes c.cbuf scratch 0 n;
                serve_process engine c;
                (* A partial line beyond the payload cap can never become a
                   valid request: answer too_large and drop the client. *)
                if Buffer.length c.cbuf > Serve.Engine.max_line engine then begin
                  write_all c.cfd
                    (Serve.Engine.handle_line engine (Buffer.contents c.cbuf) ^ "\n");
                  close_client c
                end
              | exception Unix.Unix_error _ -> close_client c))
        ready
  done;
  (* Graceful drain: requests already received in full are answered before
     the sockets close (batches drain inside the engine too). *)
  List.iter
    (fun c ->
      serve_process engine c;
      try Unix.close c.cfd with Unix.Unix_error _ -> ())
    !clients;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  cleanup ();
  0

let serve_cmd =
  let run stdio socket port data max_sessions max_line trace stats metrics runlog
      metrics_file metrics_every recorder_file =
    with_telemetry ~metrics ~runlog ~trace ~stats "resil.serve" @@ fun () ->
    let engine = Serve.Engine.create ~max_sessions ~max_line () in
    (* Periodic metrics-file writer, driven by the transport loop; plus a
       final write and the flight-recorder dump on the way out, so a
       post-mortem always has the last state. *)
    let tick =
      match metrics_file with
      | None -> fun () -> ()
      | Some path ->
        let last = ref (Unix.gettimeofday ()) in
        fun () ->
          let now = Unix.gettimeofday () in
          if now -. !last >= metrics_every then begin
            last := now;
            write_metrics_file path
          end
    in
    let finish code =
      (match metrics_file with Some path -> write_metrics_file path | None -> ());
      (match recorder_file with Some path -> Obs.Recorder.dump_to_file path | None -> ());
      code
    in
    let preload_failed =
      match data with
      | None -> false
      | Some path -> (
        let ic = open_in_bin path in
        let contents = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let resp =
          Serve.Engine.handle_line engine
            (Serve.Json.to_string
               (Serve.Json.Obj
                  [ ("op", Serve.Json.Str "load"); ("data", Serve.Json.Str contents) ]))
        in
        match Serve.Json.(member "ok" (of_string resp)) with
        | Some (Serve.Json.Bool true) -> false
        | _ ->
          Printf.eprintf "serve: preload failed: %s\n" resp;
          true)
    in
    if preload_failed then finish 1
    else if stdio then finish (serve_stdio engine ~tick)
    else
      match (socket, port) with
      | Some path, _ ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 16;
        Printf.eprintf "resil serve: listening on %s\n%!" path;
        finish
          (serve_socket engine ~tick fd (fun () ->
               try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ()))
      | None, Some p ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, p));
        Unix.listen fd 16;
        Printf.eprintf "resil serve: listening on 127.0.0.1:%d\n%!" p;
        finish (serve_socket engine ~tick fd (fun () -> ()))
      | None, None ->
        prerr_endline "serve: pass --stdio, --socket PATH, or --port N";
        124
  in
  let stdio =
    Arg.(value & flag & info [ "stdio" ] ~doc:"Serve on stdin/stdout (one JSON line each way)")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on a Unix domain socket at PATH")
  in
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"N" ~doc:"Listen on TCP 127.0.0.1:N")
  in
  let max_sessions =
    Arg.(
      value
      & opt int 8
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Cached incremental solve sessions kept alive (LRU eviction beyond N)")
  in
  let max_line =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "max-line" ] ~docv:"BYTES"
          ~doc:"Reject request lines larger than BYTES with the too_large error")
  in
  let metrics_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-file" ] ~docv:"FILE"
          ~doc:
            "Write the Prometheus text exposition to FILE (atomic rename) every \
             $(b,--metrics-every) seconds and once more at exit — a scrape target that \
             needs no HTTP endpoint")
  in
  let metrics_every =
    Arg.(
      value
      & opt float 10.
      & info [ "metrics-every" ] ~docv:"S"
          ~doc:"Seconds between $(b,--metrics-file) writes (default 10)")
  in
  let recorder_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "recorder-file" ] ~docv:"FILE"
          ~doc:
            "Dump the flight recorder (the last events of every domain) as JSON to FILE at \
             exit — the post-mortem after a timeout, error or signal")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived resilience service speaking line-oriented JSON over stdio, a Unix \
          socket, or loopback TCP. Sessions are cached per (query, database fingerprint) \
          and maintained incrementally under tuple inserts/deletes; SIGINT/SIGTERM or the \
          shutdown op drain in-flight requests before exit. Try: echo \
          '{\"op\":\"ping\"}' | resil serve --stdio")
    Term.(
      const run $ stdio $ socket $ port $ data_arg $ max_sessions $ max_line $ trace_arg
      $ stats_arg $ metrics_arg $ runlog_arg $ metrics_file $ metrics_every $ recorder_file)

let () =
  let doc = "resilience and causal responsibility via ILP (SIGMOD 2023 reproduction)" in
  let info = Cmd.info "resil" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            classify_cmd;
            lint_cmd;
            analyze_cmd;
            resilience_cmd;
            responsibility_cmd;
            rank_cmd;
            explain_cmd;
            certificate_cmd;
            fuzz_cmd;
            serve_cmd;
          ]))
