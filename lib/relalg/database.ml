type tuple_id = int

type tuple_info = { id : tuple_id; rel : string; args : int array; mult : int; exo : bool }

type t = {
  syms : Symbol.t;
  by_key : (string * int list, tuple_id) Hashtbl.t;
  store : (tuple_id, tuple_info) Hashtbl.t;
  mutable order : tuple_id list;  (* reverse insertion order *)
  mutable next_id : int;
  arities : (string, int) Hashtbl.t;
}

let create ?symbols () =
  let syms = match symbols with Some s -> s | None -> Symbol.create () in
  {
    syms;
    by_key = Hashtbl.create 256;
    store = Hashtbl.create 256;
    order = [];
    next_id = 0;
    arities = Hashtbl.create 8;
  }

let symbols t = t.syms

let key rel args = (rel, Array.to_list args)

let add ?(mult = 1) ?(exo = false) t rel args =
  if mult < 1 then invalid_arg "Database.add: multiplicity must be >= 1";
  (match Hashtbl.find_opt t.arities rel with
  | Some ar when ar <> Array.length args ->
    invalid_arg (Printf.sprintf "Database.add: relation %s has arity %d" rel ar)
  | Some _ -> ()
  | None -> Hashtbl.add t.arities rel (Array.length args));
  let k = key rel args in
  match Hashtbl.find_opt t.by_key k with
  | Some id ->
    let info = Hashtbl.find t.store id in
    Hashtbl.replace t.store id { info with mult = info.mult + mult; exo = info.exo || exo };
    id
  | None ->
    let id = t.next_id in
    t.next_id <- id + 1;
    Hashtbl.add t.by_key k id;
    Hashtbl.add t.store id { id; rel; args = Array.copy args; mult; exo };
    t.order <- id :: t.order;
    id

let add_named ?mult ?exo t rel names =
  add ?mult ?exo t rel (Array.map (Symbol.intern t.syms) names)

let mem t id = Hashtbl.mem t.store id

let tuple t id =
  match Hashtbl.find_opt t.store id with Some info -> info | None -> raise Not_found

let remove t id =
  match Hashtbl.find_opt t.store id with
  | None -> ()
  | Some info ->
    Hashtbl.remove t.store id;
    Hashtbl.remove t.by_key (key info.rel info.args)

let set_exo t id exo =
  let info = tuple t id in
  Hashtbl.replace t.store id { info with exo }

let set_mult t id mult =
  if mult < 1 then invalid_arg "Database.set_mult: multiplicity must be >= 1";
  let info = tuple t id in
  Hashtbl.replace t.store id { info with mult }

let find t rel args = Hashtbl.find_opt t.by_key (key rel args)

let tuples t =
  List.rev t.order |> List.filter_map (fun id -> Hashtbl.find_opt t.store id)

let tuples_of t rel = tuples t |> List.filter (fun info -> info.rel = rel)

let rel_names t =
  let seen = Hashtbl.create 8 in
  tuples t
  |> List.filter_map (fun info ->
         if Hashtbl.mem seen info.rel then None
         else begin
           Hashtbl.add seen info.rel ();
           Some info.rel
         end)

let num_tuples t = Hashtbl.length t.store

let total_multiplicity t = List.fold_left (fun acc info -> acc + info.mult) 0 (tuples t)

let copy t =
  let fresh =
    {
      syms = t.syms;
      by_key = Hashtbl.copy t.by_key;
      store = Hashtbl.copy t.store;
      order = t.order;
      next_id = t.next_id;
      arities = Hashtbl.copy t.arities;
    }
  in
  fresh

let restrict t pred =
  let fresh = copy t in
  List.iter (fun info -> if not (pred info) then remove fresh info.id) (tuples t);
  fresh

(* FNV-1a over the live contents in insertion order.  Ids are mixed in
   deliberately: a session cache keyed by fingerprint must not treat two
   databases as interchangeable when their tuple ids differ, since answers
   (contingency sets, responsibility targets) are phrased in ids. *)
let fingerprint t =
  let h = ref 0xcbf29ce484222325L in
  let mix v = h := Int64.mul (Int64.logxor !h v) 0x100000001b3L in
  let mix_int v = mix (Int64.of_int v) in
  let mix_str s =
    String.iter (fun c -> mix_int (Char.code c)) s;
    mix_int (-1)
  in
  List.iter
    (fun info ->
      mix_int info.id;
      mix_str info.rel;
      Array.iter mix_int info.args;
      mix_int info.mult;
      mix_int (if info.exo then 1 else 0);
      mix_int (-2))
    (tuples t);
  !h

let max_const t =
  List.fold_left (fun acc info -> Array.fold_left max acc info.args) 0 (tuples t)

let pp fmt t =
  List.iter
    (fun rel ->
      Format.fprintf fmt "%s:@." rel;
      List.iter
        (fun info ->
          Format.fprintf fmt "  #%d (%s)%s%s@." info.id
            (String.concat ", " (Array.to_list info.args |> List.map (Symbol.name t.syms)))
            (if info.mult > 1 then Printf.sprintf " x%d" info.mult else "")
            (if info.exo then " [exo]" else ""))
        (tuples_of t rel))
    (rel_names t)
