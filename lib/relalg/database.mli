(** Database instances under set or bag semantics.

    A database holds relations of integer tuples.  Each distinct tuple gets a
    stable {!tuple_id}; bag semantics is represented by a per-tuple
    multiplicity (Lemma 4.1 of the paper justifies one decision variable per
    distinct tuple).  Tuples may individually be flagged {e exogenous}
    (Definition 3.3), in which case they can never enter a contingency set.

    Databases are mutable builders; evaluation (see {!Eval}) treats them as
    immutable snapshots and builds per-query indexes lazily. *)

type t

type tuple_id = int

type tuple_info = {
  id : tuple_id;
  rel : string;
  args : int array;
  mult : int;  (** Number of copies under bag semantics; [>= 1]. *)
  exo : bool;
}

val create : ?symbols:Symbol.t -> unit -> t

val symbols : t -> Symbol.t

val add : ?mult:int -> ?exo:bool -> t -> string -> int array -> tuple_id
(** Inserts a tuple.  Re-inserting an existing tuple adds to its
    multiplicity and ORs the exogenous flag; the id is stable.
    @raise Invalid_argument if [mult < 1] or on an arity clash. *)

val add_named : ?mult:int -> ?exo:bool -> t -> string -> string array -> tuple_id
(** Like {!add} but interning constants through the symbol table. *)

val remove : t -> tuple_id -> unit
(** Removes all copies of a tuple.  The id is retired, not reused. *)

val set_exo : t -> tuple_id -> bool -> unit
val set_mult : t -> tuple_id -> int -> unit

val find : t -> string -> int array -> tuple_id option

val tuple : t -> tuple_id -> tuple_info
(** @raise Not_found if the tuple was removed. *)

val mem : t -> tuple_id -> bool

val tuples : t -> tuple_info list
(** All live tuples, in insertion order. *)

val tuples_of : t -> string -> tuple_info list
(** Live tuples of one relation, in insertion order. *)

val rel_names : t -> string list

val num_tuples : t -> int
(** Number of live distinct tuples. *)

val total_multiplicity : t -> int

val copy : t -> t
(** Deep copy sharing the symbol table; tuple ids are preserved. *)

val restrict : t -> (tuple_info -> bool) -> t
(** Copy containing only tuples satisfying the predicate (ids preserved). *)

val fingerprint : t -> int64
(** A 64-bit digest of the live contents (relations, args, multiplicities,
    exogeneity flags and tuple ids, in insertion order).  Two databases
    with equal fingerprints answer every resilience question identically —
    ids included, so the serve session cache can key on (query,
    fingerprint) and phrase answers in tuple ids.  Mutating the database
    changes the fingerprint (modulo the usual 64-bit collision caveat). *)

val max_const : t -> int
(** Largest integer constant in use (0 for an empty database). *)

val pp : Format.formatter -> t -> unit
