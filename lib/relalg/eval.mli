(** Witness computation: evaluating a Boolean CQ over a database.

    A witness (Section 3.1) is a valuation of the query variables permitted
    by the database that makes the query true.  Each witness determines the
    set of tuples it uses — for self-join queries this set can be smaller
    than the number of atoms (a tuple may serve several atoms).

    Evaluation is a backtracking join: atoms are reordered greedily to bind
    variables early, and each atom position is served by a hash index on its
    bound columns, built once per evaluation. *)

type witness = {
  valuation : (string * int) list;  (** Variable bindings, query-var order. *)
  tuples : Database.tuple_id array;  (** Aligned with the query's atoms. *)
}

val witnesses : Cq.t -> Database.t -> witness list
(** All witnesses, in deterministic order. *)

val holds : Cq.t -> Database.t -> bool
(** [true] iff the query has at least one witness (early exit). *)

val delta_insert : Cq.t -> Database.t -> Database.tuple_id -> witness list
(** [delta_insert q db id] — the witnesses that use tuple [id], computed by
    pinning each unifiable atom to the tuple and joining only the remaining
    atoms (never re-enumerating witnesses that avoid the tuple).  When [id]
    was just inserted into [db] {e as a new tuple}, this is exactly the set
    of witnesses the insert created, which is what the incremental
    resilience service maintains.  Deduplicated by valuation; deterministic
    order, but not the order of {!witnesses}.  Returns [[]] if the tuple is
    not live. *)

val tuple_set : witness -> Database.tuple_id list
(** The witness's distinct tuple ids, sorted. *)

val unique_tuple_sets : witness list -> Database.tuple_id list list
(** Distinct tuple sets over all witnesses — the rows of the ILP constraint
    matrix (Section 4). *)

val witnesses_with : witness list -> Database.tuple_id -> witness list
(** Witnesses whose tuple set contains the given tuple. *)

val count : Cq.t -> Database.t -> int
(** Number of witnesses (valuations), as used by the non-leaking-composition
    check of Definition 7.3. *)
