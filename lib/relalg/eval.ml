type witness = { valuation : (string * int) list; tuples : Database.tuple_id array }

(* Greedy join order: repeatedly pick the atom with the most already-bound
   variables, breaking ties toward smaller relations.  Returns the atom
   indices in execution order. *)
let join_order q db =
  let n = Array.length q.Cq.atoms in
  let rel_size =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun rel -> Hashtbl.replace tbl rel (List.length (Database.tuples_of db rel)))
      (Cq.rel_names q);
    fun rel -> try Hashtbl.find tbl rel with Not_found -> 0
  in
  let chosen = Array.make n false in
  let bound = Hashtbl.create 16 in
  let order = ref [] in
  for _ = 1 to n do
    let best = ref (-1) in
    let best_key = ref (-1, max_int) in
    for i = 0 to n - 1 do
      if not chosen.(i) then begin
        let a = q.Cq.atoms.(i) in
        let nbound =
          List.length (List.filter (fun v -> Hashtbl.mem bound v) (Cq.vars_of_atom a))
        in
        let better =
          let bn, bs = !best_key in
          nbound > bn || (nbound = bn && rel_size a.Cq.rel < bs)
        in
        if !best < 0 || better then begin
          best := i;
          best_key := (nbound, rel_size a.Cq.rel)
        end
      end
    done;
    chosen.(!best) <- true;
    List.iter (fun v -> Hashtbl.replace bound v ()) (Cq.vars_of_atom q.Cq.atoms.(!best));
    order := !best :: !order
  done;
  Array.of_list (List.rev !order)

(* For each execution position, precompute which term positions are bound
   (constants, repeated variables within the atom, or variables bound by
   earlier atoms) and build a hash index of the relation on those columns. *)
type plan_step = {
  atom_idx : int;
  terms : Cq.term array;
  bound_cols : int list;  (* positions used as the index key *)
  index : (int list, Database.tuple_info list) Hashtbl.t;
}

let build_plan q db order =
  let bound_vars = Hashtbl.create 16 in
  Array.to_list order
  |> List.map (fun atom_idx ->
         let a = q.Cq.atoms.(atom_idx) in
         (* Only constants and variables bound by earlier atoms can key the
            index; a variable repeated within this same atom is checked by
            the per-tuple consistency scan instead (its value is unknown
            until the tuple is picked). *)
         let bound_cols = ref [] in
         Array.iteri
           (fun pos term ->
             match term with
             | Cq.Const _ -> bound_cols := pos :: !bound_cols
             | Cq.Var v -> if Hashtbl.mem bound_vars v then bound_cols := pos :: !bound_cols)
           a.Cq.terms;
         let bound_cols = List.rev !bound_cols in
         let index = Hashtbl.create 64 in
         List.iter
           (fun info ->
             let key = List.map (fun pos -> info.Database.args.(pos)) bound_cols in
             let cur = try Hashtbl.find index key with Not_found -> [] in
             Hashtbl.replace index key (info :: cur))
           (Database.tuples_of db a.Cq.rel);
         List.iter (fun v -> Hashtbl.replace bound_vars v ()) (Cq.vars_of_atom a);
         { atom_idx; terms = a.Cq.terms; bound_cols; index })

let enumerate q db ~stop_after_first =
  let order = join_order q db in
  let plan = build_plan q db order in
  let qvars = Cq.vars q in
  let valuation = Hashtbl.create 16 in
  let chosen = Array.make (Array.length q.Cq.atoms) (-1) in
  let out = ref [] in
  let exception Done in
  let rec go steps =
    match steps with
    | [] ->
      let v = List.map (fun x -> (x, Hashtbl.find valuation x)) qvars in
      out := { valuation = v; tuples = Array.copy chosen } :: !out;
      if stop_after_first then raise Done
    | step :: rest ->
      let key =
        List.map
          (fun pos ->
            match step.terms.(pos) with
            | Cq.Const c -> c
            | Cq.Var v -> Hashtbl.find valuation v)
          step.bound_cols
      in
      let matches = try Hashtbl.find step.index key with Not_found -> [] in
      List.iter
        (fun info ->
          (* Bind the free positions; check intra-tuple consistency for
             repeated new variables. *)
          let newly = ref [] in
          let ok = ref true in
          Array.iteri
            (fun pos term ->
              if !ok then
                match term with
                | Cq.Const c -> if info.Database.args.(pos) <> c then ok := false
                | Cq.Var v -> (
                  match Hashtbl.find_opt valuation v with
                  | Some value -> if info.Database.args.(pos) <> value then ok := false
                  | None ->
                    Hashtbl.add valuation v info.Database.args.(pos);
                    newly := v :: !newly))
            step.terms;
          if !ok then begin
            chosen.(step.atom_idx) <- info.Database.id;
            go rest
          end;
          List.iter (Hashtbl.remove valuation) !newly)
        matches
  in
  (try go plan with Done -> ());
  List.rev !out

(* The witness join feeds every encoding, so its time and output size are
   first-class telemetry (dropped unless a trace sink is installed). *)
let c_joins = Obs.Counter.create "eval.joins"
let c_witnesses = Obs.Counter.create "eval.witness_count"

let witnesses q db =
  let span0 = Obs.Trace.begin_ () in
  let ws = enumerate q db ~stop_after_first:false in
  if Obs.Sink.active () then begin
    Obs.Counter.incr c_joins;
    Obs.Counter.add c_witnesses (List.length ws)
  end;
  Obs.Trace.end_ span0 "eval.witnesses";
  ws

let holds q db = enumerate q db ~stop_after_first:true <> []

(* Witnesses created by inserting tuple [id], without re-running the full
   join: union over "pivot" atoms — for every atom unifiable with the new
   tuple, pin that atom to it and backtrack the remaining atoms against the
   full (post-insert) database.  A self-join witness using the tuple at
   several atoms is found once per usable pivot; the valuation dedup
   collapses those (a valuation determines the tuple array, since tuple
   identity is (rel, args) and every atom's args are fixed by the
   valuation). *)
let delta_insert q db id =
  match Database.tuple db id with
  | exception Not_found -> []
  | info ->
    let span0 = Obs.Trace.begin_ () in
    let qvars = Cq.vars q in
    let natoms = Array.length q.Cq.atoms in
    let seen = Hashtbl.create 16 in
    let out = ref [] in
    (* Bind one atom's terms against a tuple; returns [None] on a clash,
       otherwise the variables newly bound (to undo on backtrack). *)
    let bind (a : Cq.atom) (cand : Database.tuple_info) valuation =
      let newly = ref [] in
      let ok = ref true in
      Array.iteri
        (fun pos term ->
          if !ok then
            match term with
            | Cq.Const c -> if cand.Database.args.(pos) <> c then ok := false
            | Cq.Var v -> (
              match Hashtbl.find_opt valuation v with
              | Some value -> if cand.Database.args.(pos) <> value then ok := false
              | None ->
                Hashtbl.add valuation v cand.Database.args.(pos);
                newly := v :: !newly))
        a.Cq.terms;
      if !ok then Some !newly
      else begin
        List.iter (Hashtbl.remove valuation) !newly;
        None
      end
    in
    for pivot = 0 to natoms - 1 do
      let a0 = q.Cq.atoms.(pivot) in
      if
        a0.Cq.rel = info.Database.rel
        && Array.length a0.Cq.terms = Array.length info.Database.args
      then begin
        let valuation = Hashtbl.create 16 in
        let chosen = Array.make natoms (-1) in
        match bind a0 info valuation with
        | None -> ()
        | Some _ ->
          chosen.(pivot) <- id;
          let rec go i =
            if i = natoms then begin
              let v = List.map (fun x -> (x, Hashtbl.find valuation x)) qvars in
              if not (Hashtbl.mem seen v) then begin
                Hashtbl.add seen v ();
                out := { valuation = v; tuples = Array.copy chosen } :: !out
              end
            end
            else if i = pivot then go (i + 1)
            else begin
              let a = q.Cq.atoms.(i) in
              List.iter
                (fun (cand : Database.tuple_info) ->
                  match bind a cand valuation with
                  | None -> ()
                  | Some newly ->
                    chosen.(i) <- cand.Database.id;
                    go (i + 1);
                    List.iter (Hashtbl.remove valuation) newly)
                (Database.tuples_of db a.Cq.rel)
            end
          in
          go 0
      end
    done;
    Obs.Trace.end_ span0 "eval.delta_insert";
    List.rev !out

let tuple_set w = Array.to_list w.tuples |> List.sort_uniq compare

let unique_tuple_sets ws =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun w ->
      let ts = tuple_set w in
      if Hashtbl.mem seen ts then None
      else begin
        Hashtbl.add seen ts ();
        Some ts
      end)
    ws

let witnesses_with ws id = List.filter (fun w -> List.mem id (tuple_set w)) ws

let count q db = List.length (witnesses q db)
