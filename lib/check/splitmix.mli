(** A splittable deterministic PRNG (SplitMix64).

    The fuzzing harness needs reproducibility properties OCaml's global
    [Random] cannot give: the instance stream for a given [--seed] must be
    identical across runs, machines and OCaml versions, and generating one
    case must never perturb the stream of the next (so a repro file can name
    a single integer seed and regenerate its case in isolation).  SplitMix64
    (Steele, Lea & Flood, OOPSLA 2014) provides exactly this: a 64-bit
    state advanced by a fixed odd gamma, output through a mixing
    finalizer, with an explicit [split] deriving an independent stream.

    No global state anywhere: every generator call threads a [t]. *)

type t
(** Mutable generator state (one stream). *)

val of_seed : int -> t
(** A stream deterministically derived from the integer seed. *)

val split : t -> t
(** A fresh stream statistically independent of the parent; the parent
    advances by two draws.  Splitting [n] times yields the same [n] streams
    for the same parent seed, regardless of how each stream is consumed. *)

val fresh_seed : t -> int
(** A non-negative integer suitable as [of_seed] input — how a generated
    case records the seed that regenerates exactly itself. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [lo, hi] inclusive. *)

val bool : t -> bool

val chance : t -> int -> int -> bool
(** [chance t k n] is true with probability [k/n]. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
