(* SplitMix64 after Steele, Lea & Flood (OOPSLA 2014): state advances by a
   per-stream odd gamma; outputs pass through the murmur-style finalizer;
   [split] seeds a child stream from two parent draws, re-odd-ifying the
   gamma when its flipped-bit count is too low (the paper's weak-gamma
   guard). *)

type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Gamma derivation: mix with different constants, force odd, and reject
   gammas whose xor-with-shift has too few bit flips. *)
let mix_gamma z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  let z = Int64.logor z 1L in
  let flips =
    let v = Int64.logxor z (Int64.shift_right_logical z 1) in
    let rec popcount acc v =
      if Int64.equal v 0L then acc
      else popcount (acc + 1) (Int64.logand v (Int64.sub v 1L))
    in
    popcount 0 v
  in
  if flips < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let next_state t =
  t.state <- Int64.add t.state t.gamma;
  t.state

let bits64 t = mix64 (next_state t)

let of_seed seed =
  let s = Int64.of_int seed in
  { state = mix64 s; gamma = mix_gamma (Int64.add s golden_gamma) }

let split t =
  let s = bits64 t in
  let g = mix_gamma (next_state t) in
  { state = s; gamma = g }

let fresh_seed t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Rejection sampling over the high bits to stay unbiased. *)
  let b = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 (* non-negative *) in
    let v = Int64.rem r b in
    (* Reject the tail of the range that would bias small residues. *)
    if Int64.compare (Int64.sub r v) (Int64.sub (Int64.sub Int64.max_int b) 1L) > 0 then draw ()
    else Int64.to_int v
  in
  draw ()

let in_range t lo hi =
  if hi < lo then invalid_arg "Splitmix.in_range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t k n = int t n < k

let choose t = function
  | [] -> invalid_arg "Splitmix.choose: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
