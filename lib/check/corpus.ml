open! Relalg
open Resilience

type entry = {
  oracle : string;
  message : string;
  case : Gen.case;
}

(* ----- printing ------------------------------------------------------------ *)

let header_line key value = Printf.sprintf "# %s: %s" key value

let single_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let db_lines (c : Gen.db_case) =
  header_line "semantics" (Format.asprintf "%a" Problem.pp_semantics c.Gen.sem)
  :: header_line "query" (Cq.to_string c.Gen.q)
  :: List.map (fun info -> Database_io.print_tuple c.Gen.db info.Database.id) (Database.tuples c.Gen.db)

let var_line frozen v =
  Printf.sprintf "# var: %s %s %d %s"
    (if Lp.Frozen.is_integer frozen v then "int" else "cont")
    (match Lp.Frozen.upper frozen v with Some u -> string_of_int u | None -> "-")
    (Lp.Frozen.objective frozen v)
    (Lp.Frozen.var_name frozen v)

let sense_str = function Lp.Model.Geq -> ">=" | Lp.Model.Leq -> "<=" | Lp.Model.Eq -> "="

let sense_of = function
  | ">=" -> Lp.Model.Geq
  | "<=" -> Lp.Model.Leq
  | "=" -> Lp.Model.Eq
  | s -> invalid_arg ("corpus: bad row sense " ^ s)

let row_line frozen i =
  Printf.sprintf "# row: %s %d %s" (sense_str (Lp.Frozen.row_sense frozen i))
    (Lp.Frozen.row_rhs frozen i)
    (String.concat " "
       (List.map (fun (v, c) -> Printf.sprintf "%d:%d" v c) (Lp.Frozen.row_expr frozen i)))

(* Bindings first, then appended columns and rows as [| c ...] / [| r ...]
   segments (same field formats as the var/row header lines), so
   append-carrying deltas round-trip. *)
let delta_line d =
  let bindings =
    List.map (fun (v, k) -> Printf.sprintf " %d=%d" v k) (List.rev (Lp.Frozen.Delta.bindings d))
  in
  let cols =
    List.map
      (fun (name, integer, upper, obj) ->
        Printf.sprintf " | c %s %s %d %s"
          (if integer then "int" else "cont")
          (match upper with Some u -> string_of_int u | None -> "-")
          obj name)
      (Lp.Frozen.Delta.appended_cols d)
  in
  let rows =
    List.map
      (fun (sense, rhs, expr) ->
        Printf.sprintf " | r %s %d%s" (sense_str sense) rhs
          (String.concat "" (List.map (fun (v, c) -> Printf.sprintf " %d:%d" v c) expr)))
      (Lp.Frozen.Delta.appended_rows d)
  in
  Printf.sprintf "# delta:%s" (String.concat "" (bindings @ cols @ rows))

let lp_lines (c : Gen.lp_case) =
  let frozen = c.Gen.frozen in
  List.init (Lp.Frozen.num_vars frozen) (var_line frozen)
  @ List.init (Lp.Frozen.num_rows frozen) (row_line frozen)
  @ List.map delta_line c.Gen.deltas

let to_string e =
  let kind, body =
    match e.case.Gen.shape with
    | Gen.Db c -> ("db", db_lines c)
    | Gen.Lp c -> ("lp", lp_lines c)
  in
  String.concat "\n"
    ([
       "# resil fuzz counterexample";
       header_line "kind" kind;
       header_line "oracle" e.oracle;
       header_line "profile" e.case.Gen.profile;
       header_line "seed" (string_of_int e.case.Gen.seed);
       header_line "message" (single_line e.message);
     ]
    @ body @ [ "" ])

(* ----- parsing ------------------------------------------------------------- *)

let strip s = String.trim s

let header_of line =
  (* "# key: value" -> Some (key, value) *)
  if String.length line < 2 || line.[0] <> '#' then None
  else
    let rest = strip (String.sub line 1 (String.length line - 1)) in
    match String.index_opt rest ':' with
    | None -> None
    | Some i ->
      let key = strip (String.sub rest 0 i) in
      let value = strip (String.sub rest (i + 1) (String.length rest - i - 1)) in
      if key <> "" && String.for_all (fun c -> c <> ' ') key then Some (key, value) else None

let words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse_var spec =
  (* "<int|cont> <upper|-> <obj> <name...>" *)
  match words spec with
  | integ :: upper :: obj :: name ->
    let integer = match integ with "int" -> true | "cont" -> false | s -> invalid_arg ("corpus: bad var kind " ^ s) in
    let upper = match upper with "-" -> None | s -> Some (int_of_string s) in
    (String.concat " " name, integer, upper, int_of_string obj)
  | _ -> invalid_arg ("corpus: bad var line " ^ spec)

let parse_row spec =
  match words spec with
  | sense :: rhs :: entries ->
    let expr =
      List.map
        (fun e ->
          match String.split_on_char ':' e with
          | [ v; c ] -> (int_of_string v, int_of_string c)
          | _ -> invalid_arg ("corpus: bad row entry " ^ e))
        entries
    in
    (sense_of sense, int_of_string rhs, expr)
  | _ -> invalid_arg ("corpus: bad row line " ^ spec)

let parse_delta spec =
  List.fold_left
    (fun d seg ->
      match words seg with
      | [] -> d
      | "c" :: rest -> (
        let name, integer, upper, obj = parse_var (String.concat " " rest) in
        match upper with
        | Some u -> Lp.Frozen.Delta.append_col ~integer ~upper:u ~name ~obj d
        | None -> Lp.Frozen.Delta.append_col ~integer ~name ~obj d)
      | "r" :: rest ->
        let sense, rhs, expr = parse_row (String.concat " " rest) in
        Lp.Frozen.Delta.append_row sense rhs expr d
      | entries ->
        List.fold_left
          (fun d e ->
            match String.split_on_char '=' e with
            | [ v; k ] -> Lp.Frozen.Delta.fix (int_of_string v) (int_of_string k) d
            | _ -> invalid_arg ("corpus: bad delta entry " ^ e))
          d entries)
    Lp.Frozen.Delta.empty
    (String.split_on_char '|' spec)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let headers = Hashtbl.create 8 in
  let vars = ref [] and rows = ref [] and deltas = ref [] in
  let db = Database.create () in
  List.iter
    (fun line ->
      match header_of line with
      | Some ("var", spec) -> vars := parse_var spec :: !vars
      | Some ("row", spec) -> rows := parse_row spec :: !rows
      | Some ("delta", spec) -> deltas := parse_delta spec :: !deltas
      | Some (key, value) -> if not (Hashtbl.mem headers key) then Hashtbl.add headers key value
      | None -> ignore (Database_io.parse_line db line))
    lines;
  let get key =
    match Hashtbl.find_opt headers key with
    | Some v -> v
    | None -> invalid_arg ("corpus: missing header " ^ key)
  in
  let seed = try int_of_string (get "seed") with _ -> 0 in
  let profile = try get "profile" with _ -> "corpus" in
  let shape =
    match get "kind" with
    | "db" ->
      let sem =
        match get "semantics" with
        | "set" -> Problem.Set
        | "bag" -> Problem.Bag
        | s -> invalid_arg ("corpus: bad semantics " ^ s)
      in
      let q = Cq_parser.parse_with db (get "query") in
      Gen.Db { Gen.sem; q; db }
    | "lp" ->
      let vars = List.rev !vars in
      let frozen =
        Lp.Frozen.make
          ~names:(Array.of_list (List.map (fun (n, _, _, _) -> n) vars))
          ~integer:(Array.of_list (List.map (fun (_, i, _, _) -> i) vars))
          ~upper:(Array.of_list (List.map (fun (_, _, u, _) -> u) vars))
          ~obj:(Array.of_list (List.map (fun (_, _, _, o) -> o) vars))
          ~rows:(Array.of_list (List.rev !rows))
      in
      Gen.Lp { Gen.frozen; deltas = List.rev !deltas }
    | s -> invalid_arg ("corpus: bad kind " ^ s)
  in
  {
    oracle = get "oracle";
    message = (try get "message" with _ -> "");
    case = { Gen.seed; profile; shape };
  }

(* ----- files --------------------------------------------------------------- *)

let file_name e =
  Printf.sprintf "%s-%s-seed%d.case" e.oracle e.case.Gen.profile (abs e.case.Gen.seed)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~dir e =
  mkdir_p dir;
  let path = Filename.concat dir (file_name e) in
  let oc = open_out path in
  output_string oc (to_string e);
  close_out oc;
  path

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text

let load_dir dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".case")
    |> List.sort compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (path, load path))

let replay e =
  match Oracle.named e.oracle with
  | None -> Oracle.Fail (Printf.sprintf "unknown oracle %S" e.oracle)
  | Some o ->
    if not (o.Oracle.applies e.case) then Oracle.Pass
    else ( try o.Oracle.check e.case with ex -> Oracle.Fail ("oracle raised " ^ Printexc.to_string ex))
