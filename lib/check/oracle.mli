(** The oracle matrix: pluggable cross-implementation properties.

    Each oracle takes a generated {!Gen.case} and either passes or reports a
    {e discrepancy} — two implementations of the same mathematical quantity
    disagreeing, or an invariant of the paper (the LP <= flow <= ILP
    sandwich, say) failing.  An oracle failure is, by construction, a bug
    somewhere: both sides claim to compute RES*/RSP* exactly.

    Oracles are pure: they never mutate the case's database (solvers treat
    databases as immutable snapshots), so the shrinker may re-run them
    freely. *)

type verdict = Pass | Fail of string  (** The discrepancy, human-readable. *)

type t = {
  name : string;
  descr : string;  (** One line for [--oracle help] and the docs. *)
  applies : Gen.case -> bool;
      (** Case-kind and size gating (exhaustive baselines are small-only). *)
  check : Gen.case -> verdict;
}

val all : t list
(** The full matrix, documentation order. *)

val named : string -> t option

val select : string list -> (t list, string) result
(** Resolve a [--oracle] list; [Error] names the first unknown oracle. *)

val run : t list -> Gen.case -> (string * verdict) list
(** Every applicable oracle's verdict on the case, matrix order. *)
