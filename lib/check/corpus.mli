(** Persisted counterexamples.

    Every discrepancy the fuzzer finds is written, after shrinking, as one
    self-contained text file under a corpus directory.  The format is the
    {!Database_io} tuple format plus [# key: value] comment headers —
    corpus files with [kind: db] therefore stay directly loadable by
    [resil]'s other subcommands, and every file records the oracle, the
    failure message, the generating profile and the exact case seed.

    Corpus files are the regression loop: the test suite and [resil fuzz
    --replay] re-run every file's oracle and fail on any discrepancy that
    resurfaces. *)

type entry = {
  oracle : string;  (** Name of the oracle that failed ({!Oracle.named}). *)
  message : string;  (** The discrepancy at save time. *)
  case : Gen.case;  (** [case.profile]/[case.seed] record provenance. *)
}

val to_string : entry -> string
(** The file format; [of_string] round-trips it. *)

val of_string : string -> entry
(** @raise Invalid_argument on a malformed file. *)

val file_name : entry -> string
(** Deterministic base name: [<oracle>-<profile>-seed<seed>.case]. *)

val save : dir:string -> entry -> string
(** Writes [to_string] under [dir] (created if missing); returns the path. *)

val load : string -> entry
(** @raise Sys_error / Invalid_argument. *)

val load_dir : string -> (string * entry) list
(** Every [*.case] file under the directory (sorted by name), with its
    path; [] when the directory does not exist. *)

val replay : entry -> Oracle.verdict
(** Re-run the entry's oracle on its case.  Unknown oracle names fail;
    an oracle that no longer applies (size gates) passes. *)
