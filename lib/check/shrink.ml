open! Relalg

(* A candidate either fails (with a message) or passes; a crashing oracle is
   a failing candidate too — the shrunk repro is then a crash repro. *)
let verdict_of (oracle : Oracle.t) case =
  match oracle.Oracle.check case with
  | Oracle.Pass -> None
  | Oracle.Fail m -> Some m
  | exception e -> Some ("oracle raised " ^ Printexc.to_string e)

(* ----- generic chunk sweep ------------------------------------------------- *)

let split_at n l =
  let rec go acc n = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (x :: acc) (n - 1) rest
  in
  go [] n l

(* One ddmin-style sweep: try deleting chunks of size [len], halving [len]
   when a full scan removes nothing.  Accepting a deletion restarts the scan
   on the (strictly smaller) survivor, so this terminates. *)
let reduce_list ~keeps_failing items =
  let rec at_size items len =
    if len < 1 || items = [] then items
    else
      let rec scan kept rest =
        match rest with
        | [] -> at_size items (len / 2)
        | _ ->
          let chunk, tail = split_at len rest in
          let candidate = List.rev_append kept tail in
          if keeps_failing candidate then at_size candidate len
          else scan (List.rev_append chunk kept) tail
      in
      scan [] items
  in
  at_size items (max 1 (List.length items / 2))

(* Try one candidate; keep it if the oracle still fails there. *)
let try_step ~keeps_failing current candidate =
  if keeps_failing candidate then candidate else current

(* ----- database cases ------------------------------------------------------ *)

let db_keep (c : Gen.db_case) keep_ids =
  let keep = Hashtbl.create (List.length keep_ids) in
  List.iter (fun id -> Hashtbl.replace keep id ()) keep_ids;
  { c with Gen.db = Database.restrict c.Gen.db (fun info -> Hashtbl.mem keep info.Database.id) }

let shrink_db ~fails (c : Gen.db_case) =
  let fails_db c' = fails (Gen.Db c') in
  (* 1. drop tuples *)
  let ids = List.map (fun i -> i.Database.id) (Database.tuples c.Gen.db) in
  let kept = reduce_list ~keeps_failing:(fun keep -> fails_db (db_keep c keep)) ids in
  let c = db_keep c kept in
  (* 2. multiplicities down to 1 *)
  let c =
    List.fold_left
      (fun c info ->
        if info.Database.mult <= 1 then c
        else
          let db' = Database.copy c.Gen.db in
          Database.set_mult db' info.Database.id 1;
          try_step ~keeps_failing:fails_db c { c with Gen.db = db' })
      c
      (Database.tuples c.Gen.db)
  in
  (* 3. clear exogenous flags *)
  List.fold_left
    (fun c info ->
      if not info.Database.exo then c
      else
        let db' = Database.copy c.Gen.db in
        Database.set_exo db' info.Database.id false;
        try_step ~keeps_failing:fails_db c { c with Gen.db = db' })
    c
    (Database.tuples c.Gen.db)

(* ----- LP cases ------------------------------------------------------------ *)

let with_rows frozen row_ids =
  let n = Lp.Frozen.num_vars frozen in
  Lp.Frozen.make
    ~names:(Array.init n (Lp.Frozen.var_name frozen))
    ~integer:(Array.init n (Lp.Frozen.is_integer frozen))
    ~upper:(Array.init n (Lp.Frozen.upper frozen))
    ~obj:(Array.init n (Lp.Frozen.objective frozen))
    ~rows:
      (Array.of_list
         (List.map
            (fun i -> (Lp.Frozen.row_sense frozen i, Lp.Frozen.row_rhs frozen i, Lp.Frozen.row_expr frozen i))
            row_ids))

(* Rebuild a delta from [d]'s appended columns, the given appended rows and
   the given bindings, in that order. *)
let rebuild d ~rows ~bindings =
  let base =
    List.fold_left
      (fun acc (name, integer, upper, obj) ->
        match upper with
        | Some u -> Lp.Frozen.Delta.append_col ~integer ~upper:u ~name ~obj acc
        | None -> Lp.Frozen.Delta.append_col ~integer ~name ~obj acc)
      Lp.Frozen.Delta.empty
      (Lp.Frozen.Delta.appended_cols d)
  in
  let base =
    List.fold_left
      (fun acc (sense, rhs, expr) -> Lp.Frozen.Delta.append_row sense rhs expr acc)
      base rows
  in
  List.fold_left (fun acc (v, k) -> Lp.Frozen.Delta.fix v k acc) base bindings

(* Rebuild a delta carrying [d]'s appends but only the bindings [bs] —
   thinning a binding must never silently drop the append chain the
   failure may depend on. *)
let with_bindings d bs = rebuild d ~rows:(Lp.Frozen.Delta.appended_rows d) ~bindings:bs

let shrink_lp ~fails (c : Gen.lp_case) =
  let fails_lp c' = fails (Gen.Lp c') in
  (* 1. drop constraint rows *)
  let rows = List.init (Lp.Frozen.num_rows c.Gen.frozen) (fun i -> i) in
  let kept =
    reduce_list
      ~keeps_failing:(fun keep -> fails_lp { c with Gen.frozen = with_rows c.Gen.frozen keep })
      rows
  in
  let c = { c with Gen.frozen = with_rows c.Gen.frozen kept } in
  (* 2. drop delta steps *)
  let deltas =
    reduce_list ~keeps_failing:(fun ds -> fails_lp { c with Gen.deltas = ds }) c.Gen.deltas
  in
  let c = { c with Gen.deltas = deltas } in
  (* 3. drop whole append chains where the failure survives without them *)
  let nd = List.length c.Gen.deltas in
  let rec strip c i =
    if i >= nd then c
    else
      let d = List.nth c.Gen.deltas i in
      let nbase = Lp.Frozen.num_vars c.Gen.frozen in
      let c =
        (* only when no binding touches an appended column: the stripped
           delta must stay well-formed against the base program *)
        if
          (not (Lp.Frozen.Delta.has_appends d))
          || List.exists (fun (v, _) -> v >= nbase) (Lp.Frozen.Delta.bindings d)
        then c
        else
          let d' = Lp.Frozen.Delta.clear_appends d in
          try_step ~keeps_failing:fails_lp c
            { c with Gen.deltas = List.mapi (fun j dj -> if j = i then d' else dj) c.Gen.deltas }
      in
      strip c (i + 1)
  in
  let c = strip c 0 in
  (* 3b. thin appended-row chains uniformly across the delta sequence.
     Enumeration-style sequences are monotone cut chains — each delta
     re-appends its predecessor's rows plus one more no-good cut — and the
     warm engine's basis absorption keys on exactly that prefix structure.
     Dropping a row from one delta but not its successors would break the
     chain and change which solves warm-start (masking the failure, or
     manufacturing a different one), so a candidate deletion removes the
     same appended row from every chain delta that carries it: the
     survivor is still a monotone chain over the surviving cuts. *)
  let c =
    let reference =
      List.fold_left
        (fun acc d ->
          let r = Lp.Frozen.Delta.appended_rows d in
          if List.length r > List.length acc then r else acc)
        [] c.Gen.deltas
    in
    let napp = List.length reference in
    if napp = 0 then c
    else begin
      let apply keep_idx =
        let keep = Array.make napp false in
        List.iter (fun i -> keep.(i) <- true) keep_idx;
        {
          c with
          Gen.deltas =
            List.map
              (fun d ->
                let rows = Lp.Frozen.Delta.appended_rows d in
                (* only rewrite deltas that are prefixes of the reference
                   chain; unrelated append lists are left untouched *)
                let is_prefix =
                  List.length rows <= napp
                  && List.for_all2 (fun a b -> a = b) rows
                       (List.filteri (fun i _ -> i < List.length rows) reference)
                in
                if not is_prefix then d
                else
                  rebuild d
                    ~rows:(List.filteri (fun i _ -> keep.(i)) rows)
                    ~bindings:(Lp.Frozen.Delta.bindings d))
              c.Gen.deltas;
        }
      in
      let kept =
        reduce_list
          ~keeps_failing:(fun keep -> fails_lp (apply keep))
          (List.init napp (fun i -> i))
      in
      apply kept
    end
  in
  (* 4. thin each surviving delta's bindings (appends kept intact) *)
  let rec thin c i =
    if i >= nd then c
    else
      let d = List.nth c.Gen.deltas i in
      let bindings =
        reduce_list
          ~keeps_failing:(fun bs ->
            let d' = with_bindings d bs in
            fails_lp { c with Gen.deltas = List.mapi (fun j dj -> if j = i then d' else dj) c.Gen.deltas })
          (Lp.Frozen.Delta.bindings d)
      in
      let d' = with_bindings d bindings in
      thin { c with Gen.deltas = List.mapi (fun j dj -> if j = i then d' else dj) c.Gen.deltas } (i + 1)
  in
  thin c 0

(* ----- driver -------------------------------------------------------------- *)

let size = function
  | Gen.Db c -> Database.num_tuples c.Gen.db + Database.total_multiplicity c.Gen.db
  | Gen.Lp c ->
    Lp.Frozen.num_rows c.Gen.frozen
    + List.fold_left
        (fun acc d ->
          acc
          + List.length (Lp.Frozen.Delta.bindings d)
          + Lp.Frozen.Delta.num_appended_cols d
          + Lp.Frozen.Delta.num_appended_rows d)
        (List.length c.Gen.deltas) c.Gen.deltas

let shrink ?(rounds = 8) (oracle : Oracle.t) (case : Gen.case) =
  match verdict_of oracle case with
  | None -> (case, "")
  | Some _ ->
    let fails shape = verdict_of oracle { case with Gen.shape } <> None in
    let step shape =
      match shape with
      | Gen.Db c -> Gen.Db (shrink_db ~fails c)
      | Gen.Lp c -> Gen.Lp (shrink_lp ~fails c)
    in
    let rec fixpoint shape n =
      if n = 0 then shape
      else
        let shape' = step shape in
        if size shape' >= size shape then shape' else fixpoint shape' (n - 1)
    in
    let shape = fixpoint case.Gen.shape rounds in
    let shrunk = { case with Gen.shape } in
    let message = match verdict_of oracle shrunk with Some m -> m | None -> "" in
    (shrunk, message)
