type discrepancy = {
  original : Gen.case;
  case : Gen.case;
  oracle : string;
  message : string;
  saved : string option;
}

type report = {
  instances : int;
  checks : int;
  discrepancies : discrepancy list;
  elapsed : float;
}

let run ?seconds ?instances ?(oracles = Oracle.all) ?corpus_dir ?(shrink = true) ~seed () =
  let start = Lp.Clock.now () in
  let deadline = Option.map (fun s -> start +. s) seconds in
  let limit =
    match (instances, seconds) with
    | Some n, _ -> n
    | None, Some _ -> max_int
    | None, None -> 100
  in
  let root = Splitmix.of_seed seed in
  let generated = ref 0 in
  let checks = ref 0 in
  let discrepancies = ref [] in
  let out_of_budget () =
    !generated >= limit
    || match deadline with Some d -> Lp.Clock.now () > d | None -> false
  in
  while not (out_of_budget ()) do
    (* The stream is a pure function of the run seed: one case seed is drawn
       per iteration, whatever the oracles then do with it. *)
    let case = Gen.of_seed (Gen.case_seed_of root) in
    incr generated;
    List.iter
      (fun (o : Oracle.t) ->
        if o.Oracle.applies case then begin
          incr checks;
          let verdict =
            try o.Oracle.check case
            with e -> Oracle.Fail ("oracle raised " ^ Printexc.to_string e)
          in
          match verdict with
          | Oracle.Pass -> ()
          | Oracle.Fail message ->
            let shrunk, shrunk_msg =
              if shrink then Shrink.shrink o case else (case, message)
            in
            let message = if shrunk_msg = "" then message else shrunk_msg in
            let saved =
              Option.map
                (fun dir ->
                  Corpus.save ~dir { Corpus.oracle = o.Oracle.name; message; case = shrunk })
                corpus_dir
            in
            discrepancies :=
              { original = case; case = shrunk; oracle = o.Oracle.name; message; saved }
              :: !discrepancies
        end)
      oracles
  done;
  {
    instances = !generated;
    checks = !checks;
    discrepancies = List.rev !discrepancies;
    elapsed = Lp.Clock.elapsed start;
  }

type replay_result = { path : string; entry : Corpus.entry; verdict : Oracle.verdict }

let replay_corpus ~dir =
  (* Parse failures are reported in-band: a corpus file that stopped loading
     is itself a regression. *)
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".case")
    |> List.sort compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           match Corpus.load path with
           | entry -> { path; entry; verdict = Corpus.replay entry }
           | exception e ->
             let entry =
               {
                 Corpus.oracle = "<parse>";
                 message = Printexc.to_string e;
                 case = { Gen.seed = 0; profile = "corpus"; shape = Gen.Lp { Gen.frozen = Lp.Frozen.of_model (Lp.Model.create ()); deltas = [] } };
               }
             in
             { path; entry; verdict = Oracle.Fail ("failed to load: " ^ Printexc.to_string e) })
