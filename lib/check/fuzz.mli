(** The fuzzing loop: generate, cross-check, shrink, persist.

    One run walks the seed-deterministic case stream of {!Gen.stream},
    applies an oracle matrix to every case, and for every discrepancy
    shrinks the case ({!Shrink}) and optionally persists it to a corpus
    directory ({!Corpus}).  The case stream depends only on the run seed —
    never on the time budget or on which oracles fired — so a failing run
    is replayed exactly by rerunning with its seed. *)

type discrepancy = {
  original : Gen.case;  (** As generated. *)
  case : Gen.case;  (** After shrinking (equal to [original] if disabled). *)
  oracle : string;
  message : string;
  saved : string option;  (** Corpus path, when a corpus dir was given. *)
}

type report = {
  instances : int;  (** Cases generated. *)
  checks : int;  (** Oracle verdicts evaluated. *)
  discrepancies : discrepancy list;  (** Stream order. *)
  elapsed : float;  (** Wall-clock seconds. *)
}

val run :
  ?seconds:float ->
  ?instances:int ->
  ?oracles:Oracle.t list ->
  ?corpus_dir:string ->
  ?shrink:bool ->
  seed:int ->
  unit ->
  report
(** Fuzz until [instances] cases have been generated (default 100 when no
    budget is given at all) or [seconds] of wall clock have passed,
    whichever comes first; with only [seconds] given the instance count is
    unbounded.  [oracles] defaults to {!Oracle.all}; [shrink] defaults to
    [true].  Oracles that raise are reported as discrepancies, not crashes
    of the run. *)

type replay_result = { path : string; entry : Corpus.entry; verdict : Oracle.verdict }

val replay_corpus : dir:string -> replay_result list
(** {!Corpus.replay} every corpus file under [dir], sorted by name.  Files
    that fail to parse become [Fail] results with a synthetic entry. *)
