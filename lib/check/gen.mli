open! Relalg
open! Resilience

(** Seed-deterministic generation of adversarial test cases.

    A case is regenerable from one integer: [of_seed s] always rebuilds the
    identical case, on any machine, independent of how other cases were
    consumed (the split PRNG gives every case its own stream).  The stream
    of a whole fuzz run is likewise a pure function of the run seed.

    Two kinds of case, matching the two layers the oracles compare:

    - a {e database} case — semantics, conjunctive query, instance — for
      the end-to-end resilience/responsibility oracles;
    - an {e LP} case — a frozen covering-family program plus a sequence of
      {!Lp.Frozen.Delta} overlays — for the warm-vs-cold simplex oracles
      (the layer where the PR 2 eta-drift bug lived).

    Generation is steered by named {e profiles}, each aimed at a corner the
    hand-written suites historically skipped: bag multiplicities > 1,
    self-joins, exogenous-heavy and empty relations, duplicate witnesses,
    zero/tight upper bounds, near-tie ratio-test pivots, long warm
    solve sequences (drift), and monotone row/column append chains (the
    incremental-service fast path). *)

type db_case = {
  sem : Problem.semantics;
  q : Cq.t;
  db : Database.t;
}

type lp_case = {
  frozen : Lp.Frozen.t;
  deltas : Lp.Frozen.Delta.t list;
      (** Replayed in order against one warm session by the LP oracles. *)
}

type shape = Db of db_case | Lp of lp_case

type case = {
  seed : int;  (** Regenerates this case exactly via {!of_seed}. *)
  profile : string;  (** Name of the generating profile ("corpus" if loaded). *)
  shape : shape;
}

val profiles : string list
(** Names of all generation profiles, documentation order. *)

val of_seed : int -> case
(** The case determined by the seed: profile choice and all draws come from
    the seed's own stream. *)

val stream : seed:int -> int -> case list
(** [stream ~seed n] is the first [n] cases of the run stream for [seed] —
    identical across runs (the acceptance criterion of [resil fuzz]). *)

val case_seed_of : Splitmix.t -> int
(** Draw the next case seed of a run stream (what {!stream} iterates). *)

val endo_count : db_case -> int
(** Endogenous live tuples — the size oracles gate exhaustive baselines on. *)
