open! Relalg
open Resilience

type db_case = {
  sem : Problem.semantics;
  q : Cq.t;
  db : Database.t;
}

type lp_case = {
  frozen : Lp.Frozen.t;
  deltas : Lp.Frozen.Delta.t list;
}

type shape = Db of db_case | Lp of lp_case

type case = {
  seed : int;
  profile : string;
  shape : shape;
}

let sampler rng = { Datagen.Random_inst.sample = (fun b -> Splitmix.int rng b) }

(* [List.init] does not guarantee an application order; every draw sequence
   below goes through this left-to-right builder instead. *)
let init_seq n f =
  let rec loop acc i = if i = n then List.rev acc else loop (f i :: acc) (i + 1) in
  loop [] 0

let sem_of rng = if Splitmix.bool rng then Problem.Set else Problem.Bag

(* ----- database profiles -------------------------------------------------- *)

let base_queries () =
  [
    Queries.q2_chain ();
    Queries.q3_chain ();
    Queries.q2_star ();
    Queries.q_triangle ();
    Queries.q_confluence ();
  ]

let self_join_queries () =
  [
    Queries.q2_chain_sj ();
    Queries.q_conf_sj ();
    Queries.q_chain_b_sj ();
    Queries.q_chain_abc_sj ();
    Queries.q_z6 ();
  ]

let instance rng q ~domain ~count ~max_bag ~exo_pct =
  let s = sampler rng in
  let specs = Datagen.Random_inst.specs_of_query q ~count in
  let db = Datagen.Random_inst.db_s s ~domain ~max_bag specs in
  if exo_pct > 0 then Datagen.Random_inst.mark_exogenous s ~pct:exo_pct db;
  db

(* The everyday shape: any query, small domain, light bags, some exogenous
   tuples. *)
let gen_mixed rng =
  let q = Splitmix.choose rng (base_queries () @ self_join_queries ()) in
  let db =
    instance rng q
      ~domain:(Splitmix.in_range rng 2 4)
      ~count:(Splitmix.in_range rng 3 10)
      ~max_bag:2 ~exo_pct:20
  in
  { sem = sem_of rng; q; db }

(* Bag semantics with real multiplicities: objective weights >> 1. *)
let gen_bag_heavy rng =
  let q = Splitmix.choose rng (base_queries ()) in
  let db =
    instance rng q
      ~domain:(Splitmix.in_range rng 2 3)
      ~count:(Splitmix.in_range rng 3 8)
      ~max_bag:(Splitmix.in_range rng 3 6)
      ~exo_pct:10
  in
  { sem = Problem.Bag; q; db }

(* Self-joins: one tuple serving several atoms of a witness. *)
let gen_self_join rng =
  let q = Splitmix.choose rng (self_join_queries ()) in
  let db =
    instance rng q
      ~domain:(Splitmix.in_range rng 2 3)
      ~count:(Splitmix.in_range rng 2 8)
      ~max_bag:2 ~exo_pct:15
  in
  { sem = sem_of rng; q; db }

(* Exogeneity-heavy: most deletions are forbidden, No_contingency and
   forced-deletion presolve fixes are common. *)
let gen_exo_heavy rng =
  let q = Splitmix.choose rng (base_queries () @ self_join_queries ()) in
  let db =
    instance rng q
      ~domain:(Splitmix.in_range rng 2 4)
      ~count:(Splitmix.in_range rng 3 10)
      ~max_bag:2 ~exo_pct:60
  in
  { sem = sem_of rng; q; db }

(* One relation left empty: the query is false, every solver must agree on
   the trivial verdict. *)
let gen_empty_rel rng =
  let q = Splitmix.choose rng (base_queries ()) in
  let s = sampler rng in
  let specs = Datagen.Random_inst.specs_of_query q ~count:(Splitmix.in_range rng 2 6) in
  let hole = Splitmix.int rng (List.length specs) in
  let specs =
    List.mapi
      (fun i (sp : Datagen.Random_inst.spec) -> if i = hole then { sp with count = 0 } else sp)
      specs
  in
  let db = Datagen.Random_inst.db_s s ~domain:(Splitmix.in_range rng 2 3) specs in
  { sem = sem_of rng; q; db }

(* Tiny domain: many valuations collapse onto the same tuple set, so the
   encoder sees duplicate witnesses and the presolver duplicate rows. *)
let gen_dup_witness rng =
  let q = Splitmix.choose rng (base_queries () @ self_join_queries ()) in
  let domain = Splitmix.in_range rng 1 2 in
  let db =
    instance rng q ~domain ~count:(Splitmix.in_range rng 2 6)
      ~max_bag:(Splitmix.in_range rng 1 2)
      ~exo_pct:10
  in
  { sem = sem_of rng; q; db }

(* Uniform weights on a dense-ish instance: the dual ratio test is full of
   exact ties, the regime where pivot-order bugs surface. *)
let gen_dense_ties rng =
  let q = if Splitmix.bool rng then Queries.q2_chain () else Queries.q2_star () in
  let db =
    instance rng q ~domain:2 ~count:(Splitmix.in_range rng 6 12) ~max_bag:1 ~exo_pct:0
  in
  { sem = Problem.Set; q; db }

(* ----- LP profiles --------------------------------------------------------- *)

(* A random covering-family program: binary tuple-like variables, unit
   coefficients, >= 1 rows — the shape every encoder emits — plus the
   corners: zero upper bounds (fixed-empty variables), continuous columns,
   tied costs. *)
let covering_model rng ~nvars ~nrows ~tie_costs =
  let m = Lp.Model.create () in
  let vars =
    Array.of_list
      (init_seq nvars (fun _ ->
           let obj = if tie_costs then 1 else Splitmix.in_range rng 1 5 in
           if Splitmix.chance rng 1 10 then
             (* zero upper bound: the variable exists but may never move. *)
             Lp.Model.add_var ~upper:0 ~obj m
           else if Splitmix.chance rng 1 5 then
             (* continuous relaxation column *)
             Lp.Model.add_var ~upper:1 ~obj m
           else Lp.Model.add_var ~integer:true ~upper:1 ~obj m))
  in
  for _ = 1 to nrows do
    let width = Splitmix.in_range rng 1 3 in
    let picked =
      init_seq width (fun _ -> vars.(Splitmix.int rng nvars)) |> List.sort_uniq compare
    in
    Lp.Model.add_constr m (List.map (fun v -> (v, 1)) picked) Lp.Model.Geq 1
  done;
  (Lp.Frozen.of_model m, vars)

let random_delta rng vars =
  Array.fold_left
    (fun d v ->
      match Splitmix.int rng 4 with
      | 0 -> Lp.Frozen.Delta.fix_zero v d
      | 1 -> Lp.Frozen.Delta.force_one v d
      | _ -> d)
    Lp.Frozen.Delta.empty vars

(* Short delta sequences over small programs: every delta kind against every
   warm basis shape. *)
let gen_lp_cover rng =
  let nvars = Splitmix.in_range rng 4 9 in
  let nrows = Splitmix.in_range rng 3 8 in
  let frozen, vars = covering_model rng ~nvars ~nrows ~tie_costs:(Splitmix.bool rng) in
  let steps = Splitmix.in_range rng 4 16 in
  { frozen; deltas = init_seq steps (fun _ -> random_delta rng vars) }

(* Long warm batches over a mid-size program: hundreds of solves against one
   session, the regime where inverse drift accumulates (the PR 2 eta-drift
   bug produced a false Infeasible after ~100 warm solves).  Unlike the
   covering profile this one mixes coefficient magnitudes and row senses,
   so the basis is less well-conditioned and eta-drift grows fast enough
   for the warm-vs-cold oracle to see it. *)
let gen_lp_drift rng =
  let nvars = Splitmix.in_range rng 20 36 in
  let nrows = Splitmix.in_range rng 18 36 in
  let m = Lp.Model.create () in
  let vars =
    Array.of_list
      (init_seq nvars (fun _ ->
           let obj = Splitmix.in_range rng 1 9 in
           let upper = if Splitmix.chance rng 1 6 then Splitmix.in_range rng 2 4 else 1 in
           if Splitmix.chance rng 1 4 && upper = 1 then
             Lp.Model.add_var ~integer:true ~upper ~obj m
           else Lp.Model.add_var ~upper ~obj m))
  in
  for _ = 1 to nrows do
    let width = Splitmix.in_range rng 2 6 in
    let picked =
      init_seq width (fun _ -> (vars.(Splitmix.int rng nvars), Splitmix.in_range rng 1 6))
      |> List.sort_uniq compare
    in
    let cap = List.fold_left (fun a (_, c) -> a + c) 0 picked in
    if Splitmix.chance rng 1 4 then
      Lp.Model.add_constr m picked Lp.Model.Leq (Splitmix.in_range rng 1 cap)
    else Lp.Model.add_constr m picked Lp.Model.Geq (Splitmix.in_range rng 1 (max 1 (cap / 2)))
  done;
  let frozen = Lp.Frozen.of_model m in
  let steps = Splitmix.in_range rng 300 600 in
  { frozen; deltas = init_seq steps (fun _ -> random_delta rng vars) }

(* Row/column appends over a covering base: the incremental-service fast
   path.  The deltas form a monotone append chain — each step derives from
   the previous via [append_col]/[append_row], so a warm session absorbs
   increments ([extends_appends]) while a cold rebuild re-extends from the
   base.  Appended columns keep obj >= 0 (the warm-absorb contract) and
   stay binary when integer; appended rows may reference appended columns.
   Bound fixes ride along but only ever touch base variables. *)
let gen_lp_append rng =
  let nvars = Splitmix.in_range rng 3 7 in
  let nrows = Splitmix.in_range rng 2 6 in
  let frozen, vars = covering_model rng ~nvars ~nrows ~tie_costs:(Splitmix.bool rng) in
  let steps = Splitmix.in_range rng 3 10 in
  let total = ref (Lp.Frozen.num_vars frozen) in
  let chain = ref Lp.Frozen.Delta.empty in
  let deltas =
    init_seq steps (fun i ->
        if Splitmix.chance rng 2 3 then begin
          chain :=
            Lp.Frozen.Delta.append_col
              ~integer:(Splitmix.bool rng)
              ~upper:1
              ~name:(Printf.sprintf "a%d" i)
              ~obj:(Splitmix.int rng 5)
              !chain;
          incr total
        end;
        if Splitmix.chance rng 3 4 then begin
          let width = Splitmix.in_range rng 1 3 in
          let picked =
            init_seq width (fun _ -> Splitmix.int rng !total) |> List.sort_uniq compare
          in
          chain :=
            Lp.Frozen.Delta.append_row Lp.Model.Geq 1
              (List.map (fun v -> (v, 1)) picked)
              !chain
        end;
        if Splitmix.chance rng 1 4 then begin
          let v = vars.(Splitmix.int rng (Array.length vars)) in
          if Splitmix.bool rng then Lp.Frozen.Delta.fix_zero v !chain
          else Lp.Frozen.Delta.force_one v !chain
        end
        else !chain)
  in
  { frozen; deltas }

(* ----- profile table ------------------------------------------------------- *)

let table =
  [
    ("mixed", 4, `Db gen_mixed);
    ("bag_heavy", 3, `Db gen_bag_heavy);
    ("self_join", 3, `Db gen_self_join);
    ("exo_heavy", 2, `Db gen_exo_heavy);
    ("empty_rel", 1, `Db gen_empty_rel);
    ("dup_witness", 2, `Db gen_dup_witness);
    ("dense_ties", 1, `Db gen_dense_ties);
    ("lp_cover", 2, `Lp gen_lp_cover);
    ("lp_drift", 1, `Lp gen_lp_drift);
    ("lp_append", 2, `Lp gen_lp_append);
  ]

let profiles = List.map (fun (n, _, _) -> n) table

let total_weight = List.fold_left (fun acc (_, w, _) -> acc + w) 0 table

let of_seed seed =
  let rng = Splitmix.of_seed seed in
  let pick = Splitmix.int rng total_weight in
  let rec find acc = function
    | [] -> assert false
    | (name, w, g) :: rest -> if pick < acc + w then (name, g) else find (acc + w) rest
  in
  let profile, g = find 0 table in
  (* Each case body draws from a split child, so adding a profile never
     perturbs the draws of existing ones. *)
  let body = Splitmix.split rng in
  let shape = match g with `Db f -> Db (f body) | `Lp f -> Lp (f body) in
  { seed; profile; shape }

let case_seed_of rng = Splitmix.fresh_seed (Splitmix.split rng)

let stream ~seed n =
  let root = Splitmix.of_seed seed in
  List.map of_seed (init_seq n (fun _ -> case_seed_of root))

let endo_count (c : db_case) =
  List.length (Problem.endogenous_tuples c.q c.db)
