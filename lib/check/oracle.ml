open! Relalg
open Resilience

type verdict = Pass | Fail of string

type t = {
  name : string;
  descr : string;
  applies : Gen.case -> bool;
  check : Gen.case -> verdict;
}

(* ----- helpers ------------------------------------------------------------- *)

let eps = 1e-6

let kind : 'a Solve.outcome -> string = function
  | Solve.Solved _ -> "solved"
  | Solve.Query_false -> "query_false"
  | Solve.No_contingency -> "no_contingency"
  | Solve.Budget_exhausted _ -> "budget"

let failf fmt = Format.kasprintf (fun s -> Fail s) fmt

let db_only f = function { Gen.shape = Gen.Db _; _ } -> f | _ -> false
let lp_only f = function { Gen.shape = Gen.Lp _; _ } -> f | _ -> false

let on_db check case =
  match case.Gen.shape with Gen.Db c -> check c | Gen.Lp _ -> Pass

let on_lp check case =
  match case.Gen.shape with Gen.Lp c -> check c | Gen.Db _ -> Pass

(* Combine sub-checks, reporting the first failure. *)
let rec all_of = function
  | [] -> Pass
  | check :: rest -> ( match check () with Pass -> all_of rest | Fail _ as f -> f)

(* The cold reference ranking: a fresh encode + presolve + solve per tuple —
   exactly what the session layer must agree with. *)
let cold_ranking ~exact sem q db =
  Database.tuples db
  |> List.filter_map (fun info ->
         let tid = info.Database.id in
         if Problem.tuple_exo q db tid then None
         else
           match Solve.responsibility ~exact sem q db tid with
           | Solve.Solved a -> Some (tid, a.Solve.rsp_value)
           | Solve.Query_false | Solve.No_contingency | Solve.Budget_exhausted _ -> None)
  |> List.stable_sort (fun (_, a) (_, b) -> compare a b)

(* ----- database oracles ---------------------------------------------------- *)

(* Float pipeline vs the identical pipeline over exact rationals. *)
let float_vs_exact ({ sem; q; db } : Gen.db_case) =
  let f = Solve.resilience ~exact:false sem q db in
  let e = Solve.resilience ~exact:true sem q db in
  all_of
    [
      (fun () ->
        match (f, e) with
        | Solve.Solved a, Solve.Solved b when a.Solve.res_value <> b.Solve.res_value ->
          failf "RES*: float %d <> exact %d" a.Solve.res_value b.Solve.res_value
        | _ when kind f <> kind e -> failf "RES* verdict: float %s <> exact %s" (kind f) (kind e)
        | _ -> Pass);
      (fun () ->
        match (Solve.resilience_lp ~exact:false sem q db, Solve.resilience_lp ~exact:true sem q db) with
        | Some a, Some b when Float.abs (a -. b) > 1e-5 ->
          failf "LP[RES*]: float %g <> exact %g" a b
        | Some _, None | None, Some _ -> failf "LP[RES*]: float and exact disagree on existence"
        | _ -> Pass);
    ]

(* Warm-started session (shared super-model) vs one-shot cold solves. *)
let warm_vs_cold ({ sem; q; db } : Gen.db_case) =
  let session = Session.create sem q db in
  all_of
    [
      (fun () ->
        match (Session.resilience session, Solve.resilience sem q db) with
        | Session.Solved a, Solve.Solved b when a.Session.res_value <> b.Solve.res_value ->
          failf "RES*: session %d <> cold %d" a.Session.res_value b.Solve.res_value
        | Session.Solved a, Solve.Solved _
          when not (Solve.verify_contingency sem q db a.Session.contingency) ->
          Fail "session contingency set does not falsify the query"
        | s, c when kind s <> kind c -> failf "RES* verdict: session %s <> cold %s" (kind s) (kind c)
        | _ -> Pass);
      (fun () ->
        let warm = List.map (fun (tid, k, _) -> (tid, k)) (Session.ranking session) in
        let cold = cold_ranking ~exact:false sem q db in
        if warm <> cold then
          failf "ranking: session has %d entries vs cold %d (or a k differs)"
            (List.length warm) (List.length cold)
        else Pass);
    ]

(* Many rankings through one session: the cross-solve warm-start chain must
   be drift-free (the PR 2 eta-drift regression class). *)
let warm_replay ({ sem; q; db } : Gen.db_case) =
  let session = Session.create sem q db in
  let first = Session.ranking session in
  let rec go i =
    if i = 0 then Pass
    else begin
      (* Interleave a resilience delta so the basis the next ranking warms
         from differs from the one the previous ranking left. *)
      ignore (Session.resilience session);
      if Session.ranking session <> first then
        failf "ranking drifted from the first answer after %d warm replays" (13 - i)
      else go (i - 1)
    end
  in
  go 12

(* Presolve must be invisible: identical values and verdicts with the
   reductions on and off, for resilience and every tuple's responsibility. *)
let presolve_on_off ({ sem; q; db } : Gen.db_case) =
  all_of
    ((fun () ->
       match (Solve.resilience ~presolve:true sem q db, Solve.resilience ~presolve:false sem q db) with
       | Solve.Solved a, Solve.Solved b when a.Solve.res_value <> b.Solve.res_value ->
         failf "RES*: presolve %d <> raw %d" a.Solve.res_value b.Solve.res_value
       | p, r when kind p <> kind r -> failf "RES* verdict: presolve %s <> raw %s" (kind p) (kind r)
       | _ -> Pass)
    :: List.map
         (fun tid () ->
           match
             ( Solve.responsibility ~presolve:true sem q db tid,
               Solve.responsibility ~presolve:false sem q db tid )
           with
           | Solve.Solved a, Solve.Solved b when a.Solve.rsp_value <> b.Solve.rsp_value ->
             failf "RSP*(t%d): presolve %d <> raw %d" tid a.Solve.rsp_value b.Solve.rsp_value
           | p, r when kind p <> kind r ->
             failf "RSP*(t%d) verdict: presolve %s <> raw %s" tid (kind p) (kind r)
           | _ -> Pass)
         (Problem.endogenous_tuples q db))

(* The unified ILP vs exhaustive search (small instances only). *)
let vs_bruteforce ({ sem; q; db } : Gen.db_case) =
  all_of
    ((fun () ->
       match (Solve.resilience sem q db, Bruteforce.resilience sem q db) with
       | Solve.Solved a, Some v when a.Solve.res_value <> v ->
         failf "RES*: ILP %d <> brute force %d" a.Solve.res_value v
       | Solve.Solved a, None -> failf "RES*: ILP solved %d, brute force found nothing" a.Solve.res_value
       | (Solve.Query_false | Solve.No_contingency), Some v ->
         failf "RES*: ILP says none, brute force found %d" v
       | _ -> Pass)
    :: List.map
         (fun tid () ->
           match (Solve.responsibility sem q db tid, Bruteforce.responsibility sem q db tid) with
           | Solve.Solved a, Some v when a.Solve.rsp_value <> v ->
             failf "RSP*(t%d): ILP %d <> brute force %d" tid a.Solve.rsp_value v
           | Solve.Solved a, None ->
             failf "RSP*(t%d): ILP solved %d, brute force found nothing" tid a.Solve.rsp_value
           | (Solve.Query_false | Solve.No_contingency), Some v ->
             failf "RSP*(t%d): ILP says none, brute force found %d" tid v
           | _ -> Pass)
         (Problem.endogenous_tuples q db))

(* The unified ILP vs the dedicated hitting-set branch-and-bound. *)
let vs_hitting_set ({ sem; q; db } : Gen.db_case) =
  match (Solve.resilience sem q db, Hitting_set.resilience sem q db) with
  | Solve.Solved a, Some (v, picked) ->
    if a.Solve.res_value <> v then failf "RES*: ILP %d <> hitting set %d" a.Solve.res_value v
    else if not (Solve.verify_contingency sem q db picked) then
      Fail "hitting-set contingency does not falsify the query"
    else Pass
  | Solve.Solved a, None -> failf "RES*: ILP solved %d, hitting set found nothing" a.Solve.res_value
  | (Solve.Query_false | Solve.No_contingency), Some (v, _) ->
    failf "RES*: ILP says none, hitting set found %d" v
  | _ -> Pass

(* ranking_par must be bit-identical to ranking at every job count. *)
let par_vs_seq ({ sem; q; db } : Gen.db_case) =
  let sequential = Session.ranking (Session.create sem q db) in
  let rec go = function
    | [] -> Pass
    | jobs :: rest ->
      if Session.ranking_par ~jobs (Session.create sem q db) <> sequential then
        failf "ranking_par with %d jobs differs from the sequential ranking" jobs
      else go rest
  in
  go [ 1; 2; 4 ]

(* The paper's sandwich: LP[RES*] <= RES* <= every approximation's value,
   and each approximation's deletion set really falsifies the query. *)
let sandwich ({ sem; q; db } : Gen.db_case) =
  match Solve.resilience sem q db with
  | Solve.Solved a ->
    let ilp = float_of_int a.Solve.res_value in
    let upper name (r : Approx.result option) () =
      match r with
      | None -> Pass
      | Some r ->
        if float_of_int r.Approx.value < ilp -. eps then
          failf "%s value %d below RES* %d" name r.Approx.value a.Solve.res_value
        else if not (Solve.verify_contingency sem q db r.Approx.tuples) then
          failf "%s deletion set does not falsify the query" name
        else Pass
    in
    all_of
      [
        (fun () ->
          match Solve.resilience_lp sem q db with
          | Some lp when lp > ilp +. eps -> failf "LP[RES*] %g above RES* %d" lp a.Solve.res_value
          | None -> Fail "LP[RES*] has no program but the ILP solved"
          | _ -> Pass);
        upper "LP-rounding" (Approx.lp_rounding_res sem q db);
        upper "Flow-CT" (Approx.flow_ct_res sem q db);
        upper "Flow-CW" (Approx.flow_cw_res sem q db);
        (fun () ->
          match Solve.resilience_flow sem q db with
          | Some (Solve.Solved f) when f.Solve.res_value <> a.Solve.res_value ->
            failf "exact flow baseline %d <> ILP %d" f.Solve.res_value a.Solve.res_value
          | _ -> Pass);
      ]
  | Solve.Query_false | Solve.No_contingency | Solve.Budget_exhausted _ -> Pass

(* ----- LP oracles ---------------------------------------------------------- *)

module FS = Lp.Solvers.Float_simplex
module FB = Lp.Solvers.Float_bb
module EB = Lp.Solvers.Exact_bb

(* One warm session replays the whole delta sequence; every step must match
   a cold session (fresh all-slack basis) on the same delta.  This is the
   sharpest detector for basis/inverse drift across warm solves. *)
let lp_warm_vs_cold ({ frozen; deltas } : Gen.lp_case) =
  if not (FS.frozen_dual_applicable frozen) then Pass
  else begin
    let warm = FS.create_session frozen in
    let rec go i = function
      | [] -> Pass
      | delta :: rest -> (
        let w = FS.session_solve warm delta in
        let c = FS.session_solve (FS.create_session frozen) delta in
        match (w, c) with
        | FS.Optimal { objective = wo; solution = ws }, FS.Optimal { objective = co; _ } ->
          if Float.abs (wo -. co) > 1e-7 then
            failf "step %d: warm objective %.9g <> cold %.9g" i wo co
          else if not (Lp.Frozen.check_feasible ~delta frozen ws) then
            failf "step %d: warm solution violates the program" i
          else go (i + 1) rest
        | FS.Infeasible, FS.Infeasible | FS.Unbounded, FS.Unbounded -> go (i + 1) rest
        | _ -> failf "step %d: warm and cold outcome kinds differ" i)
    in
    go 0 deltas
  end

(* Float branch-and-bound (and root LP) vs the exact rational instantiation
   on the base program and a few deltas.  Small programs only: the exact
   path is the slow oracle. *)
let lp_float_vs_exact ({ frozen; deltas } : Gen.lp_case) =
  let fb_kind = function
    | FB.Optimal -> "optimal"
    | FB.Feasible -> "feasible"
    | FB.Infeasible -> "infeasible"
    | FB.Unbounded -> "unbounded"
    | FB.Limit_no_solution -> "limit"
  in
  let eb_kind = function
    | EB.Optimal -> "optimal"
    | EB.Feasible -> "feasible"
    | EB.Infeasible -> "infeasible"
    | EB.Unbounded -> "unbounded"
    | EB.Limit_no_solution -> "limit"
  in
  let take3 = function a :: b :: c :: _ -> [ a; b; c ] | l -> l in
  let checks =
    List.map
      (fun delta () ->
        let f = FB.solve_frozen ~delta frozen in
        let e = EB.solve_frozen ~delta frozen in
        if fb_kind f.FB.status <> eb_kind e.EB.status then
          failf "B&B status: float %s <> exact %s" (fb_kind f.FB.status) (eb_kind e.EB.status)
        else
          match (f.FB.objective, e.EB.objective) with
          | Some a, Some b when Float.abs (a -. Numeric.Rat.to_float b) > 1e-6 ->
            failf "B&B objective: float %g <> exact %s" a (Numeric.Rat.to_string b)
          | _ -> Pass)
      (Lp.Frozen.Delta.empty :: take3 deltas)
  in
  all_of checks

(* ----- basis-kernel differential -------------------------------------------- *)

(* The sparse LU kernel vs the dense reference inverse, over the same warm
   delta chain: identical outcome kinds, matching optima, and a
   program-feasible sparse solution at every step.  Pivot sequences may
   differ (pricing order is kernel-dependent), so only basis-independent
   quantities are compared. *)
let basis_lp ({ frozen; deltas } : Gen.lp_case) =
  if not (FS.frozen_dual_applicable frozen) then Pass
  else begin
    let dense = FS.create_session ~kernel:`Dense frozen in
    let sparse = FS.create_session ~kernel:`Sparse frozen in
    let rec go i = function
      | [] -> Pass
      | delta :: rest -> (
        match (FS.session_solve sparse delta, FS.session_solve dense delta) with
        | FS.Optimal { objective = so; solution = ss }, FS.Optimal { objective = dobj; _ } ->
          if Float.abs (so -. dobj) > 1e-7 then
            failf "step %d: sparse objective %.9g <> dense %.9g" i so dobj
          else if not (Lp.Frozen.check_feasible ~delta frozen ss) then
            failf "step %d: sparse-kernel solution violates the program" i
          else go (i + 1) rest
        | FS.Infeasible, FS.Infeasible | FS.Unbounded, FS.Unbounded -> go (i + 1) rest
        | _ -> failf "step %d: sparse and dense kernel outcome kinds differ" i)
    in
    go 0 deltas
  end

(* End to end on a database: rankings through a sparse-kernel session at
   jobs 1/2/4 must be bit-identical to the dense-kernel reference ranking
   (k values are integers and scores are derived from them, so equality is
   exact, not approximate). *)
let basis_db ({ sem; q; db } : Gen.db_case) =
  let ranking basis jobs = Session.ranking_par ~jobs (Session.create ~basis sem q db) in
  let dense = ranking `Dense 1 in
  let rec go = function
    | [] -> Pass
    | jobs :: rest ->
      if ranking `Sparse jobs <> dense then
        failf "sparse-kernel ranking at %d jobs differs from the dense reference" jobs
      else go rest
  in
  go [ 1; 2; 4 ]

let dense_vs_sparse_basis case =
  match case.Gen.shape with Gen.Db c -> basis_db c | Gen.Lp c -> basis_lp c

(* ----- certificate soundness ------------------------------------------------ *)

(* Lp.Struct is advisory for performance but must never lie: its verify must
   accept every certificate analyze emits, structural witnesses must
   transfer to every delta (TU is closed under taking submatrices), and an
   Integral verdict must imply the branch-and-bound finds the root LP
   integral. *)
let struct_soundness_lp ({ frozen; deltas } : Gen.lp_case) =
  let cert = Lp.Struct.analyze ~probe_root:true frozen in
  all_of
    [
      (fun () ->
        if Lp.Struct.verify frozen cert then Pass
        else failf "emitted %s certificate rejected by its own verify"
               (Lp.Struct.verdict_name cert));
      (fun () ->
        if not (Lp.Struct.structural cert) then Pass
        else if List.for_all (fun delta -> Lp.Struct.verify ~delta frozen cert) deltas then
          Pass
        else Fail "structural certificate does not transfer to a delta of its program");
      (fun () ->
        match cert.Lp.Struct.verdict with
        | Lp.Struct.Integral _ -> (
          let r = FB.solve_frozen frozen in
          match r.FB.status with
          | FB.Optimal when not r.FB.root_integral ->
            Fail "certified integral but the branch-and-bound root was fractional"
          | _ -> Pass)
        | Lp.Struct.Fractional _ | Lp.Struct.Unknown -> Pass);
    ]

(* On database cases the certificate feeds the cross-layer validator: it
   must never report a V101 contradiction, and an integral certificate must
   mean LP[RES*] already attains RES*. *)
let struct_soundness_db ({ sem; q; db } : Gen.db_case) =
  let report = Validate.validate sem q db in
  all_of
    [
      (fun () ->
        match Lp.Lint.errors report.Validate.diags with
        | [] -> Pass
        | d :: _ -> failf "cross-layer validator: %s %s" d.Lp.Lint.code d.Lp.Lint.message);
      (fun () ->
        match report.Validate.cert with
        | Some c when Lp.Struct.is_integral c -> (
          match (Solve.resilience sem q db, Solve.resilience_lp sem q db) with
          | Solve.Solved a, Some lp
            when Float.abs (lp -. float_of_int a.Solve.res_value) > 1e-5 ->
            failf "certified integral but LP[RES*] %g <> RES* %d" lp a.Solve.res_value
          | _ -> Pass)
        | _ -> Pass);
    ]

let struct_soundness case =
  match case.Gen.shape with
  | Gen.Db c -> struct_soundness_db c
  | Gen.Lp c -> struct_soundness_lp c

(* ----- incremental service -------------------------------------------------- *)

(* The delta-maintenance core behind [resil serve]: a random insert/delete
   stream applied to an [Incremental.t] must leave it agreeing with
   from-scratch enumeration + encode + solve after every mutation — the
   witness set (as valuations), the RES* value and verdict, a sampled
   tuple's RSP*, and any returned contingency must falsify the query.
   The same stream is replayed at float and at exact-rational fields. *)

let sorted_valuations ws = List.sort compare (List.map (fun w -> w.Eval.valuation) ws)

let serve_incremental_step ~step sem q inc =
  let db = Incremental.db inc in
  let exact = Incremental.exact inc in
  all_of
    [
      (fun () ->
        let want = sorted_valuations (Eval.witnesses q db) in
        let got = sorted_valuations (Incremental.witnesses inc) in
        if got <> want then
          failf "step %d: maintained witnesses diverge (%d vs %d)" step (List.length got)
            (List.length want)
        else Pass);
      (fun () ->
        match (Incremental.resilience inc, Solve.resilience ~exact sem q db) with
        | Session.Solved a, Solve.Solved b when a.Session.res_value <> b.Solve.res_value ->
          failf "step %d: incremental RES* %d <> cold %d" step a.Session.res_value
            b.Solve.res_value
        | Session.Solved a, Solve.Solved _
          when not (Solve.verify_contingency sem q db a.Session.contingency) ->
          failf "step %d: incremental contingency does not falsify the query" step
        | i, c when kind i <> kind c ->
          failf "step %d: RES* verdict: incremental %s <> cold %s" step (kind i) (kind c)
        | _ -> Pass);
      (fun () ->
        match
          List.find_opt (fun info -> not (Problem.tuple_exo q db info.Database.id)) (Database.tuples db)
        with
        | None -> Pass
        | Some info -> (
          let tid = info.Database.id in
          match (Incremental.responsibility inc tid, Solve.responsibility ~exact sem q db tid) with
          | Session.Solved a, Solve.Solved b when a.Session.rsp_value <> b.Solve.rsp_value ->
            failf "step %d: incremental RSP*(t%d) %d <> cold %d" step tid a.Session.rsp_value
              b.Solve.rsp_value
          | i, c when kind i <> kind c ->
            failf "step %d: RSP*(t%d) verdict: incremental %s <> cold %s" step tid (kind i)
              (kind c)
          | _ -> Pass));
    ]

let serve_incremental_db seed ({ sem; q; db } : Gen.db_case) =
  let templates =
    List.sort_uniq compare
      (List.map (fun info -> (info.Database.rel, Array.length info.Database.args)) (Database.tuples db))
  in
  if templates = [] then Pass
  else begin
    (* The op stream is precomputed against a scratch copy so the float and
       exact replays see identical mutations (ids stay in lockstep because
       [Database.copy] preserves ids and the id counter). *)
    let rng = Splitmix.of_seed (seed lxor 0x5e7f1e) in
    let scratch = Database.copy db in
    let steps = Splitmix.in_range rng 4 6 in
    (* left-to-right: each op's draws must precede the next op's *)
    let rec ops_seq acc i =
      if i = steps then List.rev acc
      else
        let op =
          let live = Database.tuples scratch in
          if live <> [] && Splitmix.chance rng 2 5 then begin
            let info = Splitmix.choose rng live in
            Database.remove scratch info.Database.id;
            `Del info.Database.id
          end
          else begin
            let rel, arity = Splitmix.choose rng templates in
            let args = Array.init arity (fun _ -> Splitmix.in_range rng 0 4) in
            let mult = if sem = Problem.Bag && Splitmix.chance rng 1 4 then 2 else 1 in
            let exo = Splitmix.chance rng 1 5 in
            ignore (Database.add ~mult ~exo scratch rel args);
            `Ins (rel, args, mult, exo)
          end
        in
        ops_seq (op :: acc) (i + 1)
    in
    let ops = ops_seq [] 0 in
    let replay exact =
      let inc = Incremental.create ~exact sem q db in
      let rec go step = function
        | [] -> Pass
        | op :: rest -> (
          (match op with
          | `Ins (rel, args, mult, exo) -> ignore (Incremental.insert ~mult ~exo inc rel args)
          | `Del id -> Incremental.delete inc id);
          match serve_incremental_step ~step sem q inc with
          | Pass -> go (step + 1) rest
          | Fail m -> Fail (Printf.sprintf "exact=%b %s" exact m))
      in
      go 0 ops
    in
    all_of [ (fun () -> replay false); (fun () -> replay true) ]
  end

let serve_incremental case =
  match case.Gen.shape with
  | Gen.Db c -> serve_incremental_db case.Gen.seed c
  | Gen.Lp _ -> Pass

(* ----- solution enumeration -------------------------------------------------- *)

(* The enumeration engine vs exhaustive search: every path that streams
   minimum contingency sets — the warm session (float, exact, parallel) and
   the cold no-presolve reference — must return EXACTLY the brute-force
   family, in canonical order, with a criticality table re-derivable from
   the sets.  Small instances only: the brute force walks all 2^n subsets. *)
let enumeration_complete ({ sem; q; db } : Gen.db_case) =
  let crit_check label (f : Enumerate.family) =
    let crits = Enumerate.criticality f in
    let total = List.length f.Enumerate.sets in
    let count_of tid = List.length (List.filter (List.mem tid) f.Enumerate.sets) in
    let rec go = function
      | [] ->
        (* Every membership is counted exactly once: sum of per-tuple
           counts = sum of set sizes. *)
        let sum_counts =
          List.fold_left (fun a (c : Enumerate.criticality) -> a + c.Enumerate.crit_count) 0 crits
        in
        let sum_sizes = List.fold_left (fun a s -> a + List.length s) 0 f.Enumerate.sets in
        if sum_counts <> sum_sizes then
          failf "%s: criticality counts sum to %d but set sizes sum to %d" label sum_counts
            sum_sizes
        else Pass
      | (c : Enumerate.criticality) :: rest ->
        if c.Enumerate.crit_total <> total then
          failf "%s: criticality total %d <> family size %d" label c.Enumerate.crit_total total
        else if c.Enumerate.crit_count <> count_of c.Enumerate.crit_tuple then
          failf "%s: t%d criticality count %d <> recount %d" label c.Enumerate.crit_tuple
            c.Enumerate.crit_count
            (count_of c.Enumerate.crit_tuple)
        else if c.Enumerate.crit_count <= 0 || c.Enumerate.crit_count > total then
          failf "%s: t%d criticality count %d outside (0, %d]" label c.Enumerate.crit_tuple
            c.Enumerate.crit_count total
        else if
          Float.abs
            (c.Enumerate.crit_float
            -. (float_of_int c.Enumerate.crit_count /. float_of_int total))
          > 1e-9
        then failf "%s: t%d criticality float %g <> %d/%d" label c.Enumerate.crit_tuple
               c.Enumerate.crit_float c.Enumerate.crit_count total
        else if
          not (Numeric.Rat.equal c.Enumerate.crit_exact (Numeric.Rat.of_ints c.Enumerate.crit_count total))
        then
          failf "%s: t%d criticality exact %s <> %d/%d" label c.Enumerate.crit_tuple
            (Numeric.Rat.to_string c.Enumerate.crit_exact)
            c.Enumerate.crit_count total
        else go rest
    in
    go crits
  in
  let check ~brute label outcome =
    match (outcome, brute) with
    | Solve.Solved f, Some (w, sets) ->
      if f.Enumerate.opt <> w then failf "%s: opt %d <> brute force %d" label f.Enumerate.opt w
      else if not f.Enumerate.exhausted then
        failf "%s: not exhausted on an unbudgeted small instance" label
      else if f.Enumerate.sets <> sets then
        failf "%s: %d set(s) <> brute force %d (or the sets themselves differ)" label
          (List.length f.Enumerate.sets)
          (List.length sets)
      else crit_check label f
    | Solve.Solved f, None ->
      failf "%s: enumerated %d set(s), brute force found none" label (List.length f.Enumerate.sets)
    | (Solve.Query_false | Solve.No_contingency), Some (w, _) ->
      failf "%s: says no family, brute force found opt %d" label w
    | (Solve.Query_false | Solve.No_contingency), None -> Pass
    | Solve.Budget_exhausted _, _ -> failf "%s: budget exhausted on an unbudgeted solve" label
  in
  let of_cold = function
    | Enumerate.Family f -> Solve.Solved f
    | Enumerate.Query_false -> Solve.Query_false
    | Enumerate.No_contingency -> Solve.No_contingency
    | Enumerate.Budget -> Solve.Budget_exhausted None
  in
  let bres = Bruteforce.resilience_family sem q db in
  all_of
    ([
       (fun () -> check ~brute:bres "RES warm float" (Solve.enumerate_resilience sem q db));
       (fun () ->
         check ~brute:bres "RES warm exact" (Solve.enumerate_resilience ~exact:true sem q db));
       (fun () ->
         check ~brute:bres "RES warm jobs=2" (Solve.enumerate_resilience ~jobs:2 sem q db));
       (fun () -> check ~brute:bres "RES cold" (of_cold (Enumerate.resilience_cold sem q db)));
       (fun () ->
         check ~brute:bres "RES cold exact"
           (of_cold (Enumerate.resilience_cold ~exact:true sem q db)));
     ]
    @
    match Problem.endogenous_tuples q db with
    | [] -> []
    | tid :: _ ->
      let brsp = Bruteforce.responsibility_family sem q db tid in
      [
        (fun () ->
          check ~brute:brsp "RSP warm float" (Solve.enumerate_responsibility sem q db tid));
        (fun () ->
          check ~brute:brsp "RSP warm exact"
            (Solve.enumerate_responsibility ~exact:true sem q db tid));
        (fun () ->
          check ~brute:brsp "RSP cold" (of_cold (Enumerate.responsibility_cold sem q db tid)));
      ])

(* ----- the matrix ---------------------------------------------------------- *)

let small_db case =
  match case.Gen.shape with Gen.Db c -> Gen.endo_count c <= 13 | Gen.Lp _ -> false

let small_lp case =
  match case.Gen.shape with
  | Gen.Lp c -> Lp.Frozen.num_vars c.frozen <= 10 && Lp.Frozen.num_rows c.frozen <= 10
  | Gen.Db _ -> false

let all =
  [
    {
      name = "float_vs_exact";
      descr = "float simplex pipeline = exact rational pipeline (RES*, LP[RES*])";
      applies = db_only true;
      check = on_db float_vs_exact;
    };
    {
      name = "warm_vs_cold";
      descr = "warm Resilience.Session = one-shot cold Solve, per question";
      applies = db_only true;
      check = on_db warm_vs_cold;
    };
    {
      name = "warm_replay";
      descr = "repeated rankings through one session never drift";
      applies = db_only true;
      check = on_db warm_replay;
    };
    {
      name = "presolve_on_off";
      descr = "presolve preserves every optimum and verdict";
      applies = db_only true;
      check = on_db presolve_on_off;
    };
    {
      name = "vs_bruteforce";
      descr = "ILP = exhaustive search (RES* and every tuple's RSP*; small instances)";
      applies = small_db;
      check = on_db vs_bruteforce;
    };
    {
      name = "vs_hitting_set";
      descr = "ILP = dedicated hitting-set branch-and-bound";
      applies = db_only true;
      check = on_db vs_hitting_set;
    };
    {
      name = "par_vs_seq";
      descr = "ranking_par at jobs 1/2/4 is bit-identical to the sequential ranking";
      applies = db_only true;
      check = on_db par_vs_seq;
    };
    {
      name = "sandwich";
      descr = "LP[RES*] <= RES* <= flow/rounding upper bounds, with valid deletion sets";
      applies = db_only true;
      check = on_db sandwich;
    };
    {
      name = "struct_soundness";
      descr = "Lp.Struct certificates verify, transfer across deltas, never contradict solvers";
      applies = (fun _ -> true);
      check = struct_soundness;
    };
    {
      name = "dense_vs_sparse_basis";
      descr = "sparse LU kernel = dense reference inverse (optima; rankings at jobs 1/2/4)";
      applies = (fun _ -> true);
      check = dense_vs_sparse_basis;
    };
    {
      name = "lp_warm_vs_cold";
      descr = "warm simplex session = cold session on every delta of the sequence";
      applies = lp_only true;
      check = on_lp lp_warm_vs_cold;
    };
    {
      name = "lp_float_vs_exact";
      descr = "float branch-and-bound = exact rational branch-and-bound (small programs)";
      applies = small_lp;
      check = on_lp lp_float_vs_exact;
    };
    {
      name = "enumeration_complete";
      descr =
        "enumeration (warm float/exact/parallel, cold reference) = brute-force family, with \
         criticality cross-check (small instances)";
      applies = small_db;
      check = on_db enumeration_complete;
    };
    {
      name = "serve_incremental";
      descr = "incremental witness/program maintenance = from-scratch re-enumeration, under insert/delete streams";
      applies = small_db;
      check = serve_incremental;
    };
  ]

let named name = List.find_opt (fun o -> o.name = name) all

let select names =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
      match named n with Some o -> go (o :: acc) rest | None -> Error n)
  in
  go [] names

let run oracles case =
  List.filter_map
    (fun o -> if o.applies case then Some (o.name, o.check case) else None)
    oracles
