(** Greedy delta-debugging of a failing case down to a minimal repro.

    Given a case on which an oracle reports a discrepancy, the shrinker
    searches for a smaller case on which {e the same oracle} still fails —
    any failure message counts, not necessarily the original one.  The
    reductions, each retried to a bounded fixpoint:

    - database cases: drop tuple chunks (classic ddmin chunk sweep, halving
      chunk sizes), then reduce bag multiplicities to 1, then clear
      exogenous flags;
    - LP cases: drop constraint-row chunks (the program is rebuilt via
      {!Lp.Frozen.make} over the same variables), drop delta steps, and
      thin each surviving delta's bindings.

    An oracle raising an exception on a candidate counts as failing: a
    crash on a smaller instance is at least as good a repro as the original
    discrepancy. *)

val shrink : ?rounds:int -> Oracle.t -> Gen.case -> Gen.case * string
(** [shrink oracle case] is the reduced case and the oracle's message on it.
    If the oracle does not fail on [case], the case is returned unchanged
    with an empty message.  [rounds] bounds the outer fixpoint (default
    8). *)
