open Relalg

type key_mode = Spanning | Adjacent

type t = {
  graph : Maxflow.t;
  source : int;
  sink : int;
  edge_tuple : (Maxflow.edge_id, Database.tuple_id) Hashtbl.t;
  tuple_edges : (Database.tuple_id, Maxflow.edge_id list) Hashtbl.t;
  witness_tuples : Database.tuple_id list array;  (* aligned with input witnesses *)
  weight_of : Database.tuple_id -> int;
}

let build q ~order ~weight ~db ~witnesses mode =
  let m = Array.length order in
  let keys =
    (* Cut signatures, one per cut 0..m-2. *)
    Array.init (max 0 (m - 1)) (fun k ->
        match mode with
        | Spanning -> Linearize.spanning_vars q order k
        | Adjacent -> Linearize.adjacent_vars q order k)
  in
  let graph = Maxflow.create () in
  let source = Maxflow.add_node graph in
  let sink = Maxflow.add_node graph in
  let node_tbl : (int * int list, int) Hashtbl.t = Hashtbl.create 256 in
  let node_at cut key_vals =
    match Hashtbl.find_opt node_tbl (cut, key_vals) with
    | Some n -> n
    | None ->
      let n = Maxflow.add_node graph in
      Hashtbl.add node_tbl (cut, key_vals) n;
      n
  in
  let edge_tbl : (int * Database.tuple_id * int list * int list, Maxflow.edge_id) Hashtbl.t =
    Hashtbl.create 256
  in
  let edge_tuple = Hashtbl.create 256 in
  let tuple_edges = Hashtbl.create 256 in
  let nw = List.length witnesses in
  let witness_tuples = Array.make nw [] in
  let weight_of tid = weight (Database.tuple db tid) in
  List.iteri
    (fun wi w ->
      let value_of v = List.assoc v w.Eval.valuation in
      let key cut = List.map value_of keys.(cut) in
      for pos = 0 to m - 1 do
        let tid = w.Eval.tuples.(order.(pos)) in
        let left_key = if pos = 0 then [] else key (pos - 1) in
        let right_key = if pos = m - 1 then [] else key pos in
        let ident = (pos, tid, left_key, right_key) in
        if not (Hashtbl.mem edge_tbl ident) then begin
          let src = if pos = 0 then source else node_at (pos - 1) left_key in
          let dst = if pos = m - 1 then sink else node_at pos right_key in
          let e = Maxflow.add_edge graph ~src ~dst ~cap:(weight_of tid) in
          Hashtbl.add edge_tbl ident e;
          Hashtbl.add edge_tuple e tid;
          let cur = try Hashtbl.find tuple_edges tid with Not_found -> [] in
          Hashtbl.replace tuple_edges tid (e :: cur)
        end
      done;
      witness_tuples.(wi) <- Eval.tuple_set w)
    witnesses;
  { graph; source; sink; edge_tuple; tuple_edges; witness_tuples; weight_of }

(* Sum the weights of the distinct tuples behind a cut's edges. *)
let tuples_of_cut t cut_edges =
  let tids =
    List.map (fun e -> Hashtbl.find t.edge_tuple e) cut_edges |> List.sort_uniq compare
  in
  let value =
    List.fold_left
      (fun acc tid ->
        let w = t.weight_of tid in
        if Maxflow.is_infinite acc || Maxflow.is_infinite w then Maxflow.infinity else acc + w)
      0 tids
  in
  (value, tids)

let resilience_cut t =
  let value, cut = Maxflow.min_cut t.graph ~source:t.source ~sink:t.sink in
  if value = 0 then (0, [])
  else if Maxflow.is_infinite value then (Maxflow.infinity, [])
  else tuples_of_cut t cut

let responsibility_cut t ~tuple =
  let t_edges = try Hashtbl.find t.tuple_edges tuple with Not_found -> [] in
  let containing =
    Array.to_list t.witness_tuples
    |> List.mapi (fun i ts -> (i, ts))
    |> List.filter (fun (_, ts) -> List.mem tuple ts)
  in
  if containing = [] then None
  else begin
    (* Virtually delete the responsibility tuple: its paths need no cutting. *)
    let saved = List.map (fun e -> (e, Maxflow.cap t.graph e)) t_edges in
    List.iter (fun e -> Maxflow.set_cap t.graph e 0) t_edges;
    let best = ref None in
    List.iter
      (fun (_wi, wi_tuples) ->
        (* Preserve witness wi: every edge of every one of its tuples becomes
           uncuttable (a dissociated copy elsewhere still deletes the same
           tuple, so copies must be frozen too). *)
        let frozen =
          List.concat_map
            (fun tid ->
              if tid = tuple then []
              else
                try Hashtbl.find t.tuple_edges tid with Not_found -> [])
            wi_tuples
          |> List.sort_uniq compare
          |> List.map (fun e -> (e, Maxflow.cap t.graph e))
        in
        List.iter (fun (e, _) -> Maxflow.set_cap t.graph e Maxflow.infinity) frozen;
        let value, cut = Maxflow.min_cut t.graph ~source:t.source ~sink:t.sink in
        if not (Maxflow.is_infinite value) then begin
          let v, tids = if value = 0 then (0, []) else tuples_of_cut t cut in
          match !best with
          | Some (bv, _) when bv <= v -> ()
          | _ -> best := Some (v, tids)
        end;
        List.iter (fun (e, c) -> Maxflow.set_cap t.graph e c) frozen)
      containing;
    List.iter (fun (e, c) -> Maxflow.set_cap t.graph e c) saved;
    !best
  end
