open! Relalg

(** Flow-graph encodings of resilience and responsibility.

    Given an atom ordering, every witness becomes a source-to-sink path whose
    edges are its tuples (at their ordered positions); the node between two
    consecutive positions is keyed by the witness's values on a cut
    signature:

    - {!Spanning} keys use all variables spanning the cut.  Paths then
      correspond exactly to the original witnesses; tuples whose atom does
      not contain all spanning variables are {e dissociated} into several
      edges.  With an ordering accepted by {!Linearize.order_exact} no
      endogenous tuple dissociates and min-cut = resilience (the exact
      baseline); with an arbitrary ordering this is the Flow-CW
      approximation (constant witnesses, Section 9.2).
    - {!Adjacent} keys use only the variables shared by the two adjacent
      atoms.  No tuple ever dissociates, but recombined ({e spurious}) paths
      may appear; this is the Flow-CT approximation (constant tuples).

    Either way a cut maps back to a set of tuples whose deletion destroys
    every original witness, so the reported value — the summed weight of the
    distinct cut tuples — is always a valid upper bound on RES (and the
    corresponding statement for RSP). *)

type key_mode = Spanning | Adjacent

type t
(** A built flow graph, remembering the tuple behind every edge and the
    tuple set of every witness. *)

val build :
  Cq.t ->
  order:int array ->
  weight:(Database.tuple_info -> int) ->
  db:Database.t ->
  witnesses:Eval.witness list ->
  key_mode ->
  t
(** [weight] gives each tuple's deletion cost: 1 under set semantics, the
    multiplicity under bag semantics, {!Maxflow.infinity} for exogenous
    tuples. *)

val resilience_cut : t -> int * Database.tuple_id list
(** Minimum-cut upper bound on RES*: (summed weight of the distinct cut
    tuples, the tuples).  [(0, [])] when there is no witness.  The value is
    {!Maxflow.infinity}-sized when every cut must delete an exogenous tuple
    (RES undefined). *)

val responsibility_cut : t -> tuple:Database.tuple_id -> (int * Database.tuple_id list) option
(** Upper bound on RSP* of [tuple]: minimum over the witnesses containing it
    of the min-cut that preserves that witness (its edges made uncuttable)
    after discarding all of [tuple]'s own edges.  [None] if the tuple is in
    no witness or can never be made counterfactual. *)
