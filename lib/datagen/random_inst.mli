open! Relalg

(** Synthetic random instances, following the paper's protocol (Section 10):
    fix a maximum domain size, sample tuples uniformly without replacement,
    and under bag semantics replicate each tuple by a random count below a
    maximum bag size.  Growing instances are {e monotone}: the instance at
    size n is a prefix of the instance at size n' > n, as required for the
    per-plot "30 runs of logarithmically and monotonically increasing
    database instances". *)

type spec = { rel : string; arity : int; count : int }

type sampler = { sample : int -> int }
(** A source of uniform draws: [sample bound] is uniform in [0, bound).
    The generator never touches global randomness — callers thread either a
    {!Random.State.t} (via {!sampler_of_state}) or any other deterministic
    stream (the fuzzing harness threads its split PRNG). *)

val sampler_of_state : Random.State.t -> sampler

val specs_of_query : Cq.t -> count:int -> spec list
(** One spec per relation symbol of the query, [count] tuples each.
    A [count] of 0 is allowed and yields an empty relation. *)

type pool
(** A fixed random tuple order per relation, from which monotone prefixes
    are drawn. *)

val pool : Random.State.t -> domain:int -> ?max_bag:int -> spec list -> pool
(** [spec.count] acts as the maximum size; asking a larger prefix saturates.
    [max_bag > 1] assigns each tuple a random multiplicity in [1..max_bag]. *)

val pool_s : sampler -> domain:int -> ?max_bag:int -> spec list -> pool
(** {!pool} over an arbitrary deterministic sampler. *)

val prefix_db : pool -> frac:float -> Database.t
(** The database containing the first [frac] (in (0,1]) of every relation's
    pool (at least one tuple of every non-empty relation). *)

val db : Random.State.t -> domain:int -> ?max_bag:int -> spec list -> Database.t
(** One-shot instance ([prefix_db ~frac:1.0] of a fresh pool). *)

val db_s : sampler -> domain:int -> ?max_bag:int -> spec list -> Database.t
(** {!db} over an arbitrary deterministic sampler. *)

val mark_exogenous : sampler -> pct:int -> Database.t -> unit
(** Flag each live tuple exogenous independently with probability
    [pct / 100] — the adversarial exogeneity corner of the differential
    suites. *)

val log_fractions : int -> float list
(** [n] logarithmically spaced fractions ending at 1.0 (the growth schedule
    of the experiments). *)
