open Relalg

type spec = { rel : string; arity : int; count : int }

type sampler = { sample : int -> int }

let sampler_of_state rng = { sample = (fun bound -> Random.State.int rng bound) }

let specs_of_query q ~count =
  List.map (fun rel -> { rel; arity = Cq.arity q rel; count }) (Cq.rel_names q)

type pool = { tuples : (string * int array * int) array list (* rel, args, mult *) }

(* Sample [count] distinct tuples of the full domain^arity space by
   rejection (the spaces here are far larger than the counts). *)
let sample_relation s ~domain ~max_bag spec =
  let seen = Hashtbl.create (2 * spec.count) in
  let out = ref [] in
  let n = ref 0 in
  let space = float_of_int domain ** float_of_int spec.arity in
  let target = min spec.count (int_of_float space) in
  let attempts = ref 0 in
  while !n < target && !attempts < 100 * (target + 10) do
    incr attempts;
    let args = Array.init spec.arity (fun _ -> 1 + s.sample domain) in
    let key = Array.to_list args in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      let mult = if max_bag <= 1 then 1 else 1 + s.sample max_bag in
      out := (spec.rel, args, mult) :: !out;
      incr n
    end
  done;
  Array.of_list (List.rev !out)

let pool_s s ~domain ?(max_bag = 1) specs =
  { tuples = List.map (sample_relation s ~domain ~max_bag) specs }

let pool rng ~domain ?max_bag specs = pool_s (sampler_of_state rng) ~domain ?max_bag specs

let prefix_db p ~frac =
  let db = Database.create () in
  List.iter
    (fun arr ->
      let n = Array.length arr in
      let take = max 1 (int_of_float (Float.round (frac *. float_of_int n))) in
      for i = 0 to min take n - 1 do
        let rel, args, mult = arr.(i) in
        ignore (Database.add ~mult db rel args)
      done)
    p.tuples;
  db

let db_s s ~domain ?max_bag specs = prefix_db (pool_s s ~domain ?max_bag specs) ~frac:1.0

let db rng ~domain ?max_bag specs = db_s (sampler_of_state rng) ~domain ?max_bag specs

let mark_exogenous s ~pct db =
  List.iter
    (fun info -> if s.sample 100 < pct then Database.set_exo db info.Database.id true)
    (Database.tuples db)

let log_fractions n =
  if n <= 1 then [ 1.0 ]
  else
    List.init n (fun i ->
        (* from ~4% to 100%, log-spaced *)
        let lo = log 0.04 and hi = log 1.0 in
        exp (lo +. (float_of_int i /. float_of_int (n - 1) *. (hi -. lo))))
