(* Revised simplex with an explicit dense basis inverse, parametric in the
   number field.  Two algorithm paths share the state and helpers:

   - a *dual* simplex (the default whenever the model has no equality rows
     and a non-negative objective — true of every program this code base
     generates): all rows become <=, finite variable bounds become rows,
     and the all-slack basis is dual feasible with no phase 1.  Covering
     LPs are far less degenerate on the dual side, and branch-and-bound
     re-solves stay dual feasible because fixing variables only moves the
     right-hand side;
   - a two-phase *primal* simplex for general models: slack/surplus per
     inequality plus phase-1 artificials, variable bounds handled natively
     by the ratio test (bound flips never touch the basis), Harris-lite
     leaving-variable selection (widened tie window, largest pivot).

   Both paths eta-update the inverse each pivot and refactorise from
   scratch periodically and before pivoting on noise-level elements;
   pricing is Dantzig with a permanent switch to Bland's rule after a
   degenerate streak (primal) or late in the iteration budget (dual). *)

(* Cross-field instrumentation: the float and exact instantiations of the
   functor share one set of counters ({!Obs.Counter.create} is idempotent by
   name), and every bump is dropped unless a trace sink is installed, so the
   per-pivot cost with telemetry off is a single atomic load. *)
let c_pivots = Obs.Counter.create "simplex.pivots"
let c_bound_flips = Obs.Counter.create "simplex.bound_flips"
let c_bland_falls = Obs.Counter.create "simplex.bland_falls"
let c_refactors = Obs.Counter.create "simplex.refactors"
let c_eta_peak = Obs.Counter.create "simplex.eta_peak"

module Make (F : Numeric.Field.S) = struct
  type outcome =
    | Optimal of { objective : F.t; solution : F.t array }
    | Infeasible
    | Unbounded

  let integral_on x vars = List.for_all (fun v -> F.is_integral x.(v)) vars

  type srow = { coeffs : (int * int) list; sense : Model.sense; rhs : int }

  exception Infeasible_fix

  (* Substitute fixed variables, renumber the free ones, and normalise every
     row to a non-negative right-hand side.  Upper bounds stay on the
     columns. *)
  let standardize m fixed =
    let n = Model.num_vars m in
    let fixed_val = Array.make n None in
    List.iter
      (fun (v, value) ->
        if value < 0 then raise Infeasible_fix;
        (match Model.upper m v with Some u when value > u -> raise Infeasible_fix | _ -> ());
        fixed_val.(v) <- Some value)
      fixed;
    let col_of_var = Array.make n (-1) in
    let var_of_col = ref [] in
    let nfree = ref 0 in
    for v = 0 to n - 1 do
      if fixed_val.(v) = None then begin
        col_of_var.(v) <- !nfree;
        var_of_col := v :: !var_of_col;
        incr nfree
      end
    done;
    let var_of_col = Array.of_list (List.rev !var_of_col) in
    let rows = ref [] in
    let push_row coeffs sense rhs =
      let coeffs = List.filter (fun (_, c) -> c <> 0) coeffs in
      if rhs >= 0 then rows := { coeffs; sense; rhs } :: !rows
      else
        let coeffs = List.map (fun (j, c) -> (j, -c)) coeffs in
        let sense =
          match sense with Model.Geq -> Model.Leq | Model.Leq -> Model.Geq | Model.Eq -> Model.Eq
        in
        rows := { coeffs; sense; rhs = -rhs } :: !rows
    in
    Array.iter
      (fun { Model.expr; sense; rhs } ->
        let rhs = ref rhs in
        let coeffs =
          List.filter_map
            (fun (v, c) ->
              match fixed_val.(v) with
              | Some value ->
                rhs := !rhs - (c * value);
                None
              | None -> Some (col_of_var.(v), c))
            expr
        in
        match coeffs with
        | [] ->
          let ok =
            match sense with Model.Geq -> 0 >= !rhs | Model.Leq -> 0 <= !rhs | Model.Eq -> 0 = !rhs
          in
          if not ok then raise Infeasible_fix
        | _ -> push_row coeffs sense !rhs)
      (Model.constraints m);
    (var_of_col, fixed_val, Array.of_list (List.rev !rows))

  (* The working problem: columns 0..nfree-1 structural, then one
     slack/surplus per inequality row, then one artificial per row. *)
  type work = {
    nrows : int;
    ncols : int;  (* structural + slack, artificials excluded *)
    nstruct : int;
    cols : (int * F.t) list array;  (* sparse column entries (row, coeff) *)
    upper : F.t option array;  (* per column; None = +inf *)
    cost : F.t array;  (* phase-2 objective *)
    b : F.t array;
  }

  let build_work m var_of_col srows =
    let nstruct = Array.length var_of_col in
    let nrows = Array.length srows in
    let nslack =
      Array.fold_left
        (fun acc r -> match r.sense with Model.Leq | Model.Geq -> acc + 1 | Model.Eq -> acc)
        0 srows
    in
    let ncols = nstruct + nslack in
    let cols = Array.make ncols [] in
    let upper = Array.make ncols None in
    let cost = Array.make ncols F.zero in
    let b = Array.make nrows F.zero in
    for j = 0 to nstruct - 1 do
      let v = var_of_col.(j) in
      cost.(j) <- F.of_int (Model.objective m v);
      upper.(j) <- Option.map F.of_int (Model.upper m v)
    done;
    let next_slack = ref nstruct in
    Array.iteri
      (fun i r ->
        b.(i) <- F.of_int r.rhs;
        List.iter (fun (j, c) -> cols.(j) <- (i, F.of_int c) :: cols.(j)) r.coeffs;
        match r.sense with
        | Model.Leq ->
          cols.(!next_slack) <- [ (i, F.one) ];
          incr next_slack
        | Model.Geq ->
          cols.(!next_slack) <- [ (i, F.neg F.one) ];
          incr next_slack
        | Model.Eq -> ())
      srows;
    { nrows; ncols; nstruct; cols; upper; cost; b }

  (* Solver state.  Column indices >= w.ncols denote artificials: artificial
     k (for row k) is column w.ncols + k with unit coefficient in row k. *)
  type state = {
    w : work;
    binv : F.t array array;  (* nrows x nrows *)
    basis : int array;  (* row -> basic column *)
    xb : F.t array;  (* basic values *)
    at_upper : bool array;  (* nonbasic position per column (false=lower) *)
    in_basis : bool array;  (* per column, artificials included *)
  }

  let col_entries st j =
    if j < st.w.ncols then st.w.cols.(j) else [ (j - st.w.ncols, F.one) ]

  let col_upper st j ~phase2 =
    if j < st.w.ncols then st.w.upper.(j)
    else if phase2 then Some F.zero (* artificials are pinned in phase 2 *)
    else None

  let col_cost st j ~phase1 =
    if phase1 then if j < st.w.ncols then F.zero else F.one
    else if j < st.w.ncols then st.w.cost.(j)
    else F.zero

  (* Value of a nonbasic column. *)
  let nonbasic_value st j ~phase2 =
    if st.at_upper.(j) then
      match col_upper st j ~phase2 with Some u -> u | None -> F.zero
    else F.zero

  (* Dense solve helpers. *)
  let binv_times_col st j =
    let w = Array.make st.w.nrows F.zero in
    let entries = col_entries st j in
    for r = 0 to st.w.nrows - 1 do
      let row = st.binv.(r) in
      let acc = ref F.zero in
      List.iter (fun (i, c) -> acc := F.add !acc (F.mul row.(i) c)) entries;
      w.(r) <- !acc
    done;
    w

  (* Recompute the basis inverse from scratch by Gauss-Jordan with partial
     pivoting, and the basic values from it. *)
  exception Singular

  let refactorize st ~phase2 =
    let n = st.w.nrows in
    let mat = Array.make_matrix n n F.zero in
    for r = 0 to n - 1 do
      List.iter (fun (i, c) -> mat.(i).(r) <- c) (col_entries st st.basis.(r))
    done;
    let inv = Array.init n (fun i -> Array.init n (fun j -> if i = j then F.one else F.zero)) in
    for piv = 0 to n - 1 do
      (* Partial pivot: largest magnitude in column piv. *)
      let best = ref piv in
      for r = piv + 1 to n - 1 do
        if F.compare (F.abs mat.(r).(piv)) (F.abs mat.(!best).(piv)) > 0 then best := r
      done;
      if F.sign mat.(!best).(piv) = 0 then raise Singular;
      (* Row swaps are pure left-multiplications: applied to both [mat] and
         [inv] they leave inv = mat_original^-1 at the end.  The basis array
         indexes *columns* of [mat] and must not be touched. *)
      if !best <> piv then begin
        let t = mat.(piv) in
        mat.(piv) <- mat.(!best);
        mat.(!best) <- t;
        let t = inv.(piv) in
        inv.(piv) <- inv.(!best);
        inv.(!best) <- t
      end;
      let d = mat.(piv).(piv) in
      F.div_inplace mat.(piv) d;
      F.div_inplace inv.(piv) d;
      for r = 0 to n - 1 do
        if r <> piv then begin
          let f = mat.(r).(piv) in
          if F.sign f <> 0 then begin
            F.axpy (F.neg f) mat.(piv) mat.(r);
            F.axpy (F.neg f) inv.(piv) inv.(r)
          end
        end
      done
    done;
    for r = 0 to n - 1 do
      Array.blit inv.(r) 0 st.binv.(r) 0 n
    done;
    (* xb = Binv (b - N x_N) over nonbasic columns off their zero bound. *)
    let rhs = Array.copy st.w.b in
    for j = 0 to st.w.ncols - 1 do
      if not st.in_basis.(j) then begin
        let v = nonbasic_value st j ~phase2 in
        if F.sign v <> 0 then
          List.iter (fun (i, c) -> rhs.(i) <- F.sub rhs.(i) (F.mul c v)) (col_entries st j)
      end
    done;
    for r = 0 to st.w.nrows - 1 do
      st.xb.(r) <- F.dot st.binv.(r) rhs
    done

  (* One simplex phase.  Returns `Optimal or `Unbounded. *)
  let run_phase st ~phase1 =
    let phase2 = not phase1 in
    let n = st.w.nrows in
    let total_cols = st.w.ncols + n in
    let bland = ref false in
    let degen = ref 0 in
    let iters = ref 0 in
    let max_iters = 20_000 + (60 * (st.w.ncols + n)) in
    let since_refactor = ref 0 in
    let result = ref `Optimal in
    let continue = ref true in
    while !continue do
      incr iters;
      if !iters > max_iters then failwith "Simplex.solve: iteration limit";
      if !since_refactor > 300 then begin
        refactorize st ~phase2;
        Obs.Counter.incr c_refactors;
        since_refactor := 0
      end;
      (* Pricing: y = c_B Binv, then reduced costs of nonbasic columns. *)
      let y = Array.make n F.zero in
      for r = 0 to n - 1 do
        let cb = col_cost st st.basis.(r) ~phase1 in
        if F.sign cb <> 0 then F.axpy cb st.binv.(r) y
      done;
      let reduced j =
        let acc = ref (col_cost st j ~phase1) in
        List.iter (fun (i, c) -> acc := F.sub !acc (F.mul y.(i) c)) (col_entries st j);
        !acc
      in
      (* In phase 2 artificials are pinned to zero and never re-enter. *)
      let scan_limit = if phase1 then total_cols else st.w.ncols in
      let enter = ref (-1) in
      let enter_d = ref F.zero in
      let j = ref 0 in
      while !j < scan_limit && not (!bland && !enter >= 0) do
        let jj = !j in
        if not st.in_basis.(jj) then begin
          let d = reduced jj in
          let improving =
            if st.at_upper.(jj) then F.sign d > 0
            else F.sign d < 0
          in
          if improving then
            if !bland then begin
              enter := jj;
              enter_d := d
            end
            else if F.compare (F.abs d) (F.abs !enter_d) > 0 then begin
              enter := jj;
              enter_d := d
            end
        end;
        incr j
      done;
      if !enter < 0 then continue := false
      else begin
        let jj = !enter in
        (* Movement direction: entering increases from lower (sigma=+1) or
           decreases from upper (sigma=-1); basic values change by
           -sigma * w * t. *)
        let sigma = if st.at_upper.(jj) then F.neg F.one else F.one in
        let wcol = binv_times_col st jj in
        (* Ratio test, Harris-lite: first find the binding step length over
           every row, then among (near-)minimal rows prefer the largest
           pivot magnitude for stability — or the smallest basis index when
           Bland's rule is active. *)
        let row_ratio r =
          (* x_B(r) moves by -delta * t. *)
          let delta = F.mul sigma wcol.(r) in
          if F.sign delta > 0 then begin
            (* decreasing towards lower bound 0 *)
            let t = F.div st.xb.(r) delta in
            Some (if F.sign t < 0 then F.zero else t)
          end
          else if F.sign delta < 0 then begin
            match col_upper st st.basis.(r) ~phase2 with
            | None -> None
            | Some u ->
              let t = F.div (F.sub u st.xb.(r)) (F.neg delta) in
              Some (if F.sign t < 0 then F.zero else t)
          end
          else None
        in
        let tmin = ref (col_upper st jj ~phase2) in
        for r = 0 to n - 1 do
          match row_ratio r with
          | Some t -> (
            match !tmin with
            | Some cur when F.compare cur t <= 0 -> ()
            | _ -> tmin := Some t)
          | None -> ()
        done;
        let limit =
          match !tmin with
          | None -> None
          | Some t ->
            (* Bound flip when the entering variable's own range binds. *)
            let flip =
              match col_upper st jj ~phase2 with
              | Some u -> F.compare u t <= 0
              | None -> false
            in
            if flip then Some (t, -1)
            else begin
              (* Rows within the widened tie window are all acceptable
                 leavers (we still step exactly t; the chosen leaver is
                 snapped to its bound, an error within the window that the
                 next refactorisation absorbs).  The window is zero for
                 exact fields. *)
              let t_wide =
                F.add t (F.mul (F.add F.one (F.abs t)) (F.mul (F.of_int 5) F.pivot_tol))
              in
              let best = ref (-1) in
              for r = 0 to n - 1 do
                match row_ratio r with
                | Some tr when F.compare tr (if !bland then t else t_wide) <= 0 ->
                  if !best < 0 then best := r
                  else if !bland then begin
                    if st.basis.(r) < st.basis.(!best) then best := r
                  end
                  else if F.compare (F.abs wcol.(r)) (F.abs wcol.(!best)) > 0 then best := r
                | Some _ | None -> ()
              done;
              if !best < 0 then None else Some (t, !best)
            end
        in
        match limit with
        | None ->
          result := `Unbounded;
          continue := false
        | Some (_, r)
          when r >= 0
               && !since_refactor > 25
               && F.compare (F.abs wcol.(r)) F.pivot_tol <= 0 ->
          (* About to pivot on a noise-level element with a stale inverse:
             refactorise and re-price instead (if the tiny pivot is real, the
             next pass accepts it on fresh numbers). *)
          refactorize st ~phase2;
          Obs.Counter.incr c_refactors;
          since_refactor := 0
        | Some (t, r) ->
          if F.sign t = 0 then begin
            incr degen;
            if !degen > 30 && not !bland then begin
              bland := true;
              Obs.Counter.incr c_bland_falls
            end
          end
          else degen := 0;
          (* Apply the move to the basic values. *)
          F.axpy (F.neg (F.mul sigma t)) wcol st.xb;
          if r = -1 then begin
            (* Bound flip: entering jumps to its other bound. *)
            Obs.Counter.incr c_bound_flips;
            st.at_upper.(jj) <- not st.at_upper.(jj)
          end
          else begin
            (* Basis change: entering becomes basic in row r. *)
            let leaving = st.basis.(r) in
            let entering_value =
              let from = nonbasic_value st jj ~phase2 in
              F.add from (F.mul sigma t)
            in
            (* Leaving lands on the bound it hit. *)
            let delta = F.mul sigma wcol.(r) in
            let leaves_at_upper = F.sign delta < 0 in
            st.in_basis.(leaving) <- false;
            st.at_upper.(leaving) <- leaves_at_upper;
            st.in_basis.(jj) <- true;
            st.basis.(r) <- jj;
            st.xb.(r) <- entering_value;
            (* Eta update of Binv: row r scaled, others eliminated. *)
            let piv = wcol.(r) in
            let browr = st.binv.(r) in
            F.div_inplace browr piv;
            for i = 0 to n - 1 do
              if i <> r then begin
                let f = wcol.(i) in
                if F.sign f <> 0 then F.axpy (F.neg f) browr st.binv.(i)
              end
            done;
            incr since_refactor;
            Obs.Counter.incr c_pivots;
            Obs.Counter.record_max c_eta_peak !since_refactor
          end
      end
    done;
    !result

  (* ----- Dual simplex path -------------------------------------------
     Applicable when the model has no equality rows and a non-negative
     objective (true of every program this code base generates): after
     turning all rows into <= (and materialising finite variable upper
     bounds as extra rows), the all-slack basis is dual feasible and no
     phase 1 is needed.  Branch-and-bound re-solves stay dual feasible
     because fixing variables only changes the right-hand side.  Covering
     LPs are far less degenerate on the dual side, which is why this path
     exists (the primal stalls on them). *)

  let dual_applicable m srows =
    Array.for_all (fun r -> r.sense <> Model.Eq) srows
    &&
    let ok = ref true in
    for v = 0 to Model.num_vars m - 1 do
      if Model.objective m v < 0 then ok := false
    done;
    !ok

  (* All rows as <=, plus upper-bound rows; rhs may be negative. *)
  let dual_rows m var_of_col srows =
    let rows =
      Array.to_list srows
      |> List.map (fun r ->
             match r.sense with
             | Model.Leq -> r
             | Model.Geq ->
               {
                 coeffs = List.map (fun (j, c) -> (j, -c)) r.coeffs;
                 sense = Model.Leq;
                 rhs = -r.rhs;
               }
             | Model.Eq -> assert false)
    in
    let ub_rows =
      Array.to_list var_of_col
      |> List.mapi (fun col v ->
             match Model.upper m v with
             | Some u -> Some { coeffs = [ (col, 1) ]; sense = Model.Leq; rhs = u }
             | None -> None)
      |> List.filter_map Fun.id
    in
    Array.of_list (rows @ ub_rows)

  let debug = match Sys.getenv_opt "SIMPLEX_DEBUG" with Some _ -> true | None -> false

  let run_dual st =
    let n = st.w.nrows in
    let bland = ref false in
    let iters = ref 0 in
    let refactors = ref 0 in
    let max_iters = 20_000 + (60 * (st.w.ncols + n)) in
    let since_refactor = ref 0 in
    (* Reduced costs of all columns, maintained incrementally across pivots
       and refreshed from scratch at every refactorisation. *)
    let darr = Array.make st.w.ncols F.zero in
    let refresh_reduced () =
      let y = Array.make n F.zero in
      for i = 0 to n - 1 do
        let cb = col_cost st st.basis.(i) ~phase1:false in
        if F.sign cb <> 0 then F.axpy cb st.binv.(i) y
      done;
      for j = 0 to st.w.ncols - 1 do
        if st.in_basis.(j) then darr.(j) <- F.zero
        else begin
          let acc = ref (col_cost st j ~phase1:false) in
          List.iter (fun (i, c) -> acc := F.sub !acc (F.mul y.(i) c)) (col_entries st j);
          darr.(j) <- !acc
        end
      done
    in
    refresh_reduced ();
    let result = ref `Optimal in
    let continue = ref true in
    while !continue do
      incr iters;
      if !iters > max_iters then failwith "Simplex.solve: dual iteration limit";
      if !iters > max_iters / 2 && not !bland then begin
        bland := true;
        Obs.Counter.incr c_bland_falls
      end;
      if !since_refactor > 300 then begin
        refactorize st ~phase2:true;
        refresh_reduced ();
        incr refactors;
        Obs.Counter.incr c_refactors;
        since_refactor := 0
      end;
      (* Leaving row: a basic variable below its lower bound 0 (no basic has
         a finite upper here — bounds were turned into rows). *)
      let leave = ref (-1) in
      for r = 0 to n - 1 do
        if F.sign st.xb.(r) < 0 then
          if !leave < 0 then leave := r
          else if !bland then begin
            if st.basis.(r) < st.basis.(!leave) then leave := r
          end
          else if F.compare st.xb.(r) st.xb.(!leave) < 0 then leave := r
      done;
      if !leave < 0 then continue := false
      else begin
        let r = !leave in
        let brow = st.binv.(r) in
        let alpha j =
          let acc = ref F.zero in
          List.iter (fun (i, c) -> acc := F.add !acc (F.mul brow.(i) c)) (col_entries st j);
          !acc
        in
        (* Entering: nonbasic (all at lower bound) with alpha < 0, taking the
           smallest |d/alpha| to preserve dual feasibility; prefer large
           |alpha| among ties, smallest index under Bland.  Reduced costs
           come from the incrementally-maintained [darr]. *)
        let enter = ref (-1) in
        let enter_alpha = ref F.zero in
        let best_theta = ref F.zero in
        let j = ref 0 in
        while !j < st.w.ncols && not (!bland && !enter >= 0) do
          let jj = !j in
          if not st.in_basis.(jj) then begin
            let a = alpha jj in
            if F.sign a < 0 then begin
              let d = darr.(jj) in
              let d = if F.sign d < 0 then F.zero else d in
              let theta = F.div d (F.neg a) in
              (* minimise theta = |d/alpha| *)
              let better =
                !enter < 0
                || F.compare theta !best_theta < 0
                || (F.compare theta !best_theta = 0
                   && F.compare (F.abs a) (F.abs !enter_alpha) > 0)
              in
              if better then begin
                enter := jj;
                enter_alpha := a;
                best_theta := theta
              end
            end
          end;
          incr j
        done;
        if !enter < 0 then begin
          result := `Infeasible;
          continue := false
        end
        else begin
          let jj = !enter in
          let wcol = binv_times_col st jj in
          if
            !since_refactor > 25 && F.compare (F.abs wcol.(r)) F.pivot_tol <= 0
          then begin
            refactorize st ~phase2:true;
            refresh_reduced ();
            incr refactors;
            Obs.Counter.incr c_refactors;
            since_refactor := 0
          end
          else begin
            let delta = F.div st.xb.(r) wcol.(r) in
            (* both negative: delta > 0 *)
            F.axpy (F.neg delta) wcol st.xb;
            let leaving = st.basis.(r) in
            (* Dual pivot on (r, jj): every nonbasic reduced cost moves by
               -theta * alpha_j with theta = d_q / alpha_q; the leaving
               column (alpha = 1 as it is basic in row r) ends at -theta. *)
            let theta = F.div darr.(jj) wcol.(r) in
            if F.sign theta <> 0 then
              for k = 0 to st.w.ncols - 1 do
                if (not st.in_basis.(k)) && k <> jj then
                  darr.(k) <- F.sub darr.(k) (F.mul theta (alpha k))
              done;
            darr.(leaving) <- F.neg theta;
            darr.(jj) <- F.zero;
            st.in_basis.(leaving) <- false;
            st.at_upper.(leaving) <- false;
            st.in_basis.(jj) <- true;
            st.basis.(r) <- jj;
            st.xb.(r) <- delta;
            let piv = wcol.(r) in
            let browr = st.binv.(r) in
            F.div_inplace browr piv;
            for i = 0 to n - 1 do
              if i <> r then begin
                let f = wcol.(i) in
                if F.sign f <> 0 then F.axpy (F.neg f) browr st.binv.(i)
              end
            done;
            incr since_refactor;
            Obs.Counter.incr c_pivots;
            Obs.Counter.record_max c_eta_peak !since_refactor
          end
        end
      end
    done;
    if debug then
      Printf.eprintf "[dual] rows=%d cols=%d iters=%d refactors=%d\n%!" n st.w.ncols !iters
        !refactors;
    !result

  (* ----- Frozen sessions: bounded-variable dual simplex -----------------
     A [session] compiles a {!Frozen.t} once into sparse columns with
     native per-column bounds — finite upper bounds are NOT materialised as
     rows, and equality rows get a slack fixed to [0,0] — and then solves
     any number of {!Frozen.Delta} bound overlays against it.  The dual
     simplex needs a dual-feasible start, which bounds make trivial to
     maintain: reduced costs depend only on (basis, costs), and a delta
     changes only bounds, so the optimal basis of the previous solve stays
     dual feasible for the next one after snapping each nonbasic variable
     to the bound its reduced-cost sign prefers.  That is the whole
     warm-start protocol; branch-and-bound fixes and responsibility-batch
     overlays both go through it.

     Requirement: every objective coefficient must be non-negative (true of
     all programs this code base generates), so that the all-slack basis is
     a universally available dual-feasible reset point. *)

  type session = {
    fz : Frozen.t;
    snrows : int;
    sncols : int;  (* structural + one slack per row *)
    snstruct : int;
    scols : (int * F.t) list array;  (* sparse column entries (row, coeff) *)
    scost : F.t array;
    sb : F.t array;
    base_lb : F.t array;
    base_ub : F.t option array;  (* None = +inf *)
    lb : F.t array;  (* after the current delta *)
    ub : F.t option array;
    sbinv : F.t array array;
    sbasis : int array;
    sxb : F.t array;
    s_in_basis : bool array;
    s_at_upper : bool array;
    sdarr : F.t array;  (* reduced costs, maintained across pivots/deltas *)
    mutable spivots : int;
        (* Pivots since binv was last rebuilt from scratch.  Lives on the
           session, not the solve: warm-started batches run many short
           solves, and drift accumulates across them, not within one. *)
    mutable stotal_pivots : int;
        (* Lifetime pivot count; never reset.  Per-session (not a global
           counter) so parallel batches can report per-solve deltas without
           reading each other's work. *)
    mutable srefactors : int;  (* lifetime refactorisation count *)
  }

  let frozen_dual_applicable fz =
    let ok = ref true in
    for v = 0 to Frozen.num_vars fz - 1 do
      if Frozen.objective fz v < 0 then ok := false
    done;
    !ok

  (* Slack of row i carries coefficient [slack_sign i]: +1 for <= and =,
     -1 for >= (so the slack itself lives in [0, +inf), or [0,0] for =). *)
  let slack_sign fz i =
    match Frozen.row_sense fz i with Model.Leq | Model.Eq -> F.one | Model.Geq -> F.neg F.one

  (* Reset to the all-slack basis: binv is its own inverse (diag of +-1),
     reduced costs equal the raw costs (slack costs are zero), and every
     structural column sits at its lower bound — dual feasible because all
     costs are non-negative. *)
  let session_reset s =
    let n = s.snrows in
    for i = 0 to n - 1 do
      let row = s.sbinv.(i) in
      Array.fill row 0 n F.zero;
      row.(i) <- slack_sign s.fz i;
      s.sbasis.(i) <- s.snstruct + i
    done;
    Array.fill s.s_at_upper 0 s.sncols false;
    for j = 0 to s.sncols - 1 do
      s.s_in_basis.(j) <- j >= s.snstruct;
      s.sdarr.(j) <- s.scost.(j)
    done;
    s.spivots <- 0

  let create_session fz =
    if not (frozen_dual_applicable fz) then
      invalid_arg "Simplex.create_session: negative objective coefficient";
    let nstruct = Frozen.num_vars fz in
    let nrows = Frozen.num_rows fz in
    let ncols = nstruct + nrows in
    let scols = Array.make (max 1 ncols) [] in
    for v = 0 to nstruct - 1 do
      let acc = ref [] in
      Frozen.iter_col fz v (fun i c -> acc := (i, F.of_int c) :: !acc);
      scols.(v) <- List.rev !acc
    done;
    for i = 0 to nrows - 1 do
      scols.(nstruct + i) <- [ (i, slack_sign fz i) ]
    done;
    let scost = Array.make (max 1 ncols) F.zero in
    for v = 0 to nstruct - 1 do
      scost.(v) <- F.of_int (Frozen.objective fz v)
    done;
    let base_lb = Array.make (max 1 ncols) F.zero in
    let base_ub = Array.make (max 1 ncols) None in
    for v = 0 to nstruct - 1 do
      base_ub.(v) <- Option.map F.of_int (Frozen.upper fz v)
    done;
    for i = 0 to nrows - 1 do
      if Frozen.row_sense fz i = Model.Eq then base_ub.(nstruct + i) <- Some F.zero
    done;
    let s =
      {
        fz;
        snrows = nrows;
        sncols = ncols;
        snstruct = nstruct;
        scols;
        scost;
        sb = Array.init (max 1 nrows) (fun i -> if i < nrows then F.of_int (Frozen.row_rhs fz i) else F.zero);
        base_lb;
        base_ub;
        lb = Array.copy base_lb;
        ub = Array.copy base_ub;
        sbinv = Array.init (max 1 nrows) (fun _ -> Array.make (max 1 nrows) F.zero);
        sbasis = Array.make (max 1 nrows) 0;
        sxb = Array.make (max 1 nrows) F.zero;
        s_in_basis = Array.make (max 1 ncols) false;
        s_at_upper = Array.make (max 1 ncols) false;
        sdarr = Array.make (max 1 ncols) F.zero;
        spivots = 0;
        stotal_pivots = 0;
        srefactors = 0;
      }
    in
    session_reset s;
    s

  let session_fixed s j = match s.ub.(j) with Some u -> F.compare u s.lb.(j) <= 0 | None -> false

  let session_nb_value s j =
    if s.s_at_upper.(j) then match s.ub.(j) with Some u -> u | None -> s.lb.(j) else s.lb.(j)

  (* xb = Binv (b - N x_N): valid whenever binv matches the basis. *)
  let session_compute_xb s =
    let n = s.snrows in
    let rhs = Array.sub s.sb 0 (max 1 n) in
    for j = 0 to s.sncols - 1 do
      if not s.s_in_basis.(j) then begin
        let v = session_nb_value s j in
        if F.sign v <> 0 then
          List.iter (fun (i, c) -> rhs.(i) <- F.sub rhs.(i) (F.mul c v)) s.scols.(j)
      end
    done;
    for r = 0 to n - 1 do
      s.sxb.(r) <- F.dot s.sbinv.(r) rhs
    done

  let session_refresh_darr s =
    let n = s.snrows in
    let y = Array.make (max 1 n) F.zero in
    for i = 0 to n - 1 do
      let cb = s.scost.(s.sbasis.(i)) in
      if F.sign cb <> 0 then F.axpy cb s.sbinv.(i) y
    done;
    for j = 0 to s.sncols - 1 do
      if s.s_in_basis.(j) then s.sdarr.(j) <- F.zero
      else begin
        let acc = ref s.scost.(j) in
        List.iter (fun (i, c) -> acc := F.sub !acc (F.mul y.(i) c)) s.scols.(j);
        s.sdarr.(j) <- !acc
      end
    done

  exception Session_singular

  let session_refactorize s =
    let n = s.snrows in
    let mat = Array.make_matrix (max 1 n) (max 1 n) F.zero in
    for r = 0 to n - 1 do
      List.iter (fun (i, c) -> mat.(i).(r) <- c) s.scols.(s.sbasis.(r))
    done;
    let inv = Array.init (max 1 n) (fun i -> Array.init (max 1 n) (fun j -> if i = j then F.one else F.zero)) in
    (try
       for piv = 0 to n - 1 do
         let best = ref piv in
         for r = piv + 1 to n - 1 do
           if F.compare (F.abs mat.(r).(piv)) (F.abs mat.(!best).(piv)) > 0 then best := r
         done;
         if F.sign mat.(!best).(piv) = 0 then raise Session_singular;
         if !best <> piv then begin
           let t = mat.(piv) in
           mat.(piv) <- mat.(!best);
           mat.(!best) <- t;
           let t = inv.(piv) in
           inv.(piv) <- inv.(!best);
           inv.(!best) <- t
         end;
         let d = mat.(piv).(piv) in
         F.div_inplace mat.(piv) d;
         F.div_inplace inv.(piv) d;
         for r = 0 to n - 1 do
           if r <> piv then begin
             let f = mat.(r).(piv) in
             if F.sign f <> 0 then begin
               F.axpy (F.neg f) mat.(piv) mat.(r);
               F.axpy (F.neg f) inv.(piv) inv.(r)
             end
           end
         done
       done
     with Session_singular ->
       (* A numerically singular basis (floats only): fall back to the
          always-valid all-slack start rather than failing the solve. *)
       session_reset s;
       session_compute_xb s;
       raise Session_singular);
    for r = 0 to n - 1 do
      Array.blit inv.(r) 0 s.sbinv.(r) 0 n
    done;
    session_compute_xb s;
    session_refresh_darr s;
    s.spivots <- 0

  (* The bounded-variable dual simplex.  Invariants: darr is dual feasible
     for the nonbasic positions (at lower => d >= 0, at upper => d <= 0,
     fixed => unconstrained), binv inverts the basis, xb holds the basic
     values.  Returns when every basic value is within its bounds
     (`Optimal) or a bound-violated row admits no entering column
     (`Infeasible — a valid Farkas certificate even with fixed columns
     excluded, since those sit at equal lower and upper bounds). *)
  let session_run s =
    let n = s.snrows in
    let bland = ref false in
    let iters = ref 0 in
    let max_iters = 20_000 + (60 * s.sncols) in
    let fall_to_bland () =
      if not !bland then begin
        bland := true;
        Obs.Counter.incr c_bland_falls
      end
    in
    let refactor () =
      (match session_refactorize s with () -> () | exception Session_singular -> session_refresh_darr s);
      s.srefactors <- s.srefactors + 1;
      Obs.Counter.incr c_refactors;
      s.spivots <- 0
    in
    let result = ref `Optimal in
    let continue = ref true in
    while !continue do
      incr iters;
      if !iters > max_iters then failwith "Simplex.session_solve: dual iteration limit";
      if !iters > max_iters / 2 then fall_to_bland ();
      (* Rebuild the inverse every ~max(300, n) pivots: the O(n^3) rebuild
         then amortises to the O(n^2) cost of a single eta update, while
         still bounding drift across the many short solves of a warm
         batch. *)
      if s.spivots > max 300 n then refactor ();
      (* Leaving row: a basic value outside its bounds.  rho = +1 when the
         leaver must rise to its lower bound, -1 when it must drop to its
         upper bound; largest violation wins (smallest basis index under
         Bland). *)
      let leave = ref (-1) in
      let leave_rho = ref F.one in
      let best_viol = ref F.zero in
      for r = 0 to n - 1 do
        let jb = s.sbasis.(r) in
        let x = s.sxb.(r) in
        let viol, rho =
          let low = F.sub s.lb.(jb) x in
          if F.sign low > 0 then (low, F.one)
          else
            match s.ub.(jb) with
            | Some u ->
              let high = F.sub x u in
              if F.sign high > 0 then (high, F.neg F.one) else (F.zero, F.one)
            | None -> (F.zero, F.one)
        in
        if F.sign viol > 0 then
          if !leave < 0 then begin
            leave := r;
            leave_rho := rho;
            best_viol := viol
          end
          else if !bland then begin
            if s.sbasis.(r) < s.sbasis.(!leave) then begin
              leave := r;
              leave_rho := rho;
              best_viol := viol
            end
          end
          else if F.compare viol !best_viol > 0 then begin
            leave := r;
            leave_rho := rho;
            best_viol := viol
          end
      done;
      if !leave < 0 then continue := false
      else begin
        let r = !leave in
        let rho = !leave_rho in
        let brow = s.sbinv.(r) in
        let alpha j =
          let acc = ref F.zero in
          List.iter (fun (i, c) -> acc := F.add !acc (F.mul brow.(i) c)) s.scols.(j);
          !acc
        in
        (* Dual ratio test: an entering candidate must move x_B(r) towards
           its violated bound (sign of rho * alpha decides), and the one
           with the smallest |d / alpha| keeps every other reduced cost on
           the right side; prefer large |alpha| among ties, smallest index
           under Bland. *)
        let enter = ref (-1) in
        let enter_alpha = ref F.zero in
        let best_theta = ref F.zero in
        let j = ref 0 in
        while !j < s.sncols && not (!bland && !enter >= 0) do
          let jj = !j in
          if (not s.s_in_basis.(jj)) && not (session_fixed s jj) then begin
            let a = alpha jj in
            let ra = F.mul rho a in
            let eligible, ratio =
              if s.s_at_upper.(jj) then
                if F.sign ra > 0 then begin
                  let d = s.sdarr.(jj) in
                  let d = if F.sign d > 0 then F.zero else d in
                  (true, F.div (F.neg d) ra)
                end
                else (false, F.zero)
              else if F.sign ra < 0 then begin
                let d = s.sdarr.(jj) in
                let d = if F.sign d < 0 then F.zero else d in
                (true, F.div d (F.neg ra))
              end
              else (false, F.zero)
            in
            if eligible then begin
              let better =
                !enter < 0
                || F.compare ratio !best_theta < 0
                || (F.compare ratio !best_theta = 0
                   && F.compare (F.abs a) (F.abs !enter_alpha) > 0)
              in
              if better then begin
                enter := jj;
                enter_alpha := a;
                best_theta := ratio
              end
            end
          end;
          incr j
        done;
        if !enter < 0 then begin
          result := `Infeasible;
          continue := false
        end
        else begin
          let q = !enter in
          let wcol = Array.make (max 1 n) F.zero in
          let entries = s.scols.(q) in
          for i = 0 to n - 1 do
            let row = s.sbinv.(i) in
            let acc = ref F.zero in
            List.iter (fun (k, c) -> acc := F.add !acc (F.mul row.(k) c)) entries;
            wcol.(i) <- !acc
          done;
          if s.spivots > 25 && F.compare (F.abs wcol.(r)) F.pivot_tol <= 0 then
            (* Noise-level pivot on a stale inverse: refactorise and retry
               on fresh numbers. *)
            refactor ()
          else begin
            let jb_leave = s.sbasis.(r) in
            let target =
              if F.sign rho > 0 then s.lb.(jb_leave)
              else match s.ub.(jb_leave) with Some u -> u | None -> assert false
            in
            let step = F.div (F.sub s.sxb.(r) target) wcol.(r) in
            let entering_value = F.add (session_nb_value s q) step in
            F.axpy (F.neg step) wcol s.sxb;
            (* Dual update before the eta update (alpha reads the old row
               of binv). *)
            let theta = F.div s.sdarr.(q) wcol.(r) in
            if F.sign theta <> 0 then
              for k = 0 to s.sncols - 1 do
                if (not s.s_in_basis.(k)) && k <> q then
                  s.sdarr.(k) <- F.sub s.sdarr.(k) (F.mul theta (alpha k))
              done;
            s.sdarr.(jb_leave) <- F.neg theta;
            s.sdarr.(q) <- F.zero;
            s.s_in_basis.(jb_leave) <- false;
            s.s_at_upper.(jb_leave) <- F.sign rho < 0;
            s.s_in_basis.(q) <- true;
            s.sbasis.(r) <- q;
            s.sxb.(r) <- entering_value;
            let piv = wcol.(r) in
            let browr = s.sbinv.(r) in
            F.div_inplace browr piv;
            for i = 0 to n - 1 do
              if i <> r then begin
                let f = wcol.(i) in
                if F.sign f <> 0 then F.axpy (F.neg f) browr s.sbinv.(i)
              end
            done;
            s.spivots <- s.spivots + 1;
            s.stotal_pivots <- s.stotal_pivots + 1;
            Obs.Counter.incr c_pivots;
            Obs.Counter.record_max c_eta_peak s.spivots
          end
        end
      end
    done;
    !result

  let session_extract s =
    let nvars = s.snstruct in
    let x = Array.make nvars F.zero in
    for j = 0 to nvars - 1 do
      if not s.s_in_basis.(j) then x.(j) <- session_nb_value s j
    done;
    for r = 0 to s.snrows - 1 do
      if s.sbasis.(r) < nvars then x.(s.sbasis.(r)) <- s.sxb.(r)
    done;
    let objective = ref F.zero in
    for v = 0 to nvars - 1 do
      if F.sign s.scost.(v) <> 0 then objective := F.add !objective (F.mul s.scost.(v) x.(v))
    done;
    Optimal { objective = !objective; solution = x }

  (* Lifetime work totals, for per-solve deltas in branch-and-bound and the
     enriched public stats records. *)
  let session_pivots s = s.stotal_pivots
  let session_refactors s = s.srefactors

  let session_solve s delta =
    (* Install the delta over the base bounds. *)
    Array.blit s.base_lb 0 s.lb 0 (max 1 s.sncols);
    Array.blit s.base_ub 0 s.ub 0 (max 1 s.sncols);
    let infeasible_fix = ref false in
    List.iter
      (fun (v, k) ->
        if v < 0 || v >= s.snstruct then invalid_arg "Simplex.session_solve: unknown variable";
        let kf = F.of_int k in
        (match s.base_ub.(v) with
        | Some u when F.compare kf u > 0 -> infeasible_fix := true
        | _ -> ());
        if k < 0 then infeasible_fix := true;
        s.lb.(v) <- kf;
        s.ub.(v) <- Some kf)
      (Frozen.Delta.bindings delta);
    if !infeasible_fix then Infeasible
    else if s.snrows = 0 then begin
      (* No rows: every variable sits at its lower bound. *)
      let x = Array.init s.snstruct (fun v -> s.lb.(v)) in
      let objective = ref F.zero in
      for v = 0 to s.snstruct - 1 do
        if F.sign s.scost.(v) <> 0 then objective := F.add !objective (F.mul s.scost.(v) x.(v))
      done;
      Optimal { objective = !objective; solution = x }
    end
    else begin
      (* Repair nonbasic positions for dual feasibility under the new
         bounds: fixed columns sit at their (single) bound, otherwise the
         reduced-cost sign picks the bound.  d < 0 with no finite upper can
         only be left over from a previously-fixed column; the all-slack
         reset recovers dual feasibility in that case. *)
      (try
         for j = 0 to s.sncols - 1 do
           if not s.s_in_basis.(j) then
             if session_fixed s j then s.s_at_upper.(j) <- false
             else if F.sign s.sdarr.(j) >= 0 then s.s_at_upper.(j) <- false
             else
               match s.ub.(j) with
               | Some _ -> s.s_at_upper.(j) <- true
               | None -> raise Exit
         done
       with Exit -> session_reset s);
      session_compute_xb s;
      match session_run s with
      | `Optimal -> session_extract s
      | `Infeasible when s.spivots = 0 -> Infeasible
      | `Infeasible ->
        (* Never trust an infeasibility verdict reached on an inverse with
           pivots on it: accumulated drift in binv/darr can hide every
           eligible entering column.  Re-derive the verdict from the
           all-slack basis — exactly the cold start — so warm and cold
           sessions always agree on feasibility. *)
        session_reset s;
        session_compute_xb s;
        (match session_run s with
        | `Infeasible -> Infeasible
        | `Optimal -> session_extract s)
    end

  let solve ?(fixed = []) ?(method_ = `Auto) m =
    match standardize m fixed with
    | exception Infeasible_fix -> Infeasible
    | var_of_col, fixed_val, srows
      when (match method_ with `Primal -> false | `Dual | `Auto -> dual_applicable m srows) -> (
      let drows = dual_rows m var_of_col srows in
      (* Strip the per-column upper bounds: they are rows now. *)
      let w0 = build_work m var_of_col drows in
      let w = { w0 with upper = Array.map (fun _ -> None) w0.upper } in
      let n = w.nrows in
      let total_cols = w.ncols + n in
      let st =
        {
          w;
          binv =
            Array.init (max 1 n) (fun i ->
                Array.init (max 1 n) (fun j -> if i = j then F.one else F.zero));
          basis = Array.init n (fun i -> w.nstruct + i);
          xb = Array.copy w.b;
          at_upper = Array.make total_cols false;
          in_basis = Array.init total_cols (fun j -> j >= w.nstruct && j < w.ncols);
        }
      in
      match run_dual st with
      | `Infeasible -> Infeasible
      | `Optimal ->
        let nvars = Model.num_vars m in
        let x = Array.make nvars F.zero in
        Array.iteri
          (fun v value -> match value with Some k -> x.(v) <- F.of_int k | None -> ())
          fixed_val;
        for r = 0 to n - 1 do
          if st.basis.(r) < w.nstruct then x.(var_of_col.(st.basis.(r))) <- st.xb.(r)
        done;
        let objective = ref F.zero in
        for v = 0 to nvars - 1 do
          let c = Model.objective m v in
          if c <> 0 then objective := F.add !objective (F.mul (F.of_int c) x.(v))
        done;
        Optimal { objective = !objective; solution = x })
    | var_of_col, fixed_val, srows ->
      let w = build_work m var_of_col srows in
      let n = w.nrows in
      let total_cols = w.ncols + n in
      let st =
        {
          w;
          binv = Array.init (max 1 n) (fun i -> Array.init (max 1 n) (fun j -> if i = j then F.one else F.zero));
          basis = Array.init n (fun i -> w.ncols + i);
          xb = Array.copy w.b;
          at_upper = Array.make total_cols false;
          in_basis =
            Array.init total_cols (fun j -> j >= w.ncols);
        }
      in
      let needs_phase1 = n > 0 in
      let feasible =
        if not needs_phase1 then true
        else begin
          match run_phase st ~phase1:true with
          | `Unbounded -> failwith "Simplex.solve: phase 1 unbounded (impossible)"
          | `Optimal ->
            let obj = ref F.zero in
            for r = 0 to n - 1 do
              if st.basis.(r) >= w.ncols then obj := F.add !obj st.xb.(r)
            done;
            F.sign !obj <= 0
        end
      in
      if not feasible then Infeasible
      else begin
        (* Refactorise once before phase 2 for a clean start (also recomputes
           xb with artificials pinned at zero). *)
        if n > 0 then begin
          refactorize st ~phase2:true;
          Obs.Counter.incr c_refactors
        end;
        match run_phase st ~phase1:false with
        | `Unbounded -> Unbounded
        | `Optimal ->
          let nvars = Model.num_vars m in
          let x = Array.make nvars F.zero in
          Array.iteri
            (fun v value -> match value with Some k -> x.(v) <- F.of_int k | None -> ())
            fixed_val;
          (* Nonbasic structurals sit at a bound; basics read from xb. *)
          for j = 0 to w.nstruct - 1 do
            if not st.in_basis.(j) then x.(var_of_col.(j)) <- nonbasic_value st j ~phase2:true
          done;
          for r = 0 to n - 1 do
            if st.basis.(r) < w.nstruct then x.(var_of_col.(st.basis.(r))) <- st.xb.(r)
          done;
          let objective = ref F.zero in
          for v = 0 to nvars - 1 do
            let c = Model.objective m v in
            if c <> 0 then objective := F.add !objective (F.mul (F.of_int c) x.(v))
          done;
          Optimal { objective = !objective; solution = x }
      end

  let solve_frozen ?(delta = Frozen.Delta.empty) fz =
    if frozen_dual_applicable fz then session_solve (create_session fz) delta
    else
      (* Negative costs: thaw and take the general primal path. *)
      solve ~fixed:(Frozen.Delta.bindings delta) (Frozen.to_model fz)
end
