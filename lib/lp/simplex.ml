(* Revised simplex over a pluggable basis-factorisation kernel ({!Basis}),
   parametric in the number field.  The basis lives behind the kernel
   signature — sparse LU with product-form eta updates by default, the
   explicit dense inverse kept as a reference implementation — and two
   algorithm paths share the state and helpers:

   - a *dual* simplex (the default whenever the model has no equality rows
     and a non-negative objective — true of every program this code base
     generates): all rows become <=, finite variable bounds become rows,
     and the all-slack basis is dual feasible with no phase 1.  Covering
     LPs are far less degenerate on the dual side, and branch-and-bound
     re-solves stay dual feasible because fixing variables only moves the
     right-hand side;
   - a two-phase *primal* simplex for general models: slack/surplus per
     inequality plus phase-1 artificials, variable bounds handled natively
     by the ratio test (bound flips never touch the basis), Harris-lite
     leaving-variable selection (widened tie window, largest pivot), and
     partial pricing (round-robin column blocks) so an iteration prices a
     slice of the columns rather than all of them.

   Both paths update the kernel each pivot (an eta), refactorise on the
   kernel's own cadence and before pivoting on noise-level elements;
   pricing is Dantzig with a permanent switch to Bland's rule after a
   degenerate streak (primal) or late in the iteration budget (dual). *)

(* Cross-field instrumentation: the float and exact instantiations of the
   functor share one set of counters ({!Obs.Counter.create} is idempotent by
   name), and every bump is dropped unless a trace sink is installed, so the
   per-pivot cost with telemetry off is a single atomic load. *)
let c_pivots = Obs.Counter.create "simplex.pivots"
let c_bound_flips = Obs.Counter.create "simplex.bound_flips"
let c_bland_falls = Obs.Counter.create "simplex.bland_falls"
let c_refactors = Obs.Counter.create "simplex.refactors"
let c_eta_peak = Obs.Counter.create "simplex.eta_peak"

(* Basis-kernel telemetry: high-water factor size and fill ratio (percent of
   the basis nonzero count), and the running FTRAN result sparsity
   (nnz/length, accumulated so the trace consumer can form the fraction). *)
let c_lu_factor_nnz = Obs.Counter.create "simplex.lu_factor_nnz"
let c_lu_fill_pct = Obs.Counter.create "simplex.lu_fill_pct"
let c_ftran_nnz = Obs.Counter.create "simplex.ftran_nnz"
let c_ftran_len = Obs.Counter.create "simplex.ftran_len"

module Make (F : Numeric.Field.S) = struct
  type outcome =
    | Optimal of { objective : F.t; solution : F.t array }
    | Infeasible
    | Unbounded

  let integral_on x vars = List.for_all (fun v -> F.is_integral x.(v)) vars

  (* ----- Basis kernels -------------------------------------------------
     Both kernel implementations are instantiated at this field; the choice
     is per solve/session, packed existentially so every simplex path is
     written once against the {!Basis.S} signature. *)

  module Dense_kernel = Basis.Dense (F)
  module Sparse_kernel = Basis.Sparse_lu (F)

  type basis_kernel =
    | K : (module Basis.S with type elt = F.t and type t = 'k) * 'k -> basis_kernel

  let make_kernel (choice : Basis.choice) ~nrows ~col : basis_kernel =
    match choice with
    | `Dense -> K ((module Dense_kernel), Dense_kernel.create ~nrows ~col)
    | `Sparse | `Auto -> K ((module Sparse_kernel), Sparse_kernel.create ~nrows ~col)

  let k_refactor kern basis = match kern with K ((module B), k) -> B.refactor k basis
  let k_ftran kern entries = match kern with K ((module B), k) -> B.ftran k entries
  let k_ftran_dense kern rhs = match kern with K ((module B), k) -> B.ftran_dense k rhs
  let k_btran kern c = match kern with K ((module B), k) -> B.btran k c
  let k_btran_unit kern r = match kern with K ((module B), k) -> B.btran_unit k r
  let k_update kern ~r ~wcol = match kern with K ((module B), k) -> B.update k ~r ~wcol
  let k_ftran_pattern kern = match kern with K ((module B), k) -> B.ftran_pattern k
  let k_ftran_pattern_len kern = match kern with K ((module B), k) -> B.ftran_pattern_len k
  let k_should_refactor kern = match kern with K ((module B), k) -> B.should_refactor k
  let k_etas kern = match kern with K ((module B), k) -> B.etas k
  let k_stats kern = match kern with K ((module B), k) -> B.stats k
  let kernel_name kern = match kern with K ((module B), _) -> B.name

  let observe_factor kern =
    if Obs.Sink.active () then begin
      let st = k_stats kern in
      Obs.Counter.record_max c_lu_factor_nnz st.Basis.factor_nnz;
      if st.Basis.basis_nnz > 0 then
        Obs.Counter.record_max c_lu_fill_pct
          (100 * st.Basis.factor_nnz / st.Basis.basis_nnz)
    end

  let observe_ftran w =
    if Obs.Sink.active () then begin
      let nnz = ref 0 in
      Array.iter (fun v -> if F.sign v <> 0 then incr nnz) w;
      Obs.Counter.add c_ftran_nnz !nnz;
      Obs.Counter.add c_ftran_len (Array.length w)
    end

  type srow = { coeffs : (int * int) list; sense : Model.sense; rhs : int }

  exception Infeasible_fix

  (* Substitute fixed variables, renumber the free ones, and normalise every
     row to a non-negative right-hand side.  Upper bounds stay on the
     columns. *)
  let standardize m fixed =
    let n = Model.num_vars m in
    let fixed_val = Array.make n None in
    List.iter
      (fun (v, value) ->
        if value < 0 then raise Infeasible_fix;
        (match Model.upper m v with Some u when value > u -> raise Infeasible_fix | _ -> ());
        fixed_val.(v) <- Some value)
      fixed;
    let col_of_var = Array.make n (-1) in
    let var_of_col = ref [] in
    let nfree = ref 0 in
    for v = 0 to n - 1 do
      if fixed_val.(v) = None then begin
        col_of_var.(v) <- !nfree;
        var_of_col := v :: !var_of_col;
        incr nfree
      end
    done;
    let var_of_col = Array.of_list (List.rev !var_of_col) in
    let rows = ref [] in
    let push_row coeffs sense rhs =
      let coeffs = List.filter (fun (_, c) -> c <> 0) coeffs in
      if rhs >= 0 then rows := { coeffs; sense; rhs } :: !rows
      else
        let coeffs = List.map (fun (j, c) -> (j, -c)) coeffs in
        let sense =
          match sense with Model.Geq -> Model.Leq | Model.Leq -> Model.Geq | Model.Eq -> Model.Eq
        in
        rows := { coeffs; sense; rhs = -rhs } :: !rows
    in
    Array.iter
      (fun { Model.expr; sense; rhs } ->
        let rhs = ref rhs in
        let coeffs =
          List.filter_map
            (fun (v, c) ->
              match fixed_val.(v) with
              | Some value ->
                rhs := !rhs - (c * value);
                None
              | None -> Some (col_of_var.(v), c))
            expr
        in
        match coeffs with
        | [] ->
          let ok =
            match sense with Model.Geq -> 0 >= !rhs | Model.Leq -> 0 <= !rhs | Model.Eq -> 0 = !rhs
          in
          if not ok then raise Infeasible_fix
        | _ -> push_row coeffs sense !rhs)
      (Model.constraints m);
    (var_of_col, fixed_val, Array.of_list (List.rev !rows))

  (* The working problem: columns 0..nfree-1 structural, then one
     slack/surplus per inequality row, then one artificial per row. *)
  type work = {
    nrows : int;
    ncols : int;  (* structural + slack, artificials excluded *)
    nstruct : int;
    cols : (int * F.t) list array;  (* sparse column entries (row, coeff) *)
    upper : F.t option array;  (* per column; None = +inf *)
    cost : F.t array;  (* phase-2 objective *)
    b : F.t array;
  }

  let build_work m var_of_col srows =
    let nstruct = Array.length var_of_col in
    let nrows = Array.length srows in
    let nslack =
      Array.fold_left
        (fun acc r -> match r.sense with Model.Leq | Model.Geq -> acc + 1 | Model.Eq -> acc)
        0 srows
    in
    let ncols = nstruct + nslack in
    let cols = Array.make ncols [] in
    let upper = Array.make ncols None in
    let cost = Array.make ncols F.zero in
    let b = Array.make nrows F.zero in
    for j = 0 to nstruct - 1 do
      let v = var_of_col.(j) in
      cost.(j) <- F.of_int (Model.objective m v);
      upper.(j) <- Option.map F.of_int (Model.upper m v)
    done;
    let next_slack = ref nstruct in
    Array.iteri
      (fun i r ->
        b.(i) <- F.of_int r.rhs;
        List.iter (fun (j, c) -> cols.(j) <- (i, F.of_int c) :: cols.(j)) r.coeffs;
        match r.sense with
        | Model.Leq ->
          cols.(!next_slack) <- [ (i, F.one) ];
          incr next_slack
        | Model.Geq ->
          cols.(!next_slack) <- [ (i, F.neg F.one) ];
          incr next_slack
        | Model.Eq -> ())
      srows;
    { nrows; ncols; nstruct; cols; upper; cost; b }

  (* Solver state.  Column indices >= w.ncols denote artificials: artificial
     k (for row k) is column w.ncols + k with unit coefficient in row k. *)
  type state = {
    w : work;
    kern : basis_kernel;
    basis : int array;  (* row -> basic column *)
    xb : F.t array;  (* basic values *)
    at_upper : bool array;  (* nonbasic position per column (false=lower) *)
    in_basis : bool array;  (* per column, artificials included *)
  }

  let col_entries st j =
    if j < st.w.ncols then st.w.cols.(j) else [ (j - st.w.ncols, F.one) ]

  let col_upper st j ~phase2 =
    if j < st.w.ncols then st.w.upper.(j)
    else if phase2 then Some F.zero (* artificials are pinned in phase 2 *)
    else None

  let col_cost st j ~phase1 =
    if phase1 then if j < st.w.ncols then F.zero else F.one
    else if j < st.w.ncols then st.w.cost.(j)
    else F.zero

  (* Value of a nonbasic column. *)
  let nonbasic_value st j ~phase2 =
    if st.at_upper.(j) then
      match col_upper st j ~phase2 with Some u -> u | None -> F.zero
    else F.zero

  (* Refactorise the kernel on the current basis and recompute the basic
     values xb = Binv (b - N x_N).  Raises {!Basis.Singular} on a singular
     basis (one-shot paths only reach this with floats; sessions recover
     via the all-slack reset). *)
  let refactorize st ~phase2 =
    k_refactor st.kern st.basis;
    let rhs = Array.copy st.w.b in
    for j = 0 to st.w.ncols - 1 do
      if not st.in_basis.(j) then begin
        let v = nonbasic_value st j ~phase2 in
        if F.sign v <> 0 then
          List.iter (fun (i, c) -> rhs.(i) <- F.sub rhs.(i) (F.mul c v)) (col_entries st j)
      end
    done;
    let w = k_ftran_dense st.kern rhs in
    Array.blit w 0 st.xb 0 st.w.nrows;
    observe_factor st.kern

  (* One simplex phase.  Returns `Optimal or `Unbounded. *)
  let run_phase st ~phase1 =
    let phase2 = not phase1 in
    let n = st.w.nrows in
    let total_cols = st.w.ncols + n in
    let bland = ref false in
    let degen = ref 0 in
    let iters = ref 0 in
    let max_iters = 20_000 + (60 * (st.w.ncols + n)) in
    let price_from = ref 0 in
    let result = ref `Optimal in
    let continue = ref true in
    while !continue do
      incr iters;
      if !iters > max_iters then failwith "Simplex.solve: iteration limit";
      if k_should_refactor st.kern then begin
        refactorize st ~phase2;
        Obs.Counter.incr c_refactors
      end;
      (* Pricing: y = c_B Binv (one BTRAN), then reduced costs of nonbasic
         columns against y — each column costs its nonzero count. *)
      let cb = Array.make n F.zero in
      for r = 0 to n - 1 do
        cb.(r) <- col_cost st st.basis.(r) ~phase1
      done;
      let y = k_btran st.kern cb in
      let reduced j =
        let acc = ref (col_cost st j ~phase1) in
        List.iter (fun (i, c) -> acc := F.sub !acc (F.mul y.(i) c)) (col_entries st j);
        !acc
      in
      (* In phase 2 artificials are pinned to zero and never re-enter. *)
      let scan_limit = if phase1 then total_cols else st.w.ncols in
      let enter = ref (-1) in
      let enter_d = ref F.zero in
      if !bland then begin
        (* Bland's rule: the smallest improving index, full scan — the
           anti-cycling guarantee needs the total order, so no partial
           pricing here. *)
        let j = ref 0 in
        while !j < scan_limit && !enter < 0 do
          let jj = !j in
          if not st.in_basis.(jj) then begin
            let d = reduced jj in
            let improving = if st.at_upper.(jj) then F.sign d > 0 else F.sign d < 0 in
            if improving then begin
              enter := jj;
              enter_d := d
            end
          end;
          incr j
        done
      end
      else begin
        (* Partial pricing: scan round-robin blocks from a roving cursor
           and settle for the Dantzig-best candidate of the first block
           that has one.  Optimality is still certified by a full clean
           sweep (the loop only stops early when a candidate exists). *)
        let block = max 64 (scan_limit / 8) in
        let scanned = ref 0 in
        let cursor = ref (if !price_from >= scan_limit then 0 else !price_from) in
        (try
           while !scanned < scan_limit do
             let jj = !cursor in
             if not st.in_basis.(jj) then begin
               let d = reduced jj in
               let improving = if st.at_upper.(jj) then F.sign d > 0 else F.sign d < 0 in
               if improving && F.compare (F.abs d) (F.abs !enter_d) > 0 then begin
                 enter := jj;
                 enter_d := d
               end
             end;
             incr scanned;
             cursor := !cursor + 1;
             if !cursor >= scan_limit then cursor := 0;
             if !enter >= 0 && !scanned mod block = 0 then raise Exit
           done
         with Exit -> ());
        price_from := !cursor
      end;
      if !enter < 0 then continue := false
      else begin
        let jj = !enter in
        (* Movement direction: entering increases from lower (sigma=+1) or
           decreases from upper (sigma=-1); basic values change by
           -sigma * w * t. *)
        let sigma = if st.at_upper.(jj) then F.neg F.one else F.one in
        let wcol = k_ftran st.kern (col_entries st jj) in
        observe_ftran wcol;
        (* Ratio test, Harris-lite: first find the binding step length over
           every row, then among (near-)minimal rows prefer the largest
           pivot magnitude for stability — or the smallest basis index when
           Bland's rule is active. *)
        let row_ratio r =
          (* x_B(r) moves by -delta * t. *)
          let delta = F.mul sigma wcol.(r) in
          if F.sign delta > 0 then begin
            (* decreasing towards lower bound 0 *)
            let t = F.div st.xb.(r) delta in
            Some (if F.sign t < 0 then F.zero else t)
          end
          else if F.sign delta < 0 then begin
            match col_upper st st.basis.(r) ~phase2 with
            | None -> None
            | Some u ->
              let t = F.div (F.sub u st.xb.(r)) (F.neg delta) in
              Some (if F.sign t < 0 then F.zero else t)
          end
          else None
        in
        let tmin = ref (col_upper st jj ~phase2) in
        for r = 0 to n - 1 do
          match row_ratio r with
          | Some t -> (
            match !tmin with
            | Some cur when F.compare cur t <= 0 -> ()
            | _ -> tmin := Some t)
          | None -> ()
        done;
        let limit =
          match !tmin with
          | None -> None
          | Some t ->
            (* Bound flip when the entering variable's own range binds. *)
            let flip =
              match col_upper st jj ~phase2 with
              | Some u -> F.compare u t <= 0
              | None -> false
            in
            if flip then Some (t, -1)
            else begin
              (* Rows within the widened tie window are all acceptable
                 leavers (we still step exactly t; the chosen leaver is
                 snapped to its bound, an error within the window that the
                 next refactorisation absorbs).  The window is zero for
                 exact fields. *)
              let t_wide =
                F.add t (F.mul (F.add F.one (F.abs t)) (F.mul (F.of_int 5) F.pivot_tol))
              in
              let best = ref (-1) in
              for r = 0 to n - 1 do
                match row_ratio r with
                | Some tr when F.compare tr (if !bland then t else t_wide) <= 0 ->
                  if !best < 0 then best := r
                  else if !bland then begin
                    if st.basis.(r) < st.basis.(!best) then best := r
                  end
                  else if F.compare (F.abs wcol.(r)) (F.abs wcol.(!best)) > 0 then best := r
                | Some _ | None -> ()
              done;
              if !best < 0 then None else Some (t, !best)
            end
        in
        match limit with
        | None ->
          result := `Unbounded;
          continue := false
        | Some (_, r)
          when r >= 0
               && k_etas st.kern > 25
               && F.compare (F.abs wcol.(r)) F.pivot_tol <= 0 ->
          (* About to pivot on a noise-level element with a stale basis:
             refactorise and re-price instead (if the tiny pivot is real, the
             next pass accepts it on fresh numbers). *)
          refactorize st ~phase2;
          Obs.Counter.incr c_refactors
        | Some (t, r) ->
          if F.sign t = 0 then begin
            incr degen;
            if !degen > 30 && not !bland then begin
              bland := true;
              Obs.Counter.incr c_bland_falls
            end
          end
          else degen := 0;
          (* Apply the move to the basic values. *)
          F.axpy (F.neg (F.mul sigma t)) wcol st.xb;
          if r = -1 then begin
            (* Bound flip: entering jumps to its other bound. *)
            Obs.Counter.incr c_bound_flips;
            st.at_upper.(jj) <- not st.at_upper.(jj)
          end
          else begin
            (* Basis change: entering becomes basic in row r. *)
            let leaving = st.basis.(r) in
            let entering_value =
              let from = nonbasic_value st jj ~phase2 in
              F.add from (F.mul sigma t)
            in
            (* Leaving lands on the bound it hit. *)
            let delta = F.mul sigma wcol.(r) in
            let leaves_at_upper = F.sign delta < 0 in
            st.in_basis.(leaving) <- false;
            st.at_upper.(leaving) <- leaves_at_upper;
            st.in_basis.(jj) <- true;
            st.basis.(r) <- jj;
            st.xb.(r) <- entering_value;
            k_update st.kern ~r ~wcol;
            Obs.Counter.incr c_pivots;
            Obs.Counter.record_max c_eta_peak (k_etas st.kern)
          end
      end
    done;
    !result

  (* ----- Dual simplex path -------------------------------------------
     Applicable when the model has no equality rows and a non-negative
     objective (true of every program this code base generates): after
     turning all rows into <= (and materialising finite variable upper
     bounds as extra rows), the all-slack basis is dual feasible and no
     phase 1 is needed.  Branch-and-bound re-solves stay dual feasible
     because fixing variables only changes the right-hand side.  Covering
     LPs are far less degenerate on the dual side, which is why this path
     exists (the primal stalls on them). *)

  let dual_applicable m srows =
    Array.for_all (fun r -> r.sense <> Model.Eq) srows
    &&
    let ok = ref true in
    for v = 0 to Model.num_vars m - 1 do
      if Model.objective m v < 0 then ok := false
    done;
    !ok

  (* All rows as <=, plus upper-bound rows; rhs may be negative. *)
  let dual_rows m var_of_col srows =
    let rows =
      Array.to_list srows
      |> List.map (fun r ->
             match r.sense with
             | Model.Leq -> r
             | Model.Geq ->
               {
                 coeffs = List.map (fun (j, c) -> (j, -c)) r.coeffs;
                 sense = Model.Leq;
                 rhs = -r.rhs;
               }
             | Model.Eq -> assert false)
    in
    let ub_rows =
      Array.to_list var_of_col
      |> List.mapi (fun col v ->
             match Model.upper m v with
             | Some u -> Some { coeffs = [ (col, 1) ]; sense = Model.Leq; rhs = u }
             | None -> None)
      |> List.filter_map Fun.id
    in
    Array.of_list (rows @ ub_rows)

  let debug = match Sys.getenv_opt "SIMPLEX_DEBUG" with Some _ -> true | None -> false

  let run_dual st =
    let n = st.w.nrows in
    let bland = ref false in
    let iters = ref 0 in
    let refactors = ref 0 in
    let max_iters = 20_000 + (60 * (st.w.ncols + n)) in
    (* Reduced costs of all columns, maintained incrementally across pivots
       and refreshed from scratch at every refactorisation. *)
    let darr = Array.make st.w.ncols F.zero in
    let refresh_reduced () =
      let cb = Array.make n F.zero in
      for i = 0 to n - 1 do
        cb.(i) <- col_cost st st.basis.(i) ~phase1:false
      done;
      let y = k_btran st.kern cb in
      for j = 0 to st.w.ncols - 1 do
        if st.in_basis.(j) then darr.(j) <- F.zero
        else begin
          let acc = ref (col_cost st j ~phase1:false) in
          List.iter (fun (i, c) -> acc := F.sub !acc (F.mul y.(i) c)) (col_entries st j);
          darr.(j) <- !acc
        end
      done
    in
    refresh_reduced ();
    let result = ref `Optimal in
    let continue = ref true in
    while !continue do
      incr iters;
      if !iters > max_iters then failwith "Simplex.solve: dual iteration limit";
      if !iters > max_iters / 2 && not !bland then begin
        bland := true;
        Obs.Counter.incr c_bland_falls
      end;
      if k_should_refactor st.kern then begin
        refactorize st ~phase2:true;
        refresh_reduced ();
        incr refactors;
        Obs.Counter.incr c_refactors
      end;
      (* Leaving row: a basic variable below its lower bound 0 (no basic has
         a finite upper here — bounds were turned into rows). *)
      let leave = ref (-1) in
      for r = 0 to n - 1 do
        if F.sign st.xb.(r) < 0 then
          if !leave < 0 then leave := r
          else if !bland then begin
            if st.basis.(r) < st.basis.(!leave) then leave := r
          end
          else if F.compare st.xb.(r) st.xb.(!leave) < 0 then leave := r
      done;
      if !leave < 0 then continue := false
      else begin
        let r = !leave in
        let brow = k_btran_unit st.kern r in
        let alpha j =
          let acc = ref F.zero in
          List.iter (fun (i, c) -> acc := F.add !acc (F.mul brow.(i) c)) (col_entries st j);
          !acc
        in
        (* Entering: nonbasic (all at lower bound) with alpha < 0, taking the
           smallest |d/alpha| to preserve dual feasibility; prefer large
           |alpha| among ties, smallest index under Bland.  Reduced costs
           come from the incrementally-maintained [darr]. *)
        let enter = ref (-1) in
        let enter_alpha = ref F.zero in
        let best_theta = ref F.zero in
        let j = ref 0 in
        while !j < st.w.ncols && not (!bland && !enter >= 0) do
          let jj = !j in
          if not st.in_basis.(jj) then begin
            let a = alpha jj in
            if F.sign a < 0 then begin
              let d = darr.(jj) in
              let d = if F.sign d < 0 then F.zero else d in
              let theta = F.div d (F.neg a) in
              (* minimise theta = |d/alpha| *)
              let better =
                !enter < 0
                || F.compare theta !best_theta < 0
                || (F.compare theta !best_theta = 0
                   && F.compare (F.abs a) (F.abs !enter_alpha) > 0)
              in
              if better then begin
                enter := jj;
                enter_alpha := a;
                best_theta := theta
              end
            end
          end;
          incr j
        done;
        if !enter < 0 then begin
          result := `Infeasible;
          continue := false
        end
        else begin
          let jj = !enter in
          let wcol = k_ftran st.kern (col_entries st jj) in
          observe_ftran wcol;
          if k_etas st.kern > 25 && F.compare (F.abs wcol.(r)) F.pivot_tol <= 0
          then begin
            refactorize st ~phase2:true;
            refresh_reduced ();
            incr refactors;
            Obs.Counter.incr c_refactors
          end
          else begin
            let delta = F.div st.xb.(r) wcol.(r) in
            (* both negative: delta > 0 *)
            F.axpy (F.neg delta) wcol st.xb;
            let leaving = st.basis.(r) in
            (* Dual pivot on (r, jj): every nonbasic reduced cost moves by
               -theta * alpha_j with theta = d_q / alpha_q; the leaving
               column (alpha = 1 as it is basic in row r) ends at -theta. *)
            let theta = F.div darr.(jj) wcol.(r) in
            if F.sign theta <> 0 then
              for k = 0 to st.w.ncols - 1 do
                if (not st.in_basis.(k)) && k <> jj then
                  darr.(k) <- F.sub darr.(k) (F.mul theta (alpha k))
              done;
            darr.(leaving) <- F.neg theta;
            darr.(jj) <- F.zero;
            st.in_basis.(leaving) <- false;
            st.at_upper.(leaving) <- false;
            st.in_basis.(jj) <- true;
            st.basis.(r) <- jj;
            st.xb.(r) <- delta;
            k_update st.kern ~r ~wcol;
            Obs.Counter.incr c_pivots;
            Obs.Counter.record_max c_eta_peak (k_etas st.kern)
          end
        end
      end
    done;
    if debug then
      Printf.eprintf "[dual] rows=%d cols=%d iters=%d refactors=%d kernel=%s\n%!" n st.w.ncols
        !iters !refactors (kernel_name st.kern);
    !result

  (* ----- Frozen sessions: bounded-variable dual simplex -----------------
     A [session] compiles a {!Frozen.t} once into sparse columns with
     native per-column bounds — finite upper bounds are NOT materialised as
     rows, and equality rows get a slack fixed to [0,0] — and then solves
     any number of {!Frozen.Delta} bound overlays against it.  The dual
     simplex needs a dual-feasible start, which bounds make trivial to
     maintain: reduced costs depend only on (basis, costs), and a delta
     changes only bounds, so the optimal basis of the previous solve stays
     dual feasible for the next one after snapping each nonbasic variable
     to the bound its reduced-cost sign prefers.  That is the whole
     warm-start protocol; branch-and-bound fixes and responsibility-batch
     overlays both go through it.

     Requirement: every objective coefficient must be non-negative (true of
     all programs this code base generates), so that the all-slack basis is
     a universally available dual-feasible reset point.

     [sstate] is the compiled state for ONE matrix shape; the public
     [session] wraps it and swaps in a re-compiled state when a delta
     carries row/column appends (see [session_absorb] below). *)

  type sstate = {
    snrows : int;
    sncols : int;  (* structural + one slack per row *)
    snstruct : int;
    scols : (int * F.t) list array;  (* sparse column entries (row, coeff) *)
    srow_j : int array array;  (* CSR view of [scols] (slacks included): *)
    srow_v : F.t array array;  (* column ids / coefficients per row *)
    salpha : F.t array;  (* pivot-row scratch: alpha_j = brow · col_j *)
    salpha_stamp : int array;  (* validity stamp per [salpha] slot *)
    mutable salpha_stamp_val : int;
    stouched : int array;  (* scratch: columns touched by the alpha pass *)
    scost : F.t array;
    sb : F.t array;
    base_lb : F.t array;
    base_ub : F.t option array;  (* None = +inf *)
    lb : F.t array;  (* after the current delta *)
    ub : F.t option array;
    skern : basis_kernel;
    sbasis : int array;
    sxb : F.t array;
    s_in_basis : bool array;
    s_at_upper : bool array;
    sdarr : F.t array;  (* reduced costs, maintained across pivots/deltas *)
    (* Index of rows whose basic value violates a bound, maintained
       incrementally from the FTRAN pattern so the leaving-row choice scans
       candidates instead of every row.  [sviol_pos] maps a row to its slot
       (-1 when inside bounds); rebuilt from scratch by
       {!session_compute_xb}. *)
    sviol : int array;
    sviol_pos : int array;
    mutable sviol_n : int;
    (* Pricing skip set: basic columns and columns fixed by the current
       delta can never enter, so the alpha pass does not price them.  The
       cost is that a fixed column's reduced cost goes stale during a solve
       (its incremental dual update is skipped too); [sdarr_stale] records
       that, and the next solve entry recomputes darr from the basis before
       trusting signs.  [sfixed] caches the per-delta fixed test. *)
    sskip : bool array;
    sfixed : bool array;
    mutable sdarr_stale : bool;
    mutable stotal_pivots : int;
        (* Lifetime pivot count; never reset.  Per-session (not a global
           counter) so parallel batches can report per-solve deltas without
           reading each other's work. *)
    mutable srefactors : int;  (* lifetime refactorisation count *)
  }

  let frozen_dual_applicable fz =
    let ok = ref true in
    for v = 0 to Frozen.num_vars fz - 1 do
      if Frozen.objective fz v < 0 then ok := false
    done;
    !ok

  (* Slack of row i carries coefficient [slack_sign i]: +1 for <= and =,
     -1 for >= (so the slack itself lives in [0, +inf), or [0,0] for =). *)
  let slack_sign fz i =
    match Frozen.row_sense fz i with Model.Leq | Model.Eq -> F.one | Model.Geq -> F.neg F.one

  (* Reset to the all-slack basis: reduced costs equal the raw costs (slack
     costs are zero) and every structural column sits at its lower bound —
     dual feasible because all costs are non-negative.  The all-slack basis
     matrix is diagonal (+-1), so the kernel refactor cannot fail. *)
  let session_reset s =
    let n = s.snrows in
    for i = 0 to n - 1 do
      s.sbasis.(i) <- s.snstruct + i
    done;
    Array.fill s.s_at_upper 0 s.sncols false;
    for j = 0 to s.sncols - 1 do
      s.s_in_basis.(j) <- j >= s.snstruct;
      s.sskip.(j) <- s.sfixed.(j) || j >= s.snstruct;
      s.sdarr.(j) <- s.scost.(j)
    done;
    k_refactor s.skern s.sbasis

  let create_state ?(kernel = `Auto) fz =
    if not (frozen_dual_applicable fz) then
      invalid_arg "Simplex.create_session: negative objective coefficient";
    let nstruct = Frozen.num_vars fz in
    let nrows = Frozen.num_rows fz in
    let ncols = nstruct + nrows in
    let scols = Array.make (max 1 ncols) [] in
    for v = 0 to nstruct - 1 do
      let acc = ref [] in
      Frozen.iter_col fz v (fun i c -> acc := (i, F.of_int c) :: !acc);
      scols.(v) <- List.rev !acc
    done;
    for i = 0 to nrows - 1 do
      scols.(nstruct + i) <- [ (i, slack_sign fz i) ]
    done;
    (* The CSR transpose of [scols], for the dual pivot's row-wise alpha
       pass.  Column ids come out ascending per row (j sweeps upward). *)
    let row_counts = Array.make (max 1 nrows) 0 in
    Array.iter (List.iter (fun (i, _) -> row_counts.(i) <- row_counts.(i) + 1)) scols;
    let srow_j = Array.init (max 1 nrows) (fun i -> Array.make (max 1 row_counts.(i)) 0) in
    let srow_v = Array.init (max 1 nrows) (fun i -> Array.make (max 1 row_counts.(i)) F.zero) in
    let fill = Array.make (max 1 nrows) 0 in
    Array.iteri
      (fun j entries ->
        List.iter
          (fun (i, c) ->
            srow_j.(i).(fill.(i)) <- j;
            srow_v.(i).(fill.(i)) <- c;
            fill.(i) <- fill.(i) + 1)
          entries)
      scols;
    Array.iteri
      (fun i filled ->
        if filled < Array.length srow_j.(i) then begin
          srow_j.(i) <- Array.sub srow_j.(i) 0 filled;
          srow_v.(i) <- Array.sub srow_v.(i) 0 filled
        end)
      fill;
    let scost = Array.make (max 1 ncols) F.zero in
    for v = 0 to nstruct - 1 do
      scost.(v) <- F.of_int (Frozen.objective fz v)
    done;
    let base_lb = Array.make (max 1 ncols) F.zero in
    let base_ub = Array.make (max 1 ncols) None in
    for v = 0 to nstruct - 1 do
      base_ub.(v) <- Option.map F.of_int (Frozen.upper fz v)
    done;
    for i = 0 to nrows - 1 do
      if Frozen.row_sense fz i = Model.Eq then base_ub.(nstruct + i) <- Some F.zero
    done;
    let s =
      {
        snrows = nrows;
        sncols = ncols;
        snstruct = nstruct;
        scols;
        srow_j;
        srow_v;
        salpha = Array.make (max 1 ncols) F.zero;
        salpha_stamp = Array.make (max 1 ncols) 0;
        salpha_stamp_val = 0;
        stouched = Array.make (max 1 ncols) 0;
        scost;
        sb = Array.init (max 1 nrows) (fun i -> if i < nrows then F.of_int (Frozen.row_rhs fz i) else F.zero);
        base_lb;
        base_ub;
        lb = Array.copy base_lb;
        ub = Array.copy base_ub;
        skern = make_kernel kernel ~nrows ~col:(fun j -> scols.(j));
        sbasis = Array.make (max 1 nrows) 0;
        sxb = Array.make (max 1 nrows) F.zero;
        s_in_basis = Array.make (max 1 ncols) false;
        s_at_upper = Array.make (max 1 ncols) false;
        sdarr = Array.make (max 1 ncols) F.zero;
        sviol = Array.make (max 1 nrows) 0;
        sviol_pos = Array.make (max 1 nrows) (-1);
        sviol_n = 0;
        sskip = Array.make (max 1 ncols) false;
        sfixed = Array.make (max 1 ncols) false;
        sdarr_stale = false;
        stotal_pivots = 0;
        srefactors = 0;
      }
    in
    session_reset s;
    s

  let session_fixed s j = match s.ub.(j) with Some u -> F.compare u s.lb.(j) <= 0 | None -> false

  let session_nb_value s j =
    if s.s_at_upper.(j) then match s.ub.(j) with Some u -> u | None -> s.lb.(j) else s.lb.(j)

  let session_row_violated s r =
    let jb = s.sbasis.(r) in
    let x = s.sxb.(r) in
    F.sign (F.sub s.lb.(jb) x) > 0
    || (match s.ub.(jb) with Some u -> F.sign (F.sub x u) > 0 | None -> false)

  let session_rebuild_viol s =
    s.sviol_n <- 0;
    for r = 0 to s.snrows - 1 do
      if session_row_violated s r then begin
        s.sviol_pos.(r) <- s.sviol_n;
        s.sviol.(s.sviol_n) <- r;
        s.sviol_n <- s.sviol_n + 1
      end
      else s.sviol_pos.(r) <- -1
    done

  (* Re-check one row after its basic value (or basis column) changed. *)
  let session_update_viol s r =
    let v = session_row_violated s r in
    let p = s.sviol_pos.(r) in
    if v && p < 0 then begin
      s.sviol_pos.(r) <- s.sviol_n;
      s.sviol.(s.sviol_n) <- r;
      s.sviol_n <- s.sviol_n + 1
    end
    else if (not v) && p >= 0 then begin
      let last = s.sviol.(s.sviol_n - 1) in
      s.sviol.(p) <- last;
      s.sviol_pos.(last) <- p;
      s.sviol_pos.(r) <- -1;
      s.sviol_n <- s.sviol_n - 1
    end

  (* xb = Binv (b - N x_N): valid whenever the kernel matches the basis. *)
  let session_compute_xb s =
    let n = s.snrows in
    let rhs = Array.sub s.sb 0 n in
    for j = 0 to s.sncols - 1 do
      if not s.s_in_basis.(j) then begin
        let v = session_nb_value s j in
        if F.sign v <> 0 then
          List.iter (fun (i, c) -> rhs.(i) <- F.sub rhs.(i) (F.mul c v)) s.scols.(j)
      end
    done;
    let w = k_ftran_dense s.skern rhs in
    Array.blit w 0 s.sxb 0 n;
    session_rebuild_viol s

  let session_refresh_darr s =
    let n = s.snrows in
    let cb = Array.make n F.zero in
    for i = 0 to n - 1 do
      cb.(i) <- s.scost.(s.sbasis.(i))
    done;
    let y = k_btran s.skern cb in
    for j = 0 to s.sncols - 1 do
      if s.s_in_basis.(j) then s.sdarr.(j) <- F.zero
      else begin
        let acc = ref s.scost.(j) in
        List.iter (fun (i, c) -> acc := F.sub !acc (F.mul y.(i) c)) s.scols.(j);
        s.sdarr.(j) <- !acc
      end
    done

  exception Session_singular

  let session_refactorize s =
    (try k_refactor s.skern s.sbasis
     with Basis.Singular ->
       (* A numerically singular basis (floats only): fall back to the
          always-valid all-slack start rather than failing the solve. *)
       session_reset s;
       session_compute_xb s;
       raise Session_singular);
    session_compute_xb s;
    session_refresh_darr s

  (* The bounded-variable dual simplex.  Invariants: darr is dual feasible
     for the nonbasic positions (at lower => d >= 0, at upper => d <= 0,
     fixed => unconstrained), the kernel factorises the basis, xb holds the
     basic values.  Returns when every basic value is within its bounds
     (`Optimal) or a bound-violated row admits no entering column
     (`Infeasible — a valid Farkas certificate even with fixed columns
     excluded, since those sit at equal lower and upper bounds). *)
  let session_run s =
    let n = s.snrows in
    let bland = ref false in
    let iters = ref 0 in
    let max_iters = 20_000 + (60 * s.sncols) in
    let fall_to_bland () =
      if not !bland then begin
        bland := true;
        Obs.Counter.incr c_bland_falls
      end
    in
    let refactor () =
      (match session_refactorize s with
      | () -> ()
      | exception Session_singular ->
        (* session_reset already restored the all-slack state (darr equals
           the raw costs there), so the solve continues from the cold
           start. *)
        ());
      s.srefactors <- s.srefactors + 1;
      Obs.Counter.incr c_refactors;
      observe_factor s.skern
    in
    let result = ref `Optimal in
    let continue = ref true in
    while !continue do
      incr iters;
      if !iters > max_iters then failwith "Simplex.session_solve: dual iteration limit";
      if !iters > max_iters / 2 then fall_to_bland ();
      (* Refactorise on the kernel's own cadence: the dense reference
         bounds drift (~max(300, n) etas), the sparse kernel additionally
         bounds eta fill.  The cadence lives on the kernel, so it carries
         across the many short solves of a warm batch. *)
      if k_should_refactor s.skern then refactor ();
      (* Leaving row: a basic value outside its bounds, drawn from the
         incrementally maintained violation index.  rho = +1 when the
         leaver must rise to its lower bound, -1 when it must drop to its
         upper bound; largest violation wins.  The index holds rows in
         arbitrary order, so ties — equal violations, and Bland's
         smallest-basis-index rule — break explicitly towards the choices
         the old ascending full scan made. *)
      let leave = ref (-1) in
      let leave_rho = ref F.one in
      let best_viol = ref F.zero in
      for vi = 0 to s.sviol_n - 1 do
        let r = s.sviol.(vi) in
        let jb = s.sbasis.(r) in
        let x = s.sxb.(r) in
        let viol, rho =
          let low = F.sub s.lb.(jb) x in
          if F.sign low > 0 then (low, F.one)
          else
            match s.ub.(jb) with
            | Some u ->
              let high = F.sub x u in
              if F.sign high > 0 then (high, F.neg F.one) else (F.zero, F.one)
            | None -> (F.zero, F.one)
        in
        if F.sign viol > 0 then
          if !leave < 0 then begin
            leave := r;
            leave_rho := rho;
            best_viol := viol
          end
          else if !bland then begin
            if s.sbasis.(r) < s.sbasis.(!leave) then begin
              leave := r;
              leave_rho := rho;
              best_viol := viol
            end
          end
          else begin
            let c = F.compare viol !best_viol in
            if c > 0 || (c = 0 && r < !leave) then begin
              leave := r;
              leave_rho := rho;
              best_viol := viol
            end
          end
      done;
      if !leave < 0 then continue := false
      else begin
        let r = !leave in
        let rho = !leave_rho in
        let brow = k_btran_unit s.skern r in
        (* One sparse row-wise pass computes every alpha_j = brow · col_j at
           a cost proportional to the nonzero rows of [brow] (via the CSR
           view), not to the matrix: only the touched columns can be
           eligible below (alpha = 0 fails both sign tests), so the ratio
           test and the dual update scan candidates, not all columns.  The
           candidate list is sorted so the scan order — and hence every
           tie-break, including Bland's smallest-index rule — matches the
           plain column sweep it replaces. *)
        s.salpha_stamp_val <- s.salpha_stamp_val + 1;
        let stamp = s.salpha_stamp_val in
        let ntouched = ref 0 in
        for i = 0 to n - 1 do
          let bi = brow.(i) in
          if F.sign bi <> 0 then begin
            let rj = s.srow_j.(i) and rv = s.srow_v.(i) in
            for k = 0 to Array.length rj - 1 do
              let jc = rj.(k) in
              if not s.sskip.(jc) then begin
                let contrib = F.mul bi rv.(k) in
                if s.salpha_stamp.(jc) = stamp then s.salpha.(jc) <- F.add s.salpha.(jc) contrib
                else begin
                  s.salpha_stamp.(jc) <- stamp;
                  s.salpha.(jc) <- contrib;
                  s.stouched.(!ntouched) <- jc;
                  incr ntouched
                end
              end
            done
          end
        done;
        let cand = Array.sub s.stouched 0 !ntouched in
        Array.sort compare cand;
        (* Dual ratio test: an entering candidate must move x_B(r) towards
           its violated bound (sign of rho * alpha decides), and the one
           with the smallest |d / alpha| keeps every other reduced cost on
           the right side; prefer large |alpha| among ties, smallest index
           under Bland. *)
        let enter = ref (-1) in
        let enter_alpha = ref F.zero in
        let best_theta = ref F.zero in
        let j = ref 0 in
        while !j < Array.length cand && not (!bland && !enter >= 0) do
          let jj = cand.(!j) in
          if (not s.s_in_basis.(jj)) && not s.sfixed.(jj) then begin
            let a = s.salpha.(jj) in
            let ra = F.mul rho a in
            let eligible, ratio =
              if s.s_at_upper.(jj) then
                if F.sign ra > 0 then begin
                  let d = s.sdarr.(jj) in
                  let d = if F.sign d > 0 then F.zero else d in
                  (true, F.div (F.neg d) ra)
                end
                else (false, F.zero)
              else if F.sign ra < 0 then begin
                let d = s.sdarr.(jj) in
                let d = if F.sign d < 0 then F.zero else d in
                (true, F.div d (F.neg ra))
              end
              else (false, F.zero)
            in
            if eligible then begin
              let better =
                !enter < 0
                || F.compare ratio !best_theta < 0
                || (F.compare ratio !best_theta = 0
                   && F.compare (F.abs a) (F.abs !enter_alpha) > 0)
              in
              if better then begin
                enter := jj;
                enter_alpha := a;
                best_theta := ratio
              end
            end
          end;
          incr j
        done;
        if !enter < 0 then begin
          result := `Infeasible;
          continue := false
        end
        else begin
          let q = !enter in
          let wcol = k_ftran s.skern s.scols.(q) in
          observe_ftran wcol;
          if k_etas s.skern > 25 && F.compare (F.abs wcol.(r)) F.pivot_tol <= 0 then
            (* Noise-level pivot on a stale basis: refactorise and retry
               on fresh numbers. *)
            refactor ()
          else begin
            let jb_leave = s.sbasis.(r) in
            let target =
              if F.sign rho > 0 then s.lb.(jb_leave)
              else match s.ub.(jb_leave) with Some u -> u | None -> assert false
            in
            let step = F.div (F.sub s.sxb.(r) target) wcol.(r) in
            let entering_value = F.add (session_nb_value s q) step in
            let plen = k_ftran_pattern_len s.skern in
            let nstep = F.neg step in
            (if plen >= 0 then begin
               (* The pattern covers every nonzero of [wcol]: the basic
                  values move only there (same guard as {!F.axpy} — skip a
                  zero multiplier entirely). *)
               if F.compare nstep F.zero <> 0 then begin
                 let pat = k_ftran_pattern s.skern in
                 for idx = 0 to plen - 1 do
                   let i = pat.(idx) in
                   s.sxb.(i) <- F.add s.sxb.(i) (F.mul nstep wcol.(i))
                 done
               end
             end
             else F.axpy nstep wcol s.sxb);
            (* Dual update before the basis update (alpha reads the row of
               the pre-pivot inverse, captured in [brow]). *)
            let theta = F.div s.sdarr.(q) wcol.(r) in
            if F.sign theta <> 0 then
              Array.iter
                (fun k ->
                  if (not s.s_in_basis.(k)) && k <> q then
                    s.sdarr.(k) <- F.sub s.sdarr.(k) (F.mul theta s.salpha.(k)))
                cand;
            s.sdarr.(jb_leave) <- F.neg theta;
            s.sdarr.(q) <- F.zero;
            s.s_in_basis.(jb_leave) <- false;
            s.sskip.(jb_leave) <- s.sfixed.(jb_leave);
            s.s_at_upper.(jb_leave) <- F.sign rho < 0;
            s.s_in_basis.(q) <- true;
            s.sskip.(q) <- true;
            s.sbasis.(r) <- q;
            s.sxb.(r) <- entering_value;
            k_update s.skern ~r ~wcol;
            (* Re-check the violation status of every row the pivot could
               have moved (the pattern rows; [r] is among them). *)
            if plen >= 0 then begin
              let pat = k_ftran_pattern s.skern in
              for idx = 0 to plen - 1 do
                session_update_viol s pat.(idx)
              done
            end
            else session_rebuild_viol s;
            s.stotal_pivots <- s.stotal_pivots + 1;
            Obs.Counter.incr c_pivots;
            Obs.Counter.record_max c_eta_peak (k_etas s.skern)
          end
        end
      end
    done;
    !result

  let session_extract s =
    let nvars = s.snstruct in
    let x = Array.make nvars F.zero in
    for j = 0 to nvars - 1 do
      if not s.s_in_basis.(j) then x.(j) <- session_nb_value s j
    done;
    for r = 0 to s.snrows - 1 do
      if s.sbasis.(r) < nvars then x.(s.sbasis.(r)) <- s.sxb.(r)
    done;
    let objective = ref F.zero in
    for v = 0 to nvars - 1 do
      if F.sign s.scost.(v) <> 0 then objective := F.add !objective (F.mul s.scost.(v) x.(v))
    done;
    Optimal { objective = !objective; solution = x }

  let state_solve s delta =
    (* Install the delta over the base bounds. *)
    Array.blit s.base_lb 0 s.lb 0 (max 1 s.sncols);
    Array.blit s.base_ub 0 s.ub 0 (max 1 s.sncols);
    let infeasible_fix = ref false in
    List.iter
      (fun (v, k) ->
        if v < 0 || v >= s.snstruct then invalid_arg "Simplex.session_solve: unknown variable";
        let kf = F.of_int k in
        (match s.base_ub.(v) with
        | Some u when F.compare kf u > 0 -> infeasible_fix := true
        | _ -> ());
        if k < 0 then infeasible_fix := true;
        s.lb.(v) <- kf;
        s.ub.(v) <- Some kf)
      (Frozen.Delta.bindings delta);
    if !infeasible_fix then Infeasible
    else if s.snrows = 0 then begin
      (* No rows: every variable sits at its lower bound. *)
      let x = Array.init s.snstruct (fun v -> s.lb.(v)) in
      let objective = ref F.zero in
      for v = 0 to s.snstruct - 1 do
        if F.sign s.scost.(v) <> 0 then objective := F.add !objective (F.mul s.scost.(v) x.(v))
      done;
      Optimal { objective = !objective; solution = x }
    end
    else begin
      (* The previous solve skipped dual updates on its fixed columns;
         their reduced costs cannot be trusted until recomputed from the
         basis. *)
      if s.sdarr_stale then session_refresh_darr s;
      let has_fixed = ref false in
      for j = 0 to s.sncols - 1 do
        let fx = session_fixed s j in
        s.sfixed.(j) <- fx;
        if fx then has_fixed := true
      done;
      s.sdarr_stale <- !has_fixed;
      (* Repair nonbasic positions for dual feasibility under the new
         bounds: fixed columns sit at their (single) bound, otherwise the
         reduced-cost sign picks the bound.  d < 0 with no finite upper can
         only be left over from a previously-fixed column; the all-slack
         reset recovers dual feasibility in that case. *)
      (try
         for j = 0 to s.sncols - 1 do
           if not s.s_in_basis.(j) then
             if s.sfixed.(j) then s.s_at_upper.(j) <- false
             else if F.sign s.sdarr.(j) >= 0 then s.s_at_upper.(j) <- false
             else
               match s.ub.(j) with
               | Some _ -> s.s_at_upper.(j) <- true
               | None -> raise Exit
         done
       with Exit -> session_reset s);
      for j = 0 to s.sncols - 1 do
        s.sskip.(j) <- s.sfixed.(j) || s.s_in_basis.(j)
      done;
      session_compute_xb s;
      match session_run s with
      | `Optimal -> session_extract s
      | `Infeasible when k_etas s.skern = 0 ->
        (* The verdict was reached on a freshly factorised basis — no update
           drift to distrust. *)
        Infeasible
      | `Infeasible ->
        (* Never trust an infeasibility verdict reached on a basis with
           updates on it: accumulated drift in the factors/darr can hide
           every eligible entering column.  Re-derive on a fresh
           factorisation of the *current* basis — exact factors, exactly
           recomputed duals and basics — which removes the drift while
           keeping the warm start (an all-slack restart here would pay a
           full cold solve per infeasible node). *)
        (match session_refactorize s with
        | () ->
          (* The exact duals can flip a nonbasic bound status; repair it
             exactly as the solve entry does, then rebuild the basics the
             repair may have moved. *)
          (try
             for j = 0 to s.sncols - 1 do
               if not s.s_in_basis.(j) then
                 if s.sfixed.(j) then s.s_at_upper.(j) <- false
                 else if F.sign s.sdarr.(j) >= 0 then s.s_at_upper.(j) <- false
                 else
                   match s.ub.(j) with
                   | Some _ -> s.s_at_upper.(j) <- true
                   | None -> raise Exit
             done
           with Exit -> session_reset s);
          for j = 0 to s.sncols - 1 do
            s.sskip.(j) <- s.sfixed.(j) || s.s_in_basis.(j)
          done;
          session_compute_xb s
        | exception Session_singular ->
          (* session_reset already restored the all-slack state. *)
          ());
        (match session_run s with
        | `Infeasible -> Infeasible
        | `Optimal -> session_extract s)
    end

  (* ----- Public sessions: append absorption over the compiled state ----
     A [session] remembers the base frozen program and which appends its
     current [sstate] was compiled for.  Solving under a delta whose
     appends differ re-compiles the state against [Frozen.extend base
     delta]; when the new appends extend the absorbed ones the previous
     optimal basis is re-seeded (old structurals keep their index, old
     slack [i] becomes column [nstruct' + i], new rows enter slack-basic).
     That seed is always dual feasible: appended rows have zero duals
     (their slacks are basic with zero cost), so every old reduced cost is
     unchanged, and appended columns — which by construction of frozen
     rows cannot appear in base rows — price out at their own non-negative
     objective.  Base rows are immutable, which is the invariant making
     this sound. *)

  type session = {
    ses_base : Frozen.t;
    ses_choice : Basis.choice;
    mutable ses_st : sstate;
    mutable ses_abs : Frozen.Delta.t;  (* appends the state was compiled for *)
  }

  let create_session ?(kernel = `Auto) fz =
    {
      ses_base = fz;
      ses_choice = kernel;
      ses_st = create_state ~kernel fz;
      ses_abs = Frozen.Delta.empty;
    }

  (* Lifetime work totals, for per-solve deltas in branch-and-bound and the
     enriched public stats records.  Totals survive append absorption (the
     re-compiled state inherits them), so before/after deltas stay
     monotone. *)
  let session_pivots s = s.ses_st.stotal_pivots
  let session_refactors s = s.ses_st.srefactors
  let session_kernel s = kernel_name s.ses_st.skern

  let session_absorb sess delta =
    let fz' = Frozen.extend sess.ses_base delta in
    if not (frozen_dual_applicable fz') then
      invalid_arg "Simplex.session_solve: appended column with negative objective";
    let old = sess.ses_st in
    let st = create_state ~kernel:sess.ses_choice fz' in
    st.stotal_pivots <- old.stotal_pivots;
    st.srefactors <- old.srefactors;
    if old.snrows > 0 && Frozen.Delta.extends ~prefix:sess.ses_abs delta then begin
      (* Warm seed from the previous basis (see the block comment above).
         With no old rows the all-slack start of [create_state] already is
         the seed. *)
      for i = 0 to old.snrows - 1 do
        let jb = old.sbasis.(i) in
        st.sbasis.(i) <- (if jb < old.snstruct then jb else st.snstruct + (jb - old.snstruct))
      done;
      for i = old.snrows to st.snrows - 1 do
        st.sbasis.(i) <- st.snstruct + i
      done;
      Array.fill st.s_in_basis 0 st.sncols false;
      for i = 0 to st.snrows - 1 do
        st.s_in_basis.(st.sbasis.(i)) <- true
      done;
      (* Nonbasic bound statuses are re-derived from the refreshed reduced
         costs at the next solve entry, so none are copied here. *)
      match k_refactor st.skern st.sbasis with
      | () -> st.sdarr_stale <- true
      | exception Basis.Singular -> session_reset st
    end;
    sess.ses_st <- st;
    sess.ses_abs <- delta

  let session_solve sess delta =
    if not (Frozen.Delta.same_appends delta sess.ses_abs) then session_absorb sess delta;
    state_solve sess.ses_st delta

  let solve ?(fixed = []) ?(method_ = `Auto) ?(kernel = `Auto) m =
    match standardize m fixed with
    | exception Infeasible_fix -> Infeasible
    | var_of_col, fixed_val, srows
      when (match method_ with `Primal -> false | `Dual | `Auto -> dual_applicable m srows) -> (
      let drows = dual_rows m var_of_col srows in
      (* Strip the per-column upper bounds: they are rows now. *)
      let w0 = build_work m var_of_col drows in
      let w = { w0 with upper = Array.map (fun _ -> None) w0.upper } in
      let n = w.nrows in
      let total_cols = w.ncols + n in
      let col j = if j < w.ncols then w.cols.(j) else [ (j - w.ncols, F.one) ] in
      let st =
        {
          w;
          kern = make_kernel kernel ~nrows:n ~col;
          basis = Array.init n (fun i -> w.nstruct + i);
          xb = Array.copy w.b;
          at_upper = Array.make total_cols false;
          in_basis = Array.init total_cols (fun j -> j >= w.nstruct && j < w.ncols);
        }
      in
      refactorize st ~phase2:true;
      match run_dual st with
      | `Infeasible -> Infeasible
      | `Optimal ->
        let nvars = Model.num_vars m in
        let x = Array.make nvars F.zero in
        Array.iteri
          (fun v value -> match value with Some k -> x.(v) <- F.of_int k | None -> ())
          fixed_val;
        for r = 0 to n - 1 do
          if st.basis.(r) < w.nstruct then x.(var_of_col.(st.basis.(r))) <- st.xb.(r)
        done;
        let objective = ref F.zero in
        for v = 0 to nvars - 1 do
          let c = Model.objective m v in
          if c <> 0 then objective := F.add !objective (F.mul (F.of_int c) x.(v))
        done;
        Optimal { objective = !objective; solution = x })
    | var_of_col, fixed_val, srows ->
      let w = build_work m var_of_col srows in
      let n = w.nrows in
      let total_cols = w.ncols + n in
      let col j = if j < w.ncols then w.cols.(j) else [ (j - w.ncols, F.one) ] in
      let st =
        {
          w;
          kern = make_kernel kernel ~nrows:n ~col;
          basis = Array.init n (fun i -> w.ncols + i);
          xb = Array.copy w.b;
          at_upper = Array.make total_cols false;
          in_basis =
            Array.init total_cols (fun j -> j >= w.ncols);
        }
      in
      let needs_phase1 = n > 0 in
      if needs_phase1 then refactorize st ~phase2:false;
      let feasible =
        if not needs_phase1 then true
        else begin
          match run_phase st ~phase1:true with
          | `Unbounded -> failwith "Simplex.solve: phase 1 unbounded (impossible)"
          | `Optimal ->
            let obj = ref F.zero in
            for r = 0 to n - 1 do
              if st.basis.(r) >= w.ncols then obj := F.add !obj st.xb.(r)
            done;
            F.sign !obj <= 0
        end
      in
      if not feasible then Infeasible
      else begin
        (* Refactorise once before phase 2 for a clean start (also recomputes
           xb with artificials pinned at zero). *)
        if n > 0 then begin
          refactorize st ~phase2:true;
          Obs.Counter.incr c_refactors
        end;
        match run_phase st ~phase1:false with
        | `Unbounded -> Unbounded
        | `Optimal ->
          let nvars = Model.num_vars m in
          let x = Array.make nvars F.zero in
          Array.iteri
            (fun v value -> match value with Some k -> x.(v) <- F.of_int k | None -> ())
            fixed_val;
          (* Nonbasic structurals sit at a bound; basics read from xb. *)
          for j = 0 to w.nstruct - 1 do
            if not st.in_basis.(j) then x.(var_of_col.(j)) <- nonbasic_value st j ~phase2:true
          done;
          for r = 0 to n - 1 do
            if st.basis.(r) < w.nstruct then x.(var_of_col.(st.basis.(r))) <- st.xb.(r)
          done;
          let objective = ref F.zero in
          for v = 0 to nvars - 1 do
            let c = Model.objective m v in
            if c <> 0 then objective := F.add !objective (F.mul (F.of_int c) x.(v))
          done;
          Optimal { objective = !objective; solution = x }
      end

  let solve_frozen ?(delta = Frozen.Delta.empty) ?kernel fz =
    let fz_full = Frozen.extend fz delta in
    if frozen_dual_applicable fz_full then session_solve (create_session ?kernel fz) delta
    else
      (* Negative costs: thaw (appends included) and take the general
         primal path with the delta's fixes as substitutions. *)
      solve ~fixed:(Frozen.Delta.bindings delta) ?kernel (Frozen.to_model fz_full)
end
