(** Static structure analysis of a frozen constraint matrix, with
    machine-checkable integrality certificates.

    The paper's central bet is that hardness lives in {e structure}: PTIME
    query classes yield ILPs whose LP relaxations are integral, so
    branch-and-bound is wasted work on them.  {!Analysis} knows this at the
    query level (and goes silent on self-joins); this module decides it at
    the {e matrix} level, for any frozen program — encoder output,
    fuzz-generated, or hand-built — before any solve.

    [analyze] classifies the matrix as

    - {!Integral} with a {e witness}: a structural proof that every vertex
      of the LP relaxation is integral (total unimodularity via a
      Heller–Tompkins row bipartition for ±1 matrices with at most two
      nonzeros per column, its transpose, a consecutive-ones row/column
      ordering, or a full Ghouila–Houri signing family on small matrices),
      or an integral optimal vertex of the root LP (per-objective
      certificate);
    - {!Fractional} with a concrete fractional optimal vertex harvested
      from the root-LP basis;
    - {!Unknown}, with the extracted {!features} vector either way.

    Every certificate is checkable by {!verify} {e independently of the
    recognizer that produced it}: tests and the fuzz oracle re-derive the
    claim from the witness and the matrix alone.  The recognizers are
    deliberately incomplete (consecutive-ones uses greedy block refinement,
    not PQ-trees; Ghouila–Houri is exponential and only attempted below
    [gh_max_rows]); incompleteness costs certificates, never soundness.

    Structural witnesses survive {!Frozen.Delta} bound fixes: fixing a
    variable to an integer deletes its column and appends unit rows, both of
    which preserve total unimodularity — so a certificate for the base
    program certifies every delta-solve against it.  [Root_vertex]
    certificates do {e not} transfer (the optimum moves with the delta);
    {!structural} tells the two apart, and is what the certificate-aware
    dispatch in [Resilience.Session]/[Resilience.Solve] keys on. *)

type features = {
  rows : int;  (** Rows with at least one free entry under the delta. *)
  cols : int;  (** Free (non-delta-fixed) columns with an entry. *)
  nnz : int;
  unit_coeffs : bool;  (** Every entry is ±1. *)
  zero_one : bool;  (** Every entry is +1 (covering shape). *)
  neg_entries : int;
  max_col_nnz : int;
  max_row_nnz : int;
  avg_col_nnz : float;
      (** Row-coupling degree: how many rows an average column ties
          together. *)
  geq_rows : int;
  leq_rows : int;
  eq_rows : int;
  root_lp : float option;  (** Root-LP objective, when probed. *)
  root_fractional : int option;
      (** Fractional integer variables at the root-LP optimum, when
          probed — 0 is the paper's observed LP = ILP condition. *)
}

type witness =
  | Row_partition of bool array
      (** Heller–Tompkins: indexed by frozen row.  Entries ±1, every column
          has at most two nonzeros, and each two-nonzero column has its rows
          in different parts when the signs agree, the same part when they
          differ (equivalently: flipping one part's rows orients the matrix
          into a digraph incidence matrix). *)
  | Col_partition of bool array
      (** The transpose condition: indexed by variable, at most two nonzeros
          per {e row}. *)
  | Consecutive_rows of int array
      (** Interval matrix: a permutation of all frozen rows under which
          every column's support is contiguous (0/1 entries). *)
  | Consecutive_cols of int array
      (** The transpose: a permutation of all variables under which every
          row's support is contiguous. *)
  | Ghouila_houri of int array
      (** Exact characterisation on small matrices: for every non-empty
          subset [mask] of the (delta-reduced) rows — rows numbered in
          ascending frozen order — [signings.(mask - 1)] is the sub-mask of
          positive rows of a signing under which every column sums to
          -1, 0 or 1. *)
  | Root_vertex of float array
      (** An optimal vertex of the root LP relaxation that is integral on
          the integer variables — certifies LP = ILP for {e this}
          objective and delta only. *)

type verdict =
  | Integral of witness
  | Fractional of float array
      (** A fractional optimal vertex of the root LP relaxation. *)
  | Unknown

type t = { verdict : verdict; features : features }

val analyze :
  ?delta:Frozen.Delta.t -> ?gh_max_rows:int -> ?probe_root:bool -> Frozen.t -> t
(** Classify the matrix (as seen through [delta]'s bound fixes, if any).
    Structural recognizers run cheapest-first; the Ghouila–Houri fallback
    only on matrices with at most [gh_max_rows] (default 8) reduced rows.
    With [probe_root] (default [false]) an inconclusive structural pass
    solves the root LP relaxation and harvests an integral or fractional
    vertex from its basis.  Every emitted certificate has been re-checked
    with {!verify} before being returned. *)

val verify : ?delta:Frozen.Delta.t -> ?eps:float -> Frozen.t -> t -> bool
(** Re-derive the certificate's claim from the witness and the matrix,
    independently of {!analyze}: partition/ordering/signing conditions for
    the structural witnesses, feasibility plus integrality (resp. a
    fractional integer coordinate) for vertex certificates.  [Unknown]
    verifies trivially.  Must be called with the same [delta] the
    certificate was produced under. *)

val is_integral : t -> bool

val structural : t -> bool
(** [true] iff the verdict is [Integral] with a delta-transferable
    (matrix-structure, not root-vertex) witness. *)

val witness_name : witness -> string
(** Stable identifier: ["row-partition"], ["col-partition"],
    ["consecutive-rows"], ["consecutive-cols"], ["ghouila-houri"],
    ["root-vertex"]. *)

val verdict_name : t -> string
(** ["integral"], ["fractional"] or ["unknown"]. *)

val describe : t -> string
(** One-line human-readable classification for CLI reports. *)
