type severity = Error | Warning | Note

type diag = { code : string; severity : severity; message : string }

type stats = {
  nvars : int;
  nconstrs : int;
  nnz : int;
  integer_count : int;
  bounded_count : int;
  min_abs_coeff : int;
  max_abs_coeff : int;
  unit_covering : bool;
}

let severity_name = function Error -> "error" | Warning -> "warning" | Note -> "note"

let pp_diag fmt d =
  Format.fprintf fmt "%s %s: %s" d.code (severity_name d.severity) d.message

let errors ds = List.filter (fun d -> d.severity = Error) ds

let severity_rank = function Error -> 0 | Warning -> 1 | Note -> 2

let compare_diag a b =
  compare
    (severity_rank a.severity, a.code, a.message)
    (severity_rank b.severity, b.code, b.message)

let sort_diags ds = List.stable_sort compare_diag ds

(* Rows read once from the frozen CSR arrays; already in normal form. *)
type row = { expr : (Model.var * int) list; sense : Model.sense; rhs : int }

let rows_of m =
  Array.init (Frozen.num_rows m) (fun i ->
      { expr = Frozen.row_expr m i; sense = Frozen.row_sense m i; rhs = Frozen.row_rhs m i })

(* Activity bounds of a row under the variable bounds [0, upper]; [None]
   stands for the relevant infinity. *)
let min_activity m (c : row) =
  List.fold_left
    (fun acc (v, k) ->
      match acc with
      | None -> None
      | Some a ->
        if k >= 0 then Some a
        else (match Frozen.upper m v with Some u -> Some (a + (k * u)) | None -> None))
    (Some 0) c.expr

let max_activity m (c : row) =
  List.fold_left
    (fun acc (v, k) ->
      match acc with
      | None -> None
      | Some a ->
        if k <= 0 then Some a
        else (match Frozen.upper m v with Some u -> Some (a + (k * u)) | None -> None))
    (Some 0) c.expr

(* Can the row be violated / satisfied at all within the bounds? *)
let statically_infeasible m (c : row) =
  match c.sense with
  | Model.Geq -> ( match max_activity m c with Some a -> a < c.rhs | None -> false)
  | Model.Leq -> ( match min_activity m c with Some a -> a > c.rhs | None -> false)
  | Model.Eq -> (
    (match max_activity m c with Some a -> a < c.rhs | None -> false)
    || match min_activity m c with Some a -> a > c.rhs | None -> false)

let trivially_satisfied m (c : row) =
  match c.sense with
  | Model.Geq -> ( match min_activity m c with Some a -> a >= c.rhs | None -> false)
  | Model.Leq -> ( match max_activity m c with Some a -> a <= c.rhs | None -> false)
  | Model.Eq -> (
    match (min_activity m c, max_activity m c) with
    | Some a, Some b -> a = c.rhs && b = c.rhs
    | _ -> false)

let unit_geq (c : row) =
  c.sense = Model.Geq && List.for_all (fun (_, k) -> k = 1) c.expr

(* [support ⊆ support'] for var lists sorted ascending (normalize_expr sorts
   every row). *)
let rec subset xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs', y :: ys' ->
    if x = y then subset xs' ys' else if x > y then subset xs ys' else false

let stats m =
  let cs = rows_of m in
  let nnz = ref 0 in
  let min_c = ref 0 and max_c = ref 0 in
  let unit_covering = ref (Array.length cs > 0) in
  Array.iter
    (fun (c : row) ->
      if not (unit_geq c) then unit_covering := false;
      List.iter
        (fun (_, k) ->
          incr nnz;
          let a = abs k in
          if a > 0 then begin
            if !min_c = 0 || a < !min_c then min_c := a;
            if a > !max_c then max_c := a
          end)
        c.expr)
    cs;
  let integer_count = List.length (Frozen.integer_vars m) in
  let bounded_count = ref 0 in
  for v = 0 to Frozen.num_vars m - 1 do
    if Frozen.upper m v <> None then incr bounded_count
  done;
  {
    nvars = Frozen.num_vars m;
    nconstrs = Frozen.num_rows m;
    nnz = !nnz;
    integer_count;
    bounded_count = !bounded_count;
    min_abs_coeff = !min_c;
    max_abs_coeff = !max_c;
    unit_covering = !unit_covering;
  }

let lint m =
  let cs = rows_of m in
  let nrows = Array.length cs in
  let diags = ref [] in
  let emit code severity message = diags := { code; severity; message } :: !diags in
  (* --- variable checks --------------------------------------------------- *)
  let occupied = Array.make (Frozen.num_vars m) false in
  Array.iter
    (fun (c : row) -> List.iter (fun (v, _) -> occupied.(v) <- true) c.expr)
    cs;
  for v = 0 to Frozen.num_vars m - 1 do
    let name = Frozen.var_name m v in
    if Frozen.is_integer m v then begin
      match Frozen.upper m v with
      | None ->
        emit "M102" Error
          (Printf.sprintf
             "integer variable %s has no upper bound; branch-and-bound branches between bounds"
             name)
      | Some 1 -> ()
      | Some u ->
        emit "M103" Error
          (Printf.sprintf
             "integer variable %s has upper bound %d; branch-and-bound only branches binaries"
             name u)
    end;
    if not occupied.(v) then
      if Frozen.objective m v = 0 then
        emit "M206" Warning
          (Printf.sprintf "variable %s has no constraint and no objective weight" name)
      else
        emit "M205" Warning
          (Printf.sprintf
             "variable %s appears in no constraint; its value is decided by its objective sign"
             name)
  done;
  (* --- row checks -------------------------------------------------------- *)
  for i = 0 to nrows - 1 do
    let c = cs.(i) in
    if statically_infeasible m c then
      emit "M101" Error
        (Printf.sprintf "row c%d cannot be satisfied within the variable bounds" i)
    else if trivially_satisfied m c then
      emit "M204" Warning
        (Printf.sprintf "row c%d holds for every point within the variable bounds" i)
  done;
  (* Duplicate / parallel / conflicting rows, grouped by left-hand side. *)
  let by_lhs : ((Model.var * int) list, (int * Model.sense * int) list ref) Hashtbl.t =
    Hashtbl.create (max 16 nrows)
  in
  Array.iteri
    (fun i (c : row) ->
      match Hashtbl.find_opt by_lhs c.expr with
      | Some l -> l := (i, c.sense, c.rhs) :: !l
      | None -> Hashtbl.add by_lhs c.expr (ref [ (i, c.sense, c.rhs) ]))
    cs;
  let groups =
    Hashtbl.fold (fun _ l acc -> List.rev !l :: acc) by_lhs []
    |> List.filter (fun g -> List.length g > 1)
    |> List.sort (fun a b -> compare (List.hd a) (List.hd b))
  in
  List.iter
    (fun group ->
      let name (i, _, _) = Printf.sprintf "c%d" i in
      (* exact duplicates *)
      let seen = Hashtbl.create 4 in
      List.iter
        (fun (i, s, r) ->
          match Hashtbl.find_opt seen (s, r) with
          | Some j ->
            emit "M201" Warning (Printf.sprintf "row c%d duplicates row c%d" i j)
          | None -> Hashtbl.add seen (s, r) i)
        group;
      (* same sense, different rhs *)
      List.iter
        (fun sense ->
          let rhss =
            List.filter (fun (_, s, _) -> s = sense) group
            |> List.map (fun (_, _, r) -> r)
            |> List.sort_uniq compare
          in
          if List.length rhss > 1 then
            emit "M202" Warning
              (Printf.sprintf "rows %s share a left-hand side; only the tightest can bind"
                 (String.concat ", "
                    (List.filter (fun (_, s, _) -> s = sense) group |> List.map name))))
        [ Model.Geq; Model.Leq; Model.Eq ];
      (* conflicting constants: >= a with <= b, a > b, or two different = *)
      let lo =
        List.filter_map
          (fun (_, s, r) -> match s with Model.Geq | Model.Eq -> Some r | Model.Leq -> None)
          group
      and hi =
        List.filter_map
          (fun (_, s, r) -> match s with Model.Leq | Model.Eq -> Some r | Model.Geq -> None)
          group
      in
      match (lo, hi) with
      | _ :: _, _ :: _ when List.fold_left max min_int lo > List.fold_left min max_int hi ->
        emit "M104" Error
          (Printf.sprintf "rows %s bound the same expression to an empty interval"
             (String.concat ", " (List.map name group)))
      | _ -> ())
    groups;
  (* Dominated covering rows: unit-coefficient >= rows implied by a subset
     row with an equal-or-larger right-hand side. *)
  let covering =
    Array.to_list (Array.mapi (fun i c -> (i, c)) cs)
    |> List.filter (fun (_, c) -> unit_geq c && c.expr <> [])
  in
  let rows_of_var = Hashtbl.create 64 in
  List.iter
    (fun (i, (c : row)) ->
      List.iter
        (fun (v, _) ->
          let l = try Hashtbl.find rows_of_var v with Not_found -> [] in
          Hashtbl.replace rows_of_var v ((i, c) :: l))
        c.expr)
    covering;
  List.iter
    (fun (i, (c : row)) ->
      let vars_i = List.map fst c.expr in
      let candidates =
        List.concat_map
          (fun v -> try Hashtbl.find rows_of_var v with Not_found -> [])
          vars_i
        |> List.sort_uniq (fun (a, _) (b, _) -> compare a b)
      in
      let dominator =
        List.find_opt
          (fun (j, (c' : row)) ->
            j <> i
            && c'.rhs >= c.rhs
            && List.length c'.expr <= List.length c.expr
            && subset (List.map fst c'.expr) vars_i
            (* break ties between identical supports deterministically *)
            && (List.length c'.expr < List.length c.expr
               || c'.rhs > c.rhs || j < i))
          candidates
      in
      match dominator with
      | Some (j, _) ->
        emit "M203" Warning (Printf.sprintf "row c%d is dominated by row c%d" i j)
      | None -> ())
    covering;
  (* --- whole-model notes ------------------------------------------------- *)
  let s = stats m in
  if s.nnz > 0 && s.max_abs_coeff >= 1_000_000 * max 1 s.min_abs_coeff then
    emit "M301" Note
      (Printf.sprintf "coefficient magnitudes span [%d, %d]; expect conditioning trouble"
         s.min_abs_coeff s.max_abs_coeff);
  let any_obj = ref false in
  for v = 0 to Frozen.num_vars m - 1 do
    if Frozen.objective m v <> 0 then any_obj := true
  done;
  if Frozen.num_vars m > 0 && not !any_obj then
    emit "M302" Note "objective is identically zero; every feasible point is optimal";
  sort_diags (List.rev !diags)
