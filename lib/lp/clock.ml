(* Delegates to the observability layer's monotonized clock so solver
   budgets, reported durations and trace spans share one time source. *)
let now = Obs.Clock.now
let elapsed = Obs.Clock.elapsed
