let now () = Unix.gettimeofday ()
let elapsed t0 = Unix.gettimeofday () -. t0
