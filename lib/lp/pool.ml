(* Chunked self-scheduling over raw domains.

   A pool owns [jobs - 1] spawned domains; the submitter is the remaining
   participant.  A batch is represented as one closure ([participate]) that
   any domain can call: it repeatedly claims the next chunk of task indices
   under the pool mutex, runs them, and writes each result into the slot of
   its index.  Per-batch state (cursor, in-flight count, failure) lives in
   refs captured by that closure, so the pool itself carries no knowledge of
   the tasks' result type.

   Chunked self-scheduling rather than work stealing: tasks here are LP
   solves (micro- to milliseconds), so a single shared cursor under a mutex
   is contended a few thousand times per batch at most, and determinism is
   trivial — results are indexed by task id, never by arrival order.  A
   worker that drew a long chunk late cannot change any result slot, only
   the wall-clock. *)

(* Batch/chunk accounting, dropped unless a trace sink is installed.  Per-
   domain busy time is read off the "pool.chunk" spans of each track in the
   exported trace; queue wait is the gap between consecutive chunk spans. *)
let c_batches = Obs.Counter.create "pool.batches"
let c_chunks = Obs.Counter.create "pool.chunks"
let c_tasks = Obs.Counter.create "pool.tasks"

type batch = { participate : unit -> unit }

type t = {
  mutex : Mutex.t;
  wake : Condition.t;  (* workers: a new batch (or shutdown) is available *)
  finished : Condition.t;  (* submitter: the current batch may be complete *)
  mutable current : batch option;
  mutable generation : int;  (* bumped per submitted batch *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  mutable active : bool;
  njobs : int;
  shutdown_req : bool Atomic.t;
      (* Set by [request_shutdown] — the only pool operation safe from a
         signal handler, where taking [mutex] could self-deadlock.  The
         owner polls it from normal context and calls [shutdown]. *)
}

let default_jobs () = Domain.recommended_domain_count ()

let jobs t = t.njobs

let worker_loop pool =
  let last_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while (not pool.stop) && pool.generation = !last_gen do
      Condition.wait pool.wake pool.mutex
    done;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      last_gen := pool.generation;
      let b = pool.current in
      Mutex.unlock pool.mutex;
      match b with Some b -> b.participate () | None -> ()
    end
  done

let create ?(jobs = 0) () =
  if jobs < 0 then invalid_arg "Pool.create: negative jobs";
  let njobs = if jobs = 0 then default_jobs () else jobs in
  let pool =
    {
      mutex = Mutex.create ();
      wake = Condition.create ();
      finished = Condition.create ();
      current = None;
      generation = 0;
      stop = false;
      workers = [];
      active = true;
      njobs;
      shutdown_req = Atomic.make false;
    }
  in
  pool.workers <- List.init (njobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let run_init ?chunk pool ~init ~tasks f =
  if tasks < 0 then invalid_arg "Pool.run: negative task count";
  if tasks = 0 then [||]
  else if pool.njobs = 1 then begin
    (* The sequential path: no domains, no locks, index order.  The same
       batch/chunk spans and counters as the parallel path (one chunk of
       everything), so telemetry schemas do not depend on the job count. *)
    if not pool.active then invalid_arg "Pool.run: pool is shut down";
    Obs.Counter.incr c_batches;
    Obs.Counter.incr c_chunks;
    Obs.Counter.add c_tasks tasks;
    let span_b = Obs.Trace.begin_ () in
    let st = init () in
    let span_c = Obs.Trace.begin_ () in
    let r = Array.init tasks (fun i -> f st i) in
    if not (Float.is_nan span_c) then
      Obs.Trace.end_ span_c ~args:[ ("tasks", string_of_int tasks) ] "pool.chunk";
    Obs.Trace.end_ span_b "pool.batch";
    r
  end
  else begin
    let chunk =
      match chunk with
      | Some c when c <= 0 -> invalid_arg "Pool.run: non-positive chunk"
      | Some c -> c
      | None -> max 1 (tasks / (pool.njobs * 4))
    in
    let results = Array.make tasks None in
    let next = ref 0 in
    let in_flight = ref 0 in
    let failed = ref None in
    let participate () =
      (* Per-domain batch state: [init] runs at most once, lazily. *)
      let local = ref None in
      let local_init () =
        match !local with
        | Some s -> s
        | None ->
          let s = init () in
          local := Some s;
          s
      in
      let draining = ref true in
      while !draining do
        Mutex.lock pool.mutex;
        if !next >= tasks || !failed <> None then begin
          Mutex.unlock pool.mutex;
          draining := false
        end
        else begin
          let start = !next in
          let stop = min tasks (start + chunk) in
          next := stop;
          incr in_flight;
          Mutex.unlock pool.mutex;
          Obs.Counter.incr c_chunks;
          Obs.Counter.add c_tasks (stop - start);
          let span_c = Obs.Trace.begin_ () in
          (try
             let s = local_init () in
             for i = start to stop - 1 do
               results.(i) <- Some (f s i)
             done
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             Mutex.lock pool.mutex;
             if !failed = None then failed := Some (e, bt);
             Mutex.unlock pool.mutex);
          if not (Float.is_nan span_c) then
            Obs.Trace.end_ span_c ~args:[ ("tasks", string_of_int (stop - start)) ] "pool.chunk";
          Mutex.lock pool.mutex;
          decr in_flight;
          if !in_flight = 0 && (!next >= tasks || !failed <> None) then
            Condition.broadcast pool.finished;
          Mutex.unlock pool.mutex
        end
      done
    in
    Mutex.lock pool.mutex;
    if not pool.active then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool.run: pool is shut down"
    end;
    if pool.current <> None then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool.run: a batch is already running"
    end;
    Obs.Counter.incr c_batches;
    let span_b = Obs.Trace.begin_ () in
    pool.current <- Some { participate };
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.mutex;
    (* The submitter is a participant too. *)
    participate ();
    Mutex.lock pool.mutex;
    while not (!in_flight = 0 && (!next >= tasks || !failed <> None)) do
      Condition.wait pool.finished pool.mutex
    done;
    pool.current <- None;
    Mutex.unlock pool.mutex;
    Obs.Trace.end_ span_b "pool.batch";
    match !failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.map
        (function
          | Some v -> v
          | None -> assert false (* every index was claimed and completed *))
        results
  end

let run ?chunk pool ~tasks f = run_init ?chunk pool ~init:(fun () -> ()) ~tasks (fun () i -> f i)

let request_shutdown pool = Atomic.set pool.shutdown_req true
let shutdown_requested pool = Atomic.get pool.shutdown_req

let shutdown pool =
  Atomic.set pool.shutdown_req true;
  Mutex.lock pool.mutex;
  pool.stop <- true;
  pool.active <- false;
  (* Taking the worker list under the mutex makes repeated and concurrent
     shutdowns safe: exactly one caller joins each worker, later calls see
     an empty list and return after the (idempotent) flag writes. *)
  let workers = pool.workers in
  pool.workers <- [];
  Condition.broadcast pool.wake;
  Mutex.unlock pool.mutex;
  (* Workers finish the batch in flight (participate ignores [stop]) before
     observing the flag and exiting, so joining here is the graceful wait. *)
  List.iter Domain.join workers

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
