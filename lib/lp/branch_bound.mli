(** LP-based branch-and-bound for ILPs and MILPs with binary integer variables.

    This mirrors the mechanism the paper relies on in commercial solvers
    (Section 3.2): the root LP relaxation is solved first, and when its
    optimum is integral on the integer variables the search stops at the root
    — which is exactly what happens, provably, for all the paper's PTIME
    cases.  On hard instances the search branches, and the explored node
    count is the observable "exponential blow-up" of the experiments.

    Only binary integer variables are supported (all programs in this code
    base are of that shape): branching fixes a variable to 0 or to 1 and the
    child LP shrinks accordingly. *)

module Make (F : Numeric.Field.S) : sig
  type status =
    | Optimal  (** Proved optimal. *)
    | Feasible  (** A limit was hit; [objective] is the incumbent's value. *)
    | Infeasible
    | Unbounded
    | Limit_no_solution  (** A limit was hit before any incumbent was found. *)

  type result = {
    status : status;
    objective : F.t option;
    solution : F.t array option;
    nodes : int;  (** LP relaxations solved. *)
    root_objective : F.t option;  (** Root LP relaxation value. *)
    root_integral : bool;
        (** Whether the root LP optimum was already integral on the integer
            variables — the paper's LP=ILP condition observed in practice. *)
    pivots : int;
        (** Simplex pivots spent on this solve, attributed through the warm
            session's lifetime totals (parallel solves include the
            per-domain engines).  0 on the model path of {!solve}, which has
            no warm session to meter. *)
    refactors : int;  (** Basis refactorisations, attributed like [pivots]. *)
  }

  val solve :
    ?node_limit:int -> ?time_limit:float -> ?fixed:(Model.var * int) list -> Model.t -> result
  (** [time_limit] is wall-clock seconds (emulates the paper's ILP(10)
      cutoff). @raise Invalid_argument if an integer variable lacks an
      upper bound of 1. *)

  (** {1 Frozen sessions}

      A session owns one warm-startable dual-simplex session (see
      {!Simplex}) over a frozen program and keeps it across calls:
      branching is delta extension, so within a tree every node after the
      root re-solves from its parent's basis, and across calls each root
      starts from the previous call's final basis — the warm-start chain a
      responsibility batch rides. *)

  type session

  val create_session : ?kernel:Basis.choice -> Frozen.t -> session
  (** [kernel] selects the basis representation of the warm LP session
      ([`Auto] = sparse LU, see {!Basis.choice}); {!solve_session_par}'s
      per-domain sessions inherit it. *)

  val solve_session :
    ?node_limit:int -> ?time_limit:float -> ?delta:Frozen.Delta.t -> session -> result
  (** Branch-and-bound under the delta (the "base" fixes every node of this
      tree respects).  Same contract as {!solve}.  A delta carrying
      row/column appends solves the extended program — the warm LP session
      absorbs the appends (see {!Simplex.session_solve}) and [solution] is
      indexed by extended variable; appended integer columns must be
      binary-compatible (upper bound 1 or none). *)

  val solve_session_par :
    ?node_limit:int ->
    ?time_limit:float ->
    ?delta:Frozen.Delta.t ->
    ?par_depth:int ->
    pool:Pool.t ->
    session ->
    result
  (** {!solve_session} with the two children of every node in the top
      [par_depth] levels (default 3) explored in parallel: the session's own
      engine expands that prefix of the tree, the resulting frontier
      subtrees are drained by the {!Pool} — each participating domain opens
      its own warm-startable session against the {e same} shared frozen
      arrays — and bound updates flow through an atomic incumbent all
      domains prune against.  Node and time budgets are shared across
      domains (one atomic node counter, one deadline), so the contract of
      {!solve_session} is preserved; without budgets the returned status and
      objective are identical to the sequential solve (the optimum is
      unique; the optimal {e point} and node count may differ, since
      pruning order depends on incumbent arrival).  With a 1-domain pool or
      [par_depth = 0] this {e is} [solve_session], bit for bit. *)

  val relax :
    ?delta:Frozen.Delta.t ->
    session ->
    [ `Optimal of F.t * F.t array | `Infeasible | `Unbounded ]
  (** Just the LP relaxation under the delta (one warm-started simplex
      solve; integrality flags ignored). *)

  val solve_frozen :
    ?node_limit:int -> ?time_limit:float -> ?delta:Frozen.Delta.t -> Frozen.t -> result
  (** One-shot convenience: [solve_session] on a fresh session. *)
end
