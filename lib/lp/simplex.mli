(** Revised simplex over an arbitrary ordered field and a pluggable basis
    kernel.

    The same algorithm instantiated at {!Numeric.Field.Float_field} gives the
    production solver, and at {!Numeric.Field.Rat_field} an exact-arithmetic
    oracle used in tests and to certify LP-relaxation integrality claims
    (Theorems 8.6–8.13 of the paper).

    The basis representation lives behind {!Basis.S}: every entry point
    takes [?kernel] selecting {!Basis.Sparse_lu} (the default — sparse LU
    with product-form eta updates, iteration cost tracking nonzeros) or
    {!Basis.Dense} (the reference explicit inverse, kept for differential
    testing and as a fallback).  Both kernels instantiate at either field.

    The solver works on a {!Model.t}: minimize [c'x] subject to the model's
    constraints, [x >= 0] and the per-variable upper bounds (handled as
    explicit rows).  Integrality flags are ignored here — this is the
    relaxation; see {!Branch_bound} for ILP/MILP solving. *)

module Make (F : Numeric.Field.S) : sig
  type outcome =
    | Optimal of { objective : F.t; solution : F.t array }
        (** [solution] is indexed by model variable (fixed variables included
            at their fixed value). *)
    | Infeasible
    | Unbounded

  val solve :
    ?fixed:(Model.var * int) list ->
    ?method_:[ `Auto | `Primal | `Dual ] ->
    ?kernel:Basis.choice ->
    Model.t ->
    outcome
  (** [solve ~fixed m] solves the LP relaxation of [m] with the variables in
      [fixed] substituted by the given constant values (used by
      branch-and-bound to branch binary variables without growing the LP).
      Fixing a variable outside its bounds yields [Infeasible].

      [method_] selects the algorithm: [`Auto] (default) runs the dual
      simplex whenever the model qualifies (no equality rows, non-negative
      objective — true of all of this paper's programs; covering LPs are
      much less degenerate dually) and the two-phase primal otherwise;
      [`Primal] forces the primal; [`Dual] forces the dual where
      applicable.  [kernel] selects the basis representation
      ({!Basis.choice}; [`Auto] = sparse LU). *)

  val integral_on : F.t array -> Model.var list -> bool
  (** Are all listed coordinates integral (within the field tolerance)? *)

  (** {1 Frozen sessions}

      A session compiles a {!Frozen.t} once — sparse columns, native
      per-column bounds (no upper-bound rows), a slack per row with
      equality slacks fixed to zero — and then solves any number of
      {!Frozen.Delta} bound overlays against it with a bounded-variable
      dual simplex.  Because a delta changes only bounds, the basis and
      reduced costs of the previous solve remain dual feasible, so every
      solve after the first warm-starts from the previous optimum instead
      of the all-slack basis. *)

  type session

  val frozen_dual_applicable : Frozen.t -> bool
  (** Does the dual session apply — are all objective coefficients
      non-negative?  (True of every program this code base generates.) *)

  val create_session : ?kernel:Basis.choice -> Frozen.t -> session
  (** The session's basis kernel is fixed at creation ([`Auto] = sparse
      LU; [`Dense] forces the reference inverse, used by the
      [dense_vs_sparse_basis] differential oracle).
      @raise Invalid_argument when {!frozen_dual_applicable} is false. *)

  val session_pivots : session -> int
  (** Lifetime pivot count of the session (never reset).  Callers take
      before/after deltas to attribute simplex work to one solve; unlike
      the global ["simplex.pivots"] counter this is per-session, so the
      attribution survives parallel batches. *)

  val session_refactors : session -> int
  (** Lifetime basis-refactorisation count of the session. *)

  val session_kernel : session -> string
  (** Name of the session's basis kernel (["sparse-lu"] or ["dense"]). *)

  val session_solve : session -> Frozen.Delta.t -> outcome
  (** Solve the frozen program under the delta, warm-starting from
      whatever basis the previous call left behind.  [solution] is indexed
      by frozen variable; never returns [Unbounded] (costs are
      non-negative and variables are bounded below).

      When the delta carries row/column appends ({!Frozen.Delta.append_row},
      {!Frozen.Delta.append_col}), the session absorbs them: the state is
      re-compiled against [Frozen.extend base delta], and if the new
      appends extend the previously absorbed ones the old optimal basis is
      re-seeded with the new rows slack-basic — a dual-feasible warm start,
      because base rows are immutable so appending never changes an
      existing reduced cost.  [solution] is then indexed by extended
      variable.  Deltas should grow appends monotonically (each derived
      from the last via [append_*]); a delta whose appends are not an
      extension of the absorbed ones triggers a cold re-compile.
      @raise Invalid_argument if an appended column has a negative
      objective coefficient. *)

  val solve_frozen : ?delta:Frozen.Delta.t -> ?kernel:Basis.choice -> Frozen.t -> outcome
  (** One-shot convenience: a fresh session when applicable, otherwise the
      general primal path on the thawed model with the delta as fixes. *)
end
