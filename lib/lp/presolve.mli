(** Safe presolve: shrink a model before solving, without ever changing its
    optimum.

    Every reduction applied here is an equivalence, not a relaxation —
    the reduced model's optimal value plus {!obj_offset} equals the original
    model's optimal value, and any reduced optimal point lifts (via {!lift})
    to an original optimal point.  The passes, to a fixpoint:

    - rows whose left-hand side vanishes are checked and dropped (or the
      whole model declared infeasible, e.g. [0 >= 1]);
    - singleton rows become variable bounds where the model's bound language
      ([0 <= x <= u]) can express them — in particular a singleton that
      pins a variable against its bound {e fixes} it ([x >= 1] with
      [x <= 1] fixes [x = 1], the "forced deletion" rows of ILP[RES*]);
    - activity-based bound propagation tightens upper bounds and detects
      statically infeasible rows from the bounds alone;
    - rows satisfied by {e every} point within the bounds are dropped;
    - duplicate and parallel rows collapse to the tightest representative;
    - dominated covering rows (unit-coefficient [>=] rows containing
      another such row with an equal-or-larger right-hand side) are
      dropped — witnesses whose tuple set contains another witness's add
      nothing to ILP[RES*];
    - fixed and empty columns are substituted out;
    - finally, upper bounds that are provably redundant are stripped
      ([strip_bounds], on by default): if a variable has strictly positive
      cost and every row it appears in either loosens when the variable shrinks
      or is satisfiable by the variable at its bound alone (the covering
      cap argument of DESIGN.md §5), every optimum can be truncated under
      the bound, so the bound — a whole extra row in the dual simplex —
      is pure overhead.  For integer variables only binary bounds are
      stripped, preserving {!Branch_bound}'s 0/1 branching.

    The encoders emit one covering row per witness tuple-set; on real
    instances many of those rows are duplicated or dominated after
    exogenous-tuple filtering, which is what makes this a hot-path win
    rather than hygiene. *)

type vmap
(** Witness of the reduction: how original variables map into the reduced
    model, which were fixed at what value, and the objective offset. *)

type summary = {
  rows_removed : int;
  vars_fixed : int;
  bounds_stripped : int;
  passes : int;
}

type result =
  | Infeasible  (** Proven infeasible without solving. *)
  | Unbounded  (** A negative-cost variable with no bound and no row. *)
  | Reduced of Frozen.t * vmap

val presolve : ?strip_bounds:bool -> Frozen.t -> result
(** Consumes and produces the frozen compiled form ({!Frozen.t}); the
    input is never modified (frozen programs are immutable). *)

val orig_nvars : vmap -> int

val var_image : vmap -> Model.var -> [ `Kept of Model.var | `Fixed of int ]
(** Where an original variable went: renumbered into the reduced program,
    or eliminated at a fixed value.  Lets callers translate
    {!Frozen.Delta} overrides built against the original program into the
    reduced one (an override conflicting with a [`Fixed] value means the
    combination is infeasible {e provided} the presolve fix was
    feasibility-forced, as all fixes on covering-family programs are). *)

val obj_offset : vmap -> int
(** Objective contribution of the fixed variables:
    [original optimum = reduced optimum + obj_offset]. *)

val summary : vmap -> summary

val lift : vmap -> of_int:(int -> 'a) -> 'a array -> 'a array
(** [lift vm ~of_int x] maps a reduced-model point (dense over reduced
    variables) back to a dense original-model point: kept variables read
    through, eliminated variables take their fixed value.  Works over any
    solution field — pass [Fun.id]'s field injection (e.g.
    [float_of_int], [Numeric.Rat.of_int]). *)
