(** Immutable compiled form of a {!Model}: the same program, frozen into
    CSR row arrays and CSC column arrays over flat [int] arrays.

    {!Model.t} is the mutable builder the encoders write into; freezing it
    once produces the form every downstream stage — {!Lint}, {!Presolve},
    {!Simplex}, {!Branch_bound} — consumes directly, so no stage re-walks or
    re-normalises association lists.  Rows keep the builder's normal form
    (coefficients sorted by variable, duplicates summed, zeros dropped),
    which row-identity passes (dedup, domination) rely on.

    A frozen program is never mutated.  Cheap per-solve variations — fixing
    a variable for branch-and-bound, pinning the witness indicators of a
    responsibility delta-solve — are expressed as a {!Delta}: a bound
    overlay interpreted by the solvers against the shared matrix, deriving a
    view without copying anything. *)

type t

module Delta : sig
  type t
  (** An overlay on top of a frozen program, in two parts:

      - {e bound overrides}: each entry fixes one variable to a constant
        (lower = upper = value).  Persistent and cheap — branch-and-bound
        extends its node's delta per branch, and a responsibility batch
        replays many deltas against one frozen program.
      - {e appends}: extra columns and extra rows on top of the base
        program, in order.  The incremental resilience service grows its
        covering program this way when tuple inserts create new witnesses;
        warm simplex sessions absorb appends without discarding the basis
        (see {!Simplex.session_solve}).  Appended rows may reference both
        base and appended variables (appended variable [k] has index
        [num_vars base + k]); base rows are never altered, which is what
        keeps the dual warm-start sound. *)

  val empty : t

  val fix : Model.var -> int -> t -> t
  (** [fix v k d] overrides [v] to the constant [k] (replacing any earlier
      override of [v] in [d]).  @raise Invalid_argument if [k < 0]. *)

  val fix_zero : Model.var -> t -> t
  val force_one : Model.var -> t -> t

  val release : Model.var -> t -> t
  (** Removes any override on the variable, restoring its base bounds. *)

  val is_empty : t -> bool
  (** No overrides and no appends. *)

  val find : t -> Model.var -> int option

  val bindings : t -> (Model.var * int) list
  (** One entry per overridden variable, in ascending variable order
      (appends are not included; see {!appended_cols}/{!appended_rows}). *)

  (** {2 Appends} *)

  val append_col : ?integer:bool -> ?upper:int -> name:string -> obj:int -> t -> t
  (** Appends one variable after all existing ones (base and previously
      appended).  [integer] defaults to [false]; omitting [upper] leaves
      the variable unbounded above.  @raise Invalid_argument if [upper] is
      negative. *)

  val append_row : Model.sense -> int -> (Model.var * int) list -> t -> t
  (** Appends one row.  The expression must be in normal form (ascending
      variables, non-zero coefficients) and may reference appended
      variables by their extended index.  @raise Invalid_argument
      otherwise. *)

  val num_appended_cols : t -> int
  val num_appended_rows : t -> int

  val has_appends : t -> bool

  val appended_cols : t -> (string * bool * int option * int) list
  (** [(name, integer, upper, obj)] per appended column, in append order. *)

  val appended_rows : t -> (Model.sense * int * (Model.var * int) list) list
  (** Appended rows in append order. *)

  val clear_appends : t -> t
  (** The same bound overrides with no appends — what a caller passes
      alongside a frozen program it has already {!extend}ed, to avoid
      applying the appends twice. *)

  val same_appends : t -> t -> bool
  (** Do the two deltas carry exactly the same appends (bound overrides
      ignored)?  Constant time when the deltas share structure. *)

  val extends : prefix:t -> t -> bool
  (** Is [prefix]'s append sequence a prefix of the delta's?  (True in
      particular when {!same_appends}.)  Warm sessions use this to absorb
      only the new suffix.  Constant time when the chains share structure,
      which monotone growth through {!append_col}/{!append_row} ensures. *)
end

val of_model : Model.t -> t
(** Compiles the builder's current contents; later mutation of the builder
    does not affect the frozen copy. *)

val to_model : t -> Model.t
(** Thaws back into a fresh builder (used by fallback solver paths that
    still want the mutable interface).  Round-trips exactly. *)

val make :
  names:string array ->
  integer:bool array ->
  upper:int option array ->
  obj:int array ->
  rows:(Model.sense * int * (Model.var * int) list) array ->
  t
(** Directly materialises a frozen program from per-variable arrays and
    normalised rows [(sense, rhs, expr)] — {!Presolve} uses this to emit
    reduced programs without round-tripping through the mutable builder.
    Every row's [expr] must be sorted by variable with non-zero
    coefficients and no duplicates. @raise Invalid_argument otherwise, or
    if the per-variable arrays disagree in length. *)

val extend : t -> Delta.t -> t
(** The base program with the delta's appended columns and rows
    materialised (bound overrides are {e not} applied — pass them to the
    solver as usual).  Returns the program unchanged when the delta has no
    appends.  The result is a fresh frozen program sharing no arrays with
    the base; appended variables keep their extended indices. *)

(** {1 Shape} *)

val num_vars : t -> int
val num_rows : t -> int
val nnz : t -> int

(** {1 Per-variable data} *)

val objective : t -> Model.var -> int
val upper : t -> Model.var -> int option
val is_integer : t -> Model.var -> bool
val var_name : t -> Model.var -> string
val integer_vars : t -> Model.var list

(** {1 Rows (CSR)} *)

val row_sense : t -> int -> Model.sense
val row_rhs : t -> int -> int
val row_size : t -> int -> int
val iter_row : t -> int -> (Model.var -> int -> unit) -> unit
(** [iter_row t i f] calls [f v c] for every entry of row [i], in
    ascending variable order. *)

val row_expr : t -> int -> (Model.var * int) list
(** The row as a normalised association list (allocates). *)

(** {1 Columns (CSC)} *)

val col_size : t -> Model.var -> int
val iter_col : t -> Model.var -> (int -> int -> unit) -> unit
(** [iter_col t v f] calls [f i c] for every row [i] containing [v], in
    ascending row order. *)

(** {1 Evaluation} *)

val check_feasible : ?eps:float -> ?delta:Delta.t -> t -> float array -> bool
(** Do all rows, base bounds and delta overrides hold at the point (within
    [eps], default [1e-6])?  Integrality flags are not checked.  When the
    delta carries appends, [t] must be the {e un-extended} base program —
    the appends are materialised internally via {!extend} and [x] must be
    indexed by extended variable. *)
