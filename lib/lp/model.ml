type var = int
type sense = Geq | Leq | Eq
type linexpr = (var * int) list
type constr = { expr : linexpr; sense : sense; rhs : int }

type var_info = { name : string; integer : bool; upper : int option; obj : int }

type t = {
  mutable vars : var_info array;
  mutable nvars : int;
  mutable constrs : constr array;
  mutable nconstrs : int;
}

let create () = { vars = [||]; nvars = 0; constrs = [||]; nconstrs = 0 }

let grow_vars t =
  let cap = Array.length t.vars in
  if t.nvars >= cap then begin
    let fresh = Array.make (max 8 (2 * cap)) { name = ""; integer = false; upper = None; obj = 0 } in
    Array.blit t.vars 0 fresh 0 t.nvars;
    t.vars <- fresh
  end

let grow_constrs t =
  let cap = Array.length t.constrs in
  if t.nconstrs >= cap then begin
    let fresh = Array.make (max 8 (2 * cap)) { expr = []; sense = Geq; rhs = 0 } in
    Array.blit t.constrs 0 fresh 0 t.nconstrs;
    t.constrs <- fresh
  end

let add_var ?name ?(integer = false) ?upper ?(obj = 0) t =
  (match upper with
  | Some u when u < 0 -> invalid_arg "Model.add_var: negative upper bound"
  | _ -> ());
  if integer && upper = None then
    invalid_arg "Model.add_var: integer variable requires an upper bound";
  grow_vars t;
  let v = t.nvars in
  let name = match name with Some n -> n | None -> Printf.sprintf "x%d" v in
  t.vars.(t.nvars) <- { name; integer; upper; obj };
  t.nvars <- t.nvars + 1;
  v

let relax_upper t v = t.vars.(v) <- { (t.vars.(v)) with upper = None }

(* Sum duplicate variable occurrences so the simplex sees one coefficient
   per column. *)
let normalize_expr expr =
  let tbl = Hashtbl.create (List.length expr) in
  List.iter
    (fun (v, c) ->
      let cur = try Hashtbl.find tbl v with Not_found -> 0 in
      Hashtbl.replace tbl v (cur + c))
    expr;
  Hashtbl.fold (fun v c acc -> if c = 0 then acc else (v, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let add_constr t expr sense rhs =
  grow_constrs t;
  List.iter
    (fun (v, _) ->
      if v < 0 || v >= t.nvars then invalid_arg "Model.add_constr: unknown variable")
    expr;
  t.constrs.(t.nconstrs) <- { expr = normalize_expr expr; sense; rhs };
  t.nconstrs <- t.nconstrs + 1

let num_vars t = t.nvars
let num_constrs t = t.nconstrs
let constraints t = Array.sub t.constrs 0 t.nconstrs
let objective t v = t.vars.(v).obj
let is_integer t v = t.vars.(v).integer
let upper t v = t.vars.(v).upper
let var_name t v = t.vars.(v).name

let integer_vars t =
  let rec go v acc = if v < 0 then acc else go (v - 1) (if t.vars.(v).integer then v :: acc else acc) in
  go (t.nvars - 1) []

let eval_expr expr x = List.fold_left (fun acc (v, c) -> acc +. (float_of_int c *. x.(v))) 0.0 expr

let check_feasible ?(eps = 1e-6) t x =
  let ok = ref true in
  for i = 0 to t.nconstrs - 1 do
    let { expr; sense; rhs } = t.constrs.(i) in
    let lhs = eval_expr expr x in
    let frhs = float_of_int rhs in
    let sat =
      match sense with
      | Geq -> lhs >= frhs -. eps
      | Leq -> lhs <= frhs +. eps
      | Eq -> Float.abs (lhs -. frhs) <= eps
    in
    if not sat then ok := false
  done;
  for v = 0 to t.nvars - 1 do
    if x.(v) < -.eps then ok := false;
    match t.vars.(v).upper with
    | Some u -> if x.(v) > float_of_int u +. eps then ok := false
    | None -> ()
  done;
  !ok

let pp fmt t =
  let pp_expr fmt expr =
    let first = ref true in
    List.iter
      (fun (v, c) ->
        if c <> 0 then begin
          if !first then begin
            if c < 0 then Format.fprintf fmt "- ";
            first := false
          end
          else Format.fprintf fmt " %s " (if c < 0 then "-" else "+");
          let a = abs c in
          if a = 1 then Format.fprintf fmt "%s" t.vars.(v).name
          else Format.fprintf fmt "%d %s" a t.vars.(v).name
        end)
      expr;
    if !first then Format.fprintf fmt "0"
  in
  Format.fprintf fmt "minimize@.  ";
  let obj = List.init t.nvars (fun v -> (v, t.vars.(v).obj)) in
  pp_expr fmt (List.filter (fun (_, c) -> c <> 0) obj);
  Format.fprintf fmt "@.subject to@.";
  for i = 0 to t.nconstrs - 1 do
    let { expr; sense; rhs } = t.constrs.(i) in
    let s = match sense with Geq -> ">=" | Leq -> "<=" | Eq -> "=" in
    Format.fprintf fmt "  c%d: %a %s %d@." i pp_expr expr s rhs
  done;
  Format.fprintf fmt "bounds@.";
  for v = 0 to t.nvars - 1 do
    match t.vars.(v).upper with
    | Some u -> Format.fprintf fmt "  0 <= %s <= %d@." t.vars.(v).name u
    | None -> ()
  done;
  let ints = integer_vars t in
  if ints <> [] then begin
    Format.fprintf fmt "integer@.  ";
    List.iter (fun v -> Format.fprintf fmt "%s " t.vars.(v).name) ints;
    Format.fprintf fmt "@."
  end

(* CPLEX LP file format: Minimize / Subject To / Bounds / Generals|Binaries /
   End.  Variable names are sanitised to the format's identifier rules. *)
let to_lp_format t =
  let buf = Buffer.create 4096 in
  let sanitize name =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> c
        | _ -> '_')
      name
  in
  let vname v = sanitize (var_name t v) in
  let add_expr expr =
    let first = ref true in
    List.iter
      (fun (v, c) ->
        if c <> 0 then begin
          if !first then begin
            if c < 0 then Buffer.add_string buf "- ";
            first := false
          end
          else Buffer.add_string buf (if c < 0 then " - " else " + ");
          let a = abs c in
          if a <> 1 then Buffer.add_string buf (string_of_int a ^ " ");
          Buffer.add_string buf (vname v)
        end)
      expr;
    if !first then Buffer.add_string buf "0"
  in
  Buffer.add_string buf "Minimize\n obj: ";
  add_expr
    (List.init t.nvars (fun v -> (v, t.vars.(v).obj)) |> List.filter (fun (_, c) -> c <> 0));
  Buffer.add_string buf "\nSubject To\n";
  for i = 0 to t.nconstrs - 1 do
    let { expr; sense; rhs } = t.constrs.(i) in
    Buffer.add_string buf (Printf.sprintf " c%d: " i);
    add_expr expr;
    Buffer.add_string buf
      (match sense with Geq -> " >= " | Leq -> " <= " | Eq -> " = ");
    Buffer.add_string buf (string_of_int rhs);
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "Bounds\n";
  for v = 0 to t.nvars - 1 do
    match t.vars.(v).upper with
    | Some u -> Buffer.add_string buf (Printf.sprintf " 0 <= %s <= %d\n" (vname v) u)
    | None -> Buffer.add_string buf (Printf.sprintf " %s >= 0\n" (vname v))
  done;
  let ints = integer_vars t in
  if ints <> [] then begin
    (* All integer variables here are binary; declaring them General with
       their bounds is equivalent and round-trips better. *)
    Buffer.add_string buf "Generals\n";
    List.iter (fun v -> Buffer.add_string buf (" " ^ vname v ^ "\n")) ints
  end;
  Buffer.add_string buf "End\n";
  Buffer.contents buf

let write_lp_file t path =
  let oc = open_out path in
  output_string oc (to_lp_format t);
  close_out oc
