(* Static structure analysis with machine-checkable integrality certificates.
   See struct.mli for the contract.

   Layout of this file:
   - the delta view: the matrix the certificate actually speaks about;
   - feature extraction;
   - structural recognizers (Heller-Tompkins both orientations,
     consecutive-ones block refinement, Ghouila-Houri enumeration), each
     producing a witness in the public encoding;
   - the root-LP probe;
   - [verify], written against the witness encodings only — it shares the
     view construction with the recognizers but none of their search code;
   - [analyze], which chains recognizers cheapest-first and re-checks every
     candidate certificate through [verify] before emitting it, so a
     recognizer bug costs a certificate, never soundness. *)

let c_analyses = Obs.Counter.create "struct.analyses"
let c_integral = Obs.Counter.create "struct.integral"
let c_structural = Obs.Counter.create "struct.integral_structural"
let c_fractional = Obs.Counter.create "struct.fractional"
let c_unknown = Obs.Counter.create "struct.unknown"

type features = {
  rows : int;
  cols : int;
  nnz : int;
  unit_coeffs : bool;
  zero_one : bool;
  neg_entries : int;
  max_col_nnz : int;
  max_row_nnz : int;
  avg_col_nnz : float;
  geq_rows : int;
  leq_rows : int;
  eq_rows : int;
  root_lp : float option;
  root_fractional : int option;
}

type witness =
  | Row_partition of bool array
  | Col_partition of bool array
  | Consecutive_rows of int array
  | Consecutive_cols of int array
  | Ghouila_houri of int array
  | Root_vertex of float array

type verdict = Integral of witness | Fractional of float array | Unknown

type t = { verdict : verdict; features : features }

(* --- The delta view --------------------------------------------------------- *)

(* Fixing a variable folds its column into the right-hand side: the residual
   polytope lives on the free columns, over the rows that still mention one.
   Rows reduced to constants are a feasibility question for the solver, not a
   structure question — an empty or infeasible polytope is trivially integral
   either way.  View rows keep ascending frozen order; Ghouila-Houri
   witnesses index rows by that order. *)
type view = {
  vrows : (int * (Model.var * int) list) array;
      (* (frozen row, entries over free variables), ascending frozen row. *)
}

let view_of ?delta fz =
  let n = Frozen.num_vars fz in
  let free = Array.make n true in
  (match delta with
  | None -> ()
  | Some d -> List.iter (fun (v, _) -> free.(v) <- false) (Frozen.Delta.bindings d));
  let rows = ref [] in
  for i = Frozen.num_rows fz - 1 downto 0 do
    match List.filter (fun (v, _) -> free.(v)) (Frozen.row_expr fz i) with
    | [] -> ()
    | entries -> rows := (i, entries) :: !rows
  done;
  { vrows = Array.of_list !rows }

(* Column supports over the view: for every free variable with an entry, the
   list of (view row index, coefficient), ascending. *)
let view_cols view nvars =
  let cols = Array.make nvars [] in
  Array.iteri
    (fun vi (_, entries) ->
      List.iter (fun (v, c) -> cols.(v) <- (vi, c) :: cols.(v)) entries)
    view.vrows;
  Array.map List.rev cols

let view_unit view = Array.for_all (fun (_, e) -> List.for_all (fun (_, c) -> abs c = 1) e) view.vrows
let view_zero_one view = Array.for_all (fun (_, e) -> List.for_all (fun (_, c) -> c = 1) e) view.vrows

(* --- Features --------------------------------------------------------------- *)

let features_of fz view =
  let nvars = Frozen.num_vars fz in
  let cols = view_cols view nvars in
  let nnz = ref 0 and neg = ref 0 and max_row = ref 0 in
  let geq = ref 0 and leq = ref 0 and eq = ref 0 in
  Array.iter
    (fun (i, entries) ->
      let k = List.length entries in
      nnz := !nnz + k;
      max_row := max !max_row k;
      List.iter (fun (_, c) -> if c < 0 then incr neg) entries;
      match Frozen.row_sense fz i with
      | Model.Geq -> incr geq
      | Model.Leq -> incr leq
      | Model.Eq -> incr eq)
    view.vrows;
  let ncols = ref 0 and max_col = ref 0 in
  Array.iter
    (fun col ->
      match List.length col with
      | 0 -> ()
      | k ->
          incr ncols;
          max_col := max !max_col k)
    cols;
  {
    rows = Array.length view.vrows;
    cols = !ncols;
    nnz = !nnz;
    unit_coeffs = view_unit view;
    zero_one = view_zero_one view;
    neg_entries = !neg;
    max_col_nnz = !max_col;
    max_row_nnz = !max_row;
    avg_col_nnz = (if !ncols = 0 then 0. else float_of_int !nnz /. float_of_int !ncols);
    geq_rows = !geq;
    leq_rows = !leq;
    eq_rows = !eq;
    root_lp = None;
    root_fractional = None;
  }

(* --- Heller-Tompkins bipartitions ------------------------------------------- *)

(* 2-colour items under parity constraints: [edges] lists
   (a, b, same_part) over items [0..n-1].  Components not mentioned keep
   colour [false].  Plain BFS; [None] on an odd constraint cycle. *)
let two_colour n edges =
  let adj = Array.make n [] in
  List.iter
    (fun (a, b, same) ->
      adj.(a) <- (b, same) :: adj.(a);
      adj.(b) <- (a, same) :: adj.(b))
    edges;
  let colour = Array.make n (-1) in
  let ok = ref true in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    if !ok && colour.(s) < 0 then begin
      colour.(s) <- 0;
      Queue.add s queue;
      while !ok && not (Queue.is_empty queue) do
        let a = Queue.pop queue in
        List.iter
          (fun (b, same) ->
            let want = if same then colour.(a) else 1 - colour.(a) in
            if colour.(b) < 0 then begin
              colour.(b) <- want;
              Queue.add b queue
            end
            else if colour.(b) <> want then ok := false)
          adj.(a)
      done
    end
  done;
  if !ok then Some (Array.map (fun c -> c = 1) colour) else None

(* Heller-Tompkins: a 0/±1 matrix with at most two nonzeros per column is TU
   iff the rows split into two parts with every same-sign column straddling
   the parts and every opposite-sign column inside one — single-entry
   columns are free.  Covers bipartite incidence (parts = the two vertex
   classes) and network matrices (flip one part's rows to get a digraph
   incidence matrix). *)
let row_partition fz view =
  let nrows = Frozen.num_rows fz in
  let cols = view_cols view (Frozen.num_vars fz) in
  if not (view_unit view) then None
  else if Array.exists (fun col -> List.length col > 2) cols then None
  else begin
    let edges = ref [] in
    Array.iter
      (fun col ->
        match col with
        | [ (r1, c1); (r2, c2) ] -> edges := (r1, r2, c1 * c2 < 0) :: !edges
        | _ -> ())
      cols;
    match two_colour (Array.length view.vrows) !edges with
    | None -> None
    | Some colour ->
        let part = Array.make nrows false in
        Array.iteri (fun vi (i, _) -> part.(i) <- colour.(vi)) view.vrows;
        Some (Row_partition part)
  end

(* The transpose condition: at most two nonzeros per row, columns
   2-coloured. *)
let col_partition fz view =
  let nvars = Frozen.num_vars fz in
  if not (view_unit view) then None
  else if Array.exists (fun (_, e) -> List.length e > 2) view.vrows then None
  else begin
    let edges = ref [] in
    Array.iter
      (fun (_, entries) ->
        match entries with
        | [ (v1, c1); (v2, c2) ] -> edges := (v1, v2, c1 * c2 < 0) :: !edges
        | _ -> ())
      view.vrows;
    match two_colour nvars !edges with
    | None -> None
    | Some part -> Some (Col_partition part)
  end

(* --- Consecutive-ones orderings --------------------------------------------- *)

(* Is every set contiguous under [order] (a permutation of 0..n-1)? *)
let contiguous n order sets =
  let rank = Array.make n (-1) in
  List.iteri (fun pos i -> rank.(i) <- pos) order;
  List.for_all
    (fun s ->
      match s with
      | [] | [ _ ] -> true
      | _ ->
          let lo = List.fold_left (fun a i -> min a rank.(i)) max_int s in
          let hi = List.fold_left (fun a i -> max a rank.(i)) (-1) s in
          hi - lo + 1 = List.length s)
    sets

(* Greedy block partition refinement: start from one block of all items and
   refine by each set, largest first.  A set must touch a contiguous run of
   blocks with the interior fully contained; the endpoints split with their
   inside part toward the run.  A set inside a single block is the one
   genuinely ambiguous placement — [left_bias] decides it, and [analyze]
   tries both.  Incomplete (a PQ-tree would also reorder and reverse
   blocks); every result is re-checked with [contiguous] before use. *)
let c1p_refine ~left_bias n sets =
  let mem = Array.make n false in
  let sets =
    List.sort (fun a b -> compare (List.length b) (List.length a)) sets
    |> List.filter (fun s -> List.length s > 1)
  in
  let step blocks s =
    List.iter (fun i -> mem.(i) <- true) s;
    let touched = List.exists (fun i -> mem.(i)) in
    let parts = List.partition (fun i -> mem.(i)) in
    let rec before acc = function
      | b :: rest when not (touched b) -> before (b :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let prefix, rest = before [] blocks in
    let rec run acc = function
      | b :: rest when touched b -> run (b :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let run, suffix = run [] rest in
    let result =
      if List.exists touched suffix then None
      else
        match run with
        | [] -> None
        | [ b ] ->
            let ins, outs = parts b in
            if outs = [] then Some (prefix @ (b :: suffix))
            else
              let pieces = if left_bias then [ ins; outs ] else [ outs; ins ] in
              Some (prefix @ pieces @ suffix)
        | first :: rest ->
            let rrest = List.rev rest in
            let last = List.hd rrest and middle = List.rev (List.tl rrest) in
            if List.exists (fun b -> snd (parts b) <> []) middle then None
            else
              let fin, fout = parts first and lin, lout = parts last in
              let head = if fout = [] then [ first ] else [ fout; fin ] in
              let tail = if lout = [] then [ last ] else [ lin; lout ] in
              Some (prefix @ head @ middle @ tail @ suffix)
    in
    List.iter (fun i -> mem.(i) <- false) s;
    result
  in
  let rec go blocks = function
    | [] -> Some (List.concat blocks)
    | s :: rest -> ( match step blocks s with None -> None | Some blocks -> go blocks rest)
  in
  go [ List.init n Fun.id ] sets

(* First ordering of 0..n-1 making every set contiguous, among: identity and
   both refinement biases. *)
let c1p_order n sets =
  let candidates =
    List.init n Fun.id
    :: List.filter_map Fun.id [ c1p_refine ~left_bias:false n sets; c1p_refine ~left_bias:true n sets ]
  in
  List.find_opt (fun order -> contiguous n order sets) candidates

(* Interval matrix: 0/1 entries, rows orderable so every column's support is
   contiguous.  The witness is a permutation of all frozen rows (non-view
   rows appended — verify ranks view rows only, so their position is
   immaterial). *)
let consecutive_rows fz view =
  if not (view_zero_one view) then None
  else begin
    let nview = Array.length view.vrows in
    let cols = view_cols view (Frozen.num_vars fz) in
    let sets = Array.to_list cols |> List.filter_map (function [] -> None | col -> Some (List.map fst col)) in
    match c1p_order nview sets with
    | None -> None
    | Some order ->
        let in_view = Array.make (Frozen.num_rows fz) false in
        Array.iter (fun (i, _) -> in_view.(i) <- true) view.vrows;
        let rest = ref [] in
        for i = Frozen.num_rows fz - 1 downto 0 do
          if not in_view.(i) then rest := i :: !rest
        done;
        let perm = List.map (fun vi -> fst view.vrows.(vi)) order @ !rest in
        Some (Consecutive_rows (Array.of_list perm))
  end

(* The transpose: columns orderable so every row's support is contiguous.
   Witness is a permutation of all variables. *)
let consecutive_cols fz view =
  if not (view_zero_one view) then None
  else begin
    let nvars = Frozen.num_vars fz in
    let cols = view_cols view nvars in
    let used = ref [] in
    for v = nvars - 1 downto 0 do
      if cols.(v) <> [] then used := v :: !used
    done;
    let used = Array.of_list !used in
    let compact = Array.make nvars (-1) in
    Array.iteri (fun k v -> compact.(v) <- k) used;
    let sets =
      Array.to_list view.vrows |> List.map (fun (_, entries) -> List.map (fun (v, _) -> compact.(v)) entries)
    in
    match c1p_order (Array.length used) sets with
    | None -> None
    | Some order ->
        let unused = ref [] in
        for v = nvars - 1 downto 0 do
          if cols.(v) = [] then unused := v :: !unused
        done;
        let perm = List.map (fun k -> used.(k)) order @ !unused in
        Some (Consecutive_cols (Array.of_list perm))
  end

(* --- Ghouila-Houri ----------------------------------------------------------- *)

(* Exact characterisation, brute-forced: A is TU iff every non-empty row
   subset admits a ±1 signing with all column sums in {-1,0,1} (singleton
   subsets force 0/±1 entries, so no separate unit check is needed).
   Negating a signing preserves the sums, so the lowest row of each subset
   is pinned positive — 2^(k-1) candidates per k-subset.  Only attempted on
   views of at most [max_rows] rows. *)
let gh_signing_ok sums touched =
  let ok = List.for_all (fun v -> abs sums.(v) <= 1) touched in
  List.iter (fun v -> sums.(v) <- 0) touched;
  ok

let ghouila_houri fz view ~max_rows =
  let m = Array.length view.vrows in
  if m > max_rows || m > 20 then None
  else begin
    let sums = Array.make (Frozen.num_vars fz) 0 in
    let signings = Array.make ((1 lsl m) - 1) 0 in
    let complete = ref true in
    let mask = ref 1 in
    while !complete && !mask <= (1 lsl m) - 1 do
      let rows = List.filter (fun i -> !mask land (1 lsl i) <> 0) (List.init m Fun.id) in
      let first = List.hd rows and rest = List.tl rows in
      let k = List.length rest in
      let found = ref (-1) in
      let p = ref 0 in
      while !found < 0 && !p < 1 lsl k do
        let pos = ref (1 lsl first) in
        List.iteri (fun j r -> if !p land (1 lsl j) <> 0 then pos := !pos lor (1 lsl r)) rest;
        let touched = ref [] in
        List.iter
          (fun r ->
            let s = if !pos land (1 lsl r) <> 0 then 1 else -1 in
            List.iter
              (fun (v, c) ->
                if sums.(v) = 0 then touched := v :: !touched;
                sums.(v) <- sums.(v) + (s * c))
              (snd view.vrows.(r)))
          rows;
        if gh_signing_ok sums !touched then found := !pos;
        incr p
      done;
      if !found < 0 then complete := false else signings.(!mask - 1) <- !found;
      incr mask
    done;
    if !complete then Some (Ghouila_houri signings) else None
  end

(* --- Root-LP probe ----------------------------------------------------------- *)

let fractional_on ~eps x vars =
  List.filter (fun v -> Float.abs (x.(v) -. Float.round x.(v)) > eps) vars

let probe_root_lp ?delta ~eps fz =
  let session = Solvers.Float_bb.create_session fz in
  match Solvers.Float_bb.relax ?delta session with
  | `Optimal (obj, x) -> Some (obj, x, List.length (fractional_on ~eps x (Frozen.integer_vars fz)))
  | `Infeasible | `Unbounded -> None

(* --- Verification ------------------------------------------------------------ *)

let is_permutation n order =
  Array.length order = n
  &&
  let seen = Array.make n false in
  Array.for_all (fun i -> i >= 0 && i < n && not seen.(i) && (seen.(i) <- true; true)) order

(* Ranks of view items within a full-permutation witness: view item [k] gets
   the position of its frozen id among view ids in [order]. *)
let view_ranks order vids =
  let rank = Array.make (Array.length vids) (-1) in
  let pos_of = Hashtbl.create 16 in
  Array.iteri (fun k id -> Hashtbl.replace pos_of id k) vids;
  let next = ref 0 in
  Array.iter
    (fun id ->
      match Hashtbl.find_opt pos_of id with
      | Some k ->
          rank.(k) <- !next;
          incr next
      | None -> ())
    order;
  if Array.exists (fun r -> r < 0) rank then None else Some rank

let ranked_contiguous rank sets =
  List.for_all
    (fun s ->
      match s with
      | [] | [ _ ] -> true
      | _ ->
          let lo = List.fold_left (fun a i -> min a rank.(i)) max_int s in
          let hi = List.fold_left (fun a i -> max a rank.(i)) (-1) s in
          hi - lo + 1 = List.length s)
    sets

let verify_witness fz view w =
  let nrows = Frozen.num_rows fz and nvars = Frozen.num_vars fz in
  let cols () = view_cols view nvars in
  match w with
  | Row_partition part ->
      Array.length part = nrows && view_unit view
      && Array.for_all
           (fun col ->
             match col with
             | [] | [ _ ] -> true
             | [ (r1, c1); (r2, c2) ] ->
                 let p1 = part.(fst view.vrows.(r1)) and p2 = part.(fst view.vrows.(r2)) in
                 if c1 * c2 > 0 then p1 <> p2 else p1 = p2
             | _ -> false)
           (cols ())
  | Col_partition part ->
      Array.length part = nvars && view_unit view
      && Array.for_all
           (fun (_, entries) ->
             match entries with
             | [] | [ _ ] -> true
             | [ (v1, c1); (v2, c2) ] -> if c1 * c2 > 0 then part.(v1) <> part.(v2) else part.(v1) = part.(v2)
             | _ -> false)
           view.vrows
  | Consecutive_rows order -> (
      is_permutation nrows order && view_zero_one view
      &&
      match view_ranks order (Array.map fst view.vrows) with
      | None -> false
      | Some rank ->
          let sets =
            Array.to_list (cols ()) |> List.filter_map (function [] -> None | col -> Some (List.map fst col))
          in
          ranked_contiguous rank sets)
  | Consecutive_cols order -> (
      is_permutation nvars order && view_zero_one view
      &&
      let used = ref [] in
      let cols = cols () in
      for v = nvars - 1 downto 0 do
        if cols.(v) <> [] then used := v :: !used
      done;
      let used = Array.of_list !used in
      match view_ranks order used with
      | None -> false
      | Some rank ->
          let compact = Array.make nvars (-1) in
          Array.iteri (fun k v -> compact.(v) <- k) used;
          let sets =
            Array.to_list view.vrows |> List.map (fun (_, e) -> List.map (fun (v, _) -> compact.(v)) e)
          in
          ranked_contiguous rank sets)
  | Ghouila_houri signings ->
      let m = Array.length view.vrows in
      m <= 20
      && Array.length signings = (1 lsl m) - 1
      &&
      let sums = Array.make nvars 0 in
      let ok = ref true in
      for mask = 1 to (1 lsl m) - 1 do
        if !ok then begin
          let pos = signings.(mask - 1) in
          if pos land lnot mask <> 0 then ok := false
          else begin
            let touched = ref [] in
            for r = 0 to m - 1 do
              if mask land (1 lsl r) <> 0 then
                let s = if pos land (1 lsl r) <> 0 then 1 else -1 in
                List.iter
                  (fun (v, c) ->
                    if sums.(v) = 0 then touched := v :: !touched;
                    sums.(v) <- sums.(v) + (s * c))
                  (snd view.vrows.(r))
            done;
            if not (gh_signing_ok sums !touched) then ok := false
          end
        end
      done;
      !ok
  | Root_vertex _ -> false (* handled by [verify], which knows the delta *)

(* A Ghouila-Houri family indexes the rows of the view it was built on, so
   under a different delta the row count no longer matches.  The base
   (delta-free) view's matrix is a supermatrix of every delta view's, and
   total unimodularity is closed under taking submatrices — so a family
   certifying the base view certifies the delta view too. *)
let verify_gh_with_base ?delta fz view w =
  verify_witness fz view w
  ||
  match (w, delta) with
  | Ghouila_houri signings, Some _ ->
      let base = view_of fz in
      Array.length signings = (1 lsl Array.length base.vrows) - 1 && verify_witness fz base w
  | _ -> false

let verify ?delta ?(eps = 1e-6) fz t =
  match t.verdict with
  | Unknown -> true
  | Fractional x ->
      Array.length x = Frozen.num_vars fz
      && Frozen.check_feasible ~eps ?delta fz x
      && fractional_on ~eps x (Frozen.integer_vars fz) <> []
  | Integral (Root_vertex x) ->
      Array.length x = Frozen.num_vars fz
      && Frozen.check_feasible ~eps ?delta fz x
      && fractional_on ~eps x (Frozen.integer_vars fz) = []
  | Integral w -> verify_gh_with_base ?delta fz (view_of ?delta fz) w

(* --- Analysis ---------------------------------------------------------------- *)

let structural_witness w =
  match w with
  | Row_partition _ | Col_partition _ | Consecutive_rows _ | Consecutive_cols _ | Ghouila_houri _ -> true
  | Root_vertex _ -> false

let analyze ?delta ?(gh_max_rows = 8) ?(probe_root = false) fz =
  Obs.Counter.incr c_analyses;
  let view = view_of ?delta fz in
  let features = features_of fz view in
  let recognizers =
    [ row_partition; col_partition; consecutive_rows; consecutive_cols; ghouila_houri ~max_rows:gh_max_rows ]
  in
  let structural =
    List.fold_left
      (fun acc recognize ->
        match acc with
        | Some _ -> acc
        | None -> (
            match recognize fz view with
            | Some w when verify_witness fz view w -> Some w
            | Some _ | None -> None))
      None recognizers
  in
  let t =
    match structural with
    | Some w -> { verdict = Integral w; features }
    | None when probe_root -> (
        match probe_root_lp ?delta ~eps:1e-6 fz with
        | Some (obj, x, frac) ->
            let features = { features with root_lp = Some obj; root_fractional = Some frac } in
            if frac = 0 then { verdict = Integral (Root_vertex x); features }
            else { verdict = Fractional x; features }
        | None -> { verdict = Unknown; features })
    | None -> { verdict = Unknown; features }
  in
  (* Defensive: never emit a certificate verify would reject. *)
  let t =
    match t.verdict with
    | Unknown -> t
    | _ -> if verify ?delta fz t then t else { t with verdict = Unknown }
  in
  (match t.verdict with
  | Integral w ->
      Obs.Counter.incr c_integral;
      if structural_witness w then Obs.Counter.incr c_structural
  | Fractional _ -> Obs.Counter.incr c_fractional
  | Unknown -> Obs.Counter.incr c_unknown);
  t

let is_integral t = match t.verdict with Integral _ -> true | Fractional _ | Unknown -> false

let structural t = match t.verdict with Integral w -> structural_witness w | Fractional _ | Unknown -> false

let witness_name = function
  | Row_partition _ -> "row-partition"
  | Col_partition _ -> "col-partition"
  | Consecutive_rows _ -> "consecutive-rows"
  | Consecutive_cols _ -> "consecutive-cols"
  | Ghouila_houri _ -> "ghouila-houri"
  | Root_vertex _ -> "root-vertex"

let verdict_name t =
  match t.verdict with Integral _ -> "integral" | Fractional _ -> "fractional" | Unknown -> "unknown"

let describe t =
  match t.verdict with
  | Integral (Root_vertex _) -> "integral (root-LP vertex, this objective only)"
  | Integral w -> Printf.sprintf "integral (%s witness, totally unimodular)" (witness_name w)
  | Fractional _ -> "fractional root-LP vertex"
  | Unknown -> "unknown (no certificate)"
