type summary = {
  rows_removed : int;
  vars_fixed : int;
  bounds_stripped : int;
  passes : int;
}

type vmap = {
  orig_nvars : int;
  new_of_orig : int array;  (* -1 = eliminated *)
  fixed_value : int array;  (* value of eliminated variables *)
  obj_offset : int;
  summary : summary;
}

type result = Infeasible | Unbounded | Reduced of Frozen.t * vmap

let orig_nvars vm = vm.orig_nvars
let obj_offset vm = vm.obj_offset
let summary vm = vm.summary

let var_image vm v =
  let j = vm.new_of_orig.(v) in
  if j >= 0 then `Kept j else `Fixed vm.fixed_value.(v)

let lift vm ~of_int x =
  Array.init vm.orig_nvars (fun v ->
      let j = vm.new_of_orig.(v) in
      if j >= 0 then x.(j) else of_int vm.fixed_value.(v))

(* Integer division rounding towards -inf / +inf; [b > 0]. *)
let floor_div a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)
let ceil_div a b = if a >= 0 then (a + b - 1) / b else -(-a / b)

type row = { expr : (int * int) list; sense : Model.sense; rhs : int }

exception Found_infeasible
exception Found_unbounded

(* Per-rule reduction counters (dropped unless a trace sink is installed);
   aggregate totals mirror the per-model {!summary}. *)
let c_passes = Obs.Counter.create "presolve.passes"
let c_rows_removed = Obs.Counter.create "presolve.rows_removed"
let c_vars_fixed = Obs.Counter.create "presolve.vars_fixed"
let c_bounds_tightened = Obs.Counter.create "presolve.bounds_tightened"
let c_bounds_stripped = Obs.Counter.create "presolve.bounds_stripped"
let c_empty_row_drops = Obs.Counter.create "presolve.rule.empty_row"
let c_singleton_drops = Obs.Counter.create "presolve.rule.singleton"
let c_trivial_drops = Obs.Counter.create "presolve.rule.trivial_row"
let c_dedup_drops = Obs.Counter.create "presolve.rule.dedup"
let c_dominated_drops = Obs.Counter.create "presolve.rule.dominated"
let c_empty_col_fixes = Obs.Counter.create "presolve.rule.empty_column"

let presolve_body ?(strip_bounds = true) m =
  let n = Frozen.num_vars m in
  let upper = Array.init n (fun v -> Frozen.upper m v) in
  let fixed = Array.make n None in
  let rows =
    Array.init (Frozen.num_rows m) (fun i ->
        Some { expr = Frozen.row_expr m i; sense = Frozen.row_sense m i; rhs = Frozen.row_rhs m i })
  in
  let rows_removed = ref 0 in
  let vars_fixed = ref 0 in
  let bounds_stripped = ref 0 in
  let passes = ref 0 in
  let changed = ref true in
  let drop i =
    if rows.(i) <> None then begin
      rows.(i) <- None;
      incr rows_removed;
      Obs.Counter.incr c_rows_removed;
      changed := true
    end
  in
  let fix v value =
    match fixed.(v) with
    | Some k -> if k <> value then raise Found_infeasible
    | None ->
      if value < 0 then raise Found_infeasible;
      (match upper.(v) with Some u when value > u -> raise Found_infeasible | _ -> ());
      fixed.(v) <- Some value;
      incr vars_fixed;
      Obs.Counter.incr c_vars_fixed;
      changed := true
  in
  let tighten_upper v u =
    if u < 0 then raise Found_infeasible;
    let tighter = match upper.(v) with Some cur -> u < cur | None -> true in
    if tighter then begin
      upper.(v) <- Some u;
      Obs.Counter.incr c_bounds_tightened;
      changed := true
    end;
    if u = 0 then fix v 0
  in
  (* Activity bounds under [0, upper]; [None] is the relevant infinity. *)
  let min_act expr =
    List.fold_left
      (fun acc (v, c) ->
        match acc with
        | None -> None
        | Some a ->
          if c >= 0 then Some a
          else (match upper.(v) with Some u -> Some (a + (c * u)) | None -> None))
      (Some 0) expr
  in
  let max_act expr =
    List.fold_left
      (fun acc (v, c) ->
        match acc with
        | None -> None
        | Some a ->
          if c <= 0 then Some a
          else (match upper.(v) with Some u -> Some (a + (c * u)) | None -> None))
      (Some 0) expr
  in
  (* An exact bound can be applied to any variable; a rounded one only to an
     integer variable (rounding would cut feasible fractional points off a
     continuous one). *)
  let exact_or_integer v num den = num mod den = 0 || Frozen.is_integer m v in
  let handle_singleton i v c rhs =
    if c > 0 then begin
      match rows.(i) with
      | None -> ()
      | Some r -> (
        match r.sense with
        | Model.Geq ->
          if rhs <= 0 then drop i
          else begin
            (match upper.(v) with
            | Some u ->
              if c * u < rhs then raise Found_infeasible
              else if ceil_div rhs c >= u && exact_or_integer v rhs c then begin
                fix v u;
                drop i
              end
            | None -> ())
            (* a lower bound strictly inside (0, upper) has no
               representation in the model; the row stays *)
          end
        | Model.Leq ->
          if rhs < 0 then raise Found_infeasible
          else if exact_or_integer v rhs c then begin
            tighten_upper v (floor_div rhs c);
            drop i
          end
        | Model.Eq ->
          if rhs mod c = 0 then begin
            fix v (rhs / c);
            drop i
          end
          else if Frozen.is_integer m v then raise Found_infeasible
          (* continuous with a fractional value: keep the row *))
    end
    else begin
      (* c < 0: mirror of the above *)
      let a = -c in
      match rows.(i) with
      | None -> ()
      | Some r -> (
        match r.sense with
        | Model.Geq ->
          (* -a x >= rhs  <=>  x <= -rhs/a; the left side is at most 0 *)
          if rhs > 0 then raise Found_infeasible
          else if exact_or_integer v (-rhs) a then begin
            tighten_upper v (floor_div (-rhs) a);
            drop i
          end
        | Model.Leq ->
          (* -a x <= rhs  <=>  x >= -rhs/a *)
          if rhs >= 0 then drop i
          else (
            match upper.(v) with
            | Some u ->
              if a * u < -rhs then raise Found_infeasible
              else if ceil_div (-rhs) a >= u && exact_or_integer v (-rhs) a then begin
                fix v u;
                drop i
              end
            | None -> ())
        | Model.Eq ->
          if rhs mod c = 0 then begin
            fix v (rhs / c);
            drop i
          end
          else if Frozen.is_integer m v then raise Found_infeasible)
    end
  in
  let scan_rows () =
    for i = 0 to Array.length rows - 1 do
      match rows.(i) with
      | None -> ()
      | Some r ->
        (* substitute fixed variables *)
        let rhs = ref r.rhs in
        let expr =
          List.filter
            (fun (v, c) ->
              match fixed.(v) with
              | Some k ->
                rhs := !rhs - (c * k);
                false
              | None -> true)
            r.expr
        in
        let r = { r with expr; rhs = !rhs } in
        rows.(i) <- Some r;
        (match r.expr with
        | [] ->
          let ok =
            match r.sense with
            | Model.Geq -> 0 >= r.rhs
            | Model.Leq -> 0 <= r.rhs
            | Model.Eq -> 0 = r.rhs
          in
          if ok then begin
            Obs.Counter.incr c_empty_row_drops;
            drop i
          end
          else raise Found_infeasible
        | [ (v, c) ] ->
          let before = !rows_removed in
          handle_singleton i v c r.rhs;
          Obs.Counter.add c_singleton_drops (!rows_removed - before)
        | _ -> (
          (* static infeasibility / redundancy from the bounds *)
          let mi = min_act r.expr and ma = max_act r.expr in
          let infeasible =
            match r.sense with
            | Model.Geq -> ( match ma with Some a -> a < r.rhs | None -> false)
            | Model.Leq -> ( match mi with Some a -> a > r.rhs | None -> false)
            | Model.Eq ->
              (match ma with Some a -> a < r.rhs | None -> false)
              || (match mi with Some a -> a > r.rhs | None -> false)
          in
          if infeasible then raise Found_infeasible;
          let trivial =
            match r.sense with
            | Model.Geq -> ( match mi with Some a -> a >= r.rhs | None -> false)
            | Model.Leq -> ( match ma with Some a -> a <= r.rhs | None -> false)
            | Model.Eq -> (
              match (mi, ma) with Some a, Some b -> a = r.rhs && b = r.rhs | _ -> false)
          in
          if trivial then begin
            Obs.Counter.incr c_trivial_drops;
            drop i
          end
          else begin
            (* bound propagation on integer columns: in a >= row a negative
               column is capped by what the rest of the row can still
               deliver; in a <= row a positive column is. *)
            match r.sense with
            | Model.Geq -> (
              match ma with
              | None -> ()
              | Some a ->
                List.iter
                  (fun (v, c) ->
                    if c < 0 && Frozen.is_integer m v && fixed.(v) = None then
                      tighten_upper v (floor_div (a - r.rhs) (-c)))
                  r.expr)
            | Model.Leq -> (
              match mi with
              | None -> ()
              | Some a ->
                List.iter
                  (fun (v, c) ->
                    if c > 0 && Frozen.is_integer m v && fixed.(v) = None then
                      tighten_upper v (floor_div (r.rhs - a) c))
                  r.expr)
            | Model.Eq -> ()
          end))
    done
  in
  (* Collapse duplicate / parallel rows to the tightest representative per
     (left-hand side, sense); conflicting equalities are infeasible. *)
  let dedup_rows () =
    let best : ((int * int) list * Model.sense, int) Hashtbl.t = Hashtbl.create 64 in
    for i = 0 to Array.length rows - 1 do
      match rows.(i) with
      | None -> ()
      | Some r -> (
        let key = (r.expr, r.sense) in
        match Hashtbl.find_opt best key with
        | None -> Hashtbl.add best key i
        | Some j -> (
          let rj = match rows.(j) with Some rj -> rj | None -> assert false in
          match r.sense with
          | Model.Geq -> if r.rhs > rj.rhs then (drop j; Hashtbl.replace best key i) else drop i
          | Model.Leq -> if r.rhs < rj.rhs then (drop j; Hashtbl.replace best key i) else drop i
          | Model.Eq -> if r.rhs <> rj.rhs then raise Found_infeasible else drop i))
    done
  in
  (* Drop unit-coefficient >= rows whose support contains another such row
     with an equal-or-larger right-hand side. *)
  let drop_dominated () =
    let covering = ref [] in
    for i = Array.length rows - 1 downto 0 do
      match rows.(i) with
      | Some r
        when r.sense = Model.Geq && r.expr <> [] && List.for_all (fun (_, c) -> c = 1) r.expr
        -> covering := (i, List.map fst r.expr, r.rhs) :: !covering
      | Some _ | None -> ()
    done;
    (* smallest supports first: only already-kept smaller rows can dominate *)
    let by_size =
      List.stable_sort (fun (_, a, _) (_, b, _) -> compare (List.length a) (List.length b))
        !covering
    in
    let rows_of_var = Hashtbl.create 64 in
    let rec subset xs ys =
      match (xs, ys) with
      | [], _ -> true
      | _ :: _, [] -> false
      | x :: xs', y :: ys' ->
        if x = y then subset xs' ys' else if x > y then subset xs ys' else false
    in
    List.iter
      (fun (i, vars, rhs) ->
        let candidates =
          List.concat_map (fun v -> try Hashtbl.find rows_of_var v with Not_found -> []) vars
          |> List.sort_uniq compare
        in
        let dominated =
          List.exists
            (fun j ->
              match rows.(j) with
              | Some rj -> rj.rhs >= rhs && subset (List.map fst rj.expr) vars
              | None -> false)
            (List.filter (fun j -> j <> i) candidates)
        in
        if dominated then drop i
        else List.iter (fun v -> Hashtbl.replace rows_of_var v (i :: (try Hashtbl.find rows_of_var v with Not_found -> []))) vars)
      by_size
  in
  let fix_empty_columns () =
    let occupied = Array.make n false in
    Array.iter
      (function
        | Some r -> List.iter (fun (v, _) -> occupied.(v) <- true) r.expr
        | None -> ())
      rows;
    for v = 0 to n - 1 do
      if fixed.(v) = None && not occupied.(v) then begin
        let c = Frozen.objective m v in
        if c >= 0 then fix v 0
        else
          match upper.(v) with Some u -> fix v u | None -> raise Found_unbounded
      end
    done
  in
  match
    while !changed && !passes < 10 do
      changed := false;
      incr passes;
      Obs.Counter.incr c_passes;
      scan_rows ();
      let r0 = !rows_removed in
      dedup_rows ();
      Obs.Counter.add c_dedup_drops (!rows_removed - r0);
      let r1 = !rows_removed in
      drop_dominated ();
      Obs.Counter.add c_dominated_drops (!rows_removed - r1);
      let f0 = !vars_fixed in
      fix_empty_columns ();
      Obs.Counter.add c_empty_col_fixes (!vars_fixed - f0)
    done
  with
  | exception Found_infeasible -> Infeasible
  | exception Found_unbounded -> Unbounded
  | () ->
    (* Redundant upper bounds: non-negative cost, and every row containing
       the variable either loosens as it shrinks or is satisfied by the
       variable at its bound alone (all-non-negative >= row with
       c*u >= rhs) — then any optimum truncates under the bound.  Binary
       bounds only for integer variables, to preserve 0/1 branching. *)
    if strip_bounds then begin
      let rows_of_var = Array.make n [] in
      Array.iter
        (function
          | Some r -> List.iter (fun (v, c) -> rows_of_var.(v) <- (r, c) :: rows_of_var.(v)) r.expr
          | None -> ())
        rows;
      (* Strictly positive cost: then the solver's optimal point itself never
         exceeds the bound (shrinking the variable would improve the
         objective), so lifted solutions stay feasible in the original
         model, not just equal in value. *)
      for v = 0 to n - 1 do
        match (fixed.(v), upper.(v)) with
        | None, Some u
          when Frozen.objective m v > 0 && ((not (Frozen.is_integer m v)) || u = 1) ->
          let benign (r, c) =
            match (r.sense, c > 0) with
            | Model.Geq, true ->
              c * u >= r.rhs && List.for_all (fun (_, c') -> c' >= 0) r.expr
            | Model.Geq, false -> true
            | Model.Leq, true -> true
            | Model.Leq, false -> false
            | Model.Eq, _ -> false
          in
          if List.for_all benign rows_of_var.(v) then begin
            upper.(v) <- None;
            incr bounds_stripped;
            Obs.Counter.incr c_bounds_stripped
          end
        | _ -> ()
      done
    end;
    (* Materialise the reduced program directly as a frozen form — the rows
       are already in normal form (substitution preserves the sort order,
       and the kept-variable renumbering is monotone). *)
    let new_of_orig = Array.make n (-1) in
    let fixed_value = Array.make n 0 in
    let obj_offset = ref 0 in
    let nkept = ref 0 in
    for v = 0 to n - 1 do
      match fixed.(v) with
      | Some k ->
        fixed_value.(v) <- k;
        obj_offset := !obj_offset + (Frozen.objective m v * k)
      | None ->
        new_of_orig.(v) <- !nkept;
        incr nkept
    done;
    let names = Array.make !nkept "" in
    let integer = Array.make !nkept false in
    let r_upper = Array.make !nkept None in
    let obj = Array.make !nkept 0 in
    for v = 0 to n - 1 do
      let v' = new_of_orig.(v) in
      if v' >= 0 then begin
        names.(v') <- Frozen.var_name m v;
        integer.(v') <- Frozen.is_integer m v;
        r_upper.(v') <- upper.(v);
        obj.(v') <- Frozen.objective m v
      end
    done;
    let kept_rows =
      Array.to_list rows
      |> List.filter_map
           (Option.map (fun r ->
                (r.sense, r.rhs, List.map (fun (v, c) -> (new_of_orig.(v), c)) r.expr)))
      |> Array.of_list
    in
    let reduced = Frozen.make ~names ~integer ~upper:r_upper ~obj ~rows:kept_rows in
    let vm =
      {
        orig_nvars = n;
        new_of_orig;
        fixed_value;
        obj_offset = !obj_offset;
        summary =
          {
            rows_removed = !rows_removed;
            vars_fixed = !vars_fixed;
            bounds_stripped = !bounds_stripped;
            passes = !passes;
          };
      }
    in
    Reduced (reduced, vm)

let presolve ?strip_bounds m =
  let span0 = Obs.Trace.begin_ () in
  let r = presolve_body ?strip_bounds m in
  Obs.Trace.end_ span0 "presolve";
  r
