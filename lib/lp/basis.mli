(** Basis-factorisation kernels for the revised simplex.

    A kernel owns one invertible basis matrix [B] (given as a map from basis
    position to a sparse problem column) and answers the four questions every
    simplex iteration asks:

    - {b FTRAN}: solve [B w = a] for an entering column [a];
    - {b BTRAN}: solve [yᵀ B = cᵀ] for pricing, or a single row of [B⁻¹]
      for the dual ratio test;
    - {b update}: replace the column at one basis position by the column
      whose FTRAN image is known (a rank-one basis change per pivot);
    - {b refactor}: rebuild the representation from scratch, discarding
      accumulated update error and fill.

    Two implementations sit behind the one signature: {!Dense} keeps an
    explicit [B⁻¹] (the original solver — O(n²) per iteration, kept as the
    reference/fallback and as the differential-testing counterpart) and
    {!Sparse_lu} keeps a sparse LU factorisation with product-form-eta
    updates, whose per-iteration cost tracks the nonzero count rather than
    the row count.  The simplex paths in {!Simplex} are written against
    {!S} only, so both instantiate at any {!Numeric.Field.S} — the
    exact-rational oracle runs through the very same kernels. *)

type stats = {
  factor_nnz : int;  (** nonzeros stored for the factorised basis *)
  basis_nnz : int;  (** nonzeros of the basis columns at the last refactor *)
  etas : int;  (** update etas accumulated since the last refactor *)
  eta_nnz : int;  (** total entries stored in those etas *)
}

type choice = [ `Auto | `Dense | `Sparse ]
(** Kernel selection, threaded through every solver entry point.  [`Auto]
    resolves to the sparse LU kernel; [`Dense] forces the reference dense
    inverse (differential testing, pathological fill). *)

exception Singular
(** Raised by {!S.refactor} when the basis is (numerically) singular.  The
    kernel's state is unspecified afterwards; callers must install a known
    good basis and refactor again (the all-slack basis always succeeds). *)

module type S = sig
  type elt
  type t

  val name : string

  val create : nrows:int -> col:(int -> (int * elt) list) -> t
  (** A kernel for an [nrows]-row basis; [col j] returns problem column [j]
      as sparse [(row, coefficient)] entries (any column id the simplex may
      place in a basis, slacks and artificials included).  The kernel holds
      no valid factorisation until the first {!refactor}. *)

  val refactor : t -> int array -> unit
  (** [refactor t basis] factorises the matrix whose column at position [p]
      is [col basis.(p)], clearing the eta file.
      @raise Singular when the basis matrix is singular. *)

  val ftran : t -> (int * elt) list -> elt array
  (** [ftran t a] solves [B w = a] for a sparse column [a]; the result is a
      fresh dense array indexed by basis position. *)

  val ftran_dense : t -> elt array -> elt array
  (** [ftran_dense t rhs] solves [B w = rhs] for a dense right-hand side
      (used to recompute the basic values after a refactor); [rhs] is not
      modified. *)

  val ftran_pattern : t -> int array
  val ftran_pattern_len : t -> int
  (** A deduplicated superset of the nonzero positions of the most recent
      {!ftran} result: entries [0 .. ftran_pattern_len - 1] of
      [ftran_pattern], valid until the next solve or {!refactor} call.
      [ftran_pattern_len] is negative when no pattern was tracked (the
      dense kernel, or {!ftran_dense}) — the whole result must then be
      treated as potentially nonzero.  Callers use it to confine the work
      of applying a pivot (basic-value updates, eta extraction, violation
      re-checks) to the touched rows. *)

  val btran : t -> elt array -> elt array
  (** [btran t c] solves [yᵀ B = cᵀ]: [c] is indexed by basis position
      (e.g. the basic objective coefficients), the fresh result by row —
      the simplex multiplier vector used for pricing. *)

  val btran_unit : t -> int -> elt array
  (** [btran_unit t r] is row [r] of [B⁻¹] (BTRAN of the [r]-th unit
      vector), the row the dual ratio test prices columns against. *)

  val update : t -> r:int -> wcol:elt array -> unit
  (** [update t ~r ~wcol] replaces the basis column at position [r] by the
      column whose FTRAN image is [wcol] (i.e. post-multiplies [B] by the
      eta matrix with column [r] = [wcol]).  The caller guarantees
      [wcol.(r)] is the accepted pivot element. *)

  val should_refactor : t -> bool
  (** The kernel's own refactorisation policy: the dense inverse bounds the
      eta count (drift), the sparse kernel additionally bounds eta fill so
      solve cost cannot creep back towards dense behaviour. *)

  val etas : t -> int
  (** Updates applied since the last {!refactor} (0 right after one). *)

  val stats : t -> stats
  (** Fill/eta figures of the current factorisation, for telemetry. *)
end

module Dense (F : Numeric.Field.S) : S with type elt = F.t
(** The reference kernel: explicit dense [B⁻¹], Gauss–Jordan refactor with
    partial pivoting, O(n²) eta update per basis change. *)

module Sparse_lu (F : Numeric.Field.S) : S with type elt = F.t
(** Sparse LU: left-looking Gilbert–Peierls factorisation over columns
    ordered by ascending nonzero count (a static Markowitz approximation),
    threshold partial pivoting (relative threshold 1/10, ties broken towards
    the sparsest row), product-form eta updates, and sparse FTRAN/BTRAN
    whose arithmetic touches only stored nonzeros. *)
