(** Static analysis of LP/ILP models: structured diagnostics emitted without
    solving anything.

    The paper's central observation is that hardness and solver behaviour are
    decided by {e structure} — of the query (triads, Table 1) and of the
    generated program (integrality of the relaxation).  This linter covers
    the program side: it inspects a frozen program ({!Frozen.t}) for defects that would make
    the solvers fail late ([M1xx] errors), rows and columns that are pure
    overhead ([M2xx] warnings), and numerical/shape properties worth knowing
    ([M3xx] notes).  {!Presolve} repairs the subset of these that can be
    repaired without changing the optimum.

    Diagnostic codes (stable identifiers, used by tests and the [--json]
    CLI output):

    - [M101] statically infeasible row — no assignment within the variable
      bounds can satisfy it (includes degenerate rows like [0 >= 1]).
    - [M102] integer variable without an upper bound: {!Branch_bound}
      branches between bounds and would fail on it.
    - [M103] integer variable with an upper bound other than 1:
      {!Branch_bound} only branches binaries.
    - [M104] conflicting constant rows — two rows with identical
      left-hand sides whose right-hand sides cannot both hold ([= 1] and
      [= 2]).
    - [M201] duplicate row (same expression, sense and right-hand side).
    - [M202] parallel rows (same expression and sense, different right-hand
      side) — only the tighter one can bind.
    - [M203] dominated covering row — a unit-coefficient [>=] row whose
      variable set contains another such row with an equal-or-larger
      right-hand side, hence implied by it.
    - [M204] trivial row — satisfied by every point within the bounds
      (e.g. a sum of non-negative variables [>= 0]).
    - [M205] empty column — a variable appearing in no constraint (its
      optimal value is decided by its objective sign alone).
    - [M206] idle variable — no constraint {e and} no objective weight;
      it plays no role in the program at all.
    - [M301] wide coefficient range (conditioning note).
    - [M302] zero objective — every feasible point is optimal. *)

type severity = Error | Warning | Note

type diag = { code : string; severity : severity; message : string }

type stats = {
  nvars : int;
  nconstrs : int;
  nnz : int;  (** Non-zero constraint coefficients. *)
  integer_count : int;
  bounded_count : int;  (** Variables with a finite upper bound. *)
  min_abs_coeff : int;  (** 0 when the model has no constraints. *)
  max_abs_coeff : int;
  unit_covering : bool;
      (** All rows are [>=] with coefficients exactly 1 — the set-covering
          shape of ILP[RES*] (Section 4), for which the whole dichotomy
          machinery applies. *)
}

val stats : Frozen.t -> stats

val lint : Frozen.t -> diag list
(** All diagnostics, errors first, in stable order. *)

val errors : diag list -> diag list

val compare_diag : diag -> diag -> int
(** Stable report order shared by every layer (query, instance, model,
    validator): severity first (errors, warnings, notes), then code, then
    message — so merged multi-layer reports and their [--json] renderings
    are deterministic. *)

val sort_diags : diag list -> diag list
(** [List.stable_sort compare_diag]. *)

val severity_name : severity -> string

val pp_diag : Format.formatter -> diag -> unit
(** [M203 warning: row c7 is dominated by row c2]-style one-liner. *)
