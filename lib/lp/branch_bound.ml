module Make (F : Numeric.Field.S) = struct
  module Lp = Simplex.Make (F)

  type status = Optimal | Feasible | Infeasible | Unbounded | Limit_no_solution

  type result = {
    status : status;
    objective : F.t option;
    solution : F.t array option;
    nodes : int;
    root_objective : F.t option;
    root_integral : bool;
  }

  (* When the objective touches only integer variables (and has integer
     coefficients, always true for Model), any feasible integral point has an
     integral objective, so a fractional LP bound can be rounded up. *)
  let strengthen pure_int_obj bound =
    if pure_int_obj && not (F.is_integral bound) then
      F.of_int (int_of_float (Float.ceil (F.to_float bound -. 1e-6)))
    else bound

  (* Pick the integer variable whose LP value is farthest from an integer. *)
  let most_fractional x int_vars =
    let best = ref None in
    let best_dist = ref (-1.0) in
    List.iter
      (fun v ->
        if not (F.is_integral x.(v)) then begin
          let f = F.to_float x.(v) in
          let dist = Float.abs (f -. Float.round f) in
          if dist > !best_dist then begin
            best := Some v;
            best_dist := dist
          end
        end)
      int_vars;
    !best

  let solve ?node_limit ?time_limit ?(fixed = []) m =
    let int_vars = Model.integer_vars m in
    (* Branching fixes integer variables to 0/1, so they must be binary.  A
       missing upper bound is accepted for covering-style models whose
       optima are componentwise <= 1 anyway (declaring the bound would only
       add a redundant LP row); an explicit bound other than 1 is refused. *)
    List.iter
      (fun v ->
        match Model.upper m v with
        | Some 1 | None -> ()
        | Some _ -> invalid_arg "Branch_bound.solve: integer variables must be binary")
      int_vars;
    let pure_int_obj =
      let ok = ref true in
      for v = 0 to Model.num_vars m - 1 do
        if Model.objective m v <> 0 && not (Model.is_integer m v) then ok := false
      done;
      (* A model with no integer variable at all is just an LP; treat its
         objective as exact. *)
      !ok && int_vars <> []
    in
    let t0 = Clock.now () in
    let out_of_time () =
      match time_limit with Some limit -> Clock.elapsed t0 > limit | None -> false
    in
    let nodes = ref 0 in
    let incumbent_obj = ref None in
    let incumbent_sol = ref None in
    let objective_at x =
      let acc = ref F.zero in
      for v = 0 to Model.num_vars m - 1 do
        let c = Model.objective m v in
        if c <> 0 then acc := F.add !acc (F.mul (F.of_int c) x.(v))
      done;
      !acc
    in
    let offer_incumbent obj sol =
      match !incumbent_obj with
      | Some inc when F.compare obj inc >= 0 -> ()
      | _ ->
        incumbent_obj := Some obj;
        incumbent_sol := Some sol
    in
    (* Primal heuristic: ceil every positive integer variable; in covering
       programs this is always feasible, elsewhere the check filters. *)
    let try_rounding solution =
      let x = Array.copy solution in
      List.iter
        (fun v -> x.(v) <- (if F.to_float solution.(v) > 1e-6 then F.one else F.zero))
        int_vars;
      if Model.check_feasible m (Array.map F.to_float x) then offer_incumbent (objective_at x) x
    in
    let root_objective = ref None in
    let root_integral = ref false in
    let hit_limit = ref false in
    let unbounded = ref false in
    (* DFS over fixings; the x=1 child is pushed last so it is explored
       first (covering problems find incumbents fast that way). *)
    let stack = ref [ fixed ] in
    let continue = ref true in
    while !continue do
      match !stack with
      | [] -> continue := false
      | node_fixed :: rest ->
        stack := rest;
        if (match node_limit with Some l -> !nodes >= l | None -> false) || out_of_time () then begin
          hit_limit := true;
          continue := false
        end
        else begin
          incr nodes;
          match Lp.solve ~fixed:node_fixed m with
          | Infeasible -> ()
          | Unbounded ->
            (* An unbounded relaxation at the root means the MILP is
               unbounded or infeasible; we report unbounded. *)
            unbounded := true;
            continue := false
          | Optimal { objective; solution } ->
            if !nodes = 1 then begin
              root_objective := Some objective;
              root_integral := Lp.integral_on solution int_vars
            end;
            let bound = strengthen pure_int_obj objective in
            let pruned =
              match !incumbent_obj with Some inc -> F.compare bound inc >= 0 | None -> false
            in
            if not pruned then begin
              match most_fractional solution int_vars with
              | None ->
                (* Integral on all integer variables: new incumbent. *)
                offer_incumbent objective solution
              | Some v ->
                try_rounding solution;
                stack := ((v, 0) :: node_fixed) :: ((v, 1) :: node_fixed) :: !stack
            end
        end
    done;
    let status =
      if !unbounded then Unbounded
      else
        match (!incumbent_obj, !hit_limit) with
        | Some _, false -> Optimal
        | Some _, true -> Feasible
        | None, true -> Limit_no_solution
        | None, false -> Infeasible
    in
    {
      status;
      objective = !incumbent_obj;
      solution = !incumbent_sol;
      nodes = !nodes;
      root_objective = !root_objective;
      root_integral = !root_integral;
    }

  (* ----- Frozen sessions -------------------------------------------------
     A branch-and-bound session owns one warm-startable dual-simplex
     session over a frozen program (or a thawed fallback model when the
     dual is inapplicable) and keeps it across calls.  Branching is
     expressed as delta extension, so within one tree every node after the
     root re-solves from the parent's basis — and across calls each solve's
     root starts from the previous call's final basis, which is what makes
     a responsibility batch (many near-identical ILPs against one frozen
     core) cheap. *)

  type session = {
    sfz : Frozen.t;
    slp : Lp.session option;  (* None: dual path inapplicable *)
    sfallback : Model.t Lazy.t;
  }

  let create_session fz =
    {
      sfz = fz;
      slp = (if Lp.frozen_dual_applicable fz then Some (Lp.create_session fz) else None);
      sfallback = lazy (Frozen.to_model fz);
    }

  let relax ?(delta = Frozen.Delta.empty) sess =
    let outcome =
      match sess.slp with
      | Some s -> Lp.session_solve s delta
      | None -> Lp.solve ~fixed:(Frozen.Delta.bindings delta) (Lazy.force sess.sfallback)
    in
    match outcome with
    | Lp.Optimal { objective; solution } -> `Optimal (objective, solution)
    | Lp.Infeasible -> `Infeasible
    | Lp.Unbounded -> `Unbounded

  let solve_session ?node_limit ?time_limit ?(delta = Frozen.Delta.empty) sess =
    let fz = sess.sfz in
    let nvars = Frozen.num_vars fz in
    let int_vars = Frozen.integer_vars fz in
    List.iter
      (fun v ->
        match Frozen.upper fz v with
        | Some 1 | None -> ()
        | Some _ -> invalid_arg "Branch_bound.solve_session: integer variables must be binary")
      int_vars;
    let pure_int_obj =
      let ok = ref true in
      for v = 0 to nvars - 1 do
        if Frozen.objective fz v <> 0 && not (Frozen.is_integer fz v) then ok := false
      done;
      !ok && int_vars <> []
    in
    let t0 = Clock.now () in
    let out_of_time () =
      match time_limit with Some limit -> Clock.elapsed t0 > limit | None -> false
    in
    let nodes = ref 0 in
    let incumbent_obj = ref None in
    let incumbent_sol = ref None in
    let objective_at x =
      let acc = ref F.zero in
      for v = 0 to nvars - 1 do
        let c = Frozen.objective fz v in
        if c <> 0 then acc := F.add !acc (F.mul (F.of_int c) x.(v))
      done;
      !acc
    in
    let offer_incumbent obj sol =
      match !incumbent_obj with
      | Some inc when F.compare obj inc >= 0 -> ()
      | _ ->
        incumbent_obj := Some obj;
        incumbent_sol := Some sol
    in
    (* Primal heuristic as in [solve], validated against the base delta —
       branching fixes are search artifacts a root-feasible point need not
       respect, and rounding preserves 0/1 fixes anyway. *)
    let try_rounding solution =
      let x = Array.copy solution in
      List.iter
        (fun v -> x.(v) <- (if F.to_float solution.(v) > 1e-6 then F.one else F.zero))
        int_vars;
      if Frozen.check_feasible ~delta fz (Array.map F.to_float x) then
        offer_incumbent (objective_at x) x
    in
    let root_objective = ref None in
    let root_integral = ref false in
    let hit_limit = ref false in
    let unbounded = ref false in
    let stack = ref [ delta ] in
    let continue = ref true in
    while !continue do
      match !stack with
      | [] -> continue := false
      | node_delta :: rest ->
        stack := rest;
        if (match node_limit with Some l -> !nodes >= l | None -> false) || out_of_time () then begin
          hit_limit := true;
          continue := false
        end
        else begin
          incr nodes;
          match relax ~delta:node_delta sess with
          | `Infeasible -> ()
          | `Unbounded ->
            unbounded := true;
            continue := false
          | `Optimal (objective, solution) ->
            if !nodes = 1 then begin
              root_objective := Some objective;
              root_integral := Lp.integral_on solution int_vars
            end;
            let bound = strengthen pure_int_obj objective in
            let pruned =
              match !incumbent_obj with Some inc -> F.compare bound inc >= 0 | None -> false
            in
            if not pruned then begin
              match most_fractional solution int_vars with
              | None -> offer_incumbent objective solution
              | Some v ->
                try_rounding solution;
                stack :=
                  Frozen.Delta.fix v 0 node_delta
                  :: Frozen.Delta.fix v 1 node_delta
                  :: !stack
            end
        end
    done;
    let status =
      if !unbounded then Unbounded
      else
        match (!incumbent_obj, !hit_limit) with
        | Some _, false -> Optimal
        | Some _, true -> Feasible
        | None, true -> Limit_no_solution
        | None, false -> Infeasible
    in
    {
      status;
      objective = !incumbent_obj;
      solution = !incumbent_sol;
      nodes = !nodes;
      root_objective = !root_objective;
      root_integral = !root_integral;
    }

  let solve_frozen ?node_limit ?time_limit ?delta fz =
    solve_session ?node_limit ?time_limit ?delta (create_session fz)
end
