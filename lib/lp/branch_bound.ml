(* Shared between the float and exact instantiations (creation is
   idempotent by name); every bump is dropped unless a trace sink is
   installed. *)
let c_nodes = Obs.Counter.create "bb.nodes"
let c_pruned = Obs.Counter.create "bb.pruned"
let c_infeasible_nodes = Obs.Counter.create "bb.infeasible_nodes"
let c_integral_leaves = Obs.Counter.create "bb.integral_leaves"
let c_incumbents = Obs.Counter.create "bb.incumbents"
let c_budget_hits = Obs.Counter.create "bb.budget_hits"
let c_max_depth = Obs.Counter.create "bb.max_depth"

module Make (F : Numeric.Field.S) = struct
  module Lp = Simplex.Make (F)

  type status = Optimal | Feasible | Infeasible | Unbounded | Limit_no_solution

  type result = {
    status : status;
    objective : F.t option;
    solution : F.t array option;
    nodes : int;
    root_objective : F.t option;
    root_integral : bool;
    pivots : int;
    refactors : int;
  }

  (* When the objective touches only integer variables (and has integer
     coefficients, always true for Model), any feasible integral point has an
     integral objective, so a fractional LP bound can be rounded up. *)
  let strengthen pure_int_obj bound =
    if pure_int_obj && not (F.is_integral bound) then
      F.of_int (int_of_float (Float.ceil (F.to_float bound -. 1e-6)))
    else bound

  (* Pick the integer variable whose LP value is farthest from an integer. *)
  let most_fractional x int_vars =
    let best = ref None in
    let best_dist = ref (-1.0) in
    List.iter
      (fun v ->
        if not (F.is_integral x.(v)) then begin
          let f = F.to_float x.(v) in
          let dist = Float.abs (f -. Float.round f) in
          if dist > !best_dist then begin
            best := Some v;
            best_dist := dist
          end
        end)
      int_vars;
    !best

  let solve ?node_limit ?time_limit ?(fixed = []) m =
    let int_vars = Model.integer_vars m in
    (* Branching fixes integer variables to 0/1, so they must be binary.  A
       missing upper bound is accepted for covering-style models whose
       optima are componentwise <= 1 anyway (declaring the bound would only
       add a redundant LP row); an explicit bound other than 1 is refused. *)
    List.iter
      (fun v ->
        match Model.upper m v with
        | Some 1 | None -> ()
        | Some _ -> invalid_arg "Branch_bound.solve: integer variables must be binary")
      int_vars;
    let pure_int_obj =
      let ok = ref true in
      for v = 0 to Model.num_vars m - 1 do
        if Model.objective m v <> 0 && not (Model.is_integer m v) then ok := false
      done;
      (* A model with no integer variable at all is just an LP; treat its
         objective as exact. *)
      !ok && int_vars <> []
    in
    let span0 = Obs.Trace.begin_ () in
    let t0 = Clock.now () in
    let out_of_time () =
      match time_limit with Some limit -> Clock.elapsed t0 > limit | None -> false
    in
    let nodes = ref 0 in
    let incumbent_obj = ref None in
    let incumbent_sol = ref None in
    let objective_at x =
      let acc = ref F.zero in
      for v = 0 to Model.num_vars m - 1 do
        let c = Model.objective m v in
        if c <> 0 then acc := F.add !acc (F.mul (F.of_int c) x.(v))
      done;
      !acc
    in
    let offer_incumbent obj sol =
      match !incumbent_obj with
      | Some inc when F.compare obj inc >= 0 -> ()
      | _ ->
        Obs.Counter.incr c_incumbents;
        incumbent_obj := Some obj;
        incumbent_sol := Some sol
    in
    (* Primal heuristic: ceil every positive integer variable; in covering
       programs this is always feasible, elsewhere the check filters. *)
    let try_rounding solution =
      let x = Array.copy solution in
      List.iter
        (fun v -> x.(v) <- (if F.to_float solution.(v) > 1e-6 then F.one else F.zero))
        int_vars;
      if Model.check_feasible m (Array.map F.to_float x) then offer_incumbent (objective_at x) x
    in
    let root_objective = ref None in
    let root_integral = ref false in
    let hit_limit = ref false in
    let unbounded = ref false in
    (* DFS over fixings; the x=1 child is pushed last so it is explored
       first (covering problems find incumbents fast that way). *)
    let stack = ref [ fixed ] in
    let continue = ref true in
    while !continue do
      match !stack with
      | [] -> continue := false
      | node_fixed :: rest ->
        stack := rest;
        if (match node_limit with Some l -> !nodes >= l | None -> false) || out_of_time () then begin
          hit_limit := true;
          Obs.Counter.incr c_budget_hits;
          continue := false
        end
        else begin
          incr nodes;
          Obs.Counter.incr c_nodes;
          match Lp.solve ~fixed:node_fixed m with
          | Infeasible -> Obs.Counter.incr c_infeasible_nodes
          | Unbounded ->
            (* An unbounded relaxation at the root means the MILP is
               unbounded or infeasible; we report unbounded. *)
            unbounded := true;
            continue := false
          | Optimal { objective; solution } ->
            if !nodes = 1 then begin
              root_objective := Some objective;
              root_integral := Lp.integral_on solution int_vars
            end;
            let bound = strengthen pure_int_obj objective in
            let pruned =
              match !incumbent_obj with Some inc -> F.compare bound inc >= 0 | None -> false
            in
            if pruned then Obs.Counter.incr c_pruned
            else begin
              match most_fractional solution int_vars with
              | None ->
                (* Integral on all integer variables: new incumbent. *)
                Obs.Counter.incr c_integral_leaves;
                offer_incumbent objective solution
              | Some v ->
                try_rounding solution;
                stack := ((v, 0) :: node_fixed) :: ((v, 1) :: node_fixed) :: !stack
            end
        end
    done;
    let status =
      if !unbounded then Unbounded
      else
        match (!incumbent_obj, !hit_limit) with
        | Some _, false -> Optimal
        | Some _, true -> Feasible
        | None, true -> Limit_no_solution
        | None, false -> Infeasible
    in
    Obs.Trace.end_ span0 "bb.solve";
    {
      status;
      objective = !incumbent_obj;
      solution = !incumbent_sol;
      nodes = !nodes;
      root_objective = !root_objective;
      root_integral = !root_integral;
      (* The model path has no warm session to meter; per-solve simplex
         work is only attributed on the frozen-session paths. *)
      pivots = 0;
      refactors = 0;
    }

  (* ----- Frozen sessions -------------------------------------------------
     A branch-and-bound session owns one warm-startable dual-simplex
     session over a frozen program (or a thawed fallback model when the
     dual is inapplicable) and keeps it across calls.  Branching is
     expressed as delta extension, so within one tree every node after the
     root re-solves from the parent's basis — and across calls each solve's
     root starts from the previous call's final basis, which is what makes
     a responsibility batch (many near-identical ILPs against one frozen
     core) cheap. *)

  type session = {
    sfz : Frozen.t;
    skernel : Basis.choice;  (* inherited by per-domain sessions in _par *)
    slp : Lp.session option;  (* None: dual path inapplicable *)
    sfallback : Model.t Lazy.t;
    mutable sext : (Frozen.Delta.t * Frozen.t) option;
        (* Cache of the last append extension: the delta whose appends were
           materialised and the resulting frozen program.  A serve-style
           batch replays the same grown delta many times; re-extending per
           solve would re-copy the matrix every call. *)
  }

  let create_session ?(kernel = `Auto) fz =
    {
      sfz = fz;
      skernel = kernel;
      slp =
        (if Lp.frozen_dual_applicable fz then Some (Lp.create_session ~kernel fz) else None);
      sfallback = lazy (Frozen.to_model fz);
      sext = None;
    }

  (* The session's program with the delta's appends materialised (cached by
     append identity). *)
  let extended sess delta =
    if not (Frozen.Delta.has_appends delta) then sess.sfz
    else
      match sess.sext with
      | Some (d, fz) when Frozen.Delta.same_appends d delta -> fz
      | _ ->
        let fz = Frozen.extend sess.sfz delta in
        sess.sext <- Some (delta, fz);
        fz

  let relax ?(delta = Frozen.Delta.empty) sess =
    let outcome =
      match sess.slp with
      | Some s -> Lp.session_solve s delta
      | None ->
        (* The thawed fallback must carry the appends too; the cached
           extension keeps repeat solves cheap. *)
        let m =
          if Frozen.Delta.has_appends delta then Frozen.to_model (extended sess delta)
          else Lazy.force sess.sfallback
        in
        Lp.solve ~fixed:(Frozen.Delta.bindings delta) m
    in
    match outcome with
    | Lp.Optimal { objective; solution } -> `Optimal (objective, solution)
    | Lp.Infeasible -> `Infeasible
    | Lp.Unbounded -> `Unbounded

  (* Per-frozen-program metadata shared by every session solve: binary
     check, integer variables, objective purity. *)
  let fz_meta fz =
    let int_vars = Frozen.integer_vars fz in
    List.iter
      (fun v ->
        match Frozen.upper fz v with
        | Some 1 | None -> ()
        | Some _ -> invalid_arg "Branch_bound.solve_session: integer variables must be binary")
      int_vars;
    let nvars = Frozen.num_vars fz in
    let pure_int_obj =
      let ok = ref true in
      for v = 0 to nvars - 1 do
        if Frozen.objective fz v <> 0 && not (Frozen.is_integer fz v) then ok := false
      done;
      !ok && int_vars <> []
    in
    (nvars, int_vars, pure_int_obj)

  let frozen_objective_at fz nvars x =
    let acc = ref F.zero in
    for v = 0 to nvars - 1 do
      let c = Frozen.objective fz v in
      if c <> 0 then acc := F.add !acc (F.mul (F.of_int c) x.(v))
    done;
    !acc

  (* One depth-first search over deltas against a relaxation oracle.  The
     incumbent store and budgets are abstracted so the sequential solver
     backs them with plain refs while the parallel solver shares atomics
     across domains, and both run the {e same} traversal (children pushed in
     the same order, same pruning, same rounding heuristic).

     [tick] accounts one node and returns [false] when the node budget is
     exhausted; [best]/[offer] read and propose incumbents; [on_solved]
     fires per optimal relaxation (the callers use the first to record the
     root).  With [frontier_depth], nodes reaching that depth are handed to
     [defer] {e unsolved} instead of being explored — the parallel frontier.
     Returns [(hit_limit, unbounded)]. *)
  let dfs ~relax ~fz ~base_delta ~nvars ~int_vars ~pure_int_obj ~best ~offer ~tick ~timed_out
      ~on_solved ?frontier_depth ?(defer = fun _ -> ()) stack0 =
    let objective_at = frozen_objective_at fz nvars in
    (* Primal heuristic as in [solve], validated against the base delta —
       branching fixes are search artifacts a root-feasible point need not
       respect, and rounding preserves 0/1 fixes anyway. *)
    let try_rounding solution =
      let x = Array.copy solution in
      List.iter
        (fun v -> x.(v) <- (if F.to_float solution.(v) > 1e-6 then F.one else F.zero))
        int_vars;
      if Frozen.check_feasible ~delta:base_delta fz (Array.map F.to_float x) then
        offer (objective_at x) x
    in
    let hit_limit = ref false in
    let unbounded = ref false in
    let stack = ref stack0 in
    let continue = ref true in
    while !continue do
      match !stack with
      | [] -> continue := false
      | (node_delta, depth) :: rest -> (
        stack := rest;
        match frontier_depth with
        | Some d when depth >= d -> defer node_delta
        | _ ->
          if timed_out () || not (tick ()) then begin
            hit_limit := true;
            Obs.Counter.incr c_budget_hits;
            continue := false
          end
          else begin
            Obs.Counter.incr c_nodes;
            Obs.Counter.record_max c_max_depth depth;
            match relax node_delta with
            | `Infeasible -> Obs.Counter.incr c_infeasible_nodes
            | `Unbounded ->
              unbounded := true;
              continue := false
            | `Optimal (objective, solution) ->
              on_solved objective solution;
              let bound = strengthen pure_int_obj objective in
              let pruned =
                match best () with Some inc -> F.compare bound inc >= 0 | None -> false
              in
              if pruned then Obs.Counter.incr c_pruned
              else begin
                match most_fractional solution int_vars with
                | None ->
                  Obs.Counter.incr c_integral_leaves;
                  offer objective solution
                | Some v ->
                  try_rounding solution;
                  stack :=
                    (Frozen.Delta.fix v 0 node_delta, depth + 1)
                    :: (Frozen.Delta.fix v 1 node_delta, depth + 1)
                    :: !stack
              end
          end)
    done;
    (!hit_limit, !unbounded)

  let status_of ~unbounded ~incumbent ~hit_limit =
    if unbounded then Unbounded
    else
      match (incumbent, hit_limit) with
      | Some _, false -> Optimal
      | Some _, true -> Feasible
      | None, true -> Limit_no_solution
      | None, false -> Infeasible

  (* A "first optimal relaxation" recorder; the first solved node of a tree
     is always its root. *)
  let root_recorder int_vars =
    let root_objective = ref None in
    let root_integral = ref false in
    let on_solved obj sol =
      if !root_objective = None then begin
        root_objective := Some obj;
        root_integral := Lp.integral_on sol int_vars
      end
    in
    (root_objective, root_integral, on_solved)

  (* Lifetime simplex work of a session's warm LP engine (zero on the
     thawed-fallback path, which has no session to meter). *)
  let session_work sess =
    match sess.slp with Some s -> (Lp.session_pivots s, Lp.session_refactors s) | None -> (0, 0)

  let solve_session ?node_limit ?time_limit ?(delta = Frozen.Delta.empty) sess =
    let fz = extended sess delta in
    let nvars, int_vars, pure_int_obj = fz_meta fz in
    let span0 = Obs.Trace.begin_ () in
    let piv0, ref0 = session_work sess in
    let t0 = Clock.now () in
    let timed_out () =
      match time_limit with Some limit -> Clock.elapsed t0 > limit | None -> false
    in
    let nodes = ref 0 in
    let tick () =
      match node_limit with
      | Some l when !nodes >= l -> false
      | Some _ | None ->
        incr nodes;
        true
    in
    let incumbent_obj = ref None in
    let incumbent_sol = ref None in
    let offer obj sol =
      match !incumbent_obj with
      | Some inc when F.compare obj inc >= 0 -> ()
      | _ ->
        Obs.Counter.incr c_incumbents;
        incumbent_obj := Some obj;
        incumbent_sol := Some sol
    in
    let root_objective, root_integral, on_solved = root_recorder int_vars in
    (* [fz] is already the extended program, so the rounding check gets the
       delta with its appends stripped — passing them again would apply
       them twice. *)
    let hit_limit, unbounded =
      dfs
        ~relax:(fun d -> relax ~delta:d sess)
        ~fz
        ~base_delta:(Frozen.Delta.clear_appends delta)
        ~nvars ~int_vars ~pure_int_obj
        ~best:(fun () -> !incumbent_obj)
        ~offer ~tick ~timed_out ~on_solved
        [ (delta, 0) ]
    in
    let piv1, ref1 = session_work sess in
    Obs.Trace.end_ span0 "bb.solve";
    {
      status = status_of ~unbounded ~incumbent:!incumbent_obj ~hit_limit;
      objective = !incumbent_obj;
      solution = !incumbent_sol;
      nodes = !nodes;
      root_objective = !root_objective;
      root_integral = !root_integral;
      pivots = piv1 - piv0;
      refactors = ref1 - ref0;
    }

  (* Parallel exploration of the top of the tree: the session's own engine
     expands breadth (depth-first, but only to [par_depth] levels), the
     resulting frontier subtrees are drained by the pool — one fresh
     warm-startable session per participating domain, all against the same
     shared frozen arrays — and bound updates flow through an atomic
     incumbent every domain prunes against.  Node and time budgets are
     shared: one atomic node counter, one deadline. *)
  let solve_session_par ?node_limit ?time_limit ?(delta = Frozen.Delta.empty) ?(par_depth = 3)
      ~pool sess =
    if Pool.jobs pool <= 1 || par_depth <= 0 then
      solve_session ?node_limit ?time_limit ~delta sess
    else begin
      let fz = extended sess delta in
      let base_delta = Frozen.Delta.clear_appends delta in
      let nvars, int_vars, pure_int_obj = fz_meta fz in
      let span0 = Obs.Trace.begin_ () in
      let piv0, ref0 = session_work sess in
      (* Work done by the per-domain engines of phase 2; drained into these
         totals as each frontier task completes. *)
      let par_pivots = Atomic.make 0 in
      let par_refactors = Atomic.make 0 in
      let t0 = Clock.now () in
      let timed_out () =
        match time_limit with Some limit -> Clock.elapsed t0 > limit | None -> false
      in
      let nodes = Atomic.make 0 in
      let tick () =
        match node_limit with
        | None ->
          Atomic.incr nodes;
          true
        | Some l ->
          let n = Atomic.fetch_and_add nodes 1 in
          if n >= l then begin
            (* Undo the overshoot so the reported count stays within the
               budget regardless of how many domains raced here. *)
            ignore (Atomic.fetch_and_add nodes (-1));
            false
          end
          else true
      in
      let incumbent = Atomic.make None in
      let best () = Option.map fst (Atomic.get incumbent) in
      let rec offer obj sol =
        let cur = Atomic.get incumbent in
        match cur with
        | Some (inc, _) when F.compare obj inc >= 0 -> ()
        | _ ->
          if Atomic.compare_and_set incumbent cur (Some (obj, sol)) then
            Obs.Counter.incr c_incumbents
          else offer obj sol
      in
      let root_objective, root_integral, on_solved = root_recorder int_vars in
      (* Phase 1: expand the top [par_depth] levels on the session's own
         engine; nodes reaching the cutoff become the frontier. *)
      let frontier = ref [] in
      let hit1, unb1 =
        dfs
          ~relax:(fun d -> relax ~delta:d sess)
          ~fz ~base_delta ~nvars ~int_vars ~pure_int_obj ~best ~offer ~tick ~timed_out
          ~on_solved ~frontier_depth:par_depth
          ~defer:(fun d -> frontier := d :: !frontier)
          [ (delta, 0) ]
      in
      let frontier = Array.of_list (List.rev !frontier) in
      let hit_limit = Atomic.make hit1 in
      let unbounded = Atomic.make unb1 in
      if (not hit1) && (not unb1) && Array.length frontier > 0 then begin
        (* Phase 2: one subtree per frontier delta.  A domain joining the
           batch opens its own session against the shared frozen program;
           a task observing an exhausted budget (or an unbounded verdict
           elsewhere) returns without exploring. *)
        let subtree_tick () = if Atomic.get unbounded then false else tick () in
        ignore
          (Pool.run_init pool
             (* Domains open their session on the BASE program: frontier
                deltas carry the appends, and each domain's LP session
                absorbs them exactly once on its first solve.  Opening on
                the extended program would extend again. *)
             ~init:(fun () -> create_session ~kernel:sess.skernel sess.sfz)
             ~tasks:(Array.length frontier)
             (fun dom_sess i ->
               if not (Atomic.get hit_limit || Atomic.get unbounded) then begin
                 let dp0, dr0 = session_work dom_sess in
                 let hit, unb =
                   dfs
                     ~relax:(fun d -> relax ~delta:d dom_sess)
                     ~fz ~base_delta ~nvars ~int_vars ~pure_int_obj ~best ~offer
                     ~tick:subtree_tick ~timed_out
                     ~on_solved:(fun _ _ -> ())
                     [ (frontier.(i), par_depth) ]
                 in
                 let dp1, dr1 = session_work dom_sess in
                 ignore (Atomic.fetch_and_add par_pivots (dp1 - dp0));
                 ignore (Atomic.fetch_and_add par_refactors (dr1 - dr0));
                 if hit then Atomic.set hit_limit true;
                 if unb then Atomic.set unbounded true
               end))
      end;
      let incumbent_obj, incumbent_sol =
        match Atomic.get incumbent with
        | Some (obj, sol) -> (Some obj, Some sol)
        | None -> (None, None)
      in
      let piv1, ref1 = session_work sess in
      Obs.Trace.end_ span0 "bb.solve";
      {
        status =
          status_of ~unbounded:(Atomic.get unbounded) ~incumbent:incumbent_obj
            ~hit_limit:(Atomic.get hit_limit);
        objective = incumbent_obj;
        solution = incumbent_sol;
        nodes = Atomic.get nodes;
        root_objective = !root_objective;
        root_integral = !root_integral;
        pivots = piv1 - piv0 + Atomic.get par_pivots;
        refactors = ref1 - ref0 + Atomic.get par_refactors;
      }
    end

  let solve_frozen ?node_limit ?time_limit ?delta fz =
    solve_session ?node_limit ?time_limit ?delta (create_session fz)
end
