(* Basis-factorisation kernels behind one signature: the reference dense
   inverse and the sparse LU the solver actually runs on.  See basis.mli for
   the contract; both are written against {!Numeric.Field.S} so the
   exact-rational simplex instantiates them unchanged. *)

type stats = { factor_nnz : int; basis_nnz : int; etas : int; eta_nnz : int }
type choice = [ `Auto | `Dense | `Sparse ]

exception Singular

module type S = sig
  type elt
  type t

  val name : string
  val create : nrows:int -> col:(int -> (int * elt) list) -> t
  val refactor : t -> int array -> unit
  val ftran : t -> (int * elt) list -> elt array
  val ftran_dense : t -> elt array -> elt array

  val ftran_pattern : t -> int array
  val ftran_pattern_len : t -> int
  (** A superset of the nonzero positions of the most recent {!ftran}
      result, without duplicates, valid until the next solve or refactor
      call on the kernel.  [ftran_pattern_len] is negative when no pattern
      was tracked (the dense kernel, or a dense right-hand side) — callers
      must then treat the whole result as potentially nonzero.  Only the
      first [ftran_pattern_len] entries of [ftran_pattern] are
      meaningful. *)

  val btran : t -> elt array -> elt array
  val btran_unit : t -> int -> elt array
  val update : t -> r:int -> wcol:elt array -> unit
  val should_refactor : t -> bool
  val etas : t -> int
  val stats : t -> stats
end

(* ----- Reference kernel: explicit dense inverse ------------------------ *)

module Dense (F : Numeric.Field.S) : S with type elt = F.t = struct
  type elt = F.t

  type t = {
    nrows : int;
    col : int -> (int * elt) list;
    binv : elt array array;  (* nrows x nrows *)
    mutable netas : int;
    mutable basis_nnz : int;
  }

  let name = "dense"

  let create ~nrows ~col =
    {
      nrows;
      col;
      binv = Array.init nrows (fun _ -> Array.make nrows F.zero);
      netas = 0;
      basis_nnz = 0;
    }

  (* Gauss-Jordan with partial pivoting.  Row swaps are pure
     left-multiplications: applied to both [mat] and [inv] they leave
     inv = mat_original^-1 at the end. *)
  let refactor t basis =
    let n = t.nrows in
    let mat = Array.make_matrix n n F.zero in
    let nnz = ref 0 in
    for r = 0 to n - 1 do
      List.iter
        (fun (i, c) ->
          mat.(i).(r) <- c;
          incr nnz)
        (t.col basis.(r))
    done;
    t.basis_nnz <- !nnz;
    let inv = Array.init n (fun i -> Array.init n (fun j -> if i = j then F.one else F.zero)) in
    for piv = 0 to n - 1 do
      let best = ref piv in
      for r = piv + 1 to n - 1 do
        if F.compare (F.abs mat.(r).(piv)) (F.abs mat.(!best).(piv)) > 0 then best := r
      done;
      if F.sign mat.(!best).(piv) = 0 then raise Singular;
      if !best <> piv then begin
        let tmp = mat.(piv) in
        mat.(piv) <- mat.(!best);
        mat.(!best) <- tmp;
        let tmp = inv.(piv) in
        inv.(piv) <- inv.(!best);
        inv.(!best) <- tmp
      end;
      let d = mat.(piv).(piv) in
      F.div_inplace mat.(piv) d;
      F.div_inplace inv.(piv) d;
      for r = 0 to n - 1 do
        if r <> piv then begin
          let f = mat.(r).(piv) in
          if F.sign f <> 0 then begin
            F.axpy (F.neg f) mat.(piv) mat.(r);
            F.axpy (F.neg f) inv.(piv) inv.(r)
          end
        end
      done
    done;
    for r = 0 to n - 1 do
      Array.blit inv.(r) 0 t.binv.(r) 0 n
    done;
    t.netas <- 0

  let ftran t entries =
    let n = t.nrows in
    let w = Array.make n F.zero in
    for r = 0 to n - 1 do
      let row = t.binv.(r) in
      let acc = ref F.zero in
      List.iter (fun (i, c) -> acc := F.add !acc (F.mul row.(i) c)) entries;
      w.(r) <- !acc
    done;
    w

  let ftran_dense t rhs =
    Array.init t.nrows (fun r -> F.dot t.binv.(r) rhs)

  let btran t c =
    let n = t.nrows in
    let y = Array.make n F.zero in
    for p = 0 to n - 1 do
      if F.sign c.(p) <> 0 then F.axpy c.(p) t.binv.(p) y
    done;
    y

  let btran_unit t r = Array.copy t.binv.(r)
  let ftran_pattern _ = [||]
  let ftran_pattern_len _ = -1

  (* Eta update of the inverse: row r scaled by the pivot, every other row
     eliminated — O(n^2) per basis change, the cost the sparse kernel
     exists to avoid. *)
  let update t ~r ~wcol =
    let n = t.nrows in
    let piv = wcol.(r) in
    let browr = t.binv.(r) in
    F.div_inplace browr piv;
    for i = 0 to n - 1 do
      if i <> r then begin
        let f = wcol.(i) in
        if F.sign f <> 0 then F.axpy (F.neg f) browr t.binv.(i)
      end
    done;
    t.netas <- t.netas + 1

  (* Rebuild every ~max(300, n) updates: the O(n^3) rebuild then amortises
     to the O(n^2) cost of a single eta update while still bounding
     drift (the historical cadence of the dense solver). *)
  let should_refactor t = t.netas > max 300 t.nrows
  let etas t = t.netas

  let stats t =
    {
      factor_nnz = t.nrows * t.nrows;
      basis_nnz = t.basis_nnz;
      etas = t.netas;
      eta_nnz = t.netas * t.nrows;
    }
end

(* ----- Sparse LU kernel ------------------------------------------------ *)

module Sparse_lu (F : Numeric.Field.S) : S with type elt = F.t = struct
  type elt = F.t

  (* One product-form eta: the basis column at position [er] was replaced by
     the column whose FTRAN image had pivot [epiv] at [er] and the stored
     off-pivot entries elsewhere. *)
  type eta = { er : int; epiv : elt; ei : int array; ev : elt array }

  type t = {
    nrows : int;
    col : int -> (int * elt) list;
    (* The factorisation processes basis positions in the order [q] (step
       [k] eliminates position [q.(k)]) and pivots step [k] on physical row
       [piv_row.(k)]; [pinv] is the inverse map (physical row -> step, -1
       while unpivoted during a factorisation).  L columns store physical
       row indices, U columns store step indices strictly above their
       diagonal [udiag]. *)
    q : int array;
    piv_row : int array;
    pinv : int array;
    l_i : int array array;
    l_v : elt array array;
    u_i : int array array;
    u_v : elt array array;
    udiag : elt array;
    qinv : int array;  (* basis position -> step *)
    (* Transpose views of the factor, rebuilt with it: for a step [j], the
       steps whose U (resp. L) column carries an entry hitting [j].  They
       drive the scatter-form transposed solves in {!btran_unit}, whose
       touched set is then the reachability of the rhs pattern rather than
       every step. *)
    ut_i : int array array;
    ut_v : elt array array;
    lt_i : int array array;
    lt_v : elt array array;
    mutable factor_nnz : int;
    mutable basis_nnz : int;
    mutable etas_arr : eta array;  (* chronological; first netas live *)
    mutable netas : int;
    mutable eta_nnz : int;
    (* Scratch, reused across calls: [x] dense over physical rows (zero
       between operations), [z] dense over steps, DFS state, and the static
       row counts used as the Markowitz tie-break. *)
    x : elt array;
    z : elt array;
    stamp : int array;
    mutable stamp_val : int;
    stack : int array;
    estack : int array;
    topo : int array;
    starts : int array;
    rowcnt : int array;
    colnnz : int array;
    (* Nonzero pattern of the last FTRAN result (deduplicated positions;
       [wpat_n] < 0 when invalid), maintained so callers and {!update} can
       iterate the touched entries instead of the whole vector. *)
    wpat : int array;
    mutable wpat_n : int;
    wstamp : int array;
    mutable wstamp_val : int;
  }

  let name = "sparse-lu"
  let dummy_eta = { er = 0; epiv = F.one; ei = [||]; ev = [||] }

  (* Relative pivot threshold: accept any candidate within a factor 10 of
     the column's largest magnitude, then take the structurally sparsest
     acceptable row.  Exact fields accept tiny pivots too (sign is exact);
     the threshold only biases them towards sparsity. *)
  let threshold = F.of_ratio 1 10

  let create ~nrows ~col =
    let n = nrows in
    {
      nrows = n;
      col;
      q = Array.init n (fun i -> i);
      piv_row = Array.make n 0;
      pinv = Array.make n (-1);
      l_i = Array.make n [||];
      l_v = Array.make n [||];
      u_i = Array.make n [||];
      u_v = Array.make n [||];
      udiag = Array.make n F.one;
      qinv = Array.init n (fun i -> i);
      ut_i = Array.make n [||];
      ut_v = Array.make n [||];
      lt_i = Array.make n [||];
      lt_v = Array.make n [||];
      factor_nnz = 0;
      basis_nnz = 0;
      etas_arr = Array.make 16 dummy_eta;
      netas = 0;
      eta_nnz = 0;
      x = Array.make n F.zero;
      z = Array.make n F.zero;
      stamp = Array.make n 0;
      stamp_val = 0;
      stack = Array.make n 0;
      estack = Array.make n 0;
      topo = Array.make n 0;
      starts = Array.make n 0;
      rowcnt = Array.make n 0;
      colnnz = Array.make n 0;
      wpat = Array.make n 0;
      wpat_n = -1;
      wstamp = Array.make n 0;
      wstamp_val = 0;
    }

  (* Symbolic step of Gilbert-Peierls: the nonzero pattern of L^-1 a is the
     set of rows reachable from the pattern of [a] in the column graph of
     the partial factor (an eliminated row propagates to the rows of its L
     column).  Iterative DFS; fills [t.topo] with a postorder and returns
     its length — reverse postorder is a valid elimination order. *)
  let reach t entries =
    t.stamp_val <- t.stamp_val + 1;
    let sv = t.stamp_val in
    let tn = ref 0 in
    let dfs root =
      if t.stamp.(root) <> sv then begin
        t.stamp.(root) <- sv;
        t.stack.(0) <- root;
        t.estack.(0) <- 0;
        let sp = ref 1 in
        while !sp > 0 do
          let node = t.stack.(!sp - 1) in
          let j = t.pinv.(node) in
          let succ = if j >= 0 then t.l_i.(j) else [||] in
          let e = t.estack.(!sp - 1) in
          if e < Array.length succ then begin
            t.estack.(!sp - 1) <- e + 1;
            let nxt = succ.(e) in
            if t.stamp.(nxt) <> sv then begin
              t.stamp.(nxt) <- sv;
              t.stack.(!sp) <- nxt;
              t.estack.(!sp) <- 0;
              incr sp
            end
          end
          else begin
            decr sp;
            t.topo.(!tn) <- node;
            incr tn
          end
        done
      end
    in
    List.iter (fun (i, _) -> dfs i) entries;
    !tn

  (* Same iterative DFS over an arbitrary successor map, rooted at
     [starts.(0 .. ns-1)]: fills [t.topo] with a postorder and returns its
     length.  Reverse postorder visits every node before its successors, a
     valid order for scatter-form triangular solves.  Shares the
     stamp/stack scratch with {!reach} — traversals never interleave. *)
  let reach_from t succ starts ns =
    t.stamp_val <- t.stamp_val + 1;
    let sv = t.stamp_val in
    let tn = ref 0 in
    for s0 = 0 to ns - 1 do
      let root = starts.(s0) in
      if t.stamp.(root) <> sv then begin
        t.stamp.(root) <- sv;
        t.stack.(0) <- root;
        t.estack.(0) <- 0;
        let sp = ref 1 in
        while !sp > 0 do
          let node = t.stack.(!sp - 1) in
          let succs = succ node in
          let e = t.estack.(!sp - 1) in
          if e < Array.length succs then begin
            t.estack.(!sp - 1) <- e + 1;
            let nxt = succs.(e) in
            if t.stamp.(nxt) <> sv then begin
              t.stamp.(nxt) <- sv;
              t.stack.(!sp) <- nxt;
              t.estack.(!sp) <- 0;
              incr sp
            end
          end
          else begin
            decr sp;
            t.topo.(!tn) <- node;
            incr tn
          end
        done
      end
    done;
    !tn

  (* Left-looking LU with threshold partial pivoting over statically
     ordered columns (ascending nonzero count — a cheap Markowitz
     approximation that is exact for the slack-heavy bases warm sessions
     live in). *)
  let refactor t basis =
    let n = t.nrows in
    t.netas <- 0;
    t.eta_nnz <- 0;
    t.factor_nnz <- 0;
    t.wpat_n <- -1;
    Array.fill t.rowcnt 0 n 0;
    let bnnz = ref 0 in
    for p = 0 to n - 1 do
      let cnt = ref 0 in
      List.iter
        (fun (i, _) ->
          incr cnt;
          t.rowcnt.(i) <- t.rowcnt.(i) + 1)
        (t.col basis.(p));
      t.colnnz.(p) <- !cnt;
      bnnz := !bnnz + !cnt
    done;
    t.basis_nnz <- !bnnz;
    for p = 0 to n - 1 do
      t.q.(p) <- p
    done;
    Array.sort
      (fun a b ->
        let c = compare t.colnnz.(a) t.colnnz.(b) in
        if c <> 0 then c else compare a b)
      t.q;
    Array.fill t.pinv 0 n (-1);
    for k = 0 to n - 1 do
      let entries = t.col basis.(t.q.(k)) in
      List.iter (fun (i, c) -> t.x.(i) <- F.add t.x.(i) c) entries;
      let tn = reach t entries in
      (* Numeric left-looking solve in reverse postorder. *)
      for idx = tn - 1 downto 0 do
        let i = t.topo.(idx) in
        let j = t.pinv.(i) in
        if j >= 0 then begin
          let xi = t.x.(i) in
          if F.sign xi <> 0 then begin
            let li = t.l_i.(j) and lv = t.l_v.(j) in
            for e = 0 to Array.length li - 1 do
              let r = li.(e) in
              t.x.(r) <- F.sub t.x.(r) (F.mul lv.(e) xi)
            done
          end
        end
      done;
      (* Threshold pivot among the unpivoted reached rows. *)
      let maxabs = ref F.zero in
      for idx = 0 to tn - 1 do
        let i = t.topo.(idx) in
        if t.pinv.(i) < 0 then begin
          let a = F.abs t.x.(i) in
          if F.compare a !maxabs > 0 then maxabs := a
        end
      done;
      if F.sign !maxabs = 0 then begin
        for idx = 0 to tn - 1 do
          t.x.(t.topo.(idx)) <- F.zero
        done;
        raise Singular
      end;
      let cut = F.mul threshold !maxabs in
      let best = ref (-1) in
      for idx = 0 to tn - 1 do
        let i = t.topo.(idx) in
        if
          t.pinv.(i) < 0
          && F.sign t.x.(i) <> 0
          && F.compare (F.abs t.x.(i)) cut >= 0
        then
          if !best < 0 then best := i
          else if
            t.rowcnt.(i) < t.rowcnt.(!best)
            || (t.rowcnt.(i) = t.rowcnt.(!best) && i < !best)
          then best := i
      done;
      let p = !best in
      let nl = ref 0 and nu = ref 0 in
      for idx = 0 to tn - 1 do
        let i = t.topo.(idx) in
        if F.sign t.x.(i) <> 0 then
          if t.pinv.(i) >= 0 then incr nu else if i <> p then incr nl
      done;
      let li = Array.make !nl 0 and lv = Array.make !nl F.zero in
      let ui = Array.make !nu 0 and uv = Array.make !nu F.zero in
      let xl = ref 0 and xu = ref 0 in
      let xp = t.x.(p) in
      for idx = 0 to tn - 1 do
        let i = t.topo.(idx) in
        let xi = t.x.(i) in
        if F.sign xi <> 0 then
          if t.pinv.(i) >= 0 then begin
            ui.(!xu) <- t.pinv.(i);
            uv.(!xu) <- xi;
            incr xu
          end
          else if i <> p then begin
            li.(!xl) <- i;
            lv.(!xl) <- F.div xi xp;
            incr xl
          end;
        t.x.(i) <- F.zero
      done;
      t.l_i.(k) <- li;
      t.l_v.(k) <- lv;
      t.u_i.(k) <- ui;
      t.u_v.(k) <- uv;
      t.udiag.(k) <- xp;
      t.piv_row.(k) <- p;
      t.pinv.(p) <- k;
      t.factor_nnz <- t.factor_nnz + !nl + !nu + 1
    done;
    for k = 0 to n - 1 do
      t.qinv.(t.q.(k)) <- k
    done;
    (* Transpose adjacency of the finished factor, in step space ([rowcnt]
       doubles as the fill cursor — it is recomputed at the next
       refactorisation anyway).  L entries are physical rows; their step is
       total only now, which is why the transposes build after the loop. *)
    Array.fill t.rowcnt 0 n 0;
    for k = 0 to n - 1 do
      let ui = t.u_i.(k) in
      for e = 0 to Array.length ui - 1 do
        t.rowcnt.(ui.(e)) <- t.rowcnt.(ui.(e)) + 1
      done
    done;
    for j = 0 to n - 1 do
      t.ut_i.(j) <- Array.make t.rowcnt.(j) 0;
      t.ut_v.(j) <- Array.make t.rowcnt.(j) F.zero;
      t.rowcnt.(j) <- 0
    done;
    for k = 0 to n - 1 do
      let ui = t.u_i.(k) and uv = t.u_v.(k) in
      for e = 0 to Array.length ui - 1 do
        let j = ui.(e) in
        let c = t.rowcnt.(j) in
        t.ut_i.(j).(c) <- k;
        t.ut_v.(j).(c) <- uv.(e);
        t.rowcnt.(j) <- c + 1
      done
    done;
    Array.fill t.rowcnt 0 n 0;
    for k = 0 to n - 1 do
      let li = t.l_i.(k) in
      for e = 0 to Array.length li - 1 do
        let j = t.pinv.(li.(e)) in
        t.rowcnt.(j) <- t.rowcnt.(j) + 1
      done
    done;
    for j = 0 to n - 1 do
      t.lt_i.(j) <- Array.make t.rowcnt.(j) 0;
      t.lt_v.(j) <- Array.make t.rowcnt.(j) F.zero;
      t.rowcnt.(j) <- 0
    done;
    for k = 0 to n - 1 do
      let li = t.l_i.(k) and lv = t.l_v.(k) in
      for e = 0 to Array.length li - 1 do
        let j = t.pinv.(li.(e)) in
        let c = t.rowcnt.(j) in
        t.lt_i.(j).(c) <- k;
        t.lt_v.(j).(c) <- lv.(e);
        t.rowcnt.(j) <- c + 1
      done
    done

  (* Solve B0 w = x for the loaded scratch [t.x] (physical rows): forward
     through L, permute into step space, back-substitute U, scatter to
     basis positions.  Clears the scratch on the way.  Both triangular
     passes are bounded by the symbolic reachability of the rhs pattern
     ([entries]), so the cost tracks the touched nonzeros, not the
     dimension. *)
  let factor_ftran t entries =
    (* L-solve over the reached physical rows, in reverse postorder (every
       row is final before it scatters into its L column). *)
    let tn = reach t entries in
    for idx = tn - 1 downto 0 do
      let i = t.topo.(idx) in
      let xi = t.x.(i) in
      if F.sign xi <> 0 then begin
        let j = t.pinv.(i) in
        let li = t.l_i.(j) and lv = t.l_v.(j) in
        for e = 0 to Array.length li - 1 do
          let r = li.(e) in
          t.x.(r) <- F.sub t.x.(r) (F.mul lv.(e) xi)
        done
      end
    done;
    (* Permute the touched rows into step space, collecting the U starts. *)
    let ns = ref 0 in
    for idx = 0 to tn - 1 do
      let i = t.topo.(idx) in
      let xi = t.x.(i) in
      t.x.(i) <- F.zero;
      if F.sign xi <> 0 then begin
        t.z.(t.pinv.(i)) <- xi;
        t.starts.(!ns) <- t.pinv.(i);
        incr ns
      end
    done;
    (* U back-substitution over the steps reachable from those starts
       (contributions flow down the column pattern [u_i]). *)
    let tn = reach_from t (fun k -> t.u_i.(k)) t.starts !ns in
    let w = Array.make t.nrows F.zero in
    t.wstamp_val <- t.wstamp_val + 1;
    t.wpat_n <- 0;
    for idx = tn - 1 downto 0 do
      let k = t.topo.(idx) in
      (* Divide before the sign test: a sub-epsilon numerator over a small
         diagonal can still be a significant solution entry. *)
      let v = F.div t.z.(k) t.udiag.(k) in
      t.z.(k) <- F.zero;
      if F.sign v <> 0 then begin
        let ui = t.u_i.(k) and uv = t.u_v.(k) in
        for e = 0 to Array.length ui - 1 do
          let j = ui.(e) in
          t.z.(j) <- F.sub t.z.(j) (F.mul uv.(e) v)
        done
      end;
      let p = t.q.(k) in
      w.(p) <- v;
      t.wstamp.(p) <- t.wstamp_val;
      t.wpat.(t.wpat_n) <- p;
      t.wpat_n <- t.wpat_n + 1
    done;
    w

  (* Dense-rhs variant of the same solve, for right-hand sides with no
     useful pattern (a session's xb recompute): plain loops over every
     step. *)
  let factor_ftran_dense t =
    let n = t.nrows in
    let x = t.x and z = t.z in
    for k = 0 to n - 1 do
      let xk = x.(t.piv_row.(k)) in
      if F.sign xk <> 0 then begin
        let li = t.l_i.(k) and lv = t.l_v.(k) in
        for e = 0 to Array.length li - 1 do
          let r = li.(e) in
          x.(r) <- F.sub x.(r) (F.mul lv.(e) xk)
        done
      end
    done;
    for k = 0 to n - 1 do
      let pr = t.piv_row.(k) in
      z.(k) <- x.(pr);
      x.(pr) <- F.zero
    done;
    let w = Array.make n F.zero in
    for k = n - 1 downto 0 do
      let v = F.div z.(k) t.udiag.(k) in
      z.(k) <- F.zero;
      if F.sign v <> 0 then begin
        let ui = t.u_i.(k) and uv = t.u_v.(k) in
        for e = 0 to Array.length ui - 1 do
          let j = ui.(e) in
          z.(j) <- F.sub z.(j) (F.mul uv.(e) v)
        done
      end;
      w.(t.q.(k)) <- v
    done;
    w

  (* FTRAN tail: B = B0 E1 ... Ek, so apply the eta inverses
     chronologically.  E^-1 v pivots on er: v_r' = v_r / epiv, then
     v_i' = v_i - e_i v_r'. *)
  let apply_etas_ftran t w =
    for idx = 0 to t.netas - 1 do
      let e = t.etas_arr.(idx) in
      let ur = F.div w.(e.er) e.epiv in
      w.(e.er) <- ur;
      if F.sign ur <> 0 then
        for k = 0 to Array.length e.ei - 1 do
          let i = e.ei.(k) in
          w.(i) <- F.sub w.(i) (F.mul e.ev.(k) ur);
          (* The eta can introduce nonzeros outside the factor pattern;
             extend it (dedup via the stamp) so it stays a superset. *)
          if t.wpat_n >= 0 && t.wstamp.(i) <> t.wstamp_val then begin
            t.wstamp.(i) <- t.wstamp_val;
            t.wpat.(t.wpat_n) <- i;
            t.wpat_n <- t.wpat_n + 1
          end
        done
    done

  let ftran t entries =
    List.iter (fun (i, c) -> t.x.(i) <- F.add t.x.(i) c) entries;
    let w = factor_ftran t entries in
    apply_etas_ftran t w;
    w

  let ftran_dense t rhs =
    Array.blit rhs 0 t.x 0 t.nrows;
    t.wpat_n <- -1;
    let w = factor_ftran_dense t in
    apply_etas_ftran t w;
    w

  let ftran_pattern t = t.wpat
  let ftran_pattern_len t = t.wpat_n

  let btran t c =
    let n = t.nrows in
    let v = Array.copy c in
    (* Eta transposes, newest first: z^T E = v^T fixes only coordinate er,
       z_r = (v_r - sum_i e_i v_i) / epiv. *)
    for idx = t.netas - 1 downto 0 do
      let e = t.etas_arr.(idx) in
      let acc = ref v.(e.er) in
      for k = 0 to Array.length e.ei - 1 do
        let vi = v.(e.ei.(k)) in
        if F.sign vi <> 0 then acc := F.sub !acc (F.mul e.ev.(k) vi)
      done;
      v.(e.er) <- F.div !acc e.epiv
    done;
    (* Then y^T L U = z^T in step space: forward through U^T, backward
       through L^T into physical rows. *)
    let z = t.z in
    for k = 0 to n - 1 do
      z.(k) <- v.(t.q.(k))
    done;
    for k = 0 to n - 1 do
      let ui = t.u_i.(k) and uv = t.u_v.(k) in
      let acc = ref z.(k) in
      for e = 0 to Array.length ui - 1 do
        let zj = z.(ui.(e)) in
        if F.sign zj <> 0 then acc := F.sub !acc (F.mul uv.(e) zj)
      done;
      z.(k) <- F.div !acc t.udiag.(k)
    done;
    let y = Array.make n F.zero in
    for k = n - 1 downto 0 do
      let li = t.l_i.(k) and lv = t.l_v.(k) in
      let acc = ref z.(k) in
      for e = 0 to Array.length li - 1 do
        let yi = y.(li.(e)) in
        if F.sign yi <> 0 then acc := F.sub !acc (F.mul lv.(e) yi)
      done;
      z.(k) <- F.zero;
      y.(t.piv_row.(k)) <- !acc
    done;
    y

  (* Unit-row BTRAN, the dual pivot's hot call: the eta transposes touch
     only their own pivot coordinates, so the nonzero pattern entering the
     factor stays tiny and both transposed triangular solves run
     scatter-form over the reachability of that pattern (via the [ut]/[lt]
     transpose views) instead of every step. *)
  let btran_unit t r =
    let v = t.x in
    v.(r) <- F.one;
    for idx = t.netas - 1 downto 0 do
      let e = t.etas_arr.(idx) in
      let acc = ref v.(e.er) in
      for k = 0 to Array.length e.ei - 1 do
        let vi = v.(e.ei.(k)) in
        if F.sign vi <> 0 then acc := F.sub !acc (F.mul e.ev.(k) vi)
      done;
      v.(e.er) <- F.div !acc e.epiv
    done;
    (* The nonzero positions are confined to [r] and the eta pivot rows;
       permute them into step space (clearing the scratch) as U starts. *)
    t.stamp_val <- t.stamp_val + 1;
    let sv = t.stamp_val in
    let ns = ref 0 in
    let add p =
      if t.stamp.(p) <> sv then begin
        t.stamp.(p) <- sv;
        let vp = v.(p) in
        v.(p) <- F.zero;
        if F.sign vp <> 0 then begin
          let k = t.qinv.(p) in
          t.z.(k) <- vp;
          t.starts.(!ns) <- k;
          incr ns
        end
      end
    in
    add r;
    for idx = 0 to t.netas - 1 do
      add t.etas_arr.(idx).er
    done;
    (* U^T solve: z_k = (v_k - sum over the U^T row) / udiag_k; a finalized
       step scatters into the steps listed by its [ut] row. *)
    let tn = reach_from t (fun j -> t.ut_i.(j)) t.starts !ns in
    let nl = ref 0 in
    for idx = tn - 1 downto 0 do
      let j = t.topo.(idx) in
      let zj = F.div t.z.(j) t.udiag.(j) in
      if F.sign zj <> 0 then begin
        let ti = t.ut_i.(j) and tv = t.ut_v.(j) in
        for e = 0 to Array.length ti - 1 do
          let k = ti.(e) in
          t.z.(k) <- F.sub t.z.(k) (F.mul tv.(e) zj)
        done;
        t.z.(j) <- zj;
        t.starts.(!nl) <- j;
        incr nl
      end
      else t.z.(j) <- F.zero
    done;
    (* L^T solve, same shape without the division; results land on the
       step's pivot row. *)
    let tn = reach_from t (fun j -> t.lt_i.(j)) t.starts !nl in
    let y = Array.make t.nrows F.zero in
    for idx = tn - 1 downto 0 do
      let j = t.topo.(idx) in
      let yj = t.z.(j) in
      t.z.(j) <- F.zero;
      if F.sign yj <> 0 then begin
        let ti = t.lt_i.(j) and tv = t.lt_v.(j) in
        for e = 0 to Array.length ti - 1 do
          let k = ti.(e) in
          t.z.(k) <- F.sub t.z.(k) (F.mul tv.(e) yj)
        done;
        y.(t.piv_row.(j)) <- yj
      end
    done;
    y

  (* [wcol] is the FTRAN image of the entering column — the pattern of the
     kernel's own last FTRAN covers its nonzeros, so the eta extraction
     walks the pattern when one is live and the whole vector otherwise. *)
  let update t ~r ~wcol =
    let n = t.nrows in
    let cnt = ref 0 in
    if t.wpat_n >= 0 then
      for idx = 0 to t.wpat_n - 1 do
        let i = t.wpat.(idx) in
        if i <> r && F.sign wcol.(i) <> 0 then incr cnt
      done
    else
      for i = 0 to n - 1 do
        if i <> r && F.sign wcol.(i) <> 0 then incr cnt
      done;
    let ei = Array.make !cnt 0 and ev = Array.make !cnt F.zero in
    let k = ref 0 in
    if t.wpat_n >= 0 then
      for idx = 0 to t.wpat_n - 1 do
        let i = t.wpat.(idx) in
        if i <> r && F.sign wcol.(i) <> 0 then begin
          ei.(!k) <- i;
          ev.(!k) <- wcol.(i);
          incr k
        end
      done
    else
      for i = 0 to n - 1 do
        if i <> r && F.sign wcol.(i) <> 0 then begin
          ei.(!k) <- i;
          ev.(!k) <- wcol.(i);
          incr k
        end
      done;
    let e = { er = r; epiv = wcol.(r); ei; ev } in
    if t.netas = Array.length t.etas_arr then begin
      let bigger = Array.make (max 16 (2 * t.netas)) dummy_eta in
      Array.blit t.etas_arr 0 bigger 0 t.netas;
      t.etas_arr <- bigger
    end;
    t.etas_arr.(t.netas) <- e;
    t.netas <- t.netas + 1;
    t.eta_nnz <- t.eta_nnz + !cnt + 1

  (* Refactorise on a short eta leash — the sparse rebuild is cheap
     (O(nnz + fill)) — and whenever the eta file outgrows the factor, so
     solve cost cannot creep back towards dense behaviour. *)
  let should_refactor t =
    t.netas >= 64 || t.eta_nnz > max 1024 (4 * (t.factor_nnz + t.nrows))

  let etas t = t.netas

  let stats t =
    {
      factor_nnz = t.factor_nnz;
      basis_nnz = t.basis_nnz;
      etas = t.netas;
      eta_nnz = t.eta_nnz;
    }
end
