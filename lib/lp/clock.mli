(** Wall-clock timing for solver budgets and reported solve times.

    [Sys.time] measures {e processor} time, which both under-reports elapsed
    time on blocking work and over-reports it on multi-threaded work; budgets
    like the paper's ILP(10) cutoff are wall-clock budgets.  Every timer in
    this code base goes through this module so the semantics are uniform.

    The implementation is {!Obs.Clock}: [Unix.gettimeofday] monotonized
    through a global atomic high-water mark, so [now] never goes backwards
    even if NTP steps the wall clock mid-solve, and all durations reported
    by solvers agree with the timestamps in exported traces. *)

val now : unit -> float
(** Monotonically non-decreasing wall-clock seconds since the epoch. *)

val elapsed : float -> float
(** [elapsed t0] is the wall-clock time since [t0 = now ()], in seconds
    (clamped at 0). *)
