(** Wall-clock timing for solver budgets and reported solve times.

    [Sys.time] measures {e processor} time, which both under-reports elapsed
    time on blocking work and over-reports it on multi-threaded work; budgets
    like the paper's ILP(10) cutoff are wall-clock budgets.  Every timer in
    this code base goes through this module so the semantics are uniform.

    The implementation is [Unix.gettimeofday] — the best always-available
    approximation of a monotonic clock without an external dependency.
    Differences of {!now} are only used over solver-scale spans (well under
    NTP-slew scales), where it behaves monotonically in practice. *)

val now : unit -> float
(** Wall-clock seconds since the epoch. *)

val elapsed : float -> float
(** [elapsed t0] is the wall-clock time since [t0 = now ()], in seconds. *)
