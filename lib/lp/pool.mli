(** A dependency-free domain pool for embarrassingly parallel solve batches.

    The paper's batched workloads — responsibility of every tuple, ILP-vs-LP
    sweeps — are families of independent (I)LPs over one shared immutable
    {!Frozen} program, so domain-level parallelism composes with the frozen
    model core for free: the CSR/CSC arrays are shared read-only across
    domains and only per-domain solver state is mutable.

    Design (see DESIGN.md §7): raw [Domain.spawn] workers around a
    mutex/condition work queue; a batch of [tasks] indexed [0..tasks-1] is
    drained by {e chunked self-scheduling} (each participant repeatedly
    claims the next contiguous chunk of indices under the mutex), and every
    task writes its result into the slot of its own index — so the output
    is positionally deterministic no matter which domain ran what, when.
    The submitting domain participates in the batch, a worker exception is
    captured and re-raised in the submitter, and [jobs = 1] degrades to
    plain sequential execution with zero behavioural difference (no domains,
    no locks, tasks run in index order).

    Runs are synchronous and serialised: one batch at a time per pool. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [create ~jobs:0] and the
    CLI's [--jobs 0] resolve to. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (the submitter is the
    remaining participant).  [jobs = 0] (and omitting [jobs]) means
    {!default_jobs}; negative values raise [Invalid_argument]. *)

val jobs : t -> int
(** Total participating domains, including the submitter; always >= 1. *)

val run : ?chunk:int -> t -> tasks:int -> (int -> 'a) -> 'a array
(** [run pool ~tasks f] computes [[| f 0; ...; f (tasks-1) |]], distributing
    the index range over the pool's domains in chunks of [chunk] (default: a
    self-scheduling fraction of [tasks / jobs]).  The result array is
    identical to sequential evaluation for pure [f] regardless of [jobs] or
    [chunk].  If any task raises, remaining chunks are abandoned, in-flight
    tasks finish, and the first exception (in completion order) is re-raised
    here with its backtrace.
    @raise Invalid_argument if the pool has been shut down. *)

val run_init : ?chunk:int -> t -> init:(unit -> 's) -> tasks:int -> ('s -> int -> 'a) -> 'a array
(** [run_init pool ~init ~tasks f] is {!run} with per-domain worker state:
    each participating domain calls [init ()] at most once per batch (before
    its first task) and passes the result to every task it runs — how a
    solve batch gives each domain its own warm simplex session over the
    shared frozen program. *)

val shutdown : t -> unit
(** Graceful shutdown: workers finish the batch in flight (if any), then
    exit and are joined.  Idempotent — repeated and concurrent calls are
    safe, and exactly one caller joins each worker.  After shutdown,
    {!run} raises.  Not async-signal-safe (it takes the pool mutex); from
    a signal handler use {!request_shutdown} instead. *)

val request_shutdown : t -> unit
(** Records a shutdown request without taking any lock — the only pool
    operation safe to call from a signal handler (where {!shutdown}'s
    mutex acquisition could self-deadlock against the interrupted
    thread).  The pool keeps running; the owner is expected to poll
    {!shutdown_requested} from normal context and call {!shutdown}. *)

val shutdown_requested : t -> bool
(** Has {!request_shutdown} (or {!shutdown}) been called? *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] over a fresh pool and shuts it down on the
    way out, exceptions included. *)
