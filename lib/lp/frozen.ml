module Delta = struct
  (* Balanced map keyed by variable.  Responsibility deltas carry one
     override per witness indicator — thousands of entries on large shared
     programs — so [fix] must not pay a linear dedup (an association list
     made building such a delta quadratic and every [find] linear). *)
  module M = Map.Make (Int)

  (* name, integer, upper (None = unbounded), objective *)
  type col_spec = string * bool * int option * int
  type row_spec = Model.sense * int * (Model.var * int) list

  (* Appends are kept as reversed cons-lists so that extending a delta is
     O(1) and monotone chains of deltas share tails physically — which is
     what lets [extends] and [same_appends] short-circuit on [==] in the
     common warm-session case. *)
  type t = {
    fixes : int M.t;
    rcols : col_spec list;  (* reversed *)
    ncols : int;
    rrows : row_spec list;  (* reversed *)
    nrows : int;
  }

  let empty = { fixes = M.empty; rcols = []; ncols = 0; rrows = []; nrows = 0 }
  let release v d = { d with fixes = M.remove v d.fixes }

  let fix v k d =
    if k < 0 then invalid_arg "Frozen.Delta.fix: negative value";
    { d with fixes = M.add v k d.fixes }

  let fix_zero v d = fix v 0 d
  let force_one v d = fix v 1 d
  let is_empty d = M.is_empty d.fixes && d.ncols = 0 && d.nrows = 0
  let find d v = M.find_opt v d.fixes
  let bindings d = M.bindings d.fixes

  let append_col ?(integer = false) ?upper ~name ~obj d =
    (match upper with
    | Some u when u < 0 -> invalid_arg "Frozen.Delta.append_col: negative upper bound"
    | _ -> ());
    { d with rcols = (name, integer, upper, obj) :: d.rcols; ncols = d.ncols + 1 }

  let append_row sense rhs expr d =
    let prev = ref (-1) in
    List.iter
      (fun (v, c) ->
        if v < 0 then invalid_arg "Frozen.Delta.append_row: negative variable";
        if v <= !prev then invalid_arg "Frozen.Delta.append_row: row not in normal form";
        if c = 0 then invalid_arg "Frozen.Delta.append_row: zero coefficient";
        prev := v)
      expr;
    { d with rrows = (sense, rhs, expr) :: d.rrows; nrows = d.nrows + 1 }

  let num_appended_cols d = d.ncols
  let num_appended_rows d = d.nrows
  let has_appends d = d.ncols > 0 || d.nrows > 0
  let appended_cols d = List.rev d.rcols
  let appended_rows d = List.rev d.rrows
  let clear_appends d = { d with rcols = []; ncols = 0; rrows = []; nrows = 0 }

  let same_appends d1 d2 =
    d1.ncols = d2.ncols && d1.nrows = d2.nrows
    && (d1.rcols == d2.rcols || d1.rcols = d2.rcols)
    && (d1.rrows == d2.rrows || d1.rrows = d2.rrows)

  let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

  let extends ~prefix d =
    d.ncols >= prefix.ncols && d.nrows >= prefix.nrows
    && (let tc = drop (d.ncols - prefix.ncols) d.rcols in
        tc == prefix.rcols || tc = prefix.rcols)
    &&
    let tr = drop (d.nrows - prefix.nrows) d.rrows in
    tr == prefix.rrows || tr = prefix.rrows
end

type t = {
  nvars : int;
  nrows : int;
  nnz : int;
  (* CSR *)
  row_start : int array;  (* nrows + 1 *)
  row_col : int array;
  row_coef : int array;
  sense : Model.sense array;
  rhs : int array;
  (* CSC *)
  col_start : int array;  (* nvars + 1 *)
  col_row : int array;
  col_coef : int array;
  (* per-variable *)
  obj : int array;
  upper : int array;  (* -1 encodes "no upper bound" *)
  integer : bool array;
  names : string array;
}

let num_vars t = t.nvars
let num_rows t = t.nrows
let nnz t = t.nnz
let objective t v = t.obj.(v)
let upper t v = if t.upper.(v) < 0 then None else Some t.upper.(v)
let is_integer t v = t.integer.(v)
let var_name t v = t.names.(v)

let integer_vars t =
  let rec go v acc = if v < 0 then acc else go (v - 1) (if t.integer.(v) then v :: acc else acc) in
  go (t.nvars - 1) []

let row_sense t i = t.sense.(i)
let row_rhs t i = t.rhs.(i)
let row_size t i = t.row_start.(i + 1) - t.row_start.(i)

let iter_row t i f =
  for k = t.row_start.(i) to t.row_start.(i + 1) - 1 do
    f t.row_col.(k) t.row_coef.(k)
  done

let row_expr t i =
  let acc = ref [] in
  for k = t.row_start.(i + 1) - 1 downto t.row_start.(i) do
    acc := (t.row_col.(k), t.row_coef.(k)) :: !acc
  done;
  !acc

let col_size t v = t.col_start.(v + 1) - t.col_start.(v)

let iter_col t v f =
  for k = t.col_start.(v) to t.col_start.(v + 1) - 1 do
    f t.col_row.(k) t.col_coef.(k)
  done

(* Build the CSC arrays from the finished CSR arrays by counting sort. *)
let build_csc t =
  let counts = Array.make (t.nvars + 1) 0 in
  for k = 0 to t.nnz - 1 do
    counts.(t.row_col.(k) + 1) <- counts.(t.row_col.(k) + 1) + 1
  done;
  for v = 1 to t.nvars do
    counts.(v) <- counts.(v) + counts.(v - 1)
  done;
  Array.blit counts 0 t.col_start 0 (t.nvars + 1);
  let cursor = Array.copy counts in
  for i = 0 to t.nrows - 1 do
    for k = t.row_start.(i) to t.row_start.(i + 1) - 1 do
      let v = t.row_col.(k) in
      t.col_row.(cursor.(v)) <- i;
      t.col_coef.(cursor.(v)) <- t.row_coef.(k);
      cursor.(v) <- cursor.(v) + 1
    done
  done

let make ~names ~integer ~upper ~obj ~rows =
  let nvars = Array.length names in
  if Array.length integer <> nvars || Array.length upper <> nvars || Array.length obj <> nvars
  then invalid_arg "Frozen.make: per-variable array length mismatch";
  let nrows = Array.length rows in
  let nnz = Array.fold_left (fun acc (_, _, expr) -> acc + List.length expr) 0 rows in
  let t =
    {
      nvars;
      nrows;
      nnz;
      row_start = Array.make (nrows + 1) 0;
      row_col = Array.make nnz 0;
      row_coef = Array.make nnz 0;
      sense = Array.make nrows Model.Geq;
      rhs = Array.make nrows 0;
      col_start = Array.make (nvars + 1) 0;
      col_row = Array.make nnz 0;
      col_coef = Array.make nnz 0;
      obj = Array.copy obj;
      upper =
        Array.map
          (function
            | Some u when u >= 0 -> u
            | Some _ -> invalid_arg "Frozen.make: negative upper bound"
            | None -> -1)
          upper;
      integer = Array.copy integer;
      names = Array.copy names;
    }
  in
  let k = ref 0 in
  Array.iteri
    (fun i (sense, rhs, expr) ->
      t.sense.(i) <- sense;
      t.rhs.(i) <- rhs;
      t.row_start.(i) <- !k;
      let prev = ref (-1) in
      List.iter
        (fun (v, c) ->
          if v < 0 || v >= nvars then invalid_arg "Frozen.make: variable out of range";
          if v <= !prev then invalid_arg "Frozen.make: row not in normal form";
          if c = 0 then invalid_arg "Frozen.make: zero coefficient";
          prev := v;
          t.row_col.(!k) <- v;
          t.row_coef.(!k) <- c;
          incr k)
        expr)
    rows;
  t.row_start.(nrows) <- !k;
  build_csc t;
  t

let of_model m =
  let n = Model.num_vars m in
  make
    ~names:(Array.init n (Model.var_name m))
    ~integer:(Array.init n (Model.is_integer m))
    ~upper:(Array.init n (Model.upper m))
    ~obj:(Array.init n (Model.objective m))
    ~rows:
      (Array.map
         (fun (c : Model.constr) -> (c.Model.sense, c.Model.rhs, c.Model.expr))
         (Model.constraints m))

let to_model t =
  let m = Model.create () in
  for v = 0 to t.nvars - 1 do
    let integer = t.integer.(v) in
    let vu = if t.upper.(v) < 0 then None else Some t.upper.(v) in
    let v' =
      match vu with
      | Some u -> Model.add_var ~name:t.names.(v) ~integer ~upper:u ~obj:t.obj.(v) m
      | None ->
        if integer then begin
          (* An integer variable whose (provably redundant) bound was
             stripped by presolve: re-enter through the checked constructor,
             then relax — the hand-off Model.relax_upper documents. *)
          let v' = Model.add_var ~name:t.names.(v) ~integer ~upper:1 ~obj:t.obj.(v) m in
          Model.relax_upper m v';
          v'
        end
        else Model.add_var ~name:t.names.(v) ~obj:t.obj.(v) m
    in
    assert (v' = v)
  done;
  for i = 0 to t.nrows - 1 do
    Model.add_constr m (row_expr t i) t.sense.(i) t.rhs.(i)
  done;
  m

let extend t (d : Delta.t) =
  if not (Delta.has_appends d) then t
  else begin
    let acols = Array.of_list (Delta.appended_cols d) in
    let names = Array.append t.names (Array.map (fun (n, _, _, _) -> n) acols) in
    let integer = Array.append t.integer (Array.map (fun (_, i, _, _) -> i) acols) in
    let upper =
      Array.append
        (Array.map (fun u -> if u < 0 then None else Some u) t.upper)
        (Array.map (fun (_, _, u, _) -> u) acols)
    in
    let obj = Array.append t.obj (Array.map (fun (_, _, _, o) -> o) acols) in
    let base_rows = Array.init t.nrows (fun i -> (t.sense.(i), t.rhs.(i), row_expr t i)) in
    let rows = Array.append base_rows (Array.of_list (Delta.appended_rows d)) in
    make ~names ~integer ~upper ~obj ~rows
  end

let check_feasible ?(eps = 1e-6) ?(delta = Delta.empty) t x =
  let t = if Delta.has_appends delta then extend t delta else t in
  let ok = ref true in
  for i = 0 to t.nrows - 1 do
    let lhs = ref 0.0 in
    iter_row t i (fun v c -> lhs := !lhs +. (float_of_int c *. x.(v)));
    let frhs = float_of_int t.rhs.(i) in
    let sat =
      match t.sense.(i) with
      | Model.Geq -> !lhs >= frhs -. eps
      | Model.Leq -> !lhs <= frhs +. eps
      | Model.Eq -> Float.abs (!lhs -. frhs) <= eps
    in
    if not sat then ok := false
  done;
  List.iter
    (fun (v, k) -> if Float.abs (x.(v) -. float_of_int k) > eps then ok := false)
    (Delta.bindings delta);
  for v = 0 to t.nvars - 1 do
    if x.(v) < -.eps then ok := false;
    if t.upper.(v) >= 0 && x.(v) > float_of_int t.upper.(v) +. eps then ok := false
  done;
  !ok
