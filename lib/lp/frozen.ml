module Delta = struct
  (* Balanced map keyed by variable.  Responsibility deltas carry one
     override per witness indicator — thousands of entries on large shared
     programs — so [fix] must not pay a linear dedup (an association list
     made building such a delta quadratic and every [find] linear). *)
  module M = Map.Make (Int)

  type t = int M.t

  let empty = M.empty
  let release = M.remove

  let fix v k d =
    if k < 0 then invalid_arg "Frozen.Delta.fix: negative value";
    M.add v k d

  let fix_zero v d = fix v 0 d
  let force_one v d = fix v 1 d
  let is_empty = M.is_empty
  let find d v = M.find_opt v d
  let bindings = M.bindings
end

type t = {
  nvars : int;
  nrows : int;
  nnz : int;
  (* CSR *)
  row_start : int array;  (* nrows + 1 *)
  row_col : int array;
  row_coef : int array;
  sense : Model.sense array;
  rhs : int array;
  (* CSC *)
  col_start : int array;  (* nvars + 1 *)
  col_row : int array;
  col_coef : int array;
  (* per-variable *)
  obj : int array;
  upper : int array;  (* -1 encodes "no upper bound" *)
  integer : bool array;
  names : string array;
}

let num_vars t = t.nvars
let num_rows t = t.nrows
let nnz t = t.nnz
let objective t v = t.obj.(v)
let upper t v = if t.upper.(v) < 0 then None else Some t.upper.(v)
let is_integer t v = t.integer.(v)
let var_name t v = t.names.(v)

let integer_vars t =
  let rec go v acc = if v < 0 then acc else go (v - 1) (if t.integer.(v) then v :: acc else acc) in
  go (t.nvars - 1) []

let row_sense t i = t.sense.(i)
let row_rhs t i = t.rhs.(i)
let row_size t i = t.row_start.(i + 1) - t.row_start.(i)

let iter_row t i f =
  for k = t.row_start.(i) to t.row_start.(i + 1) - 1 do
    f t.row_col.(k) t.row_coef.(k)
  done

let row_expr t i =
  let acc = ref [] in
  for k = t.row_start.(i + 1) - 1 downto t.row_start.(i) do
    acc := (t.row_col.(k), t.row_coef.(k)) :: !acc
  done;
  !acc

let col_size t v = t.col_start.(v + 1) - t.col_start.(v)

let iter_col t v f =
  for k = t.col_start.(v) to t.col_start.(v + 1) - 1 do
    f t.col_row.(k) t.col_coef.(k)
  done

(* Build the CSC arrays from the finished CSR arrays by counting sort. *)
let build_csc t =
  let counts = Array.make (t.nvars + 1) 0 in
  for k = 0 to t.nnz - 1 do
    counts.(t.row_col.(k) + 1) <- counts.(t.row_col.(k) + 1) + 1
  done;
  for v = 1 to t.nvars do
    counts.(v) <- counts.(v) + counts.(v - 1)
  done;
  Array.blit counts 0 t.col_start 0 (t.nvars + 1);
  let cursor = Array.copy counts in
  for i = 0 to t.nrows - 1 do
    for k = t.row_start.(i) to t.row_start.(i + 1) - 1 do
      let v = t.row_col.(k) in
      t.col_row.(cursor.(v)) <- i;
      t.col_coef.(cursor.(v)) <- t.row_coef.(k);
      cursor.(v) <- cursor.(v) + 1
    done
  done

let make ~names ~integer ~upper ~obj ~rows =
  let nvars = Array.length names in
  if Array.length integer <> nvars || Array.length upper <> nvars || Array.length obj <> nvars
  then invalid_arg "Frozen.make: per-variable array length mismatch";
  let nrows = Array.length rows in
  let nnz = Array.fold_left (fun acc (_, _, expr) -> acc + List.length expr) 0 rows in
  let t =
    {
      nvars;
      nrows;
      nnz;
      row_start = Array.make (nrows + 1) 0;
      row_col = Array.make nnz 0;
      row_coef = Array.make nnz 0;
      sense = Array.make nrows Model.Geq;
      rhs = Array.make nrows 0;
      col_start = Array.make (nvars + 1) 0;
      col_row = Array.make nnz 0;
      col_coef = Array.make nnz 0;
      obj = Array.copy obj;
      upper =
        Array.map
          (function
            | Some u when u >= 0 -> u
            | Some _ -> invalid_arg "Frozen.make: negative upper bound"
            | None -> -1)
          upper;
      integer = Array.copy integer;
      names = Array.copy names;
    }
  in
  let k = ref 0 in
  Array.iteri
    (fun i (sense, rhs, expr) ->
      t.sense.(i) <- sense;
      t.rhs.(i) <- rhs;
      t.row_start.(i) <- !k;
      let prev = ref (-1) in
      List.iter
        (fun (v, c) ->
          if v < 0 || v >= nvars then invalid_arg "Frozen.make: variable out of range";
          if v <= !prev then invalid_arg "Frozen.make: row not in normal form";
          if c = 0 then invalid_arg "Frozen.make: zero coefficient";
          prev := v;
          t.row_col.(!k) <- v;
          t.row_coef.(!k) <- c;
          incr k)
        expr)
    rows;
  t.row_start.(nrows) <- !k;
  build_csc t;
  t

let of_model m =
  let n = Model.num_vars m in
  make
    ~names:(Array.init n (Model.var_name m))
    ~integer:(Array.init n (Model.is_integer m))
    ~upper:(Array.init n (Model.upper m))
    ~obj:(Array.init n (Model.objective m))
    ~rows:
      (Array.map
         (fun (c : Model.constr) -> (c.Model.sense, c.Model.rhs, c.Model.expr))
         (Model.constraints m))

let to_model t =
  let m = Model.create () in
  for v = 0 to t.nvars - 1 do
    let integer = t.integer.(v) in
    let vu = if t.upper.(v) < 0 then None else Some t.upper.(v) in
    let v' =
      match vu with
      | Some u -> Model.add_var ~name:t.names.(v) ~integer ~upper:u ~obj:t.obj.(v) m
      | None ->
        if integer then begin
          (* An integer variable whose (provably redundant) bound was
             stripped by presolve: re-enter through the checked constructor,
             then relax — the hand-off Model.relax_upper documents. *)
          let v' = Model.add_var ~name:t.names.(v) ~integer ~upper:1 ~obj:t.obj.(v) m in
          Model.relax_upper m v';
          v'
        end
        else Model.add_var ~name:t.names.(v) ~obj:t.obj.(v) m
    in
    assert (v' = v)
  done;
  for i = 0 to t.nrows - 1 do
    Model.add_constr m (row_expr t i) t.sense.(i) t.rhs.(i)
  done;
  m

let check_feasible ?(eps = 1e-6) ?(delta = Delta.empty) t x =
  let ok = ref true in
  for i = 0 to t.nrows - 1 do
    let lhs = ref 0.0 in
    iter_row t i (fun v c -> lhs := !lhs +. (float_of_int c *. x.(v)));
    let frhs = float_of_int t.rhs.(i) in
    let sat =
      match t.sense.(i) with
      | Model.Geq -> !lhs >= frhs -. eps
      | Model.Leq -> !lhs <= frhs +. eps
      | Model.Eq -> Float.abs (!lhs -. frhs) <= eps
    in
    if not sat then ok := false
  done;
  List.iter
    (fun (v, k) -> if Float.abs (x.(v) -. float_of_int k) > eps then ok := false)
    (Delta.bindings delta);
  for v = 0 to t.nvars - 1 do
    if x.(v) < -.eps then ok := false;
    if t.upper.(v) >= 0 && x.(v) > float_of_int t.upper.(v) +. eps then ok := false
  done;
  !ok
