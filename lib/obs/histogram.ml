(* Log-linear bounded-relative-error histogram (HdrHistogram-style
   buckets).  Each power-of-two octave of the value range is subdivided
   into [sub] equal-width linear buckets, so reporting a bucket's midpoint
   is off from any sample in the bucket by at most 1/(2*sub) relative — a
   bound that holds at every quantile and survives merging, unlike a
   sampled or sorted-array reducer.

   Recording is sharded: each domain hashes to one of [nshards] shard
   arrays of atomic cells, so concurrent observers contend only within a
   shard.  Every cell is an integer and merging is integer addition —
   commutative and associative — so a merged snapshot is bit-identical
   regardless of how observations were spread over shards, i.e. identical
   at every job count for the same multiset of values. *)

let sub_bits = 4
let sub = 1 lsl sub_bits (* 16 linear sub-buckets per octave *)

(* frexp exponents covered: [e_min, e_max] spans ~2.3e-10 .. ~2.1e9, wide
   enough for seconds-scale latencies and pivot/node counts alike.  Values
   outside clamp to the first/last bucket. *)
let e_min = -31
let e_max = 31
let nbuckets = (e_max - e_min + 1) * sub

(* Relative half-width of one bucket: the error bound of [percentile]. *)
let rel_error = 1. /. float_of_int (2 * sub)

(* Fixed-point scale for the running sum (micro-units).  An integer sum
   keeps the merge deterministic; saturating addition keeps overflow from
   wrapping (saturation commutes for non-negative addends, so determinism
   survives it). *)
let sum_scale = 1e6

let nshards = 8

type shard = { counts : int Atomic.t array; total : int Atomic.t; sum_fp : int Atomic.t }

type t = { shards : shard array }

let create () =
  {
    shards =
      Array.init nshards (fun _ ->
          {
            counts = Array.init nbuckets (fun _ -> Atomic.make 0);
            total = Atomic.make 0;
            sum_fp = Atomic.make 0;
          });
  }

let index_of v =
  if not (v > 0.) || Float.is_nan v then 0
  else begin
    let m, e = Float.frexp v in
    (* v = m * 2^e with m in [0.5, 1) *)
    if e < e_min then 0
    else if e > e_max then nbuckets - 1
    else begin
      let s = int_of_float ((m -. 0.5) *. float_of_int (2 * sub)) in
      let s = if s < 0 then 0 else if s >= sub then sub - 1 else s in
      ((e - e_min) * sub) + s
    end
  end

(* Bucket midpoint: the value reported for any sample in the bucket. *)
let value_of idx =
  let e = (idx / sub) + e_min and s = idx mod sub in
  Float.ldexp (0.5 +. ((float_of_int s +. 0.5) /. float_of_int (2 * sub))) e

let upper_of idx =
  let e = (idx / sub) + e_min and s = idx mod sub in
  Float.ldexp (0.5 +. (float_of_int (s + 1) /. float_of_int (2 * sub))) e

let rec add_sat cell d =
  let v = Atomic.get cell in
  let nv = if v > max_int - d then max_int else v + d in
  if not (Atomic.compare_and_set cell v nv) then add_sat cell d

let fixed_point v =
  if not (v > 0.) || Float.is_nan v then 0
  else int_of_float (Float.min v 1e12 *. sum_scale)

let observe t v =
  let s = t.shards.((Domain.self () :> int) land (nshards - 1)) in
  Atomic.incr s.counts.(index_of v);
  Atomic.incr s.total;
  add_sat s.sum_fp (fixed_point v)

let reset t =
  Array.iter
    (fun s ->
      Array.iter (fun c -> Atomic.set c 0) s.counts;
      Atomic.set s.total 0;
      Atomic.set s.sum_fp 0)
    t.shards

(* A snapshot is all integers, so [=] decides bit-identity of merges. *)
type snapshot = { total : int; sum_fp : int; buckets : (int * int) list }

let snapshot t =
  let total = ref 0 and sum_fp = ref 0 in
  let buckets = ref [] in
  for idx = nbuckets - 1 downto 0 do
    let c =
      Array.fold_left (fun acc s -> acc + Atomic.get s.counts.(idx)) 0 t.shards
    in
    if c > 0 then buckets := (idx, c) :: !buckets
  done;
  Array.iter
    (fun (s : shard) ->
      total := !total + Atomic.get s.total;
      let f = Atomic.get s.sum_fp in
      sum_fp := (if !sum_fp > max_int - f then max_int else !sum_fp + f))
    t.shards;
  { total = !total; sum_fp = !sum_fp; buckets = !buckets }

let count t = (snapshot t).total
let sum_of (s : snapshot) = float_of_int s.sum_fp /. sum_scale
let sum t = sum_of (snapshot t)

let merge a b =
  let rec go xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | (i, c) :: xs', (j, d) :: ys' ->
      if i < j then (i, c) :: go xs' ys
      else if j < i then (j, d) :: go xs ys'
      else (i, c + d) :: go xs' ys'
  in
  {
    total = a.total + b.total;
    sum_fp = (if a.sum_fp > max_int - b.sum_fp then max_int else a.sum_fp + b.sum_fp);
    buckets = go a.buckets b.buckets;
  }

(* Quantile by rank: the reported value is the midpoint of the bucket
   holding the ceil(p/100 * n)-th smallest sample (1-based), the same
   convention as a no-interpolation sorted-array oracle. *)
let percentile_of (s : snapshot) p =
  if s.total = 0 then nan
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100. *. float_of_int s.total)) in
      if r < 1 then 1 else if r > s.total then s.total else r
    in
    let rec walk cum = function
      | [] -> value_of (nbuckets - 1)
      | (idx, c) :: rest -> if cum + c >= rank then value_of idx else walk (cum + c) rest
    in
    walk 0 s.buckets
  end

let percentile t p = percentile_of (snapshot t) p

(* Cumulative count of samples at or below [v] (by bucket upper edge) —
   the reading behind Prometheus [le] buckets. *)
let cumulative_le (s : snapshot) v =
  List.fold_left (fun acc (idx, c) -> if upper_of idx <= v then acc + c else acc) 0 s.buckets
