let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let args_json args =
  args
  |> List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
  |> String.concat ","

(* Chrome "X" (complete) events only: no begin/end pairing to get wrong, and
   Perfetto nests overlapping completes on the same track automatically. *)
let write_chrome oc (spans : Trace.span list) =
  let origin = List.fold_left (fun acc s -> Float.min acc s.Trace.t0) infinity spans in
  let doms =
    List.sort_uniq compare (List.map (fun s -> s.Trace.dom) spans)
  in
  output_string oc "{\"traceEvents\":[";
  let first = ref true in
  let emit line =
    if not !first then output_string oc ",";
    first := false;
    output_string oc "\n";
    output_string oc line
  in
  List.iter
    (fun d ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
           d d))
    doms;
  List.iter
    (fun (s : Trace.span) ->
      let ts = (s.t0 -. origin) *. 1e6 in
      let dur = Float.max 0. (s.t1 -. s.t0) *. 1e6 in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"resil\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{%s}}"
           (json_escape s.name) ts dur s.dom (args_json s.args)))
    spans;
  output_string oc "\n]}\n"

let chrome_to_file path spans =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_chrome oc spans)

let stats_json (spans : Trace.span list) =
  let agg = Hashtbl.create 16 in
  List.iter
    (fun (s : Trace.span) ->
      let count, total =
        match Hashtbl.find_opt agg s.Trace.name with Some ct -> ct | None -> (0, 0.)
      in
      Hashtbl.replace agg s.Trace.name (count + 1, total +. Float.max 0. (s.t1 -. s.t0)))
    spans;
  let span_rows =
    Hashtbl.fold (fun name ct acc -> (name, ct) :: acc) agg []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, (count, total)) ->
         Printf.sprintf "    \"%s\": {\"count\": %d, \"total_s\": %.6f}" (json_escape name) count
           total)
  in
  let counter_rows =
    Counter.snapshot ()
    |> List.map (fun (name, v) -> Printf.sprintf "    \"%s\": %d" (json_escape name) v)
  in
  let wall =
    match spans with
    | [] -> 0.
    | _ ->
      let lo = List.fold_left (fun acc s -> Float.min acc s.Trace.t0) infinity spans in
      let hi = List.fold_left (fun acc s -> Float.max acc s.Trace.t1) neg_infinity spans in
      Float.max 0. (hi -. lo)
  in
  Printf.sprintf "{\n  \"counters\": {\n%s\n  },\n  \"spans\": {\n%s\n  },\n  \"wall_s\": %.6f\n}"
    (String.concat ",\n" counter_rows)
    (String.concat ",\n" span_rows)
    wall
