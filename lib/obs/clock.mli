(** Monotonized wall clock shared by every duration in the system.

    OCaml's stdlib exposes no monotonic clock without external deps, so we
    monotonize [Unix.gettimeofday]: a global high-water mark (stored as an
    atomic int64 of the float's bits) guarantees [now] never goes backwards,
    even across domains, if the wall clock is stepped by NTP.  All spans,
    time limits and reported durations in the repo go through this module
    (re-exported as [Lp.Clock]), so traces and stats are mutually
    consistent. *)

val now : unit -> float
(** Monotonically non-decreasing timestamp in seconds.  The origin is the
    Unix epoch, so absolute values are meaningful for humans; only
    differences are contractual. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0], clamped at 0. *)
