type span = {
  name : string;
  dom : int;
  t0 : float;
  t1 : float;
  args : (string * string) list;
}

(* Each domain appends to its own buffer; a tiny per-buffer mutex makes the
   (quiescent-time) drain race-free without serializing recording across
   domains.  Buffers are registered in a global list at first use and never
   removed, so spans survive the death of the pool domain that wrote them. *)
type buf = { mutable spans : span list; mu : Mutex.t }

let all_bufs : buf list ref = ref []
let all_mu = Mutex.create ()

let () =
  Sink.on_install (fun () ->
    Mutex.lock all_mu;
    List.iter
      (fun b ->
        Mutex.lock b.mu;
        b.spans <- [];
        Mutex.unlock b.mu)
      !all_bufs;
    Mutex.unlock all_mu)

let key =
  Domain.DLS.new_key (fun () ->
    let b = { spans = []; mu = Mutex.create () } in
    Mutex.lock all_mu;
    all_bufs := b :: !all_bufs;
    Mutex.unlock all_mu;
    b)

let record name t0 t1 args =
  let b = Domain.DLS.get key in
  let s = { name; dom = (Domain.self () :> int); t0; t1; args } in
  Mutex.lock b.mu;
  b.spans <- s :: b.spans;
  Mutex.unlock b.mu

let with_span ?args name f =
  if not (Sink.active ()) then f ()
  else begin
    let t0 = Clock.now () in
    let finish () =
      let a = match args with None -> [] | Some thunk -> thunk () in
      record name t0 (Clock.now ()) a
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let begin_ () = if Sink.active () then Clock.now () else nan
let end_ t0 ?(args = []) name = if not (Float.is_nan t0) then record name t0 (Clock.now ()) args

let instant ?(args = []) name =
  if Sink.active () then begin
    let t = Clock.now () in
    record name t t args
  end

let drain () =
  Mutex.lock all_mu;
  let bufs = !all_bufs in
  Mutex.unlock all_mu;
  let spans =
    List.concat_map
      (fun b ->
        Mutex.lock b.mu;
        let s = b.spans in
        b.spans <- [];
        Mutex.unlock b.mu;
        s)
      bufs
  in
  List.sort (fun a b -> compare (a.t0, a.dom) (b.t0, b.dom)) spans
