(** Append-only JSONL run-log of per-solve records — the
    feature→runtime corpus for the adaptive solver portfolio (ROADMAP).

    Schema: each [enable] appends one {e versioned header line}
    [{"runlog":"resil-solve","version":N}] marking a run boundary, then
    the solve paths ([Resilience.Session.run_engine],
    [Resilience.Solve.run_bb]) append one record per solve: the
    [Lp.Struct] feature vector of the solved program, the dispatch path
    taken (certified / branch-and-bound / relaxation), and the outcome
    (status, objective, nodes, pivots, refactors, wall seconds).
    Consumers must skip records from header versions they do not know.

    While disabled, an instrumented site costs one atomic load and builds
    nothing ({!record} takes a thunk).  Writing is mutex-serialized and
    line-buffered, so records from parallel rankings interleave whole. *)

val schema_version : int

type field = I of int | F of float | B of bool | S of string

val enable : string -> unit
(** Open [path] for append (creating it if needed) and write the header
    line.  Replaces any previously enabled log. *)

val disable : unit -> unit
val enabled : unit -> bool
val path : unit -> string option

val record : (unit -> (string * field) list) -> unit
(** Append one record; the thunk runs only when enabled.  Fields render
    in the given order; floats as ["%.6f"] (non-finite as [null]). *)
