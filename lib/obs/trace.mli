(** Per-domain span buffers merged at drain time.

    A span is a completed interval [(t0, t1)] on one domain's track, with a
    static name and optional key/value args.  Recording appends to a buffer
    local to the recording domain (created lazily via [Domain.DLS] and kept
    alive past domain exit), so tracing adds no cross-domain contention; the
    single submitter merges and sorts all buffers at [drain].  Nothing is
    recorded while no sink is installed — [with_span] then just runs its
    body. *)

type span = {
  name : string;
  dom : int;  (** recording domain's id — one Perfetto track per value *)
  t0 : float;
  t1 : float;
  args : (string * string) list;
}

val with_span : ?args:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and, if the sink is active, records the
    interval it occupied (also on exception, which is re-raised).  [args] is
    a thunk so argument rendering costs nothing when disabled. *)

val begin_ : unit -> float
(** Explicit open of a span: [Clock.now ()] if the sink is active, [nan]
    otherwise.  For call sites where a closure per span would be awkward. *)

val end_ : float -> ?args:(string * string) list -> string -> unit
(** [end_ t0 name] records [(t0, now)] under [name]; no-op when [t0] is the
    [nan] returned by a disabled [begin_]. *)

val instant : ?args:(string * string) list -> string -> unit
(** Zero-duration marker event on the current domain's track. *)

val drain : unit -> span list
(** Take every buffered span from every domain that recorded any, sorted by
    start time, and clear the buffers.  Call only when worker domains are
    quiescent (after pool tasks complete). *)
