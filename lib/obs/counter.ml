type t = { name : string; cell : int Atomic.t }

let registry : (string, t) Hashtbl.t = Hashtbl.create 64
let registry_mu = Mutex.create ()

let () =
  Sink.on_install (fun () ->
    Mutex.lock registry_mu;
    Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) registry;
    Mutex.unlock registry_mu)

let create name =
  Mutex.lock registry_mu;
  let c =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
      let c = { name; cell = Atomic.make 0 } in
      Hashtbl.add registry name c;
      c
  in
  Mutex.unlock registry_mu;
  c

let incr c = if Sink.recording () then Atomic.incr c.cell
let add c n = if Sink.recording () then ignore (Atomic.fetch_and_add c.cell n)

let record_max c n =
  if Sink.recording () then begin
    let rec go () =
      let seen = Atomic.get c.cell in
      if n > seen && not (Atomic.compare_and_set c.cell seen n) then go ()
    in
    go ()
  end

let value c = Atomic.get c.cell

let snapshot () =
  Mutex.lock registry_mu;
  let xs = Hashtbl.fold (fun _ c acc -> (c.name, Atomic.get c.cell) :: acc) registry [] in
  Mutex.unlock registry_mu;
  List.sort (fun (a, _) (b, _) -> String.compare a b) xs
