(* Typed metric registry: counters, gauges and histograms under static
   label sets, with snapshot isolation (a snapshot reads each cell once
   into an immutable view) and two exposition formats — Prometheus text
   and flat JSON — both with a run-independent shape: every registered
   instrument is always exposed (zero-valued when untouched) and
   histograms render against a fixed bucket ladder, so digit-normalized
   goldens are stable across runs and job counts.

   Instruments are registered at module-init time like counters (creation
   is idempotent per (name, labels)); recording is gated on
   [Sink.recording], so an un-armed process pays one atomic load per
   site. *)

type counter = int Atomic.t
type gauge = float Atomic.t
type histogram = Histogram.t

type instrument = Icounter of counter | Igauge of gauge | Ihist of histogram

type entry = { ename : string; ehelp : string; elabels : (string * string) list; einst : instrument }

let registry : (string * (string * string) list, entry) Hashtbl.t = Hashtbl.create 64
let registry_mu = Mutex.create ()

let () =
  Sink.on_install (fun () ->
    Mutex.lock registry_mu;
    Hashtbl.iter
      (fun _ e ->
        match e.einst with
        | Icounter c -> Atomic.set c 0
        | Igauge g -> Atomic.set g 0.
        | Ihist h -> Histogram.reset h)
      registry;
    Mutex.unlock registry_mu)

let register ?(help = "") ?(labels = []) name make same =
  let labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  Mutex.lock registry_mu;
  let r =
    match Hashtbl.find_opt registry (name, labels) with
    | Some e -> (
      match same e.einst with
      | Some v -> v
      | None ->
        Mutex.unlock registry_mu;
        invalid_arg (Printf.sprintf "Obs.Metrics: %S re-registered with a different kind" name))
    | None ->
      let inst, v = make () in
      Hashtbl.add registry (name, labels)
        { ename = name; ehelp = help; elabels = labels; einst = inst };
      v
  in
  Mutex.unlock registry_mu;
  r

let counter ?help ?labels name =
  register ?help ?labels name
    (fun () ->
      let c = Atomic.make 0 in
      (Icounter c, c))
    (function Icounter c -> Some c | Igauge _ | Ihist _ -> None)

let gauge ?help ?labels name =
  register ?help ?labels name
    (fun () ->
      let g = Atomic.make 0. in
      (Igauge g, g))
    (function Igauge g -> Some g | Icounter _ | Ihist _ -> None)

let histogram ?help ?labels name =
  register ?help ?labels name
    (fun () ->
      let h = Histogram.create () in
      (Ihist h, h))
    (function Ihist h -> Some h | Icounter _ | Igauge _ -> None)

let incr c = if Sink.recording () then Atomic.incr c
let add c n = if Sink.recording () then ignore (Atomic.fetch_and_add c n)
let set g v = if Sink.recording () then Atomic.set g v
let observe h v = if Sink.recording () then Histogram.observe h v

(* --- snapshots ------------------------------------------------------------ *)

type value = Vcounter of int | Vgauge of float | Vhist of Histogram.snapshot

type series = {
  sname : string;
  shelp : string;
  slabels : (string * string) list;
  svalue : value;
}

let snapshot () =
  Mutex.lock registry_mu;
  let xs =
    Hashtbl.fold
      (fun _ e acc ->
        let v =
          match e.einst with
          | Icounter c -> Vcounter (Atomic.get c)
          | Igauge g -> Vgauge (Atomic.get g)
          | Ihist h -> Vhist (Histogram.snapshot h)
        in
        { sname = e.ename; shelp = e.ehelp; slabels = e.elabels; svalue = v } :: acc)
      registry []
  in
  Mutex.unlock registry_mu;
  List.sort (fun a b -> compare (a.sname, a.slabels) (b.sname, b.slabels)) xs

(* --- exposition ----------------------------------------------------------- *)

(* Fixed ladder shared by every histogram: the exposition's shape never
   depends on which buckets a run happened to populate. *)
let ladder = [ 1e-4; 1e-3; 1e-2; 0.1; 1.; 10.; 100.; 1e3; 1e4; 1e5 ]

let quantiles = [ ("p50", 50.); ("p90", 90.); ("p99", 99.); ("p999", 99.9) ]

let quantile_or_zero s p = if s.Histogram.total = 0 then 0. else Histogram.percentile_of s p

let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels = function
  | [] -> ""
  | ls ->
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize k) (escape v)) ls)
    ^ "}"

let prometheus_of series =
  let b = Buffer.create 4096 in
  let headed = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let n = sanitize s.sname in
      let kind =
        match s.svalue with Vcounter _ -> "counter" | Vgauge _ -> "gauge" | Vhist _ -> "histogram"
      in
      if not (Hashtbl.mem headed n) then begin
        Hashtbl.add headed n ();
        if s.shelp <> "" then Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" n (escape s.shelp));
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" n kind)
      end;
      let lbl = prom_labels s.slabels in
      match s.svalue with
      | Vcounter v -> Buffer.add_string b (Printf.sprintf "%s%s %d\n" n lbl v)
      | Vgauge v -> Buffer.add_string b (Printf.sprintf "%s%s %.6f\n" n lbl v)
      | Vhist h ->
        let le bound = prom_labels (s.slabels @ [ ("le", bound) ]) in
        List.iter
          (fun bound ->
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" n
                 (le (Printf.sprintf "%g" bound))
                 (Histogram.cumulative_le h bound)))
          ladder;
        Buffer.add_string b (Printf.sprintf "%s_bucket%s %d\n" n (le "+Inf") h.Histogram.total);
        Buffer.add_string b (Printf.sprintf "%s_sum%s %.6f\n" n lbl (Histogram.sum_of h));
        Buffer.add_string b (Printf.sprintf "%s_count%s %d\n" n lbl h.Histogram.total))
    series;
  Buffer.contents b

(* Plain counters from the global counter registry ride along as counter
   series, mirroring [json]'s merged counters object. *)
let prometheus () =
  let plain =
    Counter.snapshot ()
    |> List.map (fun (n, v) -> { sname = n; shelp = ""; slabels = []; svalue = Vcounter v })
  in
  prometheus_of
    (List.sort (fun a b -> compare (a.sname, a.slabels) (b.sname, b.slabels)) (snapshot () @ plain))

let series_key s =
  s.sname
  ^
  match s.slabels with
  | [] -> ""
  | ls -> "{" ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) ls) ^ "}"

let json_of series =
  let b = Buffer.create 4096 in
  let obj name f xs =
    Buffer.add_string b (Printf.sprintf "\"%s\":{" name);
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        f x)
      xs;
    Buffer.add_char b '}'
  in
  let pick f = List.filter_map f series in
  Buffer.add_char b '{';
  (* Plain counters from the global counter registry and metric counters
     share one object: both are name -> monotone int. *)
  let counters =
    Counter.snapshot ()
    @ pick (fun s -> match s.svalue with Vcounter v -> Some (series_key s, v) | _ -> None)
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  obj "counters" (fun (k, v) -> Buffer.add_string b (Printf.sprintf "\"%s\":%d" (escape k) v)) counters;
  Buffer.add_char b ',';
  obj "gauges"
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "\"%s\":%.6f" (escape k) v))
    (pick (fun s -> match s.svalue with Vgauge v -> Some (series_key s, v) | _ -> None));
  Buffer.add_char b ',';
  obj "histograms"
    (fun (k, h) ->
      Buffer.add_string b
        (Printf.sprintf "\"%s\":{\"count\":%d,\"sum\":%.6f" (escape k) h.Histogram.total
           (Histogram.sum_of h));
      List.iter
        (fun (qn, p) ->
          Buffer.add_string b (Printf.sprintf ",\"%s\":%.6f" qn (quantile_or_zero h p)))
        quantiles;
      Buffer.add_char b '}')
    (pick (fun s -> match s.svalue with Vhist h -> Some (series_key s, h) | _ -> None));
  Buffer.add_char b '}';
  Buffer.contents b

let json () = json_of (snapshot ())
