(* Append-only JSONL log of per-solve records: the feature -> runtime
   corpus the adaptive portfolio dispatcher (ROADMAP) will learn from.
   Each [enable] appends one versioned header line marking a run boundary,
   then every solve appends one record.  The off path is a single atomic
   load ([record] takes a thunk, so callers build no fields when
   disabled); the on path takes a mutex — solves are milliseconds, a log
   line is microseconds. *)

let schema_version = 1

type field = I of int | F of float | B of bool | S of string

type log = { path : string; oc : out_channel; mu : Mutex.t }

let current : log option Atomic.t = Atomic.make None

let enabled () = Atomic.get current <> None

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render fields =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":" (json_escape k));
      Buffer.add_string b
        (match v with
        | I n -> string_of_int n
        | F f -> if Float.is_finite f then Printf.sprintf "%.6f" f else "null"
        | B true -> "true"
        | B false -> "false"
        | S s -> Printf.sprintf "\"%s\"" (json_escape s)))
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

let write_line l line =
  Mutex.lock l.mu;
  output_string l.oc line;
  output_char l.oc '\n';
  flush l.oc;
  Mutex.unlock l.mu

let disable () =
  match Atomic.exchange current None with
  | None -> ()
  | Some l ->
    Mutex.lock l.mu;
    close_out_noerr l.oc;
    Mutex.unlock l.mu

let enable path =
  disable ();
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  let l = { path; oc; mu = Mutex.create () } in
  write_line l
    (render [ ("runlog", S "resil-solve"); ("version", I schema_version) ]);
  Atomic.set current (Some l)

let path () = Option.map (fun l -> l.path) (Atomic.get current)

let record fields =
  match Atomic.get current with
  | None -> ()
  | Some l -> write_line l (render (fields ()))
