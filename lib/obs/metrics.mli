(** Typed metric registry with Prometheus and JSON exposition.

    Three instrument kinds — monotone counters, gauges, and
    {!Histogram}-backed latency/size distributions — registered once per
    (name, static label set) at module-init time, recorded from any
    domain, and exported with a {e run-independent shape}: every
    registered instrument is always exposed (zero-valued when untouched)
    and histograms render against a fixed bucket ladder, so
    digit-normalized goldens are stable across runs and job counts.

    Recording is gated on {!Sink.recording} (the trace sink {e or} the
    metrics plane): an un-armed process pays exactly one atomic load per
    instrumented site.  [Sink.install] resets all instruments along with
    the counters; [Sink.arm_metrics] does not (services accumulate). *)

type counter
type gauge
type histogram = Histogram.t

val counter : ?help:string -> ?labels:(string * string) list -> string -> counter
(** Idempotent per (name, labels), like {!Counter.create}.  Registering an
    existing (name, labels) under a different kind raises
    [Invalid_argument]. *)

val gauge : ?help:string -> ?labels:(string * string) list -> string -> gauge
val histogram : ?help:string -> ?labels:(string * string) list -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit
(** All no-ops while nothing is armed (one atomic load). *)

(** {2 Snapshot isolation}

    A snapshot reads each cell exactly once into an immutable view;
    renderers below consume snapshots, so one exposition never mixes
    states from different instants of the same instrument. *)

type value = Vcounter of int | Vgauge of float | Vhist of Histogram.snapshot

type series = {
  sname : string;
  shelp : string;
  slabels : (string * string) list;  (** sorted by key *)
  svalue : value;
}

val snapshot : unit -> series list
(** Sorted by (name, labels). *)

val prometheus : unit -> string
(** Prometheus text exposition (format 0.0.4): HELP/TYPE headers, one
    line per series, histograms as cumulative [le] buckets over a fixed
    ladder plus [_sum]/[_count].  Metric names have non-identifier
    characters mapped to ['_'].  Plain {!Counter.snapshot} counters are
    merged in as counter series, as in {!json}. *)

val prometheus_of : series list -> string

val json : unit -> string
(** Flat JSON: [{"counters": {...}, "gauges": {...}, "histograms":
    {name: {"count", "sum", "p50", "p90", "p99", "p999"}}}] with keys
    sorted and every float printed ["%.6f"].  The counters object merges
    {!Counter.snapshot} (the plain counter registry) with metric
    counters.  Quantiles of an empty histogram read 0. *)

val json_of : series list -> string
