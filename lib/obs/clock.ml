(* Monotonized gettimeofday.  The high-water mark is a float stored as its
   IEEE bit pattern in an int64 Atomic; non-negative floats compare the same
   as their bit patterns, so a CAS loop on the bits implements max.  The
   fast path (clock already monotone, which is the overwhelmingly common
   case) is one atomic load + one CAS. *)

let high_water = Atomic.make (Int64.bits_of_float 0.)

let rec monotonize t =
  let seen = Atomic.get high_water in
  let seen_t = Int64.float_of_bits seen in
  if t >= seen_t then
    if Atomic.compare_and_set high_water seen (Int64.bits_of_float t) then t
    else monotonize t
  else seen_t

let now () = monotonize (Unix.gettimeofday ())
let elapsed t0 = Float.max 0. (now () -. t0)
