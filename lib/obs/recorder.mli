(** Flight recorder: fixed-size per-domain ring buffers of recent events,
    dumped post-mortem after a timeout, error or signal.

    Arming rules: the recorder has its own switch, independent of the
    trace sink and metrics plane — [resil serve] arms it at startup and
    leaves it on (the rings never grow), one-shot commands never arm it.
    While disarmed {!note} is one atomic load; while armed it is one slot
    write plus one atomic cursor store, no locks, no I/O.  [Sink.install]
    clears the rings. *)

type event = {
  ev_t : float;  (** {!Clock.now} at record time *)
  ev_dom : int;
  ev_op : string;
  ev_fields : (string * string) list;
      (** free-form context: fingerprint, phase timings, basis stats … *)
}

val arm : unit -> unit
val disarm : unit -> unit
val armed : unit -> bool

val note : ?fields:(string * string) list -> string -> unit
(** [note ~fields op] records one event into the calling domain's ring,
    overwriting the oldest once the ring (64 slots) is full. *)

val dump : unit -> event list
(** Every retained event across all domains, oldest first.  Best-effort
    against racing writers (a writer can tear the slot it is replacing,
    never block or crash the dump). *)

val dump_json : unit -> string
(** [{"flight_recorder": [{"t", "dom", "op", ...fields}]}] — fields
    render as strings, timestamps ["%.6f"]. *)

val dump_to_file : string -> unit

val clear : unit -> unit
