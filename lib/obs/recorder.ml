(* Flight recorder: a fixed-size per-domain ring buffer of recent events,
   for post-mortem inspection after a timeout, error or signal.  Recording
   is one armed-check (atomic load), one slot write and one atomic cursor
   store; the ring never grows, so a long-running service can leave it
   armed permanently.  Dumping walks every domain's ring at quiescent (or
   at least best-effort) time and sorts by timestamp — a racing writer can
   at worst tear the oldest slot, never block. *)

type event = {
  ev_t : float;  (* Clock.now at record time *)
  ev_dom : int;
  ev_op : string;
  ev_fields : (string * string) list;  (* fingerprint, phase timings, basis stats, ... *)
}

let ring_size = 64 (* power of two *)

type ring = { slots : event option array; cursor : int Atomic.t }

let all_rings : ring list ref = ref []
let all_mu = Mutex.create ()

let armed_flag = Atomic.make false
let armed () = Atomic.get armed_flag
let arm () = Atomic.set armed_flag true
let disarm () = Atomic.set armed_flag false

let key =
  Domain.DLS.new_key (fun () ->
    let r = { slots = Array.make ring_size None; cursor = Atomic.make 0 } in
    Mutex.lock all_mu;
    all_rings := r :: !all_rings;
    Mutex.unlock all_mu;
    r)

let clear () =
  Mutex.lock all_mu;
  List.iter
    (fun r ->
      Array.fill r.slots 0 ring_size None;
      Atomic.set r.cursor 0)
    !all_rings;
  Mutex.unlock all_mu

let () = Sink.on_install clear

let note ?(fields = []) op =
  if armed () then begin
    let r = Domain.DLS.get key in
    let i = Atomic.get r.cursor in
    r.slots.(i land (ring_size - 1)) <-
      Some { ev_t = Clock.now (); ev_dom = (Domain.self () :> int); ev_op = op; ev_fields = fields };
    Atomic.set r.cursor (i + 1)
  end

(* One ring in logical (oldest-first) order: once the cursor has wrapped,
   the oldest live slot is the one the next write would overwrite. *)
let ring_events r =
  let c = Atomic.get r.cursor in
  let first = if c < ring_size then 0 else c land (ring_size - 1) in
  let n = min c ring_size in
  List.filter_map (fun k -> r.slots.((first + k) land (ring_size - 1))) (List.init n Fun.id)

let dump () =
  Mutex.lock all_mu;
  let rings = !all_rings in
  Mutex.unlock all_mu;
  (* The clock can tie across consecutive events, so the cross-ring merge
     must be stable to keep each ring's logical order. *)
  rings
  |> List.concat_map ring_events
  |> List.stable_sort (fun a b -> compare (a.ev_t, a.ev_dom) (b.ev_t, b.ev_dom))

(* --- post-mortem JSON ------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let dump_json () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"flight_recorder\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"t\":%.6f,\"dom\":%d,\"op\":\"%s\"" e.ev_t e.ev_dom (json_escape e.ev_op));
      List.iter
        (fun (k, v) ->
          Buffer.add_string b (Printf.sprintf ",\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        e.ev_fields;
      Buffer.add_char b '}')
    (dump ());
  Buffer.add_string b "]}";
  Buffer.contents b

let dump_to_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (dump_json ());
      output_char oc '\n')
