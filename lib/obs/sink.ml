(* Two independently-armed planes share one atomic word, so every
   instrumented site keeps its single-load off path: bit 0 is the trace
   sink (spans), bit 1 the metrics plane (histograms, gauges, flight
   recorder).  Counters feed both consumers, so they record under either
   bit. *)
let flag = Atomic.make 0

let trace_bit = 1
let metrics_bit = 2

(* Reset hooks are registered by Counter, Trace and Metrics at module-init
   time; the indirection avoids a dependency cycle (they read [active], we
   clear them). *)
let reset_hooks : (unit -> unit) list ref = ref []
let on_install f = reset_hooks := f :: !reset_hooks

let active () = Atomic.get flag land trace_bit <> 0
let recording () = Atomic.get flag <> 0
let metrics_active () = Atomic.get flag land metrics_bit <> 0

let rec set_bit b =
  let v = Atomic.get flag in
  if not (Atomic.compare_and_set flag v (v lor b)) then set_bit b

let rec clear_bit b =
  let v = Atomic.get flag in
  if not (Atomic.compare_and_set flag v (v land lnot b)) then clear_bit b

let install () =
  List.iter (fun f -> f ()) !reset_hooks;
  set_bit trace_bit

let uninstall () = clear_bit trace_bit

(* Arming the metrics plane deliberately does not reset: a long-running
   service arms once at startup and keeps accumulating across requests. *)
let arm_metrics () = set_bit metrics_bit
let disarm_metrics () = clear_bit metrics_bit
