let flag = Atomic.make false

(* Reset hooks are registered by Counter and Trace at module-init time; the
   indirection avoids a dependency cycle (they read [active], we clear
   them). *)
let reset_hooks : (unit -> unit) list ref = ref []
let on_install f = reset_hooks := f :: !reset_hooks
let active () = Atomic.get flag

let install () =
  List.iter (fun f -> f ()) !reset_hooks;
  Atomic.set flag true

let uninstall () = Atomic.set flag false
