(** Mergeable log-linear latency/size histograms with a bounded relative
    error (HdrHistogram-style buckets).

    Values are binned into power-of-two octaves, each split into 16 linear
    sub-buckets, so any reported quantile is within {!rel_error} (= 1/32,
    ~3.1%) relative of the sample that holds that rank — at every
    quantile, for any distribution, with no per-value storage.  The
    covered range is ~2.3e-10 .. ~2.1e9 (values outside clamp to the edge
    buckets), wide enough for seconds-scale latencies and pivot/node
    counts alike.

    Recording is lock-free and sharded per domain; all state is integer
    counters, so a {!snapshot} is a deterministic merge: the same multiset
    of observed values yields a bit-identical snapshot regardless of which
    domains (or how many pool jobs) recorded them.

    This module is a pure data structure — {!observe} always records.
    Gating against the global switch lives in {!Metrics}, which wraps
    histograms as registered instruments; [bench] uses raw histograms as
    its percentile reducer. *)

type t

val create : unit -> t

val observe : t -> float -> unit
(** Record one value.  Non-positive and NaN values land in the lowest
    bucket.  Safe from any domain; two atomic increments and one
    saturating atomic add. *)

val count : t -> int
val sum : t -> float
(** Total of observed values, in fixed-point micro-units internally —
    exact merge, ~1e-6 absolute granularity, saturating at the top. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0..100]: the midpoint of the bucket
    holding the [ceil (p/100 * n)]-th smallest sample — the convention of
    a no-interpolation sorted-array oracle.  NaN when empty. *)

val reset : t -> unit
(** Zero every cell.  Quiescent-time operation (concurrent observers may
    straddle the reset). *)

val rel_error : float
(** Guaranteed bound on the relative error of {!percentile}. *)

(** {2 Snapshots}

    An immutable, all-integer view: [=] decides bit-identity, merging is
    associative/commutative integer addition. *)

type snapshot = {
  total : int;
  sum_fp : int;  (** fixed-point micro-units *)
  buckets : (int * int) list;  (** (bucket index, count), ascending, sparse *)
}

val snapshot : t -> snapshot
val merge : snapshot -> snapshot -> snapshot
val percentile_of : snapshot -> float -> float
val sum_of : snapshot -> float

val value_of : int -> float
(** Midpoint of a bucket index (the value quantiles report). *)

val upper_of : int -> float
(** Exclusive upper edge of a bucket index. *)

val cumulative_le : snapshot -> float -> int
(** Samples in buckets whose upper edge is at most [v] — the reading
    behind Prometheus [le] buckets. *)
