(** Named atomic counters.

    A counter is created once per name at module-init time (creation is
    idempotent: two [create "x"] calls — e.g. from the float and exact
    instantiations of a solver functor — share one cell), lives in a global
    registry, and is safe to bump from any domain.  Increments are dropped
    while no sink is installed, so a counter bump on a hot path costs one
    atomic load and allocates nothing. *)

type t

val create : string -> t
(** [create name] returns the counter registered under [name], creating it
    on first use.  Dotted names ("simplex.pivots") group the stats export. *)

val incr : t -> unit
(** Add 1 (no-op while the sink is inactive). *)

val add : t -> int -> unit
(** Add [n] (no-op while the sink is inactive). *)

val record_max : t -> int -> unit
(** Raise the counter to at least [n] (no-op while the sink is inactive).
    Used for high-water marks such as peak eta-file length. *)

val value : t -> int
(** Current value (always readable, even with the sink inactive). *)

val snapshot : unit -> (string * int) list
(** All registered counters, sorted by name.  The key set is a static
    property of which modules are linked, not of the execution, so snapshots
    are schema-stable across runs and job counts. *)
