(** Named atomic counters.

    A counter is created once per name (creation is idempotent: two
    [create "x"] calls — e.g. from the float and exact instantiations of a
    solver functor — share one cell), lives in a global registry, and is
    safe to bump from any domain.  Increments are dropped while neither
    the trace sink nor the metrics plane is on, so a counter bump on a hot
    path costs one atomic load and allocates nothing. *)

type t

val create : string -> t
(** [create name] returns the counter registered under [name], creating it
    on first use.  Dotted names ("simplex.pivots") group the stats export. *)

val incr : t -> unit
(** Add 1 (no-op while nothing is armed). *)

val add : t -> int -> unit
(** Add [n] (no-op while nothing is armed). *)

val record_max : t -> int -> unit
(** Raise the counter to at least [n] (no-op while nothing is armed).
    Used for high-water marks such as peak eta-file length. *)

val value : t -> int
(** Current value (always readable, even with nothing armed). *)

val snapshot : unit -> (string * int) list
(** All registered counters, sorted by name.  The registry is live: a
    counter created {e after} an earlier snapshot appears in every later
    one.  Goldens stay schema-stable anyway because the solver's counters
    are all registered at module-init time of whichever modules are
    linked, before any run — only dynamically created counters (tests,
    ad-hoc instrumentation) ever enter mid-run. *)
