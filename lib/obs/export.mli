(** Serialization of drained telemetry.

    Two formats, matching the two consumers: Chrome trace-event JSON for a
    human staring at Perfetto (one track per domain, ts/dur in microseconds
    relative to the earliest span), and a flat stats JSON for golden tests
    and CI trend lines (counters plus per-name span aggregates, every float
    printed with a fixed ["%.6f"] so digit-normalized goldens are stable). *)

val write_chrome : out_channel -> Trace.span list -> unit
(** Write a complete [{"traceEvents": [...]}] document: one thread-name
    metadata event per domain that recorded spans, then every span as a
    ["ph":"X"] complete event. *)

val chrome_to_file : string -> Trace.span list -> unit

val stats_json : Trace.span list -> string
(** [{"counters": {...}, "spans": {name: {"count": n, "total_s": s}},
    "wall_s": s}] with keys sorted.  The counter snapshot is live
    ({!Counter.snapshot}); the solver's counters all register at
    module-init time, so in practice the schema does not depend on the
    execution. *)
