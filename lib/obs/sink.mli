(** The global telemetry switch.

    All instrumentation in the repo — counters and spans alike — is guarded
    by one atomic boolean.  With no sink installed every instrumented site
    reduces to a single non-allocating atomic load, so tracing support costs
    nothing in production runs; installing the sink (e.g. via
    [resil … --trace]) turns collection on for the whole process. *)

val install : unit -> unit
(** Enable collection.  Resets all counters and clears any buffered spans so
    the subsequent drain reflects exactly the traced region. *)

val uninstall : unit -> unit
(** Disable collection.  Buffered spans and counter values are kept until the
    next [install] so they can still be drained/snapshotted. *)

val active : unit -> bool
(** Cheap (single atomic load) check used by every instrumented site. *)

val on_install : (unit -> unit) -> unit
(** Register a reset hook run by [install].  Internal to [Obs]: [Counter]
    and [Trace] use it to clear their state without a dependency cycle. *)
