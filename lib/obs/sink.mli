(** The global telemetry switches.

    All instrumentation in the repo is guarded by one atomic word holding
    two independent plane bits: the {e trace sink} (spans, installed by
    [resil … --trace]/[--stats]) and the {e metrics plane} (histograms,
    gauges, the flight recorder — armed by [resil … --metrics] and by
    [resil serve]).  With neither armed every instrumented site reduces to
    a single non-allocating atomic load, so telemetry support costs
    nothing in production runs.  Counters serve both consumers and record
    whenever either plane is on. *)

val install : unit -> unit
(** Enable span collection.  Resets all counters, metric instruments and
    buffered spans so the subsequent drain reflects exactly the traced
    region. *)

val uninstall : unit -> unit
(** Disable span collection.  Buffered spans and counter values are kept
    until the next [install] so they can still be drained/snapshotted. *)

val active : unit -> bool
(** The trace sink is installed (single atomic load).  Guards span
    recording. *)

val arm_metrics : unit -> unit
(** Enable the metrics plane.  Unlike [install] this does {e not} reset:
    a long-running service arms once and accumulates across requests. *)

val disarm_metrics : unit -> unit

val metrics_active : unit -> bool
(** The metrics plane is armed (single atomic load). *)

val recording : unit -> bool
(** Either plane is on (single atomic load) — the guard used by counters
    and metric instruments, which feed both exposition paths. *)

val on_install : (unit -> unit) -> unit
(** Register a reset hook run by [install].  Internal to [Obs]: [Counter],
    [Trace] and [Metrics] use it to clear their state without a dependency
    cycle. *)
