open! Relalg

(** The paper's unified ILP formulations (Sections 4 and 5) and their
    relaxations (Section 6), built from a query, a database and — for
    responsibility — a tuple.

    The encodings follow the paper exactly:
    - one binary decision variable [X\[t\]] per distinct {e endogenous}
      tuple appearing in some witness;
    - one covering constraint per distinct witness {e tuple set};
    - under bag semantics the only change is the objective weights
      (multiplicities) — the constraint matrix is untouched;
    - for responsibility, witness-indicator variables [X\[w\]] for the
      witnesses containing the responsibility tuple, tracking constraints
      [X\[w\] >= X\[t'\]], and one counterfactual constraint
      [sum X\[w\] <= |W_t| - 1].

    Upper bounds [X\[t\] <= 1] are provably redundant in these covering
    programs and omitted; witness indicators do carry an upper bound of 1
    (the branch-and-bound fixes them to 0/1). *)

type relaxation =
  | Ilp  (** Every decision variable integral. *)
  | Milp  (** Witness indicators integral, tuple variables continuous —
              MILP[RSP*]; for resilience this equals {!Lp}. *)
  | Lp  (** No integrality — LP[RES*] / LP[RSP*]. *)

type encoding = {
  model : Lp.Model.t;
  tuple_of_var : (Lp.Model.var * Database.tuple_id) list;
      (** Tuple decision variables (witness indicators excluded). *)
  var_of_tuple : (Database.tuple_id, Lp.Model.var) Hashtbl.t;
  witness_vars : Lp.Model.var list;  (** Empty for resilience. *)
}

type outcome =
  | Encoded of encoding
  | Trivial of int  (** The optimum is immediate: 0 when the query is already
                        false (resilience) — no program needed. *)
  | Impossible
      (** No contingency set exists: some witness consists purely of
          exogenous tuples (resilience), or the responsibility tuple is in no
          witness / cannot be made counterfactual structurally. *)

val res : relaxation -> Problem.semantics -> Cq.t -> Database.t -> outcome
(** ILP[RES*] / LP[RES*] (Section 4; Example 1 and 2 reproduced in the test
    suite). *)

val res_of_witnesses :
  relaxation -> Problem.semantics -> Cq.t -> Database.t -> Eval.witness list -> outcome
(** Same, reusing precomputed witnesses. *)

val rsp :
  relaxation -> Problem.semantics -> Cq.t -> Database.t -> Database.tuple_id -> outcome
(** ILP[RSP*] / MILP[RSP*] / LP[RSP*] (Sections 5 and 6; Examples 3 and 4). *)

val rsp_of_witnesses :
  relaxation ->
  Problem.semantics ->
  Cq.t ->
  Database.t ->
  Eval.witness list ->
  Database.tuple_id ->
  outcome

val contingency : encoding -> float array -> Database.tuple_id list
(** Read a 0/1 solution vector back into the tuples picked for deletion. *)

(** {1 Shared super-model}

    One tuple-independent program from which resilience {e and} the
    responsibility of every tuple are reachable by bound fixes alone
    ({!Lp.Frozen.Delta}), so a batch of solves shares a single frozen
    matrix and a warm-started solver session ({!Session}).

    Variables: one [X\[t'\]] per endogenous witness tuple (weighted as
    usual), one indicator [W\[w\]] per distinct witness tuple set, and a
    slack [Z].  Rows: tracking [W\[w\] >= X\[t'\]] and destruction
    soundness [sum X\[t'\] >= W\[w\]] per witness, plus one counterfactual
    row [sum W - Z <= |W| - 1].

    - {e resilience}: fix every [W\[w\] = 1] and [Z = 1] — the destruction
      rows become the covering program ILP[RES*], everything else is
      vacuous;
    - {e responsibility of t}: fix [X\[t\] = 0], [Z = 0], and [W\[w\] = 1]
      for every witness {e not} containing [t] — exactly ILP[RSP*](t) plus
      destruction-soundness rows, which no 0/1 optimum violates (a witness
      with no deleted tuple need never be flagged destroyed).

    Under {!Ilp} the optima coincide with {!res}/{!rsp}; under {!Milp}/{!Lp}
    the relaxation is weakly tighter (never below the per-tuple relaxation,
    never above the integral optimum), and the rounding guarantees of
    Theorem 9.1 carry over unchanged. *)

type shared = {
  smodel : Lp.Model.t;
  stuple_of_var : (Lp.Model.var * Database.tuple_id) list;
      (** Tuple decision variables, in creation order. *)
  svar_of_tuple : (Database.tuple_id, Lp.Model.var) Hashtbl.t;
  switnesses : (Lp.Model.var * Database.tuple_id list) list;
      (** Witness indicator variables with the {e full} tuple set (exogenous
          members included — membership of the responsibility tuple is
          tested against this). *)
  sz : Lp.Model.var;  (** The counterfactual slack [Z]. *)
}

type shared_outcome =
  | Shared of shared
  | Shared_trivial  (** No witnesses: the query is already false. *)
  | Shared_impossible
      (** Some witness is fully exogenous: it can never be destroyed, so no
          contingency set exists for resilience {e or} for the
          responsibility of any tuple. *)

val shared_of_witnesses :
  relaxation -> Problem.semantics -> Cq.t -> Database.t -> Eval.witness list -> shared_outcome
