open! Relalg

(** Cross-layer consistency: does the query-level dichotomy verdict agree
    with the matrix-level integrality certificate?

    The paper proves its PTIME verdicts {e through} the LP relaxation:
    RES* is PTIME exactly when LP[RES*] is integral (Theorems 8.6/8.7).
    {!Analysis} decides the verdict from the query alone; {!Lp.Struct}
    certifies (or refutes) integrality on the concrete constraint matrix.
    The two must agree — whenever they do not, either the dichotomy
    implementation, the encoder, or the analyzer is wrong, which is exactly
    the kind of silent cross-layer drift this validator turns into a
    diagnostic.

    Codes (rendered through {!Lp.Lint.diag} like every other layer):

    - [V101] (error) the dichotomy says PTIME but the root LP of this
      instance has a {e fractional optimum value} — RES* is an integer, so
      LP < ILP follows: a genuine contradiction with Theorems 8.6/8.7
      somewhere in the pipeline;
    - [V201] (warning) the dichotomy says PTIME but no integrality
      certificate could be produced for this instance (analyzer
      incompleteness, a degenerate fractional vertex at an integral
      optimum, or an unbounded/infeasible probe) — the verdict stands but
      is uncorroborated;
    - [V301] (note) PTIME verdict confirmed by a matrix-level certificate
      (names the witness kind);
    - [V302] (note) the matrix is certified integral although the dichotomy
      gives no PTIME guarantee — {e this instance} solves without branching
      regardless of worst-case complexity. *)

type report = {
  complexity : Analysis.complexity;  (** Query-dichotomy verdict. *)
  cert : Lp.Struct.t option;
      (** Matrix certificate for ILP[RES*] on this instance; [None] when no
          program exists (query false, or contingency impossible). *)
  diags : Lp.Lint.diag list;  (** V-codes, in {!Lp.Lint.compare_diag} order. *)
}

val validate : Problem.semantics -> Cq.t -> Database.t -> report
(** Encode ILP[RES*], analyze the frozen matrix (with a root-LP probe), and
    compare against {!Analysis.res_complexity}. *)

val refine_query_diags : Lp.Struct.t option -> Lp.Lint.diag list -> Lp.Lint.diag list
(** Downgrade the [Q304] "complexity unknown" advisory to a definite [Q305]
    PTIME advisory when the instance's matrix is certified integral: the
    self-join query may sit outside the SJ-free dichotomy, but integrality
    of this program settles this instance (re-sorted afterwards). *)
