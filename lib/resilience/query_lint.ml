open Relalg
open Lp.Lint

let diag code severity message = { code; severity; message }

let sort = Lp.Lint.sort_diags

let atom_to_string (a : Cq.atom) =
  let term = function Cq.Var v -> v | Cq.Const c -> string_of_int c in
  Printf.sprintf "%s(%s)"
    a.Cq.rel
    (String.concat ", " (Array.to_list (Array.map term a.Cq.terms)))

(* --- Query-level checks -------------------------------------------------- *)

let all_exogenous q =
  if Array.for_all (fun a -> a.Cq.exo) q.Cq.atoms then
    [
      diag "Q101" Error
        "every atom is exogenous: no tuple can be deleted, resilience is \
         undefined whenever the query is true";
    ]
  else []

let duplicate_atoms q =
  let n = Array.length q.Cq.atoms in
  let out = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = q.Cq.atoms.(i) and b = q.Cq.atoms.(j) in
      if a.Cq.rel = b.Cq.rel && a.Cq.terms = b.Cq.terms then
        out :=
          diag "Q201" Warning
            (Printf.sprintf "atoms %d and %d are identical: %s" i j (atom_to_string a))
          :: !out
    done
  done;
  List.rev !out

let disconnected q =
  if Cq.connected q then []
  else begin
    let parts = Cq.components q in
    [
      diag "Q202" Warning
        (Printf.sprintf
           "query is disconnected (%d components): its witness set is the cartesian \
            product of the components'"
           (List.length parts));
    ]
  end

let non_minimal q =
  if Homomorphism.is_minimal q then []
  else
    let core = Homomorphism.minimize q in
    [
      diag "Q203" Warning
        (Printf.sprintf
           "query is not minimal; its core has %d of %d atoms: %s"
           (Array.length core.Cq.atoms) (Array.length q.Cq.atoms) (Cq.to_string core));
    ]

let constant_only_atoms q =
  Array.to_list q.Cq.atoms
  |> List.filteri (fun _ a ->
         Array.for_all (function Cq.Const _ -> true | Cq.Var _ -> false) a.Cq.terms)
  |> List.map (fun a ->
         diag "Q204" Warning
           (Printf.sprintf
              "atom %s has no variables: it is a data-dependent switch for the whole query"
              (atom_to_string a)))

let wildcard_vars q =
  let count = Hashtbl.create 16 in
  Array.iter
    (fun a ->
      Array.iter
        (function
          | Cq.Var v ->
            Hashtbl.replace count v (1 + Option.value ~default:0 (Hashtbl.find_opt count v))
          | Cq.Const _ -> ())
        a.Cq.terms)
    q.Cq.atoms;
  let once = List.filter (fun v -> Hashtbl.find count v = 1) (Cq.vars q) in
  if once = [] then []
  else
    [
      diag "Q301" Note
        (Printf.sprintf "variable%s %s occur%s only once (pure projection)"
           (if List.length once = 1 then "" else "s")
           (String.concat ", " once)
           (if List.length once = 1 then "s" else ""));
    ]

let dichotomy_advisory semantics q =
  match Analysis.res_complexity semantics q with
  | Analysis.Ptime ->
    [
      diag "Q302" Note
        (Printf.sprintf
           "%s — LP[RES*] is integral (Theorems 8.6/8.7); lp mode suffices, \
            branch-and-bound is unnecessary"
           (Analysis.describe semantics q));
    ]
  | Analysis.Npc ->
    [
      diag "Q303" Note
        (Printf.sprintf "%s — expect branch-and-bound; consider a node or time limit"
           (Analysis.describe semantics q));
    ]
  | Analysis.Unknown ->
    if Cq.self_join_free q then []
    else
      [
        diag "Q304" Note
          "self-join query outside the SJ-free dichotomy: complexity unknown, ILP mode \
           recommended";
      ]

let lint_query semantics q =
  sort
    (all_exogenous q
    @ duplicate_atoms q
    @ disconnected q
    @ non_minimal q
    @ constant_only_atoms q
    @ wildcard_vars q
    @ dichotomy_advisory semantics q)

(* --- Instance-level checks ----------------------------------------------- *)

let empty_relations q db =
  Cq.rel_names q
  |> List.filter (fun r -> Database.tuples_of db r = [])
  |> List.map (fun r ->
         diag "I201" Warning
           (Printf.sprintf "relation %s is referenced by the query but holds no tuples" r))

let unsatisfiable_constants q db =
  Array.to_list q.Cq.atoms
  |> List.concat_map (fun a ->
         let consts =
           Array.to_list (Array.mapi (fun i t -> (i, t)) a.Cq.terms)
           |> List.filter_map (function i, Cq.Const c -> Some (i, c) | _, Cq.Var _ -> None)
         in
         let tuples = Database.tuples_of db a.Cq.rel in
         if consts = [] || tuples = [] then []
         else begin
           let matches info =
             List.for_all (fun (i, c) -> info.Database.args.(i) = c) consts
           in
           if List.exists matches tuples then []
           else
             [
               diag "I202" Warning
                 (Printf.sprintf
                    "constant join is unsatisfiable: no tuple of %s matches atom %s"
                    a.Cq.rel (atom_to_string a));
             ]
         end)

let lint_instance _semantics q db =
  let witnesses = Eval.witnesses q db in
  let structural = empty_relations q db @ unsatisfiable_constants q db in
  let diags =
    if witnesses = [] then
      diag "I203" Warning
        "the query is false on this instance: resilience is trivially undefined"
      :: structural
    else begin
      let sets = Eval.unique_tuple_sets witnesses in
      let blocked =
        List.exists
          (fun set -> List.for_all (fun tid -> Problem.tuple_exo q db tid) set)
          sets
      in
      let impossible =
        if blocked then
          [
            diag "I101" Error
              "a witness consists solely of exogenous tuples: no contingency set \
               exists (resilience is infinite)";
          ]
        else []
      in
      let endo = List.length (Problem.endogenous_tuples q db) in
      let note =
        diag "I301" Note
          (Printf.sprintf
             "%d witnesses over %d distinct tuple sets (ILP rows), %d endogenous \
              tuples (ILP columns)"
             (List.length witnesses) (List.length sets) endo)
      in
      impossible @ structural @ [ note ]
    end
  in
  sort diags
