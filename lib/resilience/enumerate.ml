open Relalg

(* Solution enumeration by no-good cuts (DESIGN.md §13).

   After the first ILP optimum OPT with optimal set S, two kinds of rows are
   appended to the program's delta:

   - an optimal-cost pin  [sum_t w_t X[t] <= OPT]  over every weighted tuple
     variable, so every later solve is confined to the optimal face; and
   - one no-good cut  [sum_{t in S} X[t] <= |S| - 1]  per emitted set.

   Because every weight is >= 1, two distinct minimum-weight contingency
   sets are never subsets of one another (a strict superset costs strictly
   more), so under the pin each cut removes exactly its own set from the
   remaining family: any other optimal set misses at least one member of S
   and satisfies the cut strictly.  The loop therefore emits each optimal
   set exactly once and terminates with an infeasible program precisely when
   the family is exhausted. *)

type stats = {
  cuts : int;  (** No-good cuts appended. *)
  solves : int;  (** ILP solves, the first optimum included. *)
  nodes : int;
  first_pivots : int;  (** Pivots of the first (cut-free) solve. *)
  cut_pivots : int;  (** Pivots summed over the cut re-solves. *)
  refactors : int;
  time : float;
}

type family = {
  opt : int;
  sets : Database.tuple_id list list;
  exhausted : bool;
  fstats : stats;
}

type criticality = {
  crit_tuple : Database.tuple_id;
  crit_count : int;
  crit_total : int;
  crit_exact : Numeric.Rat.t;
  crit_float : float;
}

type outcome = Family of family | Query_false | No_contingency | Budget

(* --- Orderings ----------------------------------------------------------- *)

let canonical sets = List.sort_uniq compare (List.map (List.sort compare) sets)

let take n sets =
  if n < 0 then sets else List.filteri (fun i _ -> i < n) sets

(* Symmetric-difference cardinality of two sorted lists. *)
let symdiff a b =
  let rec go n a b =
    match (a, b) with
    | [], rest | rest, [] -> n + List.length rest
    | x :: a', y :: b' ->
      let c = compare x y in
      if c = 0 then go n a' b'
      else if c < 0 then go (n + 1) a' b
      else go (n + 1) a b'
  in
  go 0 a b

(* Greedy max-min-diversity reordering: keep the canonical head, then
   repeatedly pick the set whose minimum symmetric difference to everything
   already emitted is largest (ties broken by canonical order), so a
   truncated prefix spreads over the family instead of clustering. *)
let diverse sets =
  match sets with
  | [] | [ _ ] -> sets
  | first :: rest ->
    let rec pick acc picked remaining =
      match remaining with
      | [] -> List.rev acc
      | _ ->
        let score s = List.fold_left (fun m p -> min m (symdiff s p)) max_int picked in
        let best =
          List.fold_left
            (fun best s ->
              match best with
              | None -> Some (s, score s)
              | Some (_, bs) ->
                let ss = score s in
                if ss > bs then Some (s, ss) else best)
            None remaining
        in
        let b = fst (Option.get best) in
        pick (b :: acc) (b :: picked) (List.filter (fun s -> s <> b) remaining)
    in
    pick [ first ] [ first ] rest

(* --- Criticality --------------------------------------------------------- *)

let criticality fam =
  let total = List.length fam.sets in
  if total = 0 then []
  else begin
    let counts = Hashtbl.create 16 in
    List.iter
      (List.iter (fun t ->
           Hashtbl.replace counts t
             (1 + Option.value ~default:0 (Hashtbl.find_opt counts t))))
      fam.sets;
    Hashtbl.fold (fun t c acc -> (t, c) :: acc) counts []
    |> List.map (fun (t, c) ->
           {
             crit_tuple = t;
             crit_count = c;
             crit_total = total;
             crit_exact = Numeric.Rat.of_ints c total;
             crit_float = float_of_int c /. float_of_int total;
           })
    |> List.sort (fun a b ->
           match compare b.crit_count a.crit_count with
           | 0 -> compare a.crit_tuple b.crit_tuple
           | n -> n)
  end

(* --- Cut construction ---------------------------------------------------- *)

let no_good var_of_tuple set delta =
  let vars = List.sort compare (List.filter_map var_of_tuple set) in
  if vars = [] then invalid_arg "Enumerate.no_good: empty cut";
  Lp.Frozen.Delta.append_row Lp.Model.Leq
    (List.length vars - 1)
    (List.map (fun v -> (v, 1)) vars)
    delta

let pin_expr weighted_vars =
  List.sort (fun (a, _) (b, _) -> compare a b)
    (List.filter (fun (_, w) -> w <> 0) weighted_vars)

(* --- The enumeration loop ------------------------------------------------ *)

(* Gather every remaining optimal set reachable from the (already pinned)
   delta [d]: solve, record, cut, repeat.  [seen] are sets already emitted
   upstream — they count toward [cap] and guard against a solver ever
   returning a cut-off point again (defensive: that would loop forever).
   The overall [time_limit] is measured from [t0] and the remainder is
   passed to each solve, so a deadline bounds the whole chain, not each
   link.  Returns the new sets (unsorted), whether the family was proven
   exhausted (the final solve came back infeasible), and the accumulated
   (cuts, solves, nodes, pivots, refactors). *)
let collect ?cap ?time_limit ~t0 ~opt ~cut ~run ~seen d =
  let found = ref [] in
  let cuts = ref 0 and solves = ref 0 and nodes = ref 0 in
  let pivots = ref 0 and refactors = ref 0 in
  let exhausted = ref false in
  let left () =
    Option.map (fun tl -> tl -. Lp.Clock.elapsed t0) time_limit
  in
  let capped () =
    match cap with
    | Some c -> List.length !found + List.length seen >= c
    | None -> false
  in
  let timed_out () = match left () with Some l -> l <= 0. | None -> false in
  let rec loop d =
    if not (capped () || timed_out ()) then begin
      match run (left ()) d with
      | `Infeasible -> exhausted := true
      | `Budget -> ()
      | `Ok (v, s, (n, p, r)) ->
        incr solves;
        nodes := !nodes + n;
        pivots := !pivots + p;
        refactors := !refactors + r;
        let s = List.sort compare s in
        if v <> opt then exhausted := true
        else if s = [] || List.mem s !found || List.mem s seen then ()
        else begin
          found := s :: !found;
          incr cuts;
          loop (cut s d)
        end
    end
  in
  loop d;
  (!found, !exhausted, (!cuts, !solves, !nodes, !pivots, !refactors))

let drive ?cap ?time_limit ~pin ~cut ~run base =
  let t0 = Lp.Clock.now () in
  match run time_limit base with
  | `Infeasible -> `Infeasible
  | `Budget -> `Budget
  | `Ok (opt, s0, (n0, p0, r0)) ->
    let s0 = List.sort compare s0 in
    if s0 = [] then
      (* OPT = 0: with all weights >= 1 the empty set is the unique optimal
         contingency set, and its no-good cut would be the empty row
         [0 <= -1] — terminate immediately instead. *)
      `Family
        {
          opt;
          sets = [ [] ];
          exhausted = true;
          fstats =
            {
              cuts = 0;
              solves = 1;
              nodes = n0;
              first_pivots = p0;
              cut_pivots = 0;
              refactors = r0;
              time = Lp.Clock.elapsed t0;
            };
        }
    else begin
      let d = cut s0 (pin opt base) in
      let sets, exhausted, (cuts, solves, nodes, pivots, refactors) =
        collect ?cap ?time_limit ~t0 ~opt ~cut ~run ~seen:[ s0 ] d
      in
      `Family
        {
          opt;
          sets = canonical (s0 :: sets);
          exhausted;
          fstats =
            {
              cuts = cuts + 1;
              solves = solves + 1;
              nodes = nodes + n0;
              first_pivots = p0;
              cut_pivots = pivots;
              refactors = refactors + r0;
              time = Lp.Clock.elapsed t0;
            };
        }
    end

(* --- Cold reference ------------------------------------------------------ *)

(* The differential reference the warm session path is tested against: the
   per-question encoding is frozen {e without} presolve (so cut rows speak
   raw variable indices), and every link of the chain is a fresh
   [solve_frozen] — a brand-new session absorbing the whole delta cold.
   Identical family, none of the warm-basis machinery. *)

let round_value x = int_of_float (Float.round x)

let cold_run ~exact ?node_limit base read time_left delta =
  let time_limit = time_left in
  if exact then begin
    let open Lp.Solvers.Exact_bb in
    let r = solve_frozen ?node_limit ?time_limit ~delta base in
    match r.status with
    | Optimal ->
      let sol =
        Array.map Numeric.Rat.to_float (Option.get r.solution)
      in
      `Ok
        ( round_value (Numeric.Rat.to_float (Option.get r.objective)),
          read sol,
          (r.nodes, r.pivots, r.refactors) )
    | Infeasible | Unbounded -> `Infeasible
    | Feasible | Limit_no_solution -> `Budget
  end
  else begin
    let open Lp.Solvers.Float_bb in
    let r = solve_frozen ?node_limit ?time_limit ~delta base in
    match r.status with
    | Optimal ->
      `Ok
        ( round_value (Option.get r.objective),
          read (Option.get r.solution),
          (r.nodes, r.pivots, r.refactors) )
    | Infeasible | Unbounded -> `Infeasible
    | Feasible | Limit_no_solution -> `Budget
  end

let enumerate_encoding ~exact ?node_limit ?time_limit ?cap (enc : Encode.encoding) =
  let base = Lp.Frozen.of_model enc.Encode.model in
  let pin_row =
    pin_expr
      (List.init (Lp.Frozen.num_vars base) (fun v ->
           (v, Lp.Frozen.objective base v)))
  in
  let pin opt d = Lp.Frozen.Delta.append_row Lp.Model.Leq opt pin_row d in
  let cut =
    no_good (fun tid -> Hashtbl.find_opt enc.Encode.var_of_tuple tid)
  in
  let run = cold_run ~exact ?node_limit base (Encode.contingency enc) in
  match drive ?cap ?time_limit ~pin ~cut ~run Lp.Frozen.Delta.empty with
  | `Family f -> Family f
  | `Infeasible -> No_contingency
  | `Budget -> Budget

let resilience_cold ?(exact = false) ?node_limit ?time_limit ?cap semantics q db =
  match Encode.res Encode.Ilp semantics q db with
  | Encode.Trivial _ -> Query_false
  | Encode.Impossible -> No_contingency
  | Encode.Encoded enc ->
    enumerate_encoding ~exact ?node_limit ?time_limit ?cap enc

let responsibility_cold ?(exact = false) ?node_limit ?time_limit ?cap semantics q db t =
  match Encode.rsp Encode.Ilp semantics q db t with
  | Encode.Trivial _ -> Query_false
  | Encode.Impossible -> No_contingency
  | Encode.Encoded enc ->
    enumerate_encoding ~exact ?node_limit ?time_limit ?cap enc
