open! Relalg

(** End-to-end solving of RES* and RSP* — the unified algorithm of the paper:
    encode as (I)LP, hand to the LP-based branch-and-bound, read the answer
    back as tuples.

    Every function has a [`Float] fast path (the default) and an [`Exact]
    path running the identical pipeline over arbitrary-precision rationals.

    Every solve runs {!Lp.Presolve} first ([?presolve], on by default): the
    model is shrunk by optimum-preserving reductions — duplicate and
    dominated witness rows dropped, forced deletions fixed, redundant binary
    bounds stripped — and solutions are lifted back to the full encoding, so
    answers (values {e and} contingency sets) are unchanged; pass
    [~presolve:false] to solve the raw encoding, e.g. when differential
    testing the presolver itself. *)

type stats = Session.stats = {
  nodes : int;
      (** Branch-and-bound nodes (LPs solved); [0] on certificate-settled
          solves. *)
  root_lp : float;  (** Root relaxation objective. *)
  root_integral : bool;  (** Was the root LP already integral? (Result 2) *)
  certified : bool;
      (** Settled by an integrality certificate (integral root-LP vertex —
          guaranteed when {!Lp.Struct} certifies the matrix structurally)
          with zero branch-and-bound nodes. *)
  solve_time : float;
      (** Seconds of pure branch-and-bound (encode, freeze and presolve
          excluded — see [prep_time]). *)
  prep_time : float;  (** Seconds of freeze + presolve + engine build. *)
  pivots : int;  (** Simplex pivots spent on this solve. *)
  refactors : int;  (** Basis refactorisations spent on this solve. *)
}

type 'a outcome = 'a Session.outcome =
  | Solved of 'a
  | Query_false  (** D does not satisfy Q — resilience is undefined/0. *)
  | No_contingency
      (** No contingency set exists: exogenous tuples block every option, or
          the responsibility tuple cannot be made counterfactual. *)
  | Budget_exhausted of int option
      (** Node/time limit hit; carries the incumbent value if any (the
          paper's ILP(10) reports exactly this). *)

type res_answer = Session.res_answer = {
  res_value : int;
  contingency : Database.tuple_id list;
  res_stats : stats;
}

type rsp_answer = Session.rsp_answer = {
  rsp_value : int;
  responsibility_set : Database.tuple_id list;
  rsp_stats : stats;
}

val resilience :
  ?exact:bool ->
  ?presolve:bool ->
  ?node_limit:int ->
  ?time_limit:float ->
  Problem.semantics ->
  Cq.t ->
  Database.t ->
  res_answer outcome
(** RES*(Q, D) by ILP[RES*] (Theorem 4.2). *)

val resilience_lp :
  ?exact:bool -> ?presolve:bool -> Problem.semantics -> Cq.t -> Database.t -> float option
(** LP[RES*] optimum ([None] when the query is false or no program exists).
    Equal to RES* on every PTIME case (Theorems 8.6/8.7). *)

val resilience_lp_solution :
  ?exact:bool ->
  ?presolve:bool ->
  Problem.semantics ->
  Cq.t ->
  Database.t ->
  (float * Encode.encoding * float array) option
(** LP optimum together with the encoding and the primal point — input to
    the rounding approximation. *)

val responsibility :
  ?exact:bool ->
  ?presolve:bool ->
  ?node_limit:int ->
  ?time_limit:float ->
  ?relaxation:Encode.relaxation ->
  Problem.semantics ->
  Cq.t ->
  Database.t ->
  Database.tuple_id ->
  rsp_answer outcome
(** RSP*(Q, D, t) by ILP[RSP*] (Theorem 5.1); [~relaxation:Milp] gives
    MILP[RSP*] (exact on all PTIME cases, Theorems 8.11/8.12, and solvable
    in PTIME, Lemma 6.1). *)

val responsibility_lp :
  ?exact:bool ->
  ?presolve:bool ->
  Problem.semantics ->
  Cq.t ->
  Database.t ->
  Database.tuple_id ->
  float option
(** LP[RSP*] — a lower bound that is {e not} exact even on easy queries
    (Example 4). *)

val enumerate_resilience :
  ?exact:bool ->
  ?presolve:bool ->
  ?node_limit:int ->
  ?time_limit:float ->
  ?jobs:int ->
  ?cap:int ->
  Problem.semantics ->
  Cq.t ->
  Database.t ->
  Enumerate.family outcome
(** Every minimum contingency set of RES*(Q, D), via a fresh
    {!Session.enumerate_resilience} — pay witnesses/encode/presolve once,
    then one warm no-good-cut chain. *)

val enumerate_responsibility :
  ?exact:bool ->
  ?presolve:bool ->
  ?node_limit:int ->
  ?time_limit:float ->
  ?jobs:int ->
  ?cap:int ->
  Problem.semantics ->
  Cq.t ->
  Database.t ->
  Database.tuple_id ->
  Enumerate.family outcome
(** Every minimum contingency set of RSP*(Q, D, t), same contract. *)

val responsibility_ranking :
  ?exact:bool ->
  ?presolve:bool ->
  Problem.semantics ->
  Cq.t ->
  Database.t ->
  (Database.tuple_id * int * float) list
(** Rank every endogenous witness tuple as an explanation of the query
    answer: (tuple, minimal contingency size k, responsibility 1/(1+k)),
    best first.  Tuples that cannot be made counterfactual are omitted —
    the paper's query-explanation use case (Section 1, Example 11).

    Runs as one {!Session}: witnesses are enumerated and encoded once, and
    every tuple's ILP is a warm-started delta-solve against the shared
    frozen program. *)

val responsibility_ranking_par :
  ?exact:bool ->
  ?presolve:bool ->
  ?jobs:int ->
  Problem.semantics ->
  Cq.t ->
  Database.t ->
  (Database.tuple_id * int * float) list
(** {!responsibility_ranking} with the per-tuple solves spread over [jobs]
    domains ({!Session.ranking_par}); output is bit-identical to the
    sequential ranking for every [jobs].  [jobs = 0] (default) picks
    {!Lp.Pool.default_jobs}. *)

(** {1 Flow baseline (prior work)} *)

val linearize_by_domination : Problem.semantics -> Cq.t -> Cq.t
(** Under set semantics, flag atoms dominated by another endogenous atom as
    exogenous (sound by Theorem 8.7's argument); under bag semantics this is
    the identity (domination does not apply, Theorem 8.8). *)

val resilience_flow : Problem.semantics -> Cq.t -> Database.t -> res_answer outcome option
(** The dedicated min-cut algorithm of Meliou et al. / Freire et al. — exact
    whenever the (domination-linearized) query is self-join-free and admits
    an exact ordering; [None] otherwise (non-linearizable query, or a
    self-join, where one tuple spans several flow edges and the min-cut can
    overestimate). *)

val responsibility_flow :
  Problem.semantics -> Cq.t -> Database.t -> Database.tuple_id -> rsp_answer outcome option

val verify_contingency :
  Problem.semantics -> Cq.t -> Database.t -> Database.tuple_id list -> bool
(** Does deleting the given tuples actually falsify the query?  (Used by
    tests and examples to double-check solver output.) *)

val verify_responsibility_set :
  Cq.t -> Database.t -> Database.tuple_id -> Database.tuple_id list -> bool
(** Is the set a valid contingency for t: query still true without the set,
    false once t is also removed? *)
