open Relalg

type stats = {
  nodes : int;
  root_lp : float;
  root_integral : bool;
  certified : bool;
  solve_time : float;
  prep_time : float;
  pivots : int;
  refactors : int;
}

(* Certificate-aware dispatch telemetry: solves settled by an integrality
   certificate (no branch-and-bound), and the subset backed by a
   delta-transferable structural witness rather than a per-solve root
   vertex. *)
let c_certified = Obs.Counter.create "solve.certified"
let c_certified_structural = Obs.Counter.create "solve.certified_structural"

(* Enumeration telemetry: no-good cuts appended, optimal sets streamed, and
   enumerations that proved their family complete (final re-solve
   infeasible) rather than stopping on a cap or budget. *)
let c_enum_cuts = Obs.Counter.create "enum.cuts"
let c_enum_solutions = Obs.Counter.create "enum.solutions"
let c_enum_exhausted = Obs.Counter.create "enum.exhausted"

(* Metrics-plane distributions: what the old counters reduce to a single
   sum, kept as full per-solve histograms when a plane is armed. *)
let h_solve_seconds =
  Obs.Metrics.histogram ~help:"Wall seconds per ILP solve (certificate-aware dispatch)"
    "session.solve.seconds"

let h_solve_pivots =
  Obs.Metrics.histogram ~help:"Simplex pivots per ILP solve" "session.solve.pivots"

let h_solve_nodes =
  Obs.Metrics.histogram ~help:"Branch-and-bound nodes per ILP solve" "session.solve.nodes"

type 'a outcome =
  | Solved of 'a
  | Query_false
  | No_contingency
  | Budget_exhausted of int option

type res_answer = { res_value : int; contingency : Database.tuple_id list; res_stats : stats }

type rsp_answer = {
  rsp_value : int;
  responsibility_set : Database.tuple_id list;
  rsp_stats : stats;
}

type strategy = [ `Shared_delta | `Cold_per_tuple ]

type profile = {
  witnesses_s : float;
  encode_s : float;
  lint_s : float;
  prep_s : float;
  solve_s : float;
  questions : int;
}

(* Internal accumulator behind {!profile}.  Phase fields are written when
   the corresponding (lazy) work actually runs; solve fields are summed on
   the submitter as answers come back, so parallel rankings never race on
   it. *)
type acc = {
  mutable a_witnesses : float;
  mutable a_encode : float;
  mutable a_lint : float;
  mutable a_prep : float;
  mutable a_solve : float;
  mutable a_questions : int;
}

let fresh_acc () =
  { a_witnesses = 0.; a_encode = 0.; a_lint = 0.; a_prep = 0.; a_solve = 0.; a_questions = 0 }

type engine = Efloat of Lp.Solvers.Float_bb.session | Eexact of Lp.Solvers.Exact_bb.session

(* Solver state over one frozen program: the presolved form (what per-domain
   engines are created from), the presolve witness, the submitter's own
   warm engine, and the structural integrality certificate.  The certificate
   is computed eagerly with the prep (NOT lazily: preps are shared across
   the domains of a parallel ranking, and [Lazy.force] is not domain-safe);
   its witnesses are delta-transferable, so one analysis covers every
   delta-solve of the session. *)
type prep = {
  pfz : Lp.Frozen.t;
  pvm : Lp.Presolve.vmap option;
  pengine : engine;
  pcert : Lp.Struct.t;
  pint : Lp.Model.var list;  (* integer variables of [pfz] *)
}

let engine_of ~exact ~kernel fz =
  if exact then Eexact (Lp.Solvers.Exact_bb.create_session ~kernel fz)
  else Efloat (Lp.Solvers.Float_bb.create_session ~kernel fz)

(* Freeze + (optionally) presolve a model into a prep; [None] when presolve
   decides the program outright (the shared program is always feasible —
   delete everything, flag everything — and has non-negative costs, so a
   verdict to the contrary is treated as "no contingency" defensively). *)
let prep_of_model ~exact ~presolve ~kernel model =
  let raw = Lp.Frozen.of_model model in
  let prepared =
    if presolve then
      match Lp.Presolve.presolve raw with
      | Lp.Presolve.Reduced (fz, vm) -> Some (fz, Some vm)
      | Lp.Presolve.Infeasible | Lp.Presolve.Unbounded -> None
    else Some (raw, None)
  in
  Option.map
    (fun (fz, vm) ->
      {
        pfz = fz;
        pvm = vm;
        pengine = engine_of ~exact ~kernel fz;
        pcert = Obs.Trace.with_span "session.struct" (fun () -> Lp.Struct.analyze fz);
        pint = Lp.Frozen.integer_vars fz;
      })
    prepared

type core = {
  cshared : Encode.shared;
  cprep : prep option Lazy.t;
      (* presolve + engine, paid only if a shared-program solve happens —
         a dense-regime session that only ever ranks never forces this *)
  cdiags : Lp.Lint.diag list Lazy.t;  (* lint of the unreduced frozen program *)
}

type state = Sfalse | Snone | Sactive of core

type t = {
  sdb : Database.t;
  ssem : Problem.semantics;
  squery : Cq.t;
  switnesses : Eval.witness list;
  sexact : bool;
  spresolve : bool;
  sbasis : Lp.Basis.choice;
  srelax : Encode.relaxation;
  sstrategy : strategy;
  state : state;
  sacc : acc;
}

(* Re-measured with the sparse LU kernel (BENCH.md, PR 7): the shared
   batch now wins at every measured size of the dense q2_chain family —
   2.0x at 2.6k rows, 3.8x at 5.1k, 4.2x at 10.3k — where the dense
   inverse lost from ~1.9k rows on (the PR 3 crossover behind the old
   1700 default).  No crossover was observed up to ~10^4 rows; the
   threshold now only guards the regime beyond what was measured. *)
let default_dense_rows_threshold = 10_000

let create ?(exact = false) ?(presolve = true) ?(relaxation = Encode.Ilp) ?(basis = `Auto)
    ?(dense_rows_threshold = default_dense_rows_threshold) ?witnesses semantics q db =
  let acc = fresh_acc () in
  let tw0 = Lp.Clock.now () in
  let witnesses =
    match witnesses with
    | Some ws -> ws  (* caller-maintained (incremental service); skip the join *)
    | None -> Obs.Trace.with_span "session.witnesses" (fun () -> Eval.witnesses q db)
  in
  acc.a_witnesses <- Lp.Clock.elapsed tw0;
  let te0 = Lp.Clock.now () in
  let state, strategy =
    Obs.Trace.with_span "session.encode" (fun () ->
        match Encode.shared_of_witnesses relaxation semantics q db witnesses with
        | Encode.Shared_trivial -> (Sfalse, `Shared_delta)
        | Encode.Shared_impossible -> (Snone, `Shared_delta)
        | Encode.Shared shared ->
          let raw = Lp.Frozen.of_model shared.Encode.smodel in
          let strategy =
            if Lp.Frozen.num_rows raw > dense_rows_threshold then `Cold_per_tuple
            else `Shared_delta
          in
          ( Sactive
              {
                cshared = shared;
                cprep =
                  (* Timed inside the thunk so the cost lands on whichever
                     question actually forces the shared prep. *)
                  lazy
                    (Obs.Trace.with_span "session.prep" (fun () ->
                         let t0 = Lp.Clock.now () in
                         let p =
                           prep_of_model ~exact ~presolve ~kernel:basis shared.Encode.smodel
                         in
                         acc.a_prep <- acc.a_prep +. Lp.Clock.elapsed t0;
                         p));
                cdiags =
                  lazy
                    (Obs.Trace.with_span "session.lint" (fun () ->
                         let t0 = Lp.Clock.now () in
                         let d = Lp.Lint.lint raw in
                         acc.a_lint <- acc.a_lint +. Lp.Clock.elapsed t0;
                         d));
              },
            strategy ))
  in
  acc.a_encode <- Lp.Clock.elapsed te0;
  {
    sdb = db;
    ssem = semantics;
    squery = q;
    switnesses = witnesses;
    sexact = exact;
    spresolve = presolve;
    sbasis = basis;
    srelax = relaxation;
    sstrategy = strategy;
    state;
    sacc = acc;
  }

let batch_strategy t = t.sstrategy

(* --- Delta plumbing ------------------------------------------------------- *)

(* Deltas are phrased against the raw shared program; [translate] renumbers
   them into the presolved one.  A fix conflicting with a presolve-fixed
   value means the combination is infeasible (presolve only fixes what
   feasibility forces on this model family). *)
let translate vm delta =
  match vm with
  | None -> Some delta
  | Some vm ->
    List.fold_left
      (fun acc (v, k) ->
        match acc with
        | None -> None
        | Some d -> (
          match Lp.Presolve.var_image vm v with
          | `Kept j -> Some (Lp.Frozen.Delta.fix j k d)
          | `Fixed k' -> if k' = k then Some d else None))
      (Some Lp.Frozen.Delta.empty)
      (Lp.Frozen.Delta.bindings delta)

(* Appended rows (the enumeration pin and no-good cuts are phrased against
   raw shared-model variables, like the bound fixes) are renumbered through
   the presolve witness too: kept variables map to their reduced index,
   eliminated variables fold their fixed value into the right-hand side.  A
   row whose left-hand side vanishes entirely is checked as a constant —
   dropped when satisfied, the whole delta infeasible otherwise.  The
   translation is deterministic row by row, so a monotone chain of raw
   appends translates to a monotone chain of reduced appends and the warm
   engine still absorbs each new cut as a basis-intact suffix
   ([Frozen.Delta.extends] compares structurally). *)
let translate_row vm (sense, rhs, expr) =
  let entries, rhs =
    List.fold_left
      (fun (es, rhs) (v, c) ->
        match Lp.Presolve.var_image vm v with
        | `Kept j -> ((j, c) :: es, rhs)
        | `Fixed k -> (es, rhs - (c * k)))
      ([], rhs) expr
  in
  match List.sort (fun (a, _) (b, _) -> compare a b) entries with
  | [] ->
    let sat =
      match sense with
      | Lp.Model.Leq -> 0 <= rhs
      | Lp.Model.Geq -> 0 >= rhs
      | Lp.Model.Eq -> rhs = 0
    in
    if sat then `Drop else `Infeasible
  | entries -> `Row (sense, rhs, entries)

let translate_full vm delta =
  match vm with
  | None -> Some delta
  | Some vm_ -> (
    match translate vm delta with
    | None -> None
    | Some d ->
      List.fold_left
        (fun acc row ->
          match acc with
          | None -> None
          | Some d -> (
            match translate_row vm_ row with
            | `Drop -> Some d
            | `Infeasible -> None
            | `Row (sense, rhs, entries) ->
              Some (Lp.Frozen.Delta.append_row sense rhs entries d)))
        (Some d)
        (Lp.Frozen.Delta.appended_rows delta))

let offset_of vm = match vm with Some vm -> Lp.Presolve.obj_offset vm | None -> 0

let lift_sol vm ~of_int sol =
  match vm with Some vm -> Lp.Presolve.lift vm ~of_int sol | None -> sol

(* Witness indicators fixed to 1, counterfactual slack released. *)
let res_delta core =
  List.fold_left
    (fun d (wv, _) -> Lp.Frozen.Delta.force_one wv d)
    (Lp.Frozen.Delta.force_one core.cshared.Encode.sz Lp.Frozen.Delta.empty)
    core.cshared.Encode.switnesses

(* [None]: t appears in no witness. *)
let rsp_delta core t =
  let with_t, without_t =
    List.partition (fun (_, set) -> List.mem t set) core.cshared.Encode.switnesses
  in
  if with_t = [] then None
  else begin
    let d = Lp.Frozen.Delta.fix_zero core.cshared.Encode.sz Lp.Frozen.Delta.empty in
    let d =
      match Hashtbl.find_opt core.cshared.Encode.svar_of_tuple t with
      | Some v -> Lp.Frozen.Delta.fix_zero v d
      | None -> d (* exogenous tuple: it never had a decision variable *)
    in
    Some (List.fold_left (fun d (wv, _) -> Lp.Frozen.Delta.force_one wv d) d without_t)
  end

(* --- Solving -------------------------------------------------------------- *)

(* Certificate-aware dispatch + branch-and-bound under the delta against
   [engine] — the submitter's warm engine on the sequential paths, a
   per-domain engine over the same frozen arrays on the parallel ones;
   mirrors Solve.run_bb but without re-freezing or re-presolving.

   Every solve is relax-first: one warm-started LP relaxation under the
   delta.  When its optimum is integral on the integer variables it {e is}
   the ILP optimum (an integral feasible point meeting the LP lower bound)
   — the solve is settled by that root-vertex certificate with {e zero}
   branch-and-bound nodes, [certified = true].  This is guaranteed, not
   luck, whenever the session's structural certificate holds: structural
   witnesses survive delta bound fixes, so one [Lp.Struct.analyze] covers
   every question the session answers.  Otherwise branch-and-bound runs as
   before, warm-started from the relaxation's final basis (the root
   re-solve costs a handful of pivots), so hard instances pay essentially
   nothing for the probe. *)
let run_engine_raw ?node_limit ?time_limit prep engine delta =
  let t0 = Lp.Clock.now () in
  match translate_full prep.pvm delta with
  | None -> `Infeasible
  | Some d ->
    let foffset = float_of_int (offset_of prep.pvm) in
    let finish ?(certified = false) nodes root_lp root_integral pivots refactors objective
        solution =
      let solve_time = Lp.Clock.elapsed t0 in
      if certified then begin
        Obs.Counter.incr c_certified;
        if Lp.Struct.structural prep.pcert then Obs.Counter.incr c_certified_structural
      end;
      ( objective,
        solution,
        { nodes; root_lp; root_integral; certified; solve_time; prep_time = 0.; pivots; refactors }
      )
    in
    (match engine with
    | Eexact s -> begin
      let open Lp.Solvers.Exact_bb in
      let certified =
        match relax ~delta:d s with
        | `Optimal (obj, x) when Lp.Solvers.Exact_simplex.integral_on x prep.pint ->
          Some (obj, x)
        | `Optimal _ | `Infeasible | `Unbounded -> None
      in
      match certified with
      | Some (obj, x) ->
        let obj = Numeric.Rat.to_float obj +. foffset in
        let sol =
          lift_sol prep.pvm ~of_int:Numeric.Rat.of_int x |> Array.map Numeric.Rat.to_float
        in
        `Ok (finish ~certified:true 0 obj true 0 0 obj sol)
      | None -> (
        let r = solve_session ?node_limit ?time_limit ~delta:d s in
        let root =
          match r.root_objective with Some o -> Numeric.Rat.to_float o +. foffset | None -> nan
        in
        match r.status with
        | Optimal ->
          let obj = Numeric.Rat.to_float (Option.get r.objective) +. foffset in
          let sol =
            lift_sol prep.pvm ~of_int:Numeric.Rat.of_int (Option.get r.solution)
            |> Array.map Numeric.Rat.to_float
          in
          `Ok (finish r.nodes root r.root_integral r.pivots r.refactors obj sol)
        | Infeasible | Unbounded -> `Infeasible
        | Feasible -> `Budget (Option.map (fun o -> Numeric.Rat.to_float o +. foffset) r.objective)
        | Limit_no_solution -> `Budget None)
    end
    | Efloat s -> begin
      let open Lp.Solvers.Float_bb in
      let certified =
        match relax ~delta:d s with
        | `Optimal (obj, x) when Lp.Solvers.Float_simplex.integral_on x prep.pint ->
          Some (obj, x)
        | `Optimal _ | `Infeasible | `Unbounded -> None
      in
      match certified with
      | Some (obj, x) ->
        let sol = lift_sol prep.pvm ~of_int:float_of_int x in
        `Ok (finish ~certified:true 0 (obj +. foffset) true 0 0 (obj +. foffset) sol)
      | None -> (
        let r = solve_session ?node_limit ?time_limit ~delta:d s in
        let root = match r.root_objective with Some o -> o +. foffset | None -> nan in
        match r.status with
        | Optimal ->
          let sol = lift_sol prep.pvm ~of_int:float_of_int (Option.get r.solution) in
          `Ok
            (finish r.nodes root r.root_integral r.pivots r.refactors
               (Option.get r.objective +. foffset)
               sol)
        | Infeasible | Unbounded -> `Infeasible
        | Feasible -> `Budget (Option.map (fun o -> o +. foffset) r.objective)
        | Limit_no_solution -> `Budget None)
    end)

(* One run-log line: the solved program's structural feature vector, the
   dispatch path taken, and the outcome — the schema shared by every solve
   site (here and Solve.run_bb), versioned by the run-log header. *)
let runlog_solve_fields ~op ~status ~path:dispatch ~cert ?stats:st ~wall () =
  let f = cert.Lp.Struct.features in
  let sti g = match st with Some s -> g s | None -> 0 in
  let open Obs.Runlog in
  [
    ("op", S op);
    ("status", S status);
    ("path", S dispatch);
    ("verdict", S (Lp.Struct.verdict_name cert));
    ("structural", B (Lp.Struct.structural cert));
    ("rows", I f.Lp.Struct.rows);
    ("cols", I f.Lp.Struct.cols);
    ("nnz", I f.Lp.Struct.nnz);
    ("unit_coeffs", B f.Lp.Struct.unit_coeffs);
    ("zero_one", B f.Lp.Struct.zero_one);
    ("neg_entries", I f.Lp.Struct.neg_entries);
    ("max_col_nnz", I f.Lp.Struct.max_col_nnz);
    ("max_row_nnz", I f.Lp.Struct.max_row_nnz);
    ("avg_col_nnz", F f.Lp.Struct.avg_col_nnz);
    ("geq_rows", I f.Lp.Struct.geq_rows);
    ("leq_rows", I f.Lp.Struct.leq_rows);
    ("eq_rows", I f.Lp.Struct.eq_rows);
    ("certified", B (match st with Some s -> s.certified | None -> false));
    ("nodes", I (sti (fun s -> s.nodes)));
    ("pivots", I (sti (fun s -> s.pivots)));
    ("refactors", I (sti (fun s -> s.refactors)));
    ("root_lp", F (match st with Some s -> s.root_lp | None -> nan));
    ("solve_s", F (match st with Some s -> s.solve_time | None -> wall));
    ("wall_s", F wall);
  ]

(* Instrumentation wrapper around every engine solve: one observation per
   metrics-plane distribution and one run-log record per solve — the
   session's [Lp.Struct] feature vector alongside the dispatch path taken
   and the outcome, i.e. one line of the portfolio training corpus.  With
   nothing armed this is the raw solve plus two atomic loads. *)
let run_engine ?node_limit ?time_limit ?(op = "solve") prep engine delta =
  if not (Obs.Sink.recording () || Obs.Runlog.enabled ()) then
    run_engine_raw ?node_limit ?time_limit prep engine delta
  else begin
    let t0 = Lp.Clock.now () in
    let r = run_engine_raw ?node_limit ?time_limit prep engine delta in
    let wall = Lp.Clock.elapsed t0 in
    (match r with
    | `Ok (_, _, st) ->
      Obs.Metrics.observe h_solve_seconds st.solve_time;
      Obs.Metrics.observe h_solve_pivots (float_of_int st.pivots);
      Obs.Metrics.observe h_solve_nodes (float_of_int st.nodes)
    | `Infeasible | `Budget _ -> ());
    Obs.Runlog.record (fun () ->
        let status, path, st =
          match r with
          | `Ok (_, _, st) -> ("optimal", (if st.certified then "certified" else "bb"), Some st)
          | `Infeasible -> ("infeasible", "relax", None)
          | `Budget _ -> ("budget", "bb", None)
        in
        runlog_solve_fields ~op ~status ~path ~cert:prep.pcert ?stats:st ~wall ());
    r
  end

let read_tuples core sol =
  List.filter_map
    (fun (v, tid) -> if sol.(v) > 0.5 then Some tid else None)
    core.cshared.Encode.stuple_of_var

let round_value x = int_of_float (Float.round x)

(* Submitter-side profile accounting.  Worker domains never touch the
   accumulator: parallel rankings fold their per-answer stats in here, on
   the submitting domain, after the batch has drained. *)
let note_question t = t.sacc.a_questions <- t.sacc.a_questions + 1

let note_stats t st =
  t.sacc.a_solve <- t.sacc.a_solve +. st.solve_time;
  t.sacc.a_prep <- t.sacc.a_prep +. st.prep_time

let resilience_body ?node_limit ?time_limit t =
  match t.state with
  | Sfalse -> Query_false
  | Snone -> No_contingency
  | Sactive core -> (
    match Lazy.force core.cprep with
    | None -> No_contingency
    | Some prep -> (
      match run_engine ?node_limit ?time_limit ~op:"resilience" prep prep.pengine (res_delta core) with
      | `Infeasible -> No_contingency
      | `Budget incumbent -> Budget_exhausted (Option.map round_value incumbent)
      | `Ok (obj, sol, st) ->
        Solved
          { res_value = round_value obj; contingency = read_tuples core sol; res_stats = st }))

let resilience ?node_limit ?time_limit t =
  note_question t;
  let outcome = resilience_body ?node_limit ?time_limit t in
  (match outcome with
  | Solved a -> note_stats t a.res_stats
  | Query_false | No_contingency | Budget_exhausted _ -> ());
  outcome

(* The shared-program responsibility delta-solve. *)
let rsp_shared ?node_limit ?time_limit core prep engine tid =
  match rsp_delta core tid with
  | None -> No_contingency
  | Some delta -> (
    match run_engine ?node_limit ?time_limit ~op:"responsibility" prep engine delta with
    | `Infeasible -> No_contingency
    | `Budget incumbent -> Budget_exhausted (Option.map round_value incumbent)
    | `Ok (obj, sol, st) ->
      Solved
        {
          rsp_value = round_value obj;
          responsibility_set = read_tuples core sol;
          rsp_stats = st;
        })

(* The cold per-tuple path the dense regime falls back to: a fresh
   ILP[RSP*](t) encoding, freeze, presolve and branch-and-bound per tuple —
   what Solve.responsibility runs, minus the witness re-enumeration (the
   session already owns the witness list).  Reads only immutable session
   state and the database, so parallel rankings run it from many domains. *)
let cold_responsibility ?node_limit ?time_limit t tid =
  let tp0 = Lp.Clock.now () in
  match Encode.rsp_of_witnesses t.srelax t.ssem t.squery t.sdb t.switnesses tid with
  | Encode.Trivial _ -> Query_false
  | Encode.Impossible -> No_contingency
  | Encode.Encoded enc -> (
    match prep_of_model ~exact:t.sexact ~presolve:t.spresolve ~kernel:t.sbasis enc.Encode.model with
    | None -> No_contingency
    | Some prep -> (
      (* Everything up to here — encode, freeze, presolve, engine build — is
         preparation, not solving; stats keep the two apart. *)
      let prep_time = Lp.Clock.elapsed tp0 in
      match run_engine ?node_limit ?time_limit ~op:"responsibility" prep prep.pengine Lp.Frozen.Delta.empty with
      | `Infeasible -> No_contingency
      | `Budget incumbent -> Budget_exhausted (Option.map round_value incumbent)
      | `Ok (obj, sol, st) ->
        Solved
          {
            rsp_value = round_value obj;
            responsibility_set = Encode.contingency enc sol;
            rsp_stats = { st with prep_time };
          }))

let responsibility_body ?node_limit ?time_limit t tid =
  match t.state with
  | Sfalse -> Query_false
  | Snone -> No_contingency
  | Sactive core -> (
    match t.sstrategy with
    | `Cold_per_tuple ->
      (* Skip tuples outside every witness without an encode, as the shared
         path does. *)
      if rsp_delta core tid = None then No_contingency
      else cold_responsibility ?node_limit ?time_limit t tid
    | `Shared_delta -> (
      match Lazy.force core.cprep with
      | None -> No_contingency
      | Some prep -> rsp_shared ?node_limit ?time_limit core prep prep.pengine tid))

let responsibility ?node_limit ?time_limit t tid =
  note_question t;
  let outcome = responsibility_body ?node_limit ?time_limit t tid in
  (match outcome with
  | Solved a -> note_stats t a.rsp_stats
  | Query_false | No_contingency | Budget_exhausted _ -> ());
  outcome

(* Endogenous witness tuples, in database order — exactly the tuples a
   ranking solves for.  Everything else is skipped without a solve
   (exogenous tuples cannot be explanations, and a tuple outside every
   witness cannot be counterfactual). *)
let candidates core db =
  Database.tuples db
  |> List.filter_map (fun info ->
         let tid = info.Database.id in
         if Hashtbl.mem core.cshared.Encode.svar_of_tuple tid then Some tid else None)

(* Ranking accounting: each candidate counts as one question; solved
   answers contribute their solve/prep time.  Runs on the submitter. *)
let record_rankings t outcomes =
  List.iter
    (fun (_, o) ->
      note_question t;
      match o with
      | Solved a -> note_stats t a.rsp_stats
      | Query_false | No_contingency | Budget_exhausted _ -> ())
    outcomes;
  outcomes

let merge_ranking outcomes =
  outcomes
  |> List.filter_map (fun (tid, outcome) ->
         match outcome with
         | Solved a ->
           let k = a.rsp_value in
           Some (tid, k, 1.0 /. (1.0 +. float_of_int k))
         | Query_false | No_contingency | Budget_exhausted _ -> None)
  |> List.stable_sort (fun (_, a, _) (_, b, _) -> compare a b)

let ranking ?node_limit ?time_limit t =
  match t.state with
  | Sfalse | Snone -> []
  | Sactive core ->
    let solve_one =
      match t.sstrategy with
      | `Cold_per_tuple -> fun tid -> cold_responsibility ?node_limit ?time_limit t tid
      | `Shared_delta -> (
        match Lazy.force core.cprep with
        | None -> fun _ -> No_contingency
        | Some prep -> fun tid -> rsp_shared ?node_limit ?time_limit core prep prep.pengine tid)
    in
    merge_ranking
      (record_rankings t (List.map (fun tid -> (tid, solve_one tid)) (candidates core t.sdb)))

let ranking_par ?node_limit ?time_limit ?(jobs = 0) t =
  let jobs = if jobs = 0 then Lp.Pool.default_jobs () else jobs in
  (* jobs = 1 still routes through the pool (its sequential fast path), so
     the telemetry a ranking emits has the same shape at every job count. *)
  match t.state with
  | Sfalse | Snone -> []
  | Sactive core ->
    let cands = Array.of_list (candidates core t.sdb) in
    let tasks = Array.length cands in
    if tasks = 0 then []
    else begin
      let outcomes =
        match t.sstrategy with
        | `Cold_per_tuple ->
          (* Every task is a self-contained cold solve against read-only
             session state. *)
          Lp.Pool.with_pool ~jobs (fun pool ->
              Lp.Pool.run pool ~tasks (fun i ->
                  cold_responsibility ?node_limit ?time_limit t cands.(i)))
        | `Shared_delta -> (
          match Lazy.force core.cprep with
          | None -> Array.make tasks No_contingency
          | Some prep ->
            (* Each participating domain opens its own warm engine against
               the shared presolved frozen arrays and drains a chunk of
               per-tuple delta-solves. *)
            Lp.Pool.with_pool ~jobs (fun pool ->
                Lp.Pool.run_init pool
                  ~init:(fun () -> engine_of ~exact:t.sexact ~kernel:t.sbasis prep.pfz)
                  ~tasks
                  (fun engine i ->
                    rsp_shared ?node_limit ?time_limit core prep engine cands.(i))))
      in
      merge_ranking
        (record_rankings t
           (List.mapi (fun i outcome -> (cands.(i), outcome)) (Array.to_list outcomes)))
    end

(* --- Solution enumeration -------------------------------------------------- *)

(* The pin row's left-hand side: every weighted tuple variable of the raw
   shared program (witness indicators and the slack carry no weight), which
   by construction is exactly the objective — so [sum w_t X(t) <= OPT]
   confines every later solve to the optimal face. *)
let enum_pin_expr t core =
  Enumerate.pin_expr
    (List.map
       (fun (v, tid) -> (v, Problem.weight t.ssem (Database.tuple t.sdb tid)))
       core.cshared.Encode.stuple_of_var)

(* One warm ILP solve under the delta, shaped for [Enumerate.drive]: the
   cut chain grows monotonically on one engine, so each re-solve absorbs
   only the newest row and restarts from the previous optimal basis. *)
let enum_run ?node_limit core prep engine time_left delta =
  let time_limit =
    match time_left with Some l -> Some (Float.max l 0.) | None -> None
  in
  match run_engine ?node_limit ?time_limit ~op:"enumerate" prep engine delta with
  | `Infeasible -> `Infeasible
  | `Budget _ -> `Budget
  | `Ok (obj, sol, st) ->
    `Ok (round_value obj, read_tuples core sol, (st.nodes, st.pivots, st.refactors))

let var_of_tuple core tid = Hashtbl.find_opt core.cshared.Encode.svar_of_tuple tid

(* Parallel enumeration by disjoint seed-split on the first optimum
   S0 = {s_1 < ... < s_k} (Lawler/Murty partition): subspace i keeps
   s_1..s_{i-1}, drops s_i — bound fixes, not cuts.  Any other optimal set
   is no superset of S0 (equal weight, weights >= 1), so it misses some
   s_i and lands in exactly the subspace of the first one it misses; the
   subspaces are pairwise disjoint and none contains S0 itself.  Each
   subspace runs its own pinned cut chain on a fresh warm engine over the
   shared frozen arrays; the merge is concatenation + canonical sort, so
   an exhausted enumeration is identical at every job count. *)
let enum_par ?node_limit ?time_limit ?cap ~jobs t core prep ~pin ~cut base =
  let t0 = Lp.Clock.now () in
  match enum_run ?node_limit core prep prep.pengine time_limit base with
  | `Infeasible -> `Infeasible
  | `Budget -> `Budget
  | `Ok (opt, s0, (n0, p0, r0)) ->
    let s0 = List.sort compare s0 in
    if s0 = [] then
      `Family
        Enumerate.
          {
            opt;
            sets = [ [] ];
            exhausted = true;
            fstats =
              {
                cuts = 0;
                solves = 1;
                nodes = n0;
                first_pivots = p0;
                cut_pivots = 0;
                refactors = r0;
                time = Lp.Clock.elapsed t0;
              };
          }
    else begin
      let seeds = Array.of_list s0 in
      let k = Array.length seeds in
      let fix tid f d =
        match var_of_tuple core tid with Some v -> f v d | None -> d
      in
      let results =
        Lp.Pool.with_pool ~jobs (fun pool ->
            Lp.Pool.run pool ~tasks:k (fun i ->
                let engine = engine_of ~exact:t.sexact ~kernel:t.sbasis prep.pfz in
                let sub = ref base in
                for j = 0 to i - 1 do
                  sub := fix seeds.(j) Lp.Frozen.Delta.force_one !sub
                done;
                sub := fix seeds.(i) Lp.Frozen.Delta.fix_zero !sub;
                Enumerate.collect ?cap ?time_limit ~t0 ~opt ~cut
                  ~run:(enum_run ?node_limit core prep engine)
                  ~seen:[] (pin opt !sub)))
      in
      let sets = ref [ s0 ] and exhausted = ref true in
      let cuts = ref 0 and solves = ref 1 and nodes = ref n0 in
      let cut_pivots = ref 0 and refactors = ref r0 in
      Array.iter
        (fun (ss, ex, (c, s, n, p, r)) ->
          sets := ss @ !sets;
          exhausted := !exhausted && ex;
          cuts := !cuts + c;
          solves := !solves + s;
          nodes := !nodes + n;
          cut_pivots := !cut_pivots + p;
          refactors := !refactors + r)
        results;
      `Family
        Enumerate.
          {
            opt;
            sets = canonical !sets;
            exhausted = !exhausted;
            fstats =
              {
                cuts = !cuts;
                solves = !solves;
                nodes = !nodes;
                first_pivots = p0;
                cut_pivots = !cut_pivots;
                refactors = !refactors;
                time = Lp.Clock.elapsed t0;
              };
          }
    end

let enum_question ?node_limit ?time_limit ?cap ~jobs t core prep base =
  Obs.Trace.with_span "session.enumerate" (fun () ->
      let pin opt d =
        Lp.Frozen.Delta.append_row Lp.Model.Leq opt (enum_pin_expr t core) d
      in
      let cut = Enumerate.no_good (var_of_tuple core) in
      let result =
        if jobs <= 1 then
          Enumerate.drive ?cap ?time_limit ~pin ~cut
            ~run:(enum_run ?node_limit core prep prep.pengine)
            base
        else enum_par ?node_limit ?time_limit ?cap ~jobs t core prep ~pin ~cut base
      in
      match result with
      | `Infeasible -> No_contingency
      | `Budget -> Budget_exhausted None
      | `Family fam ->
        Obs.Counter.add c_enum_cuts fam.Enumerate.fstats.Enumerate.cuts;
        Obs.Counter.add c_enum_solutions (List.length fam.Enumerate.sets);
        if fam.Enumerate.exhausted then Obs.Counter.incr c_enum_exhausted;
        t.sacc.a_solve <- t.sacc.a_solve +. fam.Enumerate.fstats.Enumerate.time;
        Solved fam)

let enumerate_resilience ?node_limit ?time_limit ?(jobs = 1) ?cap t =
  let jobs = if jobs = 0 then Lp.Pool.default_jobs () else jobs in
  note_question t;
  match t.state with
  | Sfalse -> Query_false
  | Snone -> No_contingency
  | Sactive core -> (
    match Lazy.force core.cprep with
    | None -> No_contingency
    | Some prep ->
      enum_question ?node_limit ?time_limit ?cap ~jobs t core prep (res_delta core))

let enumerate_responsibility ?node_limit ?time_limit ?(jobs = 1) ?cap t tid =
  let jobs = if jobs = 0 then Lp.Pool.default_jobs () else jobs in
  note_question t;
  match t.state with
  | Sfalse -> Query_false
  | Snone -> No_contingency
  | Sactive core -> (
    match Lazy.force core.cprep with
    | None -> No_contingency
    | Some prep -> (
      match rsp_delta core tid with
      | None -> No_contingency
      | Some base -> enum_question ?node_limit ?time_limit ?cap ~jobs t core prep base))

(* --- Relaxation views ----------------------------------------------------- *)

let read_values core sol =
  List.map (fun (v, tid) -> (tid, sol.(v))) core.cshared.Encode.stuple_of_var

let relax_run core prep delta =
  match translate prep.pvm delta with
  | None -> None
  | Some d ->
    let foffset = float_of_int (offset_of prep.pvm) in
    let outcome =
      match prep.pengine with
      | Efloat s -> (
        match Lp.Solvers.Float_bb.relax ~delta:d s with
        | `Optimal (obj, sol) -> Some (obj +. foffset, lift_sol prep.pvm ~of_int:float_of_int sol)
        | `Infeasible | `Unbounded -> None)
      | Eexact s -> (
        match Lp.Solvers.Exact_bb.relax ~delta:d s with
        | `Optimal (obj, sol) ->
          Some
            ( Numeric.Rat.to_float obj +. foffset,
              lift_sol prep.pvm ~of_int:Numeric.Rat.of_int sol |> Array.map Numeric.Rat.to_float
            )
        | `Infeasible | `Unbounded -> None)
    in
    Option.map (fun (obj, sol) -> (obj, read_values core sol)) outcome

let resilience_solution t =
  match t.state with
  | Sfalse | Snone -> None
  | Sactive core -> (
    match Lazy.force core.cprep with
    | None -> None
    | Some prep -> relax_run core prep (res_delta core))

let responsibility_solution t tid =
  match t.state with
  | Sfalse | Snone -> None
  | Sactive core -> (
    match Lazy.force core.cprep with
    | None -> None
    | Some prep -> (
      match rsp_delta core tid with
      | None -> None
      | Some delta -> (
        match run_engine ~op:"solution" prep prep.pengine delta with
        | `Infeasible | `Budget _ -> None
        | `Ok (obj, sol, _) -> Some (obj, read_values core sol))))

let diagnostics t =
  match t.state with Sfalse | Snone -> [] | Sactive core -> Lazy.force core.cdiags

let profile t =
  {
    witnesses_s = t.sacc.a_witnesses;
    encode_s = t.sacc.a_encode;
    lint_s = t.sacc.a_lint;
    prep_s = t.sacc.a_prep;
    solve_s = t.sacc.a_solve;
    questions = t.sacc.a_questions;
  }
