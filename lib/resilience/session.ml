open Relalg

type stats = { nodes : int; root_lp : float; root_integral : bool; solve_time : float }

type 'a outcome =
  | Solved of 'a
  | Query_false
  | No_contingency
  | Budget_exhausted of int option

type res_answer = { res_value : int; contingency : Database.tuple_id list; res_stats : stats }

type rsp_answer = {
  rsp_value : int;
  responsibility_set : Database.tuple_id list;
  rsp_stats : stats;
}

type engine = Efloat of Lp.Solvers.Float_bb.session | Eexact of Lp.Solvers.Exact_bb.session

type core = {
  cshared : Encode.shared;
  cvm : Lp.Presolve.vmap option;
  cengine : engine;
  cdiags : Lp.Lint.diag list Lazy.t;  (* lint of the unreduced frozen program *)
}

type state = Sfalse | Snone | Sactive of core

type t = { sdb : Database.t; state : state }

let create ?(exact = false) ?(presolve = true) ?(relaxation = Encode.Ilp) semantics q db =
  let witnesses = Eval.witnesses q db in
  let state =
    match Encode.shared_of_witnesses relaxation semantics q db witnesses with
    | Encode.Shared_trivial -> Sfalse
    | Encode.Shared_impossible -> Snone
    | Encode.Shared shared -> (
      let raw = Lp.Frozen.of_model shared.Encode.smodel in
      let prepared =
        if presolve then
          match Lp.Presolve.presolve raw with
          | Lp.Presolve.Reduced (fz, vm) -> Some (fz, Some vm)
          | Lp.Presolve.Infeasible | Lp.Presolve.Unbounded ->
            (* The shared program is always feasible (delete everything,
               flag everything) and has non-negative costs; treat a presolve
               verdict to the contrary as "no contingency" defensively. *)
            None
        else Some (raw, None)
      in
      match prepared with
      | None -> Snone
      | Some (fz, vm) ->
        let engine =
          if exact then Eexact (Lp.Solvers.Exact_bb.create_session fz)
          else Efloat (Lp.Solvers.Float_bb.create_session fz)
        in
        Sactive
          { cshared = shared; cvm = vm; cengine = engine; cdiags = lazy (Lp.Lint.lint raw) })
  in
  { sdb = db; state }

(* --- Delta plumbing ------------------------------------------------------- *)

(* Deltas are phrased against the raw shared program; [translate] renumbers
   them into the presolved one.  A fix conflicting with a presolve-fixed
   value means the combination is infeasible (presolve only fixes what
   feasibility forces on this model family). *)
let translate vm delta =
  match vm with
  | None -> Some delta
  | Some vm ->
    List.fold_left
      (fun acc (v, k) ->
        match acc with
        | None -> None
        | Some d -> (
          match Lp.Presolve.var_image vm v with
          | `Kept j -> Some (Lp.Frozen.Delta.fix j k d)
          | `Fixed k' -> if k' = k then Some d else None))
      (Some Lp.Frozen.Delta.empty)
      (Lp.Frozen.Delta.bindings delta)

let offset_of vm = match vm with Some vm -> Lp.Presolve.obj_offset vm | None -> 0

let lift_sol vm ~of_int sol =
  match vm with Some vm -> Lp.Presolve.lift vm ~of_int sol | None -> sol

(* Witness indicators fixed to 1, counterfactual slack released. *)
let res_delta core =
  List.fold_left
    (fun d (wv, _) -> Lp.Frozen.Delta.force_one wv d)
    (Lp.Frozen.Delta.force_one core.cshared.Encode.sz Lp.Frozen.Delta.empty)
    core.cshared.Encode.switnesses

(* [None]: t appears in no witness. *)
let rsp_delta core t =
  let with_t, without_t =
    List.partition (fun (_, set) -> List.mem t set) core.cshared.Encode.switnesses
  in
  if with_t = [] then None
  else begin
    let d = Lp.Frozen.Delta.fix_zero core.cshared.Encode.sz Lp.Frozen.Delta.empty in
    let d =
      match Hashtbl.find_opt core.cshared.Encode.svar_of_tuple t with
      | Some v -> Lp.Frozen.Delta.fix_zero v d
      | None -> d (* exogenous tuple: it never had a decision variable *)
    in
    Some (List.fold_left (fun d (wv, _) -> Lp.Frozen.Delta.force_one wv d) d without_t)
  end

(* --- Solving -------------------------------------------------------------- *)

(* Branch-and-bound under the delta, against the session's warm engine;
   mirrors Solve.run_bb but without re-freezing or re-presolving. *)
let run ?node_limit ?time_limit core delta =
  let t0 = Lp.Clock.now () in
  match translate core.cvm delta with
  | None -> `Infeasible
  | Some d ->
    let foffset = float_of_int (offset_of core.cvm) in
    let finish nodes root_lp root_integral objective solution =
      let solve_time = Lp.Clock.elapsed t0 in
      (objective, solution, { nodes; root_lp; root_integral; solve_time })
    in
    (match core.cengine with
    | Eexact s -> begin
      let open Lp.Solvers.Exact_bb in
      let r = solve_session ?node_limit ?time_limit ~delta:d s in
      let root =
        match r.root_objective with Some o -> Numeric.Rat.to_float o +. foffset | None -> nan
      in
      match r.status with
      | Optimal ->
        let obj = Numeric.Rat.to_float (Option.get r.objective) +. foffset in
        let sol =
          lift_sol core.cvm ~of_int:Numeric.Rat.of_int (Option.get r.solution)
          |> Array.map Numeric.Rat.to_float
        in
        `Ok (finish r.nodes root r.root_integral obj sol)
      | Infeasible | Unbounded -> `Infeasible
      | Feasible -> `Budget (Option.map (fun o -> Numeric.Rat.to_float o +. foffset) r.objective)
      | Limit_no_solution -> `Budget None
    end
    | Efloat s -> begin
      let open Lp.Solvers.Float_bb in
      let r = solve_session ?node_limit ?time_limit ~delta:d s in
      let root = match r.root_objective with Some o -> o +. foffset | None -> nan in
      match r.status with
      | Optimal ->
        let sol = lift_sol core.cvm ~of_int:float_of_int (Option.get r.solution) in
        `Ok (finish r.nodes root r.root_integral (Option.get r.objective +. foffset) sol)
      | Infeasible | Unbounded -> `Infeasible
      | Feasible -> `Budget (Option.map (fun o -> o +. foffset) r.objective)
      | Limit_no_solution -> `Budget None
    end)

let read_tuples core sol =
  List.filter_map
    (fun (v, tid) -> if sol.(v) > 0.5 then Some tid else None)
    core.cshared.Encode.stuple_of_var

let round_value x = int_of_float (Float.round x)

let resilience ?node_limit ?time_limit t =
  match t.state with
  | Sfalse -> Query_false
  | Snone -> No_contingency
  | Sactive core -> (
    match run ?node_limit ?time_limit core (res_delta core) with
    | `Infeasible -> No_contingency
    | `Budget incumbent -> Budget_exhausted (Option.map round_value incumbent)
    | `Ok (obj, sol, st) ->
      Solved
        { res_value = round_value obj; contingency = read_tuples core sol; res_stats = st })

let responsibility ?node_limit ?time_limit t tid =
  match t.state with
  | Sfalse -> Query_false
  | Snone -> No_contingency
  | Sactive core -> (
    match rsp_delta core tid with
    | None -> No_contingency
    | Some delta -> (
      match run ?node_limit ?time_limit core delta with
      | `Infeasible -> No_contingency
      | `Budget incumbent -> Budget_exhausted (Option.map round_value incumbent)
      | `Ok (obj, sol, st) ->
        Solved
          {
            rsp_value = round_value obj;
            responsibility_set = read_tuples core sol;
            rsp_stats = st;
          }))

let ranking ?node_limit ?time_limit t =
  match t.state with
  | Sfalse | Snone -> []
  | Sactive core ->
    Database.tuples t.sdb
    |> List.filter_map (fun info ->
           let tid = info.Database.id in
           (* Only endogenous tuples appearing in some witness have a
              decision variable; everything else is skipped without a
              solve (exogenous tuples cannot be explanations, and a tuple
              outside every witness cannot be counterfactual). *)
           if not (Hashtbl.mem core.cshared.Encode.svar_of_tuple tid) then None
           else
             match responsibility ?node_limit ?time_limit t tid with
             | Solved a ->
               let k = a.rsp_value in
               Some (tid, k, 1.0 /. (1.0 +. float_of_int k))
             | Query_false | No_contingency | Budget_exhausted _ -> None)
    |> List.stable_sort (fun (_, a, _) (_, b, _) -> compare a b)

(* --- Relaxation views ----------------------------------------------------- *)

let read_values core sol =
  List.map (fun (v, tid) -> (tid, sol.(v))) core.cshared.Encode.stuple_of_var

let relax_run core delta =
  match translate core.cvm delta with
  | None -> None
  | Some d ->
    let foffset = float_of_int (offset_of core.cvm) in
    let outcome =
      match core.cengine with
      | Efloat s -> (
        match Lp.Solvers.Float_bb.relax ~delta:d s with
        | `Optimal (obj, sol) -> Some (obj +. foffset, lift_sol core.cvm ~of_int:float_of_int sol)
        | `Infeasible | `Unbounded -> None)
      | Eexact s -> (
        match Lp.Solvers.Exact_bb.relax ~delta:d s with
        | `Optimal (obj, sol) ->
          Some
            ( Numeric.Rat.to_float obj +. foffset,
              lift_sol core.cvm ~of_int:Numeric.Rat.of_int sol |> Array.map Numeric.Rat.to_float
            )
        | `Infeasible | `Unbounded -> None)
    in
    Option.map (fun (obj, sol) -> (obj, read_values core sol)) outcome

let resilience_solution t =
  match t.state with
  | Sfalse | Snone -> None
  | Sactive core -> relax_run core (res_delta core)

let responsibility_solution t tid =
  match t.state with
  | Sfalse | Snone -> None
  | Sactive core -> (
    match rsp_delta core tid with
    | None -> None
    | Some delta -> (
      match run core delta with
      | `Infeasible | `Budget _ -> None
      | `Ok (obj, sol, _) -> Some (obj, read_values core sol)))

let diagnostics t =
  match t.state with Sfalse | Snone -> [] | Sactive core -> Lazy.force core.cdiags
