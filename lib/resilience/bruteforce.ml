open Relalg

(* Enumerate subsets of the endogenous tuples by bitmask, tracking the best
   total weight.  A simple weight-based prune keeps this usable up to ~20
   tuples. *)

let subsets_best candidates cost accept =
  let arr = Array.of_list candidates in
  let n = Array.length arr in
  let best = ref None in
  let total = 1 lsl n in
  for mask = 0 to total - 1 do
    let rec weight i acc =
      if i >= n then acc
      else if mask land (1 lsl i) <> 0 then weight (i + 1) (acc + cost arr.(i))
      else weight (i + 1) acc
    in
    let w = weight 0 0 in
    let promising = match !best with Some b -> w < b | None -> true in
    if promising then begin
      let chosen =
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list arr)
      in
      if accept chosen then best := Some w
    end
  done;
  !best

(* Family variant: collect *every* accepted subset of minimum total weight.
   [subsets_best] prunes ties with a strict [w < b] test — correct for the
   optimal value, but it silently drops equal-weight optima, so the family
   collector must admit [w <= b] and reset/extend the accumulator. *)

let subsets_family candidates cost accept =
  let arr = Array.of_list candidates in
  let n = Array.length arr in
  let best = ref None in
  let sets = ref [] in
  let total = 1 lsl n in
  for mask = 0 to total - 1 do
    let rec weight i acc =
      if i >= n then acc
      else if mask land (1 lsl i) <> 0 then weight (i + 1) (acc + cost arr.(i))
      else weight (i + 1) acc
    in
    let w = weight 0 0 in
    let promising = match !best with Some b -> w <= b | None -> true in
    if promising then begin
      let chosen =
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list arr)
      in
      if accept chosen then
        match !best with
        | Some b when w = b -> sets := chosen :: !sets
        | _ ->
            best := Some w;
            sets := [ chosen ]
    end
  done;
  match !best with
  | None -> None
  | Some w ->
      let canon =
        List.sort_uniq compare (List.map (List.sort compare) !sets)
      in
      Some (w, canon)

let resilience semantics q db =
  if not (Eval.holds q db) then None
  else begin
    let endo = Problem.endogenous_tuples q db in
    let cost tid = Problem.weight semantics (Database.tuple db tid) in
    subsets_best endo cost (fun gamma ->
        let db' = Database.restrict db (fun info -> not (List.mem info.Database.id gamma)) in
        not (Eval.holds q db'))
  end

let responsibility semantics q db t =
  if not (Eval.holds q db) then None
  else begin
    let endo = List.filter (fun tid -> tid <> t) (Problem.endogenous_tuples q db) in
    let cost tid = Problem.weight semantics (Database.tuple db tid) in
    subsets_best endo cost (fun gamma ->
        let db' = Database.restrict db (fun info -> not (List.mem info.Database.id gamma)) in
        Eval.holds q db'
        &&
        let db'' = Database.restrict db' (fun info -> info.Database.id <> t) in
        not (Eval.holds q db''))
  end

let resilience_family semantics q db =
  if not (Eval.holds q db) then None
  else begin
    let endo = Problem.endogenous_tuples q db in
    let cost tid = Problem.weight semantics (Database.tuple db tid) in
    subsets_family endo cost (fun gamma ->
        let db' = Database.restrict db (fun info -> not (List.mem info.Database.id gamma)) in
        not (Eval.holds q db'))
  end

let responsibility_family semantics q db t =
  if not (Eval.holds q db) then None
  else begin
    let endo = List.filter (fun tid -> tid <> t) (Problem.endogenous_tuples q db) in
    let cost tid = Problem.weight semantics (Database.tuple db tid) in
    subsets_family endo cost (fun gamma ->
        let db' = Database.restrict db (fun info -> not (List.mem info.Database.id gamma)) in
        Eval.holds q db'
        &&
        let db'' = Database.restrict db' (fun info -> info.Database.id <> t) in
        not (Eval.holds q db''))
  end
