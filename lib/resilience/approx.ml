open Relalg

type result = { value : int; tuples : Database.tuple_id list }

let weight_sum semantics db tids =
  List.fold_left (fun acc tid -> acc + Problem.weight semantics (Database.tuple db tid)) 0 tids

(* Round every tuple variable at threshold 1/m (Theorem 9.1).  The values
   come out of a {!Session} relaxation solve as (tuple, value) pairs. *)
let round_tuples semantics db values m =
  let threshold = (1.0 /. float_of_int m) -. 1e-9 in
  let tids = List.filter_map (fun (tid, x) -> if x >= threshold then Some tid else None) values in
  { value = weight_sum semantics db tids; tuples = tids }

let lp_rounding_res semantics q db =
  let m = Array.length q.Cq.atoms in
  let session = Session.create ~relaxation:Encode.Lp semantics q db in
  match Session.resilience_solution session with
  | Some (_, values) -> Some (round_tuples semantics db values m)
  | None -> None

let lp_rounding_rsp semantics q db t =
  let m = Array.length q.Cq.atoms in
  let session = Session.create ~relaxation:Encode.Milp semantics q db in
  match Session.responsibility_solution session t with
  | Some (_, values) -> Some (round_tuples semantics db values m)
  | None -> None

(* Sweep all m!/2 orderings with the given key mode and keep the cheapest
   finite cut. *)
let flow_sweep mode solve_one q db =
  let witnesses = Eval.witnesses q db in
  if witnesses = [] then None
  else begin
    let best = ref None in
    List.iter
      (fun order ->
        match solve_one ~order ~witnesses mode with
        | Some (value, tids) when not (Netflow.Maxflow.is_infinite value) -> (
          match !best with
          | Some { value = bv; _ } when bv <= value -> ()
          | _ -> best := Some { value; tuples = tids })
        | Some _ | None -> ())
      (Netflow.Linearize.all_orders q);
    !best
  end

let flow_res mode semantics q db =
  let weight = Problem.weight_fn semantics q db in
  flow_sweep mode
    (fun ~order ~witnesses mode ->
      let graph = Netflow.Flow_res.build q ~order ~weight ~db ~witnesses mode in
      Some (Netflow.Flow_res.resilience_cut graph))
    q db

let flow_rsp mode semantics q db t =
  let weight = Problem.weight_fn semantics q db in
  flow_sweep mode
    (fun ~order ~witnesses mode ->
      let graph = Netflow.Flow_res.build q ~order ~weight ~db ~witnesses mode in
      Netflow.Flow_res.responsibility_cut graph ~tuple:t)
    q db

let flow_ct_res semantics q db = flow_res Netflow.Flow_res.Adjacent semantics q db
let flow_cw_res semantics q db = flow_res Netflow.Flow_res.Spanning semantics q db
let flow_ct_rsp semantics q db t = flow_rsp Netflow.Flow_res.Adjacent semantics q db t
let flow_cw_rsp semantics q db t = flow_rsp Netflow.Flow_res.Spanning semantics q db t
