open! Relalg

(** A solve session: pay for witness enumeration, encoding, lint and
    presolve {e once}, then answer resilience and per-tuple responsibility
    questions as cheap delta-solves against one frozen program.

    The session builds the shared super-model of {!Encode.shared_of_witnesses}
    (tuple variables, witness indicators, counterfactual slack), freezes it
    ({!Lp.Frozen}), presolves the frozen form, and opens one warm-started
    branch-and-bound session over it ({!Lp.Branch_bound}).  Every question is
    then a {!Lp.Frozen.Delta} — a set of bound fixes — against that matrix:

    - {!resilience} fixes every witness indicator to 1;
    - {!responsibility}[ t] fixes [X\[t\] = 0], the counterfactual slack to
      0, and the indicator of every witness avoiding [t] to 1;
    - {!ranking} runs the responsibility delta for every endogenous witness
      tuple, so the whole batch reuses one matrix, one presolve, and the
      dual-simplex basis of the previous optimum.

    {b Dense regime.}  The shared super-model has one row per (witness,
    member) pair plus indicator links, so on dense instances (many large
    witnesses) it grows far past the per-tuple programs it replaces.
    Under the sparse LU basis kernel a warm pivot costs nonzeros, not
    rows, and the shared batch wins at every size measured so far (PR 7:
    up to ~10^4 rows, 1.4-4.2x over cold); the row threshold only guards
    the unmeasured regime beyond that.  When the raw shared program
    exceeds it (override with [dense_rows_threshold]) the session
    switches {!responsibility}, {!ranking} and {!ranking_par} to the cold
    per-tuple path: a fresh ILP[RSP*](t) encode + freeze + presolve +
    solve per tuple, exactly what {!Solve.responsibility} runs, minus the
    witness re-enumeration.  {!resilience} and the relaxation views always
    use the shared program (they are one solve, not a batch).

    Answers agree with the one-shot {!Solve} functions; the differential
    test suite checks this per tuple on random instances, float and exact. *)

type t

type stats = {
  nodes : int;
      (** Branch-and-bound nodes (LPs solved).  [0] when the solve was
          settled by an integrality certificate without entering
          branch-and-bound. *)
  root_lp : float;  (** Root relaxation objective. *)
  root_integral : bool;  (** Was the root LP already integral? *)
  certified : bool;
      (** The solve was settled by an integrality certificate: the
          warm-started root relaxation's optimum was integral on the integer
          variables (a root-vertex certificate — guaranteed whenever
          {!Lp.Struct} certifies the session's matrix structurally) and was
          accepted as the ILP optimum with zero branch-and-bound nodes.
          Counted by the [solve.certified] / [solve.certified_structural]
          {!Obs} counters. *)
  solve_time : float;
      (** Seconds of {e pure} branch-and-bound for this question — excludes
          encoding, freezing and presolve (see [prep_time]). *)
  prep_time : float;
      (** Seconds of per-question preparation: encode + freeze + presolve +
          engine build on the cold per-tuple path.  [0.] on the shared-delta
          path, where preparation is paid once per session and reported by
          {!profile} instead. *)
  pivots : int;  (** Simplex pivots spent on this question. *)
  refactors : int;  (** Basis refactorisations spent on this question. *)
}

type 'a outcome =
  | Solved of 'a
  | Query_false  (** D does not satisfy Q. *)
  | No_contingency
      (** No contingency set exists: exogenous tuples block every option, or
          the responsibility tuple cannot be made counterfactual. *)
  | Budget_exhausted of int option
      (** Node/time limit hit; carries the incumbent value if any. *)

type res_answer = { res_value : int; contingency : Database.tuple_id list; res_stats : stats }

type rsp_answer = {
  rsp_value : int;
  responsibility_set : Database.tuple_id list;
  rsp_stats : stats;
}

type strategy = [ `Shared_delta | `Cold_per_tuple ]
(** How the session batches per-tuple responsibility solves. *)

type profile = {
  witnesses_s : float;  (** Witness enumeration (the relational join). *)
  encode_s : float;  (** Shared-program encode + freeze, in {!create}. *)
  lint_s : float;  (** {!Lp.Lint} over the frozen program (lazy). *)
  prep_s : float;
      (** Presolve + engine build: the session's own lazy shared prep plus
          the per-question prep of every cold per-tuple solve. *)
  solve_s : float;  (** Pure branch-and-bound time summed over questions. *)
  questions : int;  (** Questions asked (each ranking candidate counts). *)
}
(** Cumulative per-phase wall time for one session, in seconds.  Lazy
    phases report [0.] until something forces them; solve/prep sums grow
    with every answered question. *)

val create :
  ?exact:bool ->
  ?presolve:bool ->
  ?relaxation:Encode.relaxation ->
  ?basis:Lp.Basis.choice ->
  ?dense_rows_threshold:int ->
  ?witnesses:Eval.witness list ->
  Problem.semantics ->
  Cq.t ->
  Database.t ->
  t
(** [witnesses], when given, must be exactly [Eval.witnesses q db] (any
    order): the enumeration join is skipped and the caller's list is
    encoded directly — how the incremental service reuses witnesses it
    maintained under inserts/deletes instead of re-joining per question.
    Enumerate witnesses, encode and freeze the shared program, pick the
    batching {!strategy} by its row count, and open the solver session
    (presolve and engine are built lazily, on the first shared-program
    solve).  [relaxation] (default {!Encode.Ilp}) fixes the integrality
    discipline of the shared program for the session's lifetime:
    {!Encode.Ilp} for exact answers, {!Encode.Milp}/{!Encode.Lp} for the
    relaxations feeding {!Approx}.  [basis] (default [`Auto] = sparse LU)
    selects the simplex basis kernel for every engine the session opens —
    the shared warm engine, each {!ranking_par} domain engine, and every
    cold per-tuple solve; [`Dense] forces the reference dense inverse
    (used by the [dense_vs_sparse_basis] differential oracle). *)

val batch_strategy : t -> strategy
(** The regime {!create} picked — [`Cold_per_tuple] iff the raw shared
    program's row count exceeded the dense threshold. *)

val resilience : ?node_limit:int -> ?time_limit:float -> t -> res_answer outcome
(** RES*(Q, D) as a delta-solve (always on the shared program). *)

val responsibility :
  ?node_limit:int -> ?time_limit:float -> t -> Database.tuple_id -> rsp_answer outcome
(** RSP*(Q, D, t), via the session's {!batch_strategy}.  [No_contingency]
    when [t] appears in no witness (removing it cannot change the answer). *)

val ranking :
  ?node_limit:int -> ?time_limit:float -> t -> (Database.tuple_id * int * float) list
(** Rank every {e endogenous} witness tuple as an explanation of the query
    answer: (tuple, minimal contingency size k, responsibility 1/(1+k)),
    best first (stable in database order).  Exogenous tuples and tuples
    outside every witness are skipped up front, without a solve; tuples
    whose delta is infeasible or over budget are omitted. *)

val ranking_par :
  ?node_limit:int ->
  ?time_limit:float ->
  ?jobs:int ->
  t ->
  (Database.tuple_id * int * float) list
(** {!ranking} with the per-tuple solves drained by an {!Lp.Pool}: under
    [`Shared_delta] each participating domain opens its own warm simplex
    engine against the session's shared frozen arrays and runs a chunk of
    delta-solves; under [`Cold_per_tuple] each task is a self-contained
    cold solve.  Results are merged in task order, so the output is
    {e bit-identical} to {!ranking} for every [jobs] (the ranking compares
    optimal objective values, which are basis-independent).  [jobs = 0]
    (the default) means {!Lp.Pool.default_jobs}; [jobs = 1] still routes
    through the pool's sequential path, so the telemetry it emits has the
    same shape at every job count.  The session's database must not be
    mutated during the call. *)

val enumerate_resilience :
  ?node_limit:int ->
  ?time_limit:float ->
  ?jobs:int ->
  ?cap:int ->
  t ->
  Enumerate.family outcome
(** Stream {e every} minimum contingency set (DESIGN.md §13): after the
    first optimum, an optimal-cost pin row and one no-good cut per emitted
    set are appended to the question's delta and the warm engine re-solves
    — each cut is a single appended row the dual-simplex session absorbs
    basis-intact, so a re-solve costs a handful of pivots, not a cold
    solve.  Always runs on the shared program (enumeration is one cut
    chain, not a per-tuple batch, so the dense-regime fallback does not
    apply).  The family is returned in canonical order with
    [exhausted = true] when the final re-solve proved it complete;
    [time_limit] bounds the whole chain (wall clock), [node_limit] each
    solve, and [cap] the number of sets as a safety valve (a capped result
    has [exhausted = false]).  [jobs > 1] splits the search into the
    |S0| disjoint subspaces of a Lawler/Murty partition of the first
    optimum, each enumerated on its own warm engine over the shared frozen
    arrays; an exhausted enumeration returns the {e identical} family at
    every job count ([jobs = 0] means {!Lp.Pool.default_jobs}).
    [Budget_exhausted] is returned only when the budget died before the
    first optimum; later budget stops return the partial family with
    [exhausted = false]. *)

val enumerate_responsibility :
  ?node_limit:int ->
  ?time_limit:float ->
  ?jobs:int ->
  ?cap:int ->
  t ->
  Database.tuple_id ->
  Enumerate.family outcome
(** All minimum contingency sets of RSP*(Q, D, t), same contract as
    {!enumerate_resilience}.  The [OPT = 0] family is [{[[]]}] (the empty
    set is the unique zero-weight set). *)

val resilience_solution : t -> (float * (Database.tuple_id * float) list) option
(** The {e LP relaxation} optimum of the resilience delta (integrality
    ignored), with the per-tuple fractional values — input to the rounding
    approximation.  [None] when the query is false or no contingency
    exists. *)

val responsibility_solution :
  t -> Database.tuple_id -> (float * (Database.tuple_id * float) list) option
(** The session-relaxation optimum of the responsibility delta, solved with
    branch-and-bound (so under {!Encode.Milp} this is MILP[RSP*](t)), with
    per-tuple values.  [None] when no program exists or the solve fails. *)

val diagnostics : t -> Lp.Lint.diag list
(** {!Lp.Lint} over the frozen shared program, computed once per session and
    cached.  Empty when the session never built a program. *)

val profile : t -> profile
(** The session's cumulative phase breakdown so far.  Cheap (reads an
    accumulator); call it again after more questions for updated sums.
    Accounting happens on the submitting domain only, so it is safe to call
    between (not during) {!ranking_par} batches. *)

val runlog_solve_fields :
  op:string ->
  status:string ->
  path:string ->
  cert:Lp.Struct.t ->
  ?stats:stats ->
  wall:float ->
  unit ->
  (string * Obs.Runlog.field) list
(** One {!Obs.Runlog} record for a solve: the program's [Lp.Struct]
    feature vector plus dispatch path ([certified]/[bb]/[relax]) and
    outcome.  The schema every solve site (the session engine and
    [Solve.run_bb]) appends under the run-log's versioned header; exposed
    so they stay identical. *)
