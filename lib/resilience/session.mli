open! Relalg

(** A solve session: pay for witness enumeration, encoding, lint and
    presolve {e once}, then answer resilience and per-tuple responsibility
    questions as cheap delta-solves against one frozen program.

    The session builds the shared super-model of {!Encode.shared_of_witnesses}
    (tuple variables, witness indicators, counterfactual slack), freezes it
    ({!Lp.Frozen}), presolves the frozen form, and opens one warm-started
    branch-and-bound session over it ({!Lp.Branch_bound}).  Every question is
    then a {!Lp.Frozen.Delta} — a set of bound fixes — against that matrix:

    - {!resilience} fixes every witness indicator to 1;
    - {!responsibility}[ t] fixes [X\[t\] = 0], the counterfactual slack to
      0, and the indicator of every witness avoiding [t] to 1;
    - {!ranking} runs the responsibility delta for every endogenous witness
      tuple, so the whole batch reuses one matrix, one presolve, and the
      dual-simplex basis of the previous optimum.

    Answers agree with the one-shot {!Solve} functions; the differential
    test suite checks this per tuple on random instances, float and exact. *)

type t

type stats = {
  nodes : int;  (** Branch-and-bound nodes (LPs solved). *)
  root_lp : float;  (** Root relaxation objective. *)
  root_integral : bool;  (** Was the root LP already integral? *)
  solve_time : float;  (** Seconds spent in the solver for this question. *)
}

type 'a outcome =
  | Solved of 'a
  | Query_false  (** D does not satisfy Q. *)
  | No_contingency
      (** No contingency set exists: exogenous tuples block every option, or
          the responsibility tuple cannot be made counterfactual. *)
  | Budget_exhausted of int option
      (** Node/time limit hit; carries the incumbent value if any. *)

type res_answer = { res_value : int; contingency : Database.tuple_id list; res_stats : stats }

type rsp_answer = {
  rsp_value : int;
  responsibility_set : Database.tuple_id list;
  rsp_stats : stats;
}

val create :
  ?exact:bool ->
  ?presolve:bool ->
  ?relaxation:Encode.relaxation ->
  Problem.semantics ->
  Cq.t ->
  Database.t ->
  t
(** Enumerate witnesses, encode, freeze, presolve, open the solver session.
    [relaxation] (default {!Encode.Ilp}) fixes the integrality discipline of
    the shared program for the session's lifetime: {!Encode.Ilp} for exact
    answers, {!Encode.Milp}/{!Encode.Lp} for the relaxations feeding
    {!Approx}. *)

val resilience : ?node_limit:int -> ?time_limit:float -> t -> res_answer outcome
(** RES*(Q, D) as a delta-solve. *)

val responsibility :
  ?node_limit:int -> ?time_limit:float -> t -> Database.tuple_id -> rsp_answer outcome
(** RSP*(Q, D, t) as a delta-solve.  [No_contingency] when [t] appears in no
    witness (removing it cannot change the answer). *)

val ranking :
  ?node_limit:int -> ?time_limit:float -> t -> (Database.tuple_id * int * float) list
(** Rank every {e endogenous} witness tuple as an explanation of the query
    answer: (tuple, minimal contingency size k, responsibility 1/(1+k)),
    best first (stable in database order).  Exogenous tuples and tuples
    outside every witness are skipped up front, without a solve; tuples
    whose delta is infeasible or over budget are omitted. *)

val resilience_solution : t -> (float * (Database.tuple_id * float) list) option
(** The {e LP relaxation} optimum of the resilience delta (integrality
    ignored), with the per-tuple fractional values — input to the rounding
    approximation.  [None] when the query is false or no contingency
    exists. *)

val responsibility_solution :
  t -> Database.tuple_id -> (float * (Database.tuple_id * float) list) option
(** The session-relaxation optimum of the responsibility delta, solved with
    branch-and-bound (so under {!Encode.Milp} this is MILP[RSP*](t)), with
    per-tuple values.  [None] when no program exists or the solve fails. *)

val diagnostics : t -> Lp.Lint.diag list
(** {!Lp.Lint} over the frozen shared program, computed once per session and
    cached.  Empty when the session never built a program. *)
