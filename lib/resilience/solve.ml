open Relalg

type stats = Session.stats = {
  nodes : int;
  root_lp : float;
  root_integral : bool;
  certified : bool;
  solve_time : float;
  prep_time : float;
  pivots : int;
  refactors : int;
}

let c_certified = Obs.Counter.create "solve.certified"
let c_certified_structural = Obs.Counter.create "solve.certified_structural"

(* Same metrics-plane distributions as Session: both paths are "one ILP
   solve" to the registry, so the instruments are shared by name
   (registration is idempotent). *)
let h_solve_seconds =
  Obs.Metrics.histogram ~help:"Wall seconds per ILP solve (certificate-aware dispatch)"
    "session.solve.seconds"

let h_solve_pivots =
  Obs.Metrics.histogram ~help:"Simplex pivots per ILP solve" "session.solve.pivots"

let h_solve_nodes =
  Obs.Metrics.histogram ~help:"Branch-and-bound nodes per ILP solve" "session.solve.nodes"

type 'a outcome = 'a Session.outcome =
  | Solved of 'a
  | Query_false
  | No_contingency
  | Budget_exhausted of int option

type res_answer = Session.res_answer = {
  res_value : int;
  contingency : Database.tuple_id list;
  res_stats : stats;
}

type rsp_answer = Session.rsp_answer = {
  rsp_value : int;
  responsibility_set : Database.tuple_id list;
  rsp_stats : stats;
}

(* Presolve front-end shared by every solve: shrink the model (or decide it
   outright), remembering how to lift reduced solutions and objectives back
   to the original encoding's variables. *)
let prepare ~presolve model =
  let fz = Lp.Frozen.of_model model in
  if presolve then
    match Lp.Presolve.presolve fz with
    | Lp.Presolve.Reduced (reduced, vm) -> `Frozen (reduced, Some vm)
    | Lp.Presolve.Infeasible | Lp.Presolve.Unbounded ->
      (* The covering encodings are never unbounded (non-negative costs);
         an unbounded verdict can only mean no contingency exists. *)
      `Infeasible
  else `Frozen (fz, None)

let lift_sol vm ~of_int sol =
  match vm with Some vm -> Lp.Presolve.lift vm ~of_int sol | None -> sol

let offset_of vm = match vm with Some vm -> Lp.Presolve.obj_offset vm | None -> 0

(* Certificate-aware dispatch + branch-and-bound over the chosen field,
   normalising the result.  Mirrors Session.run_engine on a cold program:
   the root LP relaxation is solved first (branch-and-bound would start
   there anyway), and an optimum integral on the integer variables is
   accepted as the ILP optimum — a root-vertex certificate, zero
   branch-and-bound nodes, guaranteed whenever Lp.Struct certifies the
   matrix structurally.  Otherwise branch-and-bound runs on the same warm
   session, re-solving the root from its final basis. *)
let run_bb ?(op = "solve") ~exact ~presolve ?node_limit ?time_limit (enc : Encode.encoding) =
  let tp0 = Lp.Clock.now () in
  match prepare ~presolve enc.Encode.model with
  | `Infeasible -> `Infeasible
  | `Frozen (fz, vm) ->
    (* The structural analysis is preparation too: it reads only the frozen
       arrays, before any solve. *)
    let cert = Lp.Struct.analyze fz in
    let ivars = Lp.Frozen.integer_vars fz in
    let prep_time = Lp.Clock.elapsed tp0 in
    let t0 = Lp.Clock.now () in
    let offset = offset_of vm in
    let foffset = float_of_int offset in
    let finish ?(certified = false) nodes root_lp root_integral pivots refactors objective
        solution =
      let solve_time = Lp.Clock.elapsed t0 in
      if certified then begin
        Obs.Counter.incr c_certified;
        if Lp.Struct.structural cert then Obs.Counter.incr c_certified_structural
      end;
      let st =
        { nodes; root_lp; root_integral; certified; solve_time; prep_time; pivots; refactors }
      in
      Obs.Metrics.observe h_solve_seconds solve_time;
      Obs.Metrics.observe h_solve_pivots (float_of_int pivots);
      Obs.Metrics.observe h_solve_nodes (float_of_int nodes);
      Obs.Runlog.record (fun () ->
          Session.runlog_solve_fields ~op ~status:"optimal"
            ~path:(if certified then "certified" else "bb")
            ~cert ~stats:st ~wall:solve_time ());
      (objective, solution, st)
    in
    if exact then begin
      let open Lp.Solvers.Exact_bb in
      let s = create_session fz in
      let certified =
        match relax s with
        | `Optimal (obj, x) when Lp.Solvers.Exact_simplex.integral_on x ivars -> Some (obj, x)
        | `Optimal _ | `Infeasible | `Unbounded -> None
      in
      match certified with
      | Some (obj, x) ->
        let obj = Numeric.Rat.to_float obj +. foffset in
        let sol =
          lift_sol vm ~of_int:Numeric.Rat.of_int x |> Array.map Numeric.Rat.to_float
        in
        `Ok (finish ~certified:true 0 obj true 0 0 obj sol)
      | None -> (
        let r = solve_session ?node_limit ?time_limit s in
        let root =
          match r.root_objective with Some o -> Numeric.Rat.to_float o +. foffset | None -> nan
        in
        match r.status with
        | Optimal ->
          let obj = Numeric.Rat.to_float (Option.get r.objective) +. foffset in
          let sol =
            lift_sol vm ~of_int:Numeric.Rat.of_int (Option.get r.solution)
            |> Array.map Numeric.Rat.to_float
          in
          `Ok (finish r.nodes root r.root_integral r.pivots r.refactors obj sol)
        | Infeasible -> `Infeasible
        | Unbounded -> `Infeasible
        | Feasible -> `Budget (Option.map (fun o -> Numeric.Rat.to_float o +. foffset) r.objective)
        | Limit_no_solution -> `Budget None)
    end
    else begin
      let open Lp.Solvers.Float_bb in
      let s = create_session fz in
      let certified =
        match relax s with
        | `Optimal (obj, x) when Lp.Solvers.Float_simplex.integral_on x ivars -> Some (obj, x)
        | `Optimal _ | `Infeasible | `Unbounded -> None
      in
      match certified with
      | Some (obj, x) ->
        let sol = lift_sol vm ~of_int:float_of_int x in
        `Ok (finish ~certified:true 0 (obj +. foffset) true 0 0 (obj +. foffset) sol)
      | None -> (
        let r = solve_session ?node_limit ?time_limit s in
        let root = match r.root_objective with Some o -> o +. foffset | None -> nan in
        match r.status with
        | Optimal ->
          let sol = lift_sol vm ~of_int:float_of_int (Option.get r.solution) in
          `Ok
            (finish r.nodes root r.root_integral r.pivots r.refactors
               (Option.get r.objective +. foffset)
               sol)
        | Infeasible -> `Infeasible
        | Unbounded -> `Infeasible
        | Feasible -> `Budget (Option.map (fun o -> o +. foffset) r.objective)
        | Limit_no_solution -> `Budget None)
    end

let round_value x = int_of_float (Float.round x)

let resilience ?(exact = false) ?(presolve = true) ?node_limit ?time_limit semantics q db =
  let witnesses = Eval.witnesses q db in
  if witnesses = [] then Query_false
  else begin
    match Encode.res_of_witnesses Encode.Ilp semantics q db witnesses with
    | Encode.Trivial _ -> Query_false
    | Encode.Impossible -> No_contingency
    | Encode.Encoded enc -> (
      match run_bb ~op:"resilience" ~exact ~presolve ?node_limit ?time_limit enc with
      | `Infeasible -> No_contingency
      | `Budget incumbent -> Budget_exhausted (Option.map round_value incumbent)
      | `Ok (obj, sol, stats) ->
        Solved
          { res_value = round_value obj; contingency = Encode.contingency enc sol; res_stats = stats })
  end

let lp_optimum ~exact ~presolve (enc : Encode.encoding) =
  match prepare ~presolve enc.Encode.model with
  | `Infeasible -> None
  | `Frozen (fz, vm) ->
    let foffset = float_of_int (offset_of vm) in
    if exact then begin
      match Lp.Solvers.Exact_simplex.solve_frozen fz with
      | Optimal { objective; solution } ->
        let sol =
          lift_sol vm ~of_int:Numeric.Rat.of_int solution |> Array.map Numeric.Rat.to_float
        in
        Some (Numeric.Rat.to_float objective +. foffset, sol)
      | Infeasible | Unbounded -> None
    end
    else begin
      match Lp.Solvers.Float_simplex.solve_frozen fz with
      | Optimal { objective; solution } ->
        Some (objective +. foffset, lift_sol vm ~of_int:float_of_int solution)
      | Infeasible | Unbounded -> None
    end

let resilience_lp_solution ?(exact = false) ?(presolve = true) semantics q db =
  match Encode.res Encode.Lp semantics q db with
  | Encode.Trivial _ | Encode.Impossible -> None
  | Encode.Encoded enc -> (
    match lp_optimum ~exact ~presolve enc with
    | None -> None
    | Some (obj, sol) -> Some (obj, enc, sol))

let resilience_lp ?exact ?presolve semantics q db =
  Option.map (fun (obj, _, _) -> obj) (resilience_lp_solution ?exact ?presolve semantics q db)

let responsibility ?(exact = false) ?(presolve = true) ?node_limit ?time_limit
    ?(relaxation = Encode.Ilp) semantics q db t =
  let witnesses = Eval.witnesses q db in
  if witnesses = [] then Query_false
  else begin
    match Encode.rsp_of_witnesses relaxation semantics q db witnesses t with
    | Encode.Trivial _ -> Query_false
    | Encode.Impossible -> No_contingency
    | Encode.Encoded enc -> (
      match run_bb ~op:"responsibility" ~exact ~presolve ?node_limit ?time_limit enc with
      | `Infeasible -> No_contingency
      | `Budget incumbent -> Budget_exhausted (Option.map round_value incumbent)
      | `Ok (obj, sol, stats) ->
        Solved
          {
            rsp_value = round_value obj;
            responsibility_set = Encode.contingency enc sol;
            rsp_stats = stats;
          })
  end

let responsibility_lp ?(exact = false) ?(presolve = true) semantics q db t =
  match Encode.rsp Encode.Lp semantics q db t with
  | Encode.Trivial _ | Encode.Impossible -> None
  | Encode.Encoded enc -> Option.map fst (lp_optimum ~exact ~presolve enc)

let enumerate_resilience ?exact ?presolve ?node_limit ?time_limit ?jobs ?cap semantics q db =
  Session.enumerate_resilience ?node_limit ?time_limit ?jobs ?cap
    (Session.create ?exact ?presolve semantics q db)

let enumerate_responsibility ?exact ?presolve ?node_limit ?time_limit ?jobs ?cap semantics q db
    t =
  Session.enumerate_responsibility ?node_limit ?time_limit ?jobs ?cap
    (Session.create ?exact ?presolve semantics q db)
    t

let responsibility_ranking ?exact ?presolve semantics q db =
  Session.ranking (Session.create ?exact ?presolve semantics q db)

let responsibility_ranking_par ?exact ?presolve ?jobs semantics q db =
  Session.ranking_par ?jobs (Session.create ?exact ?presolve semantics q db)

(* --- Flow baseline ------------------------------------------------------ *)

let linearize_by_domination semantics q =
  match semantics with
  | Problem.Bag -> q
  | Problem.Set ->
    List.fold_left (fun q' i -> Cq.set_exo q' i true) q (Analysis.dominated_atoms q)

(* Fully dominated atoms may be made exogenous for responsibility
   (Theorem 8.12). *)
let linearize_for_rsp semantics q =
  match semantics with
  | Problem.Bag -> q
  | Problem.Set ->
    List.fold_left
      (fun q' i -> if Analysis.fully_dominated q i then Cq.set_exo q' i true else q')
      q
      (List.init (Array.length q.Cq.atoms) (fun i -> i))

let flow_stats t0 =
  {
    nodes = 1;
    root_lp = nan;
    root_integral = true;
    certified = false;
    solve_time = Lp.Clock.elapsed t0;
    prep_time = 0.;
    pivots = 0;
    refactors = 0;
  }

let resilience_flow semantics q db =
  let q' = linearize_by_domination semantics q in
  (* Under a self-join one tuple feeds edges at several positions of the
     order, so the min-cut can double-count its deletion and overestimate
     RES* — the classical encoding is only exact self-join-free (found by
     the differential fuzzer: flow 2 vs ILP 1 on QchainABC with a shared
     R).  Report "no exact flow algorithm" rather than a wrong value. *)
  if not (Cq.self_join_free q') then None
  else
  match Netflow.Linearize.exact_orders q' with
  | [] -> None
  | order :: _ ->
    let t0 = Lp.Clock.now () in
    let witnesses = Eval.witnesses q' db in
    if witnesses = [] then Some Query_false
    else begin
      let weight = Problem.weight_fn semantics q' db in
      let graph = Netflow.Flow_res.build q' ~order ~weight ~db ~witnesses Netflow.Flow_res.Spanning in
      let value, cut = Netflow.Flow_res.resilience_cut graph in
      if Netflow.Maxflow.is_infinite value then Some No_contingency
      else Some (Solved { res_value = value; contingency = cut; res_stats = flow_stats t0 })
    end

let responsibility_flow semantics q db t =
  let q' = linearize_for_rsp semantics q in
  if not (Cq.self_join_free q') then None
  else
  match Netflow.Linearize.exact_orders q' with
  | [] -> None
  | order :: _ ->
    let t0 = Lp.Clock.now () in
    let witnesses = Eval.witnesses q' db in
    if witnesses = [] then Some Query_false
    else begin
      let weight = Problem.weight_fn semantics q' db in
      let graph = Netflow.Flow_res.build q' ~order ~weight ~db ~witnesses Netflow.Flow_res.Spanning in
      match Netflow.Flow_res.responsibility_cut graph ~tuple:t with
      | None -> Some No_contingency
      | Some (value, cut) ->
        if Netflow.Maxflow.is_infinite value then Some No_contingency
        else Some (Solved { rsp_value = value; responsibility_set = cut; rsp_stats = flow_stats t0 })
    end

(* --- Verification helpers ----------------------------------------------- *)

(* Contingency sets can be large on generated instances; membership via a
   hash set keeps verification linear in the database. *)
let id_set tids =
  let set = Hashtbl.create (List.length tids * 2) in
  List.iter (fun tid -> Hashtbl.replace set tid ()) tids;
  set

let verify_contingency _semantics q db gamma =
  let dead = id_set gamma in
  let db' = Database.restrict db (fun info -> not (Hashtbl.mem dead info.Database.id)) in
  not (Eval.holds q db')

let verify_responsibility_set q db t gamma =
  let dead = id_set gamma in
  (not (Hashtbl.mem dead t))
  &&
  let db' = Database.restrict db (fun info -> not (Hashtbl.mem dead info.Database.id)) in
  Eval.holds q db'
  &&
  let db'' = Database.restrict db' (fun info -> info.Database.id <> t) in
  not (Eval.holds q db'')
