open! Relalg

(** Static analysis of queries and instances before solving.

    Complements {!Lp.Lint} (which inspects the finished LP model): these
    checks run on the conjunctive query and the database, where the cause of
    a defect is still visible — a duplicate ILP row is a symptom, a duplicate
    atom is the defect.  Diagnostics reuse {!Lp.Lint.diag} so the CLI can
    render all three layers uniformly.

    Query-level codes (no database needed):

    - [Q101] (error) every atom is exogenous — no tuple can ever be deleted,
      so resilience is undefined whenever the query is true;
    - [Q201] (warning) duplicate atom — the same relation with the same
      argument list appears twice;
    - [Q202] (warning) disconnected query — the atom hypergraph has several
      components, so the witness set is their cartesian product;
    - [Q203] (warning) non-minimal query — a strict sub-query is equivalent
      (Chandra–Merlin); the paper's dichotomies assume minimal queries;
    - [Q204] (warning) constant-only atom — an atom without variables acts as
      a data-dependent on/off switch for the whole query;
    - [Q301] (note) wildcard variable — occurs in exactly one atom position,
      i.e. is pure projection;
    - [Q302] (note) dichotomy advisory, PTIME side — LP[RES*] is integral
      (Theorems 8.6/8.7), branch-and-bound is unnecessary;
    - [Q303] (note) dichotomy advisory, NP-complete side — expect branching;
    - [Q304] (note) self-join query outside the SJ-free dichotomy;
    - [Q305] (note) instance-level downgrade of [Q304]: the query's
      worst-case complexity is unknown, but {!Lp.Struct} certified the
      instance's matrix integral, so this instance is PTIME (emitted by
      {!Validate.refine_query_diags}, never by {!lint_query} itself).

    Instance-level codes (query plus database):

    - [I101] (error) some witness consists solely of exogenous tuples — no
      contingency set exists (the encoder's [Impossible] outcome);
    - [I201] (warning) the query references a relation with no tuples;
    - [I202] (warning) unsatisfiable constant join — an atom's constant
      positions match no tuple of its relation;
    - [I203] (warning) the query is false on the instance — resilience is
      trivially undefined/0;
    - [I301] (note) instance size summary: witnesses, distinct tuple sets
      (= ILP rows), endogenous tuples (= ILP columns). *)

val lint_query : Problem.semantics -> Cq.t -> Lp.Lint.diag list
(** Query-only diagnostics, errors first, deterministic order. *)

val lint_instance : Problem.semantics -> Cq.t -> Database.t -> Lp.Lint.diag list
(** Instance diagnostics (I-codes only — combine with {!lint_query} for the
    full report), errors first, deterministic order. *)
