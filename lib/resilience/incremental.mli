open! Relalg

(** A maintained resilience instance: one (query, database) pair kept alive
    across tuple inserts and deletes, answering questions without re-running
    the witness join from scratch.

    The instance owns a {!Database.copy} of the database it was created on
    and maintains the witness list incrementally:

    - inserting a {e new} tuple runs the delta-join {!Eval.delta_insert}
      (only the witnesses using the new tuple are enumerated) and, when the
      resilience covering program is already built, extends it in place with
      appended columns/rows ({!Lp.Frozen.Delta}) that the warm
      branch-and-bound session absorbs without dropping its basis;
    - re-inserting an {e existing} tuple (multiplicity bump / exogeneity OR)
      and deletes keep the maintained witness list but rebuild the program
      lazily — those mutations move objective weights or drop rows, which
      appends cannot express;
    - {!responsibility} and {!ranking_par} route through a cached
      {!Session.t} created with [~witnesses], so they skip the join but pay
      the shared-program encode once per mutation epoch.

    Every answer must equal the from-scratch {!Solve} answer on the current
    database — the [serve_incremental] differential oracle pins exactly
    that, under random insert/delete streams, at float and exact fields. *)

type t

val create : ?exact:bool -> Problem.semantics -> Cq.t -> Database.t -> t
(** Copies the database (the caller's copy is never mutated) and enumerates
    the initial witnesses; programs are built lazily on first question. *)

val db : t -> Database.t
(** The instance's own database, reflecting all mutations so far.  Callers
    must not mutate it directly — use {!insert}/{!delete}. *)

val witnesses : t -> Eval.witness list
(** The maintained witness list.  Always equal to
    [Eval.witnesses (query t) (db t)] as a set of valuations (order
    differs: incrementally discovered witnesses are appended). *)

val exact : t -> bool
val semantics : t -> Problem.semantics
val query : t -> Cq.t

val insert : ?mult:int -> ?exo:bool -> t -> string -> int array -> Database.tuple_id
(** Inserts a tuple ({!Database.add} semantics: re-inserting an existing
    tuple bumps multiplicity and ORs [exo], with a stable id) and maintains
    the witnesses.  A genuinely new tuple takes the delta-join fast path;
    an existing one invalidates the cached programs. *)

val delete : t -> Database.tuple_id -> unit
(** Removes the tuple ({!Database.remove}) and drops every witness using
    it.  No-op on an id that is not live. *)

val resilience :
  ?node_limit:int -> ?time_limit:float -> t -> Session.res_answer Session.outcome
(** RES*(Q, D) on the current database.  On the append fast path this is a
    warm delta-solve over the extended covering program; otherwise the
    program is rebuilt from the maintained witnesses (still skipping the
    join).  [res_stats.certified] is always [false] here — the raw covering
    program bypasses the certificate-aware {!Session} dispatch. *)

val responsibility :
  ?node_limit:int ->
  ?time_limit:float ->
  t ->
  Database.tuple_id ->
  Session.rsp_answer Session.outcome
(** RSP*(Q, D, t) via the cached shared-program session. *)

val ranking_par :
  ?node_limit:int ->
  ?time_limit:float ->
  ?jobs:int ->
  t ->
  (Database.tuple_id * int * float) list
(** {!Session.ranking_par} on the cached session. *)

val session : t -> Session.t
(** The cached shared-program session for the current database state,
    built on demand (and after every mutation). *)
