open! Relalg

(** Exhaustive-search oracles for tiny instances.  Used by the test suite to
    validate every other solver, and by the IJP search to certify the
    OR-property on candidate gadgets. *)

val resilience : Problem.semantics -> Cq.t -> Database.t -> int option
(** Minimum total weight of an endogenous tuple set whose deletion falsifies
    the query; [None] when the query is already false or no such set
    exists.  Exponential in the number of endogenous tuples — keep instances
    under ~20 tuples. *)

val responsibility : Problem.semantics -> Cq.t -> Database.t -> Database.tuple_id -> int option
(** Minimum total weight of a contingency set making the tuple
    counterfactual; [None] when impossible. *)

val resilience_family :
  Problem.semantics -> Cq.t -> Database.t ->
  (int * Database.tuple_id list list) option
(** The optimal value together with the {e complete} family of minimum-weight
    contingency sets, each set sorted ascending and the family in canonical
    (lexicographic, duplicate-free) order.  Ground truth for the enumeration
    oracle; same exponential budget caveat as {!resilience}. *)

val responsibility_family :
  Problem.semantics -> Cq.t -> Database.t -> Database.tuple_id ->
  (int * Database.tuple_id list list) option
(** All minimum-weight contingency sets that make the tuple counterfactual,
    in the same canonical order as {!resilience_family}. *)
