open Relalg

(* Fast-path appends vs full re-encodes, for `resil serve --stats` and the
   bench harness (dropped unless a trace sink is installed). *)
let c_appends = Obs.Counter.create "incremental.appends"
let c_rebuilds = Obs.Counter.create "incremental.rebuilds"

type engine = Efloat of Lp.Solvers.Float_bb.session | Eexact of Lp.Solvers.Exact_bb.session

(* The resilience fast path: the plain covering program ILP[RES*] frozen
   RAW — deliberately no presolve, so variable indices are stable and a
   tuple insert extends the program by appended columns/rows instead of
   invalidating a reduction.  The warm branch-and-bound session absorbs the
   appends without dropping its basis (see Lp.Frozen.Delta). *)
type res_core = {
  rengine : engine;
  mutable rdelta : Lp.Frozen.Delta.t;  (* grows monotonically by appends *)
  rvar_of_tuple : (Database.tuple_id, int) Hashtbl.t;  (* extended numbering *)
  mutable rtuple_of_var : (int * Database.tuple_id) list;  (* reversed *)
  mutable rnvars : int;  (* base + appended *)
  rsets : (Database.tuple_id list, unit) Hashtbl.t;  (* full witness tuple sets *)
}

type res_state =
  | Rdirty  (* rebuild from the maintained witnesses on next question *)
  | Rempty  (* no witnesses: the query is false *)
  | Rimpossible  (* some witness is fully exogenous — stable under inserts *)
  | Ractive of res_core

type t = {
  idb : Database.t;  (* owned; mutated only through [insert]/[delete] *)
  isem : Problem.semantics;
  iq : Cq.t;
  iexact : bool;
  mutable iwitnesses : Eval.witness list;
  mutable rstate : res_state;
  mutable isession : Session.t option;
      (* Shared-program session for responsibility/ranking, rebuilt lazily
         from the maintained witnesses after any mutation. *)
}

let create ?(exact = false) semantics q db =
  let db = Database.copy db in
  {
    idb = db;
    isem = semantics;
    iq = q;
    iexact = exact;
    iwitnesses = Eval.witnesses q db;
    rstate = Rdirty;
    isession = None;
  }

let db t = t.idb
let witnesses t = t.iwitnesses
let exact t = t.iexact
let semantics t = t.isem
let query t = t.iq

(* --- Resilience core ------------------------------------------------------ *)

let build_core t =
  Obs.Counter.incr c_rebuilds;
  match Encode.res_of_witnesses Encode.Ilp t.isem t.iq t.idb t.iwitnesses with
  | Encode.Trivial _ -> Rempty
  | Encode.Impossible -> Rimpossible
  | Encode.Encoded enc ->
    let fz = Lp.Frozen.of_model enc.Encode.model in
    let rengine =
      if t.iexact then Eexact (Lp.Solvers.Exact_bb.create_session fz)
      else Efloat (Lp.Solvers.Float_bb.create_session fz)
    in
    let rsets = Hashtbl.create 64 in
    List.iter (fun set -> Hashtbl.replace rsets set ()) (Eval.unique_tuple_sets t.iwitnesses);
    let rvar_of_tuple = Hashtbl.copy enc.Encode.var_of_tuple in
    {
      rengine;
      rdelta = Lp.Frozen.Delta.empty;
      rvar_of_tuple;
      rtuple_of_var = List.rev enc.Encode.tuple_of_var;
      rnvars = Lp.Frozen.num_vars fz;
      rsets;
    }
    |> fun core -> Ractive core

let core_of t =
  (match t.rstate with
  | Rdirty -> t.rstate <- build_core t
  | Rempty when t.iwitnesses <> [] ->
    (* Inserts created the first witnesses since the empty build. *)
    t.rstate <- build_core t
  | Rempty | Rimpossible | Ractive _ -> ());
  t.rstate

(* Absorb the witnesses a fresh insert created: one appended covering row
   per genuinely new tuple set, with appended columns for its endogenous
   tuples that have no variable yet.  Flips the state to [Rimpossible] when
   a new witness is fully exogenous (no insert can undo that: the witness
   itself survives all further inserts). *)
let append_witnesses t core fresh =
  let impossible = ref false in
  List.iter
    (fun w ->
      if not !impossible then begin
        let set = Eval.tuple_set w in
        if not (Hashtbl.mem core.rsets set) then begin
          Hashtbl.replace core.rsets set ();
          let endo = List.filter (fun tid -> not (Problem.tuple_exo t.iq t.idb tid)) set in
          if endo = [] then impossible := true
          else begin
            let vars =
              List.map
                (fun tid ->
                  match Hashtbl.find_opt core.rvar_of_tuple tid with
                  | Some v -> v
                  | None ->
                    let info = Database.tuple t.idb tid in
                    let v = core.rnvars in
                    core.rnvars <- v + 1;
                    core.rdelta <-
                      Lp.Frozen.Delta.append_col ~integer:true ~upper:1
                        ~name:(Printf.sprintf "X_%s_%d" info.Database.rel tid)
                        ~obj:(Problem.weight t.isem info) core.rdelta;
                    Hashtbl.add core.rvar_of_tuple tid v;
                    core.rtuple_of_var <- (v, tid) :: core.rtuple_of_var;
                    v)
                endo
            in
            let expr = List.sort compare vars |> List.map (fun v -> (v, 1)) in
            core.rdelta <- Lp.Frozen.Delta.append_row Lp.Model.Geq 1 expr core.rdelta;
            Obs.Counter.incr c_appends
          end
        end
      end)
    fresh;
  if !impossible then t.rstate <- Rimpossible

(* --- Mutations ------------------------------------------------------------ *)

let invalidate_session t = t.isession <- None

let insert ?mult ?exo t rel args =
  invalidate_session t;
  let existing = Database.find t.idb rel args in
  let id = Database.add ?mult ?exo t.idb rel args in
  (match existing with
  | Some _ ->
    (* Multiplicity bump / exogeneity OR: the witness list is unchanged but
       objective weights (and possibly endogeneity) moved, which appends
       cannot express.  [Rimpossible] survives: [add] only grows mult and
       ORs exo, neither revives a fully-exogenous witness. *)
    (match t.rstate with Rimpossible -> () | _ -> t.rstate <- Rdirty)
  | None ->
    let fresh = Eval.delta_insert t.iq t.idb id in
    t.iwitnesses <- t.iwitnesses @ fresh;
    (match t.rstate with
    | Ractive core -> append_witnesses t core fresh
    | Rempty -> if fresh <> [] then t.rstate <- Rdirty
    | Rimpossible | Rdirty -> ()));
  id

let delete t id =
  invalidate_session t;
  Database.remove t.idb id;
  t.iwitnesses <-
    List.filter (fun w -> not (Array.exists (fun x -> x = id) w.Eval.tuples)) t.iwitnesses;
  (* A delete can drop rows, revive an impossible instance, or empty the
     witness set — none of which appends express; rebuild on demand. *)
  t.rstate <- Rdirty

(* --- Questions ------------------------------------------------------------ *)

let round_value x = int_of_float (Float.round x)

let stats_of ~solve_time ~root_lp ~root_integral ~nodes ~pivots ~refactors =
  {
    Session.nodes;
    root_lp;
    root_integral;
    certified = false;
    solve_time;
    prep_time = 0.;
    pivots;
    refactors;
  }

let read_contingency core sol =
  List.rev core.rtuple_of_var
  |> List.filter_map (fun (v, tid) -> if sol.(v) > 0.5 then Some tid else None)

let resilience ?node_limit ?time_limit t =
  match core_of t with
  | Rempty -> Session.Query_false
  | Rimpossible -> Session.No_contingency
  | Rdirty -> assert false (* core_of resolved it *)
  | Ractive core -> (
    let t0 = Lp.Clock.now () in
    let finish nodes root_lp root_integral pivots refactors obj sol =
      Session.Solved
        {
          Session.res_value = round_value obj;
          contingency = read_contingency core sol;
          res_stats =
            stats_of ~solve_time:(Lp.Clock.elapsed t0) ~root_lp ~root_integral ~nodes ~pivots
              ~refactors;
        }
    in
    match core.rengine with
    | Efloat s -> (
      let open Lp.Solvers.Float_bb in
      let r = solve_session ?node_limit ?time_limit ~delta:core.rdelta s in
      let root = match r.root_objective with Some o -> o | None -> nan in
      match r.status with
      | Optimal ->
        finish r.nodes root r.root_integral r.pivots r.refactors (Option.get r.objective)
          (Option.get r.solution)
      | Infeasible | Unbounded -> Session.No_contingency
      | Feasible -> Session.Budget_exhausted (Option.map round_value r.objective)
      | Limit_no_solution -> Session.Budget_exhausted None)
    | Eexact s -> (
      let open Lp.Solvers.Exact_bb in
      let r = solve_session ?node_limit ?time_limit ~delta:core.rdelta s in
      let root =
        match r.root_objective with Some o -> Numeric.Rat.to_float o | None -> nan
      in
      match r.status with
      | Optimal ->
        finish r.nodes root r.root_integral r.pivots r.refactors
          (Numeric.Rat.to_float (Option.get r.objective))
          (Array.map Numeric.Rat.to_float (Option.get r.solution))
      | Infeasible | Unbounded -> Session.No_contingency
      | Feasible ->
        Session.Budget_exhausted
          (Option.map (fun o -> round_value (Numeric.Rat.to_float o)) r.objective)
      | Limit_no_solution -> Session.Budget_exhausted None))

let session t =
  match t.isession with
  | Some s -> s
  | None ->
    let s =
      Session.create ~exact:t.iexact ~witnesses:t.iwitnesses t.isem t.iq t.idb
    in
    t.isession <- Some s;
    s

let responsibility ?node_limit ?time_limit t tid =
  Session.responsibility ?node_limit ?time_limit (session t) tid

let ranking_par ?node_limit ?time_limit ?jobs t =
  Session.ranking_par ?node_limit ?time_limit ?jobs (session t)
