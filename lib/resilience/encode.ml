open Relalg

type relaxation = Ilp | Milp | Lp

type encoding = {
  model : Lp.Model.t;
  tuple_of_var : (Lp.Model.var * Database.tuple_id) list;
  var_of_tuple : (Database.tuple_id, Lp.Model.var) Hashtbl.t;
  witness_vars : Lp.Model.var list;
}

type outcome = Encoded of encoding | Trivial of int | Impossible

(* Declare a tuple decision variable on demand. *)
let tuple_var model semantics db integer var_of_tuple tuple_of_var tid =
  match Hashtbl.find_opt var_of_tuple tid with
  | Some v -> v
  | None ->
    let info = Database.tuple db tid in
    let name = Printf.sprintf "X_%s_%d" info.Database.rel tid in
    (* The binary bound is declared honestly (Model rejects unbounded
       integer variables); Presolve re-proves it redundant — in these
       covering programs any solution can be capped at 1 without losing
       feasibility or raising cost (Section 5 of DESIGN.md) — and strips it
       again, so the dual simplex still sees exactly one row per witness. *)
    let v =
      Lp.Model.add_var ~name ~integer ~upper:1 ~obj:(Problem.weight semantics info) model
    in
    Hashtbl.add var_of_tuple tid v;
    tuple_of_var := (v, tid) :: !tuple_of_var;
    v

let res_of_witnesses relax semantics q db witnesses =
  if witnesses = [] then Trivial 0
  else begin
    let integer = match relax with Ilp -> true | Milp | Lp -> false in
    let model = Lp.Model.create () in
    let var_of_tuple = Hashtbl.create 64 in
    let tuple_of_var = ref [] in
    let impossible = ref false in
    let sets = Eval.unique_tuple_sets witnesses in
    List.iter
      (fun tuple_set ->
        let endo = List.filter (fun tid -> not (Problem.tuple_exo q db tid)) tuple_set in
        if endo = [] then impossible := true
        else begin
          let expr =
            List.map
              (fun tid -> (tuple_var model semantics db integer var_of_tuple tuple_of_var tid, 1))
              endo
          in
          Lp.Model.add_constr model expr Lp.Model.Geq 1
        end)
      sets;
    if !impossible then Impossible
    else Encoded { model; tuple_of_var = List.rev !tuple_of_var; var_of_tuple; witness_vars = [] }
  end

let res relax semantics q db = res_of_witnesses relax semantics q db (Eval.witnesses q db)

let rsp_of_witnesses relax semantics q db witnesses t =
  let with_t, without_t =
    List.partition (fun w -> List.mem t (Eval.tuple_set w)) witnesses
  in
  if with_t = [] then Impossible
  else begin
    let tuple_integer = match relax with Ilp -> true | Milp | Lp -> false in
    let witness_integer = match relax with Ilp | Milp -> true | Lp -> false in
    let model = Lp.Model.create () in
    let var_of_tuple = Hashtbl.create 64 in
    let tuple_of_var = ref [] in
    let impossible = ref false in
    (* Resilience constraints over the witnesses not containing t.  Only the
       tuples of these witnesses are candidates for deletion; t itself never
       is (it must survive to be counterfactual). *)
    let tracked = Hashtbl.create 64 in
    let without_sets = Eval.unique_tuple_sets without_t in
    List.iter
      (fun tuple_set ->
        let endo =
          List.filter (fun tid -> tid <> t && not (Problem.tuple_exo q db tid)) tuple_set
        in
        if endo = [] then impossible := true
        else begin
          let expr =
            List.map
              (fun tid ->
                Hashtbl.replace tracked tid ();
                (tuple_var model semantics db tuple_integer var_of_tuple tuple_of_var tid, 1))
              endo
          in
          Lp.Model.add_constr model expr Lp.Model.Geq 1
        end)
      without_sets;
    if !impossible then Impossible
    else begin
      (* Witness indicators for the (distinct) witnesses containing t, with
         tracking constraints X[w] >= X[t'] for the tracked tuples they
         use. *)
      let with_sets = Eval.unique_tuple_sets with_t in
      let witness_vars =
        List.mapi
          (fun i tuple_set ->
            let wv =
              Lp.Model.add_var
                ~name:(Printf.sprintf "W_%d" i)
                ~integer:witness_integer ~upper:1 model
            in
            List.iter
              (fun tid ->
                if tid <> t && Hashtbl.mem tracked tid then begin
                  let tv = Hashtbl.find var_of_tuple tid in
                  (* X[w] - X[t'] >= 0 *)
                  Lp.Model.add_constr model [ (wv, 1); (tv, -1) ] Lp.Model.Geq 0
                end)
              tuple_set;
            wv)
          with_sets
      in
      (* Counterfactual: at least one witness containing t survives. *)
      Lp.Model.add_constr model
        (List.map (fun wv -> (wv, 1)) witness_vars)
        Lp.Model.Leq
        (List.length witness_vars - 1);
      Encoded { model; tuple_of_var = List.rev !tuple_of_var; var_of_tuple; witness_vars }
    end
  end

let rsp relax semantics q db t = rsp_of_witnesses relax semantics q db (Eval.witnesses q db) t

(* --- Shared super-model --------------------------------------------------- *)

type shared = {
  smodel : Lp.Model.t;
  stuple_of_var : (Lp.Model.var * Database.tuple_id) list;
  svar_of_tuple : (Database.tuple_id, Lp.Model.var) Hashtbl.t;
  switnesses : (Lp.Model.var * Database.tuple_id list) list;
  sz : Lp.Model.var;
}

type shared_outcome = Shared of shared | Shared_trivial | Shared_impossible

let shared_of_witnesses relax semantics q db witnesses =
  if witnesses = [] then Shared_trivial
  else begin
    let sets = Eval.unique_tuple_sets witnesses in
    let endo_of =
      List.map (fun set -> List.filter (fun tid -> not (Problem.tuple_exo q db tid)) set) sets
    in
    if List.exists (fun endo -> endo = []) endo_of then Shared_impossible
    else begin
      let tuple_integer = match relax with Ilp -> true | Milp | Lp -> false in
      let witness_integer = match relax with Ilp | Milp -> true | Lp -> false in
      let model = Lp.Model.create () in
      let var_of_tuple = Hashtbl.create 64 in
      let tuple_of_var = ref [] in
      (* One indicator per distinct witness tuple set, tied to its endogenous
         tuples from both sides:
         - tracking    W[w] - X[t'] >= 0   (deleting t' destroys w);
         - destruction sum X[t'] - W[w] >= 0  (w only counts as destroyed if
           some tuple of it was actually deleted).
         Fixing every W to 1 collapses the rows to the plain covering program
         ILP[RES*]; fixing Z to 0 and the W of every witness avoiding t to 1
         yields ILP[RSP*](t) — so one frozen matrix serves the whole batch as
         bound overlays ({!Lp.Frozen.Delta}). *)
      let next_w = ref 0 in
      let witness_vars =
        List.map2
          (fun tuple_set endo ->
            let i = !next_w in
            incr next_w;
            let wv =
              Lp.Model.add_var
                ~name:(Printf.sprintf "W_%d" i)
                ~integer:witness_integer ~upper:1 model
            in
            let expr =
              List.map
                (fun tid ->
                  let tv =
                    tuple_var model semantics db tuple_integer var_of_tuple tuple_of_var tid
                  in
                  Lp.Model.add_constr model [ (wv, 1); (tv, -1) ] Lp.Model.Geq 0;
                  (tv, 1))
                endo
            in
            Lp.Model.add_constr model ((wv, -1) :: expr) Lp.Model.Geq 0;
            (wv, tuple_set))
          sets endo_of
      in
      (* Counterfactual with an escape hatch: sum W - Z <= |W| - 1.  With
         Z = 1 the row is vacuous (resilience); with Z = 0 it demands a
         surviving witness (responsibility). *)
      let z = Lp.Model.add_var ~name:"Z" ~upper:1 model in
      Lp.Model.add_constr model
        ((z, -1) :: List.map (fun (wv, _) -> (wv, 1)) witness_vars)
        Lp.Model.Leq
        (List.length witness_vars - 1);
      Shared
        {
          smodel = model;
          stuple_of_var = List.rev !tuple_of_var;
          svar_of_tuple = var_of_tuple;
          switnesses = witness_vars;
          sz = z;
        }
    end
  end

let contingency enc x =
  List.filter_map
    (fun (v, tid) -> if x.(v) > 0.5 then Some tid else None)
    enc.tuple_of_var
