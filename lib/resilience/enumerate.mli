open! Relalg

(** Enumeration of {e every} minimum contingency set via no-good cuts
    (DESIGN.md §13).

    After the first ILP optimum [OPT] with optimal set [S], the program is
    confined to its optimal face by one pin row [sum w_t X(t) <= OPT], and
    each emitted set is denied by a no-good cut
    [sum_{t in S} X(t) <= |S| - 1]; re-solving streams the remaining
    optimal sets until the program goes infeasible — the proof the family
    is exhausted.  Because all weights are [>= 1], distinct optimal sets
    are never subsets of one another, so each cut removes exactly its own
    set and the loop emits every optimal set exactly once.

    The warm production path lives in {!Session} (each cut is one appended
    row absorbed basis-intact by the session's dual-simplex engine); this
    module owns the solver-independent machinery — orderings, criticality,
    cut construction, the drive loop — plus a deliberately {e cold}
    reference enumerator (fresh solve per cut, no presolve, no warm basis)
    that the differential oracle pins the warm path against. *)

type stats = {
  cuts : int;  (** No-good cuts appended. *)
  solves : int;  (** ILP solves, the first optimum included. *)
  nodes : int;  (** Branch-and-bound nodes over all solves. *)
  first_pivots : int;  (** Pivots of the first (cut-free) solve. *)
  cut_pivots : int;  (** Pivots summed over the cut re-solves. *)
  refactors : int;
  time : float;  (** Wall seconds for the whole enumeration. *)
}

type family = {
  opt : int;  (** The optimal value every emitted set attains. *)
  sets : Database.tuple_id list list;
      (** The minimum contingency sets, each sorted ascending, the family
          in canonical (lexicographic, duplicate-free) order. *)
  exhausted : bool;
      (** [true] when the cut loop ended with an infeasible program — the
          family is provably complete.  [false] after a budget, deadline
          or cap stop: [sets] is a correct but possibly partial family. *)
  fstats : stats;
}

type criticality = {
  crit_tuple : Database.tuple_id;
  crit_count : int;  (** Optimal sets containing the tuple. *)
  crit_total : int;  (** Optimal sets in the family. *)
  crit_exact : Numeric.Rat.t;  (** [crit_count / crit_total], exact. *)
  crit_float : float;
}

type outcome = Family of family | Query_false | No_contingency | Budget

(** {1 Orderings and derived data} *)

val canonical : Database.tuple_id list list -> Database.tuple_id list list
(** Sort each set ascending, then the family lexicographically, dropping
    duplicates — the deterministic order every surface reports. *)

val take : int -> Database.tuple_id list list -> Database.tuple_id list list
(** First [n] sets of the given ordering ([n < 0] keeps everything).
    Presentation-level truncation: enumeration itself always runs to
    exhaustion (or budget), so [take n] is a prefix of the full order. *)

val symdiff : Database.tuple_id list -> Database.tuple_id list -> int
(** Symmetric-difference cardinality of two sorted sets. *)

val diverse : Database.tuple_id list list -> Database.tuple_id list list
(** Greedy max-min-diversity reordering of a canonical family: keep the
    head, then repeatedly emit the set maximizing the minimum symmetric
    difference to everything already emitted (canonical order breaking
    ties).  Deterministic; a [take n] prefix then spreads over the family
    instead of clustering around one optimum. *)

val criticality : family -> criticality list
(** Per-tuple criticality — the fraction of optimal sets containing the
    tuple — for every tuple appearing in at least one set, most critical
    first (ties by tuple id).  Tuples in no optimal set have criticality 0
    and are omitted. *)

(** {1 Cut construction} *)

val no_good :
  (Database.tuple_id -> Lp.Model.var option) ->
  Database.tuple_id list ->
  Lp.Frozen.Delta.t ->
  Lp.Frozen.Delta.t
(** [no_good var_of set d] appends the denial row
    [sum_{t in set} X(t) <= |set| - 1].  @raise Invalid_argument on an
    empty cut (the caller must special-case the [OPT = 0] family). *)

val pin_expr : (Lp.Model.var * int) list -> (Lp.Model.var * int) list
(** Normalise (sort, drop zero weights) an objective-support expression for
    use as the pin row's left-hand side. *)

(** {1 The enumeration loop}

    Both entry points are parameterised over [run : float option ->
    Delta.t -> _]: one ILP solve under the delta with an optional remaining
    time budget, returning the rounded objective, the decoded tuple set and
    [(nodes, pivots, refactors)].  {!Session} passes its warm engine;
    the cold reference passes a fresh session per call. *)

val collect :
  ?cap:int ->
  ?time_limit:float ->
  t0:float ->
  opt:int ->
  cut:(Database.tuple_id list -> Lp.Frozen.Delta.t -> Lp.Frozen.Delta.t) ->
  run:
    (float option ->
    Lp.Frozen.Delta.t ->
    [ `Ok of int * Database.tuple_id list * (int * int * int)
    | `Infeasible
    | `Budget ]) ->
  seen:Database.tuple_id list list ->
  Lp.Frozen.Delta.t ->
  Database.tuple_id list list * bool * (int * int * int * int * int)
(** Gather every remaining optimal set reachable from the already-pinned
    delta: solve, record, cut, repeat until infeasible (exhausted), over
    budget, or [cap] total sets counting [seen].  Returns the new sets
    (unsorted), the exhaustion flag, and the accumulated
    [(cuts, solves, nodes, pivots, refactors)].  The parallel seed-split
    path drives one [collect] per subspace. *)

val drive :
  ?cap:int ->
  ?time_limit:float ->
  pin:(int -> Lp.Frozen.Delta.t -> Lp.Frozen.Delta.t) ->
  cut:(Database.tuple_id list -> Lp.Frozen.Delta.t -> Lp.Frozen.Delta.t) ->
  run:
    (float option ->
    Lp.Frozen.Delta.t ->
    [ `Ok of int * Database.tuple_id list * (int * int * int)
    | `Infeasible
    | `Budget ]) ->
  Lp.Frozen.Delta.t ->
  [ `Family of family | `Infeasible | `Budget ]
(** The full sequential loop: first optimum, pin, then {!collect}.
    [`Infeasible] / [`Budget] report a first solve that never produced an
    optimum.  The [OPT = 0] family is [{[[]]}], returned without cuts. *)

(** {1 Cold reference enumerators}

    Per-question {!Encode.res}/{!Encode.rsp} encodings frozen {e without}
    presolve, each link of the cut chain a fresh [solve_frozen] — no warm
    basis anywhere.  The differential oracle compares these, the warm
    {!Session} path and {!Bruteforce.resilience_family} on the same
    instances. *)

val resilience_cold :
  ?exact:bool ->
  ?node_limit:int ->
  ?time_limit:float ->
  ?cap:int ->
  Problem.semantics ->
  Cq.t ->
  Database.t ->
  outcome

val responsibility_cold :
  ?exact:bool ->
  ?node_limit:int ->
  ?time_limit:float ->
  ?cap:int ->
  Problem.semantics ->
  Cq.t ->
  Database.t ->
  Database.tuple_id ->
  outcome
