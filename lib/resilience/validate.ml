open Lp.Lint

type report = {
  complexity : Analysis.complexity;
  cert : Lp.Struct.t option;
  diags : Lp.Lint.diag list;
}

let diag code severity message = { code; severity; message }

let cross_check complexity (cert : Lp.Struct.t) =
  match (complexity, cert.Lp.Struct.verdict) with
  | Analysis.Ptime, Lp.Struct.Fractional _ ->
    (* A fractional vertex only contradicts the theorems when the optimum
       VALUE is fractional (RES* is an integer, so LP < ILP follows); a
       fractional vertex at an integral value is a degenerate optimum. *)
    let provable_gap =
      match cert.Lp.Struct.features.Lp.Struct.root_lp with
      | Some v -> Float.abs (v -. Float.round v) > 1e-6
      | None -> false
    in
    if provable_gap then
      [
        diag "V101" Error
          "dichotomy says PTIME but the root LP optimum is fractional — \
           Theorems 8.6/8.7 are violated somewhere between the classifier, the \
           encoder and the analyzer";
      ]
    else
      [
        diag "V201" Warning
          "dichotomy says PTIME and the root LP optimum is integral, but the \
           returned vertex is fractional (degenerate optimum); no integrality \
           certificate for this instance";
      ]
  | Analysis.Ptime, Lp.Struct.Unknown ->
    [
      diag "V201" Warning
        "dichotomy says PTIME but no matrix-level integrality certificate was \
         produced for this instance; the verdict stands but is uncorroborated";
    ]
  | Analysis.Ptime, Lp.Struct.Integral w ->
    [
      diag "V301" Note
        (Printf.sprintf
           "PTIME verdict confirmed at the matrix level (%s certificate)"
           (Lp.Struct.witness_name w));
    ]
  | (Analysis.Npc | Analysis.Unknown), Lp.Struct.Integral w ->
    [
      diag "V302" Note
        (Printf.sprintf
           "matrix certified integral (%s) although the dichotomy gives no PTIME \
            guarantee: this instance solves without branching"
           (Lp.Struct.witness_name w));
    ]
  | (Analysis.Npc | Analysis.Unknown), (Lp.Struct.Fractional _ | Lp.Struct.Unknown) -> []

let validate semantics q db =
  let complexity = Analysis.res_complexity semantics q in
  match Encode.res Encode.Ilp semantics q db with
  | Encode.Trivial _ | Encode.Impossible -> { complexity; cert = None; diags = [] }
  | Encode.Encoded enc ->
    let fz = Lp.Frozen.of_model enc.Encode.model in
    let cert = Lp.Struct.analyze ~probe_root:true fz in
    { complexity; cert = Some cert; diags = sort_diags (cross_check complexity cert) }

let refine_query_diags cert diags =
  match cert with
  | Some c when Lp.Struct.is_integral c ->
    sort_diags
      (List.map
         (fun d ->
           if d.code = "Q304" then
             diag "Q305" Note
               "self-join query outside the SJ-free dichotomy, but the instance's \
                matrix is certified integral: this instance is PTIME, lp mode \
                suffices"
           else d)
         diags)
  | _ -> diags
