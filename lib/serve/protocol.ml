(* Wire protocol of `resil serve`: line-oriented JSON.  One request object
   per line in, one response object per line out.  This module is pure
   decode/encode — no solver state — so the parsing contract is testable
   without a server. *)

type question =
  | Resilience
  | Responsibility of string  (* tuple in text format, e.g. "S(1,1)" *)
  | Rank
  | Enumerate of string option  (* None: resilience family; Some t: t's family *)

type ask = {
  query : string;
  bag : bool;
  exact : bool;
  deadline_ms : int option;
  jobs : int;
  limit : int option;  (* enumerate only: truncate the reported family *)
  question : question;
}

type request =
  | Ping
  | Load of string  (* whole instance in the text format of Database_io *)
  | Insert of string  (* one tuple line *)
  | Delete of string
  | Ask of ask
  | Stats
  | Metrics of [ `Json | `Prometheus ]  (* metrics-plane snapshot exposition *)
  | Shutdown
  | Batch of envelope list

and envelope = { id : Json.t; req : request }

(* Stable error codes — part of the wire contract, locked by a golden test. *)
type error_code =
  | Malformed
  | Too_large
  | Unknown_op
  | Bad_request
  | Bad_query
  | Not_found
  | Timeout
  | Shutting_down

let error_code_name = function
  | Malformed -> "malformed"
  | Too_large -> "too_large"
  | Unknown_op -> "unknown_op"
  | Bad_request -> "bad_request"
  | Bad_query -> "bad_query"
  | Not_found -> "not_found"
  | Timeout -> "timeout"
  | Shutting_down -> "shutting_down"

(* --- decoding ------------------------------------------------------------- *)

let str_field j name =
  match Option.bind (Json.member name j) Json.to_string_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string %S field" name)

let rec decode depth j =
  let ( let* ) = Result.bind in
  match Option.bind (Json.member "op" j) Json.to_string_opt with
  | None -> Error "missing or non-string \"op\" field"
  | Some op -> (
    match op with
    | "ping" -> Ok Ping
    | "stats" -> Ok Stats
    | "metrics" -> (
      match Json.member "format" j with
      | None -> Ok (Metrics `Json)
      | Some v -> (
        match Json.to_string_opt v with
        | Some "json" -> Ok (Metrics `Json)
        | Some "prometheus" -> Ok (Metrics `Prometheus)
        | Some f -> Error (Printf.sprintf "unknown metrics format %S" f)
        | None -> Error "non-string \"format\" field"))
    | "shutdown" -> Ok Shutdown
    | "load" ->
      let* data = str_field j "data" in
      Ok (Load data)
    | "insert" ->
      let* tuple = str_field j "tuple" in
      Ok (Insert tuple)
    | "delete" ->
      let* tuple = str_field j "tuple" in
      Ok (Delete tuple)
    | "resilience" | "responsibility" | "rank" | "enumerate" ->
      let* query = str_field j "query" in
      let bool_field name default =
        match Json.member name j with
        | None -> Ok default
        | Some v -> (
          match Json.to_bool_opt v with
          | Some b -> Ok b
          | None -> Error (Printf.sprintf "non-boolean %S field" name))
      in
      let* bag = bool_field "bag" false in
      let* exact = bool_field "exact" false in
      let* deadline_ms =
        match Json.member "deadline_ms" j with
        | None -> Ok None
        | Some v -> (
          match Json.to_int_opt v with
          | Some ms -> Ok (Some ms)
          | None -> Error "non-integer \"deadline_ms\" field")
      in
      let* jobs =
        match Json.member "jobs" j with
        | None -> Ok 1
        | Some v -> (
          match Json.to_int_opt v with
          | Some n when n >= 0 -> Ok n
          | Some _ -> Error "negative \"jobs\" field"
          | None -> Error "non-integer \"jobs\" field")
      in
      let* limit =
        match Json.member "limit" j with
        | None -> Ok None
        | Some v -> (
          match Json.to_int_opt v with
          | Some n when n >= 0 -> Ok (Some n)
          | Some _ -> Error "negative \"limit\" field"
          | None -> Error "non-integer \"limit\" field")
      in
      let* question =
        match op with
        | "resilience" -> Ok Resilience
        | "rank" -> Ok Rank
        | "enumerate" ->
          (* The tuple is optional: present means the responsibility family
             of that tuple, absent the resilience family. *)
          (match Json.member "tuple" j with
          | None -> Ok (Enumerate None)
          | Some _ ->
            let* tuple = str_field j "tuple" in
            Ok (Enumerate (Some tuple)))
        | _ ->
          let* tuple = str_field j "tuple" in
          Ok (Responsibility tuple)
      in
      Ok (Ask { query; bag; exact; deadline_ms; jobs; limit; question })
    | "batch" ->
      if depth > 0 then Error "nested \"batch\" requests are not allowed"
      else
        let* subs =
          match Option.bind (Json.member "requests" j) Json.to_list_opt with
          | Some l -> Ok l
          | None -> Error "missing or non-array \"requests\" field"
        in
        let* envs =
          List.fold_left
            (fun acc sub ->
              let* acc = acc in
              let* env = decode_envelope (depth + 1) sub in
              Ok (env :: acc))
            (Ok []) subs
        in
        Ok (Batch (List.rev envs))
    | op -> Error (Printf.sprintf "unknown op %S" op))

and decode_envelope depth j =
  match j with
  | Json.Obj _ ->
    let id = Option.value (Json.member "id" j) ~default:Json.Null in
    Result.map (fun req -> { id; req }) (decode depth j)
  | _ -> Error "request is not a JSON object"

type parse_result =
  | Request of envelope
  | Invalid of Json.t * error_code * string
      (** The request id when one was recoverable, else [Null]. *)

let parse_request line =
  match Json.of_string line with
  | exception Json.Parse_error msg -> Invalid (Json.Null, Malformed, msg)
  | j -> (
    let id = Option.value (Json.member "id" j) ~default:Json.Null in
    match decode_envelope 0 j with
    | Ok env -> Request env
    | Error msg ->
      let code =
        match Option.bind (Json.member "op" j) Json.to_string_opt with
        | Some op
          when not
                 (List.mem op
                    [
                      "ping"; "stats"; "metrics"; "shutdown"; "load"; "insert"; "delete";
                      "resilience"; "responsibility"; "rank"; "enumerate"; "batch";
                    ]) ->
          Unknown_op
        | _ -> Bad_request
      in
      Invalid (id, code, msg))

(* --- encoding ------------------------------------------------------------- *)

let ok ~id result = Json.Obj [ ("id", id); ("ok", Json.Bool true); ("result", result) ]

let error ?data ~id code message =
  let body =
    [ ("code", Json.Str (error_code_name code)); ("message", Json.Str message) ]
    @ match data with Some d -> [ ("data", d) ] | None -> []
  in
  Json.Obj [ ("id", id); ("ok", Json.Bool false); ("error", Json.Obj body) ]

let render r = Json.to_string r
